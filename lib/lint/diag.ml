(* Located lint diagnostics: rule id + severity + message + (source span |
   netlist cell).  Shared by the HDL rules, the netlist rules and the
   per-pass invariant checker. *)

type severity = Error | Warning | Info

type t = {
  rule : string;
  severity : severity;
  message : string;
  span : Hdl.Loc.span option;
  cell : int option;
}

let make ?span ?cell ~rule ~severity message =
  { rule; severity; message; span; cell }

let error ?span ?cell ~rule message = make ?span ?cell ~rule ~severity:Error message
let warning ?span ?cell ~rule message =
  make ?span ?cell ~rule ~severity:Warning message
let info ?span ?cell ~rule message = make ?span ?cell ~rule ~severity:Info message

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_name = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let pos_key = function
  | Some (sp : Hdl.Loc.span) -> (sp.s.line, sp.s.col)
  | None -> (max_int, max_int)

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      let c = Stdlib.compare (pos_key a.span) (pos_key b.span) in
      if c <> 0 then c else String.compare a.message b.message

let sort ds = List.sort compare ds

let counts ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let location_string d =
  match d.span, d.cell with
  | Some sp, _ -> Hdl.Loc.to_string sp
  | None, Some id -> Fmt.str "cell %d" id
  | None, None -> "-"

let pp ppf d =
  (match d.span with
  | Some sp -> Fmt.pf ppf "%a: " Hdl.Loc.pp sp
  | None -> ());
  Fmt.pf ppf "%s[%s]: %s" (severity_name d.severity) d.rule d.message;
  match d.cell with
  | Some id when d.span = None -> Fmt.pf ppf " (cell %d)" id
  | Some _ | None -> ()

let to_json d =
  let open Obs.Json in
  let fields =
    [ "rule", Str d.rule;
      "severity", Str (severity_name d.severity);
      "message", Str d.message ]
  in
  let fields =
    match d.span with
    | Some sp ->
      fields
      @ [ "line", num_of_int sp.Hdl.Loc.s.line;
          "col", num_of_int sp.Hdl.Loc.s.col;
          "end_line", num_of_int sp.Hdl.Loc.e.line;
          "end_col", num_of_int sp.Hdl.Loc.e.col ]
    | None -> fields
  in
  let fields =
    match d.cell with
    | Some id -> fields @ [ "cell", num_of_int id ]
    | None -> fields
  in
  Obj fields

let apply ?(werror = false) ?(waive = []) ds =
  ds
  |> List.filter (fun d -> not (List.mem d.rule waive))
  |> List.map (fun d ->
         if werror && d.severity = Warning then { d with severity = Error }
         else d)

let table_columns =
  Report.Table.
    [ column "severity"; column "rule"; column "location"; column "message" ]

let table_rows ds =
  List.map
    (fun d -> [ severity_name d.severity; d.rule; location_string d; d.message ])
    ds
