(** Three-valued logic values. *)

type t = V0 | V1 | Vx

val of_bool : bool -> t
val to_bool : t -> bool option
val equal : t -> t -> bool

val v_not : t -> t
val v_and : t -> t -> t
val v_or : t -> t -> t
val v_xor : t -> t -> t
val v_xnor : t -> t -> t

val v_mux : a:t -> b:t -> s:t -> t
(** [y = s ? b : a]; an X select resolves only when both branches agree. *)

val pp : Format.formatter -> t -> unit
