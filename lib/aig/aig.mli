(** And-Inverter Graphs with structural hashing and constant folding.

    Literals are [2*node + complement]; node 0 is constant FALSE, so
    literal 0 is false and literal 1 is true. *)

type lit = int

type node = Const | Pi of int | And of lit * lit

type t

val false_lit : lit
val true_lit : lit

val create : unit -> t

val node_of_lit : lit -> int
val is_complemented : lit -> bool
val negate : lit -> lit
val lit_of_node : ?complement:bool -> int -> lit

val node : t -> int -> node

val new_pi : t -> string -> lit
(** A fresh named primary input. *)

val pi_lit : t -> string -> lit option

val add_po : t -> string -> lit -> unit

val pis : t -> (string * int) list
(** (name, node id), in creation order. *)

val pos : t -> (string * lit) list

val and_ : t -> lit -> lit -> lit
(** AND with constant folding ([x&0], [x&1], [x&x], [x&~x]) and structural
    hashing. *)

val or_ : t -> lit -> lit -> lit
val xor_ : t -> lit -> lit -> lit
val xnor_ : t -> lit -> lit -> lit

val mux_ : t -> s:lit -> a:lit -> b:lit -> lit
(** [y = s ? b : a]. *)

val and_list : t -> lit list -> lit
val or_list : t -> lit list -> lit
val xor_list : t -> lit list -> lit

val area : t -> int
(** AND nodes in the transitive fanin of the primary outputs — the paper's
    AIG-area metric (dead nodes excluded). *)

val num_ands : t -> int
(** All AND nodes, dead included. *)

val num_pis : t -> int
val num_pos : t -> int

val simulate : t -> int array -> int array
(** Bit-parallel evaluation: one word of lanes per PI (by PI index);
    returns a word per node. *)

val lit_value : int array -> lit -> int

val to_cnf : t -> Cdcl.Solver.t -> lit list -> lit -> Cdcl.Lit.t
(** [to_cnf g solver roots] encodes the cones of [roots] and returns a
    translation from AIG literals (within those cones) to SAT literals. *)
