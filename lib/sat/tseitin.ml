(* Tseitin encoding of a circuit sub-DAG into CNF.

   Every wire bit that participates gets a SAT variable; constants map to a
   dedicated always-true variable.  Cells are encoded bit-wise.  Sequential
   cells must not appear in the encoded set (sub-graphs exclude them). *)

open Netlist

type t = {
  solver : Solver.t;
  vars : int Bits.Bit_tbl.t;
  true_lit : Lit.t;
  mutable clause_log : Lit.t list list; (* added clauses, reversed *)
  mutable clause_guard : Lit.t option;
      (* when set, every added clause also carries this literal — the
         clause-group mechanism [Session] uses to activate exactly one
         sub-graph's cells per query via assumptions *)
}

let create () =
  let solver = Solver.create () in
  let tv = Solver.new_var solver in
  let true_lit = Lit.of_var tv in
  Solver.add_clause solver [ true_lit ];
  {
    solver;
    vars = Bits.Bit_tbl.create 64;
    true_lit;
    clause_log = [ [ true_lit ] ];
    clause_guard = None;
  }

let lit_of_bit t (b : Bits.bit) : Lit.t =
  match b with
  | Bits.C1 -> t.true_lit
  | Bits.C0 | Bits.Cx -> Lit.negate t.true_lit
  | Bits.Of_wire _ -> (
    match Bits.Bit_tbl.find_opt t.vars b with
    | Some v -> Lit.of_var v
    | None ->
      let v = Solver.new_var t.solver in
      Bits.Bit_tbl.replace t.vars b v;
      Lit.of_var v)

let fresh_lit t = Lit.of_var (Solver.new_var t.solver)

let add t lits =
  let lits =
    match t.clause_guard with None -> lits | Some g -> g :: lits
  in
  t.clause_log <- lits :: t.clause_log;
  Solver.add_clause t.solver lits

(* y <-> a & b *)
let encode_and2 t y a b =
  add t [ Lit.negate y; a ];
  add t [ Lit.negate y; b ];
  add t [ y; Lit.negate a; Lit.negate b ]

(* y <-> a | b *)
let encode_or2 t y a b =
  add t [ y; Lit.negate a ];
  add t [ y; Lit.negate b ];
  add t [ Lit.negate y; a; b ]

(* y <-> a ^ b *)
let encode_xor2 t y a b =
  add t [ Lit.negate y; a; b ];
  add t [ Lit.negate y; Lit.negate a; Lit.negate b ];
  add t [ y; Lit.negate a; b ];
  add t [ y; a; Lit.negate b ]

(* y <-> ~a *)
let encode_not t y a =
  add t [ Lit.negate y; Lit.negate a ];
  add t [ y; a ]

(* y <-> AND(lits) *)
let encode_and_n t y lits =
  List.iter (fun l -> add t [ Lit.negate y; l ]) lits;
  add t (y :: List.map Lit.negate lits)

(* y <-> OR(lits) *)
let encode_or_n t y lits =
  List.iter (fun l -> add t [ y; Lit.negate l ]) lits;
  add t (Lit.negate y :: lits)

(* y <-> s ? b : a *)
let encode_mux t y ~a ~b ~s =
  add t [ Lit.negate s; Lit.negate b; y ];
  add t [ Lit.negate s; b; Lit.negate y ];
  add t [ s; Lit.negate a; y ];
  add t [ s; a; Lit.negate y ]

(* y <-> xnor(a, b) *)
let encode_xnor2 t y a b = encode_xor2 t (Lit.negate y) a b

(* "a is nonzero" as a single literal *)
let nonzero t (s : Bits.sigspec) =
  match Array.to_list s with
  | [] -> Lit.negate t.true_lit
  | [ b ] -> lit_of_bit t b
  | bits ->
    let y = fresh_lit t in
    encode_or_n t y (List.map (lit_of_bit t) bits);
    y

let full_adder t ~a ~b ~cin =
  let axb = fresh_lit t in
  encode_xor2 t axb a b;
  let sum = fresh_lit t in
  encode_xor2 t sum axb cin;
  let ab = fresh_lit t in
  encode_and2 t ab a b;
  let ct = fresh_lit t in
  encode_and2 t ct cin axb;
  let cout = fresh_lit t in
  encode_or2 t cout ab ct;
  sum, cout

let encode_cell t (cell : Cell.t) =
  let lb = lit_of_bit t in
  let lv s = Array.map lb s in
  match cell with
  | Cell.Unary { op = Not; a; y } ->
    Array.iteri (fun i yb -> encode_not t (lb yb) (lb a.(i))) y
  | Cell.Unary { op = Logic_not; a; y } ->
    encode_not t (lb y.(0)) (nonzero t a)
  | Cell.Unary { op = Reduce_and; a; y } ->
    encode_and_n t (lb y.(0)) (Array.to_list (lv a))
  | Cell.Unary { op = Reduce_or | Reduce_bool; a; y } ->
    encode_or_n t (lb y.(0)) (Array.to_list (lv a))
  | Cell.Unary { op = Reduce_xor; a; y } ->
    let acc =
      Array.fold_left
        (fun acc l ->
          match acc with
          | None -> Some l
          | Some prev ->
            let x = fresh_lit t in
            encode_xor2 t x prev l;
            Some x)
        None (lv a)
    in
    (match acc with
    | None -> add t [ Lit.negate (lb y.(0)) ]
    | Some l ->
      encode_not t (lb y.(0)) (Lit.negate l))
  | Cell.Binary { op = And; a; b; y } ->
    Array.iteri (fun i yb -> encode_and2 t (lb yb) (lb a.(i)) (lb b.(i))) y
  | Cell.Binary { op = Or; a; b; y } ->
    Array.iteri (fun i yb -> encode_or2 t (lb yb) (lb a.(i)) (lb b.(i))) y
  | Cell.Binary { op = Xor; a; b; y } ->
    Array.iteri (fun i yb -> encode_xor2 t (lb yb) (lb a.(i)) (lb b.(i))) y
  | Cell.Binary { op = Xnor; a; b; y } ->
    Array.iteri (fun i yb -> encode_xnor2 t (lb yb) (lb a.(i)) (lb b.(i))) y
  | Cell.Binary { op = Eq; a; b; y } ->
    let eqbits =
      Array.mapi
        (fun i ab ->
          let e = fresh_lit t in
          encode_xnor2 t e (lb ab) (lb b.(i));
          e)
        a
    in
    encode_and_n t (lb y.(0)) (Array.to_list eqbits)
  | Cell.Binary { op = Ne; a; b; y } ->
    let nebits =
      Array.mapi
        (fun i ab ->
          let e = fresh_lit t in
          encode_xor2 t e (lb ab) (lb b.(i));
          e)
        a
    in
    encode_or_n t (lb y.(0)) (Array.to_list nebits)
  | Cell.Binary { op = Logic_and; a; b; y } ->
    encode_and2 t (lb y.(0)) (nonzero t a) (nonzero t b)
  | Cell.Binary { op = Logic_or; a; b; y } ->
    encode_or2 t (lb y.(0)) (nonzero t a) (nonzero t b)
  | Cell.Binary { op = Add; a; b; y } ->
    let carry = ref (Lit.negate t.true_lit) in
    Array.iteri
      (fun i yb ->
        let sum, cout = full_adder t ~a:(lb a.(i)) ~b:(lb b.(i)) ~cin:!carry in
        encode_not t (lb yb) (Lit.negate sum);
        carry := cout)
      y
  | Cell.Binary { op = Sub; a; b; y } ->
    let carry = ref t.true_lit in
    Array.iteri
      (fun i yb ->
        let sum, cout =
          full_adder t ~a:(lb a.(i)) ~b:(Lit.negate (lb b.(i))) ~cin:!carry
        in
        encode_not t (lb yb) (Lit.negate sum);
        carry := cout)
      y
  | Cell.Mux { a; b; s; y } ->
    let ls = lb s in
    Array.iteri
      (fun i yb -> encode_mux t (lb yb) ~a:(lb a.(i)) ~b:(lb b.(i)) ~s:ls)
      y
  | Cell.Pmux { a; b; s; y } ->
    (* priority chain from the highest index down to the default [a] *)
    let w = Bits.width a in
    let n = Bits.width s in
    let current = ref (lv a) in
    for i = n - 1 downto 0 do
      let part = Bits.slice b ~off:(i * w) ~len:w in
      let ls = lb s.(i) in
      current :=
        Array.mapi
          (fun j prev ->
            let o = fresh_lit t in
            encode_mux t o ~a:prev ~b:(lb part.(j)) ~s:ls;
            o)
          !current
    done;
    Array.iteri
      (fun j yb -> encode_not t (lb yb) (Lit.negate !current.(j)))
      y
  | Cell.Dff _ -> invalid_arg "Tseitin.encode_cell: sequential cell"

(* Encode the given cells of a circuit. *)
let encode_cells t (c : Circuit.t) (ids : int list) =
  List.iter (fun id -> encode_cell t (Circuit.cell c id)) ids

(* Assumption literal for "bit b has boolean value v". *)
let assume_lit t (b : Bits.bit) (v : bool) =
  let l = lit_of_bit t b in
  if v then l else Lit.negate l

(* The encoded CNF as DIMACS, with [extra] clauses appended — the capture
   path turns assumptions and the queried target polarity into unit
   clauses so the dumped instance is self-contained. *)
let to_dimacs t ~(extra : Lit.t list list) : Dimacs.cnf =
  let conv = List.map Lit.to_dimacs in
  {
    Dimacs.num_vars = Solver.num_vars t.solver;
    clauses = List.rev_map conv t.clause_log @ List.map conv extra;
  }

type query_result = Forced of bool | Free | Contradictory | Undetermined

(* What the last solver call of a query looked like, for capture/replay:
   the polarity asserted on the target and the raw solver verdict. *)
type solve_info = { last_target_lit : Lit.t; last_result : Solver.result }

(* Is [target] forced to a constant under [assumptions]?  Checks
   SAT(target=0) and SAT(target=1). *)
let query_forced_info ?budget ?relevant ?interrupt t ~assumptions
    ~(target : Bits.bit) : query_result * solve_info =
  let tl = lit_of_bit t target in
  let can_be_true =
    Solver.solve ?budget ?relevant ?interrupt t.solver
      ~assumptions:(assumptions @ [ tl ])
  in
  match can_be_true with
  | Solver.Unknown ->
    Undetermined, { last_target_lit = tl; last_result = can_be_true }
  | Solver.Unsat -> (
    (* target can't be 1 — but "forced 0" is only sound if the
       assumptions themselves are satisfiable.  Contradictory path facts
       make BOTH polarities unsat; report that as its own outcome so the
       SAT rung agrees with exhaustive simulation on dead paths. *)
    let ntl = Lit.negate tl in
    let can_be_false =
      Solver.solve ?budget ?relevant ?interrupt t.solver
        ~assumptions:(assumptions @ [ ntl ])
    in
    let info = { last_target_lit = ntl; last_result = can_be_false } in
    match can_be_false with
    | Solver.Unknown -> Undetermined, info
    | Solver.Unsat -> Contradictory, info
    | Solver.Sat -> Forced false, info)
  | Solver.Sat -> (
    let ntl = Lit.negate tl in
    let can_be_false =
      Solver.solve ?budget ?relevant ?interrupt t.solver
        ~assumptions:(assumptions @ [ ntl ])
    in
    let info = { last_target_lit = ntl; last_result = can_be_false } in
    match can_be_false with
    | Solver.Unknown -> Undetermined, info
    | Solver.Unsat -> Forced true, info
    | Solver.Sat -> Free, info)

let query_forced ?budget ?relevant ?interrupt t ~assumptions ~target :
    query_result =
  fst (query_forced_info ?budget ?relevant ?interrupt t ~assumptions ~target)
