(** Insert flip-flop stages behind a fraction of datapath cells, making the
    generated circuits sequential.  Muxtree and select cells are never
    staged (real RTL registers tree outputs, not tree internals). *)

val insert_registers : Netlist.Circuit.t -> seed:int -> percent:int -> unit
