(* A circuit: a single flat module holding wires and cells.

   Wires and cells carry integer ids.  Cells are stored in a mutable table so
   optimization passes can rewrite them in place; structural indices
   (drivers, fanout) are derived on demand by {!Index}. *)

type wire = {
  wire_id : int;
  wire_name : string;
  width : int;
}

type port_dir = Input | Output

type t = {
  name : string;
  mutable next_wire_id : int;
  mutable next_cell_id : int;
  wires : (int, wire) Hashtbl.t;
  cells : (int, Cell.t) Hashtbl.t;
  mutable ports : (port_dir * wire) list; (* in declaration order, reversed *)
}

let create name =
  {
    name;
    next_wire_id = 0;
    next_cell_id = 0;
    wires = Hashtbl.create 64;
    cells = Hashtbl.create 64;
    ports = [];
  }

(* --- wires --- *)

let add_wire t ?name ~width () =
  if width <= 0 then invalid_arg "Circuit.add_wire: width must be positive";
  let id = t.next_wire_id in
  t.next_wire_id <- id + 1;
  let wire_name =
    match name with Some n -> n | None -> Printf.sprintf "w%d" id
  in
  let w = { wire_id = id; wire_name; width } in
  Hashtbl.replace t.wires id w;
  w

let wire t id =
  match Hashtbl.find_opt t.wires id with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Circuit.wire: no wire %d" id)

let wire_opt t id = Hashtbl.find_opt t.wires id

let remove_wire t id = Hashtbl.remove t.wires id

(* The full sigspec covering a wire, LSB first. *)
let sig_of_wire (w : wire) : Bits.sigspec =
  Array.init w.width (fun i -> Bits.Of_wire (w.wire_id, i))

let bit_of_wire (w : wire) : Bits.bit =
  if w.width <> 1 then
    invalid_arg "Circuit.bit_of_wire: wire is not single-bit";
  Bits.Of_wire (w.wire_id, 0)

(* Fresh anonymous wire returned directly as a sigspec. *)
let fresh_sig t ~width = sig_of_wire (add_wire t ~width ())
let fresh_bit t = bit_of_wire (add_wire t ~width:1 ())

(* --- ports --- *)

let add_input t name ~width =
  let w = add_wire t ~name ~width () in
  t.ports <- (Input, w) :: t.ports;
  w

let add_output t name ~width =
  let w = add_wire t ~name ~width () in
  t.ports <- (Output, w) :: t.ports;
  w

(* Mark an existing wire as an output port. *)
let set_output t w = t.ports <- (Output, w) :: t.ports

let inputs t =
  List.rev t.ports
  |> List.filter_map (function Input, w -> Some w | Output, _ -> None)

let outputs t =
  List.rev t.ports
  |> List.filter_map (function Output, w -> Some w | Input, _ -> None)

let input_bits t = List.concat_map (fun w -> Array.to_list (sig_of_wire w)) (inputs t)
let output_bits t = List.concat_map (fun w -> Array.to_list (sig_of_wire w)) (outputs t)

(* --- cells --- *)

let add_cell t (c : Cell.t) =
  Cell.check_widths c;
  let id = t.next_cell_id in
  t.next_cell_id <- id + 1;
  Hashtbl.replace t.cells id c;
  id

let cell t id =
  match Hashtbl.find_opt t.cells id with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Circuit.cell: no cell %d" id)

let cell_opt t id = Hashtbl.find_opt t.cells id

let replace_cell t id (c : Cell.t) =
  Cell.check_widths c;
  if not (Hashtbl.mem t.cells id) then
    invalid_arg (Printf.sprintf "Circuit.replace_cell: no cell %d" id);
  Hashtbl.replace t.cells id c

let remove_cell t id = Hashtbl.remove t.cells id

let iter_cells f t = Hashtbl.iter f t.cells
let fold_cells f t acc = Hashtbl.fold f t.cells acc

let cell_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.cells [] |> List.sort compare

let cell_count t = Hashtbl.length t.cells
let wire_count t = Hashtbl.length t.wires

(* --- convenience constructors: build the cell, return its output --- *)

let mk_unary t op a =
  let ywidth =
    match (op : Cell.unary_op) with
    | Not -> Bits.width a
    | Logic_not | Reduce_and | Reduce_or | Reduce_xor | Reduce_bool -> 1
  in
  let y = fresh_sig t ~width:ywidth in
  ignore (add_cell t (Cell.Unary { op; a; y }));
  y

let mk_binary t op a b =
  let ywidth =
    match (op : Cell.binary_op) with
    | And | Or | Xor | Xnor | Add | Sub -> Bits.width a
    | Eq | Ne | Logic_and | Logic_or -> 1
  in
  let y = fresh_sig t ~width:ywidth in
  ignore (add_cell t (Cell.Binary { op; a; b; y }));
  y

let mk_mux t ~a ~b ~s =
  let y = fresh_sig t ~width:(Bits.width a) in
  ignore (add_cell t (Cell.Mux { a; b; s; y }));
  y

let mk_pmux t ~a ~b ~s =
  let y = fresh_sig t ~width:(Bits.width a) in
  ignore (add_cell t (Cell.Pmux { a; b; s; y }));
  y

let mk_dff t ~d =
  let q = fresh_sig t ~width:(Bits.width d) in
  ignore (add_cell t (Cell.Dff { d; q }));
  q

(* Single-bit helpers used heavily by generators and tests. *)
let mk_and t a b = (mk_binary t Cell.And [| a |] [| b |]).(0)
let mk_or t a b = (mk_binary t Cell.Or [| a |] [| b |]).(0)
let mk_xor t a b = (mk_binary t Cell.Xor [| a |] [| b |]).(0)
let mk_not t a = (mk_unary t Cell.Not [| a |]).(0)

let mk_eq_const t (s : Bits.sigspec) v =
  (mk_binary t Cell.Eq s (Bits.of_int ~width:(Bits.width s) v)).(0)

(* Copy the whole circuit (fresh tables, same ids). *)
let copy t =
  {
    name = t.name;
    next_wire_id = t.next_wire_id;
    next_cell_id = t.next_cell_id;
    wires = Hashtbl.copy t.wires;
    cells = Hashtbl.copy t.cells;
    ports = t.ports;
  }
