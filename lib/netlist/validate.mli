(** Well-formedness checks: single drivers, no dangling reads, width
    consistency, acyclicity. *)

type issue =
  | Multiple_drivers of Bits.bit
  | Dangling_wire_bit of Bits.bit  (** read or exported but never driven *)
  | Width_violation of int * string  (** cell id, message *)
  | Unknown_wire of int
  | Cyclic of int list
      (** A concrete witness: the cell ids on one shortest combinational
          cycle through the loop the topological sort found. *)

val pp_issue : Format.formatter -> issue -> unit
(** [Cyclic] prints the witness path, e.g.
    ["combinational cycle: 3 -> 7 -> 3"]. *)

val check : Circuit.t -> issue list
val is_well_formed : Circuit.t -> bool

val check_exn : Circuit.t -> unit
(** @raise Failure listing all issues, if any. *)
