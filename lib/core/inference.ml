(* Rule-based value inference (the paper's Table I, generalized).

   Given a set of known signal values, propagate through the sub-graph
   cells both forward (gate evaluation with partially-known inputs) and
   backward (e.g. "a|b = 0 implies a = b = 0", "a|b = 1 and a = 0 implies
   b = 1") until a fixpoint.  A contradiction means the current muxtree
   path is unreachable. *)

open Netlist

exception Contradiction

type known = bool Bits.Bit_tbl.t

(* Optional rule attribution: when a track table is installed, every fact
   newly derived by [set] is tagged with the rule family of the cell being
   stepped (e.g. "or", "eq", "mux").  A global pair of refs rather than
   threading through every helper: [set]/[link] are called from a dozen
   sites inside [step] which have no cell context of their own.
   Domain-local so concurrent scheduler workers each track their own
   propagation. *)
let track_tbl : string Bits.Bit_tbl.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let track_rule : string Domain.DLS.key = Domain.DLS.new_key (fun () -> "seed")

let rule_name (cell : Cell.t) =
  match cell with
  | Cell.Unary { op; _ } -> Cell.unary_op_name op
  | Cell.Binary { op; _ } -> Cell.binary_op_name op
  | Cell.Mux _ -> "mux"
  | Cell.Pmux _ -> "pmux"
  | Cell.Dff _ -> "dff"

let read (k : known) (b : Bits.bit) : bool option =
  match b with
  | Bits.C0 -> Some false
  | Bits.C1 -> Some true
  | Bits.Cx -> None
  | Bits.Of_wire _ -> Bits.Bit_tbl.find_opt k b

let set (k : known) (b : Bits.bit) (v : bool) : bool =
  (* returns true if this is new information *)
  match b with
  | Bits.C0 -> if v then raise Contradiction else false
  | Bits.C1 -> if v then false else raise Contradiction
  | Bits.Cx -> false
  | Bits.Of_wire _ -> (
    match Bits.Bit_tbl.find_opt k b with
    | Some old -> if old <> v then raise Contradiction else false
    | None ->
      Bits.Bit_tbl.replace k b v;
      (match Domain.DLS.get track_tbl with
      | Some t -> Bits.Bit_tbl.replace t b (Domain.DLS.get track_rule)
      | None -> ());
      true)

(* link two bits as equal (resp. opposite); returns true on progress *)
let link k a b ~equal =
  match read k a, read k b with
  | Some va, None -> set k b (if equal then va else not va)
  | None, Some vb -> set k a (if equal then vb else not vb)
  | Some va, Some vb ->
    if (va = vb) <> equal then raise Contradiction else false
  | None, None -> false

(* All bits known? collect them *)
let all_known k (s : Bits.sigspec) : bool list option =
  let rec go i acc =
    if i >= Array.length s then Some (List.rev acc)
    else
      match read k s.(i) with
      | Some v -> go (i + 1) (v :: acc)
      | None -> None
  in
  go 0 []

(* "is this vector known nonzero / known zero?" *)
let vec_nonzero k s =
  if Array.exists (fun b -> read k b = Some true) s then Some true
  else if Array.for_all (fun b -> read k b = Some false) s then Some false
  else None

(* force every bit of [s] to [v] *)
let force_all k s v =
  Array.fold_left (fun p b -> if set k b v then true else p) false s

(* if all but one bit of [s] are known to be [filler], force the last to
   [lastv] (used for reduce_or=1, reduce_and=0, logic_not=0 patterns) *)
let force_last k s ~filler ~lastv =
  let unknown = ref [] in
  let ok =
    Array.for_all
      (fun b ->
        match read k b with
        | Some v -> v = filler
        | None ->
          unknown := b :: !unknown;
          List.length !unknown <= 1)
      s
  in
  match ok, !unknown with
  | true, [ b ] -> set k b lastv
  | true, [] -> raise Contradiction (* all fillers but output says otherwise *)
  | _, _ -> false

(* One propagation step for a cell; returns true on progress. *)
let step (k : known) (cell : Cell.t) : bool =
  let progress = ref false in
  let note p = if p then progress := true in
  (match cell with
  | Cell.Unary { op = Cell.Not; a; y } ->
    Array.iteri (fun i yb -> note (link k yb a.(i) ~equal:false)) y
  | Cell.Unary { op = Cell.Logic_not; a; y } -> (
    (match vec_nonzero k a with
    | Some nz -> note (set k y.(0) (not nz))
    | None -> ());
    match read k y.(0) with
    | Some true -> note (force_all k a false)
    | Some false -> note (force_last k a ~filler:false ~lastv:true)
    | None -> ())
  | Cell.Unary { op = Cell.Reduce_or | Cell.Reduce_bool; a; y } -> (
    (match vec_nonzero k a with
    | Some nz -> note (set k y.(0) nz)
    | None -> ());
    match read k y.(0) with
    | Some false -> note (force_all k a false)
    | Some true -> note (force_last k a ~filler:false ~lastv:true)
    | None -> ())
  | Cell.Unary { op = Cell.Reduce_and; a; y } -> (
    (if Array.exists (fun b -> read k b = Some false) a then
       note (set k y.(0) false)
     else if Array.for_all (fun b -> read k b = Some true) a then
       note (set k y.(0) true));
    match read k y.(0) with
    | Some true -> note (force_all k a true)
    | Some false -> note (force_last k a ~filler:true ~lastv:false)
    | None -> ())
  | Cell.Unary { op = Cell.Reduce_xor; a; y } -> (
    match all_known k a with
    | Some vs ->
      note (set k y.(0) (List.fold_left (fun acc v -> acc <> v) false vs))
    | None -> (
      (* y and all-but-one input known: solve for the last *)
      match read k y.(0) with
      | None -> ()
      | Some yv ->
        let unknown = ref [] in
        let parity = ref false in
        Array.iter
          (fun b ->
            match read k b with
            | Some v -> if v then parity := not !parity
            | None -> unknown := b :: !unknown)
          a;
        (match !unknown with
        | [ b ] -> note (set k b (yv <> !parity))
        | [] | _ :: _ -> ())))
  | Cell.Binary { op = Cell.And; a; b; y } ->
    Array.iteri
      (fun i yb ->
        (match read k a.(i), read k b.(i) with
        | Some false, _ | _, Some false -> note (set k yb false)
        | Some true, Some true -> note (set k yb true)
        | Some true, None -> note (link k yb b.(i) ~equal:true)
        | None, Some true -> note (link k yb a.(i) ~equal:true)
        | None, None -> ());
        match read k yb with
        | Some true ->
          note (set k a.(i) true);
          note (set k b.(i) true)
        | Some false -> (
          match read k a.(i), read k b.(i) with
          | Some true, None -> note (set k b.(i) false)
          | None, Some true -> note (set k a.(i) false)
          | _, _ -> ())
        | None -> ())
      y
  | Cell.Binary { op = Cell.Or; a; b; y } ->
    (* Table I, per bit *)
    Array.iteri
      (fun i yb ->
        (match read k a.(i), read k b.(i) with
        | Some true, _ | _, Some true -> note (set k yb true)
        | Some false, Some false -> note (set k yb false)
        | Some false, None -> note (link k yb b.(i) ~equal:true)
        | None, Some false -> note (link k yb a.(i) ~equal:true)
        | None, None -> ());
        match read k yb with
        | Some false ->
          note (set k a.(i) false);
          note (set k b.(i) false)
        | Some true -> (
          match read k a.(i), read k b.(i) with
          | Some false, None -> note (set k b.(i) true)
          | None, Some false -> note (set k a.(i) true)
          | _, _ -> ())
        | None -> ())
      y
  | Cell.Binary { op = Cell.Xor; a; b; y } ->
    Array.iteri
      (fun i yb ->
        match read k a.(i), read k b.(i), read k yb with
        | Some va, Some vb, _ -> note (set k yb (va <> vb))
        | Some va, None, Some vy -> note (set k b.(i) (va <> vy))
        | None, Some vb, Some vy -> note (set k a.(i) (vb <> vy))
        | _, _, _ -> ())
      y
  | Cell.Binary { op = Cell.Xnor; a; b; y } ->
    Array.iteri
      (fun i yb ->
        match read k a.(i), read k b.(i), read k yb with
        | Some va, Some vb, _ -> note (set k yb (va = vb))
        | Some va, None, Some vy -> note (set k b.(i) (va = vy))
        | None, Some vb, Some vy -> note (set k a.(i) (vb = vy))
        | _, _, _ -> ())
      y
  | Cell.Binary { op = Cell.Eq; a; b; y } -> (
    (* forward *)
    let some_diff =
      Array.exists2
        (fun ab bb ->
          match read k ab, read k bb with
          | Some va, Some vb -> va <> vb
          | _, _ -> false)
        a b
    in
    if some_diff then note (set k y.(0) false)
    else if
      Array.for_all2
        (fun ab bb ->
          match read k ab, read k bb with
          | Some va, Some vb -> va = vb
          | _, _ -> false)
        a b
    then note (set k y.(0) true);
    (* backward *)
    match read k y.(0) with
    | Some true ->
      Array.iteri (fun i ab -> note (link k ab b.(i) ~equal:true)) a
    | Some false ->
      (* all pairs but one known equal: the remaining pair must differ *)
      if not some_diff then begin
        let candidates = ref [] in
        Array.iteri
          (fun i ab ->
            match read k ab, read k b.(i) with
            | Some _, Some _ -> ()
            | _, _ -> candidates := i :: !candidates)
          a;
        match !candidates with
        | [ i ] -> note (link k a.(i) b.(i) ~equal:false)
        | [] -> raise Contradiction
        | _ :: _ -> ()
      end
    | None -> ())
  | Cell.Binary { op = Cell.Ne; a; b; y } -> (
    let some_diff =
      Array.exists2
        (fun ab bb ->
          match read k ab, read k bb with
          | Some va, Some vb -> va <> vb
          | _, _ -> false)
        a b
    in
    if some_diff then note (set k y.(0) true)
    else if
      Array.for_all2
        (fun ab bb ->
          match read k ab, read k bb with
          | Some va, Some vb -> va = vb
          | _, _ -> false)
        a b
    then note (set k y.(0) false);
    match read k y.(0) with
    | Some false ->
      Array.iteri (fun i ab -> note (link k ab b.(i) ~equal:true)) a
    | Some true | None -> ())
  | Cell.Binary { op = Cell.Logic_and; a; b; y } -> (
    (match vec_nonzero k a, vec_nonzero k b with
    | Some false, _ | _, Some false -> note (set k y.(0) false)
    | Some true, Some true -> note (set k y.(0) true)
    | _, _ -> ());
    match read k y.(0) with
    | Some true ->
      if Bits.width a = 1 then note (set k a.(0) true);
      if Bits.width b = 1 then note (set k b.(0) true)
    | Some false -> (
      match vec_nonzero k a, vec_nonzero k b with
      | Some true, _ -> note (force_all k b false)
      | _, Some true -> note (force_all k a false)
      | _, _ -> ())
    | None -> ())
  | Cell.Binary { op = Cell.Logic_or; a; b; y } -> (
    (match vec_nonzero k a, vec_nonzero k b with
    | Some true, _ | _, Some true -> note (set k y.(0) true)
    | Some false, Some false -> note (set k y.(0) false)
    | _, _ -> ());
    match read k y.(0) with
    | Some false ->
      note (force_all k a false);
      note (force_all k b false)
    | Some true -> (
      match vec_nonzero k a, vec_nonzero k b with
      | Some false, _ when Bits.width b = 1 -> note (set k b.(0) true)
      | _, Some false when Bits.width a = 1 -> note (set k a.(0) true)
      | _, _ -> ())
    | None -> ())
  | Cell.Binary { op = Cell.Add; a; b; y } -> (
    match all_known k a, all_known k b with
    | Some va, Some vb ->
      let carry = ref false in
      List.iteri
        (fun i (bita, bitb) ->
          let s = (bita <> bitb) <> !carry in
          carry := (bita && bitb) || (!carry && (bita <> bitb));
          note (set k y.(i) s))
        (List.combine va vb)
    | _, _ -> ())
  | Cell.Binary { op = Cell.Sub; a; b; y } -> (
    match all_known k a, all_known k b with
    | Some va, Some vb ->
      let carry = ref true in
      List.iteri
        (fun i (bita, bitb0) ->
          let bitb = not bitb0 in
          let s = (bita <> bitb) <> !carry in
          carry := (bita && bitb) || (!carry && (bita <> bitb));
          note (set k y.(i) s))
        (List.combine va vb)
    | _, _ -> ())
  | Cell.Mux { a; b; s; y } -> (
    match read k s with
    | Some true -> Array.iteri (fun i yb -> note (link k yb b.(i) ~equal:true)) y
    | Some false ->
      Array.iteri (fun i yb -> note (link k yb a.(i) ~equal:true)) y
    | None ->
      Array.iteri
        (fun i yb ->
          (* both branches agree -> output known *)
          (match read k a.(i), read k b.(i) with
          | Some va, Some vb when va = vb -> note (set k yb va)
          | _, _ -> ());
          (* output contradicts one branch -> select is decided *)
          match read k yb, read k a.(i), read k b.(i) with
          | Some vy, Some va, _ when vy <> va -> note (set k s true)
          | Some vy, _, Some vb when vy <> vb -> note (set k s false)
          | _, _, _ -> ())
        y)
  | Cell.Pmux { a; b; s; y } -> (
    (* resolve the priority scan if enough selects are known *)
    let w = Bits.width a in
    let rec pick i =
      if i >= Bits.width s then Some None (* default *)
      else
        match read k s.(i) with
        | Some true -> Some (Some i)
        | Some false -> pick (i + 1)
        | None -> None
    in
    match pick 0 with
    | Some None -> Array.iteri (fun i yb -> note (link k yb a.(i) ~equal:true)) y
    | Some (Some part) ->
      Array.iteri
        (fun i yb -> note (link k yb b.((part * w) + i) ~equal:true))
        y
    | None -> ())
  | Cell.Dff _ -> ());
  !progress

(* Propagate to fixpoint over [cells] (any order; we sweep repeatedly).
   Returns the number of sweeps; raises [Contradiction] when the known
   values are inconsistent. *)
let propagate ?track (circuit : Circuit.t) (k : known) (cells : int list) :
    int =
  let rec loop sweeps =
    if sweeps > 64 then sweeps
    else begin
      let progress = ref false in
      List.iter
        (fun id ->
          match Circuit.cell_opt circuit id with
          | Some cell ->
            if Domain.DLS.get track_tbl <> None then
              Domain.DLS.set track_rule (rule_name cell);
            if step k cell then progress := true
          | None -> ())
        cells;
      if !progress then loop (sweeps + 1) else sweeps
    end
  in
  match track with
  | None -> loop 0
  | Some t ->
    Domain.DLS.set track_tbl (Some t);
    (* Contradiction must not leave the recorder installed *)
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set track_tbl None)
      (fun () -> loop 0)
