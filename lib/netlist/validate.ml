(* Well-formedness checks for circuits.  Used by tests and after every
   optimization pass in debug builds. *)

type issue =
  | Multiple_drivers of Bits.bit
  | Dangling_wire_bit of Bits.bit (* read but never driven *)
  | Width_violation of int * string (* cell id, message *)
  | Unknown_wire of int (* referenced wire id missing from the wire table *)
  | Cyclic

let pp_issue ppf = function
  | Multiple_drivers b -> Fmt.pf ppf "multiple drivers for %a" Bits.pp_bit b
  | Dangling_wire_bit b -> Fmt.pf ppf "bit %a read but undriven" Bits.pp_bit b
  | Width_violation (id, m) -> Fmt.pf ppf "cell %d: %s" id m
  | Unknown_wire id -> Fmt.pf ppf "unknown wire %d" id
  | Cyclic -> Fmt.pf ppf "combinational cycle"

let check (c : Circuit.t) : issue list =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  let driven = Bits.Bit_tbl.create 256 in
  List.iter
    (fun b -> Bits.Bit_tbl.replace driven b ())
    (Circuit.input_bits c);
  let check_wire_ref b =
    match b with
    | Bits.Of_wire (wid, off) -> (
      match Circuit.wire_opt c wid with
      | None -> add (Unknown_wire wid)
      | Some w -> if off < 0 || off >= w.Circuit.width then add (Unknown_wire wid))
    | Bits.C0 | Bits.C1 | Bits.Cx -> ()
  in
  Circuit.iter_cells
    (fun id cell ->
      (match Cell.check_widths cell with
      | () -> ()
      | exception Cell.Width_error m -> add (Width_violation (id, m)));
      List.iter check_wire_ref (Cell.input_bits cell);
      List.iter
        (fun b ->
          check_wire_ref b;
          if Bits.Bit_tbl.mem driven b then add (Multiple_drivers b)
          else Bits.Bit_tbl.replace driven b ())
        (Cell.output_bits cell))
    c;
  (* every bit read by a cell or exported as an output must be driven *)
  let check_read b =
    if (not (Bits.is_const b)) && not (Bits.Bit_tbl.mem driven b) then
      add (Dangling_wire_bit b)
  in
  Circuit.iter_cells
    (fun _ cell -> List.iter check_read (Cell.input_bits cell))
    c;
  List.iter check_read (Circuit.output_bits c);
  if not (Topo.is_acyclic c) then add Cyclic;
  List.rev !issues

let is_well_formed c = check c = []

let check_exn c =
  match check c with
  | [] -> ()
  | issues ->
    let msg = Fmt.str "@[<v>%a@]" (Fmt.list pp_issue) issues in
    failwith ("Validate.check_exn: " ^ msg)
