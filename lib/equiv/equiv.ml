(* Combinational equivalence checking of two circuits.

   Both circuits are mapped to AIGs; primary inputs/outputs are matched by
   name (flip-flop boundaries become pseudo PIs/POs, so sequential designs
   are checked as their combinational transition+output functions — exact
   for the optimizations in this repository, which never touch dffs).

   A miter (OR of output XORs) is encoded to CNF and solved: UNSAT means
   equivalent. *)

open Netlist

type verdict =
  | Equivalent
  | Not_equivalent of string (* name of a differing output *)
  | Inconclusive (* budget exhausted *)

let pp_verdict ppf = function
  | Equivalent -> Fmt.string ppf "equivalent"
  | Not_equivalent o -> Fmt.pf ppf "NOT equivalent (output %s)" o
  | Inconclusive -> Fmt.string ppf "inconclusive"

(* Check that two circuits have the same PO names; returns pairs. *)
let match_outputs (g1 : Aiger.Aig.t) (g2 : Aiger.Aig.t) =
  let pos1 = Aiger.Aig.pos g1 and pos2 = Aiger.Aig.pos g2 in
  let tbl2 = Hashtbl.create 16 in
  List.iter (fun (n, l) -> Hashtbl.replace tbl2 n l) pos2;
  let missing =
    List.find_opt (fun (n, _) -> not (Hashtbl.mem tbl2 n)) pos1
  in
  match missing with
  | Some (n, _) -> Error n
  | None ->
    if List.length pos1 <> List.length pos2 then
      let tbl1 = Hashtbl.create 16 in
      List.iter (fun (n, l) -> Hashtbl.replace tbl1 n l) pos1;
      (match List.find_opt (fun (n, _) -> not (Hashtbl.mem tbl1 n)) pos2 with
      | Some (n, _) -> Error n
      | None -> Ok (List.map (fun (n, l) -> n, l, Hashtbl.find tbl2 n) pos1))
    else Ok (List.map (fun (n, l) -> n, l, Hashtbl.find tbl2 n) pos1)

(* Monolithic miter encoding: sound and complete but does not scale to
   large structurally-similar circuits; {!check} uses the FRAIG sweep
   instead and this remains for small instances and for testing. *)
let check_aigs_monolithic ?budget (g1 : Aiger.Aig.t) (g2 : Aiger.Aig.t) :
    verdict =
  match match_outputs g1 g2 with
  | Error name -> Not_equivalent name
  | Ok pairs ->
    let solver = Cdcl.Solver.create () in
    let roots1 = List.map (fun (_, l, _) -> l) pairs in
    let roots2 = List.map (fun (_, _, l) -> l) pairs in
    let f1 = Aiger.Aig.to_cnf g1 solver roots1 in
    let f2 = Aiger.Aig.to_cnf g2 solver roots2 in
    (* tie matching primary inputs together *)
    List.iter
      (fun (name, _) ->
        match Aiger.Aig.pi_lit g2 name with
        | None -> ()
        | Some l2 -> (
          match Aiger.Aig.pi_lit g1 name with
          | None -> ()
          | Some l1 ->
            let s1 = f1 l1 and s2 = f2 l2 in
            Cdcl.Solver.add_clause solver [ Cdcl.Lit.negate s1; s2 ];
            Cdcl.Solver.add_clause solver [ s1; Cdcl.Lit.negate s2 ]))
      (Aiger.Aig.pis g1);
    (* miter: OR over (o1 xor o2) must be satisfiable for inequivalence *)
    let diffs =
      List.map
        (fun (_, l1, l2) ->
          let s1 = f1 l1 and s2 = f2 l2 in
          let d = Cdcl.Lit.of_var (Cdcl.Solver.new_var solver) in
          (* d <-> s1 xor s2 *)
          Cdcl.Solver.add_clause solver
            [ Cdcl.Lit.negate d; s1; s2 ];
          Cdcl.Solver.add_clause solver
            [ Cdcl.Lit.negate d; Cdcl.Lit.negate s1; Cdcl.Lit.negate s2 ];
          Cdcl.Solver.add_clause solver [ d; Cdcl.Lit.negate s1; s2 ];
          Cdcl.Solver.add_clause solver [ d; s1; Cdcl.Lit.negate s2 ];
          d)
        pairs
    in
    Cdcl.Solver.add_clause solver diffs;
    (match Cdcl.Solver.solve ?budget solver with
    | Cdcl.Solver.Unsat -> Equivalent
    | Cdcl.Solver.Unknown -> Inconclusive
    | Cdcl.Solver.Sat ->
      (* identify one differing output for the report *)
      let bad =
        List.find_opt
          (fun ((_, _, _), d) ->
            Cdcl.Solver.model_value solver (Cdcl.Lit.var d)
            <> Cdcl.Lit.is_negated d)
          (List.combine pairs diffs)
      in
      let name =
        match bad with Some ((n, _, _), _) -> n | None -> "?"
      in
      Not_equivalent name)

(* The default checker: FRAIG sweep. *)
let check_aigs ?budget (g1 : Aiger.Aig.t) (g2 : Aiger.Aig.t) : verdict =
  match Aiger.Fraig.check_aigs ?budget g1 g2 with
  | Aiger.Fraig.Equivalent -> Equivalent
  | Aiger.Fraig.Not_equivalent o -> Not_equivalent o
  | Aiger.Fraig.Inconclusive -> Inconclusive

let check ?budget (c1 : Circuit.t) (c2 : Circuit.t) : verdict =
  let m1 = Aiger.Aigmap.map c1 and m2 = Aiger.Aigmap.map c2 in
  check_aigs ?budget m1.Aiger.Aigmap.aig m2.Aiger.Aigmap.aig

let is_equivalent ?budget c1 c2 =
  match check ?budget c1 c2 with
  | Equivalent -> true
  | Not_equivalent _ | Inconclusive -> false
