(* Benchmark harness: regenerates every table and figure of the paper.

     table2     — Table II: AIG areas Original / Yosys / smaRTLy + ratio
     table3     — Table III: SAT-only / Rebuild-only / Full reductions
     industrial — Section IV-B: the mux-rich industrial benchmark
     figures    — Figs. 1/2/3/5/6/7 and the Listing-2 assignment claim
     ablation   — design-choice sweeps (distance k, pruning, rules, ...)
     timing     — Bechamel micro-benchmarks of the passes

   Run with no arguments to regenerate everything the paper reports
   (table2 table3 industrial figures); pass section names to select.
   With --json, each table section additionally writes a machine-readable
   BENCH_<section>.json (areas, reductions, per-phase wall times). *)

open Netlist

let emit_json = ref false

let write_json section (j : Obs.Json.t) =
  if !emit_json then begin
    let path = Printf.sprintf "BENCH_%s.json" section in
    let oc = open_out path in
    output_string oc (Obs.Json.to_string ~pretty:true j);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n" path
  end

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  r, Unix.gettimeofday () -. t0

let check_equivalence ?(full_cec_limit = 9500) (orig : Circuit.t)
    (opt : Circuit.t) : string =
  let area = Aiger.Aigmap.aig_area orig in
  if area <= full_cec_limit then
    match Equiv.check opt orig with
    | Equiv.Equivalent -> "ok(cec)"
    | Equiv.Not_equivalent o -> "FAIL:" ^ o
    | Equiv.Inconclusive -> "cec?"
  else
    match Rtl_sim.Vector.random_equiv ~rounds:64 orig opt with
    | None -> "ok(sim64)"
    | Some (_, o) -> "FAIL:" ^ o

(* one optimized variant of a circuit *)
let optimized flow (c0 : Circuit.t) =
  let c = Circuit.copy c0 in
  (match flow with
  | `Yosys -> ignore (Smartly.Driver.yosys c)
  | `Smartly cfg -> ignore (Smartly.Driver.smartly ~cfg c));
  c

type case_result = {
  name : string;
  orig : int;
  yosys : int;
  sat : int;
  rebuild : int;
  full : int;
  equiv : string;
  (* per-phase wall-clock seconds (flow only, AIG mapping excluded) *)
  t_yosys : float;
  t_sat : float;
  t_rebuild : float;
  t_full : float;
  (* SAT conflicts-per-query percentiles of the full-flow run *)
  conf_p50 : float;
  conf_p90 : float;
  conf_max : float;
}

let reduction ~yosys v =
  if yosys = 0 then 0.0
  else 100.0 *. (1.0 -. (float_of_int v /. float_of_int yosys))

let run_case (p : Workloads.Profiles.profile) : case_result =
  (* every case starts from zeroed instruments: without this, per-case
     metrics (and the JSON derived from them) would accumulate across the
     whole table run *)
  Obs.Metrics.reset ();
  Smartly.Engine.Sat_log.reset ();
  let c0 = Workloads.Profiles.circuit p in
  let orig = Aiger.Aigmap.aig_area c0 in
  let cy, t_yosys = timed (fun () -> optimized `Yosys c0) in
  let yosys = Aiger.Aigmap.aig_area cy in
  let cs, t_sat =
    timed (fun () -> optimized (`Smartly Smartly.Config.sat_only) c0)
  in
  let sat = Aiger.Aigmap.aig_area cs in
  let cr, t_rebuild =
    timed (fun () -> optimized (`Smartly Smartly.Config.rebuild_only) c0)
  in
  let rebuild = Aiger.Aigmap.aig_area cr in
  (* re-zero so the recorded query percentiles describe the full flow of
     this case only, not the sat/rebuild variants above *)
  Obs.Metrics.reset ();
  Smartly.Engine.Sat_log.reset ();
  let cf, t_full =
    timed (fun () -> optimized (`Smartly Smartly.Config.default) c0)
  in
  let conf =
    Obs.Metrics.histogram_stats
      (Obs.Metrics.histogram "engine.conflicts_per_query")
  in
  let full = Aiger.Aigmap.aig_area cf in
  let equiv = check_equivalence c0 cf in
  {
    name = p.Workloads.Profiles.name;
    orig;
    yosys;
    sat;
    rebuild;
    full;
    equiv;
    t_yosys;
    t_sat;
    t_rebuild;
    t_full;
    conf_p50 = conf.Obs.Metrics.p50;
    conf_p90 = conf.Obs.Metrics.p90;
    conf_max = conf.Obs.Metrics.max_v;
  }

let case_json (r : case_result) : Obs.Json.t =
  let open Obs.Json in
  Obj
    [
      "name", Str r.name;
      "orig_area", num_of_int r.orig;
      "yosys_area", num_of_int r.yosys;
      "sat_area", num_of_int r.sat;
      "rebuild_area", num_of_int r.rebuild;
      "smartly_area", num_of_int r.full;
      "reduction_pct", Num (reduction ~yosys:r.yosys r.full);
      "equivalence", Str r.equiv;
      ( "seconds",
        Obj
          [
            "yosys", Num r.t_yosys;
            "sat", Num r.t_sat;
            "rebuild", Num r.t_rebuild;
            "smartly", Num r.t_full;
          ] );
      ( "sat_conflicts_per_query",
        Obj
          [
            "p50", Num r.conf_p50;
            "p90", Num r.conf_p90;
            "max", Num r.conf_max;
          ] );
    ]

let public_results =
  lazy (List.map run_case Workloads.Profiles.public_benchmarks)

let left = Report.Table.column ~align:Report.Table.Left
let right t = Report.Table.column t

(* --- Table II --- *)

let table2 () =
  print_endline "";
  print_endline
    "Table II: AIG areas, Yosys baseline vs smaRTLy (10 public stand-ins)";
  let results = Lazy.force public_results in
  let rows =
    List.map
      (fun r ->
        [
          r.name;
          string_of_int r.orig;
          string_of_int r.yosys;
          string_of_int r.full;
          Report.Table.pct (reduction ~yosys:r.yosys r.full);
          Report.Table.secs r.t_yosys;
          Report.Table.secs r.t_full;
          r.equiv;
        ])
      results
  in
  let avg f =
    List.fold_left (fun acc r -> acc +. f r) 0.0 results
    /. float_of_int (List.length results)
  in
  let avg_row =
    [
      "Average";
      Printf.sprintf "%.1f" (avg (fun r -> float_of_int r.orig));
      Printf.sprintf "%.1f" (avg (fun r -> float_of_int r.yosys));
      Printf.sprintf "%.1f" (avg (fun r -> float_of_int r.full));
      Report.Table.pct (avg (fun r -> reduction ~yosys:r.yosys r.full));
      Report.Table.secs (avg (fun r -> r.t_yosys));
      Report.Table.secs (avg (fun r -> r.t_full));
      "";
    ]
  in
  Report.Table.print
    ~columns:
      [ left "Case"; right "Original"; right "Yosys"; right "smaRTLy";
        right "Ratio"; right "t(Yosys)"; right "t(smaRTLy)";
        left "Equivalence" ]
    ~rows:(rows @ [ avg_row ]);
  write_json "table2"
    (Obs.Json.Obj
       [
         "schema", Obs.Json.Str "smartly-bench-v1";
         "section", Obs.Json.Str "table2";
         "cases", Obs.Json.List (List.map case_json results);
       ]);
  print_endline
    "(paper: avg extra reduction 8.95%; largest on case-heavy and\n\
     correlated-control designs, near zero on flat datapaths)"

(* --- Table III --- *)

let table3 () =
  print_endline "";
  print_endline
    "Table III: reduction vs Yosys by individual method and combined";
  let results = Lazy.force public_results in
  let rows =
    List.map
      (fun r ->
        [
          r.name;
          Report.Table.pct (reduction ~yosys:r.yosys r.sat);
          Report.Table.pct (reduction ~yosys:r.yosys r.rebuild);
          Report.Table.pct (reduction ~yosys:r.yosys r.full);
          Report.Table.secs r.t_sat;
          Report.Table.secs r.t_rebuild;
          Report.Table.secs r.t_full;
          Printf.sprintf "%.0f" r.conf_p50;
          Printf.sprintf "%.0f" r.conf_p90;
          Printf.sprintf "%.0f" r.conf_max;
        ])
      results
  in
  let avg f =
    List.fold_left (fun acc r -> acc +. f r) 0.0 results
    /. float_of_int (List.length results)
  in
  let avg_row =
    [
      "Average";
      Report.Table.pct (avg (fun r -> reduction ~yosys:r.yosys r.sat));
      Report.Table.pct (avg (fun r -> reduction ~yosys:r.yosys r.rebuild));
      Report.Table.pct (avg (fun r -> reduction ~yosys:r.yosys r.full));
      Report.Table.secs (avg (fun r -> r.t_sat));
      Report.Table.secs (avg (fun r -> r.t_rebuild));
      Report.Table.secs (avg (fun r -> r.t_full));
      "";
      "";
      "";
    ]
  in
  Report.Table.print
    ~columns:
      [ left "Case"; right "SAT"; right "Rebuild"; right "Full";
        right "t(SAT)"; right "t(Rebuild)"; right "t(Full)";
        right "cfl(p50)"; right "cfl(p90)"; right "cfl(max)" ]
    ~rows:(rows @ [ avg_row ]);
  write_json "table3"
    (Obs.Json.Obj
       [
         "schema", Obs.Json.Str "smartly-bench-v1";
         "section", Obs.Json.Str "table3";
         "cases", Obs.Json.List (List.map case_json results);
       ]);
  print_endline
    "(paper: SAT 3.57% / Rebuild 4.39% / Full 8.95% on average; which\n\
     method dominates varies per case, Full >= max(SAT, Rebuild))"

(* --- Industrial (Section IV-B) --- *)

let industrial () =
  print_endline "";
  print_endline
    "Industrial benchmark (Section IV-B): mux/pmux-rich test points";
  let points =
    (* the first half of the points keeps the default harness run within
       minutes on one core; `bench industrial-all` runs all eight *)
    List.filteri (fun i _ -> i < 4) Workloads.Profiles.industrial_benchmarks
  in
  let results =
    List.map
      (fun p ->
        Obs.Metrics.reset ();
        Smartly.Engine.Sat_log.reset ();
        let c0 = Workloads.Profiles.circuit p in
        let orig = Aiger.Aigmap.aig_area c0 in
        let cy, t_yosys = timed (fun () -> optimized `Yosys c0) in
        let yosys = Aiger.Aigmap.aig_area cy in
        let cf, t_full =
          timed (fun () -> optimized (`Smartly Smartly.Config.default) c0)
        in
        let full = Aiger.Aigmap.aig_area cf in
        let equiv = check_equivalence c0 cf in
        p.Workloads.Profiles.name, orig, yosys, full, equiv, t_yosys, t_full)
      points
  in
  let rows =
    List.map
      (fun (name, orig, yosys, full, equiv, t_yosys, t_full) ->
        [
          name;
          string_of_int orig;
          string_of_int yosys;
          string_of_int full;
          Report.Table.pct (reduction ~yosys full);
          Report.Table.secs t_yosys;
          Report.Table.secs t_full;
          equiv;
        ])
      results
  in
  Report.Table.print
    ~columns:
      [ left "Point"; right "Original"; right "Yosys"; right "smaRTLy";
        right "Extra reduction"; right "t(Yosys)"; right "t(smaRTLy)";
        left "Equivalence" ]
    ~rows;
  write_json "industrial"
    (Obs.Json.Obj
       [
         "schema", Obs.Json.Str "smartly-bench-v1";
         "section", Obs.Json.Str "industrial";
         ( "cases",
           Obs.Json.List
             (List.map
                (fun (name, orig, yosys, full, equiv, t_yosys, t_full) ->
                  let open Obs.Json in
                  Obj
                    [
                      "name", Str name;
                      "orig_area", num_of_int orig;
                      "yosys_area", num_of_int yosys;
                      "smartly_area", num_of_int full;
                      "reduction_pct", Num (reduction ~yosys full);
                      "equivalence", Str equiv;
                      ( "seconds",
                        Obj
                          [ "yosys", Num t_yosys; "smartly", Num t_full ] );
                    ])
                results) );
       ]);
  let avg =
    List.fold_left
      (fun acc (_, _, yosys, full, _, _, _) -> acc +. reduction ~yosys full)
      0.0 results
    /. float_of_int (List.length results)
  in
  Printf.printf
    "Average extra AIG-area reduction over Yosys: %.1f%%\n\
     (paper: 47.2%%; far above the public benchmarks because Yosys finds\n\
     almost nothing in selection-circuit-dominated designs)\n"
    avg

(* --- Figures --- *)

let expose c name (v : Bits.sigspec) =
  let y = Circuit.add_output c name ~width:(Bits.width v) in
  ignore
    (Circuit.add_cell c
       (Cell.Binary
          { op = Cell.Or; a = v; b = Bits.all_zero ~width:(Bits.width v);
            y = Circuit.sig_of_wire y }))

let fig1_circuit () =
  let c = Circuit.create "fig1" in
  let s = Circuit.add_input c "S" ~width:1 in
  let a = Circuit.add_input c "A" ~width:4 in
  let b = Circuit.add_input c "B" ~width:4 in
  let cc = Circuit.add_input c "C" ~width:4 in
  let sb = Circuit.bit_of_wire s in
  let inner =
    Circuit.mk_mux c ~a:(Circuit.sig_of_wire b) ~b:(Circuit.sig_of_wire a) ~s:sb
  in
  let outer = Circuit.mk_mux c ~a:(Circuit.sig_of_wire cc) ~b:inner ~s:sb in
  expose c "Y" outer;
  c

let fig2_circuit () =
  let c = Circuit.create "fig2" in
  let s = Circuit.add_input c "S" ~width:1 in
  let a = Circuit.add_input c "A" ~width:1 in
  let b = Circuit.add_input c "B" ~width:1 in
  let cc = Circuit.add_input c "C" ~width:1 in
  let sb = Circuit.bit_of_wire s in
  let inner =
    Circuit.mk_mux c ~a:(Circuit.sig_of_wire b) ~b:[| sb |]
      ~s:(Circuit.bit_of_wire a)
  in
  let outer = Circuit.mk_mux c ~a:(Circuit.sig_of_wire cc) ~b:inner ~s:sb in
  expose c "Y" outer;
  c

let fig3_circuit () =
  let c = Circuit.create "fig3" in
  let s = Circuit.add_input c "S" ~width:1 in
  let r = Circuit.add_input c "R" ~width:1 in
  let a = Circuit.add_input c "A" ~width:4 in
  let b = Circuit.add_input c "B" ~width:4 in
  let cc = Circuit.add_input c "C" ~width:4 in
  let sb = Circuit.bit_of_wire s and rb = Circuit.bit_of_wire r in
  let s_or_r = Circuit.mk_or c sb rb in
  let inner =
    Circuit.mk_mux c ~a:(Circuit.sig_of_wire b) ~b:(Circuit.sig_of_wire a)
      ~s:s_or_r
  in
  let outer = Circuit.mk_mux c ~a:(Circuit.sig_of_wire cc) ~b:inner ~s:sb in
  expose c "Y" outer;
  c

let listing1 =
  {|
module listing1(input [1:0] s, input [7:0] p0, input [7:0] p1,
                input [7:0] p2, input [7:0] p3, output reg [7:0] y);
  always @* begin
    case (s)
      2'b00: y = p0;
      2'b01: y = p1;
      2'b10: y = p2;
      default: y = p3;
    endcase
  end
endmodule
|}

let listing2 =
  {|
module listing2(input [2:0] s, input [7:0] p0, input [7:0] p1,
                input [7:0] p2, input [7:0] p3, output reg [7:0] y);
  always @* begin
    casez (s)
      3'b1zz: y = p0;
      3'b01z: y = p1;
      3'b001: y = p2;
      default: y = p3;
    endcase
  end
endmodule
|}

let figure_row name c0 flow =
  let c = Circuit.copy c0 in
  (match flow with
  | `None -> ()
  | `Yosys -> ignore (Smartly.Driver.yosys c)
  | `Smartly -> ignore (Smartly.Driver.smartly c));
  let st = Stats.of_circuit c in
  [
    name;
    string_of_int (Aiger.Aigmap.aig_area c);
    string_of_int st.Stats.muxes;
    string_of_int st.Stats.eqs;
    (match flow with
    | `None -> "-"
    | `Yosys | `Smartly -> check_equivalence c0 c);
  ]

let fig_columns =
  [ left "Circuit"; right "AIG"; right "mux"; right "eq"; left "Equivalence" ]

let figures () =
  print_endline "";
  print_endline "Figures 1-3: the motivating muxtree examples";
  let rows =
    List.concat_map
      (fun (name, c) ->
        [
          figure_row (name ^ " original") c `None;
          figure_row (name ^ " yosys") c `Yosys;
          figure_row (name ^ " smartly") c `Smartly;
        ])
      [
        "fig1 Y=S?(S?A:B):C", fig1_circuit ();
        "fig2 Y=S?(A?S:B):C", fig2_circuit ();
        "fig3 Y=S?((S|R)?A:B):C", fig3_circuit ();
      ]
  in
  Report.Table.print ~columns:fig_columns ~rows;
  print_endline
    "(fig1/fig2 are handled by both flows; fig3's dependent control\n\
     S|R is found only by smaRTLy's inference, as in the paper)";

  print_endline "";
  print_endline
    "Figures 5/6/7: Listing 1 as chain, balanced tree, and rebuilt tree";
  let rows =
    List.concat_map
      (fun (style, sname) ->
        let c = Hdl.Elaborate.elaborate_string ~style listing1 in
        [
          figure_row (Printf.sprintf "listing1 %s" sname) c `None;
          figure_row (Printf.sprintf "listing1 %s smartly" sname) c `Smartly;
        ])
      [ `Chain, "chain (Fig.5)"; `Balanced, "balanced (Fig.6)"; `Pmux, "pmux" ]
  in
  Report.Table.print ~columns:fig_columns ~rows;
  print_endline
    "(the rebuilt tree (Fig.7) uses 3 muxes on the selector bits and no\n\
     eq gates, whatever the input structure)";

  print_endline "";
  print_endline
    "Listing 2: greedy ADD assignment quality (paper: 3 vs 7 muxes)";
  let c = Hdl.Elaborate.elaborate_string ~style:`Chain listing2 in
  ignore (Rtl_opt.Opt_expr.run c);
  match Smartly.Muxtree.find_all c with
  | [ flat ] ->
    let index = Index.build c in
    let d = Smartly.Restructure.evaluate c index flat in
    Printf.printf
      "  rows=%d selector_bits=%d  greedy tree: %d muxes (height %d)\n"
      (List.length flat.Smartly.Muxtree.rows)
      (Bits.width flat.Smartly.Muxtree.selector)
      d.Smartly.Restructure.new_muxes d.Smartly.Restructure.height;
    (* contrast with the poor fixed order S0 < S1 < S2 via the canonical
       ADD over reversed cubes *)
    let m = Add_bdd.Add.manager () in
    let term_tbl = Hashtbl.create 8 in
    let term_of (v : Bits.sigspec) =
      let key = Bits.to_string v in
      match Hashtbl.find_opt term_tbl key with
      | Some i -> i
      | None ->
        let i = Hashtbl.length term_tbl + 1 in
        Hashtbl.replace term_tbl key i;
        i
    in
    let rows =
      List.map
        (fun (r : Smartly.Muxtree.row) ->
          r.Smartly.Muxtree.cube, term_of r.Smartly.Muxtree.value)
        flat.Smartly.Muxtree.rows
    in
    let good = Add_bdd.Add.of_rows m ~num_vars:3 rows ~default:0 in
    let rows_rev =
      List.map
        (fun (cube, v) ->
          let n = Array.length cube in
          Array.init n (fun i -> cube.(n - 1 - i)), v)
        rows
    in
    let poor = Add_bdd.Add.of_rows m ~num_vars:3 rows_rev ~default:0 in
    Printf.printf
      "  fixed-order ADD, S2 first (good): %d nodes; S0 first (poor): %d \
       nodes\n"
      (Add_bdd.Add.count_nodes good)
      (Add_bdd.Add.count_nodes poor)
  | _ -> print_endline "  (unexpected: muxtree not found)"

(* --- ablation sweeps --- *)

let ablation () =
  print_endline "";
  print_endline "Ablation: design choices of the smaRTLy implementation";
  let p = Workloads.Profiles.wb_dma in
  let c0 = Workloads.Profiles.circuit p in
  let yosys = Aiger.Aigmap.aig_area (optimized `Yosys c0) in
  let measure cfg =
    let t0 = Unix.gettimeofday () in
    let c = optimized (`Smartly cfg) c0 in
    let dt = Unix.gettimeofday () -. t0 in
    Aiger.Aigmap.aig_area c, dt
  in
  let base = Smartly.Config.default in
  let rows =
    List.map
      (fun (name, cfg) ->
        let area, dt = measure cfg in
        [
          name;
          string_of_int area;
          Report.Table.pct (reduction ~yosys area);
          Report.Table.secs dt;
        ])
      [
        "default (k=6)", base;
        "k=2", { base with Smartly.Config.distance_k = 2 };
        "k=4", { base with Smartly.Config.distance_k = 4 };
        "k=10", { base with Smartly.Config.distance_k = 10 };
        ( "no Theorem II.1 pruning",
          { base with Smartly.Config.enable_pruning = false } );
        ( "no inference rules",
          { base with Smartly.Config.enable_inference_rules = false } );
        ( "no simulation (SAT only)",
          { base with Smartly.Config.sim_input_threshold = 0 } );
        ( "no SAT (rules+sim only)",
          { base with Smartly.Config.sat_input_threshold = 0 } );
        ( "multi-signal rebuild (extension)",
          { base with Smartly.Config.rebuild_single_ctrl = false } );
      ]
  in
  Printf.printf "case %s: yosys area %d\n" p.Workloads.Profiles.name yosys;
  Report.Table.print
    ~columns:
      [ left "Configuration"; right "AIG"; right "vs Yosys"; right "time" ]
    ~rows;
  (* the paper's "~80% of sub-graph gates dismissed" claim *)
  let c = Circuit.copy c0 in
  ignore (Rtl_opt.Opt_expr.run c);
  let r = Smartly.Sat_elim.run_once Smartly.Config.default c in
  let kept = r.Smartly.Sat_elim.engine.Smartly.Engine.subgraph_kept in
  let dropped = r.Smartly.Sat_elim.engine.Smartly.Engine.subgraph_dropped in
  if kept + dropped > 0 then
    Printf.printf
      "Theorem II.1 pruning dismissed %d of %d sub-graph gates (%.1f%%)\n\
       (paper: ~80%%)\n"
      dropped (kept + dropped)
      (100.0 *. float_of_int dropped /. float_of_int (kept + dropped))

(* --- Bechamel timing --- *)

let timing () =
  print_endline "";
  print_endline "Pass timings (Bechamel, monotonic clock)";
  let c0 = Workloads.Profiles.circuit Workloads.Profiles.usb_funct in
  let open Bechamel in
  let make_pass name f =
    Test.make ~name (Staged.stage (fun () -> f (Circuit.copy c0)))
  in
  let tests =
    [
      make_pass "opt_expr" (fun c -> ignore (Rtl_opt.Opt_expr.run c));
      make_pass "opt_merge" (fun c -> ignore (Rtl_opt.Opt_merge.run c));
      make_pass "opt_muxtree(yosys)" (fun c ->
          ignore (Rtl_opt.Opt_muxtree.run c));
      make_pass "sat_elim(smartly)" (fun c ->
          ignore (Smartly.Sat_elim.run_once Smartly.Config.default c));
      make_pass "restructure(smartly)" (fun c ->
          ignore (Smartly.Restructure.run_once c));
      make_pass "aigmap" (fun c -> ignore (Aiger.Aigmap.aig_area c));
    ]
  in
  let test = Test.make_grouped ~name:"passes" tests in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let results = Benchmark.all cfg instances test in
  let ols =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock results
  in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-28s %12.0f ns/run\n" name est
      | Some _ | None -> Printf.printf "  %-28s (no estimate)\n" name)
    ols

(* --- main --- *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if a = "--json" then begin
          emit_json := true;
          false
        end
        else true)
      args
  in
  let sections =
    match args with
    | [] -> [ "table2"; "table3"; "industrial"; "figures" ]
    | rest -> rest
  in
  List.iter
    (fun s ->
      match s with
      | "table2" -> table2 ()
      | "table3" -> table3 ()
      | "industrial" -> industrial ()
      | "figures" -> figures ()
      | "ablation" -> ablation ()
      | "timing" -> timing ()
      | "all" ->
        table2 ();
        table3 ();
        industrial ();
        figures ();
        ablation ();
        timing ()
      | other -> Printf.printf "unknown section %s\n" other)
    sections
