(* Dead-code elimination: remove cells none of whose output bits reach a
   primary output or a sequential cell.  Equivalent to Yosys `opt_clean`. *)

open Netlist

let m_cells_removed = Obs.Metrics.counter "flow.cells_removed"

(* One sweep: returns the number of removed cells. *)
let sweep_once (c : Circuit.t) : int =
  let index = Index.build c in
  let live = Hashtbl.create 64 in
  let queue = Queue.create () in
  let mark_bit b =
    match Index.driving_cell index b with
    | Some (id, _) ->
      if not (Hashtbl.mem live id) then begin
        Hashtbl.replace live id ();
        Queue.push id queue
      end
    | None -> ()
  in
  List.iter mark_bit (Circuit.output_bits c);
  (* sequential cells are always live roots *)
  List.iter
    (fun id ->
      let cell = Circuit.cell c id in
      if not (Cell.is_combinational cell) then begin
        if not (Hashtbl.mem live id) then begin
          Hashtbl.replace live id ();
          Queue.push id queue
        end
      end)
    (Circuit.cell_ids c);
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    List.iter mark_bit (Cell.input_bits (Circuit.cell c id))
  done;
  let removed = ref 0 in
  List.iter
    (fun id ->
      if not (Hashtbl.mem live id) then begin
        let cell = Circuit.cell c id in
        Circuit.remove_cell c id;
        Obs.Metrics.incr m_cells_removed;
        Obs.Provenance.emit ~kind:Obs.Provenance.Cell_removed ~cell:id
          ~pass:"opt_clean" ~mechanism:Obs.Provenance.Pruned
          ~area_delta:(-Stats.approx_cell_area cell) ();
        incr removed
      end)
    (Circuit.cell_ids c);
  !removed

(* Also drop wires that no longer appear anywhere. *)
let remove_unused_wires (c : Circuit.t) : int =
  let used = Hashtbl.create 64 in
  let mark b =
    match b with
    | Bits.Of_wire (wid, _) -> Hashtbl.replace used wid ()
    | Bits.C0 | Bits.C1 | Bits.Cx -> ()
  in
  Circuit.iter_cells
    (fun _ cell ->
      List.iter mark (Cell.input_bits cell);
      List.iter mark (Cell.output_bits cell))
    c;
  List.iter
    (fun w -> Hashtbl.replace used w.Circuit.wire_id ())
    (Circuit.inputs c);
  List.iter
    (fun w -> Hashtbl.replace used w.Circuit.wire_id ())
    (Circuit.outputs c);
  let removed = ref 0 in
  let all_wires =
    Hashtbl.fold (fun id _ acc -> id :: acc) c.Circuit.wires []
  in
  List.iter
    (fun wid ->
      if not (Hashtbl.mem used wid) then begin
        Circuit.remove_wire c wid;
        incr removed
      end)
    all_wires;
  !removed

let m_removed = Obs.Metrics.counter "opt_clean.removed"

let run (c : Circuit.t) : int =
  Obs.Trace.with_span "opt_clean.run" @@ fun () ->
  let total = ref 0 in
  let rec fix () =
    let n = sweep_once c in
    total := !total + n;
    if n > 0 then fix ()
  in
  fix ();
  ignore (remove_unused_wires c);
  Obs.Metrics.add m_removed !total;
  !total
