(* Per-pass invariant checking.

   The checker keeps a deep copy of the last circuit that passed, so a
   pass that corrupts the netlist in place cannot also corrupt the
   reference we compare against.  First failure wins: optimization flows
   run passes to a fixpoint, and naming the first offender is what makes
   the report actionable. *)

type failure = { pass : string; detail : string; diags : Diag.t list }

type t = {
  mutable prev : Netlist.Circuit.t;  (** last known-good snapshot *)
  equiv : bool;
  budget : int option;
  mutable checks : int;
  mutable failed : failure option;
}

let create ?(equiv = true) ?budget (c : Netlist.Circuit.t) : t =
  { prev = Netlist.Circuit.copy c; equiv; budget; checks = 0; failed = None }

let checks_run t = t.checks
let failure t = t.failed
let ok t = t.failed = None

let after_pass t pass (c : Netlist.Circuit.t) : unit =
  if t.failed = None then begin
    t.checks <- t.checks + 1;
    let errors =
      List.filter
        (fun d -> d.Diag.severity = Diag.Error)
        (Rules_netlist.check c)
    in
    if errors <> [] then
      t.failed <-
        Some
          { pass;
            detail =
              Fmt.str "circuit is no longer well-formed (%d errors)"
                (List.length errors);
            diags = errors }
    else if t.equiv then begin
      match Equiv.check ?budget:t.budget t.prev c with
      | Equiv.Not_equivalent output ->
        t.failed <-
          Some
            { pass;
              detail =
                Fmt.str
                  "not equivalent to the pre-pass circuit (output '%s' \
                   differs)"
                  output;
              diags = [] }
      | Equiv.Equivalent | Equiv.Inconclusive ->
        (* Inconclusive (budget exhausted) is not a violation *)
        t.prev <- Netlist.Circuit.copy c
    end
    else t.prev <- Netlist.Circuit.copy c
  end

let pp_failure ppf f =
  Fmt.pf ppf "invariant violated after pass '%s': %s" f.pass f.detail;
  List.iter (fun d -> Fmt.pf ppf "@,  %a" Diag.pp d) f.diags
