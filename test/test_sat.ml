(* Tests for the CDCL SAT solver: hand cases + random CNF vs brute force. *)

let lit v ~neg = Cdcl.Lit.of_var ~negated:neg v

let test_trivial_sat () =
  let s = Cdcl.Solver.create () in
  let a = Cdcl.Solver.new_var s in
  Cdcl.Solver.add_clause s [ lit a ~neg:false ];
  Alcotest.(check bool) "sat" true (Cdcl.Solver.solve s = Cdcl.Solver.Sat);
  Alcotest.(check bool) "model a" true (Cdcl.Solver.model_value s a)

let test_trivial_unsat () =
  let s = Cdcl.Solver.create () in
  let a = Cdcl.Solver.new_var s in
  Cdcl.Solver.add_clause s [ lit a ~neg:false ];
  Cdcl.Solver.add_clause s [ lit a ~neg:true ];
  Alcotest.(check bool) "unsat" true (Cdcl.Solver.solve s = Cdcl.Solver.Unsat)

let test_unit_chain () =
  (* a; ~a | b; ~b | c  =>  all true *)
  let s = Cdcl.Solver.create () in
  let a = Cdcl.Solver.new_var s in
  let b = Cdcl.Solver.new_var s in
  let c = Cdcl.Solver.new_var s in
  Cdcl.Solver.add_clause s [ lit a ~neg:false ];
  Cdcl.Solver.add_clause s [ lit a ~neg:true; lit b ~neg:false ];
  Cdcl.Solver.add_clause s [ lit b ~neg:true; lit c ~neg:false ];
  Alcotest.(check bool) "sat" true (Cdcl.Solver.solve s = Cdcl.Solver.Sat);
  Alcotest.(check bool) "c true" true (Cdcl.Solver.model_value s c)

let test_assumptions () =
  (* ~a | b.  Under assumption a: b must be true.  Under a & ~b: unsat. *)
  let s = Cdcl.Solver.create () in
  let a = Cdcl.Solver.new_var s in
  let b = Cdcl.Solver.new_var s in
  Cdcl.Solver.add_clause s [ lit a ~neg:true; lit b ~neg:false ];
  let r1 =
    Cdcl.Solver.solve s ~assumptions:[ lit a ~neg:false; lit b ~neg:true ]
  in
  Alcotest.(check bool) "a & ~b unsat" true (r1 = Cdcl.Solver.Unsat);
  let r2 = Cdcl.Solver.solve s ~assumptions:[ lit a ~neg:false ] in
  Alcotest.(check bool) "a sat" true (r2 = Cdcl.Solver.Sat);
  Alcotest.(check bool) "b forced" true (Cdcl.Solver.model_value s b);
  (* solver still usable and not permanently unsat *)
  let r3 = Cdcl.Solver.solve s in
  Alcotest.(check bool) "still sat" true (r3 = Cdcl.Solver.Sat)

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classic small unsat instance.
     var p(i,h) = pigeon i in hole h. *)
  let s = Cdcl.Solver.create () in
  let p = Array.init 3 (fun _ -> Array.init 2 (fun _ -> Cdcl.Solver.new_var s)) in
  for i = 0 to 2 do
    Cdcl.Solver.add_clause s
      [ lit p.(i).(0) ~neg:false; lit p.(i).(1) ~neg:false ]
  done;
  for h = 0 to 1 do
    for i = 0 to 2 do
      for j = i + 1 to 2 do
        Cdcl.Solver.add_clause s [ lit p.(i).(h) ~neg:true; lit p.(j).(h) ~neg:true ]
      done
    done
  done;
  Alcotest.(check bool) "php(3,2) unsat" true
    (Cdcl.Solver.solve s = Cdcl.Solver.Unsat)

let test_dimacs_roundtrip () =
  let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  let cnf = Cdcl.Dimacs.parse_string text in
  Alcotest.(check int) "vars" 3 cnf.Cdcl.Dimacs.num_vars;
  Alcotest.(check int) "clauses" 2 (List.length cnf.Cdcl.Dimacs.clauses);
  let s = Cdcl.Dimacs.load cnf in
  Alcotest.(check bool) "sat" true (Cdcl.Solver.solve s = Cdcl.Solver.Sat);
  let text2 = Cdcl.Dimacs.to_string cnf in
  let cnf2 = Cdcl.Dimacs.parse_string text2 in
  Alcotest.(check bool) "roundtrip" true
    (cnf.Cdcl.Dimacs.clauses = cnf2.Cdcl.Dimacs.clauses)

(* --- brute force reference --- *)

let brute_force_sat ~num_vars clauses =
  let rec try_assign v =
    if v = 1 lsl num_vars then false
    else
      let sat_clause clause =
        List.exists
          (fun d ->
            let var = abs d - 1 in
            let value = (v lsr var) land 1 = 1 in
            if d > 0 then value else not value)
          clause
      in
      if List.for_all sat_clause clauses then true else try_assign (v + 1)
  in
  try_assign 0

let gen_cnf =
  QCheck.Gen.(
    let* num_vars = int_range 1 10 in
    let* num_clauses = int_range 1 40 in
    let gen_lit =
      let* v = int_range 1 num_vars in
      let* neg = bool in
      return (if neg then -v else v)
    in
    let* clauses = list_size (return num_clauses) (list_size (int_range 1 4) gen_lit) in
    return (num_vars, clauses))

let arb_cnf =
  QCheck.make gen_cnf ~print:(fun (nv, cls) ->
      Cdcl.Dimacs.to_string { Cdcl.Dimacs.num_vars = nv; clauses = cls })

let prop_matches_brute_force =
  QCheck.Test.make ~count:300 ~name:"cdcl agrees with brute force" arb_cnf
    (fun (num_vars, clauses) ->
      let expected = brute_force_sat ~num_vars clauses in
      let s = Cdcl.Dimacs.load { Cdcl.Dimacs.num_vars; clauses } in
      let got = Cdcl.Solver.solve s in
      (match got with
      | Cdcl.Solver.Sat ->
        (* verify the model *)
        List.for_all
          (fun clause ->
            List.exists
              (fun d ->
                let value = Cdcl.Solver.model_value s (abs d - 1) in
                if d > 0 then value else not value)
              clause)
          clauses
        && expected
      | Cdcl.Solver.Unsat -> not expected
      | Cdcl.Solver.Unknown -> false))

let prop_assumptions_consistent =
  (* solving with assumptions equals solving with those units added *)
  QCheck.Test.make ~count:200 ~name:"assumptions = added units" arb_cnf
    (fun (num_vars, clauses) ->
      let assum = [ 1; (if num_vars > 1 then -2 else 1) ] in
      let s1 = Cdcl.Dimacs.load { Cdcl.Dimacs.num_vars; clauses } in
      let lits =
        List.map (fun d -> Cdcl.Lit.of_var ~negated:(d < 0) (abs d - 1)) assum
      in
      let r1 = Cdcl.Solver.solve s1 ~assumptions:lits in
      let s2 =
        Cdcl.Dimacs.load
          { Cdcl.Dimacs.num_vars; clauses = clauses @ List.map (fun d -> [ d ]) assum }
      in
      let r2 = Cdcl.Solver.solve s2 in
      r1 = r2)

let () =
  Alcotest.run "sat"
    [
      ( "unit",
        [
          Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
          Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
          Alcotest.test_case "unit chain" `Quick test_unit_chain;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "pigeonhole 3/2" `Quick test_pigeonhole_3_2;
          Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_matches_brute_force; prop_assumptions_consistent ] );
    ]
