(** Worklist fixpoint of the two abstract domains over a cell DAG.

    Forward transfer functions in topological order, backward "assume"
    narrowing in reverse order, swept until nothing strengthens (or a
    small sweep cap, for predictable cost).

    The abstract state always over-approximates the set of concrete
    executions compatible with the seeds, so a definite bit is a sound
    [Forced] verdict and {!Contradiction} a sound dead-path verdict; the
    analysis can never conclude [Free]. *)

open Netlist

type outcome = {
  state : Absval.state;
  sweeps : int;  (** sweeps run until convergence (or the cap) *)
}

type result =
  | Converged of outcome
  | Contradiction
      (** the seeds admit no concrete execution: a dead path *)

val default_max_sweeps : int

val run :
  ?seeds:(Bits.bit * bool) list ->
  ?max_sweeps:int ->
  Circuit.t ->
  int list ->
  result
(** [run circuit cells] analyzes [cells] (a topological order of a
    sub-DAG, e.g. [Topo.sort] or a [Subgraph.view]'s cells), assuming
    every seeded bit value.  Bits driven outside [cells] stay top. *)
