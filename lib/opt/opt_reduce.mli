(** A slice of Yosys [opt_reduce]: pmux grooming — constant-false selects
    drop their part, consecutive identical-data parts merge (or-ing their
    selects), trailing parts equal to the default fold away.  Not part of
    the default flows; available for experiments. *)

val run_once : Netlist.Circuit.t -> int
val run : Netlist.Circuit.t -> int
