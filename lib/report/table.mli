(** Minimal ASCII tables for the benchmark harness and the CLI. *)

type align = Left | Right

type column = { title : string; align : align }

val column : ?align:align -> string -> column

val render : columns:column list -> rows:string list list -> string
val print : columns:column list -> rows:string list list -> unit

val pct : float -> string
(** ["12.34%"]; locale-stable (always ['.']), negative zero normalized.
    Render in a Right-aligned column. *)

val secs : float -> string
(** ["0.42s"]; locale-stable.  Render in a Right-aligned column. *)

val int_ : int -> string
