(* Tests for the netlist IR: bits, cells, circuit, indices, topo, validate. *)

open Netlist

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Bits --- *)

let test_bits_of_to_int () =
  let s = Bits.of_int ~width:8 0xA5 in
  check_int "roundtrip" 0xA5 (Bits.to_int s);
  check_int "width" 8 (Bits.width s);
  check_bool "const" true (Bits.is_fully_const s)

let test_bits_slice_concat () =
  let s = Bits.of_int ~width:8 0xA5 in
  let lo = Bits.slice s ~off:0 ~len:4 in
  let hi = Bits.slice s ~off:4 ~len:4 in
  check_int "lo" 0x5 (Bits.to_int lo);
  check_int "hi" 0xA (Bits.to_int hi);
  check_int "concat" 0xA5 (Bits.to_int (Bits.concat [ lo; hi ]));
  Alcotest.check_raises "slice oob" (Invalid_argument "Bits.slice") (fun () ->
      ignore (Bits.slice s ~off:6 ~len:4))

let test_bits_extend () =
  let s = Bits.of_int ~width:4 0xF in
  check_int "zero extend" 0xF (Bits.to_int (Bits.extend s ~width:8));
  check_int "truncate" 0x3 (Bits.to_int (Bits.extend s ~width:2))

let test_bits_to_int_x () =
  Alcotest.check_raises "x bit" (Invalid_argument "Bits.to_int: non-binary bit")
    (fun () -> ignore (Bits.to_int [| Bits.Cx |]))

(* --- Cells --- *)

let test_cell_widths () =
  let a = Bits.of_int ~width:4 0 and y1 = Bits.of_int ~width:1 0 in
  (* bad: $not with different widths *)
  check_bool "not bad" true
    (match Cell.check_widths (Cell.Unary { op = Cell.Not; a; y = y1 }) with
    | () -> false
    | exception Cell.Width_error _ -> true);
  (* good: logic_not any width -> 1 *)
  Cell.check_widths (Cell.Unary { op = Cell.Logic_not; a; y = y1 });
  (* bad pmux: |b| <> |s|*|a| *)
  check_bool "pmux bad" true
    (match
       Cell.check_widths
         (Cell.Pmux
            {
              a;
              b = Bits.of_int ~width:4 0;
              s = Bits.of_int ~width:2 0;
              y = a;
            })
     with
    | () -> false
    | exception Cell.Width_error _ -> true)

let test_cell_ports () =
  let a = Bits.of_int ~width:2 1 and b = Bits.of_int ~width:2 2 in
  let y = Bits.of_int ~width:2 0 in
  let m = Cell.Mux { a; b; s = Bits.C1; y } in
  check_int "inputs" 5 (List.length (Cell.input_bits m));
  check_int "outputs" 2 (List.length (Cell.output_bits m));
  check_int "controls" 1 (List.length (Cell.control_bits m));
  check_bool "comb" true (Cell.is_combinational m);
  check_bool "dff not comb" false
    (Cell.is_combinational (Cell.Dff { d = a; q = y }))

(* --- Circuit + Index --- *)

let build_simple () =
  (* y = (a & b) | c *)
  let c = Circuit.create "simple" in
  let a = Circuit.add_input c "a" ~width:4 in
  let b = Circuit.add_input c "b" ~width:4 in
  let cc = Circuit.add_input c "c" ~width:4 in
  let ab =
    Circuit.mk_binary c Cell.And (Circuit.sig_of_wire a) (Circuit.sig_of_wire b)
  in
  let y = Circuit.add_output c "y" ~width:4 in
  ignore
    (Circuit.add_cell c
       (Cell.Binary
          { op = Cell.Or; a = ab; b = Circuit.sig_of_wire cc;
            y = Circuit.sig_of_wire y }));
  c

let test_circuit_basics () =
  let c = build_simple () in
  check_int "cells" 2 (Circuit.cell_count c);
  check_int "inputs" 3 (List.length (Circuit.inputs c));
  check_int "outputs" 1 (List.length (Circuit.outputs c));
  check_bool "well formed" true (Validate.is_well_formed c)

let test_index () =
  let c = build_simple () in
  let idx = Index.build c in
  let y = List.hd (Circuit.outputs c) in
  let yb = Bits.Of_wire (y.Circuit.wire_id, 0) in
  (match Index.driver idx yb with
  | Index.Driven_by (_, 0) -> ()
  | Index.Driven_by (_, _) | Index.Primary_input | Index.Undriven ->
    Alcotest.fail "expected cell driver at offset 0");
  let a = List.hd (Circuit.inputs c) in
  let ab = Bits.Of_wire (a.Circuit.wire_id, 0) in
  check_bool "input is PI" true (Index.driver idx ab = Index.Primary_input);
  check_int "a read by 1 cell" 1 (List.length (Index.readers idx ab))

let test_topo_and_depth () =
  let c = build_simple () in
  let order = Topo.sort c in
  check_int "both cells ordered" 2 (List.length order);
  check_int "depth" 2 (Topo.logic_depth c);
  check_bool "acyclic" true (Topo.is_acyclic c)

let test_cycle_detection () =
  let c = Circuit.create "cyc" in
  let w1 = Circuit.add_wire c ~width:1 () in
  let w2 = Circuit.add_wire c ~width:1 () in
  let b1 = Circuit.bit_of_wire w1 and b2 = Circuit.bit_of_wire w2 in
  let id1 =
    Circuit.add_cell c (Cell.Unary { op = Cell.Not; a = [| b1 |]; y = [| b2 |] })
  in
  let id2 =
    Circuit.add_cell c (Cell.Unary { op = Cell.Not; a = [| b2 |]; y = [| b1 |] })
  in
  check_bool "cyclic" false (Topo.is_acyclic c);
  let cycles =
    List.filter_map
      (function Validate.Cyclic cells -> Some cells | _ -> None)
      (Validate.check c)
  in
  check_int "validate flags one cycle" 1 (List.length cycles);
  (* the witness is the concrete shortest cycle: both inverters *)
  check_int "witness length" 2 (List.length (List.hd cycles));
  check_bool "witness cells" true
    (List.sort compare (List.hd cycles) = List.sort compare [ id1; id2 ])

let test_dff_breaks_cycle () =
  let c = Circuit.create "seq" in
  let w1 = Circuit.add_wire c ~width:1 () in
  let w2 = Circuit.add_wire c ~width:1 () in
  let b1 = Circuit.bit_of_wire w1 and b2 = Circuit.bit_of_wire w2 in
  ignore
    (Circuit.add_cell c
       (Cell.Unary { op = Cell.Not; a = [| b1 |]; y = [| b2 |] }));
  ignore (Circuit.add_cell c (Cell.Dff { d = [| b2 |]; q = [| b1 |] }));
  check_bool "dff breaks loop" true (Topo.is_acyclic c)

let test_validate_multiple_drivers () =
  let c = Circuit.create "md" in
  let a = Circuit.add_input c "a" ~width:1 in
  let y = Circuit.add_wire c ~width:1 () in
  let ab = Circuit.bit_of_wire a and yb = Circuit.bit_of_wire y in
  ignore
    (Circuit.add_cell c (Cell.Unary { op = Cell.Not; a = [| ab |]; y = [| yb |] }));
  ignore
    (Circuit.add_cell c (Cell.Unary { op = Cell.Not; a = [| ab |]; y = [| yb |] }));
  check_bool "flagged" true
    (List.exists
       (function Validate.Multiple_drivers _ -> true | _ -> false)
       (Validate.check c))

let test_validate_dangling () =
  let c = Circuit.create "dangle" in
  let w = Circuit.add_wire c ~width:1 () in
  let y = Circuit.add_output c "y" ~width:1 in
  ignore
    (Circuit.add_cell c
       (Cell.Unary
          { op = Cell.Not; a = [| Circuit.bit_of_wire w |];
            y = [| Circuit.bit_of_wire y |] }));
  check_bool "flagged" true
    (List.exists
       (function Validate.Dangling_wire_bit _ -> true | _ -> false)
       (Validate.check c))

let test_validate_width_violation () =
  let c = Circuit.create "wv" in
  let a = Circuit.add_input c "a" ~width:1 in
  let y = Circuit.add_wire c ~width:2 () in
  let ys = Circuit.sig_of_wire y in
  (* bypass add_cell's width check to seed an ill-widthed cell, the way a
     buggy pass would corrupt the table in place *)
  let id = c.Circuit.next_cell_id in
  c.Circuit.next_cell_id <- id + 1;
  Hashtbl.replace c.Circuit.cells id
    (Cell.Unary { op = Cell.Not; a = [| Circuit.bit_of_wire a |]; y = ys });
  check_bool "flagged" true
    (List.exists
       (function Validate.Width_violation (cid, _) -> cid = id | _ -> false)
       (Validate.check c))

let test_validate_unknown_wire () =
  let c = Circuit.create "uw" in
  let a = Circuit.add_input c "a" ~width:1 in
  let y = Circuit.add_wire c ~width:1 () in
  ignore
    (Circuit.add_cell c
       (Cell.Unary
          { op = Cell.Not; a = [| Circuit.bit_of_wire a |];
            y = [| Circuit.bit_of_wire y |] }));
  Circuit.remove_wire c y.Circuit.wire_id;
  check_bool "flagged" true
    (List.exists
       (function Validate.Unknown_wire wid -> wid = y.Circuit.wire_id | _ -> false)
       (Validate.check c))

let test_cycle_witness_is_shortest () =
  (* a 3-ring w0 -> w1 -> w2 -> w0 plus a shortcut w1 -> w0: the shortest
     cycle is the 2-cell loop through the shortcut, and that is what the
     witness must report regardless of which loop the DFS tripped over *)
  let c = Circuit.create "loops" in
  let w = Array.init 3 (fun _ -> Circuit.add_wire c ~width:1 ()) in
  let b i = Circuit.bit_of_wire w.(i) in
  let inv a y = Cell.Unary { op = Cell.Not; a = [| a |]; y = [| y |] } in
  let a0 = Circuit.add_cell c (inv (b 0) (b 1)) in
  ignore (Circuit.add_cell c (inv (b 1) (b 2)));
  ignore (Circuit.add_cell c (inv (b 2) (b 0)));
  let shortcut = Circuit.add_cell c (inv (b 1) (b 0)) in
  let cycles =
    List.filter_map
      (function Validate.Cyclic cells -> Some cells | _ -> None)
      (Validate.check c)
  in
  check_int "one cycle reported" 1 (List.length cycles);
  check_int "witness is the short loop" 2 (List.length (List.hd cycles));
  check_bool "witness cells" true
    (List.sort compare (List.hd cycles) = List.sort compare [ a0; shortcut ])

(* --- Rewire --- *)

let test_rewire () =
  let c = build_simple () in
  (* replace input c with constant zero in the or cell *)
  let cc = List.nth (Circuit.inputs c) 2 in
  Rewire.replace_sig c
    ~from_:(Circuit.sig_of_wire cc)
    ~to_:(Bits.all_zero ~width:4);
  let ok = ref true in
  Circuit.iter_cells
    (fun _ cell ->
      List.iter
        (fun b ->
          match b with
          | Bits.Of_wire (wid, _) when wid = cc.Circuit.wire_id -> ok := false
          | _ -> ())
        (Cell.input_bits cell))
    c;
  check_bool "no reader of c left" true !ok

let test_stats () =
  let c = build_simple () in
  let s = Stats.of_circuit c in
  check_int "total" 2 s.Stats.total;
  check_int "bitwise" 2 s.Stats.bitwise;
  check_int "muxes" 0 s.Stats.muxes

let () =
  Alcotest.run "netlist"
    [
      ( "bits",
        [
          Alcotest.test_case "of/to int" `Quick test_bits_of_to_int;
          Alcotest.test_case "slice/concat" `Quick test_bits_slice_concat;
          Alcotest.test_case "extend" `Quick test_bits_extend;
          Alcotest.test_case "to_int x" `Quick test_bits_to_int_x;
        ] );
      ( "cells",
        [
          Alcotest.test_case "width checks" `Quick test_cell_widths;
          Alcotest.test_case "ports" `Quick test_cell_ports;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "basics" `Quick test_circuit_basics;
          Alcotest.test_case "index" `Quick test_index;
          Alcotest.test_case "topo + depth" `Quick test_topo_and_depth;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "dff breaks cycle" `Quick test_dff_breaks_cycle;
          Alcotest.test_case "multiple drivers" `Quick test_validate_multiple_drivers;
          Alcotest.test_case "dangling bit" `Quick test_validate_dangling;
          Alcotest.test_case "width violation" `Quick test_validate_width_violation;
          Alcotest.test_case "unknown wire" `Quick test_validate_unknown_wire;
          Alcotest.test_case "cycle witness shortest" `Quick
            test_cycle_witness_is_shortest;
          Alcotest.test_case "rewire" `Quick test_rewire;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
    ]
