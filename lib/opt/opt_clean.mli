(** Dead-code elimination (Yosys [opt_clean]): cells not reaching a primary
    output or a sequential cell are removed, as are unreferenced wires. *)

val sweep_once : Netlist.Circuit.t -> int
(** One liveness sweep; returns removed cells. *)

val remove_unused_wires : Netlist.Circuit.t -> int

val run : Netlist.Circuit.t -> int
(** Sweep to fixpoint; returns total removed cells. *)
