(* Synthetic RTL generation: emits Verilog source (exercising the full HDL
   frontend) composed of the idioms the paper's benchmarks are made of.

   Each emitter appends one named block to the module and registers the
   produced signal in the pool, so later blocks can consume earlier
   results, giving the circuits real depth. *)

type ctx = {
  rng : Rng.t;
  header : Buffer.t; (* declarations *)
  body : Buffer.t; (* assigns and always blocks *)
  mutable pool : (string * int) list; (* signal name, width *)
  mutable conds : string list; (* 1-bit condition signals for correlation *)
  mutable n : int; (* name counter *)
  mutable inputs : (string * int) list;
  mutable produced : (string * int) list; (* signals to sink into outputs *)
}

let create ~seed =
  {
    rng = Rng.create ~seed;
    header = Buffer.create 1024;
    body = Buffer.create 4096;
    pool = [];
    conds = [];
    n = 0;
    inputs = [];
    produced = [];
  }

let fresh ctx prefix =
  ctx.n <- ctx.n + 1;
  Printf.sprintf "%s%d" prefix ctx.n

let decl ctx text = Buffer.add_string ctx.header ("  " ^ text ^ "\n")
let emit ctx text = Buffer.add_string ctx.body ("  " ^ text ^ "\n")

let range_str width = if width = 1 then "" else Printf.sprintf "[%d:0] " (width - 1)

let add_input ctx ?name width =
  let name = match name with Some n -> n | None -> fresh ctx "in" in
  decl ctx (Printf.sprintf "input %s%s;" (range_str width) name);
  ctx.pool <- (name, width) :: ctx.pool;
  ctx.inputs <- (name, width) :: ctx.inputs;
  name

let add_wire ctx ?name width =
  let name = match name with Some n -> n | None -> fresh ctx "w" in
  decl ctx (Printf.sprintf "wire %s%s;" (range_str width) name);
  name

let add_reg ctx ?name width =
  let name = match name with Some n -> n | None -> fresh ctx "r" in
  decl ctx (Printf.sprintf "reg %s%s;" (range_str width) name);
  name

(* register a signal as available for later blocks and as a sink candidate *)
let produce ctx name width =
  ctx.pool <- (name, width) :: ctx.pool;
  ctx.produced <- (name, width) :: ctx.produced

(* --- expression pieces --- *)

(* a signal of exactly [width] bits, slicing a wider pool signal *)
let signal_of_width ctx width =
  let candidates = List.filter (fun (_, w) -> w >= width) ctx.pool in
  match candidates with
  | [] -> None
  | _ ->
    let name, w = Rng.choice ctx.rng candidates in
    if w = width then Some name
    else begin
      let lsb = Rng.int ctx.rng (w - width + 1) in
      if width = 1 then Some (Printf.sprintf "%s[%d]" name lsb)
      else Some (Printf.sprintf "%s[%d:%d]" name (lsb + width - 1) lsb)
    end

let leaf ctx width =
  match signal_of_width ctx width with
  | Some s -> s
  | None -> Printf.sprintf "%d'd%d" width (Rng.int ctx.rng (1 lsl min width 20))

(* random leaf expression, sometimes a constant *)
let leaf_or_const ctx width =
  if Rng.chance ctx.rng 15 then
    Printf.sprintf "%d'd%d" width (Rng.int ctx.rng (1 lsl min width 20))
  else leaf ctx width

(* a fresh 1-bit condition; [independent] draws it over a brand new input
   (no accidental correlation with existing signals) *)
let new_cond ?(independent = false) ctx =
  let w = Rng.range ctx.rng 2 6 in
  let a = if independent then add_input ctx w else leaf ctx w in
  let expr =
    match Rng.int ctx.rng 4 with
    | 0 -> Printf.sprintf "(%s == %d'd%d)" a w (Rng.int ctx.rng (1 lsl min w 20))
    | 1 -> Printf.sprintf "(|%s)" a
    | 2 -> Printf.sprintf "(&%s)" a
    | _ -> Printf.sprintf "(%s != %d'd%d)" a w (Rng.int ctx.rng (1 lsl min w 20))
  in
  let name = add_wire ctx 1 in
  emit ctx (Printf.sprintf "assign %s = %s;" name expr);
  ctx.pool <- (name, 1) :: ctx.pool;
  ctx.conds <- name :: ctx.conds;
  name

(* an existing condition, or a fresh one *)
let some_cond ctx =
  if ctx.conds <> [] && Rng.chance ctx.rng 70 then Rng.choice ctx.rng ctx.conds
  else new_cond ctx

(* a condition *correlated* with [base]: implied or contradicted by it *)
let correlated_cond ctx base =
  let other = some_cond ctx in
  let expr =
    match Rng.int ctx.rng 4 with
    | 0 -> Printf.sprintf "(%s | %s)" base other (* implied when base=1 *)
    | 1 -> Printf.sprintf "(%s & %s)" base other (* false when base=0 *)
    | 2 -> Printf.sprintf "(!%s)" base (* contradicted *)
    | _ -> Printf.sprintf "(%s | !%s)" base other
  in
  let name = add_wire ctx 1 in
  emit ctx (Printf.sprintf "assign %s = %s;" name expr);
  ctx.pool <- (name, 1) :: ctx.pool;
  name

(* --- idiom emitters --- *)

(* Plain datapath logic: a short chain of bitwise/arith assigns. *)
let emit_datapath ctx ~width ~ops =
  let current = ref (leaf ctx width) in
  for _ = 1 to ops do
    let other = leaf_or_const ctx width in
    let op = Rng.choice ctx.rng [ "&"; "|"; "^"; "+"; "-" ] in
    let name = add_wire ctx width in
    emit ctx (Printf.sprintf "assign %s = %s %s %s;" name !current op other);
    ctx.pool <- (name, width) :: ctx.pool;
    current := name
  done;
  produce ctx !current width

(* A case statement over a fresh selector input.  [distinct] bounds the
   number of distinct leaf expressions, so low values create muxtrees the
   restructuring pass collapses.  [structured] maps contiguous selector
   ranges to the same leaf (the block structure of real decoders, which is
   what makes the rebuilt ADD small); otherwise leaves are random. *)
let emit_case ctx ~sel_width ~items ~width ~distinct ?(structured = true) () =
  let sel = add_input ctx sel_width in
  let y = add_reg ctx width in
  let n_leaves = max 1 distinct in
  let leaves = List.init n_leaves (fun _ -> leaf_or_const ctx width) in
  let space = 1 lsl sel_width in
  let used =
    Rng.sample ctx.rng (min items space) (List.init space (fun i -> i))
    |> List.sort compare
  in
  let leaf_for v =
    if structured && not (Rng.chance ctx.rng 20) then
      List.nth leaves (v * n_leaves / space)
    else Rng.choice ctx.rng leaves
  in
  emit ctx "always @* begin";
  emit ctx (Printf.sprintf "  case (%s)" sel);
  List.iter
    (fun v ->
      emit ctx
        (Printf.sprintf "    %d'd%d: %s = %s;" sel_width v y (leaf_for v)))
    used;
  emit ctx
    (Printf.sprintf "    default: %s = %s;" y (Rng.choice ctx.rng leaves));
  emit ctx "  endcase";
  emit ctx "end";
  produce ctx y width

(* Logic that the baseline folds away entirely: constant operands, dead
   branches, shadowed conditions.  This is the (large) share of the paper's
   "Yosys removes 55% on its own". *)
let emit_foldable ctx ~width =
  let a = leaf ctx width in
  let b = leaf ctx width in
  let t1 = add_wire ctx width in
  emit ctx
    (Printf.sprintf "assign %s = (%s & %d'd0) | %s;" t1 a width b);
  ctx.pool <- (t1, width) :: ctx.pool;
  let c = some_cond ctx in
  let y = add_reg ctx width in
  let v1 = leaf_or_const ctx width and v2 = leaf_or_const ctx width in
  emit ctx "always @* begin";
  emit ctx (Printf.sprintf "  %s = %s;" y v1);
  (* condition c & !c is statically false: the whole branch is dead *)
  emit ctx (Printf.sprintf "  if (%s & !%s) %s = %s ^ %s;" c c y v2 t1);
  emit ctx (Printf.sprintf "  if (%s | !%s) %s = %s;" c c y t1);
  emit ctx "end";
  produce ctx y width

(* A casez priority decoder (Listing-2 style). *)
let emit_casez_priority ctx ~sel_width ~width =
  let sel = add_input ctx sel_width in
  let y = add_reg ctx width in
  emit ctx "always @* begin";
  emit ctx (Printf.sprintf "  casez (%s)" sel);
  for i = 0 to sel_width - 1 do
    (* pattern: 0...01z...z  (bit sel_width-1-i set) *)
    let pat =
      String.concat ""
        (List.init sel_width (fun j ->
             if j < i then "0" else if j = i then "1" else "z"))
    in
    emit ctx
      (Printf.sprintf "    %d'b%s: %s = %s;" sel_width pat y
         (leaf_or_const ctx width))
  done;
  emit ctx (Printf.sprintf "    default: %s = %s;" y (leaf_or_const ctx width));
  emit ctx "  endcase";
  emit ctx "end";
  produce ctx y width

(* Nested ifs with correlated conditions: smaRTLy's SAT elimination finds
   the inner branches forced; Yosys cannot (conditions differ textually). *)
let emit_correlated_ifs ctx ~depth ~width =
  let y = add_reg ctx width in
  (* conditions are built (and their assigns emitted) before the always
     block opens *)
  let base = some_cond ctx in
  let conds =
    let rec build prev n acc =
      if n = 0 then List.rev acc
      else
        let c = correlated_cond ctx prev in
        build c (n - 1) (c :: acc)
    in
    build base depth []
  in
  emit ctx "always @* begin";
  emit ctx (Printf.sprintf "  %s = %s;" y (leaf_or_const ctx width));
  emit ctx (Printf.sprintf "  if (%s) begin" base);
  let rec nest cs indent =
    match cs with
    | [] ->
      emit ctx
        (Printf.sprintf "%s%s = %s;" indent y (leaf_or_const ctx width))
    | cond :: rest ->
      emit ctx (Printf.sprintf "%sif (%s) begin" indent cond);
      nest rest (indent ^ "  ");
      emit ctx (Printf.sprintf "%send else begin" indent);
      emit ctx
        (Printf.sprintf "%s  %s = %s;" indent y (leaf_or_const ctx width));
      emit ctx (Printf.sprintf "%send" indent)
  in
  nest conds "    ";
  emit ctx "  end";
  emit ctx "end";
  produce ctx y width

(* Redundant nesting on the *same* condition (Fig. 1 style): Yosys catches
   these, so they account for the baseline's own large reductions. *)
let emit_redundant_nest ctx ~width =
  let y = add_reg ctx width in
  let c = new_cond ~independent:true ctx in
  let v1 = leaf_or_const ctx width in
  let v2 = leaf_or_const ctx width in
  let v3 = leaf_or_const ctx width in
  let v4 = leaf_or_const ctx width in
  emit ctx "always @* begin";
  emit ctx (Printf.sprintf "  if (%s) begin" c);
  emit ctx (Printf.sprintf "    if (%s) %s = %s; else %s = %s;" c y v1 y v2);
  emit ctx (Printf.sprintf "  end else begin");
  emit ctx (Printf.sprintf "    if (%s) %s = %s; else %s = %s;" c y v3 y v4);
  emit ctx "  end";
  emit ctx "end";
  produce ctx y width

(* An if/else-if priority chain over independent conditions: muxtree with
   unrelated controls; little for either optimizer (mem_ctrl-like). *)
let emit_priority_chain ctx ~depth ~width =
  let y = add_reg ctx width in
  let conds = List.init depth (fun _ -> new_cond ~independent:true ctx) in
  emit ctx "always @* begin";
  emit ctx (Printf.sprintf "  %s = %s;" y (leaf_or_const ctx width));
  List.iter
    (fun c ->
      emit ctx
        (Printf.sprintf "  if (%s) %s = %s;" c y (leaf_or_const ctx width)))
    conds;
  emit ctx "end";
  produce ctx y width

(* A crossbar-ish selector: for each output, a case over a grant selector
   whose value correlates with per-port request conditions (wb_conmax
   flavour: SAT finds the redundancies). *)
let emit_crossbar_port ctx ~n_grants ~width =
  let sel_width =
    let rec bits n = if n <= 1 then 0 else 1 + bits ((n + 1) / 2) in
    max 1 (bits n_grants)
  in
  let reqs = List.init n_grants (fun _ -> some_cond ctx) in
  (* grant encoder: priority over requests *)
  let gsel = add_reg ctx sel_width in
  emit ctx "always @* begin";
  emit ctx (Printf.sprintf "  %s = %d'd%d;" gsel sel_width 0);
  List.iteri
    (fun i r ->
      emit ctx
        (Printf.sprintf "  if (%s) %s = %d'd%d;" r gsel sel_width
           (n_grants - 1 - i)))
    reqs;
  emit ctx "end";
  ctx.pool <- (gsel, sel_width) :: ctx.pool;
  (* data select: case over the grant, with per-branch refinement muxes on
     the very request conditions (correlated with the selector value) *)
  let y = add_reg ctx width in
  emit ctx "always @* begin";
  emit ctx (Printf.sprintf "  case (%s)" gsel);
  List.iteri
    (fun i r ->
      let v1 = leaf_or_const ctx width and v2 = leaf_or_const ctx width in
      emit ctx
        (Printf.sprintf "    %d'd%d: %s = %s ? %s : %s;" sel_width
           (n_grants - 1 - i) y r v1 v2))
    reqs;
  emit ctx (Printf.sprintf "    default: %s = %s;" y (leaf_or_const ctx width));
  emit ctx "  endcase";
  emit ctx "end";
  produce ctx y width

(* A clocked pipeline stage: registers an existing signal through
   always @(posedge clk), optionally with an enable.  Gives the generated
   circuits real inferred flip-flops (beyond the netlist-level staging of
   {!Seqify}). *)
let emit_pipeline_stage ctx ~width =
  (* one shared clock input *)
  let clk =
    match List.assoc_opt "clk" ctx.inputs with
    | Some _ -> "clk"
    | None -> add_input ctx ~name:"clk" 1
  in
  let d = leaf ctx width in
  let q = add_reg ctx width in
  if Rng.chance ctx.rng 50 then begin
    let en = some_cond ctx in
    emit ctx (Printf.sprintf "always @(posedge %s) begin" clk);
    emit ctx (Printf.sprintf "  if (%s) %s <= %s;" en q d);
    emit ctx "end"
  end
  else emit ctx (Printf.sprintf "always @(posedge %s) %s <= %s;" clk q d);
  produce ctx q width

(* --- finalization --- *)

(* Sink every produced signal into xor-compressed outputs so nothing is
   dead, then render the module. *)
let render ctx ~name ~outputs =
  let produced = List.rev ctx.produced in
  let groups =
    (* deal produced signals round-robin over [outputs] sinks *)
    let arr = Array.make (max 1 outputs) [] in
    List.iteri
      (fun i sw -> arr.(i mod Array.length arr) <- sw :: arr.(i mod Array.length arr))
      produced;
    Array.to_list arr |> List.filter (( <> ) [])
  in
  let out_decls = Buffer.create 256 in
  let out_body = Buffer.create 256 in
  List.iteri
    (fun i group ->
      let width = List.fold_left (fun acc (_, w) -> max acc w) 1 group in
      let oname = Printf.sprintf "out%d" i in
      Buffer.add_string out_decls
        (Printf.sprintf "  output %s%s;\n" (range_str width) oname);
      let expr =
        String.concat " ^ "
          (List.map
             (fun (n, w) ->
               if w = width then n else Printf.sprintf "{%d'd0, %s}" (width - w) n)
             group)
      in
      Buffer.add_string out_body
        (Printf.sprintf "  assign %s = %s;\n" oname expr))
    groups;
  Printf.sprintf "module %s;\n%s%s\n%s%s\nendmodule\n" name
    (Buffer.contents ctx.header)
    (Buffer.contents out_decls)
    (Buffer.contents ctx.body)
    (Buffer.contents out_body)
