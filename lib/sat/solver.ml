(* A CDCL SAT solver in the MiniSAT tradition:
   - two-watched-literal unit propagation
   - first-UIP conflict analysis with learnt-clause minimization
   - VSIDS variable activities with a binary heap, phase saving
   - Luby restarts, learnt-clause database reduction
   - incremental solving under assumptions, optional conflict budget

   Values are encoded as ints: 1 = true, 0 = false, -1 = unassigned. *)

type clause = {
  mutable lits : int array;
  mutable activity : float;
  learnt : bool;
  mutable deleted : bool;
}

type result = Sat | Unsat | Unknown

type t = {
  (* clauses *)
  mutable clauses : clause list;
  mutable num_problem_clauses : int;
  mutable learnts : clause list;
  mutable num_learnts : int;
  (* variable state, indexed by var *)
  mutable assigns : int array; (* -1 / 0 / 1 *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable polarity : bool array; (* saved phase *)
  mutable seen : bool array;
  (* watches indexed by literal *)
  mutable watches : clause list array;
  (* trail *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable trail_lim : int list; (* stack of trail sizes at decisions *)
  mutable qhead : int;
  (* heap of candidate decision vars, ordered by activity *)
  mutable heap : int array;
  mutable heap_size : int;
  mutable heap_pos : int array; (* var -> index in heap, -1 if absent *)
  (* counters *)
  mutable num_vars : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  (* telemetry of the most recent [solve] call *)
  mutable last_conflicts : int;
  mutable last_decisions : int;
  mutable last_propagations : int;
  mutable last_wall_s : float;
}

let create () =
  {
    clauses = [];
    num_problem_clauses = 0;
    learnts = [];
    num_learnts = 0;
    assigns = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 None;
    activity = Array.make 16 0.0;
    polarity = Array.make 16 false;
    seen = Array.make 16 false;
    watches = Array.make 32 [];
    trail = Array.make 16 0;
    trail_size = 0;
    trail_lim = [];
    qhead = 0;
    heap = Array.make 16 0;
    heap_size = 0;
    heap_pos = Array.make 16 (-1);
    num_vars = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    last_conflicts = 0;
    last_decisions = 0;
    last_propagations = 0;
    last_wall_s = 0.0;
  }

let num_vars s = s.num_vars
let num_clauses s = s.num_problem_clauses
let num_conflicts s = s.conflicts

(* --- dynamic arrays --- *)

let grow_to s n =
  let old = Array.length s.assigns in
  if n > old then begin
    let nn = max n (old * 2) in
    let ext a fill =
      let b = Array.make nn fill in
      Array.blit a 0 b 0 old;
      b
    in
    s.assigns <- ext s.assigns (-1);
    s.level <- ext s.level 0;
    s.reason <- ext s.reason None;
    s.activity <- ext s.activity 0.0;
    s.polarity <- ext s.polarity false;
    s.seen <- ext s.seen false;
    s.heap_pos <- ext s.heap_pos (-1);
    let oldw = Array.length s.watches in
    let w = Array.make (nn * 2) [] in
    Array.blit s.watches 0 w 0 oldw;
    s.watches <- w;
    let tr = Array.make nn 0 in
    Array.blit s.trail 0 tr 0 s.trail_size;
    s.trail <- tr;
    let h = Array.make nn 0 in
    Array.blit s.heap 0 h 0 s.heap_size;
    s.heap <- h
  end

(* --- activity heap (max-heap on var activity) --- *)

let heap_lt s a b = s.activity.(a) > s.activity.(b)

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_lt s s.heap.(i) s.heap.(p) then begin
      let vi = s.heap.(i) and vp = s.heap.(p) in
      s.heap.(i) <- vp;
      s.heap.(p) <- vi;
      s.heap_pos.(vp) <- i;
      s.heap_pos.(vi) <- p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && heap_lt s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_size && heap_lt s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    let vi = s.heap.(i) and vb = s.heap.(!best) in
    s.heap.(i) <- vb;
    s.heap.(!best) <- vi;
    s.heap_pos.(vb) <- i;
    s.heap_pos.(vi) <- !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_size > 0 then begin
    let last = s.heap.(s.heap_size) in
    s.heap.(0) <- last;
    s.heap_pos.(last) <- 0;
    heap_down s 0
  end;
  v

(* --- variables --- *)

let new_var s =
  let v = s.num_vars in
  s.num_vars <- v + 1;
  grow_to s (v + 1);
  heap_insert s v;
  v

let value_var s v = s.assigns.(v)

let value_lit s l =
  let a = s.assigns.(Lit.var l) in
  if a < 0 then -1 else a lxor (l land 1)

(* --- activities --- *)

let var_decay = 1.0 /. 0.95
let cla_decay = 1.0 /. 0.999

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.num_vars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let bump_clause s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    List.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

(* --- trail --- *)

let decision_level s = List.length s.trail_lim

let enqueue s l reason =
  let v = Lit.var l in
  s.assigns.(v) <- (if Lit.is_negated l then 0 else 1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

let new_decision_level s = s.trail_lim <- s.trail_size :: s.trail_lim

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let rec target_limit lim n =
      match lim with
      | [] -> 0, []
      | sz :: rest ->
        if n = lvl + 1 then sz, rest else target_limit rest (n - 1)
    in
    let bound, new_lim = target_limit s.trail_lim (decision_level s) in
    for i = s.trail_size - 1 downto bound do
      let l = s.trail.(i) in
      let v = Lit.var l in
      s.polarity.(v) <- not (Lit.is_negated l);
      s.assigns.(v) <- -1;
      s.reason.(v) <- None;
      heap_insert s v
    done;
    s.trail_size <- bound;
    s.qhead <- bound;
    s.trail_lim <- new_lim
  end

(* --- clauses --- *)

let attach_clause s c =
  let l0 = c.lits.(0) and l1 = c.lits.(1) in
  s.watches.(Lit.negate l0) <- c :: s.watches.(Lit.negate l0);
  s.watches.(Lit.negate l1) <- c :: s.watches.(Lit.negate l1)

(* Add a problem clause.  Backtracks to level 0 first, so it is safe to call
   between incremental [solve] invocations. *)
let add_clause s (lits : int list) =
  cancel_until s 0;
  if s.ok then begin
    (* dedupe, drop false literals, detect tautologies / satisfied clauses *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (Lit.negate l) lits) lits
      || List.exists (fun l -> value_lit s l = 1) lits
    in
    if not tautology then begin
      let lits = List.filter (fun l -> value_lit s l <> 0) lits in
      match lits with
      | [] -> s.ok <- false
      | [ l ] -> enqueue s l None
      | _ ->
        let c =
          {
            lits = Array.of_list lits;
            activity = 0.0;
            learnt = false;
            deleted = false;
          }
        in
        s.clauses <- c :: s.clauses;
        s.num_problem_clauses <- s.num_problem_clauses + 1;
        attach_clause s c
    end
  end

(* --- propagation --- *)

exception Conflict of clause

let propagate s : clause option =
  let conflict = ref None in
  (try
     while s.qhead < s.trail_size do
       let p = s.trail.(s.qhead) in
       s.qhead <- s.qhead + 1;
       s.propagations <- s.propagations + 1;
       let ws = s.watches.(p) in
       s.watches.(p) <- [];
       let rec go = function
         | [] -> ()
         | c :: rest when c.deleted -> go rest
         | c :: rest -> (
           (* make sure the false literal is lits.(1) *)
           let np = Lit.negate p in
           if c.lits.(0) = np then begin
             c.lits.(0) <- c.lits.(1);
             c.lits.(1) <- np
           end;
           let first = c.lits.(0) in
           if value_lit s first = 1 then begin
             (* clause satisfied; keep watching p *)
             s.watches.(p) <- c :: s.watches.(p);
             go rest
           end
           else begin
             (* look for a new watch *)
             let n = Array.length c.lits in
             let rec find k =
               if k >= n then -1
               else if value_lit s c.lits.(k) <> 0 then k
               else find (k + 1)
             in
             let k = find 2 in
             if k >= 0 then begin
               let lk = c.lits.(k) in
               c.lits.(1) <- lk;
               c.lits.(k) <- np;
               s.watches.(Lit.negate lk) <- c :: s.watches.(Lit.negate lk);
               go rest
             end
             else if value_lit s first = 0 then begin
               (* conflict: restore remaining watches *)
               s.watches.(p) <- c :: s.watches.(p);
               List.iter
                 (fun c' -> s.watches.(p) <- c' :: s.watches.(p))
                 rest;
               s.qhead <- s.trail_size;
               raise (Conflict c)
             end
             else begin
               s.watches.(p) <- c :: s.watches.(p);
               enqueue s first (Some c);
               go rest
             end
           end)
       in
       go ws
     done
   with Conflict c -> conflict := Some c);
  !conflict

(* --- conflict analysis (first UIP) --- *)

let litRedundant s cache l =
  (* simple (non-recursive-minimization) check: reason-implied literal whose
     reason lits are all seen or level 0 *)
  match s.reason.(Lit.var l) with
  | None -> false
  | Some c ->
    Array.for_all
      (fun q ->
        q = Lit.negate l || s.seen.(Lit.var q) || s.level.(Lit.var q) = 0
        || Hashtbl.mem cache (Lit.var q))
      c.lits

let analyze s (conflict : clause) : int list * int =
  let learnt = ref [] in
  let path_count = ref 0 in
  let p = ref (-1) in
  (* -1 = start with the whole conflict clause *)
  let index = ref (s.trail_size - 1) in
  let cur_level = decision_level s in
  let cleanup = ref [] in
  let expand (c : clause) (skip : int) =
    bump_clause s c;
    Array.iter
      (fun q ->
        if q <> skip then begin
          let v = Lit.var q in
          if (not s.seen.(v)) && s.level.(v) > 0 then begin
            s.seen.(v) <- true;
            cleanup := v :: !cleanup;
            bump_var s v;
            if s.level.(v) >= cur_level then incr path_count
            else learnt := q :: !learnt
          end
        end)
      c.lits
  in
  expand conflict (-2);
  let rec walk () =
    (* find next seen literal on the trail at the current level *)
    while not s.seen.(Lit.var s.trail.(!index)) do
      decr index
    done;
    let l = s.trail.(!index) in
    decr index;
    s.seen.(Lit.var l) <- false;
    decr path_count;
    if !path_count > 0 then begin
      (match s.reason.(Lit.var l) with
      | Some c -> expand c (l)
      | None -> assert false);
      walk ()
    end
    else p := l
  in
  walk ();
  (* minimize: drop redundant literals *)
  let cache = Hashtbl.create 16 in
  List.iter (fun q -> Hashtbl.replace cache (Lit.var q) ()) !learnt;
  let learnt_min =
    List.filter (fun q -> not (litRedundant s cache q)) !learnt
  in
  let uip = Lit.negate !p in
  (* backtrack level: second-highest level in the learnt clause *)
  let blevel =
    List.fold_left (fun acc q -> max acc s.level.(Lit.var q)) 0 learnt_min
  in
  List.iter (fun v -> s.seen.(v) <- false) !cleanup;
  uip :: learnt_min, blevel

let record_learnt s lits blevel =
  cancel_until s blevel;
  match lits with
  | [] -> s.ok <- false
  | [ l ] -> enqueue s l None
  | l :: _ ->
    let c =
      {
        lits = Array.of_list lits;
        activity = 0.0;
        learnt = true;
        deleted = false;
      }
    in
    (* watch the UIP literal and one literal from the backtrack level *)
    let arr = c.lits in
    let best = ref 1 in
    for i = 2 to Array.length arr - 1 do
      if s.level.(Lit.var arr.(i)) > s.level.(Lit.var arr.(!best)) then
        best := i
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!best);
    arr.(!best) <- tmp;
    s.learnts <- c :: s.learnts;
    s.num_learnts <- s.num_learnts + 1;
    bump_clause s c;
    attach_clause s c;
    enqueue s l (Some c)

(* --- learnt DB reduction --- *)

let reduce_db s =
  let sorted =
    List.sort (fun (a : clause) (b : clause) -> compare a.activity b.activity) s.learnts
  in
  let n = List.length sorted in
  let to_remove = n / 2 in
  let locked c =
    (* a clause that is the reason of an assignment must stay *)
    Array.exists
      (fun l ->
        value_lit s l = 1
        &&
        match s.reason.(Lit.var l) with
        | Some r -> r == c
        | None -> false)
      c.lits
  in
  let removed = ref 0 in
  List.iteri
    (fun i c ->
      if i < to_remove && (not (locked c)) && Array.length c.lits > 2 then begin
        c.deleted <- true;
        incr removed
      end)
    sorted;
  s.learnts <- List.filter (fun c -> not c.deleted) s.learnts;
  s.num_learnts <- List.length s.learnts

(* --- Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,... --- *)

let rec luby_value i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do
    incr k
  done;
  if (1 lsl !k) - 1 = i then float_of_int (1 lsl (!k - 1))
  else luby_value (i - ((1 lsl (!k - 1)) - 1))

(* --- main search --- *)

let pick_branch_var s =
  let rec go () =
    if s.heap_size = 0 then -1
    else
      let v = heap_pop s in
      if s.assigns.(v) < 0 then v else go ()
  in
  go ()

type solve_outcome = result

(* [budget] here is an absolute conflict count: [solve_raw] has already
   added the caller's per-call budget to the conflicts accumulated before
   this call, so a long-lived incremental solver (a [Session]) gets a full
   budget on every query instead of starving once its lifetime total
   crosses one budget's worth.

   [relevant], when given, restricts decisions to those variables and lets
   the search stop with [Sat] once they are all assigned without conflict
   — a partial model.  The caller guarantees that every clause over the
   remaining variables is satisfiable under ANY such partial assignment
   (Session queries: each inactive clause group carries an assumed-false
   guard, so its clauses are already satisfied, and learned clauses are
   consequences of the problem clauses, so any extension that satisfies
   the problem clauses satisfies them too).  Without it every variable is
   assigned, as a plain CDCL solver does. *)
let search s ~assumptions ~budget ~relevant ~interrupt : solve_outcome =
  let assumptions = Array.of_list assumptions in
  let n_ass = Array.length assumptions in
  let nof_conflicts = ref 100.0 in
  let restart_count = ref 0 in
  let conflicts_this_restart = ref 0 in
  let rec loop () =
    match propagate s with
    | Some conflict ->
      s.conflicts <- s.conflicts + 1;
      incr conflicts_this_restart;
      if decision_level s = 0 then begin
        s.ok <- false;
        Unsat
      end
      else begin
        let learnt, blevel = analyze s conflict in
        (* never backtrack above the assumption prefix boundary *)
        record_learnt s learnt blevel;
        s.var_inc <- s.var_inc *. var_decay;
        s.cla_inc <- s.cla_inc *. cla_decay;
        if s.num_learnts > 4000 + (s.num_problem_clauses / 2) then reduce_db s;
        match budget with
        | Some b when s.conflicts >= b ->
          cancel_until s 0;
          Unknown
        | Some _ | None ->
          if interrupt () then begin
            cancel_until s 0;
            Unknown
          end
          else loop ()
      end
    | None ->
      if float_of_int !conflicts_this_restart >= !nof_conflicts then begin
        (* restart *)
        incr restart_count;
        conflicts_this_restart := 0;
        nof_conflicts := 100.0 *. luby_value !restart_count;
        cancel_until s 0;
        loop ()
      end
      else decide ()
  and decide () =
    (* re-establish assumptions first *)
    let dl = decision_level s in
    if dl < n_ass then begin
      let p = assumptions.(dl) in
      match value_lit s p with
      | 1 ->
        new_decision_level s;
        loop ()
      | 0 ->
        (* assumption contradicted *)
        cancel_until s 0;
        Unsat
      | _ ->
        new_decision_level s;
        enqueue s p None;
        loop ()
    end
    else begin
      let v =
        match relevant with
        | None -> pick_branch_var s
        | Some vars ->
          (* linear max-activity scan: [vars] is one query's cone, small
             against the accumulated database, and bypassing the heap
             keeps it consistent for later unrestricted calls *)
          let best = ref (-1) in
          Array.iter
            (fun v ->
              if
                s.assigns.(v) < 0
                && (!best < 0 || s.activity.(v) > s.activity.(!best))
              then best := v)
            vars;
          !best
      in
      if v < 0 then Sat
      else if interrupt () then begin
        cancel_until s 0;
        Unknown
      end
      else begin
        s.decisions <- s.decisions + 1;
        new_decision_level s;
        let l = Lit.of_var ~negated:(not s.polarity.(v)) v in
        enqueue s l None;
        loop ()
      end
    end
  in
  loop ()

(* Wrapped so every path through [solve] records the per-call deltas the
   engine's per-query telemetry reads back via [last_solve_stats]. *)
let solve_raw ?(assumptions = []) ?budget ?relevant ?interrupt s : result =
  if not s.ok then Unsat
  else begin
    cancel_until s 0;
    match propagate s with
    | Some _ ->
      s.ok <- false;
      Unsat
    | None ->
      (* make the caller's budget per-call: cap at current + budget *)
      let budget = Option.map (fun b -> s.conflicts + b) budget in
      let relevant = Option.map Array.of_list relevant in
      let interrupt =
        match interrupt with Some f -> f | None -> fun () -> false
      in
      let r = search s ~assumptions ~budget ~relevant ~interrupt in
      (match r with
      | Sat -> () (* keep trail so the model can be read *)
      | Unsat | Unknown -> cancel_until s 0);
      r
  end

type solve_stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  wall_s : float;
}

let solve ?assumptions ?budget ?relevant ?interrupt (s : t) : result =
  let c0 = s.conflicts and d0 = s.decisions and p0 = s.propagations in
  let t0 = Obs.Clock.now () in
  let r = solve_raw ?assumptions ?budget ?relevant ?interrupt s in
  s.last_conflicts <- s.conflicts - c0;
  s.last_decisions <- s.decisions - d0;
  s.last_propagations <- s.propagations - p0;
  s.last_wall_s <- Obs.Clock.now () -. t0;
  r

let last_solve_stats (s : t) =
  {
    conflicts = s.last_conflicts;
    decisions = s.last_decisions;
    propagations = s.last_propagations;
    wall_s = s.last_wall_s;
  }

(* Read the model after [solve] returned [Sat]. *)
let model_value s v =
  match s.assigns.(v) with
  | 1 -> true
  | 0 -> false
  | _ -> s.polarity.(v)

(* After Sat, the caller usually wants to continue incrementally. *)
let release_model s = cancel_until s 0

let stats (s : t) = s.conflicts, s.decisions, s.propagations
