(* FRAIG-style SAT sweeping for equivalence checking.

   Both AIGs are imported into one graph with shared primary inputs, so
   structural hashing already merges identical cones.  Remaining nodes are
   grouped into candidate-equivalence classes by random simulation
   signatures (complement-canonicalized) and the candidates are proven
   pairwise with small incremental SAT queries, processed in topological
   order; every proven equality is added to the solver as clauses, so
   higher cones become easy.  Counterexamples refine the signatures and
   classification restarts (bounded).

   This is what makes "all results passed equivalence checking" practical:
   optimized circuits share most of their structure with the originals, so
   nearly everything merges structurally or with trivial SAT calls. *)

type verdict = Equivalent | Not_equivalent of string | Inconclusive

(* import [src] into [dst], sharing PIs by name; returns a lit translator *)
let import (dst : Aig.t) (src : Aig.t) : Aig.lit -> Aig.lit =
  let pi_map = Hashtbl.create 16 in
  List.iter
    (fun (name, node_id) ->
      let l =
        match Aig.pi_lit dst name with
        | Some l -> l
        | None -> Aig.new_pi dst name
      in
      Hashtbl.replace pi_map node_id l)
    (Aig.pis src);
  let memo = Hashtbl.create 256 in
  let rec node_lit id =
    match Hashtbl.find_opt memo id with
    | Some l -> l
    | None ->
      let l =
        match Aig.node src id with
        | Aig.Const -> Aig.false_lit
        | Aig.Pi _ -> Hashtbl.find pi_map id
        | Aig.And (a, b) -> Aig.and_ dst (trans a) (trans b)
      in
      Hashtbl.replace memo id l;
      l
  and trans l =
    let nl = node_lit (Aig.node_of_lit l) in
    if Aig.is_complemented l then Aig.negate nl else nl
  in
  trans

type ctx = {
  g : Aig.t;
  solver : Cdcl.Solver.t;
  mutable sat_lit : (Aig.lit -> Cdcl.Lit.t) option;
  (* union-find over literals: parent of node id, as a literal *)
  parent : (int, Aig.lit) Hashtbl.t;
  mutable patterns : int array list; (* words per PI, newest first *)
  mutable signatures : int array list; (* per-node words, same order *)
  budget : int;
}

let rec find ctx (l : Aig.lit) : Aig.lit =
  let id = Aig.node_of_lit l in
  match Hashtbl.find_opt ctx.parent id with
  | None -> l
  | Some p ->
    let root = find ctx p in
    Hashtbl.replace ctx.parent id root;
    if Aig.is_complemented l then Aig.negate root else root

let union ctx (a : Aig.lit) (b : Aig.lit) =
  (* a and b proven equal; attach b's root under a's *)
  let ra = find ctx a and rb = find ctx b in
  if Aig.node_of_lit ra <> Aig.node_of_lit rb then begin
    (* parent of rb's node is ra adjusted for rb's phase *)
    let target = if Aig.is_complemented rb then Aig.negate ra else ra in
    Hashtbl.replace ctx.parent (Aig.node_of_lit rb) target
  end

let sat_lit ctx l =
  match ctx.sat_lit with
  | Some f -> f l
  | None ->
    (* encode the PO cones once; the translator extends lazily *)
    let roots = List.map snd (Aig.pos ctx.g) in
    let f = Aig.to_cnf ctx.g ctx.solver roots in
    ctx.sat_lit <- Some f;
    f l

(* deterministic pseudo-random words (splitmix-style) *)
let random_word seed idx =
  let z = ref (seed + (idx * 0x1E3779B97F4A7C15)) in
  z := (!z lxor (!z lsr 30)) * 0x3F58476D1CE4E5B9;
  z := (!z lxor (!z lsr 27)) * 0x14D049BB133111EB;
  !z lxor (!z lsr 31)

(* add a fresh random pattern (one word per PI) *)
let add_random_pattern ctx seed =
  let n = Aig.num_pis ctx.g in
  let words = Array.init n (fun i -> random_word seed i) in
  ctx.patterns <- words :: ctx.patterns;
  ctx.signatures <- Aig.simulate ctx.g words :: ctx.signatures

(* add a counterexample pattern from the current SAT model (the model is
   read before the next solver mutation invalidates it) *)
let add_cex_pattern ctx =
  let pis = Aig.pis ctx.g in
  let words = Array.make (List.length pis) 0 in
  List.iteri
    (fun i (_, node_id) ->
      let sl = sat_lit ctx (Aig.lit_of_node node_id) in
      let v = Cdcl.Solver.model_value ctx.solver (Cdcl.Lit.var sl) in
      let v = if Cdcl.Lit.is_negated sl then not v else v in
      words.(i) <- (if v then -1 else 0))
    pis;
  ctx.patterns <- words :: ctx.patterns;
  ctx.signatures <- Aig.simulate ctx.g words :: ctx.signatures

(* signature of a literal across all patterns, complement-canonicalized:
   returns (key, phase) so that complements share a class *)
let signature ctx (l : Aig.lit) : string * bool =
  let id = Aig.node_of_lit l in
  let buf = Buffer.create 32 in
  let first_bit = ref false in
  let first = ref true in
  List.iter
    (fun values ->
      let w = values.(id) in
      let w = if Aig.is_complemented l then lnot w else w in
      if !first then begin
        first := false;
        first_bit := w land 1 = 1
      end;
      let w = if !first_bit then lnot w else w in
      Buffer.add_string buf (string_of_int w);
      Buffer.add_char buf ',')
    ctx.signatures;
  Buffer.contents buf, !first_bit

(* Are two literals equal for all inputs?  Two bounded SAT calls; proven
   equalities are recorded as clauses.  [`Equal | `Diff | `Unknown]. *)
let prove_equal ctx (a : Aig.lit) (b : Aig.lit) =
  let sa = sat_lit ctx a and sb = sat_lit ctx b in
  let r1 =
    Cdcl.Solver.solve ~budget:ctx.budget
      ~assumptions:[ sa; Cdcl.Lit.negate sb ] ctx.solver
  in
  match r1 with
  | Cdcl.Solver.Sat ->
    add_cex_pattern ctx;
    `Diff
  | Cdcl.Solver.Unknown -> `Unknown
  | Cdcl.Solver.Unsat -> (
    let r2 =
      Cdcl.Solver.solve ~budget:ctx.budget
        ~assumptions:[ Cdcl.Lit.negate sa; sb ] ctx.solver
    in
    match r2 with
    | Cdcl.Solver.Sat ->
      add_cex_pattern ctx;
      `Diff
    | Cdcl.Solver.Unknown -> `Unknown
    | Cdcl.Solver.Unsat ->
      (* a = b everywhere: teach the solver *)
      Cdcl.Solver.add_clause ctx.solver [ Cdcl.Lit.negate sa; sb ];
      Cdcl.Solver.add_clause ctx.solver [ sa; Cdcl.Lit.negate sb ];
      union ctx a b;
      `Equal)

(* one sweep over all nodes in id (topological) order *)
let sweep ctx =
  let classes : (string, Aig.lit) Hashtbl.t = Hashtbl.create 256 in
  let unknowns = ref 0 in
  (* nodes were created in topological order: iterate ids upward *)
  let num_nodes =
    match ctx.signatures with
    | values :: _ -> Array.length values
    | [] -> 0
  in
  for id = 1 to num_nodes - 1 do
    match Aig.node ctx.g id with
    | Aig.Const | Aig.Pi _ -> ()
    | Aig.And _ ->
      let l = Aig.lit_of_node id in
      if Aig.node_of_lit (find ctx l) = id then begin
        (* not merged yet: classify *)
        let key, phase = signature ctx l in
        let this = if phase then Aig.negate l else l in
        match Hashtbl.find_opt classes key with
        | None -> Hashtbl.replace classes key this
        | Some candidate -> (
          match prove_equal ctx candidate this with
          | `Equal -> ()
          | `Diff ->
            (* signatures refined; future keys differ automatically *)
            ()
          | `Unknown -> incr unknowns)
      end
  done;
  !unknowns

let check_aigs ?(rounds = 8) ?(budget = 3000) (g1 : Aig.t) (g2 : Aig.t) :
    verdict =
  (* outputs must match by name *)
  let pos2 = Hashtbl.create 16 in
  List.iter (fun (n, l) -> Hashtbl.replace pos2 n l) (Aig.pos g2);
  let missing =
    List.find_opt (fun (n, _) -> not (Hashtbl.mem pos2 n)) (Aig.pos g1)
  in
  match missing with
  | Some (n, _) -> Not_equivalent n
  | None ->
    if List.length (Aig.pos g1) <> List.length (Aig.pos g2) then
      let pos1 = Hashtbl.create 16 in
      List.iter (fun (n, l) -> Hashtbl.replace pos1 n l) (Aig.pos g1);
      (match
         List.find_opt (fun (n, _) -> not (Hashtbl.mem pos1 n)) (Aig.pos g2)
       with
      | Some (n, _) -> Not_equivalent n
      | None -> Inconclusive)
    else begin
      let g = Aig.create () in
      let t1 = import g g1 in
      let t2 = import g g2 in
      let pairs =
        List.map
          (fun (n, l) -> n, t1 l, t2 (Hashtbl.find pos2 n))
          (Aig.pos g1)
      in
      (* fast path: everything merged structurally *)
      if List.for_all (fun (_, a, b) -> a = b) pairs then Equivalent
      else begin
        (* register POs so the CNF encoder covers every cone *)
        List.iter
          (fun (n, a, b) ->
            Aig.add_po g (n ^ "$1") a;
            Aig.add_po g (n ^ "$2") b)
          pairs;
        let ctx =
          {
            g;
            solver = Cdcl.Solver.create ();
            sat_lit = None;
            parent = Hashtbl.create 256;
            patterns = [];
            signatures = [];
            budget;
          }
        in
        for r = 1 to rounds do
          add_random_pattern ctx (0x5eed + r)
        done;
        let _unknowns = sweep ctx in
        (* second sweep benefits from refined signatures and learned
           equalities *)
        let _unknowns = sweep ctx in
        (* final per-output check *)
        let rec check_pairs = function
          | [] -> Equivalent
          | (n, a, b) :: rest ->
            let ra = find ctx a and rb = find ctx b in
            if ra = rb then check_pairs rest
            else begin
              (* one last, better-armed SAT attempt with a bigger budget *)
              let sa = sat_lit ctx a and sb = sat_lit ctx b in
              let r1 =
                Cdcl.Solver.solve ~budget:(ctx.budget * 20)
                  ~assumptions:[ sa; Cdcl.Lit.negate sb ]
                  ctx.solver
              in
              match r1 with
              | Cdcl.Solver.Sat -> Not_equivalent n
              | Cdcl.Solver.Unknown -> Inconclusive
              | Cdcl.Solver.Unsat -> (
                let r2 =
                  Cdcl.Solver.solve ~budget:(ctx.budget * 20)
                    ~assumptions:[ Cdcl.Lit.negate sa; sb ]
                    ctx.solver
                in
                match r2 with
                | Cdcl.Solver.Sat -> Not_equivalent n
                | Cdcl.Solver.Unknown -> Inconclusive
                | Cdcl.Solver.Unsat ->
                  Cdcl.Solver.add_clause ctx.solver
                    [ Cdcl.Lit.negate sa; sb ];
                  Cdcl.Solver.add_clause ctx.solver
                    [ sa; Cdcl.Lit.negate sb ];
                  check_pairs rest)
            end
        in
        check_pairs pairs
      end
    end
