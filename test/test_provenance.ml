(* Provenance subsystem tests: JSONL roundtrip, aggregation, the
   every-removal-is-explained identity on the smoke profile, and
   hardest-SAT-query capture/replay. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let with_sink f =
  let s = Obs.Provenance.make_sink () in
  Obs.Provenance.install s;
  Fun.protect ~finally:Obs.Provenance.uninstall (fun () -> f ());
  s

(* --- serialization --- *)

let test_jsonl_roundtrip () =
  let s =
    with_sink (fun () ->
        Obs.Provenance.emit ~kind:Obs.Provenance.Cell_removed ~cell:3
          ~pass:"opt_expr" ~mechanism:(Obs.Provenance.Rule "const_fold")
          ~area_delta:(-12) ();
        Obs.Provenance.emit ~kind:Obs.Provenance.Mux_bypassed ~cell:7
          ~pass:"sat_elim" ~mechanism:Obs.Provenance.Sat ~query:5 ();
        Obs.Provenance.emit ~kind:Obs.Provenance.Const_resolved ~cell:9
          ~pass:"sat_elim" ~mechanism:(Obs.Provenance.Rule "or") ~bits:4 ();
        Obs.Provenance.emit ~kind:Obs.Provenance.Tree_rebuilt ~cell:11
          ~pass:"restructure" ~mechanism:Obs.Provenance.Restructure
          ~area_delta:(-30) ();
        Obs.Provenance.emit ~kind:Obs.Provenance.Dead_branch ~cell:13
          ~pass:"sat_elim" ~mechanism:Obs.Provenance.Pruned ())
  in
  check_int "count" 5 (Obs.Provenance.count s);
  let text = Obs.Provenance.to_jsonl_string s in
  match Obs.Provenance.parse_jsonl text with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok evs ->
    check_bool "events equal" true (evs = Obs.Provenance.events s);
    (* aggregate: one row per mechanism, counts by kind *)
    let rows = Obs.Provenance.attribute evs in
    check_int "mechanisms" 5 (List.length rows);
    let find m =
      List.find (fun (a : Obs.Provenance.attribution) -> a.mech = m) rows
    in
    check_int "sat bypass" 1 (find "sat").Obs.Provenance.muxes_bypassed;
    check_int "const bits" 4 (find "rule:or").Obs.Provenance.consts_resolved;
    check_int "pruned dead" 1 (find "pruned").Obs.Provenance.dead_branches;
    check_int "restructure saved" 42
      ((find "rule:const_fold").Obs.Provenance.area_saved
      + (find "restructure").Obs.Provenance.area_saved)

let test_parse_errors () =
  (match Obs.Provenance.parse_jsonl "{\"kind\":\"cell_removed\"}\n" with
  | Error msg ->
    check_bool "line number in error" true
      (String.length msg > 0
      && String.contains msg '1')
  | Ok _ -> Alcotest.fail "accepted event with missing fields");
  (match
     Obs.Provenance.parse_jsonl
       "{\"kind\":\"cell_removed\",\"cell\":1,\"pass\":\"p\",\"mechanism\":\"bogus\"}"
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown mechanism");
  match Obs.Provenance.parse_jsonl "" with
  | Ok [] -> ()
  | Ok _ | Error _ -> Alcotest.fail "empty input should give zero events"

let test_mechanism_names () =
  let mechs =
    [
      Obs.Provenance.Pruned; Obs.Provenance.Rule "x"; Obs.Provenance.Sat;
      Obs.Provenance.Restructure; Obs.Provenance.Analysis;
    ]
  in
  List.iter
    (fun m ->
      match Obs.Provenance.mechanism_of_name (Obs.Provenance.mechanism_name m)
      with
      | Some m' -> check_bool "name roundtrip" true (m = m')
      | None -> Alcotest.fail "mechanism name did not round-trip")
    mechs;
  check_bool "unknown rejected" true
    (Obs.Provenance.mechanism_of_name "nope" = None)

(* --- the acceptance identity: on the smoke profile, every removed cell
   is explained by exactly one Cell_removed event --- *)

let cells_removed_counter = Obs.Metrics.counter "flow.cells_removed"

let test_mux_chain_identity () =
  Obs.Metrics.reset ();
  Smartly.Engine.Sat_log.reset ();
  let c = Workloads.Profiles.circuit Workloads.Profiles.mux_chain in
  let s = with_sink (fun () -> ignore (Smartly.Driver.smartly c)) in
  let evs = Obs.Provenance.events s in
  let removed_events =
    List.length
      (List.filter
         (fun (e : Obs.Provenance.event) ->
           e.Obs.Provenance.kind = Obs.Provenance.Cell_removed)
         evs)
  in
  let removed_counter = Obs.Metrics.value cells_removed_counter in
  check_bool "some cells removed" true (removed_counter > 0);
  check_int "every removal explained by exactly one event" removed_counter
    removed_events;
  (* and the aggregated table sums to the same total *)
  let rows = Obs.Provenance.attribute evs in
  let table_total =
    List.fold_left
      (fun acc (a : Obs.Provenance.attribution) ->
        acc + a.Obs.Provenance.cells_removed)
      0 rows
  in
  check_int "explain table total" removed_counter table_total

(* --- hardest-query capture and replay --- *)

let solve_dimacs (text : string) : Cdcl.Solver.result =
  let cnf, _comments = Cdcl.Dimacs.parse_string_ext text in
  let s = Cdcl.Solver.create () in
  for _ = 1 to cnf.Cdcl.Dimacs.num_vars do
    ignore (Cdcl.Solver.new_var s)
  done;
  List.iter
    (fun cl -> Cdcl.Solver.add_clause s (List.map Cdcl.Lit.of_dimacs cl))
    cnf.Cdcl.Dimacs.clauses;
  Cdcl.Solver.solve s

let test_sat_capture_replay () =
  Obs.Metrics.reset ();
  Smartly.Engine.Sat_log.reset ();
  (* the verdict cache is process-global too: without a reset, queries
     already answered by earlier tests in this binary would never reach
     the solver and nothing would be captured *)
  Smartly.Memo.reset ();
  (* disabling exhaustive simulation forces the ladder's small queries to
     SAT, so even the smoke profile records captures *)
  let cfg = { Smartly.Config.default with Smartly.Config.sim_input_threshold = 0 } in
  let c = Workloads.Profiles.circuit Workloads.Profiles.mux_chain in
  ignore (Smartly.Driver.smartly ~cfg c);
  check_bool "queries recorded" true (Smartly.Engine.Sat_log.query_count () > 0);
  let hardest = Smartly.Engine.Sat_log.hardest () in
  check_bool "hardest buffer non-empty" true (hardest <> []);
  check_bool "buffer bounded" true (List.length hardest <= 8);
  List.iter
    (fun (e : Smartly.Engine.Sat_log.entry) ->
      let dimacs = e.Smartly.Engine.Sat_log.dimacs e.Smartly.Engine.Sat_log.id in
      (* metadata comment carries the recorded outcome *)
      check_bool "metadata line" true
        (String.length dimacs > 0 && String.sub dimacs 0 1 = "c");
      match e.Smartly.Engine.Sat_log.solve with
      | Cdcl.Solver.Unknown -> () (* budget exhaustion is not replayable *)
      | (Cdcl.Solver.Sat | Cdcl.Solver.Unsat) as recorded ->
        let got = solve_dimacs dimacs in
        check_string
          (Printf.sprintf "query %d verdict reproduced"
             e.Smartly.Engine.Sat_log.id)
          (Smartly.Engine.Sat_log.solve_name recorded)
          (Smartly.Engine.Sat_log.solve_name got))
    hardest

let test_sat_log_reset () =
  Smartly.Engine.Sat_log.reset ~keep:2 ();
  check_int "empty after reset" 0 (Smartly.Engine.Sat_log.query_count ());
  check_bool "no hardest" true (Smartly.Engine.Sat_log.hardest () = []);
  (* keep bound respected *)
  Obs.Metrics.reset ();
  Smartly.Memo.reset ();
  let cfg = { Smartly.Config.default with Smartly.Config.sim_input_threshold = 0 } in
  let c = Workloads.Profiles.circuit Workloads.Profiles.mux_chain in
  ignore (Smartly.Driver.smartly ~cfg c);
  check_bool "keep=2 bound" true
    (List.length (Smartly.Engine.Sat_log.hardest ()) <= 2);
  Smartly.Engine.Sat_log.reset ()

(* --- no-sink discipline: emission without a sink records nothing and the
   flow still works --- *)

let test_no_sink () =
  check_bool "disabled" true (not (Obs.Provenance.enabled ()));
  Obs.Provenance.emit ~kind:Obs.Provenance.Cell_removed ~cell:1 ~pass:"p"
    ~mechanism:Obs.Provenance.Pruned ();
  let s = with_sink (fun () -> ()) in
  check_int "uninstalled sink empty" 0 (Obs.Provenance.count s)

let () =
  Alcotest.run "provenance"
    [
      ( "serialization",
        [
          Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "mechanism names" `Quick test_mechanism_names;
        ] );
      ( "flow",
        [
          Alcotest.test_case "mux_chain identity" `Quick
            test_mux_chain_identity;
          Alcotest.test_case "no sink" `Quick test_no_sink;
        ] );
      ( "sat_log",
        [
          Alcotest.test_case "capture and replay" `Quick
            test_sat_capture_replay;
          Alcotest.test_case "reset and keep" `Quick test_sat_log_reset;
        ] );
    ]
