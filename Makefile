.PHONY: all build test bench ci clean

all: build

build:
	dune build

test: build
	dune runtest

bench: build
	dune exec bench/main.exe

# What CI runs: build, the full test suite, then an end-to-end smoke of
# the observability surface — optimize the fast mux_chain profile with
# a Chrome trace, a JSON stats report, and a provenance log; aggregate
# the log with `explain`; and fail unless every artifact parses
# (validate-json is the CLI's own strict parser, so no external tooling
# is needed).  A second run on riscv — the smallest profile whose
# ladder reaches SAT — dumps its hardest queries and replays each one,
# failing on any verdict mismatch.  The replay loop is guarded because
# a profile resolved entirely by simulation dumps zero queries.
# The lint step covers every checked-in example plus the two smoke
# profiles; `lint` exits nonzero on error-severity findings, so a
# regression that makes an example ill-formed fails the build, and the
# JSON report must survive the strict parser.  Finally the mux_chain
# optimization is re-run under --check-invariants, which validates,
# lints and equivalence-checks the circuit after every pass.
ci: build
	dune runtest
	dune exec bin/smartly_cli.exe -- lint examples/*.v mux_chain riscv
	dune exec bin/smartly_cli.exe -- lint examples/*.v mux_chain riscv \
	  --json > /tmp/smartly_lint.json
	dune exec bin/smartly_cli.exe -- validate-json /tmp/smartly_lint.json
	dune exec bin/smartly_cli.exe -- opt mux_chain --flow smartly \
	  --check-invariants
	dune exec bin/smartly_cli.exe -- opt mux_chain --flow smartly \
	  --json --trace /tmp/smartly_trace.json \
	  --provenance /tmp/smartly_prov.jsonl \
	  > /tmp/smartly_stats.json
	dune exec bin/smartly_cli.exe -- explain /tmp/smartly_prov.jsonl
	dune exec bin/smartly_cli.exe -- validate-json \
	  /tmp/smartly_stats.json /tmp/smartly_trace.json /tmp/smartly_prov.jsonl
	rm -rf /tmp/smartly_satq
	dune exec bin/smartly_cli.exe -- opt riscv --flow smartly \
	  --sat-dump /tmp/smartly_satq
	for f in /tmp/smartly_satq/*.cnf; do \
	  [ -e "$$f" ] || continue; \
	  dune exec bin/smartly_cli.exe -- replay "$$f" || exit 1; \
	done

clean:
	dune clean
