(* SAT-based redundancy elimination (Section II of the paper).

   The traversal mirrors the Yosys opt_muxtree baseline, but a descendant
   mux's control is resolved with the full inference engine (known-value
   lookup -> inference rules -> exhaustive simulation -> SAT) instead of
   only by identical-signal matching.  Data-port bits determined by the
   inference rules under the path condition are replaced by constants.

   Per query, a bounded sub-graph is built from the distance-k fanin cones
   of the visited control ports (the paper's incremental accumulation,
   restricted to the facts on the current path), pruned with Theorem II.1,
   and handed to the engine. *)

open Netlist
module OM = Rtl_opt.Opt_muxtree

type report = {
  muxes_bypassed : int;
  data_bits_folded : int;
  dead_branches : int;
  engine : Engine.stats;
}

let pp_report ppf r =
  Fmt.pf ppf
    "bypassed=%d data_folded=%d dead=%d rules=%d analysis=%d sim=%d sat=%d \
     memo=%d/%d forgone=%d kept=%d dropped=%d conflicts=%d decisions=%d \
     props=%d"
    r.muxes_bypassed r.data_bits_folded r.dead_branches
    r.engine.Engine.rule_hits r.engine.Engine.analysis_hits
    r.engine.Engine.sim_queries
    r.engine.Engine.sat_queries r.engine.Engine.memo_hits
    r.engine.Engine.memo_misses r.engine.Engine.forgone
    r.engine.Engine.subgraph_kept r.engine.Engine.subgraph_dropped
    r.engine.Engine.sat_conflicts r.engine.Engine.sat_decisions
    r.engine.Engine.sat_propagations

type ctx = {
  cfg : Config.t;
  c : Circuit.t;
  index : Index.t;
  readers : OM.readers;
  stats : Engine.stats;
  session : Cdcl.Session.t option;
      (* one persistent incremental solver for every SAT query of the run;
         [None] when [cfg.enable_sat_session] is off *)
  edits : (int * Cell.t * Cell.t) list ref option;
      (* task path only: (id, old, new) newest-first, so the worker can
         revert its circuit copy to the frozen snapshot after the task
         and the coordinator can replay the news in application order *)
  mutable bypassed : int;
  mutable folded : int;
  mutable dead : int;
}

let replace ctx id (cell : Cell.t) =
  (match ctx.edits with
  | Some edits -> edits := (id, Circuit.cell ctx.c id, cell) :: !edits
  | None -> ());
  Circuit.replace_cell ctx.c id cell

let is_mux = function
  | Cell.Mux _ | Cell.Pmux _ -> true
  | Cell.Unary _ | Cell.Binary _ | Cell.Dff _ -> false

(* Provenance mechanism of an engine verdict; [Some qid] for SAT. *)
let mechanism_of_source (src : Engine.source) :
    Obs.Provenance.mechanism * int option =
  match src with
  | Engine.Via_lookup -> (Obs.Provenance.Rule "identical_signal", None)
  | Engine.Via_rule r -> (Obs.Provenance.Rule r, None)
  | Engine.Via_analysis -> (Obs.Provenance.Analysis, None)
  | Engine.Via_sim -> (Obs.Provenance.Rule "sim", None)
  | Engine.Via_sat qid -> (Obs.Provenance.Sat, Some qid)
  | Engine.Via_memo -> (Obs.Provenance.Memo, None)
  | Engine.Via_forgone -> (Obs.Provenance.Pruned, None)

let with_fact known (bit : Bits.bit) v =
  let known' = Bits.Bit_tbl.copy known in
  (match bit with
  | Bits.Of_wire _ -> Bits.Bit_tbl.replace known' bit v
  | Bits.C0 | Bits.C1 | Bits.Cx -> ());
  known'

(* Resolve the select bit of a descendant mux under [known]:
   1. direct lookup (identical signal, the Yosys rule)
   2. full engine (rules / simulation / SAT) *)
let resolve_select ctx known (s : Bits.bit) :
    Engine.verdict * Engine.source =
  match Inference.read known s with
  | Some v -> (Engine.Forced v, Engine.Via_lookup)
  | None ->
    (match s with
    | Bits.C0 -> (Engine.Forced false, Engine.Via_lookup)
    | Bits.C1 -> (Engine.Forced true, Engine.Via_lookup)
    | Bits.Cx -> (Engine.Unknown, Engine.Via_forgone)
    | Bits.Of_wire _ ->
      if Bits.Bit_tbl.length known = 0 then
        (* no path facts: only constants could be proven; opt_expr already
           covers those, skip the expensive query *)
        (Engine.Unknown, Engine.Via_forgone)
      else
        Engine.determine_how ?session:ctx.session ctx.cfg ctx.stats ctx.c
          ctx.index known ~target:s)

(* Substitute data-port bits under [known]: direct lookups plus values the
   inference rules derive on a bounded view built from the cones of the
   known signals and of the port bits themselves.  [owner] is the mux cell
   whose port is being folded, for provenance. *)
let fold_data_bits ctx known ~owner (port : Bits.sigspec) :
    Bits.sigspec * bool =
  let track = Bits.Bit_tbl.create 16 in
  let local =
    if
      ctx.cfg.Config.enable_inference_rules
      && Bits.Bit_tbl.length known > 0
    then begin
      let sg = Subgraph.create ctx.c ctx.index in
      let k = ctx.cfg.Config.distance_k in
      Bits.Bit_tbl.iter (fun b _ -> Subgraph.add_cone sg ~k b) known;
      Array.iter (fun b -> Subgraph.add_cone sg ~k b) port;
      if Subgraph.size sg > ctx.cfg.Config.max_subgraph_cells then known
      else begin
      let relevant =
        Array.to_list port
        @ Bits.Bit_tbl.fold (fun b _ acc -> b :: acc) known []
      in
      let view =
        if ctx.cfg.Config.enable_pruning then Subgraph.prune sg ~relevant
        else Subgraph.full_view sg
      in
      let local = Bits.Bit_tbl.copy known in
      match Inference.propagate ~track ctx.c local view.Subgraph.cells with
      | _ -> local
      | exception Inference.Contradiction -> known
      end
    end
    else known
  in
  let changed = ref false in
  let out =
    Array.map
      (fun b ->
        match Inference.read local b with
        | Some v ->
          let nb = if v then Bits.C1 else Bits.C0 in
          if not (Bits.bit_equal nb b) then begin
            changed := true;
            ctx.folded <- ctx.folded + 1;
            let rule =
              match Bits.Bit_tbl.find_opt track b with
              | Some r -> r
              | None -> "identical_signal"
            in
            Obs.Provenance.emit ~kind:Obs.Provenance.Const_resolved
              ~cell:owner ~pass:"sat_elim"
              ~mechanism:(Obs.Provenance.Rule rule) ~bits:1 ()
          end;
          nb
        | None -> b)
      port
  in
  out, !changed

(* Chase a data bit through dedicated descendant muxes whose selects the
   engine can resolve.  [cache] memoizes select verdicts for the duration
   of one port resolution: a 16-bit port driven by one child mux asks one
   engine query, not sixteen. *)
let rec chase ctx known ~cache ~loc (bit : Bits.bit) : Bits.bit =
  match Index.driving_cell ctx.index bit with
  | None -> bit
  | Some (child_id, off) -> (
    match Circuit.cell_opt ctx.c child_id with
    | Some (Cell.Mux { a; b; s; _ } as child)
      when OM.dedicated_location ctx.readers child = Some loc -> (
      let verdict, src =
        match Bits.Bit_tbl.find_opt cache s with
        | Some vs -> vs
        | None ->
          let vs = resolve_select ctx known s in
          Bits.Bit_tbl.replace cache s vs;
          vs
      in
      match verdict with
      | Engine.Forced v ->
        ctx.bypassed <- ctx.bypassed + 1;
        let mechanism, query = mechanism_of_source src in
        Obs.Provenance.emit ~kind:Obs.Provenance.Mux_bypassed
          ~cell:child_id ~pass:"sat_elim" ~mechanism ?query ();
        chase ctx known ~cache ~loc (if v then b.(off) else a.(off))
      | Engine.Unreachable ->
        (* dead path: the value is never observed; pick branch a *)
        ctx.dead <- ctx.dead + 1;
        Obs.Provenance.emit ~kind:Obs.Provenance.Dead_branch
          ~cell:child_id ~pass:"sat_elim"
          ~mechanism:Obs.Provenance.Pruned ();
        chase ctx known ~cache ~loc a.(off)
      | Engine.Free | Engine.Unknown -> bit)
    | Some _ | None -> bit)

let resolve_port ctx known ~loc (port : Bits.sigspec) : Bits.sigspec * bool =
  let folded, changed_f = fold_data_bits ctx known ~owner:(fst loc) port in
  let changed = ref changed_f in
  let cache : (Engine.verdict * Engine.source) Bits.Bit_tbl.t =
    Bits.Bit_tbl.create 8
  in
  let out =
    Array.map
      (fun b ->
        let nb = chase ctx known ~cache ~loc b in
        if not (Bits.bit_equal nb b) then changed := true;
        nb)
      folded
  in
  out, !changed

let port_children ctx ~loc (port : Bits.sigspec) : int list =
  Array.to_list port
  |> List.filter_map (fun bit ->
         match Index.driving_cell ctx.index bit with
         | Some (id, _) -> (
           match Circuit.cell_opt ctx.c id with
           | Some child
             when is_mux child
                  && OM.dedicated_location ctx.readers child = Some loc ->
             Some id
           | Some _ | None -> None)
         | None -> None)
  |> List.sort_uniq compare

let rec visit ctx visited known (id : int) =
  if not (Hashtbl.mem visited id) then begin
    Hashtbl.replace visited id ();
    match Circuit.cell_opt ctx.c id with
    | None -> ()
    | Some (Cell.Mux { a; b; s; y }) ->
      let known_a = with_fact known s false in
      let known_b = with_fact known s true in
      let a', ca = resolve_port ctx known_a ~loc:(id, OM.Side_a) a in
      let b', cb = resolve_port ctx known_b ~loc:(id, OM.Side_b 0) b in
      if ca || cb then replace ctx id (Cell.Mux { a = a'; b = b'; s; y });
      List.iter
        (fun cid -> visit ctx visited known_a cid)
        (port_children ctx ~loc:(id, OM.Side_a) a');
      List.iter
        (fun cid -> visit ctx visited known_b cid)
        (port_children ctx ~loc:(id, OM.Side_b 0) b')
    | Some (Cell.Pmux { a; b; s; y }) ->
      let w = Bits.width a in
      let n = Bits.width s in
      let known_def = ref (Bits.Bit_tbl.copy known) in
      Array.iter (fun sb -> known_def := with_fact !known_def sb false) s;
      let a', ca = resolve_port ctx !known_def ~loc:(id, OM.Side_a) a in
      let b' = Array.copy b in
      let changed_b = ref false in
      let part_known i =
        (* priority facts: s_i = 1 and the nearest earlier selects = 0
           (capped to bound the sub-graph cones on very wide pmuxes) *)
        let kp = ref (Bits.Bit_tbl.copy known) in
        for j = max 0 (i - 12) to i - 1 do
          kp := with_fact !kp s.(j) false
        done;
        kp := with_fact !kp s.(i) true;
        !kp
      in
      for i = 0 to n - 1 do
        let part = Bits.slice b ~off:(i * w) ~len:w in
        let part', cp =
          resolve_port ctx (part_known i) ~loc:(id, OM.Side_b i) part
        in
        if cp then begin
          changed_b := true;
          Array.blit part' 0 b' (i * w) w
        end
      done;
      if ca || !changed_b then
        replace ctx id (Cell.Pmux { a = a'; b = b'; s; y });
      List.iter
        (fun cid -> visit ctx visited !known_def cid)
        (port_children ctx ~loc:(id, OM.Side_a) a');
      for i = 0 to n - 1 do
        let part = Bits.slice b' ~off:(i * w) ~len:w in
        List.iter
          (fun cid -> visit ctx visited (part_known i) cid)
          (port_children ctx ~loc:(id, OM.Side_b i) part)
      done
    | Some (Cell.Unary _ | Cell.Binary _ | Cell.Dff _) -> ()
  end

let m_bypassed = Obs.Metrics.counter "sat_elim.muxes_bypassed"
let m_folded = Obs.Metrics.counter "sat_elim.data_bits_folded"
let m_dead = Obs.Metrics.counter "sat_elim.dead_branches"

let run_once (cfg : Config.t) (c : Circuit.t) : report =
  Obs.Trace.with_span "sat_elim.run_once" @@ fun () ->
  let index = Index.build c in
  let ctx =
    {
      cfg;
      c;
      index;
      readers = OM.collect_readers c;
      stats = Engine.fresh_stats ();
      session =
        (if cfg.Config.enable_sat_session then Some (Cdcl.Session.create ())
         else None);
      edits = None;
      bypassed = 0;
      folded = 0;
      dead = 0;
    }
  in
  let visited = Hashtbl.create 64 in
  let roots =
    List.filter
      (fun id ->
        let cell = Circuit.cell c id in
        is_mux cell && OM.dedicated_location ctx.readers cell = None)
      (Circuit.cell_ids c)
  in
  List.iter (fun id -> visit ctx visited (Bits.Bit_tbl.create 8) id) roots;
  Obs.Metrics.add m_bypassed ctx.bypassed;
  Obs.Metrics.add m_folded ctx.folded;
  Obs.Metrics.add m_dead ctx.dead;
  {
    muxes_bypassed = ctx.bypassed;
    data_bits_folded = ctx.folded;
    dead_branches = ctx.dead;
    engine = ctx.stats;
  }

(* --- the sharded task path (--jobs) ---

   Each muxtree root is one task.  A worker owns a private copy of the
   circuit (frozen at pass start), optimizes its tree on that copy while
   recording the edit set, reverts the copy back to the snapshot, and
   hands the edits to the coordinator, which applies them to the master
   circuit in task order.  Trees rooted at distinct roots touch disjoint
   cell sets — a dedicated mux is read by exactly one location, so every
   cell belongs to at most one tree and [port_children] never crosses
   into another task's root — which makes the merge conflict-free and
   the result independent of the schedule.

   Every task also opens a {!Sched} scope: fresh SAT session, memo
   overlay over the coordinator's frozen store, local metrics /
   provenance / bus buffers and SAT log, all merged at the barrier in
   task order so [--jobs N] telemetry is byte-identical for every N.
   The price of that determinism is per-task (not per-run) solver
   state; the legacy [run_once] path keeps the shared session and
   remains the default. *)

type task_result = {
  t_edits : (int * Cell.t) list; (* (id, new cell) in application order *)
  t_bypassed : int;
  t_folded : int;
  t_dead : int;
  t_stats : Engine.stats;
}

let add_stats (into : Engine.stats) (s : Engine.stats) =
  into.Engine.rule_hits <- into.Engine.rule_hits + s.Engine.rule_hits;
  into.Engine.analysis_hits <-
    into.Engine.analysis_hits + s.Engine.analysis_hits;
  into.Engine.analysis_queries <-
    into.Engine.analysis_queries + s.Engine.analysis_queries;
  into.Engine.sim_queries <- into.Engine.sim_queries + s.Engine.sim_queries;
  into.Engine.sat_queries <- into.Engine.sat_queries + s.Engine.sat_queries;
  into.Engine.memo_hits <- into.Engine.memo_hits + s.Engine.memo_hits;
  into.Engine.memo_misses <- into.Engine.memo_misses + s.Engine.memo_misses;
  into.Engine.forgone <- into.Engine.forgone + s.Engine.forgone;
  into.Engine.subgraph_kept <-
    into.Engine.subgraph_kept + s.Engine.subgraph_kept;
  into.Engine.subgraph_dropped <-
    into.Engine.subgraph_dropped + s.Engine.subgraph_dropped;
  into.Engine.sat_conflicts <-
    into.Engine.sat_conflicts + s.Engine.sat_conflicts;
  into.Engine.sat_decisions <-
    into.Engine.sat_decisions + s.Engine.sat_decisions;
  into.Engine.sat_propagations <-
    into.Engine.sat_propagations + s.Engine.sat_propagations

let run_tasks (cfg : Config.t) (c : Circuit.t) ~jobs : report =
  Obs.Trace.with_span "sat_elim.run_tasks" @@ fun () ->
  let readers0 = OM.collect_readers c in
  let roots =
    List.filter
      (fun id ->
        let cell = Circuit.cell c id in
        is_mux cell && OM.dedicated_location readers0 cell = None)
      (Circuit.cell_ids c)
    |> Array.of_list
  in
  let n = Array.length roots in
  (* Task-replay cache ({!Replay}, opt-in): a task's result is a pure
     function of (frozen cells, root, config), so when a store is
     installed, hits are resolved here on the coordinator — before the
     pool sees any work, keeping the store lock-free — and only misses
     become pool tasks.  A fully warm pass spawns no domains at all. *)
  let cache = Replay.active () in
  let keys =
    match cache with
    | None -> [||]
    | Some _ ->
      let digest = Replay.circuit_digest c in
      let cfg_fp = Config.fingerprint cfg in
      Array.map (fun root -> Replay.task_key ~digest ~cfg_fp ~root) roots
  in
  let cached =
    match cache with
    | None -> Array.make n None
    | Some s -> Array.map (fun k -> Replay.find s k) keys
  in
  let miss_idx =
    let l = ref [] in
    for i = n - 1 downto 0 do
      match cached.(i) with None -> l := i :: !l | Some _ -> ()
    done;
    Array.of_list !l
  in
  let env = Sched.env ~cfg () in
  let miss_results =
    Pool.run ~jobs
      ~init:(fun () ->
        let wc = Circuit.copy c in
        (wc, Index.build wc, OM.collect_readers wc))
      ~task:(fun (wc, index, readers) mi ->
        Sched.with_task env @@ fun () ->
        let edits = ref [] in
        let ctx =
          {
            cfg;
            c = wc;
            index;
            readers;
            stats = Engine.fresh_stats ();
            session =
              (if cfg.Config.enable_sat_session then
                 Some (Cdcl.Session.create ())
               else None);
            edits = Some edits;
            bypassed = 0;
            folded = 0;
            dead = 0;
          }
        in
        let visited = Hashtbl.create 64 in
        visit ctx visited (Bits.Bit_tbl.create 8) roots.(miss_idx.(mi));
        (* put the worker copy back to the frozen snapshot for the next
           task; newest-first order unwinds repeated edits correctly *)
        List.iter
          (fun (id, old_cell, _) -> Circuit.replace_cell wc id old_cell)
          !edits;
        {
          t_edits = List.rev_map (fun (id, _, nc) -> (id, nc)) !edits;
          t_bypassed = ctx.bypassed;
          t_folded = ctx.folded;
          t_dead = ctx.dead;
          t_stats = ctx.stats;
        })
      (Array.length miss_idx)
  in
  (* barrier: apply and merge in task order — the only order-sensitive
     step, and the reason the output cannot depend on the schedule.
     Replayed tasks restore their recorded edits and counters; pool
     tasks additionally merge their telemetry captures and feed the
     cache. *)
  let stats = Engine.fresh_stats () in
  let bypassed = ref 0 in
  let folded = ref 0 in
  let dead = ref 0 in
  let next_miss = ref 0 in
  for i = 0 to n - 1 do
    match cached.(i) with
    | Some e ->
      List.iter
        (fun (id, cell) -> Circuit.replace_cell c id cell)
        (Replay.copy_edits e.Replay.e_edits);
      add_stats stats e.Replay.e_stats;
      bypassed := !bypassed + e.Replay.e_bypassed;
      folded := !folded + e.Replay.e_folded;
      dead := !dead + e.Replay.e_dead
    | None ->
      let tr, capture = miss_results.(!next_miss) in
      incr next_miss;
      List.iter (fun (id, cell) -> Circuit.replace_cell c id cell) tr.t_edits;
      Sched.merge capture;
      add_stats stats tr.t_stats;
      bypassed := !bypassed + tr.t_bypassed;
      folded := !folded + tr.t_folded;
      dead := !dead + tr.t_dead;
      (match cache with
      | Some s ->
        Replay.store s keys.(i)
          {
            Replay.e_edits = tr.t_edits;
            e_bypassed = tr.t_bypassed;
            e_folded = tr.t_folded;
            e_dead = tr.t_dead;
            e_stats = tr.t_stats;
          }
      | None -> ())
  done;
  Obs.Metrics.add m_bypassed !bypassed;
  Obs.Metrics.add m_folded !folded;
  Obs.Metrics.add m_dead !dead;
  {
    muxes_bypassed = !bypassed;
    data_bits_folded = !folded;
    dead_branches = !dead;
    engine = stats;
  }

let run ?jobs (cfg : Config.t) (c : Circuit.t) : report =
  match jobs with
  | Some n -> run_tasks cfg c ~jobs:n
  | None -> run_once cfg c

let changed (r : report) =
  r.muxes_bypassed + r.data_bits_folded + r.dead_branches > 0
