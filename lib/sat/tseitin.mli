(** Tseitin encoding of circuit sub-DAGs into CNF. *)

open Netlist

type t = {
  solver : Solver.t;
  vars : int Bits.Bit_tbl.t;  (** wire bit -> SAT variable *)
  true_lit : Lit.t;  (** a variable asserted true, for constants *)
  mutable clause_log : Lit.t list list;
      (** every added clause, most recent first — the raw material for
          {!to_dimacs} query capture *)
  mutable clause_guard : Lit.t option;
      (** when set, every clause added through the encoders also carries
          this literal.  {!Session} guards each cell's clauses with a
          dedicated [¬g] so a query activates exactly the cells of its
          sub-graph by assuming their [g] literals, keeping the persistent
          database equisatisfiable with a fresh per-query encoding. *)
}

val create : unit -> t
(** A fresh encoder with its own solver. *)

val lit_of_bit : t -> Bits.bit -> Lit.t
(** The SAT literal of a wire bit (allocated on first use); constants map
    to the dedicated true variable. *)

val fresh_lit : t -> Lit.t
(** A fresh positive literal on a new solver variable (auxiliary nodes,
    clause-group guards). *)

val encode_cell : t -> Cell.t -> unit
(** @raise Invalid_argument on sequential cells. *)

val encode_cells : t -> Circuit.t -> int list -> unit

val assume_lit : t -> Bits.bit -> bool -> Lit.t
(** Assumption literal asserting the bit's value. *)

val to_dimacs : t -> extra:Lit.t list list -> Dimacs.cnf
(** The encoded CNF with [extra] clauses appended.  Dumping a query passes
    the assumptions and the queried target polarity as unit clauses, making
    the instance self-contained for [smartly replay]. *)

type query_result =
  | Forced of bool
  | Free
  | Contradictory
      (** both polarities unsat: the assumptions themselves are
          contradictory (a dead path), so no value is "forced" *)
  | Undetermined

(** The last solver call of a query: which target polarity was asserted
    and what the solver answered.  A replay of the clauses plus that unit
    must reproduce [last_result]. *)
type solve_info = { last_target_lit : Lit.t; last_result : Solver.result }

val query_forced :
  ?budget:int ->
  ?relevant:int list ->
  ?interrupt:(unit -> bool) ->
  t ->
  assumptions:Lit.t list ->
  target:Bits.bit ->
  query_result
(** Is the target bit forced under the assumptions?  Two incremental
    solver calls: SAT(target=1) and SAT(target=0).  [relevant] and
    [interrupt] are passed through to {!Solver.solve} — see the
    soundness requirement on [relevant]; session queries supply the
    active groups' variables from {!Session.prepare}. *)

val query_forced_info :
  ?budget:int ->
  ?relevant:int list ->
  ?interrupt:(unit -> bool) ->
  t ->
  assumptions:Lit.t list ->
  target:Bits.bit ->
  query_result * solve_info
(** Like {!query_forced}, also exposing the final solve for capture. *)
