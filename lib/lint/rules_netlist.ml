(* Netlist-level lint rules.

   NL001  mux / pmux select tied to a constant
   NL002  mux with identical branches, pmux with a duplicated select bit
   NL003  several eq cells comparing one signal against one constant
   NL004  module input that drives nothing (clock-named inputs exempt)
   NL005..NL009  Validate issues bridged as errors
   NL010..NL013  semantic rules backed by the value-analysis fixpoint
                 (Analysis.Facts over the unseeded whole-circuit state) *)

open Netlist

(* --- Validate bridge --- *)

let of_validate (issues : Validate.issue list) : Diag.t list =
  List.map
    (fun issue ->
      let msg = Fmt.str "%a" Validate.pp_issue issue in
      match issue with
      | Validate.Multiple_drivers _ -> Diag.error ~rule:"NL005" msg
      | Validate.Dangling_wire_bit _ -> Diag.error ~rule:"NL006" msg
      | Validate.Width_violation (id, _) -> Diag.error ~cell:id ~rule:"NL007" msg
      | Validate.Unknown_wire _ -> Diag.error ~rule:"NL008" msg
      | Validate.Cyclic cells ->
        let cell = match cells with c :: _ -> Some c | [] -> None in
        Diag.make ?cell ~rule:"NL009" ~severity:Diag.Error msg)
    issues

(* --- structural rules --- *)

let const_name = function
  | Bits.C0 -> "0"
  | Bits.C1 -> "1"
  | Bits.Cx -> "x"
  | Bits.Of_wire _ -> assert false

let check_const_selects emit (c : Circuit.t) =
  Circuit.iter_cells
    (fun id cell ->
      match cell with
      | Cell.Mux { s; _ } when Bits.is_const s ->
        emit
          (Diag.warning ~cell:id ~rule:"NL001"
             (Fmt.str "mux select is constant %s; one branch is statically \
                       chosen" (const_name s)))
      | Cell.Pmux { s; _ } ->
        Array.iteri
          (fun i b ->
            if Bits.is_const b then
              emit
                (Diag.warning ~cell:id ~rule:"NL001"
                   (Fmt.str "pmux select bit %d is constant %s" i
                      (const_name b))))
          s
      | _ -> ())
    c

let check_dead_branches emit (c : Circuit.t) =
  Circuit.iter_cells
    (fun id cell ->
      match cell with
      | Cell.Mux { a; b; s; _ } when (not (Bits.is_const s)) && Bits.equal a b
        ->
        emit
          (Diag.warning ~cell:id ~rule:"NL002"
             "mux branches are identical; the select cannot influence the \
              output")
      | Cell.Pmux { s; _ } ->
        let seen = Bits.Bit_tbl.create 8 in
        Array.iter
          (fun bit ->
            if not (Bits.is_const bit) then
              if Bits.Bit_tbl.mem seen bit then
                emit
                  (Diag.warning ~cell:id ~rule:"NL002"
                     (Fmt.str "pmux lists select bit %a twice; the later \
                               branch is dead" Bits.pp_bit bit))
              else Bits.Bit_tbl.replace seen bit ())
          s
      | _ -> ())
    c

(* NL003: eq cells are duplicated when they compare the same signal
   against the same constant — opt_merge folds these, so surface them as
   info rather than warning. *)
let check_duplicate_eq emit (c : Circuit.t) =
  let groups : (string, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let record key id =
    match Hashtbl.find_opt groups key with
    | Some ids -> ids := id :: !ids
    | None -> Hashtbl.replace groups key (ref [ id ])
  in
  Circuit.iter_cells
    (fun id cell ->
      match cell with
      | Cell.Binary { op = Cell.Eq; a; b; _ } ->
        let key sel cst =
          Fmt.str "%a==%a" Bits.pp sel Bits.pp cst
        in
        if Bits.is_fully_const b && not (Bits.is_fully_const a) then
          record (key a b) id
        else if Bits.is_fully_const a && not (Bits.is_fully_const b) then
          record (key b a) id
      | _ -> ())
    c;
  Hashtbl.fold (fun key ids acc -> (key, List.rev !ids) :: acc) groups []
  |> List.sort compare
  |> List.iter (fun (_, ids) ->
         match ids with
         | first :: (_ :: _ as rest) ->
           emit
             (Diag.info ~cell:first ~rule:"NL003"
                (Fmt.str
                   "%d eq cells (%a) compare the same signal against the \
                    same constant; opt_merge folds them"
                   (List.length ids)
                   Fmt.(list ~sep:(any ", ") int)
                   (first :: rest)))
         | _ -> ())

let is_clock_name name =
  let lower = String.lowercase_ascii name in
  let has_prefix p =
    String.length lower >= String.length p
    && String.sub lower 0 (String.length p) = p
  in
  has_prefix "clk" || has_prefix "clock"

let check_floating_inputs emit (c : Circuit.t) =
  let index = Index.build c in
  let exported =
    List.fold_left
      (fun acc (w : Circuit.wire) -> w.Circuit.wire_id :: acc)
      [] (Circuit.outputs c)
  in
  List.iter
    (fun (w : Circuit.wire) ->
      let read =
        List.exists
          (fun b -> Index.readers index b <> [])
          (Array.to_list (Circuit.sig_of_wire w))
      in
      if
        (not read)
        && (not (List.mem w.Circuit.wire_id exported))
        && not (is_clock_name w.Circuit.wire_name)
      then
        emit
          (Diag.warning ~rule:"NL004"
             (Fmt.str "input '%s' drives nothing" w.Circuit.wire_name)))
    (Circuit.inputs c)

(* --- semantic rules: NL010..NL013 --- *)

(* The unseeded fixpoint proves facts that hold for EVERY input valuation,
   so each diagnostic is a theorem about the design, not a heuristic.  A
   cyclic netlist gets no semantic diagnostics — NL009 already fired for
   it and the fixpoint needs a topological order. *)
let check_semantic emit (c : Circuit.t) =
  match Topo.sort c with
  | exception Topo.Combinational_cycle _ -> ()
  | cells -> (
    match Analysis.Fixpoint.run c cells with
    | Analysis.Fixpoint.Contradiction -> ()
    | Analysis.Fixpoint.Converged o ->
      List.iter
        (fun fact ->
          let rule = Analysis.Facts.fact_rule fact in
          let cell = Analysis.Facts.fact_cell fact in
          let msg = Analysis.Facts.fact_message fact in
          let severity =
            match fact with
            | Analysis.Facts.Foldable _ -> Diag.Info
            | Analysis.Facts.Comparison_const _
            | Analysis.Facts.Dead_branch _ | Analysis.Facts.Always_wraps _ ->
              Diag.Warning
          in
          emit (Diag.make ~cell ~rule ~severity msg))
        (Analysis.Facts.derive c o.Analysis.Fixpoint.state))

let structural (c : Circuit.t) : Diag.t list =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  check_const_selects emit c;
  check_dead_branches emit c;
  check_duplicate_eq emit c;
  check_floating_inputs emit c;
  check_semantic emit c;
  Diag.sort (List.rev !diags)

let check (c : Circuit.t) : Diag.t list =
  Diag.sort (of_validate (Validate.check c) @ structural c)
