(* Source positions and spans for the Verilog frontend.

   A [pos] is a byte offset decorated with its 1-based line and column; a
   [span] covers a source region from the start of its first token to the
   start of its last.  Spans are attached to declarations, statements and
   module items during parsing so that every later diagnostic — lint
   findings, elaboration failures — can point back at the source line. *)

type pos = { offset : int; line : int; col : int }

type span = { s : pos; e : pos }

let dummy_pos = { offset = -1; line = 0; col = 0 }
let dummy = { s = dummy_pos; e = dummy_pos }
let is_dummy sp = sp.s.offset < 0

let span s e = { s; e }
let of_pos p = { s = p; e = p }

let join a b =
  if is_dummy a then b
  else if is_dummy b then a
  else
    {
      s = (if a.s.offset <= b.s.offset then a.s else b.s);
      e = (if a.e.offset >= b.e.offset then a.e else b.e);
    }

(* Offset of the first character of each line, ascending. *)
type line_map = int array

let line_map (src : string) : line_map =
  let starts = ref [ 0 ] in
  String.iteri (fun i ch -> if ch = '\n' then starts := (i + 1) :: !starts) src;
  Array.of_list (List.rev !starts)

let pos_of_offset (lm : line_map) (off : int) : pos =
  (* greatest line start <= off *)
  let lo = ref 0 and hi = ref (Array.length lm - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if lm.(mid) <= off then lo := mid else hi := mid - 1
  done;
  { offset = off; line = !lo + 1; col = off - lm.(!lo) + 1 }

let pp_pos ppf p =
  if p.offset < 0 then Fmt.string ppf "<unknown>"
  else Fmt.pf ppf "line %d, column %d" p.line p.col

let pp ppf sp =
  if is_dummy sp then Fmt.string ppf "<unknown>"
  else if sp.s.line = sp.e.line && sp.s.col = sp.e.col then
    Fmt.pf ppf "%d:%d" sp.s.line sp.s.col
  else Fmt.pf ppf "%d:%d-%d:%d" sp.s.line sp.s.col sp.e.line sp.e.col

let to_string sp = Fmt.str "%a" pp sp
