(** Tuning knobs for the smaRTLy passes (paper Section II thresholds). *)

type t = {
  distance_k : int;
      (** gates within this distance of a control port join the sub-graph *)
  sim_input_threshold : int;
      (** at most this many free inputs: exhaustive simulation *)
  sat_input_threshold : int;
      (** at most this many inputs: SAT query; above: forgo *)
  sat_conflict_budget : int;  (** conflict cap per SAT query *)
  max_subgraph_cells : int;  (** forgo queries on larger sub-graphs *)
  enable_inference_rules : bool;  (** Table I propagation *)
  enable_analysis : bool;
      (** abstract-interpretation rung zero: the known-bits + interval
          fixpoint answers [Forced]/[Unreachable] before the memo/sim/SAT
          rungs when it pins the target; falls through on top *)
  enable_pruning : bool;  (** Theorem II.1 sub-graph pruning *)
  enable_sat : bool;  (** the SAT-based redundancy elimination pass *)
  enable_sat_session : bool;
      (** persistent incremental solver ({!Cdcl.Session}) shared by all
          queries of a run; [false] = fresh solver per query *)
  enable_sat_memo : bool;
      (** cross-query verdict cache ({!Memo}) consulted before the
          sim/SAT rungs *)
  enable_rebuild : bool;  (** the muxtree restructuring pass *)
  rebuild_single_ctrl : bool;
      (** enforce the paper's SingleCtrl condition; [false] extends the
          rebuild to chains over several independent condition signals *)
  pass_budget_ms : int option;
      (** wall-time budget per driver pass ({!Budget}); exceeding it
          truncates the pass and skips it on later iterations — the flow
          still completes, with partial optimization *)
  pass_alloc_budget_mw : float option;
      (** allocation budget per pass, in millions of words *)
  jobs : int option;
      (** [Some n]: shard independent muxtrees across an [n]-worker
          domain pool ({!Sat_elim.run_tasks}); [None] (default) is the
          legacy in-place sequential walk *)
  portfolio : bool;
      (** race solver configurations on ring-flagged hard queries;
          opt-in because it trades solver-telemetry determinism for
          wall time *)
}

val default : t

val sat_only : t
(** Restructuring disabled (Table III's "SAT" column). *)

val rebuild_only : t
(** SAT elimination disabled (Table III's "Rebuild" column). *)

val fingerprint : t -> string
(** Stable serialization of every verdict-affecting knob, for composite
    cache keys ({!Replay}).  Two configs with equal fingerprints drive
    the task path identically; [jobs] is excluded because the task
    path's output is schedule-invariant by contract. *)
