(* AST-level lint rules.

   HDL001  case without default that does not cover every subject value
   HDL002  unreachable case item (warning) / overlapping casez item (info)
   HDL003  name driven from more than one always block / continuous assign
   HDL004  assignment truncates significant bits
   HDL005  always @* reads a reg before every path has assigned it

   Everything works on the located AST so diagnostics carry source spans;
   [Loc.dummy] spans (programmatic ASTs) simply yield span-less
   diagnostics. *)

open Hdl
module SS = Set.Make (String)
module SM = Map.Make (String)

let coverage_limit = 16

let span_opt (sp : Loc.span) = if Loc.is_dummy sp then None else Some sp

(* --- declared widths --- *)

let widths_of (m : Ast.module_) : int SM.t =
  List.fold_left
    (fun acc item ->
      match item with
      | Ast.I_decl d -> SM.add d.Ast.dname (Ast.decl_width d) acc
      | Ast.I_assign _ | Ast.I_always _ | Ast.I_always_ff _ -> acc)
    SM.empty m.Ast.items

(* --- expression widths ---

   [expr_width] mirrors the elaborator: binary operands extend to the max
   operand width, comparisons and logic ops produce one bit, concat sums.
   [eff_width] is the width needed for the *significant* bits, used by the
   truncation rule: constants shrink to their highest set bit (so unsized
   decimal literals, parsed as 32-bit constants, do not warn), and
   wraparound arithmetic (add/sub) deliberately does not count its carry
   bit — `count = count + 1` is idiomatic, not a truncation bug. *)

let rec expr_width widths (e : Ast.expr) : int =
  match e with
  | Ast.E_ident n -> ( match SM.find_opt n widths with Some w -> w | None -> 1)
  | Ast.E_const c -> c.Ast.cwidth
  | Ast.E_select _ -> 1
  | Ast.E_range (_, msb, lsb) -> (msb - lsb + 1) |> max 1
  | Ast.E_concat parts ->
    List.fold_left (fun acc p -> acc + expr_width widths p) 0 parts
  | Ast.E_unary (Ast.U_not, a) -> expr_width widths a
  | Ast.E_unary ((Ast.U_lnot | Ast.U_rand | Ast.U_ror | Ast.U_rxor), _) -> 1
  | Ast.E_binary ((Ast.B_eq | Ast.B_ne | Ast.B_land | Ast.B_lor), _, _) -> 1
  | Ast.E_binary (_, a, b) -> max (expr_width widths a) (expr_width widths b)
  | Ast.E_ternary (_, t, e) -> max (expr_width widths t) (expr_width widths e)

let const_eff_width (c : Ast.constant) : int =
  let best = ref 0 in
  List.iteri (fun i b -> if b <> Ast.B0 then best := i + 1) c.Ast.cbits;
  max 1 !best

let rec eff_width widths (e : Ast.expr) : int =
  match e with
  | Ast.E_const c -> const_eff_width c
  | Ast.E_ident _ | Ast.E_select _ | Ast.E_range _ -> expr_width widths e
  | Ast.E_concat parts -> (
    (* MSB part first: only the leading part's significant bits can shrink
       the total; lower parts occupy their full positional width *)
    match parts with
    | [] -> 0
    | msb :: rest ->
      eff_width widths msb
      + List.fold_left (fun acc p -> acc + expr_width widths p) 0 rest)
  | Ast.E_unary (Ast.U_not, a) ->
    (* ~ turns high zeros into ones: full structural width *)
    expr_width widths a
  | Ast.E_unary ((Ast.U_lnot | Ast.U_rand | Ast.U_ror | Ast.U_rxor), _) -> 1
  | Ast.E_binary ((Ast.B_eq | Ast.B_ne | Ast.B_land | Ast.B_lor), _, _) -> 1
  | Ast.E_binary (Ast.B_and, a, b) ->
    (* masking: a 1 bit needs a 1 in both operands *)
    min (eff_width widths a) (eff_width widths b)
  | Ast.E_binary ((Ast.B_or | Ast.B_xor), a, b) ->
    max (eff_width widths a) (eff_width widths b)
  | Ast.E_binary (Ast.B_xnor, a, b) ->
    (* xnor of two zero bits is one: full structural width *)
    max (expr_width widths a) (expr_width widths b)
  | Ast.E_binary ((Ast.B_add | Ast.B_sub), a, b) ->
    (* wraparound is idiomatic; flag only operand-driven growth *)
    max (eff_width widths a) (eff_width widths b)
  | Ast.E_ternary (_, t, e) -> max (eff_width widths t) (eff_width widths e)

(* --- reads / assigns of statement trees --- *)

let rec expr_reads acc (e : Ast.expr) : SS.t =
  match e with
  | Ast.E_ident n | Ast.E_select (n, _) | Ast.E_range (n, _, _) -> SS.add n acc
  | Ast.E_const _ -> acc
  | Ast.E_concat es -> List.fold_left expr_reads acc es
  | Ast.E_unary (_, a) -> expr_reads acc a
  | Ast.E_binary (_, a, b) -> expr_reads (expr_reads acc a) b
  | Ast.E_ternary (a, b, c) -> expr_reads (expr_reads (expr_reads acc a) b) c

let rec stmts_assigned stmts =
  List.fold_left (fun acc s -> SS.union acc (stmt_assigned s)) SS.empty stmts

and stmt_assigned (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.S_assign (n, _) -> SS.singleton n
  | Ast.S_if (_, t, e) -> SS.union (stmts_assigned t) (stmts_assigned e)
  | Ast.S_case { Ast.items; default; _ } ->
    let base =
      match default with Some b -> stmts_assigned b | None -> SS.empty
    in
    List.fold_left
      (fun acc it -> SS.union acc (stmts_assigned it.Ast.body))
      base items

(* --- HDL003: multiple drivers --- *)

let check_drivers emit (m : Ast.module_) =
  (* each item drives a set of names; a name driven by two items clashes *)
  let seen : (string, Loc.span) Hashtbl.t = Hashtbl.create 16 in
  let drive what sp name =
    match Hashtbl.find_opt seen name with
    | None -> Hashtbl.replace seen name sp
    | Some _ ->
      emit
        (Diag.error ?span:(span_opt sp) ~rule:"HDL003"
           (Fmt.str "'%s' is also driven by this %s; a name may have one \
                     driving assign or always block"
              name what))
  in
  List.iter
    (fun item ->
      match item with
      | Ast.I_decl _ -> ()
      | Ast.I_assign { lhs; aloc; _ } -> drive "continuous assign" aloc lhs
      | Ast.I_always { body; aloc } ->
        SS.iter (drive "always block" aloc) (stmts_assigned body)
      | Ast.I_always_ff { body; aloc; _ } ->
        SS.iter (drive "always block" aloc) (stmts_assigned body))
    m.Ast.items

(* --- HDL004: width truncation --- *)

let check_assign_width emit widths sp name rhs =
  match SM.find_opt name widths with
  | None -> () (* undeclared: the elaborator reports it *)
  | Some lw ->
    let rw = eff_width widths rhs in
    if rw > lw then
      emit
        (Diag.warning ?span:sp ~rule:"HDL004"
           (Fmt.str
              "assignment to '%s' truncates a %d-bit value to %d bits" name
              rw lw))

(* --- HDL001 / HDL002: case coverage and reachability ---

   Pattern semantics copied from the elaborator's [pattern_select]: within
   the subject width, 0/1 bits constrain, z is a wildcard; bits of a
   narrow pattern beyond its own width are unconstrained; a 1 bit beyond
   the subject width makes the pattern unmatchable. *)

let pat_matches ~w (p : Ast.constant) (v : int) : bool =
  let rec go i = function
    | [] -> true
    | b :: rest ->
      (if i >= w then b <> Ast.B1
       else
         match b with
         | Ast.B0 -> (v lsr i) land 1 = 0
         | Ast.B1 -> (v lsr i) land 1 = 1
         | Ast.Bz -> true)
      && go (i + 1) rest
  in
  go 0 p.Ast.cbits

let pat_unmatchable ~w (p : Ast.constant) : bool =
  List.exists (fun (i, b) -> i >= w && b = Ast.B1)
    (List.mapi (fun i b -> (i, b)) p.Ast.cbits)

(* [comb] is true inside always @* (where an uncovered case feeds a reg
   back to itself); [assigned] is the must-assign set on entry, so the
   idiomatic pre-assignment (`y = 0; case (s) ... endcase`) does not
   warn even without a default arm. *)
let check_case emit widths ~comb assigned case_sp (cs : Ast.case_stmt) =
  let w = expr_width widths cs.Ast.subject in
  let latched =
    SS.diff
      (List.fold_left
         (fun acc (it : Ast.case_item) ->
           SS.union acc (stmts_assigned it.Ast.body))
         SS.empty cs.Ast.items)
      assigned
  in
  if w <= coverage_limit && w > 0 then begin
    let n = 1 lsl w in
    let covered = Bytes.make ((n + 7) / 8) '\000' in
    let is_covered v =
      Char.code (Bytes.get covered (v lsr 3)) land (1 lsl (v land 7)) <> 0
    in
    let set_covered v =
      Bytes.set covered (v lsr 3)
        (Char.chr (Char.code (Bytes.get covered (v lsr 3)) lor (1 lsl (v land 7))))
    in
    let remaining = ref n in
    List.iter
      (fun (it : Ast.case_item) ->
        let fresh = ref false and overlap = ref false in
        for v = 0 to n - 1 do
          if List.exists (fun p -> pat_matches ~w p v) it.Ast.pats then
            if is_covered v then overlap := true
            else begin
              fresh := true;
              set_covered v;
              decr remaining
            end
        done;
        let isp = span_opt it.Ast.iloc in
        if not !fresh then
          emit
            (Diag.warning ?span:isp ~rule:"HDL002"
               (if !overlap then
                  "case item is unreachable: every value it matches is \
                   covered by earlier items"
                else "case item matches no value of the subject"))
        else if !overlap && cs.Ast.is_casez then
          emit
            (Diag.info ?span:isp ~rule:"HDL002"
               "casez item overlaps earlier items; priority order decides"))
      cs.Ast.items;
    if comb && cs.Ast.default = None && !remaining > 0 && not (SS.is_empty latched)
    then begin
      (* find one uncovered value for the message *)
      let example = ref 0 in
      (try
         for v = 0 to n - 1 do
           if not (is_covered v) then begin
             example := v;
             raise Exit
           end
         done
       with Exit -> ());
      emit
        (Diag.warning ?span:case_sp ~rule:"HDL001"
           (Fmt.str
              "case without default leaves %d of %d subject values \
               uncovered (e.g. %d); '%s' feeds back its previous value"
              !remaining n !example
              (SS.min_elt latched)))
    end
  end
  else begin
    (* too wide to enumerate: only flag textual duplicates and patterns
       that can never match *)
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (it : Ast.case_item) ->
        let isp = span_opt it.Ast.iloc in
        if List.exists (pat_unmatchable ~w) it.Ast.pats then
          emit
            (Diag.warning ?span:isp ~rule:"HDL002"
               "case item matches no value of the subject")
        else if
          it.Ast.pats <> []
          && List.for_all (fun p -> Hashtbl.mem seen p) it.Ast.pats
        then
          emit
            (Diag.warning ?span:isp ~rule:"HDL002"
               "case item repeats earlier patterns and is unreachable");
        List.iter (fun p -> Hashtbl.replace seen p ()) it.Ast.pats)
      cs.Ast.items
  end

(* --- statement walker for HDL001/2/4 (all blocks) ---

   Threads the must-assign set (names assigned on every path so far) so
   the case rule can distinguish a latch-inferring case from one whose
   targets were pre-assigned. *)

let rec walk_stmts emit widths ~comb assigned stmts =
  List.fold_left (walk_stmt emit widths ~comb) assigned stmts

and walk_stmt emit widths ~comb assigned (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.S_assign (n, e) ->
    check_assign_width emit widths (span_opt s.Ast.sloc) n e;
    SS.add n assigned
  | Ast.S_if (_, t, e) ->
    let at = walk_stmts emit widths ~comb assigned t in
    let ae = walk_stmts emit widths ~comb assigned e in
    SS.inter at ae
  | Ast.S_case cs -> (
    check_case emit widths ~comb assigned (span_opt s.Ast.sloc) cs;
    let results =
      List.map
        (fun (it : Ast.case_item) ->
          walk_stmts emit widths ~comb assigned it.Ast.body)
        cs.Ast.items
      @
      match cs.Ast.default with
      | Some b -> [ walk_stmts emit widths ~comb assigned b ]
      | None -> [ assigned ]
    in
    match results with
    | [] -> assigned
    | first :: rest -> List.fold_left SS.inter first rest)

(* --- HDL005: read before write in always @* ---

   Must-assign dataflow: walk the block tracking the set of names assigned
   on *every* path so far; reading a block-assigned name outside that set
   reads last iteration's value (combinational feedback).  A case without
   a default contributes an empty fall-through path, so it guarantees
   nothing beyond the incoming set. *)

let check_read_before_write emit body =
  let block_assigned = stmts_assigned body in
  let reported = ref SS.empty in
  let check_reads assigned sloc e =
    SS.iter
      (fun n ->
        if
          SS.mem n block_assigned
          && (not (SS.mem n assigned))
          && not (SS.mem n !reported)
        then begin
          reported := SS.add n !reported;
          emit
            (Diag.warning ?span:(span_opt sloc) ~rule:"HDL005"
               (Fmt.str
                  "'%s' is read before every path through this always @* \
                   block assigns it"
                  n))
        end)
      (expr_reads SS.empty e)
  in
  let rec walk assigned stmts = List.fold_left walk_stmt assigned stmts
  and walk_stmt assigned (s : Ast.stmt) =
    match s.Ast.sdesc with
    | Ast.S_assign (n, e) ->
      check_reads assigned s.Ast.sloc e;
      SS.add n assigned
    | Ast.S_if (c, t, e) ->
      check_reads assigned s.Ast.sloc c;
      SS.inter (walk assigned t) (walk assigned e)
    | Ast.S_case { Ast.subject; items; default; _ } -> (
      check_reads assigned s.Ast.sloc subject;
      let results =
        List.map (fun it -> walk assigned it.Ast.body) items
        @
        match default with
        | Some b -> [ walk assigned b ]
        | None -> [ assigned ]
      in
      match results with
      | [] -> assigned
      | first :: rest -> List.fold_left SS.inter first rest)
  in
  ignore (walk SS.empty body)

(* --- entry point --- *)

let check (m : Ast.module_) : Diag.t list =
  let widths = widths_of m in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  check_drivers emit m;
  List.iter
    (fun item ->
      match item with
      | Ast.I_decl _ -> ()
      | Ast.I_assign { lhs; rhs; aloc } ->
        check_assign_width emit widths (span_opt aloc) lhs rhs
      | Ast.I_always { body; _ } ->
        ignore (walk_stmts emit widths ~comb:true SS.empty body);
        check_read_before_write emit body
      | Ast.I_always_ff { body; _ } ->
        (* holding state through an uncovered case is idiomatic in a
           clocked block, so HDL001 does not apply there *)
        ignore (walk_stmts emit widths ~comb:false SS.empty body))
    m.Ast.items;
  Diag.sort (List.rev !diags)
