(** Cell-level facts proved by the fixpoint — the shared backend of the
    semantic lint rules (NL010..NL013) and of [smartly analyze]'s
    "facts" report section.

    Cells whose inputs are all syntactic constants are skipped: those
    belong to opt_expr / NL001, not to the value analysis. *)

open Netlist

type fact =
  | Comparison_const of { cell : int; op : string; value : bool }
      (** NL010: eq/ne/logic comparison with a provably constant result *)
  | Dead_branch of { cell : int; branch : string }
      (** NL011: a mux/pmux branch no select valuation can choose *)
  | Foldable of { cell : int; width : int; value : int option }
      (** NL012: every output bit definite; [value] when it fits an int *)
  | Always_wraps of { cell : int; op : string }
      (** NL013: add/sub that provably wraps on every input *)

val fact_rule : fact -> string
(** The lint rule id the fact backs (["NL010"]..["NL013"]). *)

val fact_cell : fact -> int
val fact_message : fact -> string
val fact_to_json : fact -> Obs.Json.t

val derive : Circuit.t -> Absval.state -> fact list
(** Facts in ascending cell order. *)
