(** ASCII AIGER (.aag) interchange, combinational subset (no latches —
    {!Aigmap.map} already cuts flip-flops into pseudo-ports).
    Symbol tables carry the PI/PO names both ways. *)

exception Format_error of string

val write : Aig.t -> string
(** Only the cones of the primary outputs are emitted, densely renumbered
    in AIGER convention (inputs first). *)

val read : string -> Aig.t
(** @raise Format_error on malformed input. *)
