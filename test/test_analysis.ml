(* Differential soundness of the value-analysis fixpoint.

   The abstract state must over-approximate every concrete execution:
   for random mixed-width circuits and random concrete inputs, every
   simulated bit must be contained in its ternary abstract value and
   every simulated vector must lie inside its interval — unseeded, and
   seeded with facts observed in a real execution (so a witness exists
   by construction and Contradiction is unsound).  Derived cell facts
   (the NL010..NL013 backend) are checked against brute force over all
   input assignments, and the engine's rung zero is checked end to end:
   the optimized netlist must be identical with the rung on and off. *)

open Netlist

let check_bool = Alcotest.(check bool)

(* --- random mixed-width circuits --- *)

let n_bits1 = 4 (* four 1-bit inputs, assignment bits 0..3 *)
let n_ins3 = 2 (* two 3-bit inputs, assignment bits 4..9 *)
let total_input_bits = n_bits1 + (3 * n_ins3)

(* Random circuit over the fixed input set: 1-bit gate soup plus
   add/sub/eq/pmux islands over 3-bit vectors, with occasional constant
   operands so the interval domain has something to narrow. *)
let gen_circuit seed =
  let c = Circuit.create "rand" in
  let ins1 =
    List.init n_bits1 (fun i ->
        Circuit.add_input c (Printf.sprintf "i%d" i) ~width:1)
  in
  let ins3 =
    List.init n_ins3 (fun i ->
        Circuit.add_input c (Printf.sprintf "v%d" i) ~width:3)
  in
  let pool1 = ref (List.map Circuit.bit_of_wire ins1) in
  let pool3 = ref (List.map Circuit.sig_of_wire ins3) in
  let st = ref ((seed * 7) + 3) in
  let next () =
    st := (!st * 1103515245) + 12345;
    (!st lsr 16) land 0xFFFF
  in
  let pick1 () = List.nth !pool1 (next () mod List.length !pool1) in
  let pick3 () =
    if next () mod 4 = 0 then Bits.of_int ~width:3 (next () mod 8)
    else List.nth !pool3 (next () mod List.length !pool3)
  in
  let pick3_wire () = List.nth !pool3 (next () mod List.length !pool3) in
  let n_gates = 12 + (seed mod 8) in
  for _ = 1 to n_gates do
    match next () mod 12 with
    | 0 -> pool1 := Circuit.mk_and c (pick1 ()) (pick1 ()) :: !pool1
    | 1 -> pool1 := Circuit.mk_or c (pick1 ()) (pick1 ()) :: !pool1
    | 2 -> pool1 := Circuit.mk_xor c (pick1 ()) (pick1 ()) :: !pool1
    | 3 -> pool1 := Circuit.mk_not c (pick1 ()) :: !pool1
    | 4 ->
      pool3 := Circuit.mk_binary c Cell.Add (pick3 ()) (pick3 ()) :: !pool3
    | 5 ->
      pool3 := Circuit.mk_binary c Cell.Sub (pick3 ()) (pick3 ()) :: !pool3
    | 6 ->
      let op =
        match next () mod 3 with
        | 0 -> Cell.And
        | 1 -> Cell.Or
        | _ -> Cell.Xor
      in
      pool3 := Circuit.mk_binary c op (pick3 ()) (pick3 ()) :: !pool3
    | 7 ->
      let op = if next () mod 2 = 0 then Cell.Eq else Cell.Ne in
      pool1 := (Circuit.mk_binary c op (pick3 ()) (pick3 ())).(0) :: !pool1
    | 8 ->
      let op =
        match next () mod 3 with
        | 0 -> Cell.Reduce_or
        | 1 -> Cell.Reduce_and
        | _ -> Cell.Reduce_xor
      in
      pool1 := (Circuit.mk_unary c op (pick3 ())).(0) :: !pool1
    | 9 ->
      pool3 :=
        Circuit.mk_mux c ~a:(pick3_wire ()) ~b:(pick3_wire ()) ~s:(pick1 ())
        :: !pool3
    | 10 ->
      (* pmux, two branches: b is their concatenation, LSB branch first *)
      let b = Bits.concat [ pick3_wire (); pick3_wire () ] in
      pool3 :=
        Circuit.mk_pmux c ~a:(pick3_wire ()) ~b ~s:[| pick1 (); pick1 () |]
        :: !pool3
    | _ ->
      pool1 :=
        (Circuit.mk_mux c ~a:[| pick1 () |] ~b:[| pick1 () |] ~s:(pick1 ())).(0)
        :: !pool1
  done;
  (c, ins1, ins3, !pool1)

(* evaluate all bits under one packed input assignment *)
let eval_all c ins1 ins3 assignment =
  let bit_of i = (assignment lsr i) land 1 = 1 in
  let value_of i = if bit_of i then Rtl_sim.Value.V1 else Rtl_sim.Value.V0 in
  let inputs =
    List.mapi (fun i w -> (Circuit.bit_of_wire w, value_of i)) ins1
    @ List.concat
        (List.mapi
           (fun j w ->
             let s = Circuit.sig_of_wire w in
             List.init 3 (fun k -> (s.(k), value_of (n_bits1 + (j * 3) + k))))
           ins3)
  in
  Rtl_sim.Eval.run c ~inputs ()

let bit_value env b =
  match Rtl_sim.Eval.read env b with
  | Rtl_sim.Value.V1 -> true
  | Rtl_sim.Value.V0 -> false
  | Rtl_sim.Value.Vx -> false

(* every simulated bit inside its tern, every vector inside its interval *)
let containment_ok (c : Circuit.t) (st : Analysis.Absval.state) env =
  let ok = ref true in
  Hashtbl.iter
    (fun _ (w : Circuit.wire) ->
      let s = Circuit.sig_of_wire w in
      Array.iter
        (fun b ->
          match (Rtl_sim.Eval.read env b, Analysis.Absval.read st b) with
          | Rtl_sim.Value.V1, Analysis.Absval.Zero
          | Rtl_sim.Value.V0, Analysis.Absval.One -> ok := false
          | _ -> ())
        s;
      match Analysis.Absval.get_itv st s with
      | Some itv -> (
        match Rtl_sim.Eval.read_int env s with
        | Some v ->
          if v < itv.Analysis.Absval.lo || v > itv.Analysis.Absval.hi then
            ok := false
        | None -> ())
      | None -> ())
    c.Circuit.wires;
  !ok

let fixpoint c ?seeds () =
  Analysis.Fixpoint.run ?seeds c (Topo.sort c)

let prop_unseeded_containment =
  QCheck.Test.make ~count:300 ~name:"unseeded abstract values contain sim"
    QCheck.(pair (int_bound 1000000) (int_bound 1023))
    (fun (seed, assignment) ->
      let c, ins1, ins3, _ = gen_circuit seed in
      match fixpoint c () with
      | Analysis.Fixpoint.Contradiction ->
        QCheck.Test.fail_report "contradiction with no seeds"
      | Analysis.Fixpoint.Converged o ->
        let env = eval_all c ins1 ins3 assignment in
        containment_ok c o.Analysis.Fixpoint.state env)

let pick_knowns st pool env k =
  let next () =
    st := (!st * 48271) mod 0x7FFFFFFF;
    !st
  in
  List.init k (fun _ ->
      let b = List.nth pool (next () mod List.length pool) in
      (b, bit_value env b))

let prop_seeded_containment =
  QCheck.Test.make ~count:150
    ~name:"seeded abstract values contain every compatible execution"
    QCheck.(pair (int_bound 1000000) (int_range 1 3))
    (fun (seed, k) ->
      let c, ins1, ins3, pool1 = gen_circuit seed in
      (* seed the fixpoint with facts observed in a real execution, so a
         witness exists and Contradiction would be unsound *)
      let witness = seed land ((1 lsl total_input_bits) - 1) in
      let env_w = eval_all c ins1 ins3 witness in
      let st = ref (seed + 17) in
      let seeds = pick_knowns st pool1 env_w k in
      match fixpoint c ~seeds () with
      | Analysis.Fixpoint.Contradiction ->
        QCheck.Test.fail_report "contradiction on satisfiable seeds"
      | Analysis.Fixpoint.Converged o ->
        let ok = ref true in
        for a = 0 to (1 lsl total_input_bits) - 1 do
          let env = eval_all c ins1 ins3 a in
          let compatible =
            List.for_all (fun (b, v) -> bit_value env b = v) seeds
          in
          if compatible && not (containment_ok c o.Analysis.Fixpoint.state env)
          then ok := false
        done;
        !ok)

(* --- derived facts against brute force --- *)

let sig_value env s =
  match Rtl_sim.Eval.read_int env s with
  | Some v -> v
  | None -> Alcotest.fail "x bit in a fully-driven circuit"

(* does pmux branch [i] win under this environment? lowest set index *)
let pmux_branch_wins env (s : Bits.sigspec) i =
  bit_value env s.(i)
  && not (Array.exists (fun b -> bit_value env b) (Array.sub s 0 i))

let fact_holds c env fact =
  let cell = Circuit.cell c (Analysis.Facts.fact_cell fact) in
  match fact with
  | Analysis.Facts.Comparison_const { value; _ } ->
    bit_value env (Cell.output cell).(0) = value
  | Analysis.Facts.Foldable { value; _ } -> (
    match value with
    | Some v -> sig_value env (Cell.output cell) = v
    | None -> true)
  | Analysis.Facts.Always_wraps { op; _ } -> (
    match cell with
    | Cell.Binary { a; b; y; _ } ->
      let va = sig_value env a and vb = sig_value env b in
      if op = "$add" then va + vb >= 1 lsl Array.length y else va < vb
    | _ -> true)
  | Analysis.Facts.Dead_branch { branch; _ } -> (
    match cell with
    | Cell.Mux { s; _ } ->
      (* "a branch dead" claims the select is always one, and vice versa *)
      let sel = bit_value env s in
      let claims_a_dead =
        String.length branch >= 5 && String.sub branch 4 1 = "a"
      in
      if claims_a_dead then sel else not sel
    | Cell.Pmux { s; _ } ->
      if branch = "the pmux default branch" then
        Array.exists (fun b -> bit_value env b) s
      else
        let i =
          int_of_string
            (String.sub branch 12 (String.length branch - 12))
        in
        not (pmux_branch_wins env s i)
    | _ -> true)

let prop_facts_sound =
  QCheck.Test.make ~count:100 ~name:"derived facts hold under brute force"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let c, ins1, ins3, _ = gen_circuit seed in
      match fixpoint c () with
      | Analysis.Fixpoint.Contradiction ->
        QCheck.Test.fail_report "contradiction with no seeds"
      | Analysis.Fixpoint.Converged o ->
        let facts = Analysis.Facts.derive c o.Analysis.Fixpoint.state in
        let ok = ref true in
        for a = 0 to (1 lsl total_input_bits) - 1 do
          let env = eval_all c ins1 ins3 a in
          List.iter
            (fun f -> if not (fact_holds c env f) then ok := false)
            facts
        done;
        !ok)

(* --- end-to-end: rung zero must never change the result --- *)

let canonical (c : Circuit.t) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun id ->
      Buffer.add_string buf (Fmt.str "%d %a\n" id Cell.pp (Circuit.cell c id)))
    (Circuit.cell_ids c);
  Buffer.contents buf

(* The rung sits before memo/sim/SAT and only answers queries those rungs
   would answer identically, so the optimized netlist must be the same
   cell for cell — with the per-pass invariant checker watching both
   runs, like `opt --check-invariants`. *)
let test_e2e_netlist_identity () =
  let run ~analysis ~memo =
    let c = Workloads.Profiles.circuit Workloads.Profiles.mux_chain in
    let t = Lint.Invariant.create c in
    let cfg =
      {
        Smartly.Config.default with
        Smartly.Config.enable_analysis = analysis;
        enable_sat_memo = memo;
      }
    in
    Smartly.Memo.reset ();
    ignore
      (Smartly.Driver.smartly ~cfg
         ~after_pass:(fun name c' -> Lint.Invariant.after_pass t name c')
         c);
    (match Lint.Invariant.failure t with
    | None -> ()
    | Some f ->
      Alcotest.fail (Fmt.str "invariant: %a" Lint.Invariant.pp_failure f));
    canonical c
  in
  let all_on = run ~analysis:true ~memo:true in
  let all_off = run ~analysis:false ~memo:false in
  check_bool "netlists identical with rung zero on and off" true
    (all_on = all_off)

let () =
  Alcotest.run "analysis"
    [
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_unseeded_containment; prop_seeded_containment;
            prop_facts_sound;
          ] );
      ( "e2e",
        [
          Alcotest.test_case "netlist identity, invariants on" `Slow
            test_e2e_netlist_identity;
        ] );
    ]
