(** Bounded sub-graph extraction for the redundancy-elimination queries
    (paper Section II).

    Control ports contribute their distance-k fanin cones; sequential cells
    are excluded so the sub-graph stays a DAG.  {!prune} applies Theorem
    II.1: signals can only affect each other when their fanin cones share a
    source, so gates in groups unrelated to any known signal (or the
    target) are dismissed. *)

open Netlist

type t

val create : Circuit.t -> Index.t -> t

val add_cone : t -> k:int -> Bits.bit -> unit
(** Add the combinational gates within distance [k] above [bit]. *)

val size : t -> int
(** Accumulated cell count. *)

val cell_ids : t -> int list

(** A pruned, topologically ordered view ready for querying. *)
type view = {
  cells : int list;  (** drivers first *)
  sources : Bits.bit list;  (** bits read but not driven inside *)
  kept : int;
  dropped : int;  (** cells dismissed by the Theorem II.1 grouping *)
}

val prune : t -> relevant:Bits.bit list -> view
(** Keep only the gates grouped (by shared fanin sources) with at least one
    relevant bit. *)

val full_view : t -> view
(** No pruning (for the ablation). *)
