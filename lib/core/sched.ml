(* Task-scoped state management for the parallel scheduler.

   One optimization task (a muxtree, a serve job) touches five pieces of
   ambient state: the Obs metrics/bus/provenance surfaces, the SAT query
   log, the verdict memo, and the budget watchdog.  This module bundles
   their capture protocols into one open/close/merge triple so the
   callers (Sat_elim's parallel path, Serve's batch loop) cannot get the
   ordering wrong:

   - [env] is taken once on the coordinating domain, freezing what the
     tasks inherit: the observability spec, the armed budget, and the
     memo store to read through.
   - [open_task]/[close_task] run on the executing domain — a pool
     worker, or the coordinator itself when jobs run inline — and
     displace/restore that domain's state around the task, so every
     task sees exactly the same ambient state regardless of schedule.
   - [merge] runs on the coordinator, in task order.  Task-local SAT
     query ids are renumbered onto the global sequence and the same
     offset is applied to the task's provenance and bus references, so
     the merged telemetry is byte-identical to a sequential run's. *)

type env = {
  e_spec : Obs.Scope.spec;
  e_budget : Budget.inherited option;
  e_memo_base : Memo.t option; (* None when the memo rung is disabled *)
}

let env ?(cfg = Config.default) () =
  {
    e_spec = Obs.Scope.spec ();
    e_budget = Budget.snapshot ();
    e_memo_base =
      (if cfg.Config.enable_sat_memo then Some (Memo.current ()) else None);
  }

type open_scope = {
  os_scope : Obs.Scope.handle;
  os_satlog_prev : Engine.Sat_log.saved;
  os_budget_prev : Budget.saved;
  os_memo_prev : Memo.saved;
}

let open_task (e : env) : open_scope =
  let os_memo_prev = Memo.save () in
  (match e.e_memo_base with
  | Some base -> Memo.install_overlay ~base ()
  | None -> Memo.install_overlay ~capacity:0 ());
  let os_budget_prev = Budget.save () in
  Budget.adopt e.e_budget;
  let os_satlog_prev = Engine.Sat_log.save_fresh () in
  let os_scope = Obs.Scope.install e.e_spec in
  { os_scope; os_satlog_prev; os_budget_prev; os_memo_prev }

type capture = {
  c_scope : Obs.Scope.capture;
  c_satlog : Engine.Sat_log.snapshot;
  c_budget : Budget.worker_outcome;
  c_memo : Memo.snapshot;
}

let close_task (os : open_scope) : capture =
  let c_scope = Obs.Scope.capture os.os_scope in
  let c_satlog = Engine.Sat_log.capture_and_reset () in
  Engine.Sat_log.restore os.os_satlog_prev;
  let c_budget = Budget.capture_worker () in
  Budget.restore os.os_budget_prev;
  let c_memo = Memo.capture_overlay () in
  Memo.restore os.os_memo_prev;
  { c_scope; c_satlog; c_budget; c_memo }

(* Even a raising task must put the executing domain's state back —
   losing the coordinator's SAT log or budget to a worker exception
   would corrupt the run's telemetry beyond the failed task. *)
let with_task (e : env) (f : unit -> 'a) : 'a * capture =
  let os = open_task e in
  match f () with
  | r -> (r, close_task os)
  | exception exn ->
    let bt = Printexc.get_raw_backtrace () in
    ignore (close_task os);
    Printexc.raise_with_backtrace exn bt

let merge (c : capture) =
  let offset = Engine.Sat_log.absorb c.c_satlog in
  Obs.Scope.merge (Obs.Scope.map_queries (fun q -> q + offset) c.c_scope);
  Memo.absorb c.c_memo;
  Budget.merge_worker c.c_budget
