(* Netlist -> AIG mapping, the equivalent of the Yosys `aigmap` command.

   Primary inputs of the AIG are the circuit inputs plus every dff output
   bit (FF state is cut); primary outputs are the circuit outputs plus every
   dff input bit.  Flip-flops themselves therefore contribute no AND gates,
   matching the paper's "AIG area excluding flip-flops" metric. *)

open Netlist

type mapping = {
  aig : Aig.t;
  lit_of_bit : Bits.bit -> Aig.lit;
}

let map (c : Circuit.t) : mapping =
  Obs.Trace.with_span "aigmap.map" @@ fun () ->
  let g = Aig.create () in
  let env : Aig.lit Bits.Bit_tbl.t = Bits.Bit_tbl.create 256 in
  let lookup b =
    match b with
    | Bits.C0 | Bits.Cx -> Aig.false_lit
    | Bits.C1 -> Aig.true_lit
    | Bits.Of_wire (wid, off) -> (
      match Bits.Bit_tbl.find_opt env b with
      | Some l -> l
      | None ->
        (* undriven bit: fresh primary input (conservative) *)
        let l = Aig.new_pi g (Printf.sprintf "$undriven%d[%d]" wid off) in
        Bits.Bit_tbl.replace env b l;
        l)
  in
  let assign b l =
    match b with
    | Bits.Of_wire _ -> Bits.Bit_tbl.replace env b l
    | Bits.C0 | Bits.C1 | Bits.Cx -> ()
  in
  (* circuit inputs first, in declaration order *)
  List.iter
    (fun w ->
      Array.iteri
        (fun i b ->
          assign b (Aig.new_pi g (Printf.sprintf "%s[%d]" w.Circuit.wire_name i)))
        (Circuit.sig_of_wire w))
    (Circuit.inputs c);
  (* dff outputs are pseudo primary inputs, named after the state wire so
     the correspondence survives re-elaboration and optimization *)
  let state_bit_name b =
    match b with
    | Bits.Of_wire (wid, off) ->
      Printf.sprintf "$reg:%s:%d" (Circuit.wire c wid).Circuit.wire_name off
    | Bits.C0 | Bits.C1 | Bits.Cx -> "$reg:const"
  in
  List.iter
    (fun id ->
      match Circuit.cell c id with
      | Cell.Dff { q; _ } ->
        Array.iter (fun b -> assign b (Aig.new_pi g (state_bit_name b))) q
      | Cell.Unary _ | Cell.Binary _ | Cell.Mux _ | Cell.Pmux _ -> ())
    (Circuit.cell_ids c);
  let lv s = Array.map lookup s in
  let assign_vec y lits = Array.iteri (fun i l -> assign y.(i) l) lits in
  let map_cell cell =
    match cell with
    | Cell.Unary { op = Cell.Not; a; y } ->
      assign_vec y (Array.map Aig.negate (lv a))
    | Cell.Unary { op = Cell.Logic_not; a; y } ->
      assign y.(0) (Aig.negate (Aig.or_list g (Array.to_list (lv a))))
    | Cell.Unary { op = Cell.Reduce_and; a; y } ->
      assign y.(0) (Aig.and_list g (Array.to_list (lv a)))
    | Cell.Unary { op = Cell.Reduce_or | Cell.Reduce_bool; a; y } ->
      assign y.(0) (Aig.or_list g (Array.to_list (lv a)))
    | Cell.Unary { op = Cell.Reduce_xor; a; y } ->
      assign y.(0) (Aig.xor_list g (Array.to_list (lv a)))
    | Cell.Binary { op = Cell.And; a; b; y } ->
      assign_vec y (Array.map2 (Aig.and_ g) (lv a) (lv b))
    | Cell.Binary { op = Cell.Or; a; b; y } ->
      assign_vec y (Array.map2 (Aig.or_ g) (lv a) (lv b))
    | Cell.Binary { op = Cell.Xor; a; b; y } ->
      assign_vec y (Array.map2 (Aig.xor_ g) (lv a) (lv b))
    | Cell.Binary { op = Cell.Xnor; a; b; y } ->
      assign_vec y (Array.map2 (Aig.xnor_ g) (lv a) (lv b))
    | Cell.Binary { op = Cell.Eq; a; b; y } ->
      let eqbits = Array.map2 (Aig.xnor_ g) (lv a) (lv b) in
      assign y.(0) (Aig.and_list g (Array.to_list eqbits))
    | Cell.Binary { op = Cell.Ne; a; b; y } ->
      let nebits = Array.map2 (Aig.xor_ g) (lv a) (lv b) in
      assign y.(0) (Aig.or_list g (Array.to_list nebits))
    | Cell.Binary { op = Cell.Logic_and; a; b; y } ->
      assign y.(0)
        (Aig.and_ g
           (Aig.or_list g (Array.to_list (lv a)))
           (Aig.or_list g (Array.to_list (lv b))))
    | Cell.Binary { op = Cell.Logic_or; a; b; y } ->
      assign y.(0)
        (Aig.or_ g
           (Aig.or_list g (Array.to_list (lv a)))
           (Aig.or_list g (Array.to_list (lv b))))
    | Cell.Binary { op = Cell.Add; a; b; y } ->
      let va = lv a and vb = lv b in
      let carry = ref Aig.false_lit in
      Array.iteri
        (fun i yb ->
          let axb = Aig.xor_ g va.(i) vb.(i) in
          assign yb (Aig.xor_ g axb !carry);
          carry :=
            Aig.or_ g (Aig.and_ g va.(i) vb.(i)) (Aig.and_ g !carry axb))
        y
    | Cell.Binary { op = Cell.Sub; a; b; y } ->
      let va = lv a and vb = Array.map Aig.negate (lv b) in
      let carry = ref Aig.true_lit in
      Array.iteri
        (fun i yb ->
          let axb = Aig.xor_ g va.(i) vb.(i) in
          assign yb (Aig.xor_ g axb !carry);
          carry :=
            Aig.or_ g (Aig.and_ g va.(i) vb.(i)) (Aig.and_ g !carry axb))
        y
    | Cell.Mux { a; b; s; y } ->
      let ls = lookup s in
      let va = lv a and vb = lv b in
      Array.iteri
        (fun i yb -> assign yb (Aig.mux_ g ~s:ls ~a:va.(i) ~b:vb.(i)))
        y
    | Cell.Pmux { a; b; s; y } ->
      let w = Bits.width a in
      let current = ref (lv a) in
      for i = Bits.width s - 1 downto 0 do
        let ls = lookup s.(i) in
        let part = lv (Bits.slice b ~off:(i * w) ~len:w) in
        current :=
          Array.mapi (fun j prev -> Aig.mux_ g ~s:ls ~a:prev ~b:part.(j)) !current
      done;
      assign_vec y !current
    | Cell.Dff _ -> ()
  in
  List.iter (fun id -> map_cell (Circuit.cell c id)) (Topo.sort c);
  (* primary outputs *)
  List.iter
    (fun w ->
      Array.iteri
        (fun i b ->
          Aig.add_po g (Printf.sprintf "%s[%d]" w.Circuit.wire_name i) (lookup b))
        (Circuit.sig_of_wire w))
    (Circuit.outputs c);
  (* dff inputs are pseudo primary outputs, keyed by the state bit fed *)
  List.iter
    (fun id ->
      match Circuit.cell c id with
      | Cell.Dff { d; q } ->
        Array.iteri
          (fun i b ->
            Aig.add_po g (state_bit_name q.(i) ^ "'") (lookup b))
          d
      | Cell.Unary _ | Cell.Binary _ | Cell.Mux _ | Cell.Pmux _ -> ())
    (Circuit.cell_ids c);
  { aig = g; lit_of_bit = lookup }

(* The paper's headline metric. *)
let aig_area (c : Circuit.t) =
  Obs.Trace.with_span "aigmap.aig_area" @@ fun () -> Aig.area (map c).aig
