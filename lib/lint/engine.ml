(* Composite lint pipeline: frontend -> AST rules -> elaborate -> netlist
   rules, with frontend failures demoted to HDL000 diagnostics. *)

let frontend ?span what msg =
  Diag.error ?span ~rule:"HDL000" (Fmt.str "%s: %s" what msg)

let lint_source ?style (src : string) : Diag.t list =
  match Hdl.Parser.parse_string src with
  | exception Hdl.Lexer.Lex_error (msg, pos) ->
    [ frontend ~span:(Hdl.Loc.of_pos pos) "lex error" msg ]
  | exception Hdl.Parser.Parse_error (msg, pos) ->
    [ frontend ~span:(Hdl.Loc.of_pos pos) "parse error" msg ]
  | ast -> (
    let hdl = Rules_hdl.check ast in
    match Hdl.Elaborate.elaborate ?style ast with
    | exception Hdl.Elaborate.Elab_error (msg, sp) ->
      Diag.sort (frontend ?span:sp "elaboration error" msg :: hdl)
    | circuit -> Diag.sort (hdl @ Rules_netlist.check circuit))

let lint_circuit = Rules_netlist.check

let report_json (sources : (string * Diag.t list) list) : Obs.Json.t =
  let open Obs.Json in
  let all = List.concat_map snd sources in
  let errors, warnings, infos = Diag.counts all in
  Obj
    [ "schema", Str "smartly-lint-v1";
      "sources",
      List
        (List.map
           (fun (name, diags) ->
             Obj
               [ "name", Str name;
                 "diagnostics", List (List.map Diag.to_json diags) ])
           sources);
      "errors", num_of_int errors;
      "warnings", num_of_int warnings;
      "infos", num_of_int infos ]
