(* smartly — command-line driver.

   smartly list                           list built-in workload profiles
   smartly generate NAME [-o FILE]        emit the profile's Verilog source
   smartly stats SRC [--json]             netlist statistics and AIG area
   smartly opt SRC [--flow FLOW] [...]    optimize and report
   smartly cec A B                        combinational equivalence check
   smartly explain FILE.jsonl             area-attribution from a provenance log
   smartly replay FILE.cnf...             re-run captured SAT queries
   smartly validate-json FILE...          check files parse as JSON (.jsonl per line)
   smartly lint SRC... [--json] [--werror] [--waive RULES]
                                          static analysis: AST rules + netlist rules;
                                          --list-rules prints the registry
   smartly serve [--socket PATH]          batch daemon: JSONL jobs in, one
                                          smartly-report-v1 per job out, warm
                                          cross-job memo store

   SRC is either a built-in profile name or a path to a Verilog file in the
   supported subset.

   Observability: [opt --trace FILE] writes a Chrome trace_event JSON of
   the run (open in chrome://tracing or Perfetto); [opt --json] prints a
   machine-readable stats report (per-pass wall time, SAT query/conflict
   totals, area before/after) to stdout, moving the human summary to
   stderr; [opt --provenance FILE] writes one JSONL event per netlist
   mutation, which [smartly explain] aggregates into a per-mechanism
   area-attribution table; [opt --sat-dump DIR] writes the hardest SAT
   queries as self-contained DIMACS files for [smartly replay]. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_circuit ~style src : Netlist.Circuit.t =
  match Workloads.Profiles.by_name src with
  | Some p -> Workloads.Profiles.circuit p
  | None ->
    if Sys.file_exists src then
      Hdl.Elaborate.elaborate_string ~style (read_file src)
    else
      failwith
        (Printf.sprintf "%s: neither a profile name nor an existing file" src)

(* --- arguments --- *)

let src_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SRC" ~doc:"Profile name or Verilog file.")

let style_arg =
  let style_conv =
    Arg.enum [ "chain", `Chain; "balanced", `Balanced; "pmux", `Pmux ]
  in
  Arg.(
    value & opt style_conv `Chain
    & info [ "style" ] ~docv:"STYLE"
        ~doc:"Case lowering style for Verilog files: chain, balanced, pmux.")

let flow_arg =
  let flow_conv =
    Arg.enum
      [
        "none", `None; "yosys", `Yosys; "smartly", `Smartly; "sat", `Sat;
        "rebuild", `Rebuild;
      ]
  in
  Arg.(
    value & opt flow_conv `Smartly
    & info [ "flow" ] ~docv:"FLOW"
        ~doc:
          "Optimization flow: none, yosys (baseline), smartly (full), sat \
           (SAT elimination only), rebuild (restructuring only).")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ] ~doc:"Equivalence-check the result against the input.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print pass reports.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON of the run to FILE (open in \
           chrome://tracing or Perfetto).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Print a machine-readable JSON report to stdout (human summary \
           moves to stderr).")

let provenance_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "provenance" ] ~docv:"FILE"
        ~doc:
          "Write the optimization provenance log (one JSON event per \
           netlist mutation) to FILE; aggregate it with $(b,smartly \
           explain).")

let no_sat_memo_arg =
  Arg.(
    value & flag
    & info [ "no-sat-memo" ]
        ~doc:
          "Disable the cross-query verdict cache: every sim/SAT query is \
           resolved from scratch.  The final netlist is identical either \
           way; this knob exists for benchmarking and for proving it.")

let no_analysis_arg =
  Arg.(
    value & flag
    & info [ "no-analysis" ]
        ~doc:
          "Disable the abstract-interpretation rung zero: every query \
           falls through to the memo/sim/SAT rungs.  The final netlist is \
           identical either way; this knob exists for benchmarking and \
           for proving it.")

let sat_session_arg =
  Arg.(
    value
    & opt ~vopt:true bool true
    & info [ "sat-session" ] ~docv:"BOOL"
        ~doc:
          "Use one persistent incremental SAT solver for all queries of a \
           run (default).  $(b,--sat-session=false) falls back to a fresh \
           solver and Tseitin encoding per query.")

let sat_dump_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "sat-dump" ] ~docv:"DIR"
        ~doc:
          "Write the hardest SAT queries of the run as self-contained \
           DIMACS files under DIR; re-run them with $(b,smartly replay).")

let no_ledger_arg =
  Arg.(
    value & flag
    & info [ "no-ledger" ]
        ~doc:
          "Do not create a run-ledger directory.  By default every \
           $(b,opt) run records its manifest, event stream, trace, \
           provenance, SAT dumps and flight-recorder dump under \
           $(b,.smartly/runs/<run-id>/), renderable later with \
           $(b,smartly report).")

let ledger_root_arg =
  Arg.(
    value
    & opt string Obs.Ledger.default_root
    & info [ "ledger-root" ] ~docv:"DIR"
        ~doc:"Run-ledger root directory (default $(b,.smartly/runs)).")

let pass_budget_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "pass-budget-ms" ] ~docv:"MS"
        ~doc:
          "Wall-time budget per optimization pass (smartly-family flows). \
           A pass exceeding it is truncated — remaining SAT queries \
           forgone, remaining trees skipped — and skipped on later \
           iterations; the flow still completes and exits 0, with a \
           $(b,Budget_exceeded) event recorded in the ledger.")

let pass_alloc_budget_mw_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "pass-alloc-budget-mw" ] ~docv:"MWORDS"
        ~doc:
          "Allocation budget per pass in millions of words; same graceful \
           degradation as $(b,--pass-budget-ms).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Shard independent muxtrees across N worker domains \
           (smartly-family flows).  The final netlist and the merged \
           telemetry are byte-identical for every N; without the flag \
           the legacy in-place sequential walk runs instead.")

let portfolio_arg =
  Arg.(
    value & flag
    & info [ "portfolio" ]
        ~doc:
          "Race solver configurations (budgeted CDCL vs a fresh \
           simulation-first ladder) on SAT queries the hardest-query \
           ring flags as hard.  Opt-in: the netlist is unchanged but \
           solver telemetry (conflict counts, hardest-query ranking) \
           becomes schedule-dependent.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Print a live line per completed pass to stderr (automatic when \
           stderr is a TTY).")

(* --- commands --- *)

let list_cmd =
  let run () =
    print_endline "public benchmark profiles:";
    List.iter
      (fun (p : Workloads.Profiles.profile) ->
        Printf.printf "  %-16s (seed %d, %s style)\n" p.Workloads.Profiles.name
          p.Workloads.Profiles.seed
          (match p.Workloads.Profiles.style with
          | `Chain -> "chain"
          | `Balanced -> "balanced"
          | `Pmux -> "pmux"))
      Workloads.Profiles.public_benchmarks;
    print_endline "industrial test points:";
    List.iter
      (fun (p : Workloads.Profiles.profile) ->
        Printf.printf "  %-16s (seed %d)\n" p.Workloads.Profiles.name
          p.Workloads.Profiles.seed)
      Workloads.Profiles.industrial_benchmarks;
    print_endline "smoke profiles:";
    Printf.printf "  %-16s (seed %d, fast; for CI and quick checks)\n"
      Workloads.Profiles.mux_chain.Workloads.Profiles.name
      Workloads.Profiles.mux_chain.Workloads.Profiles.seed
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in workload profiles.")
    Term.(const run $ const ())

let generate_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE.")
  in
  let run name out =
    match Workloads.Profiles.by_name name with
    | None -> Printf.eprintf "unknown profile %s\n" name
    | Some p -> (
      let src = Workloads.Profiles.source p in
      match out with
      | None -> print_string src
      | Some path ->
        let oc = open_out path in
        output_string oc src;
        close_out oc;
        Printf.printf "wrote %s (%d bytes)\n" path (String.length src))
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Emit the Verilog source of a profile.")
    Term.(
      const run
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"NAME" ~doc:"Profile name.")
      $ out_arg)

let stats_cmd =
  let run src style json =
    let c = load_circuit ~style src in
    let st = Netlist.Stats.of_circuit c in
    let depth = Netlist.Topo.logic_depth c in
    let area = Aiger.Aigmap.aig_area c in
    if json then
      let open Obs.Json in
      print_endline
        (to_string ~pretty:true
           (Obj
              [
                "schema", Str "smartly-netlist-stats-v1";
                "source", Str src;
                ( "cells",
                  Obj
                    [
                      "total", num_of_int st.Netlist.Stats.total;
                      "muxes", num_of_int st.Netlist.Stats.muxes;
                      "pmuxes", num_of_int st.Netlist.Stats.pmuxes;
                      "eqs", num_of_int st.Netlist.Stats.eqs;
                      "dffs", num_of_int st.Netlist.Stats.dffs;
                      "logic", num_of_int st.Netlist.Stats.logic;
                      "bitwise", num_of_int st.Netlist.Stats.bitwise;
                      "arith", num_of_int st.Netlist.Stats.arith;
                      "mux_bits", num_of_int st.Netlist.Stats.mux_bits;
                    ] );
                "wires", num_of_int st.Netlist.Stats.wires;
                "logic_depth", num_of_int depth;
                "aig_area", num_of_int area;
              ]))
    else begin
      Fmt.pr "%a@." Netlist.Stats.pp st;
      Printf.printf "logic depth: %d\n" depth;
      Printf.printf "AIG area (FF excluded): %d\n" area
    end
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print netlist statistics and the AIG area.")
    Term.(const run $ src_arg $ style_arg $ json_arg)

(* `smartly analyze`: the whole-circuit abstract-interpretation fixpoint
   with no path seeds — per-wire known bits and intervals, plus the
   derived cell facts that back the NL010..NL013 lint rules. *)
let analyze_cmd =
  let run src style json =
    let c = load_circuit ~style src in
    let cells =
      try Netlist.Topo.sort c
      with Netlist.Topo.Combinational_cycle ids ->
        Printf.eprintf "analyze: combinational cycle through cells %s\n%!"
          (String.concat ", " (List.map string_of_int ids));
        exit 1
    in
    match Analysis.Fixpoint.run c cells with
    | Analysis.Fixpoint.Contradiction ->
      (* unseeded, this would mean the circuit itself is inconsistent —
         impossible for a well-formed netlist, but report it rather than
         crash if an abstraction bug ever produces it *)
      Printf.eprintf "analyze: contradiction on the unseeded fixpoint\n%!";
      exit 1
    | Analysis.Fixpoint.Converged o ->
      let st = o.Analysis.Fixpoint.state in
      let facts = Analysis.Facts.derive c st in
      let wires =
        Hashtbl.fold (fun _ w acc -> w :: acc) c.Netlist.Circuit.wires []
        |> List.sort (fun (a : Netlist.Circuit.wire) b ->
               compare a.Netlist.Circuit.wire_id b.Netlist.Circuit.wire_id)
      in
      if json then begin
        let open Obs.Json in
        let wire_json (w : Netlist.Circuit.wire) =
          let s = Netlist.Circuit.sig_of_wire w in
          Obj
            [
              "id", num_of_int w.Netlist.Circuit.wire_id;
              "name", Str w.Netlist.Circuit.wire_name;
              "width", num_of_int w.Netlist.Circuit.width;
              "bits", Str (Analysis.Absval.to_string st s);
              ( "interval",
                match Analysis.Absval.get_itv st s with
                | None -> Null
                | Some i ->
                  Obj
                    [
                      "lo", num_of_int i.Analysis.Absval.lo;
                      "hi", num_of_int i.Analysis.Absval.hi;
                    ] );
            ]
        in
        print_endline
          (to_string ~pretty:true
             (Obj
                [
                  "schema", Str "smartly-analysis-v1";
                  "source", Str src;
                  "cells", num_of_int (Netlist.Circuit.cell_count c);
                  "sweeps", num_of_int o.Analysis.Fixpoint.sweeps;
                  "wires", List (List.map wire_json wires);
                  ( "facts",
                    List (List.map Analysis.Facts.fact_to_json facts) );
                ]))
      end
      else begin
        Printf.printf "analysis: %d cells, fixpoint in %d sweep%s\n"
          (Netlist.Circuit.cell_count c)
          o.Analysis.Fixpoint.sweeps
          (if o.Analysis.Fixpoint.sweeps = 1 then "" else "s");
        let nontrivial_itv (w : Netlist.Circuit.wire) s =
          match Analysis.Absval.get_itv st s with
          | Some i
            when w.Netlist.Circuit.width <= Analysis.Absval.max_itv_width ->
            i.Analysis.Absval.lo > 0
            || i.Analysis.Absval.hi < (1 lsl w.Netlist.Circuit.width) - 1
          | _ -> false
        in
        let pinned =
          List.filter
            (fun (w : Netlist.Circuit.wire) ->
              let s = Netlist.Circuit.sig_of_wire w in
              String.exists (fun ch -> ch <> '?')
                (Analysis.Absval.to_string st s)
              || nontrivial_itv w s)
            wires
        in
        Printf.printf "wires with derived facts: %d of %d\n"
          (List.length pinned) (List.length wires);
        List.iter
          (fun (w : Netlist.Circuit.wire) ->
            let s = Netlist.Circuit.sig_of_wire w in
            let itv =
              match Analysis.Absval.get_itv st s with
              | Some i when not (i.Analysis.Absval.lo = 0
                                 && i.Analysis.Absval.hi
                                    = (1 lsl w.Netlist.Circuit.width) - 1) ->
                Printf.sprintf " in [%d, %d]" i.Analysis.Absval.lo
                  i.Analysis.Absval.hi
              | _ -> ""
            in
            Printf.printf "  %-24s = %s%s\n" w.Netlist.Circuit.wire_name
              (Analysis.Absval.to_string st s)
              itv)
          pinned;
        Printf.printf "cell facts: %d\n" (List.length facts);
        List.iter
          (fun f ->
            Printf.printf "  [%s] %s\n"
              (Analysis.Facts.fact_rule f)
              (Analysis.Facts.fact_message f))
          facts
      end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the abstract-interpretation value analysis (known bits + \
          intervals) over a circuit and report per-wire abstract values \
          and derived facts.")
    Term.(const run $ src_arg $ style_arg $ json_arg)

(* --- the optimization flows, one code path for every variant --- *)

type outcome =
  | O_none
  | O_yosys of Rtl_opt.Flow.report
  | O_smartly of Smartly.Driver.result

let flow_name = function
  | `None -> "none"
  | `Yosys -> "yosys"
  | `Smartly -> "smartly"
  | `Sat -> "sat"
  | `Rebuild -> "rebuild"

let run_flow ?after_pass ?(sat_memo = true) ?(sat_session = true)
    ?(analysis = true) ?(pass_budget_ms = None) ?(pass_alloc_budget_mw = None)
    ?(jobs = None) ?(portfolio = false) flow (c : Netlist.Circuit.t) : outcome
    =
  match flow with
  | `None -> O_none
  | `Yosys -> O_yosys (Smartly.Driver.yosys ?after_pass c)
  | (`Smartly | `Sat | `Rebuild) as f ->
    let cfg =
      match f with
      | `Sat -> Smartly.Config.sat_only
      | `Rebuild -> Smartly.Config.rebuild_only
      | `Smartly -> Smartly.Config.default
    in
    let cfg =
      {
        cfg with
        Smartly.Config.enable_sat_memo = sat_memo;
        enable_sat_session = sat_session;
        enable_analysis = analysis;
        pass_budget_ms;
        pass_alloc_budget_mw;
        jobs;
        portfolio;
      }
    in
    O_smartly (Smartly.Driver.smartly ~cfg ?after_pass c)

(* Every flow variant prints its pass reports here — `--verbose` behaves
   the same whether the flow is none/yosys/sat/rebuild/smartly. *)
let print_pass_reports ppf = function
  | O_none -> ()
  | O_yosys r -> Fmt.pf ppf "baseline: %a@." Rtl_opt.Flow.pp_report r
  | O_smartly r ->
    List.iter
      (fun rr -> Fmt.pf ppf "sat_elim: %a@." Smartly.Sat_elim.pp_report rr)
      r.Smartly.Driver.sat_reports;
    List.iter
      (fun rr -> Fmt.pf ppf "rebuild:  %a@." Smartly.Restructure.pp_report rr)
      r.Smartly.Driver.rebuild_reports

(* Sum the engine stats over every sat_elim sweep of the run. *)
let engine_totals (o : outcome) : Smartly.Engine.stats =
  let acc = Smartly.Engine.fresh_stats () in
  (match o with
  | O_none | O_yosys _ -> ()
  | O_smartly r ->
    List.iter
      (fun (rr : Smartly.Sat_elim.report) ->
        let e = rr.Smartly.Sat_elim.engine in
        let open Smartly.Engine in
        acc.rule_hits <- acc.rule_hits + e.rule_hits;
        acc.analysis_hits <- acc.analysis_hits + e.analysis_hits;
        acc.analysis_queries <- acc.analysis_queries + e.analysis_queries;
        acc.sim_queries <- acc.sim_queries + e.sim_queries;
        acc.sat_queries <- acc.sat_queries + e.sat_queries;
        acc.memo_hits <- acc.memo_hits + e.memo_hits;
        acc.memo_misses <- acc.memo_misses + e.memo_misses;
        acc.forgone <- acc.forgone + e.forgone;
        acc.subgraph_kept <- acc.subgraph_kept + e.subgraph_kept;
        acc.subgraph_dropped <- acc.subgraph_dropped + e.subgraph_dropped;
        acc.sat_conflicts <- acc.sat_conflicts + e.sat_conflicts;
        acc.sat_decisions <- acc.sat_decisions + e.sat_decisions;
        acc.sat_propagations <- acc.sat_propagations + e.sat_propagations)
      r.Smartly.Driver.sat_reports);
  acc

let iterations_of = function
  | O_none -> 0
  | O_yosys r -> r.Rtl_opt.Flow.iterations
  | O_smartly r -> r.Smartly.Driver.iterations

(* Per-span-name wall-time totals from the recorded trace.  Durations are
   inclusive (a driver.iteration span contains its passes). *)
let span_totals (sink : Obs.Trace.sink) : (string * int * float) list =
  let tbl : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Obs.Trace.event) ->
      let calls, tot =
        Option.value (Hashtbl.find_opt tbl e.Obs.Trace.name) ~default:(0, 0.0)
      in
      Hashtbl.replace tbl e.Obs.Trace.name
        (calls + 1, tot +. e.Obs.Trace.dur_us))
    (Obs.Trace.events sink);
  Hashtbl.fold (fun name (calls, tot) acc -> (name, calls, tot) :: acc) tbl []
  |> List.sort compare

let m_flow_cells_removed = Obs.Metrics.counter "flow.cells_removed"

(* p50/p90/max of a named histogram, [Null] when it has no observations. *)
let histogram_percentiles_json name : Obs.Json.t =
  let st = Obs.Metrics.histogram_stats (Obs.Metrics.histogram name) in
  if st.Obs.Metrics.count = 0 then Obs.Json.Null
  else
    Obs.Json.Obj
      [
        "count", Obs.Json.num_of_int st.Obs.Metrics.count;
        "p50", Obs.Json.Num st.Obs.Metrics.p50;
        "p90", Obs.Json.Num st.Obs.Metrics.p90;
        "max", Obs.Json.Num st.Obs.Metrics.max_v;
      ]

let counter_value name = Obs.Metrics.value (Obs.Metrics.counter name)

(* The sat-session counters as one JSON object — the [session] section of
   the --json report and of bench per-case output. *)
let session_json () : Obs.Json.t =
  let open Obs.Json in
  Obj
    [
      "flushes", num_of_int (counter_value "sat_session.flushes");
      "cell_encodes", num_of_int (counter_value "sat_session.cell_encodes");
      "cell_reuses", num_of_int (counter_value "sat_session.cell_reuses");
    ]

(* The rung-zero counters as one JSON object — the [analysis] section of
   the --json report and of bench per-case output.  [Null] when the rung
   never ran (--no-analysis, or a flow without the sat pass), so gates
   diffing reports across configs never see a spurious section. *)
let analysis_json () : Obs.Json.t =
  let open Obs.Json in
  let queries = counter_value "engine.analysis_queries" in
  if queries = 0 then Null
  else
    Obj
      [
        "queries", num_of_int queries;
        "hits", num_of_int (counter_value "engine.analysis_hits");
        "forced", num_of_int (counter_value "engine.analysis_forced");
        "unreachable", num_of_int (counter_value "engine.analysis_unreachable");
        "sim_avoided", num_of_int (counter_value "engine.analysis_sim_avoided");
        "sat_avoided", num_of_int (counter_value "engine.analysis_sat_avoided");
        "sweeps", num_of_int (counter_value "engine.analysis_sweeps");
        "seconds", histogram_percentiles_json "engine.analysis_seconds";
      ]

let overruns_of = function
  | O_none | O_yosys _ -> []
  | O_smartly r -> r.Smartly.Driver.overruns

let stats_report_json ~src ~flow ~area0 ~area1 ~dt ~outcome ~sink ~psink :
    Obs.Json.t =
  let open Obs.Json in
  let e = engine_totals outcome in
  let passes =
    match sink with
    | None -> []
    | Some s ->
      List.map
        (fun (name, calls, total_us) ->
          Obj
            [
              "name", Str name;
              "calls", num_of_int calls;
              "seconds", Num (total_us /. 1e6);
            ])
        (span_totals s)
  in
  Obj
    [
      "schema", Str "smartly-stats-v1";
      "source", Str src;
      "flow", Str (flow_name flow);
      "area_before", num_of_int area0;
      "area_after", num_of_int area1;
      ( "reduction_pct",
        Num
          (if area0 = 0 then 0.0
           else 100.0 *. (1.0 -. (float_of_int area1 /. float_of_int area0)))
      );
      "wall_seconds", Num dt;
      "iterations", num_of_int (iterations_of outcome);
      ( "sat",
        Obj
          [
            "queries", num_of_int e.Smartly.Engine.sat_queries;
            "conflicts", num_of_int e.Smartly.Engine.sat_conflicts;
            "decisions", num_of_int e.Smartly.Engine.sat_decisions;
            "propagations", num_of_int e.Smartly.Engine.sat_propagations;
            "rule_hits", num_of_int e.Smartly.Engine.rule_hits;
            "analysis_hits", num_of_int e.Smartly.Engine.analysis_hits;
            "sim_queries", num_of_int e.Smartly.Engine.sim_queries;
            "memo_hits", num_of_int e.Smartly.Engine.memo_hits;
            "memo_misses", num_of_int e.Smartly.Engine.memo_misses;
            "forgone", num_of_int e.Smartly.Engine.forgone;
            "subgraph_kept", num_of_int e.Smartly.Engine.subgraph_kept;
            "subgraph_dropped", num_of_int e.Smartly.Engine.subgraph_dropped;
          ] );
      "memo", Smartly.Memo.to_json ();
      "session", session_json ();
      "analysis", analysis_json ();
      ( "budget",
        List
          (List.map Smartly.Budget.overrun_to_json (overruns_of outcome)) );
      "cells_removed", num_of_int (Obs.Metrics.value m_flow_cells_removed);
      ( "sat_percentiles",
        Obj
          [
            ( "conflicts_per_query",
              histogram_percentiles_json "engine.conflicts_per_query" );
            ( "query_seconds",
              histogram_percentiles_json "engine.sat_query_seconds" );
            "subgraph_cells", histogram_percentiles_json "engine.subgraph_cells";
          ] );
      ( "provenance_summary",
        match psink with
        | Some s -> Obs.Provenance.summary_json (Obs.Provenance.events s)
        | None -> Null );
      "sat_queries", Smartly.Engine.Sat_log.to_json ();
      "passes", List passes;
      "metrics", Obs.Metrics.to_json ();
    ]

let check_invariants_arg =
  Arg.(
    value & flag
    & info [ "check-invariants" ]
        ~doc:
          "Re-validate the netlist and SAT-check equivalence after every \
           sub-pass; on a violation, name the first pass that broke an \
           invariant and exit non-zero.")

(* The hardest-query refs a flight dump carries: pointers into the
   ledger's sat/ directory, not the DIMACS text itself. *)
let flight_extra () =
  let open Obs.Json in
  [
    ( "sat_hardest",
      List
        (List.map
           (fun (e : Smartly.Engine.Sat_log.entry) ->
             Obj
               [
                 "id", num_of_int e.Smartly.Engine.Sat_log.id;
                 ( "conflicts",
                   num_of_int e.Smartly.Engine.Sat_log.conflicts );
                 ( "dimacs",
                   Str
                     (Printf.sprintf "sat/query_%04d.cnf"
                        e.Smartly.Engine.Sat_log.id) );
               ])
           (Smartly.Engine.Sat_log.hardest ())) );
  ]

let opt_cmd =
  let run src style flow check verbose trace json provenance sat_dump
      check_invariants no_sat_memo no_analysis sat_session no_ledger
      ledger_root pass_budget_ms pass_alloc_budget_mw jobs portfolio progress
      =
    let c = load_circuit ~style src in
    let orig = Netlist.Circuit.copy c in
    let invariants =
      if check_invariants then Some (Lint.Invariant.create c) else None
    in
    let after_pass =
      Option.map
        (fun t name circuit -> Lint.Invariant.after_pass t name circuit)
        invariants
    in
    Obs.Metrics.reset ();
    Smartly.Engine.Sat_log.reset ();
    Smartly.Memo.reset ();
    Smartly.Budget.reset ();
    Obs.Event.reset ();
    (* the run ledger is on by default; a failure to create it (read-only
       cwd, bad --ledger-root) degrades to an unledgered run, not an
       error *)
    let ledger =
      if no_ledger then None
      else
        try
          let env =
            Perf.Schema.env_to_json (Perf.Schema.fingerprint ~reps:1)
          in
          Some
            (Obs.Ledger.create ~root:ledger_root
               ~argv:(Array.to_list Sys.argv) ~env ())
        with e ->
          Printf.eprintf "ledger: disabled (%s)\n%!" (Printexc.to_string e);
          None
    in
    if progress || Unix.isatty Unix.stderr then
      ignore (Obs.Event.attach_progress ());
    (* an interrupted run still leaves a complete, renderable ledger: the
       flushed events.jsonl prefix, a flight dump naming the in-flight
       pass, and a manifest with status "interrupted" *)
    (match ledger with
    | Some l ->
      Sys.set_signal Sys.sigint
        (Sys.Signal_handle
           (fun _ ->
             ignore
               (Obs.Ledger.dump_flight ~extra:(flight_extra ())
                  ~reason:"sigint" l);
             Obs.Ledger.finish ~status:"interrupted" l;
             exit 130))
    | None -> ());
    (* spans feed the --trace file, the per-pass times of the --json
       report, and the ledger's trace.json; with none of those the sink
       stays uninstalled and tracing costs nothing *)
    let sink =
      if trace <> None || json || ledger <> None then begin
        let s = Obs.Trace.make_sink () in
        Obs.Trace.install s;
        Some s
      end
      else None
    in
    (* the provenance sink feeds the --provenance JSONL file, the
       provenance_summary section of --json, and the ledger *)
    let psink =
      if provenance <> None || json || ledger <> None then begin
        let s = Obs.Provenance.make_sink () in
        Obs.Provenance.install s;
        Some s
      end
      else None
    in
    let area0 = Aiger.Aigmap.aig_area c in
    Obs.Event.emit ~name:src
      ~data:
        (Obs.Json.Obj
           [
             "source", Obs.Json.Str src;
             "flow", Obs.Json.Str (flow_name flow);
             "area", Obs.Json.num_of_int area0;
             "cells", Obs.Json.num_of_int (Netlist.Circuit.cell_count c);
           ])
      Obs.Event.Run_start;
    let t0 = Obs.Clock.now () in
    let outcome =
      try
        run_flow ?after_pass ~sat_memo:(not no_sat_memo) ~sat_session
          ~analysis:(not no_analysis) ~pass_budget_ms ~pass_alloc_budget_mw
          ~jobs ~portfolio flow c
      with e ->
        (match ledger with
        | Some l ->
          ignore
            (Obs.Ledger.dump_flight ~extra:(flight_extra ())
               ~reason:("exception: " ^ Printexc.to_string e)
               l);
          Obs.Ledger.finish ~status:"crashed" l
        | None -> ());
        raise e
    in
    let dt = Obs.Clock.now () -. t0 in
    let area1 = Aiger.Aigmap.aig_area c in
    let overruns = overruns_of outcome in
    Obs.Event.emit ~name:src
      ~data:
        (Obs.Json.Obj
           [
             "area", Obs.Json.num_of_int area1;
             "iterations", Obs.Json.num_of_int (iterations_of outcome);
             "wall_seconds", Obs.Json.Num dt;
             "memo", Smartly.Memo.to_json ();
             "session", session_json ();
             "analysis", analysis_json ();
             "overruns", Obs.Json.num_of_int (List.length overruns);
           ])
      Obs.Event.Run_end;
    Obs.Trace.uninstall ();
    Obs.Provenance.uninstall ();
    (* a bad trace path must not lose the run's report: write after the
       flow, catch the failure, and exit nonzero only at the end *)
    let trace_error = ref None in
    (match trace, sink with
    | Some path, Some s -> (
      try
        Obs.Trace.write_chrome_json ~path s;
        Printf.eprintf "trace: wrote %s (%d spans)\n%!" path
          (Obs.Trace.event_count s)
      with Sys_error msg -> trace_error := Some msg)
    | _ -> ());
    (match provenance, psink with
    | Some path, Some s -> (
      try
        Obs.Provenance.write_jsonl ~path s;
        Printf.eprintf "provenance: wrote %s (%d events)\n%!" path
          (Obs.Provenance.count s)
      with Sys_error msg -> trace_error := Some msg)
    | _ -> ());
    (match sat_dump with
    | Some dir -> (
      try
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        let paths = Smartly.Engine.Sat_log.dump ~dir in
        Printf.eprintf "sat-dump: wrote %d queries to %s\n%!"
          (List.length paths) dir
      with Sys_error msg | Unix.Unix_error (_, msg, _) ->
        trace_error := Some msg)
    | None -> ());
    (* the summary goes to stderr under --json so stdout stays parseable *)
    let human = if json then Format.err_formatter else Format.std_formatter in
    if verbose then print_pass_reports human outcome;
    let red =
      if area0 = 0 then 0.0
      else 100.0 *. (1.0 -. (float_of_int area1 /. float_of_int area0))
    in
    Fmt.pf human "%s: AIG area %d -> %d (%s reduction) in %s@."
      (flow_name flow) area0 area1 (Report.Table.pct red)
      (Report.Table.secs dt);
    (let e = engine_totals outcome in
     if e.Smartly.Engine.analysis_queries > 0 then
       Fmt.pf human "analysis: %d/%d rung-zero hits (%s)@."
         e.Smartly.Engine.analysis_hits e.Smartly.Engine.analysis_queries
         (Report.Table.pct
            (100.0
            *. float_of_int e.Smartly.Engine.analysis_hits
            /. float_of_int e.Smartly.Engine.analysis_queries));
     let consults = e.Smartly.Engine.memo_hits + e.Smartly.Engine.memo_misses in
     if consults > 0 then
       Fmt.pf human "memo: %d/%d hits (%s), %d entries@."
         e.Smartly.Engine.memo_hits consults
         (Report.Table.pct
            (100.0
            *. float_of_int e.Smartly.Engine.memo_hits
            /. float_of_int consults))
         (Smartly.Memo.size ()));
    List.iter
      (fun (o : Smartly.Budget.overrun) ->
        Fmt.pf human
          "budget: pass %s exceeded (%.1f ms elapsed%s, %d work items \
           truncated)@."
          o.Smartly.Budget.pass o.Smartly.Budget.elapsed_ms
          (match o.Smartly.Budget.budget_ms with
          | Some ms -> Printf.sprintf " of %d ms" ms
          | None -> "")
          o.Smartly.Budget.truncated)
      overruns;
    if json then
      print_endline
        (Obs.Json.to_string ~pretty:true
           (stats_report_json ~src ~flow ~area0 ~area1 ~dt ~outcome ~sink
              ~psink));
    if check then
      Fmt.pf human "equivalence: %a@." Equiv.pp_verdict (Equiv.check orig c);
    let invariant_failed = ref false in
    (match invariants with
    | None -> ()
    | Some t -> (
      match Lint.Invariant.failure t with
      | None ->
        Fmt.pf human "invariants: ok (%d checks)@."
          (Lint.Invariant.checks_run t)
      | Some f ->
        invariant_failed := true;
        Fmt.pf human "invariants: @[<v>%a@]@." Lint.Invariant.pp_failure f));
    (* everything the run produced also lands in the ledger, so [smartly
       report] works without having asked for any artifact flag *)
    (match ledger with
    | None -> ()
    | Some l ->
      (try
         (match sink with
         | Some s ->
           Obs.Trace.write_chrome_json ~path:(Obs.Ledger.path l "trace.json") s
         | None -> ());
         (match psink with
         | Some s ->
           Obs.Provenance.write_jsonl
             ~path:(Obs.Ledger.path l "provenance.jsonl")
             s
         | None -> ());
         let oc = open_out (Obs.Ledger.path l "stats.json") in
         output_string oc
           (Obs.Json.to_string ~pretty:true
              (stats_report_json ~src ~flow ~area0 ~area1 ~dt ~outcome ~sink
                 ~psink));
         output_char oc '\n';
         close_out oc;
         if Smartly.Engine.Sat_log.query_count () > 0 then begin
           let dir = Obs.Ledger.path l "sat" in
           if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
           ignore (Smartly.Engine.Sat_log.dump ~dir)
         end
       with Sys_error msg | Unix.Unix_error (_, msg, _) ->
         Printf.eprintf "ledger: cannot write artifact: %s\n%!" msg);
      if overruns <> [] then
        ignore
          (Obs.Ledger.dump_flight ~extra:(flight_extra ()) ~reason:"budget" l);
      let status = if !invariant_failed then "invariant-failed" else "ok" in
      Obs.Ledger.finish ~status
        ~extra:
          [
            "source", Obs.Json.Str src;
            "flow", Obs.Json.Str (flow_name flow);
            "area_before", Obs.Json.num_of_int area0;
            "area_after", Obs.Json.num_of_int area1;
            "wall_seconds", Obs.Json.Num dt;
            ( "budget_overruns",
              Obs.Json.List
                (List.map Smartly.Budget.overrun_to_json overruns) );
          ]
        l;
      Printf.eprintf "ledger: %s\n%!" (Obs.Ledger.dir l));
    (match !trace_error with
    | None -> ()
    | Some msg -> Printf.eprintf "trace: cannot write: %s\n%!" msg);
    if !trace_error <> None || !invariant_failed then exit 1
  in
  Cmd.v
    (Cmd.info "opt" ~doc:"Optimize a circuit and report the AIG area.")
    Term.(
      const run $ src_arg $ style_arg $ flow_arg $ check_arg $ verbose_arg
      $ trace_arg $ json_arg $ provenance_arg $ sat_dump_arg
      $ check_invariants_arg $ no_sat_memo_arg $ no_analysis_arg
      $ sat_session_arg $ no_ledger_arg $ ledger_root_arg $ pass_budget_ms_arg
      $ pass_alloc_budget_mw_arg $ jobs_arg $ portfolio_arg $ progress_arg)

let write_verilog_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE.")
  in
  let run src style out =
    let c = load_circuit ~style src in
    let text = Hdl.Verilog_out.write c in
    match out with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s (%d bytes)\n" path (String.length text)
  in
  Cmd.v
    (Cmd.info "write-verilog"
       ~doc:"Write the circuit back out as Verilog (round-trippable).")
    Term.(const run $ src_arg $ style_arg $ out_arg)

let dump_cmd =
  let run src style =
    let c = load_circuit ~style src in
    Netlist.Pp.print c
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Print the elaborated netlist in textual form.")
    Term.(const run $ src_arg $ style_arg)

let cec_cmd =
  let src2_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"SRC2" ~doc:"Second profile or Verilog file.")
  in
  let run src1 src2 style =
    let c1 = load_circuit ~style src1 in
    let c2 = load_circuit ~style src2 in
    Fmt.pr "%a@." Equiv.pp_verdict (Equiv.check c1 c2)
  in
  Cmd.v
    (Cmd.info "cec" ~doc:"Combinational equivalence check of two circuits.")
    Term.(const run $ src_arg $ src2_arg $ style_arg)

let explain_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Provenance JSONL file written by $(b,opt --provenance).")
  in
  let run file json =
    if not (Sys.file_exists file) then begin
      Printf.eprintf "%s: no such file\n" file;
      exit 1
    end;
    match Obs.Provenance.parse_jsonl (read_file file) with
    | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      exit 1
    | Ok evs ->
      if json then
        print_endline
          (Obs.Json.to_string ~pretty:true (Obs.Provenance.summary_json evs))
      else begin
        let open Obs.Provenance in
        let rows = attribute evs in
        let cols =
          Report.Table.
            [
              column "mechanism";
              column ~align:Right "cells";
              column ~align:Right "muxes";
              column ~align:Right "consts";
              column ~align:Right "trees";
              column ~align:Right "dead";
              column ~align:Right "area_saved";
            ]
        in
        let row_of (a : attribution) =
          [
            a.mech;
            Report.Table.int_ a.cells_removed;
            Report.Table.int_ a.muxes_bypassed;
            Report.Table.int_ a.consts_resolved;
            Report.Table.int_ a.trees_rebuilt;
            Report.Table.int_ a.dead_branches;
            Report.Table.int_ a.area_saved;
          ]
        in
        let tot f = List.fold_left (fun acc a -> acc + f a) 0 rows in
        let total_row =
          [
            "total";
            Report.Table.int_ (tot (fun a -> a.cells_removed));
            Report.Table.int_ (tot (fun a -> a.muxes_bypassed));
            Report.Table.int_ (tot (fun a -> a.consts_resolved));
            Report.Table.int_ (tot (fun a -> a.trees_rebuilt));
            Report.Table.int_ (tot (fun a -> a.dead_branches));
            Report.Table.int_ (tot (fun a -> a.area_saved));
          ]
        in
        Printf.printf "%d events\n" (List.length evs);
        Report.Table.print ~columns:cols
          ~rows:(List.map row_of rows @ [ total_row ])
      end
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Aggregate a provenance log into a per-mechanism area-attribution \
          table.")
    Term.(const run $ file_arg $ json_arg)

let replay_cmd =
  let files_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:"DIMACS files written by $(b,opt --sat-dump).")
  in
  (* the [solve=] field of the metadata comment a dumped query carries *)
  let recorded_verdict comments =
    let meta =
      List.find_opt
        (fun c -> String.length c > 0 && String.starts_with ~prefix:"smartly-sat-query" c)
        comments
    in
    Option.bind meta (fun m ->
        String.split_on_char ' ' m
        |> List.find_map (fun tok ->
               if String.starts_with ~prefix:"solve=" tok then
                 Some (String.sub tok 6 (String.length tok - 6))
               else None))
  in
  let run files =
    let ok = ref true in
    List.iter
      (fun path ->
        if not (Sys.file_exists path) then begin
          Printf.eprintf "%s: no such file\n" path;
          ok := false
        end
        else begin
          let cnf, comments = Cdcl.Dimacs.parse_string_ext (read_file path) in
          let s = Cdcl.Solver.create () in
          for _ = 1 to cnf.Cdcl.Dimacs.num_vars do
            ignore (Cdcl.Solver.new_var s)
          done;
          List.iter
            (fun cl ->
              Cdcl.Solver.add_clause s (List.map Cdcl.Lit.of_dimacs cl))
            cnf.Cdcl.Dimacs.clauses;
          let t0 = Obs.Clock.now () in
          let r = Cdcl.Solver.solve s in
          let dt = Obs.Clock.now () -. t0 in
          let got = Smartly.Engine.Sat_log.solve_name r in
          let conflicts, _, _ = Cdcl.Solver.stats s in
          match recorded_verdict comments with
          | Some exp when exp <> "UNKNOWN" ->
            if got = exp then
              Printf.printf "%s: %s (matches recorded) %d conflicts %s\n"
                path got conflicts (Report.Table.secs dt)
            else begin
              Printf.eprintf "%s: MISMATCH got %s, recorded %s\n" path got
                exp;
              ok := false
            end
          | Some _ | None ->
            Printf.printf "%s: %s (no recorded verdict) %d conflicts %s\n"
              path got conflicts (Report.Table.secs dt)
        end)
      files;
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-solve captured SAT queries in isolation and check each \
          result against the recorded verdict; non-zero exit on mismatch.")
    Term.(const run $ files_arg)

let lint_cmd =
  let sources_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SRC" ~doc:"Profile names or Verilog files.")
  in
  let werror_arg =
    Arg.(
      value & flag
      & info [ "werror" ] ~doc:"Treat warnings as errors (infos stay infos).")
  in
  let waive_arg =
    Arg.(
      value & opt_all string []
      & info [ "waive" ] ~docv:"RULES"
          ~doc:
            "Suppress diagnostics of the given rule ids \
             (comma-separated; repeatable), e.g. --waive HDL001,NL003.")
  in
  let list_rules_arg =
    Arg.(
      value & flag
      & info [ "list-rules" ] ~doc:"Print the rule registry and exit.")
  in
  let run sources style json werror waive list_rules =
    if list_rules then begin
      let columns =
        Report.Table.
          [ column "rule"; column "layer"; column "severity"; column "title" ]
      in
      let rows =
        List.map
          (fun (r : Lint.Registry.rule) ->
            [
              r.Lint.Registry.id;
              Lint.Registry.layer_name r.Lint.Registry.layer;
              Lint.Diag.severity_name r.Lint.Registry.default_severity;
              r.Lint.Registry.title;
            ])
          Lint.Registry.all
      in
      Report.Table.print ~columns ~rows
    end
    else begin
      if sources = [] then begin
        Printf.eprintf "lint: no sources given (profile names or .v files)\n";
        exit 2
      end;
      let waive =
        List.concat_map (String.split_on_char ',') waive
        |> List.map String.trim
        |> List.filter (( <> ) "")
      in
      List.iter
        (fun id ->
          if not (Lint.Registry.is_known id) then begin
            Printf.eprintf
              "lint: unknown rule id '%s' in --waive (see --list-rules)\n" id;
            exit 2
          end)
        waive;
      let lint_one src =
        match Workloads.Profiles.by_name src with
        | Some p ->
          (* profiles are linted from their generated source, with the
             profile's own case-lowering style *)
          Lint.Engine.lint_source ~style:p.Workloads.Profiles.style
            (Workloads.Profiles.source p)
        | None ->
          if Sys.file_exists src then
            Lint.Engine.lint_source ~style (read_file src)
          else begin
            Printf.eprintf
              "lint: %s: neither a profile name nor an existing file\n" src;
            exit 2
          end
      in
      let results =
        List.map
          (fun src -> (src, Lint.Diag.apply ~werror ~waive (lint_one src)))
          sources
      in
      let all = List.concat_map snd results in
      if json then
        print_endline
          (Obs.Json.to_string ~pretty:true (Lint.Engine.report_json results))
      else begin
        let columns =
          Report.Table.column "source" :: Lint.Diag.table_columns
        in
        let rows =
          List.concat_map
            (fun (src, diags) ->
              List.map
                (fun row -> src :: row)
                (Lint.Diag.table_rows diags))
            results
        in
        if rows <> [] then Report.Table.print ~columns ~rows;
        let errors, warnings, infos = Lint.Diag.counts all in
        Printf.printf "%d source%s: %d error%s, %d warning%s, %d info%s\n"
          (List.length results)
          (if List.length results = 1 then "" else "s")
          errors
          (if errors = 1 then "" else "s")
          warnings
          (if warnings = 1 then "" else "s")
          infos
          (if infos = 1 then "" else "s")
      end;
      if Lint.Diag.has_errors all then exit 1
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static analyzer over Verilog sources or profiles: AST \
          rules (case coverage, multiple drivers, truncation, read-before- \
          write), then netlist rules on the elaborated circuit.  Non-zero \
          exit iff any error-severity diagnostic remains after --waive / \
          --werror.")
    Term.(
      const run $ sources_arg $ style_arg $ json_arg $ werror_arg $ waive_arg
      $ list_rules_arg)

let validate_json_cmd =
  let files_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE" ~doc:"JSON files to check.")
  in
  let run files =
    let ok = ref true in
    List.iter
      (fun path ->
        if not (Sys.file_exists path) then begin
          Printf.eprintf "%s: no such file\n" path;
          ok := false
        end
        else if Filename.check_suffix path ".jsonl" then begin
          (* JSONL: every non-blank line is its own JSON document *)
          let lines = String.split_on_char '\n' (read_file path) in
          let bad = ref None in
          List.iteri
            (fun i line ->
              if !bad = None && String.trim line <> "" then
                match Obs.Json.parse line with
                | Ok _ -> ()
                | Error msg -> bad := Some (i + 1, msg))
            lines;
          match !bad with
          | None -> Printf.printf "%s: ok\n" path
          | Some (ln, msg) ->
            Printf.eprintf "%s: invalid JSONL at line %d (%s)\n" path ln msg;
            ok := false
        end
        else
          match Obs.Json.parse (read_file path) with
          | Ok _ -> Printf.printf "%s: ok\n" path
          | Error msg ->
            Printf.eprintf "%s: invalid JSON (%s)\n" path msg;
            ok := false)
      files;
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "validate-json"
       ~doc:
         "Check that files parse as JSON (or, for .jsonl files, that every \
          line does); non-zero exit on failure.  Used by the CI smoke step \
          on --json / --trace / --provenance outputs.")
    Term.(const run $ files_arg)

let bench_diff_cmd =
  let baseline_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline smartly-bench-v1 document.")
  in
  let current_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT" ~doc:"Fresh smartly-bench-v1 document.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Exit non-zero if any metric regressed beyond its threshold.")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Show every metric row, not just the ones that changed.")
  in
  let scale_arg =
    Arg.(
      value & opt float 1.0
      & info [ "threshold-scale" ] ~docv:"X"
          ~doc:
            "Multiply the noisy-kind (time, GC) tolerance bands by $(docv); \
             area and count metrics always compare exactly.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the diff as machine-readable JSON instead of a table.")
  in
  let run base_path cur_path check all scale json =
    let load path =
      match Perf.Schema.of_string (read_file path) with
      | Ok doc -> doc
      | Error msg ->
        Printf.eprintf "%s: %s\n" path msg;
        exit 2
    in
    let baseline = load base_path in
    let current = load cur_path in
    if baseline.Perf.Schema.section <> current.Perf.Schema.section then
      Printf.eprintf "note: comparing section %S against %S\n"
        baseline.Perf.Schema.section current.Perf.Schema.section;
    let d = Perf.Compare.diff ~scale ~baseline current in
    if json then
      print_endline
        (Obs.Json.to_string ~pretty:true (Perf.Compare.to_json d))
    else begin
      if Unix.isatty Unix.stdout && Sys.getenv_opt "NO_COLOR" = None then
        Report.Table.set_color true;
      print_string (Perf.Compare.render ~all d)
    end;
    let regs = Perf.Compare.regressions d in
    if check && (regs <> [] || d.Perf.Compare.missing_cases <> []) then begin
      List.iter
        (fun (case, (r : Perf.Compare.metric_diff)) ->
          Printf.eprintf "regressed: %s/%s\n" case r.Perf.Compare.name)
        regs;
      List.iter
        (fun case -> Printf.eprintf "missing case: %s\n" case)
        d.Perf.Compare.missing_cases;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two smartly-bench-v1 documents (as written by bench \
          --json / --update-baselines) metric by metric, using the same \
          per-kind noise thresholds as bench --check.  With --check, exit \
          non-zero when any metric regressed or a baseline case vanished.")
    Term.(
      const run $ baseline_arg $ current_arg $ check_arg $ all_arg $ scale_arg
      $ json_arg)

(* --- smartly report: render a run ledger, written by a process that may
   no longer exist (or may have died mid-pass).  Everything is read
   tolerantly: a missing file is an absent section, a torn events.jsonl
   tail is recovered around and reported by byte offset. *)

let report_cmd =
  let target_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"RUN"
          ~doc:"Run id (looked up under --ledger-root) or run directory.")
  in
  let run target root json =
    let dir =
      if Sys.file_exists target && Sys.is_directory target then target
      else begin
        let d = Filename.concat root target in
        if Sys.file_exists d && Sys.is_directory d then d
        else begin
          Printf.eprintf "report: no run directory %s (nor %s)\n" target d;
          exit 2
        end
      end
    in
    let read_opt name =
      let p = Filename.concat dir name in
      if Sys.file_exists p then Some (read_file p) else None
    in
    let manifest =
      Option.bind (read_opt "manifest.json") (fun text ->
          match Obs.Json.parse text with Ok j -> Some j | Error _ -> None)
    in
    let events, torn =
      match read_opt "events.jsonl" with
      | Some text -> Obs.Event.parse_jsonl_partial text
      | None -> [], None
    in
    (* ordering invariant of the stream — a report over a damaged ledger
       should say so rather than render garbage *)
    let ordered =
      let rec ok = function
        | (a : Obs.Event.t) :: (b : Obs.Event.t) :: rest ->
          a.Obs.Event.seq < b.Obs.Event.seq
          && Int64.compare a.Obs.Event.t_ns b.Obs.Event.t_ns <= 0
          && ok (b :: rest)
        | _ -> true
      in
      ok events
    in
    let find_kind k =
      List.find_opt (fun (e : Obs.Event.t) -> e.Obs.Event.kind = k) events
    in
    let run_start = find_kind Obs.Event.Run_start in
    let run_end = find_kind Obs.Event.Run_end in
    let budget_events =
      List.filter
        (fun (e : Obs.Event.t) -> e.Obs.Event.kind = Obs.Event.Budget_exceeded)
        events
    in
    let sat_queries =
      List.length
        (List.filter
           (fun (e : Obs.Event.t) -> e.Obs.Event.kind = Obs.Event.Sat_query)
           events)
    in
    (* per-pass aggregation from Pass_end events, in first-seen order *)
    let pass_order = ref [] in
    let pass_tbl : (string, int * float * int option) Hashtbl.t =
      Hashtbl.create 8
    in
    List.iter
      (fun (e : Obs.Event.t) ->
        if e.Obs.Event.kind = Obs.Event.Pass_end then begin
          let name = e.Obs.Event.name in
          if not (Hashtbl.mem pass_tbl name) then
            pass_order := name :: !pass_order;
          let calls, secs, _ =
            Option.value
              (Hashtbl.find_opt pass_tbl name)
              ~default:(0, 0.0, None)
          in
          let s =
            Option.value
              (Obs.Json.mem_num "seconds" e.Obs.Event.data)
              ~default:0.0
          in
          Hashtbl.replace pass_tbl name
            (calls + 1, secs +. s, Obs.Json.mem_int "cells" e.Obs.Event.data)
        end)
      events;
    let passes =
      List.rev_map
        (fun name ->
          let calls, secs, cells = Hashtbl.find pass_tbl name in
          name, calls, secs, cells)
        !pass_order
    in
    let prov_events, prov_torn =
      match read_opt "provenance.jsonl" with
      | Some text ->
        let evs, t = Obs.Provenance.parse_jsonl_partial text in
        Some evs, t
      | None -> None, None
    in
    let flight =
      Option.bind (read_opt "flightrec.json") (fun text ->
          match Obs.Json.parse text with Ok j -> Some j | Error _ -> None)
    in
    let area_before =
      match Option.bind manifest (Obs.Json.mem_int "area_before") with
      | Some a -> Some a
      | None ->
        Option.bind run_start (fun (e : Obs.Event.t) ->
            Obs.Json.mem_int "area" e.Obs.Event.data)
    in
    let area_after =
      match Option.bind manifest (Obs.Json.mem_int "area_after") with
      | Some a -> Some a
      | None ->
        Option.bind run_end (fun (e : Obs.Event.t) ->
            Obs.Json.mem_int "area" e.Obs.Event.data)
    in
    let memo =
      Option.bind run_end (fun (e : Obs.Event.t) ->
          Obs.Json.member "memo" e.Obs.Event.data)
    in
    let session =
      Option.bind run_end (fun (e : Obs.Event.t) ->
          Obs.Json.member "session" e.Obs.Event.data)
    in
    (* only runs with the rung enabled carry a non-null analysis object *)
    let analysis =
      match
        Option.bind run_end (fun (e : Obs.Event.t) ->
            Obs.Json.member "analysis" e.Obs.Event.data)
      with
      | Some (Obs.Json.Obj _ as a) -> Some a
      | _ -> None
    in
    let status =
      Option.value
        (Option.bind manifest (Obs.Json.mem_str "status"))
        ~default:"unknown"
    in
    if json then begin
      let open Obs.Json in
      let opt_int = function Some i -> num_of_int i | None -> Null in
      print_endline
        (to_string ~pretty:true
           (Obj
              [
                "schema", Str "smartly-report-v1";
                "dir", Str dir;
                "status", Str status;
                "manifest", Option.value manifest ~default:Null;
                ( "events",
                  Obj
                    [
                      "count", num_of_int (List.length events);
                      "ordered", Bool ordered;
                      "torn_at", opt_int torn;
                    ] );
                ( "passes",
                  List
                    (List.map
                       (fun (name, calls, secs, cells) ->
                         Obj
                           [
                             "name", Str name;
                             "calls", num_of_int calls;
                             "seconds", Num secs;
                             "cells", opt_int cells;
                           ])
                       passes) );
                ( "area",
                  Obj
                    [ "before", opt_int area_before;
                      "after", opt_int area_after ] );
                "sat_queries", num_of_int sat_queries;
                "memo", Option.value memo ~default:Null;
                "session", Option.value session ~default:Null;
                "analysis", Option.value analysis ~default:Null;
                ( "budget",
                  List
                    (List.map
                       (fun (e : Obs.Event.t) -> e.Obs.Event.data)
                       budget_events) );
                "flight", Option.value flight ~default:Null;
                ( "provenance_summary",
                  match prov_events with
                  | Some evs -> Obs.Provenance.summary_json evs
                  | None -> Null );
                "provenance_torn_at", opt_int prov_torn;
              ]))
    end
    else begin
      Printf.printf "run %s\n"
        (Option.value
           (Option.bind manifest (Obs.Json.mem_str "run_id"))
           ~default:(Filename.basename dir));
      Printf.printf "  dir:    %s\n" dir;
      Printf.printf "  status: %s%s\n" status
        (if status = "running" then " (writer gone? ledger never finished)"
         else "");
      (match Option.bind manifest (Obs.Json.mem_list "argv") with
      | Some argv ->
        Printf.printf "  argv:   %s\n"
          (String.concat " " (List.filter_map Obs.Json.to_str argv))
      | None -> ());
      (match Option.bind manifest (Obs.Json.member "env") with
      | Some env ->
        Printf.printf "  env:    host=%s ocaml=%s git=%s\n"
          (Option.value (Obs.Json.mem_str "hostname" env) ~default:"?")
          (Option.value (Obs.Json.mem_str "ocaml_version" env) ~default:"?")
          (Option.value (Obs.Json.mem_str "git_rev" env) ~default:"?")
      | None -> ());
      Printf.printf "  events: %d%s%s\n" (List.length events)
        (if ordered then "" else "  [ORDERING VIOLATED]")
        (match torn with
        | Some off -> Printf.sprintf "  (torn tail at byte %d)" off
        | None -> "");
      (match area_before, area_after with
      | Some a0, Some a1 ->
        let red =
          if a0 = 0 then 0.0
          else 100.0 *. (1.0 -. (float_of_int a1 /. float_of_int a0))
        in
        Printf.printf "  area:   %d -> %d (%s)\n" a0 a1 (Report.Table.pct red)
      | _ -> ());
      if passes <> [] then begin
        let columns =
          Report.Table.
            [
              column "pass";
              column ~align:Right "calls";
              column ~align:Right "seconds";
              column ~align:Right "cells";
            ]
        in
        let rows =
          List.map
            (fun (name, calls, secs, cells) ->
              [
                name;
                Report.Table.int_ calls;
                Report.Table.secs secs;
                (match cells with
                | Some c -> Report.Table.int_ c
                | None -> "-");
              ])
            passes
        in
        Report.Table.print ~columns ~rows
      end;
      if sat_queries > 0 then
        Printf.printf "  sat queries: %d\n" sat_queries;
      (match memo with
      | Some m ->
        Printf.printf "  memo:   hits=%d misses=%d evictions=%d\n"
          (Option.value (Obs.Json.mem_int "hits" m) ~default:0)
          (Option.value (Obs.Json.mem_int "misses" m) ~default:0)
          (Option.value (Obs.Json.mem_int "evictions" m) ~default:0)
      | None -> ());
      (match analysis with
      | Some a ->
        Printf.printf
          "  analysis: hits=%d/%d forced=%d unreachable=%d sweeps=%d\n"
          (Option.value (Obs.Json.mem_int "hits" a) ~default:0)
          (Option.value (Obs.Json.mem_int "queries" a) ~default:0)
          (Option.value (Obs.Json.mem_int "forced" a) ~default:0)
          (Option.value (Obs.Json.mem_int "unreachable" a) ~default:0)
          (Option.value (Obs.Json.mem_int "sweeps" a) ~default:0)
      | None -> ());
      (match session with
      | Some s ->
        Printf.printf "  session: flushes=%d encodes=%d reuses=%d\n"
          (Option.value (Obs.Json.mem_int "flushes" s) ~default:0)
          (Option.value (Obs.Json.mem_int "cell_encodes" s) ~default:0)
          (Option.value (Obs.Json.mem_int "cell_reuses" s) ~default:0)
      | None -> ());
      (match budget_events with
      | [] -> Printf.printf "  budget: no overruns\n"
      | evs ->
        List.iter
          (fun (e : Obs.Event.t) ->
            let d = e.Obs.Event.data in
            Printf.printf
              "  budget: pass %s exceeded (%.1f ms elapsed%s, %d truncated)\n"
              e.Obs.Event.name
              (Option.value (Obs.Json.mem_num "elapsed_ms" d) ~default:0.0)
              (match Obs.Json.mem_int "budget_ms" d with
              | Some ms -> Printf.sprintf " of %d ms" ms
              | None -> "")
              (Option.value (Obs.Json.mem_int "truncated" d) ~default:0))
          evs);
      (match flight with
      | Some f ->
        Printf.printf
          "  flight recorder: reason=%s, in-flight pass=%s, %d of %d events \
           retained\n"
          (Option.value (Obs.Json.mem_str "reason" f) ~default:"?")
          (Option.value (Obs.Json.mem_str "current_pass" f) ~default:"none")
          (Option.value (Obs.Json.mem_int "retained" f) ~default:0)
          (Option.value (Obs.Json.mem_int "seen" f) ~default:0)
      | None -> ());
      (match prov_events with
      | Some evs ->
        let s = Obs.Provenance.summary_json evs in
        Printf.printf "  provenance: %d events, %d cells removed%s\n"
          (Option.value (Obs.Json.mem_int "events" s) ~default:0)
          (Option.value (Obs.Json.mem_int "cells_removed" s) ~default:0)
          (match prov_torn with
          | Some off -> Printf.sprintf "  (torn tail at byte %d)" off
          | None -> "")
      | None -> ())
    end
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a human (or, with --json, machine-readable) summary of a \
          run ledger: passes, timings, area trajectory, memo/session \
          counters, budget verdicts, flight-recorder dump.  Works from the \
          ledger files alone — including ledgers of runs that died \
          mid-pass, whose torn event stream is recovered and reported.")
    Term.(const run $ target_arg $ ledger_root_arg $ json_arg)

(* --- serve: batch optimization daemon --- *)

let serve_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at PATH instead of serving \
             stdio.  Connections are accepted and served one at a time; \
             the warm memo store is shared across all of them.  An \
             existing socket file at PATH is replaced.")
  in
  let budget_ms_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-ms" ] ~docv:"MS"
          ~doc:
            "Default per-pass wall budget (the watchdog of smartly opt's \
             --budget-ms) for jobs whose request carries no budget_ms \
             field.")
  in
  let run style socket jobs portfolio budget_ms =
    let load ~kind source =
      match kind with
      | "profile" | "verilog" | "auto" -> (
        try Ok (load_circuit ~style source) with
        | Failure msg -> Error msg
        | e -> Error (Printexc.to_string e))
      | k -> Error (Printf.sprintf "unknown kind %S" k)
    in
    let cfg =
      {
        Smartly.Config.default with
        jobs;
        portfolio;
        pass_budget_ms = budget_ms;
      }
    in
    let daemon = Smartly.Serve.create ~cfg ~load () in
    match socket with
    | None -> ignore (Smartly.Serve.run daemon stdin stdout)
    | Some path ->
      if Sys.file_exists path then Sys.remove path;
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      Printf.eprintf "serve: listening on %s\n%!" path;
      let rec accept_loop () =
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let shutdown =
          try Smartly.Serve.run daemon ic oc with _ -> false
        in
        (* ic and oc share the descriptor: closing ic closes both *)
        (try close_in ic with _ -> ());
        if not shutdown then accept_loop ()
      in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close sock with Unix.Unix_error _ -> ());
          try Sys.remove path with Sys_error _ -> ())
        accept_loop
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the batch optimization daemon: one JSON request per line \
          (op optimize/ping/stats/shutdown), one smartly-report-v1 \
          response per job, over stdio or a Unix socket.  A single warm \
          cross-job memo store persists for the daemon's lifetime, so \
          structurally recurring queries in a batch are answered from \
          cache instead of re-solved.")
    Term.(
      const run $ style_arg $ socket_arg $ jobs_arg $ portfolio_arg
      $ budget_ms_arg)

let main_cmd =
  let doc = "smaRTLy: RTL muxtree optimization (DAC'25 reproduction)" in
  Cmd.group
    (Cmd.info "smartly" ~version:"1.0.0" ~doc)
    [
      list_cmd; generate_cmd; stats_cmd; analyze_cmd; opt_cmd; cec_cmd;
      dump_cmd;
      write_verilog_cmd; explain_cmd; replay_cmd; validate_json_cmd; lint_cmd;
      bench_diff_cmd; report_cmd; serve_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
