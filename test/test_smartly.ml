(* Tests for the smaRTLy core: sub-graph extraction and pruning, inference
   rules, the sim/SAT engine, SAT-based redundancy elimination, and muxtree
   restructuring.  Every optimized circuit is CEC'd against the original. *)

open Netlist

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let expose c name (v : Bits.sigspec) =
  let y = Circuit.add_output c name ~width:(Bits.width v) in
  ignore
    (Circuit.add_cell c
       (Cell.Binary
          { op = Cell.Or; a = v; b = Bits.all_zero ~width:(Bits.width v);
            y = Circuit.sig_of_wire y }))

(* --- inference rules (Table I and friends) --- *)

let infer_1bit build exp_value =
  (* build: c -> (cells-built target bit, known setup) *)
  let c = Circuit.create "inf" in
  let target, knowns = build c in
  let k : Smartly.Inference.known = Bits.Bit_tbl.create 8 in
  List.iter (fun (b, v) -> ignore (Smartly.Inference.set k b v)) knowns;
  ignore (Smartly.Inference.propagate c k (Circuit.cell_ids c));
  check_bool "inferred" true (Smartly.Inference.read k target = exp_value)

let test_or_rules () =
  (* a=1 -> a|b = 1 *)
  infer_1bit
    (fun c ->
      let a = Circuit.add_input c "a" ~width:1 in
      let b = Circuit.add_input c "b" ~width:1 in
      let y = Circuit.mk_or c (Circuit.bit_of_wire a) (Circuit.bit_of_wire b) in
      y, [ Circuit.bit_of_wire a, true ])
    (Some true);
  (* a|b=0 -> a = 0 *)
  infer_1bit
    (fun c ->
      let a = Circuit.add_input c "a" ~width:1 in
      let b = Circuit.add_input c "b" ~width:1 in
      let y = Circuit.mk_or c (Circuit.bit_of_wire a) (Circuit.bit_of_wire b) in
      Circuit.bit_of_wire a, [ y, false ])
    (Some false);
  (* a|b=1, a=0 -> b = 1 *)
  infer_1bit
    (fun c ->
      let a = Circuit.add_input c "a" ~width:1 in
      let b = Circuit.add_input c "b" ~width:1 in
      let y = Circuit.mk_or c (Circuit.bit_of_wire a) (Circuit.bit_of_wire b) in
      Circuit.bit_of_wire b, [ y, true; Circuit.bit_of_wire a, false ])
    (Some true)

let test_and_not_rules () =
  infer_1bit
    (fun c ->
      let a = Circuit.add_input c "a" ~width:1 in
      let b = Circuit.add_input c "b" ~width:1 in
      let y = Circuit.mk_and c (Circuit.bit_of_wire a) (Circuit.bit_of_wire b) in
      Circuit.bit_of_wire b, [ y, true ])
    (Some true);
  infer_1bit
    (fun c ->
      let a = Circuit.add_input c "a" ~width:1 in
      let y = Circuit.mk_not c (Circuit.bit_of_wire a) in
      y, [ Circuit.bit_of_wire a, true ])
    (Some false)

let test_eq_rules () =
  (* (a == 5) = 1 implies every bit of a *)
  infer_1bit
    (fun c ->
      let a = Circuit.add_input c "a" ~width:3 in
      let e = Circuit.mk_eq_const c (Circuit.sig_of_wire a) 5 in
      Bits.Of_wire (a.Circuit.wire_id, 1), [ e, true ])
    (Some false);
  infer_1bit
    (fun c ->
      let a = Circuit.add_input c "a" ~width:3 in
      let e = Circuit.mk_eq_const c (Circuit.sig_of_wire a) 5 in
      Bits.Of_wire (a.Circuit.wire_id, 2), [ e, true ])
    (Some true)

let test_mux_backward () =
  (* y known and y <> a forces s=1 *)
  infer_1bit
    (fun c ->
      let s = Circuit.add_input c "s" ~width:1 in
      let y =
        Circuit.mk_mux c ~a:[| Bits.C0 |] ~b:[| Bits.C1 |]
          ~s:(Circuit.bit_of_wire s)
      in
      Circuit.bit_of_wire s, [ y.(0), true ])
    (Some true)

let test_xor_reduce_rules () =
  (* xor: two of three known determine the third *)
  infer_1bit
    (fun c ->
      let a = Circuit.add_input c "a" ~width:1 in
      let b = Circuit.add_input c "b" ~width:1 in
      let y = Circuit.mk_xor c (Circuit.bit_of_wire a) (Circuit.bit_of_wire b) in
      Circuit.bit_of_wire b, [ y, true; Circuit.bit_of_wire a, false ])
    (Some true);
  (* reduce_or = 0 forces every input low *)
  infer_1bit
    (fun c ->
      let a = Circuit.add_input c "a" ~width:3 in
      let y = (Circuit.mk_unary c Cell.Reduce_or (Circuit.sig_of_wire a)).(0) in
      Bits.Of_wire (a.Circuit.wire_id, 1), [ y, false ])
    (Some false);
  (* reduce_and = 1 forces every input high *)
  infer_1bit
    (fun c ->
      let a = Circuit.add_input c "a" ~width:3 in
      let y = (Circuit.mk_unary c Cell.Reduce_and (Circuit.sig_of_wire a)).(0) in
      Bits.Of_wire (a.Circuit.wire_id, 2), [ y, true ])
    (Some true);
  (* reduce_or = 1 with all but one input known low forces the last high *)
  infer_1bit
    (fun c ->
      let a = Circuit.add_input c "a" ~width:3 in
      let y = (Circuit.mk_unary c Cell.Reduce_or (Circuit.sig_of_wire a)).(0) in
      ( Bits.Of_wire (a.Circuit.wire_id, 2),
        [
          y, true;
          Bits.Of_wire (a.Circuit.wire_id, 0), false;
          Bits.Of_wire (a.Circuit.wire_id, 1), false;
        ] ))
    (Some true)

let test_pmux_rules () =
  (* all selects known false: output links to the default *)
  infer_1bit
    (fun c ->
      let s = Circuit.add_input c "s" ~width:2 in
      let d = Circuit.add_input c "d" ~width:1 in
      let p =
        Circuit.mk_pmux c ~a:(Circuit.sig_of_wire d)
          ~b:(Bits.of_int ~width:2 3)
          ~s:(Circuit.sig_of_wire s)
      in
      ( p.(0),
        [
          Bits.Of_wire (s.Circuit.wire_id, 0), false;
          Bits.Of_wire (s.Circuit.wire_id, 1), false;
          Circuit.bit_of_wire d, true;
        ] ))
    (Some true);
  (* first select known true: output links to part 0 (constant 1 here) *)
  infer_1bit
    (fun c ->
      let s = Circuit.add_input c "s" ~width:2 in
      let d = Circuit.add_input c "d" ~width:1 in
      let p =
        Circuit.mk_pmux c ~a:(Circuit.sig_of_wire d)
          ~b:(Bits.of_int ~width:2 1)
          ~s:(Circuit.sig_of_wire s)
      in
      p.(0), [ Bits.Of_wire (s.Circuit.wire_id, 0), true ])
    (Some true)

let test_contradiction () =
  let c = Circuit.create "contra" in
  let a = Circuit.add_input c "a" ~width:1 in
  let b = Circuit.add_input c "b" ~width:1 in
  let y = Circuit.mk_and c (Circuit.bit_of_wire a) (Circuit.bit_of_wire b) in
  let k : Smartly.Inference.known = Bits.Bit_tbl.create 8 in
  ignore (Smartly.Inference.set k y true);
  ignore (Smartly.Inference.set k (Circuit.bit_of_wire a) false);
  check_bool "contradiction raised" true
    (match Smartly.Inference.propagate c k (Circuit.cell_ids c) with
    | _ -> false
    | exception Smartly.Inference.Contradiction -> true)

(* --- sub-graph extraction and Theorem II.1 pruning --- *)

let test_subgraph_cone_depth () =
  (* chain of 5 nots; distance k=3 catches only 3 of them *)
  let c = Circuit.create "chain" in
  let a = Circuit.add_input c "a" ~width:1 in
  let rec chain b n = if n = 0 then b else chain (Circuit.mk_not c b) (n - 1) in
  let top = chain (Circuit.bit_of_wire a) 5 in
  let index = Index.build c in
  let sg = Smartly.Subgraph.create c index in
  Smartly.Subgraph.add_cone sg ~k:3 top;
  check_int "3 cells" 3 (Smartly.Subgraph.size sg);
  let sg5 = Smartly.Subgraph.create c index in
  Smartly.Subgraph.add_cone sg5 ~k:10 top;
  check_int "all 5" 5 (Smartly.Subgraph.size sg5)

let test_subgraph_prune_unrelated () =
  (* two disconnected cones: pruning with relevance in one drops the other *)
  let c = Circuit.create "two" in
  let a = Circuit.add_input c "a" ~width:1 in
  let b = Circuit.add_input c "b" ~width:1 in
  let x = Circuit.add_input c "x" ~width:1 in
  let y = Circuit.add_input c "y" ~width:1 in
  let t1 = Circuit.mk_and c (Circuit.bit_of_wire a) (Circuit.bit_of_wire b) in
  let t2 = Circuit.mk_or c (Circuit.bit_of_wire x) (Circuit.bit_of_wire y) in
  let index = Index.build c in
  let sg = Smartly.Subgraph.create c index in
  Smartly.Subgraph.add_cone sg ~k:4 t1;
  Smartly.Subgraph.add_cone sg ~k:4 t2;
  check_int "both in" 2 (Smartly.Subgraph.size sg);
  let v = Smartly.Subgraph.prune sg ~relevant:[ t1 ] in
  check_int "kept 1" 1 v.Smartly.Subgraph.kept;
  check_int "dropped 1" 1 v.Smartly.Subgraph.dropped;
  (* related signals stay together *)
  let v2 = Smartly.Subgraph.prune sg ~relevant:[ t1; Circuit.bit_of_wire x ] in
  check_int "kept both" 2 v2.Smartly.Subgraph.kept

let test_subgraph_no_common_descendant_link () =
  (* s and t only share a *descendant*: they must land in different groups *)
  let c = Circuit.create "desc" in
  let s = Circuit.add_input c "s" ~width:1 in
  let t = Circuit.add_input c "t" ~width:1 in
  let join = Circuit.mk_and c (Circuit.bit_of_wire s) (Circuit.bit_of_wire t) in
  let s2 = Circuit.mk_not c (Circuit.bit_of_wire s) in
  let t2 = Circuit.mk_not c (Circuit.bit_of_wire t) in
  ignore join;
  let index = Index.build c in
  let sg = Smartly.Subgraph.create c index in
  Smartly.Subgraph.add_cone sg ~k:4 s2;
  Smartly.Subgraph.add_cone sg ~k:4 t2;
  (* note: the and-join is NOT in the subgraph (not in either cone) *)
  let v = Smartly.Subgraph.prune sg ~relevant:[ s2 ] in
  check_int "t's not is pruned" 1 v.Smartly.Subgraph.kept

(* --- engine --- *)

let engine_determine ?(cfg = Smartly.Config.default) c knowns target =
  let index = Index.build c in
  let k : Smartly.Inference.known = Bits.Bit_tbl.create 8 in
  List.iter (fun (b, v) -> ignore (Smartly.Inference.set k b v)) knowns;
  let stats = Smartly.Engine.fresh_stats () in
  Smartly.Engine.determine cfg stats c index k ~target

let test_engine_fig3 () =
  (* target = s|r under s=1: forced true (paper Fig. 3) *)
  let c = Circuit.create "fig3" in
  let s = Circuit.add_input c "s" ~width:1 in
  let r = Circuit.add_input c "r" ~width:1 in
  let y = Circuit.mk_or c (Circuit.bit_of_wire s) (Circuit.bit_of_wire r) in
  check_bool "forced" true
    (engine_determine c [ Circuit.bit_of_wire s, true ] y
    = Smartly.Engine.Forced true)

let test_engine_free () =
  let c = Circuit.create "free" in
  let s = Circuit.add_input c "s" ~width:1 in
  let r = Circuit.add_input c "r" ~width:1 in
  let y = Circuit.mk_or c (Circuit.bit_of_wire s) (Circuit.bit_of_wire r) in
  check_bool "free" true
    (engine_determine c [ Circuit.bit_of_wire s, false ] y
    = Smartly.Engine.Free)

let test_engine_unreachable () =
  (* know both x and ~x: contradiction -> dead path *)
  let c = Circuit.create "dead" in
  let x = Circuit.add_input c "x" ~width:1 in
  let nx = Circuit.mk_not c (Circuit.bit_of_wire x) in
  let y = Circuit.mk_or c (Circuit.bit_of_wire x) nx in
  check_bool "unreachable" true
    (engine_determine c [ Circuit.bit_of_wire x, true; nx, true ] y
    = Smartly.Engine.Unreachable)

(* a parity cone the inference rules cannot crack: needs sim or SAT *)
let parity_circuit n =
  let c = Circuit.create "parity" in
  let ins = List.init n (fun i -> Circuit.add_input c (Printf.sprintf "i%d" i) ~width:1) in
  let xors =
    List.fold_left
      (fun acc w -> Circuit.mk_xor c acc (Circuit.bit_of_wire w))
      Bits.C0 ins
  in
  (* target = parity | ~parity ... make something forced but non-trivial:
     y = xors ^ xors = 0 structured as two separate cones *)
  let y = Circuit.mk_xor c xors xors in
  c, y

let test_engine_simulation_path () =
  (* few inputs: exhaustive simulation proves y == 0 with no knowns...
     engine requires known facts, so give an irrelevant one *)
  let c, y = parity_circuit 4 in
  let aux = Circuit.add_input c "aux" ~width:1 in
  let cfg = { Smartly.Config.default with Smartly.Config.sat_input_threshold = 0 } in
  (* sat disabled by threshold: must go through simulation *)
  check_bool "sim forced false" true
    (engine_determine ~cfg c [ Circuit.bit_of_wire aux, true ] y
    = Smartly.Engine.Forced false)

let test_engine_sat_path () =
  let c, y = parity_circuit 4 in
  let aux = Circuit.add_input c "aux" ~width:1 in
  let cfg = { Smartly.Config.default with Smartly.Config.sim_input_threshold = 0 } in
  (* sim disabled: must go through SAT *)
  check_bool "sat forced false" true
    (engine_determine ~cfg c [ Circuit.bit_of_wire aux, true ] y
    = Smartly.Engine.Forced false)

let test_engine_forgone () =
  let c, y = parity_circuit 6 in
  let aux = Circuit.add_input c "aux" ~width:1 in
  let cfg =
    { Smartly.Config.default with
      Smartly.Config.sim_input_threshold = 0;
      Smartly.Config.sat_input_threshold = 0 }
  in
  check_bool "forgone -> unknown" true
    (engine_determine ~cfg c [ Circuit.bit_of_wire aux, true ] y
    = Smartly.Engine.Unknown)

(* --- sat_elim pass --- *)

let fig3_circuit () =
  let c = Circuit.create "fig3" in
  let s = Circuit.add_input c "S" ~width:1 in
  let r = Circuit.add_input c "R" ~width:1 in
  let a = Circuit.add_input c "A" ~width:4 in
  let b = Circuit.add_input c "B" ~width:4 in
  let cc = Circuit.add_input c "C" ~width:4 in
  let sb = Circuit.bit_of_wire s and rb = Circuit.bit_of_wire r in
  let s_or_r = Circuit.mk_or c sb rb in
  let inner =
    Circuit.mk_mux c ~a:(Circuit.sig_of_wire b) ~b:(Circuit.sig_of_wire a)
      ~s:s_or_r
  in
  let outer = Circuit.mk_mux c ~a:(Circuit.sig_of_wire cc) ~b:inner ~s:sb in
  expose c "Y" outer;
  c

let test_sat_elim_fig3 () =
  let c = fig3_circuit () in
  let orig = Circuit.copy c in
  let r = Smartly.Sat_elim.run_once Smartly.Config.default c in
  check_bool "bypassed inner mux" true (r.Smartly.Sat_elim.muxes_bypassed >= 1);
  ignore (Rtl_opt.Opt_clean.run c);
  let st = Stats.of_circuit c in
  check_int "one mux left" 1 st.Stats.muxes;
  check_bool "equiv" true (Equiv.is_equivalent orig c)

let test_sat_elim_baseline_cannot () =
  let c = fig3_circuit () in
  ignore (Rtl_opt.Flow.baseline c);
  let st = Stats.of_circuit c in
  check_int "yosys keeps both muxes" 2 st.Stats.muxes

let test_sat_elim_contradicted_inner () =
  (* inner control = !S under branch S=1: forced false *)
  let c = Circuit.create "neg" in
  let s = Circuit.add_input c "S" ~width:1 in
  let a = Circuit.add_input c "A" ~width:2 in
  let b = Circuit.add_input c "B" ~width:2 in
  let cc = Circuit.add_input c "C" ~width:2 in
  let sb = Circuit.bit_of_wire s in
  let ns = Circuit.mk_not c sb in
  let inner =
    Circuit.mk_mux c ~a:(Circuit.sig_of_wire b) ~b:(Circuit.sig_of_wire a) ~s:ns
  in
  let outer = Circuit.mk_mux c ~a:(Circuit.sig_of_wire cc) ~b:inner ~s:sb in
  expose c "Y" outer;
  let orig = Circuit.copy c in
  let r = Smartly.Sat_elim.run_once Smartly.Config.default c in
  check_bool "bypassed" true (r.Smartly.Sat_elim.muxes_bypassed >= 1);
  check_bool "equiv" true (Equiv.is_equivalent orig c)

(* --- restructure --- *)

let case_chain_circuit ?(width = 8) () =
  Hdl.Elaborate.elaborate_string ~style:`Chain
    (Printf.sprintf
       {|
module m(input [1:0] s, input [%d:0] p0, input [%d:0] p1,
         input [%d:0] p2, input [%d:0] p3, output reg [%d:0] y);
  always @* begin
    case (s)
      2'b00: y = p0;
      2'b01: y = p1;
      2'b10: y = p2;
      default: y = p3;
    endcase
  end
endmodule
|}
       (width - 1) (width - 1) (width - 1) (width - 1) (width - 1))

let test_restructure_listing1 () =
  let c = case_chain_circuit () in
  let orig = Circuit.copy c in
  ignore (Rtl_opt.Opt_expr.run c);
  let r = Smartly.Restructure.run_once c in
  check_int "one tree rebuilt" 1 r.Smartly.Restructure.rebuilt;
  (* paper Fig. 7: exactly 3 muxes, controlled by s bits directly *)
  check_int "3 muxes" 3 r.Smartly.Restructure.muxes_after;
  ignore (Rtl_opt.Opt_clean.run c);
  let st = Stats.of_circuit c in
  check_int "eq gates gone" 0 st.Stats.eqs;
  check_bool "equiv" true (Equiv.is_equivalent orig c)

let test_restructure_listing2_good_assignment () =
  (* paper: good assignment = 3 muxes, poor = 7 *)
  let c =
    Hdl.Elaborate.elaborate_string ~style:`Chain
      {|
module m(input [2:0] s, input [7:0] p0, input [7:0] p1,
         input [7:0] p2, input [7:0] p3, output reg [7:0] y);
  always @* begin
    casez (s)
      3'b1zz: y = p0;
      3'b01z: y = p1;
      3'b001: y = p2;
      default: y = p3;
    endcase
  end
endmodule
|}
  in
  let orig = Circuit.copy c in
  ignore (Rtl_opt.Opt_expr.run c);
  let r = Smartly.Restructure.run_once c in
  check_int "rebuilt" 1 r.Smartly.Restructure.rebuilt;
  check_int "3 muxes (greedy = optimal)" 3 r.Smartly.Restructure.muxes_after;
  ignore (Rtl_opt.Opt_clean.run c);
  check_bool "equiv" true (Equiv.is_equivalent orig c)

let test_restructure_skips_when_unprofitable () =
  (* eq outputs also feed other logic: removal impossible, 1-bit data;
     rebuilding would not pay *)
  let c = Circuit.create "shared_eq" in
  let s = Circuit.add_input c "s" ~width:2 in
  let p = Circuit.add_input c "p" ~width:4 in
  let pb = Circuit.sig_of_wire p in
  let e0 = Circuit.mk_eq_const c (Circuit.sig_of_wire s) 0 in
  let e1 = Circuit.mk_eq_const c (Circuit.sig_of_wire s) 1 in
  let m1 = Circuit.mk_mux c ~a:[| pb.(0) |] ~b:[| pb.(1) |] ~s:e1 in
  let m0 = Circuit.mk_mux c ~a:m1 ~b:[| pb.(2) |] ~s:e0 in
  expose c "Y" m0;
  (* keep the eqs alive elsewhere *)
  expose c "E" [| Circuit.mk_and c e0 e1 |];
  let orig = Circuit.copy c in
  let r = Smartly.Restructure.run_once c in
  check_int "no rebuild" 0 r.Smartly.Restructure.rebuilt;
  check_bool "equiv (untouched)" true (Equiv.is_equivalent orig c)

let test_restructure_pmux_tree () =
  let c =
    Hdl.Elaborate.elaborate_string ~style:`Pmux
      {|
module m(input [2:0] s, input [7:0] p0, input [7:0] p1, output reg [7:0] y);
  always @* begin
    case (s)
      3'd0: y = p0;
      3'd1: y = p1;
      3'd2: y = p0;
      3'd3: y = p1;
      3'd4: y = p0;
      default: y = p1;
    endcase
  end
endmodule
|}
  in
  let orig = Circuit.copy c in
  ignore (Rtl_opt.Opt_expr.run c);
  let r = Smartly.Restructure.run_once c in
  check_int "rebuilt" 1 r.Smartly.Restructure.rebuilt;
  ignore (Rtl_opt.Opt_clean.run c);
  check_bool "equiv" true (Equiv.is_equivalent orig c);
  (* with only 2 distinct leaves alternating on s[0]... the tree is tiny *)
  let st = Stats.of_circuit c in
  check_bool "small tree" true (st.Stats.muxes <= 3)

(* --- full driver on generated workloads: equivalence property --- *)

let prop_smartly_preserves =
  QCheck.Test.make ~count:10 ~name:"smartly flow preserves semantics"
    QCheck.(int_bound 10000)
    (fun seed ->
      let p =
        {
          Workloads.Profiles.name = "prop";
          seed;
          style = (match seed mod 3 with 0 -> `Chain | 1 -> `Balanced | _ -> `Pmux);
          repeat = 2;
          mix =
            [
              Workloads.Profiles.Case
                { sel_width = 3; items = 6; width = 4; distinct = 2 };
              Workloads.Profiles.Correlated_ifs { depth = 2; width = 4 };
              Workloads.Profiles.Crossbar_port { n_grants = 3; width = 4 };
              Workloads.Profiles.Datapath { width = 4; ops = 2 };
            ];
          register_fraction = 5;
        }
      in
      let c = Workloads.Profiles.circuit p in
      let orig = Circuit.copy c in
      ignore (Smartly.Driver.smartly c);
      Validate.is_well_formed c && Equiv.is_equivalent orig c)

let prop_smartly_never_worse =
  QCheck.Test.make ~count:8 ~name:"smartly area <= yosys area"
    QCheck.(int_bound 10000)
    (fun seed ->
      let p =
        {
          Workloads.Profiles.name = "prop2";
          seed = seed + 17;
          style = `Chain;
          repeat = 2;
          mix =
            [
              Workloads.Profiles.Case
                { sel_width = 4; items = 12; width = 6; distinct = 3 };
              Workloads.Profiles.Correlated_ifs { depth = 3; width = 6 };
              Workloads.Profiles.Redundant_nest { width = 6 };
            ];
          register_fraction = 0;
        }
      in
      let c = Workloads.Profiles.circuit p in
      let cy = Circuit.copy c in
      ignore (Smartly.Driver.yosys cy);
      ignore (Smartly.Driver.smartly c);
      Aiger.Aigmap.aig_area c <= Aiger.Aigmap.aig_area cy)

let () =
  Alcotest.run "smartly"
    [
      ( "inference",
        [
          Alcotest.test_case "or rules (Table I)" `Quick test_or_rules;
          Alcotest.test_case "and/not rules" `Quick test_and_not_rules;
          Alcotest.test_case "eq rules" `Quick test_eq_rules;
          Alcotest.test_case "mux backward" `Quick test_mux_backward;
          Alcotest.test_case "xor/reduce rules" `Quick test_xor_reduce_rules;
          Alcotest.test_case "pmux rules" `Quick test_pmux_rules;
          Alcotest.test_case "contradiction" `Quick test_contradiction;
        ] );
      ( "subgraph",
        [
          Alcotest.test_case "cone depth" `Quick test_subgraph_cone_depth;
          Alcotest.test_case "prune unrelated" `Quick test_subgraph_prune_unrelated;
          Alcotest.test_case "no common-descendant link" `Quick
            test_subgraph_no_common_descendant_link;
        ] );
      ( "engine",
        [
          Alcotest.test_case "fig3 forced" `Quick test_engine_fig3;
          Alcotest.test_case "free" `Quick test_engine_free;
          Alcotest.test_case "unreachable" `Quick test_engine_unreachable;
          Alcotest.test_case "simulation path" `Quick test_engine_simulation_path;
          Alcotest.test_case "sat path" `Quick test_engine_sat_path;
          Alcotest.test_case "forgone" `Quick test_engine_forgone;
        ] );
      ( "sat_elim",
        [
          Alcotest.test_case "fig3 eliminated" `Quick test_sat_elim_fig3;
          Alcotest.test_case "baseline cannot" `Quick test_sat_elim_baseline_cannot;
          Alcotest.test_case "negated control" `Quick test_sat_elim_contradicted_inner;
        ] );
      ( "restructure",
        [
          Alcotest.test_case "listing1 -> 3 muxes" `Quick test_restructure_listing1;
          Alcotest.test_case "listing2 greedy" `Quick
            test_restructure_listing2_good_assignment;
          Alcotest.test_case "unprofitable skipped" `Quick
            test_restructure_skips_when_unprofitable;
          Alcotest.test_case "pmux tree" `Quick test_restructure_pmux_tree;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_smartly_preserves; prop_smartly_never_worse ] );
    ]
