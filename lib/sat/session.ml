(* A persistent incremental SAT session serving many redundancy queries
   over one circuit.

   One [Tseitin.t] (and thus one CDCL solver) lives across queries: the
   variable map keyed by netlist bit is stable, cone clauses are added
   lazily the first time a cell is needed, and learned clauses survive
   from query to query.  Each cell's clauses are guarded by a dedicated
   activation literal [g] (every clause gets [¬g] appended), so a query
   activates exactly its sub-graph's cells by assuming their [g]s:

   - the guarded database restricted to the active guards is exactly
     equisatisfiable with a fresh encoding of the active cells — inactive
     cells' clauses are satisfied by leaving their guards false, and
     learned clauses are resolution consequences that retain the [¬g]
     literals of every group they touched;
   - therefore verdicts are identical to the fresh-solver path (the
     differential harness in test/test_sat_memo.ml checks this), while
     repeated queries pay no re-encoding and benefit from learned clauses.

   The session watches for staleness: optimization passes mutate cells in
   place ([Circuit.replace_cell]), and clauses cannot be retracted, so if
   a prepared cell no longer structurally matches its encoded form the
   whole session is flushed (fresh solver, empty maps) and re-encoded.
   Muxtree rewrites touch few distinct cells between queries, so flushes
   stay rare in practice; the count is exported as a metric. *)

open Netlist

type entry = {
  guard : Lit.t;
  cell : Cell.t;
  vars : int list;
      (* every solver variable occurring in this group's clauses: the
         fresh internals allocated while encoding plus the cell's port
         bits (which may predate this group) — the union over a query's
         active groups is the [relevant] set handed to the solver for
         partial-model early termination *)
}

type t = {
  mutable enc : Tseitin.t;
  mutable cells : (int, entry) Hashtbl.t; (* cell id -> guarded encoding *)
  mutable flushes : int;
}

let m_flushes = Obs.Metrics.counter "sat_session.flushes"
let m_cell_encodes = Obs.Metrics.counter "sat_session.cell_encodes"
let m_cell_reuses = Obs.Metrics.counter "sat_session.cell_reuses"

let create () =
  { enc = Tseitin.create (); cells = Hashtbl.create 128; flushes = 0 }

let encoder t = t.enc
let flushes t = t.flushes
let encoded_cells t = Hashtbl.length t.cells

let flush t =
  t.enc <- Tseitin.create ();
  t.cells <- Hashtbl.create 128;
  t.flushes <- t.flushes + 1;
  Obs.Metrics.incr m_flushes

(* Cells are compared structurally: [replace_cell] installs a new record,
   so physical equality fails exactly when something might have changed. *)
let cell_current (e : entry) (cell : Cell.t) = e.cell == cell || e.cell = cell

let encode_one t (cell : Cell.t) id : entry =
  let n0 = Solver.num_vars (t.enc).Tseitin.solver in
  let g = Tseitin.fresh_lit t.enc in
  t.enc.Tseitin.clause_guard <- Some (Lit.negate g);
  Fun.protect
    ~finally:(fun () -> t.enc.Tseitin.clause_guard <- None)
    (fun () -> Tseitin.encode_cell t.enc cell);
  let n1 = Solver.num_vars (t.enc).Tseitin.solver in
  (* fresh vars of the group (guard + Tseitin internals + any port bit
     first seen here), then the port bits that already had vars *)
  let vars = ref [] in
  for v = n1 - 1 downto n0 do
    vars := v :: !vars
  done;
  let add_bit b =
    match b with
    | Bits.C0 | Bits.C1 | Bits.Cx -> ()
    | Bits.Of_wire _ ->
      let v = Lit.var (Tseitin.lit_of_bit t.enc b) in
      if v < n0 then vars := v :: !vars
  in
  List.iter (fun s -> Array.iter add_bit s) (Cell.inputs cell);
  List.iter add_bit (Cell.output_bits cell);
  let e = { guard = g; cell; vars = !vars } in
  Hashtbl.replace t.cells id e;
  Obs.Metrics.incr m_cell_encodes;
  e

(* Ensure every cell of [ids] is encoded and current; the returned guard
   literals must be assumed by the query.  Active cells contribute their
   guard positively; every OTHER encoded group contributes its guard
   negated.  Pinning the inactive guards false is not needed for
   correctness (their groups are satisfiable by leaving the guards free)
   but is essential for speed: it gives every inactive clause a true
   watched literal, so the accumulated database costs the search nothing
   beyond one O(1) assumption per group.  Also returned: the union of the
   active groups' variables, to be passed as the solver's [relevant] set —
   with the inactive groups pinned off, any conflict-free assignment of
   exactly those variables extends to a total model, so the solver may
   stop deciding there instead of assigning the whole accumulated
   database.  A stale cell flushes the session first (all guards are
   re-allocated). *)
let prepare t (c : Circuit.t) (ids : int list) : Lit.t list * int list =
  let stale =
    List.exists
      (fun id ->
        match Hashtbl.find_opt t.cells id with
        | Some e -> not (cell_current e (Circuit.cell c id))
        | None -> false)
      ids
  in
  if stale then flush t;
  let entries =
    List.map
      (fun id ->
        match Hashtbl.find_opt t.cells id with
        | Some e ->
          Obs.Metrics.incr m_cell_reuses;
          e
        | None -> encode_one t (Circuit.cell c id) id)
      ids
  in
  let active = List.map (fun e -> e.guard) entries in
  let active_ids = Hashtbl.create (List.length ids) in
  List.iter (fun id -> Hashtbl.replace active_ids id ()) ids;
  let inactive =
    Hashtbl.fold
      (fun id e acc ->
        if Hashtbl.mem active_ids id then acc else Lit.negate e.guard :: acc)
      t.cells []
  in
  let relevant =
    List.sort_uniq compare (List.concat_map (fun e -> e.vars) entries)
  in
  (active @ inactive, relevant)
