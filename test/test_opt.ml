(* Tests for the baseline passes: opt_expr, opt_merge, opt_muxtree,
   opt_clean, and the combined flow.  Every transformation is checked for
   functional equivalence via CEC. *)

open Netlist

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* drive a value into an output port *)
let expose c name (v : Bits.sigspec) =
  let y = Circuit.add_output c name ~width:(Bits.width v) in
  ignore
    (Circuit.add_cell c
       (Cell.Binary
          { op = Cell.Or; a = v; b = Bits.all_zero ~width:(Bits.width v);
            y = Circuit.sig_of_wire y }))

let preserved name f =
  Alcotest.test_case name `Quick (fun () ->
      let c = f () in
      let orig = Circuit.copy c in
      ignore (Rtl_opt.Flow.baseline c);
      check_bool "well-formed" true (Validate.is_well_formed c);
      check_bool "equivalent" true (Equiv.is_equivalent orig c))

(* --- opt_expr --- *)

let test_const_fold () =
  let c = Circuit.create "cf" in
  let a = Circuit.add_input c "a" ~width:4 in
  (* (a & 0) | 5 = 5 *)
  let z =
    Circuit.mk_binary c Cell.And (Circuit.sig_of_wire a)
      (Bits.all_zero ~width:4)
  in
  let v = Circuit.mk_binary c Cell.Or z (Bits.of_int ~width:4 5) in
  expose c "y" v;
  ignore (Rtl_opt.Opt_expr.run c);
  ignore (Rtl_opt.Opt_clean.run c);
  (* only the port buffer remains, now driven by the constant *)
  check_int "one buffer cell" 1 (Circuit.cell_count c);
  let env = Rtl_sim.Eval.run c ~inputs:[] () in
  let y = List.hd (Circuit.outputs c) in
  check_int "value" 5 (Option.get (Rtl_sim.Eval.read_int env (Circuit.sig_of_wire y)))

let test_mux_const_select () =
  let c = Circuit.create "ms" in
  let a = Circuit.add_input c "a" ~width:4 in
  let b = Circuit.add_input c "b" ~width:4 in
  let v =
    Circuit.mk_mux c ~a:(Circuit.sig_of_wire a) ~b:(Circuit.sig_of_wire b)
      ~s:Bits.C1
  in
  expose c "y" v;
  ignore (Rtl_opt.Opt_expr.run c);
  ignore (Rtl_opt.Opt_clean.run c);
  check_int "mux gone" 1 (Circuit.cell_count c)

let test_mux_equal_branches () =
  let c = Circuit.create "mb" in
  let a = Circuit.add_input c "a" ~width:4 in
  let s = Circuit.add_input c "s" ~width:1 in
  let v =
    Circuit.mk_mux c ~a:(Circuit.sig_of_wire a) ~b:(Circuit.sig_of_wire a)
      ~s:(Circuit.bit_of_wire s)
  in
  expose c "y" v;
  ignore (Rtl_opt.Opt_expr.run c);
  ignore (Rtl_opt.Opt_clean.run c);
  check_int "mux folded" 1 (Circuit.cell_count c)

let test_eq_same_signal () =
  let c = Circuit.create "eq" in
  let a = Circuit.add_input c "a" ~width:4 in
  let v = Circuit.mk_binary c Cell.Eq (Circuit.sig_of_wire a) (Circuit.sig_of_wire a) in
  expose c "y" v;
  ignore (Rtl_opt.Opt_expr.run c);
  ignore (Rtl_opt.Opt_clean.run c);
  let env = Rtl_sim.Eval.run c ~inputs:[] () in
  let y = List.hd (Circuit.outputs c) in
  check_int "a==a is 1" 1
    (Option.get (Rtl_sim.Eval.read_int env (Circuit.sig_of_wire y)))

(* --- opt_merge --- *)

let test_merge_duplicates () =
  let c = Circuit.create "dup" in
  let a = Circuit.add_input c "a" ~width:4 in
  let b = Circuit.add_input c "b" ~width:4 in
  let x1 = Circuit.mk_binary c Cell.And (Circuit.sig_of_wire a) (Circuit.sig_of_wire b) in
  let x2 = Circuit.mk_binary c Cell.And (Circuit.sig_of_wire a) (Circuit.sig_of_wire b) in
  (* commuted operands also merge *)
  let x3 = Circuit.mk_binary c Cell.And (Circuit.sig_of_wire b) (Circuit.sig_of_wire a) in
  let v1 = Circuit.mk_binary c Cell.Xor x1 x2 in
  let v2 = Circuit.mk_binary c Cell.Xor v1 x3 in
  expose c "y" v2;
  let merged = Rtl_opt.Opt_merge.run c in
  check_bool "merged at least 2" true (merged >= 2)

(* --- opt_reduce --- *)

let test_reduce_pmux_merge () =
  (* two consecutive parts with identical data merge; trailing default
     parts fold away *)
  let c = Circuit.create "pm" in
  let s = Circuit.add_input c "s" ~width:4 in
  let d0 = Circuit.add_input c "d0" ~width:2 in
  let d1 = Circuit.add_input c "d1" ~width:2 in
  let def = Circuit.add_input c "def" ~width:2 in
  let sb = Circuit.sig_of_wire s in
  let v0 = Circuit.sig_of_wire d0 and v1 = Circuit.sig_of_wire d1 in
  let dv = Circuit.sig_of_wire def in
  (* parts: d0, d0, d1, def  ->  expect: {d0 (s0|s1), d1 s2} *)
  let p =
    Circuit.mk_pmux c ~a:dv
      ~b:(Bits.concat [ v0; v0; v1; dv ])
      ~s:sb
  in
  expose c "y" p;
  let orig = Circuit.copy c in
  let changed = Rtl_opt.Opt_reduce.run c in
  check_bool "changed" true (changed > 0);
  let st = Stats.of_circuit c in
  check_int "pmux kept" 1 st.Stats.pmuxes;
  let part_count =
    Circuit.fold_cells
      (fun _ cell acc ->
        match cell with
        | Cell.Pmux { s; _ } -> acc + Bits.width s
        | _ -> acc)
      c 0
  in
  check_int "two parts left" 2 part_count;
  check_bool "equiv" true (Equiv.is_equivalent orig c)

let test_reduce_collapses_to_mux () =
  let c = Circuit.create "pm1" in
  let s = Circuit.add_input c "s" ~width:2 in
  let d0 = Circuit.add_input c "d0" ~width:2 in
  let def = Circuit.add_input c "def" ~width:2 in
  let sb = Circuit.sig_of_wire s in
  let v0 = Circuit.sig_of_wire d0 and dv = Circuit.sig_of_wire def in
  let p = Circuit.mk_pmux c ~a:dv ~b:(Bits.concat [ v0; v0 ]) ~s:sb in
  expose c "y" p;
  let orig = Circuit.copy c in
  ignore (Rtl_opt.Opt_reduce.run c);
  let st = Stats.of_circuit c in
  check_int "pmux became mux" 0 st.Stats.pmuxes;
  check_int "one mux" 1 st.Stats.muxes;
  check_bool "equiv" true (Equiv.is_equivalent orig c)

(* --- opt_clean --- *)

let test_clean_dead_cells () =
  let c = Circuit.create "dead" in
  let a = Circuit.add_input c "a" ~width:4 in
  let _dead = Circuit.mk_unary c Cell.Not (Circuit.sig_of_wire a) in
  let live = Circuit.mk_binary c Cell.Xor (Circuit.sig_of_wire a) (Circuit.sig_of_wire a) in
  expose c "y" live;
  let removed = Rtl_opt.Opt_clean.run c in
  check_int "one dead removed" 1 removed

let test_clean_keeps_dff () =
  let c = Circuit.create "seq" in
  let a = Circuit.add_input c "a" ~width:2 in
  (* dff whose q is unread still stays (it is a state element) *)
  ignore (Circuit.mk_dff c ~d:(Circuit.sig_of_wire a));
  let removed = Rtl_opt.Opt_clean.run c in
  check_int "nothing removed" 0 removed

(* --- opt_muxtree: the two Yosys rules --- *)

let fig1_circuit () =
  (* Y = S ? (S ? A : B) : C, 4 bits *)
  let c = Circuit.create "fig1" in
  let s = Circuit.add_input c "S" ~width:1 in
  let a = Circuit.add_input c "A" ~width:4 in
  let b = Circuit.add_input c "B" ~width:4 in
  let cc = Circuit.add_input c "C" ~width:4 in
  let sb = Circuit.bit_of_wire s in
  let inner =
    Circuit.mk_mux c ~a:(Circuit.sig_of_wire b) ~b:(Circuit.sig_of_wire a) ~s:sb
  in
  let outer = Circuit.mk_mux c ~a:(Circuit.sig_of_wire cc) ~b:inner ~s:sb in
  expose c "Y" outer;
  c

let test_muxtree_fig1 () =
  let c = fig1_circuit () in
  let orig = Circuit.copy c in
  ignore (Rtl_opt.Flow.baseline c);
  let st = Stats.of_circuit c in
  check_int "one mux left" 1 st.Stats.muxes;
  check_bool "equiv" true (Equiv.is_equivalent orig c)

let fig2_circuit () =
  (* Y = S ? (A ? S : B) : C, 1 bit: data port carries the ancestor ctrl *)
  let c = Circuit.create "fig2" in
  let s = Circuit.add_input c "S" ~width:1 in
  let a = Circuit.add_input c "A" ~width:1 in
  let b = Circuit.add_input c "B" ~width:1 in
  let cc = Circuit.add_input c "C" ~width:1 in
  let sb = Circuit.bit_of_wire s in
  let inner =
    Circuit.mk_mux c ~a:(Circuit.sig_of_wire b) ~b:[| sb |]
      ~s:(Circuit.bit_of_wire a)
  in
  let outer = Circuit.mk_mux c ~a:(Circuit.sig_of_wire cc) ~b:inner ~s:sb in
  expose c "Y" outer;
  c

let test_muxtree_fig2 () =
  let c = fig2_circuit () in
  let orig = Circuit.copy c in
  ignore (Rtl_opt.Opt_muxtree.run c);
  (* the inner mux's b data bit S must now be the constant 1 *)
  let found_const = ref false in
  Circuit.iter_cells
    (fun _ cell ->
      match cell with
      | Cell.Mux { b; _ } ->
        if Array.exists (Bits.bit_equal Bits.C1) b then found_const := true
      | Cell.Unary _ | Cell.Binary _ | Cell.Pmux _ | Cell.Dff _ -> ())
    c;
  check_bool "data bit folded to 1" true !found_const;
  check_bool "equiv" true (Equiv.is_equivalent orig c)

let test_muxtree_shared_child_untouched () =
  (* a mux read from two different parents must not be specialized *)
  let c = Circuit.create "shared" in
  let s = Circuit.add_input c "S" ~width:1 in
  let t = Circuit.add_input c "T" ~width:1 in
  let a = Circuit.add_input c "A" ~width:2 in
  let b = Circuit.add_input c "B" ~width:2 in
  let sb = Circuit.bit_of_wire s and tb = Circuit.bit_of_wire t in
  let shared =
    Circuit.mk_mux c ~a:(Circuit.sig_of_wire a) ~b:(Circuit.sig_of_wire b) ~s:sb
  in
  let o1 = Circuit.mk_mux c ~a:(Circuit.sig_of_wire a) ~b:shared ~s:sb in
  let o2 = Circuit.mk_mux c ~a:shared ~b:(Circuit.sig_of_wire b) ~s:tb in
  expose c "Y1" o1;
  expose c "Y2" o2;
  let orig = Circuit.copy c in
  ignore (Rtl_opt.Flow.baseline c);
  check_bool "equiv" true (Equiv.is_equivalent orig c)

(* pmux: default branch known selects-all-zero *)
let test_muxtree_pmux () =
  let c = Circuit.create "pm" in
  let s = Circuit.add_input c "S" ~width:2 in
  let a = Circuit.add_input c "A" ~width:2 in
  let b = Circuit.add_input c "B" ~width:2 in
  let sbits = Circuit.sig_of_wire s in
  (* default value contains a mux controlled by s[0]: under the default
     branch s[0]=0 is known, so it collapses *)
  let inner =
    Circuit.mk_mux c ~a:(Circuit.sig_of_wire a) ~b:(Circuit.sig_of_wire b)
      ~s:sbits.(0)
  in
  let p =
    Circuit.mk_pmux c ~a:inner
      ~b:(Bits.concat [ Circuit.sig_of_wire b; Circuit.sig_of_wire a ])
      ~s:sbits
  in
  expose c "Y" p;
  let orig = Circuit.copy c in
  ignore (Rtl_opt.Flow.baseline c);
  let st = Stats.of_circuit c in
  check_bool "inner mux eliminated" true (st.Stats.muxes = 0);
  check_bool "equiv" true (Equiv.is_equivalent orig c)

(* --- property: baseline flow preserves semantics on generated RTL --- *)

let prop_baseline_preserves =
  QCheck.Test.make ~count:12 ~name:"baseline flow preserves semantics"
    QCheck.(int_bound 10000)
    (fun seed ->
      let p =
        {
          Workloads.Profiles.name = "prop";
          seed;
          style = (if seed mod 2 = 0 then `Chain else `Pmux);
          repeat = 2;
          mix =
            [
              Workloads.Profiles.Case
                { sel_width = 3; items = 6; width = 4; distinct = 3 };
              Workloads.Profiles.Correlated_ifs { depth = 2; width = 4 };
              Workloads.Profiles.Redundant_nest { width = 4 };
              Workloads.Profiles.Datapath { width = 4; ops = 2 };
            ];
          register_fraction = 0;
        }
      in
      let c = Workloads.Profiles.circuit p in
      let orig = Circuit.copy c in
      ignore (Rtl_opt.Flow.baseline c);
      Validate.is_well_formed c && Equiv.is_equivalent orig c)

let () =
  Alcotest.run "opt"
    [
      ( "opt_expr",
        [
          Alcotest.test_case "const fold" `Quick test_const_fold;
          Alcotest.test_case "mux const select" `Quick test_mux_const_select;
          Alcotest.test_case "mux equal branches" `Quick test_mux_equal_branches;
          Alcotest.test_case "eq same signal" `Quick test_eq_same_signal;
        ] );
      ( "opt_merge",
        [ Alcotest.test_case "duplicates" `Quick test_merge_duplicates ] );
      ( "opt_reduce",
        [
          Alcotest.test_case "pmux merge" `Quick test_reduce_pmux_merge;
          Alcotest.test_case "collapse to mux" `Quick test_reduce_collapses_to_mux;
        ] );
      ( "opt_clean",
        [
          Alcotest.test_case "dead cells" `Quick test_clean_dead_cells;
          Alcotest.test_case "keeps dff" `Quick test_clean_keeps_dff;
        ] );
      ( "opt_muxtree",
        [
          Alcotest.test_case "fig1 same ctrl" `Quick test_muxtree_fig1;
          Alcotest.test_case "fig2 data port" `Quick test_muxtree_fig2;
          Alcotest.test_case "shared child" `Quick test_muxtree_shared_child_untouched;
          Alcotest.test_case "pmux default" `Quick test_muxtree_pmux;
        ] );
      ( "flow",
        [
          preserved "fig1 flow" fig1_circuit;
          preserved "fig2 flow" fig2_circuit;
          QCheck_alcotest.to_alcotest prop_baseline_preserves;
        ] );
    ]
