(** The Yosys [opt_muxtree] baseline.

    Muxtrees are traversed from their roots; along every branch the control
    bits chosen so far are known.  The two Yosys rules apply (paper Figs. 1
    and 2): a descendant mux with an already-known *identical* control bit
    is bypassed, and data bits equal to a known control bit become
    constants.  A descendant is eliminable only when all reads of its
    output come from one data-port side of one mux. *)

open Netlist

type side = Side_a | Side_b of int  (** pmux part index; a Mux's b-side is part 0 *)

type readers
(** Who reads each bit: mux data ports (with location) vs everything else. *)

val collect_readers : Circuit.t -> readers

val dedicated_location : readers -> Cell.t -> (int * side) option
(** The unique (mux id, side) reading every output bit of the cell, if the
    cell is dedicated to a single tree location. *)

val run_once : Circuit.t -> int * int
(** One traversal; returns (bypassed mux-bits, constant-folded data bits). *)

val run : Circuit.t -> int
(** Iterate to fixpoint; returns the total number of changes. *)
