(* Parallel-scheduler end-to-end determinism: the full smartly flow must
   produce a byte-identical netlist, identical areas and an identical
   provenance event multiset for every --jobs value, and the task-replay
   cache must reproduce the uncached result exactly. *)

open Netlist

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let profile name =
  match Workloads.Profiles.by_name name with
  | Some p -> p
  | None -> Alcotest.failf "unknown profile %s" name

(* One cold flow run: fresh telemetry, fresh memo, no replay store.
   Returns (netlist digest, area, sorted provenance lines). *)
let run_flow ?(jobs = None) ?(replay = false) c0 =
  let c = Circuit.copy c0 in
  let cfg = { Smartly.Config.default with Smartly.Config.jobs } in
  Smartly.Memo.reset ();
  Smartly.Engine.Sat_log.reset ();
  Smartly.Budget.reset ();
  if not replay then Smartly.Replay.uninstall ();
  let sink = Obs.Provenance.make_sink () in
  Obs.Provenance.install sink;
  Fun.protect ~finally:Obs.Provenance.uninstall (fun () ->
      ignore (Smartly.Driver.smartly ~cfg c));
  let prov =
    Obs.Provenance.to_jsonl_string sink
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
    |> List.sort compare
  in
  (Smartly.Replay.circuit_digest c, Aiger.Aigmap.aig_area c, prov)

let corpus = lazy (Workloads.Profiles.circuit (profile "mux_chain"))

let test_jobs_determinism () =
  let c0 = Lazy.force corpus in
  let d1, a1, p1 = run_flow ~jobs:(Some 1) c0 in
  check_bool "flow did optimize" true (a1 < Aiger.Aigmap.aig_area c0);
  List.iter
    (fun n ->
      let dn, an, pn = run_flow ~jobs:(Some n) c0 in
      check_string (Printf.sprintf "netlist digest jobs=%d" n) d1 dn;
      check_int (Printf.sprintf "area jobs=%d" n) a1 an;
      check_int
        (Printf.sprintf "provenance count jobs=%d" n)
        (List.length p1) (List.length pn);
      check_bool
        (Printf.sprintf "provenance multiset jobs=%d" n)
        true (p1 = pn))
    [ 2; 8 ]

(* The task path's frozen-snapshot semantics differ from the legacy
   in-place walk by design; areas may legitimately differ.  What must
   hold is that the task path agrees with itself for every worker
   count — covered above — and that both reach a valid netlist. *)
let test_task_path_vs_legacy_valid () =
  let c0 = Lazy.force corpus in
  let c = Circuit.copy c0 in
  Smartly.Memo.reset ();
  Smartly.Replay.uninstall ();
  ignore (Smartly.Driver.smartly c);
  check_bool "legacy optimizes" true
    (Aiger.Aigmap.aig_area c < Aiger.Aigmap.aig_area c0)

(* Replay cache: a second identical job replays (hits > 0) and still
   produces the byte-identical netlist and provenance-free counters
   consistent with the cold run. *)
let test_replay_reproduces () =
  let c0 = Lazy.force corpus in
  let d_cold, a_cold, _ = run_flow ~jobs:(Some 2) c0 in
  let store = Smartly.Replay.make () in
  Smartly.Replay.install store;
  Fun.protect ~finally:Smartly.Replay.uninstall (fun () ->
      let d1, a1, _ = run_flow ~jobs:(Some 2) ~replay:true c0 in
      let d2, a2, _ = run_flow ~jobs:(Some 2) ~replay:true c0 in
      check_string "warm job 1 digest" d_cold d1;
      check_string "warm job 2 digest" d_cold d2;
      check_int "warm job 1 area" a_cold a1;
      check_int "warm job 2 area" a_cold a2;
      match Smartly.Replay.to_json store with
      | Obs.Json.Obj fields ->
        let num k =
          match List.assoc k fields with
          | Obs.Json.Num f -> int_of_float f
          | _ -> Alcotest.failf "field %s not a number" k
        in
        check_bool "job 2 replayed tasks" true (num "hits" > 0);
        check_bool "job 1 filled the cache" true (num "entries" > 0)
      | _ -> Alcotest.fail "replay stats not an object")

(* The digest is a function of the cells: copies agree, any rewrite
   disagrees. *)
let test_digest_sensitivity () =
  let c0 = Lazy.force corpus in
  let c1 = Circuit.copy c0 in
  check_string "copy digests equal"
    (Smartly.Replay.circuit_digest c0)
    (Smartly.Replay.circuit_digest c1);
  let id = List.hd (Circuit.cell_ids c1) in
  let cell = Circuit.cell c1 id in
  Circuit.remove_cell c1 id;
  check_bool "removal changes digest" true
    (Smartly.Replay.circuit_digest c0 <> Smartly.Replay.circuit_digest c1);
  ignore (Circuit.add_cell c1 cell)

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "jobs 1/2/8 identical" `Quick
            test_jobs_determinism;
          Alcotest.test_case "legacy path valid" `Quick
            test_task_path_vs_legacy_valid;
        ] );
      ( "replay",
        [
          Alcotest.test_case "reproduces cold result" `Quick
            test_replay_reproduces;
          Alcotest.test_case "digest sensitivity" `Quick
            test_digest_sensitivity;
        ] );
    ]
