.PHONY: all build test bench bench-check bench-baselines ci clean

all: build

build:
	dune build

test: build
	dune runtest

bench: build
	dune exec bench/main.exe

# Regression gate over the committed baselines in bench/baselines/.
# Re-measures the fast sections and compares metric by metric:
# deterministic metrics (areas, cells removed, SAT conflict counts)
# must match exactly; wall-time and GC metrics get a noise band,
# widened by --threshold-scale because this also runs on shared CI
# machines.  The diff table lands in /tmp/smartly_bench_diff.txt for
# artifact upload.
#
# The gate runs three times.  Baselines are recorded with --no-sat-memo
# (verdict cache off, SAT session + value analysis on), so the
# --no-sat-memo leg must reproduce every deterministic counter exactly —
# this proves the committed SAT-conflict/time numbers were beaten by the
# incremental solver itself, not by a cache shortcut that could mask a
# solver regression.  The default leg then runs with the memo enabled:
# areas and cell counts must still match exactly, while the SAT counters
# may only improve (the gate passes Improved, fails Regressed).  The
# third leg disables the abstract-interpretation rung zero and gates
# against bench/baselines/noanalysis, recorded in the same mode: areas
# are byte-identical across the two stores while their sat_queries
# differ, so the committed diff attributes the query reduction to the
# rung the same way the memo legs attribute the cache win.
#
# The last step is a self-test of the gate itself: --pessimize turns
# the smartly flows into no-ops, so the re-measured areas genuinely
# regress and the gate MUST fail — if it passes, the gate is broken
# and the target errors out.
bench-check: build
	dune exec bench/main.exe -- table2 mux_chain --check --no-sat-memo \
	  --threshold-scale 4 --report /tmp/smartly_bench_diff.txt
	dune exec bench/main.exe -- table2 mux_chain --check \
	  --threshold-scale 4 --report /tmp/smartly_bench_diff_memo.txt
	dune exec bench/main.exe -- table2 mux_chain --check --no-sat-memo \
	  --no-analysis --baseline-dir bench/baselines/noanalysis \
	  --threshold-scale 4 --report /tmp/smartly_bench_diff_noanalysis.txt
	dune exec bench/main.exe -- jobs_per_sec --check \
	  --threshold-scale 4 --report /tmp/smartly_bench_diff_jobs.txt
	@if dune exec bench/main.exe -- mux_chain --check --pessimize \
	    --report /tmp/smartly_bench_pessimized.txt >/dev/null 2>&1; then \
	  echo "bench-check: BROKEN GATE — pessimized run passed"; exit 1; \
	else \
	  echo "bench-check: gate self-test ok (pessimized run failed as it must)"; \
	fi

# Refresh every committed baseline.  Every section runs three times so
# the wall-clock medians are meaningful (deterministic metrics are
# rep-invariant, so the repetitions cost only time).  Baselines are
# recorded with --no-sat-memo: the verdict cache off makes every SAT
# counter deterministic and exactly reproducible by the memo-off gate
# leg, and the default (memo-on) gate leg must then beat them rather
# than merely match.  The jobs_per_sec section manages its own cache
# state (cold vs warm is its subject) and so records without the flag.
# Commit the resulting bench/baselines/*.json together with the change
# that moved the numbers.
bench-baselines: build
	dune exec bench/main.exe -- table2 table3 industrial \
	  --update-baselines --no-sat-memo --reps 3
	dune exec bench/main.exe -- mux_chain --update-baselines --no-sat-memo \
	  --reps 3
	dune exec bench/main.exe -- jobs_per_sec --update-baselines --reps 3
	dune exec bench/main.exe -- table2 table3 industrial \
	  --update-baselines --no-sat-memo --no-analysis \
	  --baseline-dir bench/baselines/noanalysis --reps 3
	dune exec bench/main.exe -- mux_chain --update-baselines --no-sat-memo \
	  --no-analysis --baseline-dir bench/baselines/noanalysis --reps 3

# What CI runs: build, the full test suite, then an end-to-end smoke of
# the observability surface — optimize the fast mux_chain profile with
# a Chrome trace, a JSON stats report, and a provenance log; aggregate
# the log with `explain`; and fail unless every artifact parses
# (validate-json is the CLI's own strict parser, so no external tooling
# is needed).  A second run on riscv — the smallest profile whose
# ladder reaches SAT — dumps its hardest queries and replays each one,
# failing on any verdict mismatch.  The replay loop is guarded because
# a profile resolved entirely by simulation dumps zero queries.
# The lint step covers every checked-in example plus the two smoke
# profiles; `lint` exits nonzero on error-severity findings, so a
# regression that makes an example ill-formed fails the build, and the
# JSON report must survive the strict parser.  The analyze step runs
# the value-analysis fixpoint over the three lint-clean examples and
# validates each smartly-analysis-v1 report — the same backend the
# NL010..NL013 rules and the engine's rung zero use, exercised on real
# sources rather than profiles.  The mux_chain
# optimization is re-run under --check-invariants, which validates,
# lints and equivalence-checks the circuit after every pass, and then
# once more on the sharded task path (--jobs 2) with the full
# equivalence check, proving the parallel scheduler's netlist against
# the original.  A serve smoke follows: a 4-line JSONL batch (two
# identical jobs, one sharded, one shutdown) through the stdio daemon,
# with the per-job smartly-report-v1 stream kept as an artifact and
# parse-validated.  Finally
# the run-ledger surface: a deliberately budget-starved run (1 ms per
# pass) must still exit 0 with its netlist equivalence-checking — the
# watchdog degrades, never crashes — and `smartly report` must render
# the ledger it left, with the JSON form surviving validate-json.
ci: build
	dune runtest
	dune exec bin/smartly_cli.exe -- lint examples/*.v mux_chain riscv
	dune exec bin/smartly_cli.exe -- lint examples/*.v mux_chain riscv \
	  --json > /tmp/smartly_lint.json
	dune exec bin/smartly_cli.exe -- validate-json /tmp/smartly_lint.json
	dune exec bin/smartly_cli.exe -- analyze examples/alu.v --json \
	  > /tmp/smartly_analysis_alu.json
	dune exec bin/smartly_cli.exe -- analyze examples/gray_counter.v --json \
	  > /tmp/smartly_analysis_gray_counter.json
	dune exec bin/smartly_cli.exe -- analyze examples/priority_select.v \
	  --json > /tmp/smartly_analysis_priority_select.json
	dune exec bin/smartly_cli.exe -- validate-json \
	  /tmp/smartly_analysis_alu.json /tmp/smartly_analysis_gray_counter.json \
	  /tmp/smartly_analysis_priority_select.json
	dune exec bin/smartly_cli.exe -- opt mux_chain --flow smartly \
	  --check-invariants
	dune exec bin/smartly_cli.exe -- opt mux_chain --flow smartly \
	  --jobs 2 --check --check-invariants
	printf '%s\n' \
	  '{"op":"optimize","id":"ci-1","kind":"profile","source":"mux_chain"}' \
	  '{"op":"optimize","id":"ci-2","kind":"profile","source":"mux_chain"}' \
	  '{"op":"optimize","id":"ci-3","kind":"profile","source":"riscv","jobs":2}' \
	  '{"op":"shutdown"}' \
	  | dune exec bin/smartly_cli.exe -- serve \
	  > /tmp/smartly_serve_reports.jsonl
	dune exec bin/smartly_cli.exe -- validate-json \
	  /tmp/smartly_serve_reports.jsonl
	dune exec bin/smartly_cli.exe -- opt mux_chain --flow smartly \
	  --json --trace /tmp/smartly_trace.json \
	  --provenance /tmp/smartly_prov.jsonl \
	  > /tmp/smartly_stats.json
	dune exec bin/smartly_cli.exe -- explain /tmp/smartly_prov.jsonl
	dune exec bin/smartly_cli.exe -- validate-json \
	  /tmp/smartly_stats.json /tmp/smartly_trace.json /tmp/smartly_prov.jsonl
	rm -rf /tmp/smartly_satq
	dune exec bin/smartly_cli.exe -- opt riscv --flow smartly \
	  --sat-dump /tmp/smartly_satq
	for f in /tmp/smartly_satq/*.cnf; do \
	  [ -e "$$f" ] || continue; \
	  dune exec bin/smartly_cli.exe -- replay "$$f" || exit 1; \
	done
	rm -rf /tmp/smartly_runs
	dune exec bin/smartly_cli.exe -- opt mux_chain --flow smartly \
	  --ledger-root /tmp/smartly_runs --pass-budget-ms 1 \
	  --check --check-invariants
	run=$$(ls -d /tmp/smartly_runs/*/); \
	dune exec bin/smartly_cli.exe -- report "$$run" && \
	dune exec bin/smartly_cli.exe -- report "$$run" --json \
	  > /tmp/smartly_report.json && \
	dune exec bin/smartly_cli.exe -- validate-json /tmp/smartly_report.json

clean:
	dune clean
