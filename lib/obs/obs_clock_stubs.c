/* Monotonic clock for Obs.Clock.

   Baselines compare wall times across runs, so the time source must be
   immune to NTP slews and wall-clock jumps: clock_gettime(CLOCK_MONOTONIC)
   where the platform has it, gettimeofday otherwise (macOS < 10.12, odd
   libcs).  Returns nanoseconds as int64; the epoch is arbitrary — only
   differences are meaningful. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#include <time.h>
#include <sys/time.h>

CAMLprim value smartly_obs_monotonic_ns(value unit)
{
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_int64((int64_t)tv.tv_sec * 1000000000
                           + (int64_t)tv.tv_usec * 1000);
  }
}
