(** Recursive-descent parser for the Verilog subset: module declarations,
    [assign], [always @*] with blocking assignments, [if]/[else],
    [case]/[casez], and the usual expression grammar with standard
    precedences. *)

exception Parse_error of string * Loc.pos
(** Message plus the source position (byte offset and 1-based
    line/column) of the offending token. *)

val parse_string : string -> Ast.module_
(** The returned AST carries source spans on declarations, statements,
    case items and module items (see {!Loc}).
    @raise Parse_error on syntax errors
    @raise Lexer.Lex_error on lexical errors *)
