(** Netlist -> AIG mapping (the Yosys [aigmap] equivalent).

    Circuit inputs and dff outputs become primary inputs; circuit outputs
    and dff inputs become primary outputs.  Flip-flops therefore contribute
    no AND gates — the paper's "AIG area excluding flip-flops". *)

open Netlist

type mapping = {
  aig : Aig.t;
  lit_of_bit : Bits.bit -> Aig.lit;  (** post-mapping bit translation *)
}

val map : Circuit.t -> mapping

val aig_area : Circuit.t -> int
(** The paper's headline metric. *)
