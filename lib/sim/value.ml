(* Three-valued logic values: 0, 1, X (unknown). *)

type t = V0 | V1 | Vx

let of_bool b = if b then V1 else V0

let to_bool = function V0 -> Some false | V1 -> Some true | Vx -> None

let equal (a : t) (b : t) = a = b

let v_not = function V0 -> V1 | V1 -> V0 | Vx -> Vx

let v_and a b =
  match a, b with
  | V0, _ | _, V0 -> V0
  | V1, V1 -> V1
  | (V1 | Vx), (V1 | Vx) -> Vx

let v_or a b =
  match a, b with
  | V1, _ | _, V1 -> V1
  | V0, V0 -> V0
  | (V0 | Vx), (V0 | Vx) -> Vx

let v_xor a b =
  match a, b with
  | Vx, _ | _, Vx -> Vx
  | V0, V0 | V1, V1 -> V0
  | V0, V1 | V1, V0 -> V1

let v_xnor a b = v_not (v_xor a b)

(* y = s ? b : a, with X select resolving only when both branches agree. *)
let v_mux ~a ~b ~s =
  match s with
  | V0 -> a
  | V1 -> b
  | Vx -> if equal a b then a else Vx

let pp ppf = function
  | V0 -> Fmt.string ppf "0"
  | V1 -> Fmt.string ppf "1"
  | Vx -> Fmt.string ppf "x"
