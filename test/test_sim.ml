(* Tests for the evaluators: 3-valued semantics, vector simulation, and a
   qcheck property that the two agree on random circuits. *)

open Netlist

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* helper: 1-output circuit builder over [n] 1-bit inputs *)
let inputs_of c n =
  List.init n (fun i -> Circuit.add_input c (Printf.sprintf "i%d" i) ~width:1)

let run_bits c pairs =
  let inputs =
    List.map
      (fun (w, v) ->
        ( Circuit.bit_of_wire w,
          if v then Rtl_sim.Value.V1 else Rtl_sim.Value.V0 ))
      pairs
  in
  Rtl_sim.Eval.run c ~inputs ()

(* --- value algebra --- *)

let test_value_tables () =
  let open Rtl_sim.Value in
  check_bool "0&x=0" true (v_and V0 Vx = V0);
  check_bool "1&x=x" true (v_and V1 Vx = Vx);
  check_bool "1|x=1" true (v_or V1 Vx = V1);
  check_bool "0|x=x" true (v_or V0 Vx = Vx);
  check_bool "x^1=x" true (v_xor Vx V1 = Vx);
  check_bool "~x=x" true (v_not Vx = Vx);
  check_bool "mux x sel same" true (v_mux ~a:V1 ~b:V1 ~s:Vx = V1);
  check_bool "mux x sel diff" true (v_mux ~a:V0 ~b:V1 ~s:Vx = Vx)

(* --- cell semantics --- *)

let test_eval_gates () =
  let c = Circuit.create "gates" in
  let ws = inputs_of c 2 in
  let a, b =
    match ws with [ a; b ] -> a, b | _ -> assert false
  in
  let ab = Circuit.bit_of_wire a and bb = Circuit.bit_of_wire b in
  let y_and = Circuit.mk_and c ab bb in
  let y_or = Circuit.mk_or c ab bb in
  let y_xor = Circuit.mk_xor c ab bb in
  let y_not = Circuit.mk_not c ab in
  let env = run_bits c [ a, true; b, false ] in
  let rd bit = Rtl_sim.Eval.read env bit in
  check_bool "and" true (rd y_and = Rtl_sim.Value.V0);
  check_bool "or" true (rd y_or = Rtl_sim.Value.V1);
  check_bool "xor" true (rd y_xor = Rtl_sim.Value.V1);
  check_bool "not" true (rd y_not = Rtl_sim.Value.V0)

let test_eval_add_sub () =
  let c = Circuit.create "arith" in
  let a = Circuit.add_input c "a" ~width:8 in
  let b = Circuit.add_input c "b" ~width:8 in
  let sum =
    Circuit.mk_binary c Cell.Add (Circuit.sig_of_wire a) (Circuit.sig_of_wire b)
  in
  let diff =
    Circuit.mk_binary c Cell.Sub (Circuit.sig_of_wire a) (Circuit.sig_of_wire b)
  in
  let mk_in w v =
    List.init 8 (fun i ->
        ( Bits.Of_wire (w.Circuit.wire_id, i),
          if (v lsr i) land 1 = 1 then Rtl_sim.Value.V1 else Rtl_sim.Value.V0 ))
  in
  let env =
    Rtl_sim.Eval.run c ~inputs:(mk_in a 200 @ mk_in b 57) ()
  in
  check_int "add" ((200 + 57) land 255)
    (Option.get (Rtl_sim.Eval.read_int env sum));
  check_int "sub" ((200 - 57) land 255)
    (Option.get (Rtl_sim.Eval.read_int env diff))

let test_eval_eq_pmux () =
  let c = Circuit.create "eqp" in
  let s = Circuit.add_input c "s" ~width:2 in
  let eq1 = Circuit.mk_eq_const c (Circuit.sig_of_wire s) 2 in
  let p =
    Circuit.mk_pmux c
      ~a:(Bits.of_int ~width:4 15)
      ~b:(Bits.concat [ Bits.of_int ~width:4 3; Bits.of_int ~width:4 9 ])
      ~s:[| eq1; Circuit.mk_eq_const c (Circuit.sig_of_wire s) 1 |]
  in
  let mk v =
    List.init 2 (fun i ->
        ( Bits.Of_wire (s.Circuit.wire_id, i),
          if (v lsr i) land 1 = 1 then Rtl_sim.Value.V1 else Rtl_sim.Value.V0 ))
  in
  let env = Rtl_sim.Eval.run c ~inputs:(mk 2) () in
  check_int "pmux part0 (s==2)" 3 (Option.get (Rtl_sim.Eval.read_int env p));
  let env = Rtl_sim.Eval.run c ~inputs:(mk 1) () in
  check_int "pmux part1 (s==1)" 9 (Option.get (Rtl_sim.Eval.read_int env p));
  let env = Rtl_sim.Eval.run c ~inputs:(mk 0) () in
  check_int "pmux default" 15 (Option.get (Rtl_sim.Eval.read_int env p))

let test_x_propagation () =
  let c = Circuit.create "xprop" in
  let a = Circuit.add_input c "a" ~width:1 in
  let b = Circuit.add_input c "b" ~width:1 in
  let y = Circuit.mk_and c (Circuit.bit_of_wire a) (Circuit.bit_of_wire b) in
  (* only a assigned; 0 & x = 0, 1 & x = x *)
  let env = run_bits c [ a, false ] in
  check_bool "0 & x = 0" true (Rtl_sim.Eval.read env y = Rtl_sim.Value.V0);
  let env = run_bits c [ a, true ] in
  check_bool "1 & x = x" true (Rtl_sim.Eval.read env y = Rtl_sim.Value.Vx)

(* --- vector sim agrees with 3-valued eval on random circuits --- *)

let gen_rand_circuit seed =
  (* a small random DAG over 4 inputs built from 1-bit ops *)
  let c = Circuit.create "rand" in
  let ins = inputs_of c 4 in
  let pool = ref (List.map Circuit.bit_of_wire ins) in
  let st = ref seed in
  let next () =
    st := (!st * 1103515245) + 12345;
    (!st lsr 16) land 0xFFF
  in
  for _ = 1 to 12 do
    let pick () = List.nth !pool (next () mod List.length !pool) in
    let a = pick () and b = pick () in
    let bit =
      match next () mod 5 with
      | 0 -> Circuit.mk_and c a b
      | 1 -> Circuit.mk_or c a b
      | 2 -> Circuit.mk_xor c a b
      | 3 -> Circuit.mk_not c a
      | _ -> Circuit.mk_mux c ~a:[| a |] ~b:[| b |] ~s:(pick ()) |> fun s -> s.(0)
    in
    pool := bit :: !pool
  done;
  let y = Circuit.add_output c "y" ~width:1 in
  ignore
    (Circuit.add_cell c
       (Cell.Binary
          {
            op = Cell.Or;
            a = [| List.hd !pool |];
            b = [| Bits.C0 |];
            y = [| Circuit.bit_of_wire y |];
          }));
  c, ins

let prop_vector_matches_eval =
  QCheck.Test.make ~count:100 ~name:"vector sim = 3-valued eval (binary inputs)"
    QCheck.(pair (int_bound 100000) (int_bound 15))
    (fun (seed, input_bits) ->
      let c, ins = gen_rand_circuit seed in
      let y = List.hd (Circuit.outputs c) in
      let yb = Bits.Of_wire (y.Circuit.wire_id, 0) in
      (* 3-valued run *)
      let inputs =
        List.mapi
          (fun i w ->
            ( Circuit.bit_of_wire w,
              if (input_bits lsr i) land 1 = 1 then Rtl_sim.Value.V1
              else Rtl_sim.Value.V0 ))
          ins
      in
      let env3 = Rtl_sim.Eval.run c ~inputs () in
      (* vector run, 1 lane *)
      let envv = Rtl_sim.Vector.create ~lanes:1 () in
      List.iteri
        (fun i w ->
          Rtl_sim.Vector.write envv (Circuit.bit_of_wire w)
            ((input_bits lsr i) land 1))
        ins;
      Rtl_sim.Vector.eval_ordered c envv (Topo.sort c);
      let v3 = Rtl_sim.Eval.read env3 yb in
      let vv = Rtl_sim.Vector.read envv yb in
      match v3 with
      | Rtl_sim.Value.V0 -> vv = 0
      | Rtl_sim.Value.V1 -> vv = 1
      | Rtl_sim.Value.Vx -> false (* fully-driven: X impossible *))

let test_random_equiv_detects_difference () =
  let c1 = Circuit.create "m" in
  let a = Circuit.add_input c1 "a" ~width:1 in
  let y = Circuit.add_output c1 "y" ~width:1 in
  ignore
    (Circuit.add_cell c1
       (Cell.Unary
          { op = Cell.Not; a = [| Circuit.bit_of_wire a |];
            y = [| Circuit.bit_of_wire y |] }));
  let c2 = Circuit.create "m" in
  let a2 = Circuit.add_input c2 "a" ~width:1 in
  let y2 = Circuit.add_output c2 "y" ~width:1 in
  ignore
    (Circuit.add_cell c2
       (Cell.Binary
          { op = Cell.Or; a = [| Circuit.bit_of_wire a2 |]; b = [| Bits.C0 |];
            y = [| Circuit.bit_of_wire y2 |] }));
  check_bool "not vs buf differ" true
    (Rtl_sim.Vector.random_equiv c1 c2 <> None);
  check_bool "self equiv" true (Rtl_sim.Vector.random_equiv c1 c1 = None)

let () =
  Alcotest.run "sim"
    [
      ( "eval",
        [
          Alcotest.test_case "value tables" `Quick test_value_tables;
          Alcotest.test_case "gates" `Quick test_eval_gates;
          Alcotest.test_case "add/sub" `Quick test_eval_add_sub;
          Alcotest.test_case "eq + pmux" `Quick test_eval_eq_pmux;
          Alcotest.test_case "x propagation" `Quick test_x_propagation;
        ] );
      ( "vector",
        [
          Alcotest.test_case "random equiv" `Quick
            test_random_equiv_detects_difference;
          QCheck_alcotest.to_alcotest prop_vector_matches_eval;
        ] );
    ]
