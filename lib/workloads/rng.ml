(* Deterministic splitmix-style RNG so every benchmark run regenerates the
   exact same circuits. *)

type t = { mutable state : int }

let create ~seed = { state = seed lxor 0x1234567 }

let next (t : t) =
  t.state <- t.state + 0x1E3779B97F4A7C15;
  let z = ref t.state in
  z := (!z lxor (!z lsr 30)) * 0x3F58476D1CE4E5B9;
  z := (!z lxor (!z lsr 27)) * 0x14D049BB133111EB;
  let v = !z lxor (!z lsr 31) in
  v land max_int

(* uniform in [0, bound) *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  next t mod bound

(* uniform in [lo, hi] inclusive *)
let range t lo hi =
  if hi < lo then invalid_arg "Rng.range";
  lo + int t (hi - lo + 1)

let bool t = next t land 1 = 1

(* true with probability pct/100 *)
let chance t pct = int t 100 < pct

let choice t (l : 'a list) =
  match l with
  | [] -> invalid_arg "Rng.choice"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  let tagged = List.map (fun x -> next t, x) l in
  List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) tagged)

(* pick [n] distinct elements *)
let sample t n l = List.filteri (fun i _ -> i < n) (shuffle t l)
