(* Tests for the AIG package and the aigmap conversion. *)

open Netlist
module A = Aiger.Aig

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_constants () =
  let g = A.create () in
  let x = A.new_pi g "x" in
  check_bool "x & 0 = 0" true (A.and_ g x A.false_lit = A.false_lit);
  check_bool "x & 1 = x" true (A.and_ g x A.true_lit = x);
  check_bool "x & x = x" true (A.and_ g x x = x);
  check_bool "x & ~x = 0" true (A.and_ g x (A.negate x) = A.false_lit)

let test_strash () =
  let g = A.create () in
  let x = A.new_pi g "x" and y = A.new_pi g "y" in
  let a1 = A.and_ g x y in
  let a2 = A.and_ g y x in
  check_bool "commutative sharing" true (a1 = a2);
  check_int "one and node" 1 (A.num_ands g)

let test_area_counts_live_only () =
  let g = A.create () in
  let x = A.new_pi g "x" and y = A.new_pi g "y" in
  let live = A.and_ g x y in
  let _dead = A.and_ g x (A.negate y) in
  A.add_po g "o" live;
  check_int "all ands" 2 (A.num_ands g);
  check_int "live area" 1 (A.area g)

let test_simulate () =
  let g = A.create () in
  let x = A.new_pi g "x" and y = A.new_pi g "y" in
  let o = A.xor_ g x y in
  A.add_po g "o" o;
  (* lanes: x = 0101, y = 0011 -> xor = 0110 *)
  let values = A.simulate g [| 0b0101; 0b0011 |] in
  check_int "xor lanes" 0b0110 (A.lit_value values o land 0xF)

let test_mux_semantics () =
  let g = A.create () in
  let s = A.new_pi g "s" and a = A.new_pi g "a" and b = A.new_pi g "b" in
  let o = A.mux_ g ~s ~a ~b in
  (* s=1 selects b *)
  let values = A.simulate g [| 0b11_00; 0b01_01; 0b00_11 |] in
  (* lanes (lsb first): s=0011..., enumerate 4 lanes:
     lane0: s=0,a=1,b=1 -> 1; lane1: s=0,a=0,b=1 -> 0;
     lane2: s=1,a=1,b=0 -> 0; lane3: s=1,a=0,b=0 -> 0 *)
  check_int "mux lanes" 0b0001 (A.lit_value values o land 0xF)

(* --- aigmap --- *)

let test_aigmap_add () =
  (* 4-bit adder mapped to AIG must agree with integer addition *)
  let c = Circuit.create "adder" in
  let a = Circuit.add_input c "a" ~width:4 in
  let b = Circuit.add_input c "b" ~width:4 in
  let sum =
    Circuit.mk_binary c Cell.Add (Circuit.sig_of_wire a) (Circuit.sig_of_wire b)
  in
  let y = Circuit.add_output c "y" ~width:4 in
  ignore
    (Circuit.add_cell c
       (Cell.Binary
          { op = Cell.Or; a = sum; b = Bits.all_zero ~width:4;
            y = Circuit.sig_of_wire y }));
  let m = Aiger.Aigmap.map c in
  let g = m.Aiger.Aigmap.aig in
  (* drive pi lanes with all 16x16 combinations split over multiple sims *)
  let ok = ref true in
  for va = 0 to 15 do
    for vb = 0 to 15 do
      let pi_words =
        List.map
          (fun (name, _) ->
            (* name like a[i] or b[i] *)
            let base = name.[0] in
            let idx = Char.code name.[2] - Char.code '0' in
            let v = if base = 'a' then va else vb in
            if (v lsr idx) land 1 = 1 then 1 else 0)
          (A.pis g)
        |> Array.of_list
      in
      let values = A.simulate g pi_words in
      let out = ref 0 in
      List.iteri
        (fun i (_, l) -> if A.lit_value values l land 1 = 1 then out := !out lor (1 lsl i))
        (A.pos g);
      if !out <> (va + vb) land 15 then ok := false
    done
  done;
  check_bool "adder correct over all inputs" true !ok

let test_aigmap_dff_excluded () =
  let c = Circuit.create "seq" in
  let a = Circuit.add_input c "a" ~width:2 in
  let q = Circuit.mk_dff c ~d:(Circuit.sig_of_wire a) in
  let y = Circuit.add_output c "y" ~width:2 in
  ignore
    (Circuit.add_cell c
       (Cell.Binary
          { op = Cell.Or; a = q; b = Bits.all_zero ~width:2;
            y = Circuit.sig_of_wire y }));
  (* pure wiring through a dff: zero AND gates *)
  check_int "no area" 0 (Aiger.Aigmap.aig_area c);
  let g = (Aiger.Aigmap.map c).Aiger.Aigmap.aig in
  check_int "pis: 2 input + 2 dffq" 4 (A.num_pis g);
  check_int "pos: 2 output + 2 dffd" 4 (A.num_pos g)

(* property: aigmap agrees with the 3-valued evaluator on random circuits *)
let gen_rand_circuit seed =
  let c = Circuit.create "rand" in
  let ins = List.init 4 (fun i -> Circuit.add_input c (Printf.sprintf "i%d" i) ~width:1) in
  let pool = ref (List.map Circuit.bit_of_wire ins) in
  let st = ref (seed + 1) in
  let next () =
    st := (!st * 1103515245) + 12345;
    (!st lsr 16) land 0xFFF
  in
  for _ = 1 to 15 do
    let pick () = List.nth !pool (next () mod List.length !pool) in
    let a = pick () and b = pick () in
    let bit =
      match next () mod 6 with
      | 0 -> Circuit.mk_and c a b
      | 1 -> Circuit.mk_or c a b
      | 2 -> Circuit.mk_xor c a b
      | 3 -> Circuit.mk_not c a
      | 4 -> (Circuit.mk_binary c Cell.Xnor [| a |] [| b |]).(0)
      | _ -> (Circuit.mk_mux c ~a:[| a |] ~b:[| b |] ~s:(pick ())).(0)
    in
    pool := bit :: !pool
  done;
  let y = Circuit.add_output c "y" ~width:1 in
  ignore
    (Circuit.add_cell c
       (Cell.Binary
          { op = Cell.Or; a = [| List.hd !pool |]; b = [| Bits.C0 |];
            y = [| Circuit.bit_of_wire y |] }));
  c, ins

let prop_aigmap_matches_eval =
  QCheck.Test.make ~count:150 ~name:"aigmap = netlist eval"
    QCheck.(pair (int_bound 100000) (int_bound 15))
    (fun (seed, input_bits) ->
      let c, ins = gen_rand_circuit seed in
      let inputs =
        List.mapi
          (fun i w ->
            ( Circuit.bit_of_wire w,
              if (input_bits lsr i) land 1 = 1 then Rtl_sim.Value.V1
              else Rtl_sim.Value.V0 ))
          ins
      in
      let env = Rtl_sim.Eval.run c ~inputs () in
      let y = List.hd (Circuit.outputs c) in
      let expect = Rtl_sim.Eval.read env (Bits.Of_wire (y.Circuit.wire_id, 0)) in
      let g = (Aiger.Aigmap.map c).Aiger.Aigmap.aig in
      let pi_words =
        List.map
          (fun (name, _) ->
            let idx = Char.code name.[1] - Char.code '0' in
            (input_bits lsr idx) land 1)
          (A.pis g)
        |> Array.of_list
      in
      let values = A.simulate g pi_words in
      let got =
        match A.pos g with
        | [ (_, l) ] -> A.lit_value values l land 1
        | _ -> -1
      in
      match expect with
      | Rtl_sim.Value.V0 -> got = 0
      | Rtl_sim.Value.V1 -> got = 1
      | Rtl_sim.Value.Vx -> false)

(* --- CEC --- *)

let test_cec_positive_negative () =
  let mk neg =
    let c = Circuit.create "m" in
    let a = Circuit.add_input c "a" ~width:1 in
    let b = Circuit.add_input c "b" ~width:1 in
    let ab = Circuit.bit_of_wire a and bb = Circuit.bit_of_wire b in
    (* demorgan: ~(a & b) vs ~a | ~b; the negative case drops a negation *)
    let v =
      if neg then Circuit.mk_or c (Circuit.mk_not c ab) bb
      else Circuit.mk_or c (Circuit.mk_not c ab) (Circuit.mk_not c bb)
    in
    let y = Circuit.add_output c "y" ~width:1 in
    ignore
      (Circuit.add_cell c
         (Cell.Binary
            { op = Cell.Or; a = [| v |]; b = [| Bits.C0 |];
              y = [| Circuit.bit_of_wire y |] }));
    c
  in
  let c1 = mk false in
  let c2 = Circuit.create "m" in
  let a = Circuit.add_input c2 "a" ~width:1 in
  let b = Circuit.add_input c2 "b" ~width:1 in
  let nand =
    Circuit.mk_not c2
      (Circuit.mk_and c2 (Circuit.bit_of_wire a) (Circuit.bit_of_wire b))
  in
  let y = Circuit.add_output c2 "y" ~width:1 in
  ignore
    (Circuit.add_cell c2
       (Cell.Binary
          { op = Cell.Or; a = [| nand |]; b = [| Bits.C0 |];
            y = [| Circuit.bit_of_wire y |] }));
  check_bool "demorgan equiv" true (Equiv.is_equivalent c1 c2);
  check_bool "broken not equiv" false (Equiv.is_equivalent (mk true) c2)

(* --- AIGER I/O --- *)

let test_aiger_roundtrip () =
  let c = Circuit.create "m" in
  let a = Circuit.add_input c "a" ~width:4 in
  let b = Circuit.add_input c "b" ~width:4 in
  let v =
    Circuit.mk_binary c Cell.Add (Circuit.sig_of_wire a) (Circuit.sig_of_wire b)
  in
  let y = Circuit.add_output c "y" ~width:4 in
  ignore
    (Circuit.add_cell c
       (Cell.Binary
          { op = Cell.Or; a = v; b = Bits.all_zero ~width:4;
            y = Circuit.sig_of_wire y }));
  let g1 = (Aiger.Aigmap.map c).Aiger.Aigmap.aig in
  let text = Aiger.Aiger_io.write g1 in
  let g2 = Aiger.Aiger_io.read text in
  check_int "same pi count" (A.num_pis g1) (A.num_pis g2);
  check_int "same po count" (A.num_pos g1) (A.num_pos g2);
  check_int "same area" (A.area g1) (A.area g2);
  check_bool "semantically equal" true
    (Aiger.Fraig.check_aigs g1 g2 = Aiger.Fraig.Equivalent);
  (* names survive *)
  check_bool "pi names" true
    (List.map fst (A.pis g1) = List.map fst (A.pis g2))

let test_aiger_errors () =
  let bad s =
    match Aiger.Aiger_io.read s with
    | _ -> false
    | exception Aiger.Aiger_io.Format_error _ -> true
  in
  check_bool "empty" true (bad "");
  check_bool "bad header" true (bad "aig 1 2\n");
  check_bool "latches rejected" true (bad "aag 1 0 1 0 0\n2 2\n");
  check_bool "truncated" true (bad "aag 2 1 0 1 1\n2\n")

let () =
  Alcotest.run "aig"
    [
      ( "aig",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "strash" `Quick test_strash;
          Alcotest.test_case "area live only" `Quick test_area_counts_live_only;
          Alcotest.test_case "simulate" `Quick test_simulate;
          Alcotest.test_case "mux semantics" `Quick test_mux_semantics;
        ] );
      ( "aigmap",
        [
          Alcotest.test_case "adder exhaustive" `Quick test_aigmap_add;
          Alcotest.test_case "dff excluded" `Quick test_aigmap_dff_excluded;
          QCheck_alcotest.to_alcotest prop_aigmap_matches_eval;
        ] );
      ( "cec",
        [ Alcotest.test_case "positive/negative" `Quick test_cec_positive_negative ] );
      ( "aiger",
        [
          Alcotest.test_case "roundtrip" `Quick test_aiger_roundtrip;
          Alcotest.test_case "errors" `Quick test_aiger_errors;
        ] );
    ]
