(* Deciding whether a target bit is forced under known values: cheap
   inference rules first, then exhaustive simulation when the sub-graph has
   few free inputs, otherwise an incremental SAT query (the paper's
   MiniSAT role, played by our CDCL solver).  Beyond the input threshold
   the query is forgone to bound the optimization cost. *)

open Netlist

type verdict =
  | Forced of bool
  | Free (* provably takes both values *)
  | Unreachable (* the known values are contradictory: dead path *)
  | Unknown (* budget exhausted / thresholds exceeded *)

type stats = {
  mutable rule_hits : int;
  mutable sim_queries : int;
  mutable sat_queries : int;
  mutable forgone : int;
  mutable subgraph_kept : int;
  mutable subgraph_dropped : int;
  mutable sat_conflicts : int;
  mutable sat_decisions : int;
  mutable sat_propagations : int;
}

let fresh_stats () =
  {
    rule_hits = 0;
    sim_queries = 0;
    sat_queries = 0;
    forgone = 0;
    subgraph_kept = 0;
    subgraph_dropped = 0;
    sat_conflicts = 0;
    sat_decisions = 0;
    sat_propagations = 0;
  }

(* Global instruments; handles resolved once, bumped per query. *)
let m_rule_hits = Obs.Metrics.counter "engine.rule_hits"
let m_sim_queries = Obs.Metrics.counter "engine.sim_queries"
let m_sat_queries = Obs.Metrics.counter "engine.sat_queries"
let m_forgone = Obs.Metrics.counter "engine.forgone"
let m_sat_conflicts = Obs.Metrics.counter "engine.sat_conflicts"
let m_sat_decisions = Obs.Metrics.counter "engine.sat_decisions"
let m_sat_propagations = Obs.Metrics.counter "engine.sat_propagations"
let h_conflicts_per_query = Obs.Metrics.histogram "engine.conflicts_per_query"
let h_subgraph_size = Obs.Metrics.histogram "engine.subgraph_cells"
let m_subgraph_kept = Obs.Metrics.counter "subgraph.kept"
let m_subgraph_dropped = Obs.Metrics.counter "subgraph.dropped"

(* --- exhaustive simulation --- *)

(* Enumerate all assignments of [free_inputs]; rows violating a known value
   of an internal signal are discarded; check whether [target] is constant
   over the surviving rows. *)
let simulate_exhaustive (circuit : Circuit.t) (view : Subgraph.view)
    (known : Inference.known) ~(free_inputs : Bits.bit list)
    ~(target : Bits.bit) : verdict =
  let n = List.length free_inputs in
  let lanes = min Rtl_sim.Vector.lanes_max 62 in
  let total = 1 lsl n in
  (* bits the view actually computes *)
  let internal = Bits.Bit_tbl.create 64 in
  List.iter
    (fun id ->
      List.iter
        (fun b -> Bits.Bit_tbl.replace internal b ())
        (Cell.output_bits (Circuit.cell circuit id)))
    view.Subgraph.cells;
  let is_source b = List.exists (Bits.bit_equal b) view.Subgraph.sources in
  (* only filter on knowns whose value the simulation reproduces *)
  let check_bits =
    Bits.Bit_tbl.fold
      (fun b v acc ->
        if Bits.Bit_tbl.mem internal b || is_source b then (b, v) :: acc
        else acc)
      known []
  in
  let saw_true = ref false and saw_false = ref false in
  let chunk_start = ref 0 in
  (try
     while !chunk_start < total do
       let lanes_here = min lanes (total - !chunk_start) in
       let env = Rtl_sim.Vector.create ~lanes:lanes_here () in
       (* lane j encodes assignment index chunk_start + j *)
       List.iteri
         (fun bit_idx b ->
           let word = ref 0 in
           for j = 0 to lanes_here - 1 do
             let assignment = !chunk_start + j in
             if (assignment lsr bit_idx) land 1 = 1 then
               word := !word lor (1 lsl j)
           done;
           Rtl_sim.Vector.write env b !word)
         free_inputs;
       (* known source values (constants across lanes) *)
       Bits.Bit_tbl.iter
         (fun b v ->
           if
             is_source b
             && not (List.exists (Bits.bit_equal b) free_inputs)
           then
             Rtl_sim.Vector.write env b
               (if v then (1 lsl lanes_here) - 1 else 0))
         known;
       Rtl_sim.Vector.eval_ordered circuit env view.Subgraph.cells;
       (* filter lanes violating internal knowns *)
       let valid = ref ((1 lsl lanes_here) - 1) in
       List.iter
         (fun (b, v) ->
           let w = Rtl_sim.Vector.read env b in
           let mask = (1 lsl lanes_here) - 1 in
           let agree = if v then w else lnot w land mask in
           valid := !valid land agree)
         check_bits;
       let tv = Rtl_sim.Vector.read env target in
       let mask = (1 lsl lanes_here) - 1 in
       if !valid land tv <> 0 then saw_true := true;
       if !valid land (lnot tv land mask) <> 0 then saw_false := true;
       if !saw_true && !saw_false then raise Exit;
       chunk_start := !chunk_start + lanes_here
     done
   with Exit -> ());
  match !saw_true, !saw_false with
  | true, true -> Free
  | true, false -> Forced true
  | false, true -> Forced false
  | false, false -> Unreachable

(* --- SAT --- *)

let query_sat ?stats (circuit : Circuit.t) (view : Subgraph.view)
    (known : Inference.known) ~budget ~(target : Bits.bit) : verdict =
  let enc = Cdcl.Tseitin.create () in
  Cdcl.Tseitin.encode_cells enc circuit view.Subgraph.cells;
  let assumptions =
    Bits.Bit_tbl.fold
      (fun b v acc -> Cdcl.Tseitin.assume_lit enc b v :: acc)
      known []
  in
  let r = Cdcl.Tseitin.query_forced ~budget enc ~assumptions ~target in
  let conflicts, decisions, propagations =
    Cdcl.Solver.stats enc.Cdcl.Tseitin.solver
  in
  Obs.Metrics.add m_sat_conflicts conflicts;
  Obs.Metrics.add m_sat_decisions decisions;
  Obs.Metrics.add m_sat_propagations propagations;
  Obs.Metrics.observe_int h_conflicts_per_query conflicts;
  (match stats with
  | Some s ->
    s.sat_conflicts <- s.sat_conflicts + conflicts;
    s.sat_decisions <- s.sat_decisions + decisions;
    s.sat_propagations <- s.sat_propagations + propagations
  | None -> ());
  match r with
  | Cdcl.Tseitin.Forced v -> Forced v
  | Cdcl.Tseitin.Free -> Free
  | Cdcl.Tseitin.Undetermined -> Unknown

(* --- the combined engine --- *)

(* Determine [target] under [known].  A fresh bounded sub-graph is built
   from the distance-k cones of the target and of every known signal (the
   only gates Theorem II.1 allows to matter), then pruned.  [known] is
   copied; the caller's map is never polluted by inferred values. *)
let determine (cfg : Config.t) (stats : stats) (circuit : Circuit.t)
    (index : Index.t) (known : Inference.known) ~(target : Bits.bit) :
    verdict =
  match Inference.read known target with
  | Some v -> Forced v (* identical-signal case, free *)
  | None ->
    let sg = Subgraph.create circuit index in
    let k = cfg.Config.distance_k in
    Subgraph.add_cone sg ~k target;
    Bits.Bit_tbl.iter (fun b _ -> Subgraph.add_cone sg ~k b) known;
    Obs.Metrics.observe_int h_subgraph_size (Subgraph.size sg);
    if Subgraph.size sg > cfg.Config.max_subgraph_cells then begin
      stats.forgone <- stats.forgone + 1;
      Obs.Metrics.incr m_forgone;
      Unknown
    end
    else begin
    let relevant =
      target :: Bits.Bit_tbl.fold (fun b _ acc -> b :: acc) known []
    in
    let view =
      if cfg.Config.enable_pruning then Subgraph.prune sg ~relevant
      else Subgraph.full_view sg
    in
    stats.subgraph_kept <- stats.subgraph_kept + view.Subgraph.kept;
    stats.subgraph_dropped <- stats.subgraph_dropped + view.Subgraph.dropped;
    Obs.Metrics.add m_subgraph_kept view.Subgraph.kept;
    Obs.Metrics.add m_subgraph_dropped view.Subgraph.dropped;
    (* target not even in the pruned sub-graph (neither computed by it nor
       one of its sources): no relation to knowns, nothing to infer from *)
    let target_inside =
      List.exists (Bits.bit_equal target) view.Subgraph.sources
      || List.exists
           (fun id ->
             List.exists (Bits.bit_equal target)
               (Cell.output_bits (Circuit.cell circuit id)))
           view.Subgraph.cells
    in
    if not target_inside then Unknown
    else begin
      let local = Bits.Bit_tbl.copy known in
      match
        if cfg.Config.enable_inference_rules then begin
          let _sweeps =
            Inference.propagate circuit local view.Subgraph.cells
          in
          Inference.read local target
        end
        else None
      with
      | Some v ->
        stats.rule_hits <- stats.rule_hits + 1;
        Obs.Metrics.incr m_rule_hits;
        Forced v
      | None ->
        let free_inputs =
          List.filter
            (fun b -> not (Bits.Bit_tbl.mem local b))
            view.Subgraph.sources
        in
        let n = List.length free_inputs in
        if n <= cfg.Config.sim_input_threshold then begin
          stats.sim_queries <- stats.sim_queries + 1;
          Obs.Metrics.incr m_sim_queries;
          simulate_exhaustive circuit view local ~free_inputs ~target
        end
        else if n <= cfg.Config.sat_input_threshold then begin
          stats.sat_queries <- stats.sat_queries + 1;
          Obs.Metrics.incr m_sat_queries;
          query_sat ~stats circuit view local
            ~budget:cfg.Config.sat_conflict_budget ~target
        end
        else begin
          stats.forgone <- stats.forgone + 1;
          Obs.Metrics.incr m_forgone;
          Unknown
        end
      | exception Inference.Contradiction -> Unreachable
    end
    end
