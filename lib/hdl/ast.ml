(* Abstract syntax for the supported Verilog subset.

   Supported constructs: module with input/output/wire/reg declarations
   (with bit ranges), continuous [assign], combinational [always @*] blocks
   containing blocking assignments, [if]/[else], [case]/[casez] with
   wildcard patterns, and the usual expression operators. *)

type cbit = B0 | B1 | Bz (* z doubles as the ? wildcard in casez patterns *)

type constant = { cwidth : int; cbits : cbit list (* LSB first *) }

type unary_op = U_not (* ~ *) | U_lnot (* ! *) | U_rand | U_ror | U_rxor

type binary_op =
  | B_and
  | B_or
  | B_xor
  | B_xnor
  | B_land
  | B_lor
  | B_eq
  | B_ne
  | B_add
  | B_sub

type expr =
  | E_ident of string
  | E_const of constant
  | E_select of string * int (* x[i] *)
  | E_range of string * int * int (* x[msb:lsb] *)
  | E_concat of expr list (* {a, b, c} — MSB part first, Verilog order *)
  | E_unary of unary_op * expr
  | E_binary of binary_op * expr * expr
  | E_ternary of expr * expr * expr

(* Statements, declarations and module items carry the source span of
   their defining tokens ([Loc.dummy] when built programmatically), so
   lint diagnostics and elaboration errors can point at source lines. *)

type stmt = { sdesc : stmt_desc; sloc : Loc.span }

and stmt_desc =
  | S_assign of string * expr (* blocking assignment to a reg *)
  | S_if of expr * stmt list * stmt list
  | S_case of case_stmt

and case_stmt = {
  is_casez : bool;
  subject : expr;
  items : case_item list;
  default : stmt list option;
}

and case_item = { pats : constant list; body : stmt list; iloc : Loc.span }

type decl_kind = D_input | D_output | D_output_reg | D_wire | D_reg

type decl = {
  kind : decl_kind;
  dname : string;
  range : (int * int) option;
  dloc : Loc.span; (* the declared identifier *)
}

type item =
  | I_decl of decl
  | I_assign of { lhs : string; rhs : expr; aloc : Loc.span }
      (* continuous assignment *)
  | I_always of { body : stmt list; aloc : Loc.span } (* always @* *)
  | I_always_ff of { clock : string; body : stmt list; aloc : Loc.span }
      (* always @(posedge clk) *)

type module_ = { mname : string; items : item list }

let stmt ?(loc = Loc.dummy) sdesc = { sdesc; sloc = loc }

let decl_width d =
  match d.range with Some (msb, lsb) -> msb - lsb + 1 | None -> 1

(* Constant helpers *)

let const_of_int ~width v =
  {
    cwidth = width;
    cbits = List.init width (fun i -> if (v lsr i) land 1 = 1 then B1 else B0);
  }

let const_has_wildcard c = List.exists (fun b -> b = Bz) c.cbits

let pp_cbit ppf = function
  | B0 -> Fmt.string ppf "0"
  | B1 -> Fmt.string ppf "1"
  | Bz -> Fmt.string ppf "z"

let pp_constant ppf c =
  Fmt.pf ppf "%d'b" c.cwidth;
  List.iter (pp_cbit ppf) (List.rev c.cbits)
