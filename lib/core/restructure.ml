(* Muxtree restructuring (Section III, Algorithm 1).

   For every rebuildable muxtree (single selector signal, eq/logic_not
   selects), the rows are represented as an ADD and a decision tree over the
   selector *bits* is built with the paper's greedy heuristic: at each node
   pick the bit that minimizes the total number of distinct terminals in
   the two children.  Identical subtrees are shared (hash-consing), so the
   result is a DAG of 2:1 muxes controlled directly by selector bits.

   The [Check] step decides whether rebuilding pays off, accounting for the
   data width (a w-bit mux becomes w single-bit muxes after techmapping)
   and for eq gates that must stay because other logic reads them. *)

open Netlist

(* --- greedy decision tree with hash-consing --- *)

type tree = { tid : int; tnode : tnode }

and tnode =
  | T_leaf of int (* terminal index *)
  | T_node of { var : int; lo : tree; hi : tree }

type builder = {
  mutable next_tid : int;
  leaf_memo : (int, tree) Hashtbl.t;
  node_memo : (int * int * int, tree) Hashtbl.t;
}

let new_builder () =
  { next_tid = 0; leaf_memo = Hashtbl.create 16; node_memo = Hashtbl.create 64 }

let t_leaf bld v =
  match Hashtbl.find_opt bld.leaf_memo v with
  | Some t -> t
  | None ->
    let t = { tid = bld.next_tid; tnode = T_leaf v } in
    bld.next_tid <- bld.next_tid + 1;
    Hashtbl.replace bld.leaf_memo v t;
    t

let t_node bld ~var ~lo ~hi =
  if lo.tid = hi.tid then lo
  else begin
    let key = var, lo.tid, hi.tid in
    match Hashtbl.find_opt bld.node_memo key with
    | Some t -> t
    | None ->
      let t = { tid = bld.next_tid; tnode = T_node { var; lo; hi } } in
      bld.next_tid <- bld.next_tid + 1;
      Hashtbl.replace bld.node_memo key t;
      t
  end

let count_unique_nodes (t : tree) =
  let seen = Hashtbl.create 64 in
  let rec go t =
    if Hashtbl.mem seen t.tid then 0
    else begin
      Hashtbl.replace seen t.tid ();
      match t.tnode with
      | T_leaf _ -> 0
      | T_node { lo; hi; _ } -> 1 + go lo + go hi
    end
  in
  go t

let rec tree_height t =
  match t.tnode with
  | T_leaf _ -> 0
  | T_node { lo; hi; _ } -> 1 + max (tree_height lo) (tree_height hi)

(* Rows here use terminal ids. *)
type irow = { cube : Add_bdd.Add.pbit array; term : int }

let filter_rows rows var value =
  List.filter
    (fun r ->
      match r.cube.(var) with
      | Add_bdd.Add.Pz -> true
      | Add_bdd.Add.P0 -> value = false
      | Add_bdd.Add.P1 -> value = true)
    rows

(* Does some row match everything over [remaining] variables?  (sufficient
   check: an all-wildcard cube on those variables) *)
let covered rows remaining =
  List.exists
    (fun r ->
      List.for_all (fun v -> r.cube.(v) = Add_bdd.Add.Pz) remaining)
    rows

(* Distinct terminal values reachable from [rows] (+ default if some input
   combination can fall through). *)
let terminal_types rows remaining ~default =
  let tbl = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace tbl r.term ()) rows;
  if not (covered rows remaining) then Hashtbl.replace tbl default ();
  Hashtbl.length tbl

(* The paper's heuristic: choose the variable minimizing the total number
   of terminal types of the two children. *)
let build_greedy bld ~num_vars (rows : irow list) ~default : tree =
  let rec build avail rows =
    match rows with
    | [] -> t_leaf bld default
    | first :: _ ->
      if List.for_all (fun v -> first.cube.(v) = Add_bdd.Add.Pz) avail then
        t_leaf bld first.term
      else (
        match avail with
        | [] -> t_leaf bld first.term
        | _ ->
          let score v =
            let rem = List.filter (( <> ) v) avail in
            terminal_types (filter_rows rows v false) rem ~default
            + terminal_types (filter_rows rows v true) rem ~default
          in
          let best =
            List.fold_left
              (fun (bv, bs) v ->
                let s = score v in
                if s < bs then v, s else bv, bs)
              (-1, max_int) avail
            |> fst
          in
          let rem = List.filter (( <> ) best) avail in
          let lo = build rem (filter_rows rows best false) in
          let hi = build rem (filter_rows rows best true) in
          t_node bld ~var:best ~lo ~hi)
  in
  build (List.init num_vars (fun i -> i)) rows

(* --- cost model --- *)

(* Approximate AIG cost of the select cells (what removing them saves). *)
let select_cell_cost (cell : Cell.t) =
  match cell with
  | Cell.Binary { op = Cell.Eq; a; _ } -> (4 * Bits.width a) - 1
  | Cell.Unary { op = Cell.Logic_not; a; _ } -> Bits.width a
  | Cell.Binary { op = Cell.Or; _ } -> 1
  | Cell.Binary _ | Cell.Unary _ | Cell.Mux _ | Cell.Pmux _ | Cell.Dff _ -> 0

let mux_cost ~width = 3 * width

(* Muxes the original tree techmaps to. *)
let old_mux_count (c : Circuit.t) (flat : Muxtree.flat) =
  List.fold_left
    (fun acc id ->
      match Circuit.cell c id with
      | Cell.Mux _ -> acc + 1
      | Cell.Pmux { s; _ } -> acc + Bits.width s
      | Cell.Unary _ | Cell.Binary _ | Cell.Dff _ -> acc)
    0 flat.Muxtree.tree_cells

(* Select cells whose outputs are read only inside this muxtree. *)
let removable_selects (c : Circuit.t) (index : Index.t)
    (flat : Muxtree.flat) : int list =
  let inside = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace inside id ()) flat.Muxtree.tree_cells;
  List.iter (fun id -> Hashtbl.replace inside id ()) flat.Muxtree.select_cells;
  List.filter
    (fun id ->
      let y = Cell.output (Circuit.cell c id) in
      (not (Array.exists (Rewire.is_port_bit c) y))
      && Array.for_all
           (fun b ->
             List.for_all
               (fun rid -> Hashtbl.mem inside rid)
               (Index.readers index b))
           y)
    flat.Muxtree.select_cells

type decision = {
  flat : Muxtree.flat;
  tree : tree;
  new_muxes : int;
  old_muxes : int;
  removable : int list;
  saved_cost : int; (* positive = rebuild pays off *)
  height : int;
}

(* Algorithm 1's Check. *)
let evaluate (c : Circuit.t) (index : Index.t) (flat : Muxtree.flat) :
    decision =
  let bld = new_builder () in
  (* terminal ids: distinct leaf sigspecs (default = id 0) *)
  let terminals = ref [ flat.Muxtree.default ] in
  let term_of (s : Bits.sigspec) =
    let rec find i = function
      | [] ->
        terminals := !terminals @ [ s ];
        i
      | t :: rest -> if Bits.equal t s then i else find (i + 1) rest
    in
    find 0 !terminals
  in
  let rows =
    List.map
      (fun (r : Muxtree.row) ->
        { cube = r.Muxtree.cube; term = term_of r.Muxtree.value })
      flat.Muxtree.rows
  in
  let num_vars = Bits.width flat.Muxtree.selector in
  let tree = build_greedy bld ~num_vars rows ~default:0 in
  let new_muxes = count_unique_nodes tree in
  let old_muxes = old_mux_count c flat in
  let removable = removable_selects c index flat in
  let width = flat.Muxtree.width in
  let old_cost =
    (old_mux_count c flat * mux_cost ~width)
    + List.fold_left
        (fun acc id -> acc + select_cell_cost (Circuit.cell c id))
        0 removable
  in
  let new_cost = new_muxes * mux_cost ~width in
  {
    flat;
    tree;
    new_muxes;
    old_muxes;
    removable;
    saved_cost = old_cost - new_cost;
    height = tree_height tree;
  }

(* --- rebuild --- *)

let m_cells_removed = Obs.Metrics.counter "flow.cells_removed"

(* Terminal sigspecs are captured before rewiring. *)
let rebuild (c : Circuit.t) (d : decision) =
  let flat = d.flat in
  (* recompute terminal list exactly as [evaluate] did *)
  let terminals = ref [ flat.Muxtree.default ] in
  let term_of (s : Bits.sigspec) =
    let rec find i = function
      | [] ->
        terminals := !terminals @ [ s ];
        i
      | t :: rest -> if Bits.equal t s then i else find (i + 1) rest
    in
    find 0 !terminals
  in
  List.iter
    (fun (r : Muxtree.row) -> ignore (term_of r.Muxtree.value))
    flat.Muxtree.rows;
  let term_sig i = List.nth !terminals i in
  let memo = Hashtbl.create 64 in
  let rec emit (t : tree) : Bits.sigspec =
    match Hashtbl.find_opt memo t.tid with
    | Some s -> s
    | None ->
      let s =
        match t.tnode with
        | T_leaf term -> term_sig term
        | T_node { var; lo; hi } ->
          let lo_s = emit lo and hi_s = emit hi in
          Circuit.mk_mux c ~a:lo_s ~b:hi_s ~s:flat.Muxtree.selector.(var)
      in
      Hashtbl.replace memo t.tid s;
      s
  in
  let new_out = emit d.tree in
  let old_root_cell = Circuit.cell c flat.Muxtree.root in
  let old_y = Cell.output old_root_cell in
  Circuit.remove_cell c flat.Muxtree.root;
  Obs.Metrics.incr m_cells_removed;
  Obs.Provenance.emit ~kind:Obs.Provenance.Tree_rebuilt
    ~cell:flat.Muxtree.root ~pass:"restructure"
    ~mechanism:Obs.Provenance.Restructure
    ~bits:flat.Muxtree.width ~area_delta:(-d.saved_cost) ();
  Obs.Provenance.emit ~kind:Obs.Provenance.Cell_removed
    ~cell:flat.Muxtree.root ~pass:"restructure"
    ~mechanism:Obs.Provenance.Restructure ();
  Rewire.replace_sig c ~from_:old_y ~to_:new_out

(* --- the pass --- *)

type report = {
  candidates : int;
  rebuilt : int;
  muxes_before : int;
  muxes_after : int;
  eq_removed : int;
}

let pp_report ppf r =
  Fmt.pf ppf "candidates=%d rebuilt=%d muxes %d->%d eq_removed=%d"
    r.candidates r.rebuilt r.muxes_before r.muxes_after r.eq_removed

let m_candidates = Obs.Metrics.counter "restructure.candidates"
let m_rebuilt = Obs.Metrics.counter "restructure.rebuilt"
let m_eq_removed = Obs.Metrics.counter "restructure.eq_removed"
let h_rows = Obs.Metrics.histogram "restructure.rows_per_tree"
let h_chain_len = Obs.Metrics.histogram "restructure.old_muxes_per_tree"
let h_height = Obs.Metrics.histogram "restructure.tree_height"

let run_once ?(min_saving = 1) ?(single_ctrl = true) (c : Circuit.t) : report =
  Obs.Trace.with_span "restructure.run_once" @@ fun () ->
  (* candidates are discovered once; each is re-flattened against the
     current circuit just before rebuilding, since rewiring one tree can
     refresh the data leaves of another *)
  let roots =
    List.map (fun f -> f.Muxtree.root) (Muxtree.find_all ~single_ctrl c)
  in
  let rebuilt = ref 0 in
  let muxes_before = ref 0 in
  let muxes_after = ref 0 in
  let eq_removed = ref 0 in
  let dirty = ref false in
  let cached_deps = ref None in
  let get_deps () =
    match !cached_deps with
    | Some d when not !dirty -> d
    | Some _ | None ->
      let d = Muxtree.make_deps c in
      cached_deps := Some d;
      dirty := false;
      d
  in
  List.iter
    (fun root ->
      if Budget.exhausted () then
        (* pass budget blown: leave the remaining trees as they are *)
        Budget.note_truncation ()
      else
      let deps = get_deps () in
      match Muxtree.flatten_root ~single_ctrl deps root with
      | None -> ()
      | Some flat ->
        let d = evaluate c deps.Muxtree.index flat in
        Obs.Metrics.observe_int h_rows (List.length flat.Muxtree.rows);
        Obs.Metrics.observe_int h_chain_len d.old_muxes;
        Obs.Metrics.observe_int h_height d.height;
        muxes_before := !muxes_before + d.old_muxes;
        if d.saved_cost >= min_saving then begin
          rebuild c d;
          dirty := true;
          incr rebuilt;
          muxes_after := !muxes_after + d.new_muxes;
          eq_removed := !eq_removed + List.length d.removable
        end
        else muxes_after := !muxes_after + d.old_muxes)
    roots;
  Obs.Metrics.add m_candidates (List.length roots);
  Obs.Metrics.add m_rebuilt !rebuilt;
  Obs.Metrics.add m_eq_removed !eq_removed;
  {
    candidates = List.length roots;
    rebuilt = !rebuilt;
    muxes_before = !muxes_before;
    muxes_after = !muxes_after;
    eq_removed = !eq_removed;
  }

let changed (r : report) = r.rebuilt > 0
