(* Verilog writer: netlist -> the same Verilog subset the frontend reads.

   Every cell becomes a continuous assignment over named wires (mux cells
   become ternaries, pmux cells priority ternary chains); dffs become
   always @(posedge clk) blocks with non-blocking assignments, clocked by
   an implicit generated clock port.  Round-tripping through the parser
   and elaborator yields an equivalent circuit (tested). *)

open Netlist

(* every wire gets a legal, unique Verilog name *)
let sanitize name =
  let buf = Buffer.create (String.length name) in
  String.iteri
    (fun i ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' -> Buffer.add_char buf ch
      | '0' .. '9' ->
        if i = 0 then Buffer.add_char buf '_';
        Buffer.add_char buf ch
      | _ -> Buffer.add_char buf '_')
    name;
  if Buffer.length buf = 0 then "_" else Buffer.contents buf

type namer = {
  of_wire : (int, string) Hashtbl.t;
  used : (string, unit) Hashtbl.t;
  claim : string -> string;
}

let build_namer (c : Circuit.t) : namer =
  let used = Hashtbl.create 64 in
  let claim base =
    let rec go candidate i =
      if Hashtbl.mem used candidate then
        go (Printf.sprintf "%s_%d" base i) (i + 1)
      else begin
        Hashtbl.replace used candidate ();
        candidate
      end
    in
    go base 0
  in
  let t = { of_wire = Hashtbl.create 64; used; claim } in
  (* ports keep their names when possible *)
  List.iter
    (fun w ->
      Hashtbl.replace t.of_wire w.Circuit.wire_id
        (claim (sanitize w.Circuit.wire_name)))
    (Circuit.inputs c @ Circuit.outputs c);
  Hashtbl.iter
    (fun id w ->
      if not (Hashtbl.mem t.of_wire id) then
        Hashtbl.replace t.of_wire id (claim (sanitize w.Circuit.wire_name)))
    c.Circuit.wires;
  t

let wire_name t id = Hashtbl.find t.of_wire id

(* Render a sigspec as a Verilog expression.  Contiguous runs of the same
   wire collapse to selects/ranges; mixed specs become concatenations
   (written MSB first). *)
let sig_expr (c : Circuit.t) (t : namer) (s : Bits.sigspec) : string =
  let n = Bits.width s in
  if n = 0 then "0"
  else begin
    (* split into maximal parts, LSB first *)
    let parts = ref [] in
    let flush_const bits =
      match bits with
      | [] -> ()
      | _ ->
        let w = List.length bits in
        let digits =
          List.rev_map (function true -> "1" | false -> "0") bits
        in
        parts := Printf.sprintf "%d'b%s" w (String.concat "" digits) :: !parts
    in
    let i = ref 0 in
    while !i < n do
      match s.(!i) with
      | Bits.C0 | Bits.C1 | Bits.Cx ->
        let bits = ref [] in
        while
          !i < n
          && match s.(!i) with Bits.Of_wire _ -> false | _ -> true
        do
          (bits :=
             (match s.(!i) with Bits.C1 -> true | _ -> false) :: !bits);
          incr i
        done;
        flush_const (List.rev !bits)
      | Bits.Of_wire (wid, off) ->
        let start = off in
        let len = ref 1 in
        incr i;
        let continues () =
          !i < n
          &&
          match s.(!i) with
          | Bits.Of_wire (w2, o2) -> w2 = wid && o2 = start + !len
          | _ -> false
        in
        while continues () do
          incr len;
          incr i
        done;
        let name = wire_name t wid in
        let w = Circuit.wire c wid in
        let part =
          if !len = w.Circuit.width && start = 0 then name
          else if !len = 1 then Printf.sprintf "%s[%d]" name start
          else Printf.sprintf "%s[%d:%d]" name (start + !len - 1) start
        in
        parts := part :: !parts
    done;
    match !parts with
    | [ one ] -> one
    | many -> Printf.sprintf "{%s}" (String.concat ", " many)
  end

let bit_expr c t (b : Bits.bit) = sig_expr c t [| b |]

let cell_expr (c : Circuit.t) (t : namer) (cell : Cell.t) : string =
  let s = sig_expr c t in
  match cell with
  | Cell.Unary { op = Cell.Not; a; _ } -> Printf.sprintf "~%s" (s a)
  | Cell.Unary { op = Cell.Logic_not; a; _ } -> Printf.sprintf "!%s" (s a)
  | Cell.Unary { op = Cell.Reduce_and; a; _ } -> Printf.sprintf "&%s" (s a)
  | Cell.Unary { op = Cell.Reduce_or | Cell.Reduce_bool; a; _ } ->
    Printf.sprintf "|%s" (s a)
  | Cell.Unary { op = Cell.Reduce_xor; a; _ } -> Printf.sprintf "^%s" (s a)
  | Cell.Binary { op; a; b; _ } ->
    let sym =
      match op with
      | Cell.And -> "&"
      | Cell.Or -> "|"
      | Cell.Xor -> "^"
      | Cell.Xnor -> "~^"
      | Cell.Eq -> "=="
      | Cell.Ne -> "!="
      | Cell.Logic_and -> "&&"
      | Cell.Logic_or -> "||"
      | Cell.Add -> "+"
      | Cell.Sub -> "-"
    in
    Printf.sprintf "%s %s %s" (s a) sym (s b)
  | Cell.Mux { a; b; s = sel; _ } ->
    Printf.sprintf "%s ? %s : %s" (bit_expr c t sel) (s b) (s a)
  | Cell.Pmux { a; b; s = sel; _ } ->
    (* priority chain, lowest index first *)
    let w = Bits.width a in
    let rec chain i =
      if i >= Bits.width sel then s a
      else
        Printf.sprintf "%s ? %s : (%s)" (bit_expr c t sel.(i))
          (s (Bits.slice b ~off:(i * w) ~len:w))
          (chain (i + 1))
    in
    chain 0
  | Cell.Dff _ -> invalid_arg "cell_expr: dff handled separately"

(* Cells whose output is a full wire can assign it directly; others drive
   fresh intermediates stitched together by per-wire concat assigns.  To
   keep the writer simple we require (and the elaborator guarantees) that
   every cell output is a whole wire; outputs spanning several wires are
   split by an auxiliary pre-pass. *)

exception Unsupported of string

let output_wire (y : Bits.sigspec) : int option =
  match y.(0) with
  | Bits.Of_wire (wid, 0) ->
    let ok = ref true in
    Array.iteri
      (fun i b ->
        match b with
        | Bits.Of_wire (w2, o2) when w2 = wid && o2 = i -> ()
        | _ -> ok := false)
      y;
    if !ok then Some wid else None
  | _ -> None

let write (c : Circuit.t) : string =
  let t = build_namer c in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  let range w = if w = 1 then "" else Printf.sprintf "[%d:0] " (w - 1) in
  (* header *)
  let has_dff =
    Circuit.fold_cells
      (fun _ cell acc ->
        (match cell with Cell.Dff _ -> true | _ -> false) || acc)
      c false
  in
  let inputs = Circuit.inputs c and outputs = Circuit.outputs c in
  let clk = if has_dff then t.claim "clk" else "clk" in
  let port_decls =
    (if has_dff then [ Printf.sprintf "input %s" clk ] else [])
    @ List.map
        (fun w ->
          Printf.sprintf "input %s%s" (range w.Circuit.width)
            (wire_name t w.Circuit.wire_id))
        inputs
    @ List.map
        (fun w ->
          Printf.sprintf "output %s%s" (range w.Circuit.width)
            (wire_name t w.Circuit.wire_id))
        outputs
  in
  add "module %s(%s);\n" (sanitize c.Circuit.name)
    (String.concat ", " port_decls);
  (* declarations for internal wires *)
  let port_ids = Hashtbl.create 16 in
  List.iter
    (fun w -> Hashtbl.replace port_ids w.Circuit.wire_id ())
    (inputs @ outputs);
  let dff_q_ids = Hashtbl.create 16 in
  Circuit.iter_cells
    (fun _ cell ->
      match cell with
      | Cell.Dff { q; _ } -> (
        match output_wire q with
        | Some wid -> Hashtbl.replace dff_q_ids wid ()
        | None -> raise (Unsupported "dff output is not a whole wire"))
      | _ -> ())
    c;
  Hashtbl.iter
    (fun id w ->
      if not (Hashtbl.mem port_ids id) then
        if Hashtbl.mem dff_q_ids id then
          add "  reg %s%s;\n" (range w.Circuit.width) (wire_name t id)
        else add "  wire %s%s;\n" (range w.Circuit.width) (wire_name t id))
    c.Circuit.wires;
  (* a register driving an output port needs an internal reg + assign *)
  (* (the elaborator never produces this; keep it simple) *)
  (* body: combinational cells as assigns, dffs as clocked blocks *)
  List.iter
    (fun id ->
      let cell = Circuit.cell c id in
      match cell with
      | Cell.Dff { d; q } ->
        let qw =
          match output_wire q with
          | Some wid -> wire_name t wid
          | None -> raise (Unsupported "dff output is not a whole wire")
        in
        add "  always @(posedge %s) %s <= %s;\n" clk qw (sig_expr c t d)
      | _ -> (
        let y = Cell.output cell in
        match output_wire y with
        | Some wid ->
          add "  assign %s = %s;\n" (wire_name t wid) (cell_expr c t cell)
        | None ->
          raise
            (Unsupported
               (Printf.sprintf "cell %d output is not a whole wire" id))))
    (Circuit.cell_ids c);
  add "endmodule\n";
  Buffer.contents buf
