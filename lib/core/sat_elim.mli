(** SAT-based redundancy elimination (paper Section II).

    The traversal mirrors the Yosys opt_muxtree baseline, but descendant
    controls are resolved with the full {!Engine} ladder instead of only by
    identical-signal matching, and data-port bits determined by the
    inference rules under the path condition become constants. *)

open Netlist

type report = {
  muxes_bypassed : int;  (** per-bit bypasses of resolved descendants *)
  data_bits_folded : int;
  dead_branches : int;  (** contradictory path conditions found *)
  engine : Engine.stats;
}

val pp_report : Format.formatter -> report -> unit

val run_once : Config.t -> Circuit.t -> report
(** One full traversal of every muxtree.  Interleave with opt_expr /
    opt_clean and iterate (see {!Driver.smartly}). *)

val changed : report -> bool
