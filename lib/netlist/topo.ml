(* Topological ordering of the combinational cells of a circuit.

   Dff cells break combinational paths: their outputs are treated as
   sources (like primary inputs) and their inputs as sinks.  A cycle through
   combinational cells is reported via [Combinational_cycle]. *)

exception Combinational_cycle of int list (* cell ids on the cycle *)

(* Returns combinational cell ids in dependency order (drivers first).
   Dff cells are appended at the end (they have no ordering constraints
   among themselves). *)
let sort (c : Circuit.t) : int list =
  let index = Index.build c in
  let state = Hashtbl.create 64 in
  (* 0 = unvisited, 1 = in progress, 2 = done *)
  let order = ref [] in
  let rec visit path id =
    match Hashtbl.find_opt state id with
    | Some 2 -> ()
    | Some 1 ->
      (* [path] is the DFS ancestor chain, most recent first, and contains
         [id]; trim it so the exception carries exactly the cycle *)
      let rec take acc = function
        | [] -> List.rev acc
        | x :: _ when x = id -> List.rev acc
        | x :: rest -> take (x :: acc) rest
      in
      raise (Combinational_cycle (id :: take [] path))
    | Some _ | None ->
      let cell = Circuit.cell c id in
      if Cell.is_combinational cell then begin
        Hashtbl.replace state id 1;
        List.iter
          (fun b ->
            match Index.driving_cell index b with
            | Some (did, _) when Cell.is_combinational (Circuit.cell c did) ->
              visit (id :: path) did
            | Some _ | None -> ())
          (Cell.input_bits cell);
        Hashtbl.replace state id 2;
        order := id :: !order
      end
      else Hashtbl.replace state id 2
  in
  List.iter (visit []) (Circuit.cell_ids c);
  let comb = List.rev !order in
  let seq =
    List.filter
      (fun id -> not (Cell.is_combinational (Circuit.cell c id)))
      (Circuit.cell_ids c)
  in
  comb @ seq

let is_acyclic c =
  match sort c with _ -> true | exception Combinational_cycle _ -> false

(* Depth of each combinational cell: 1 + max depth of driver cells.
   Used to measure muxtree height and circuit logic depth. *)
let depths (c : Circuit.t) : (int, int) Hashtbl.t =
  let index = Index.build c in
  let order = sort c in
  let depth = Hashtbl.create 64 in
  List.iter
    (fun id ->
      let cell = Circuit.cell c id in
      if Cell.is_combinational cell then begin
        let d =
          List.fold_left
            (fun acc b ->
              match Index.driving_cell index b with
              | Some (did, _) -> (
                match Hashtbl.find_opt depth did with
                | Some dd -> max acc dd
                | None -> acc)
              | None -> acc)
            0
            (Cell.input_bits cell)
        in
        Hashtbl.replace depth id (d + 1)
      end)
    order;
  depth

let logic_depth c =
  Hashtbl.fold (fun _ d acc -> max d acc) (depths c) 0
