(* Differential harness for the SAT session + verdict memoization.

   The memoized/incremental fast path (one persistent Cdcl.Session, the
   global Memo cache consulted before sim/SAT) must be observationally
   identical to the slow path (fresh solver per query, cache disabled).
   The property tests below generate random small netlists with random
   known facts and run every determine query through both paths — twice
   through the fast path, so the second run exercises cache hits — and
   assert identical verdicts.  Directed cases then pin down the cache-key
   semantics (alpha-equivalence hits, different-target separation,
   irrelevant-known exclusion), the session-mode DIMACS dumps (replay
   round-trip), and the end-to-end flow (memo on vs off must produce the
   same final netlist, cell for cell). *)

open Netlist

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- building circuits from integer specs ---

   A spec is shrink-friendly: every operand is an index resolved modulo
   the number of nodes built so far, so QCheck can drop ops or shrink
   integers without ever producing a dangling reference. *)

type spec = {
  n_inputs : int;  (* 1..5, from a small_nat *)
  ops : (int * int * int * int) list;  (* kind, a, b, c *)
  knowns : (int * bool) list;  (* node index, value *)
  target : int;  (* node index *)
}

let build_spec (s : spec) : Circuit.t * (Bits.bit * bool) list * Bits.bit =
  let c = Circuit.create "spec" in
  let n_inputs = 1 + (s.n_inputs mod 5) in
  let nodes = ref [] in
  let n_nodes = ref 0 in
  let push b =
    nodes := b :: !nodes;
    incr n_nodes
  in
  for i = 0 to n_inputs - 1 do
    push (Circuit.bit_of_wire (Circuit.add_input c (Printf.sprintf "i%d" i) ~width:1))
  done;
  let node i = List.nth !nodes (!n_nodes - 1 - (i mod !n_nodes)) in
  List.iter
    (fun (kind, a, b, sel) ->
      let x = node a and y = node b and z = node sel in
      let r =
        match kind mod 5 with
        | 0 -> Circuit.mk_and c x y
        | 1 -> Circuit.mk_or c x y
        | 2 -> Circuit.mk_xor c x y
        | 3 -> Circuit.mk_not c x
        | _ -> (Circuit.mk_mux c ~a:[| x |] ~b:[| y |] ~s:z).(0)
      in
      push r)
    s.ops;
  let target = node s.target in
  (* drop facts on the target itself and keep the first value when the
     generator names one bit twice — Inference.set raises on a
     contradictory insert, which is the caller's bug, not a query *)
  let seen = Hashtbl.create 8 in
  let knowns =
    List.filter_map
      (fun (i, v) ->
        let b = node i in
        if b = target || Hashtbl.mem seen b then None
        else begin
          Hashtbl.add seen b ();
          Some (b, v)
        end)
      s.knowns
  in
  c, knowns, target

let mk_known (facts : (Bits.bit * bool) list) : Smartly.Inference.known =
  let k : Smartly.Inference.known = Bits.Bit_tbl.create 8 in
  List.iter (fun (b, v) -> ignore (Smartly.Inference.set k b v)) facts;
  k

let determine ?session cfg c facts target =
  let index = Index.build c in
  let stats = Smartly.Engine.fresh_stats () in
  Smartly.Engine.determine ?session cfg stats c index (mk_known facts) ~target

(* --- the differential property --- *)

let fast_cfg cfg = { cfg with Smartly.Config.enable_sat_memo = true }

let slow_cfg cfg =
  { cfg with
    Smartly.Config.enable_sat_memo = false;
    Smartly.Config.enable_sat_session = false }

let verdict_name = function
  | Smartly.Engine.Forced true -> "forced_true"
  | Smartly.Engine.Forced false -> "forced_false"
  | Smartly.Engine.Free -> "free"
  | Smartly.Engine.Unreachable -> "unreachable"
  | Smartly.Engine.Unknown -> "unknown"

(* Two ladder shapes: the default (rules, then sim, SAT held in reserve)
   and a SAT-only variant (rules and simulation both disabled) so the
   session/memo machinery is exercised on every query, not only on the
   cones the cheaper rungs fail to crack. *)
let cfg_variants =
  [
    "default", Smartly.Config.default;
    ( "sat-only",
      { Smartly.Config.default with
        Smartly.Config.enable_inference_rules = false;
        Smartly.Config.sim_input_threshold = 0 } );
  ]

let arb_spec =
  let open QCheck in
  let arb =
    quad small_nat
      (list_of_size (Gen.int_range 0 12)
         (quad small_nat small_nat small_nat small_nat))
      (small_list (pair small_nat bool))
      small_nat
  in
  map ~rev:(fun s -> s.n_inputs, s.ops, s.knowns, s.target)
    (fun (n_inputs, ops, knowns, target) -> { n_inputs; ops; knowns; target })
    arb

let prop_memo_matches_fresh =
  (* one shared session + the process-global memo serve every fast-path
     query of the whole run, exactly like a sat_elim sweep; the fresh
     path rebuilds the world per query *)
  let session = Cdcl.Session.create () in
  Smartly.Memo.reset ();
  QCheck.Test.make ~count:600 ~name:"memoized session = fresh per query"
    arb_spec (fun spec ->
      let c, facts, target = build_spec spec in
      List.for_all
        (fun (_, cfg) ->
          let fresh = determine (slow_cfg cfg) c facts target in
          let fast1 = determine ~session (fast_cfg cfg) c facts target in
          (* second run: same query again, now warm in the cache *)
          let fast2 = determine ~session (fast_cfg cfg) c facts target in
          if fast1 <> fresh || fast2 <> fresh then
            QCheck.Test.fail_reportf
              "verdict mismatch: fresh=%s fast1=%s fast2=%s"
              (verdict_name fresh) (verdict_name fast1) (verdict_name fast2)
          else true)
        cfg_variants)

(* --- directed cache-key cases --- *)

(* a 3-input xor cone: no inference rule cracks it, so with one input
   known the engine must reach the memo-fronted sim/SAT rungs *)
let xor3 ?(pad = 0) () =
  let c = Circuit.create "xor3" in
  (* pad shifts every wire id so the two circuits are alpha-equivalent
     but share no concrete ids *)
  for i = 0 to pad - 1 do
    ignore (Circuit.add_input c (Printf.sprintf "pad%d" i) ~width:1)
  done;
  let a = Circuit.add_input c "a" ~width:1 in
  let b = Circuit.add_input c "b" ~width:1 in
  let d = Circuit.add_input c "d" ~width:1 in
  let x1 = Circuit.mk_xor c (Circuit.bit_of_wire a) (Circuit.bit_of_wire b) in
  let y = Circuit.mk_xor c x1 (Circuit.bit_of_wire d) in
  c, Circuit.bit_of_wire a, y

let determine_how cfg c facts target =
  let index = Index.build c in
  let stats = Smartly.Engine.fresh_stats () in
  let v, how =
    Smartly.Engine.determine_how cfg stats c index (mk_known facts) ~target
  in
  v, how, stats

let test_alpha_equivalent_hit () =
  Smartly.Memo.reset ();
  let c1, a1, y1 = xor3 () in
  let c2, a2, y2 = xor3 ~pad:7 () in
  let cfg = Smartly.Config.default in
  let v1, how1, _ = determine_how cfg c1 [ a1, true ] y1 in
  let v2, how2, st2 = determine_how cfg c2 [ a2, true ] y2 in
  check_string "first query missed" "sim" (Smartly.Engine.source_name how1);
  check_string "alpha-equivalent query hit" "memo"
    (Smartly.Engine.source_name how2);
  check_int "hit counted" 1 st2.Smartly.Engine.memo_hits;
  check_bool "same verdict" true (v1 = v2);
  check_bool "xor cone is free" true (v1 = Smartly.Engine.Free)

let subgraph_view c targets knowns =
  let index = Index.build c in
  let sg = Smartly.Subgraph.create c index in
  List.iter (fun t -> Smartly.Subgraph.add_cone sg ~k:6 t) (targets @ knowns);
  Smartly.Subgraph.prune sg ~relevant:(targets @ knowns)

let test_key_alpha_equivalence () =
  (* same structure, disjoint wire ids: identical keys *)
  let c1, a1, y1 = xor3 () in
  let c2, a2, y2 = xor3 ~pad:7 () in
  let k1 = Smartly.Memo.key c1 (subgraph_view c1 [ y1 ] [ a1 ]) (
      let k = Bits.Bit_tbl.create 4 in Bits.Bit_tbl.replace k a1 true; k)
      ~target:y1
  in
  let k2 = Smartly.Memo.key c2 (subgraph_view c2 [ y2 ] [ a2 ]) (
      let k = Bits.Bit_tbl.create 4 in Bits.Bit_tbl.replace k a2 true; k)
      ~target:y2
  in
  check_string "alpha-equivalent keys collide (by design)" k1 k2

let test_key_distinguishes_target () =
  (* two structurally identical gates in one circuit: the key must keep
     their queries apart even though the serialized shapes agree *)
  let c = Circuit.create "twins" in
  let a = Circuit.add_input c "a" ~width:1 in
  let b = Circuit.add_input c "b" ~width:1 in
  let d = Circuit.add_input c "d" ~width:1 in
  let ab = Bits.Of_wire (a.Circuit.wire_id, 0) in
  let bb = Bits.Of_wire (b.Circuit.wire_id, 0) in
  let db = Bits.Of_wire (d.Circuit.wire_id, 0) in
  let y1 = Circuit.mk_and c ab bb in
  let y2 = Circuit.mk_and c ab db in
  let known = Bits.Bit_tbl.create 4 in
  Bits.Bit_tbl.replace known ab true;
  let k1 = Smartly.Memo.key c (subgraph_view c [ y1; y2 ] [ ab ]) known ~target:y1 in
  let k2 = Smartly.Memo.key c (subgraph_view c [ y1; y2 ] [ ab ]) known ~target:y2 in
  (* y1's cone is and(a,b), y2's is and(a,d): alpha-equivalent shapes,
     but the shared known on [a] anchors different positions *)
  check_bool "keys may collide only when verdicts agree" true
    (k1 = k2
    || (k1 <> k2
       && (let v1, _, _ = determine_how Smartly.Config.default c [ ab, true ] y1 in
           let v2, _, _ = determine_how Smartly.Config.default c [ ab, true ] y2 in
           v1 = Smartly.Engine.Free && v2 = Smartly.Engine.Free)));
  (* the decisive separation: same cone, opposite known value *)
  let known_f = Bits.Bit_tbl.create 4 in
  Bits.Bit_tbl.replace known_f ab false;
  let k3 = Smartly.Memo.key c (subgraph_view c [ y1 ] [ ab ]) known_f ~target:y1 in
  check_bool "known value separates keys" true (k1 <> k3)

let test_key_excludes_irrelevant_knowns () =
  let c, a, y = xor3 () in
  let z = Circuit.add_input c "z" ~width:1 in
  let zb = Circuit.bit_of_wire z in
  let view = subgraph_view c [ y ] [ a ] in
  let k_base = Bits.Bit_tbl.create 4 in
  Bits.Bit_tbl.replace k_base a true;
  let key_base = Smartly.Memo.key c view k_base ~target:y in
  let k_extra = Bits.Bit_tbl.create 4 in
  Bits.Bit_tbl.replace k_extra a true;
  Bits.Bit_tbl.replace k_extra zb false;
  let key_extra = Smartly.Memo.key c view k_extra ~target:y in
  check_string "disconnected known excluded from key" key_base key_extra

let test_memo_store_semantics () =
  Smartly.Memo.reset ();
  check_bool "miss on empty" true (Smartly.Memo.find "k" = None);
  Smartly.Memo.store "k" (Smartly.Memo.Forced true);
  check_bool "hit after store" true
    (Smartly.Memo.find "k" = Some (Smartly.Memo.Forced true));
  (* first writer wins *)
  Smartly.Memo.store "k" Smartly.Memo.Free;
  check_bool "first writer kept" true
    (Smartly.Memo.find "k" = Some (Smartly.Memo.Forced true));
  (* FIFO eviction at tiny capacity *)
  Smartly.Memo.reset ~capacity:2 ();
  Smartly.Memo.store "a" Smartly.Memo.Free;
  Smartly.Memo.store "b" Smartly.Memo.Free;
  Smartly.Memo.store "c" Smartly.Memo.Free;
  check_int "capacity bounds entries" 2 (Smartly.Memo.size ());
  check_bool "oldest evicted" true (Smartly.Memo.find "a" = None);
  check_bool "newest kept" true (Smartly.Memo.find "c" <> None);
  Smartly.Memo.reset ()

(* --- session-mode DIMACS dumps replay round-trip (satellite: the
   sat-dump fix) ---

   A session query's clause database holds guarded clause groups for
   cells outside the query, and its verdict depends on assumption
   literals a bare DIMACS file knows nothing about.  The dump must
   therefore be self-contained: assumptions (path facts, activation
   guards) and the final target polarity appear as unit clauses, so a
   from-scratch solver on the dumped file alone reproduces the recorded
   final solve result. *)

let test_session_dump_replays () =
  Obs.Metrics.reset ();
  Smartly.Memo.reset ();
  Smartly.Engine.Sat_log.reset ();
  let c, a, y = xor3 () in
  let cfg =
    { Smartly.Config.default with
      Smartly.Config.enable_inference_rules = false;
      Smartly.Config.sim_input_threshold = 0;
      Smartly.Config.enable_sat_memo = false }
  in
  let session = Cdcl.Session.create () in
  let index = Index.build c in
  let stats = Smartly.Engine.fresh_stats () in
  let v =
    Smartly.Engine.determine ~session cfg stats c index (mk_known [ a, true ])
      ~target:y
  in
  check_bool "sat resolved it" true (v = Smartly.Engine.Free);
  let entries = Smartly.Engine.Sat_log.hardest () in
  check_bool "queries were logged" true (entries <> []);
  List.iter
    (fun (e : Smartly.Engine.Sat_log.entry) ->
      check_string "session mode recorded" "session" e.Smartly.Engine.Sat_log.mode;
      let cnf, comments =
        Cdcl.Dimacs.parse_string_ext
          (e.Smartly.Engine.Sat_log.dimacs e.Smartly.Engine.Sat_log.id)
      in
      check_bool "metadata comment present" true
        (List.exists
           (fun l ->
             let p = "smartly-sat-query" in
             let n = String.length p in
             String.length l >= n && String.sub l 0 n = p)
           comments);
      let s = Cdcl.Dimacs.load cnf in
      let replayed = Cdcl.Solver.solve s in
      check_string "replay reproduces the recorded solve"
        (Smartly.Engine.Sat_log.solve_name e.Smartly.Engine.Sat_log.solve)
        (Smartly.Engine.Sat_log.solve_name replayed))
    entries

(* --- end-to-end: memo on vs off produce the identical netlist --- *)

let run_smartly ~memo ~check_invariants c =
  Obs.Metrics.reset ();
  Smartly.Memo.reset ();
  Smartly.Engine.Sat_log.reset ();
  let cfg = { Smartly.Config.default with Smartly.Config.enable_sat_memo = memo } in
  if check_invariants then begin
    let inv = Lint.Invariant.create ~equiv:true c in
    ignore (Smartly.Driver.smartly ~cfg ~after_pass:(Lint.Invariant.after_pass inv) c);
    check_bool "invariants hold" true (Lint.Invariant.ok inv);
    check_bool "invariants actually ran" true (Lint.Invariant.checks_run inv > 0)
  end
  else ignore (Smartly.Driver.smartly ~cfg c)

let assert_same_netlist name c0 ~check_invariants =
  let c_on = Circuit.copy c0 in
  let c_off = Circuit.copy c0 in
  run_smartly ~memo:true ~check_invariants c_on;
  run_smartly ~memo:false ~check_invariants c_off;
  check_string
    (name ^ ": memo on/off netlists identical")
    (Netlist.Pp.to_string c_off) (Netlist.Pp.to_string c_on)

let test_e2e_fig3_identical () =
  (* the paper's Fig. 3 nested-mux example, invariant-checked after
     every sub-pass in both runs *)
  let c = Circuit.create "fig3" in
  let s = Circuit.add_input c "S" ~width:1 in
  let r = Circuit.add_input c "R" ~width:1 in
  let a = Circuit.add_input c "A" ~width:4 in
  let b = Circuit.add_input c "B" ~width:4 in
  let cc = Circuit.add_input c "C" ~width:4 in
  let sb = Circuit.bit_of_wire s in
  let s_or_r = Circuit.mk_or c sb (Circuit.bit_of_wire r) in
  let inner =
    Circuit.mk_mux c ~a:(Circuit.sig_of_wire b) ~b:(Circuit.sig_of_wire a)
      ~s:s_or_r
  in
  let outer = Circuit.mk_mux c ~a:(Circuit.sig_of_wire cc) ~b:inner ~s:sb in
  let yw = Circuit.add_output c "Y" ~width:4 in
  ignore
    (Circuit.add_cell c
       (Cell.Binary
          { op = Cell.Or; a = outer; b = Bits.all_zero ~width:4;
            y = Circuit.sig_of_wire yw }));
  assert_same_netlist "fig3" c ~check_invariants:true

let test_e2e_mux_chain_identical () =
  (* the CI smoke profile: mux-heavy, resolves real queries through the
     engine ladder *)
  let c = Workloads.Profiles.circuit Workloads.Profiles.mux_chain in
  assert_same_netlist "mux_chain" c ~check_invariants:false

let () =
  Alcotest.run "sat_memo"
    [
      ( "differential",
        [ QCheck_alcotest.to_alcotest prop_memo_matches_fresh ] );
      ( "cache-key",
        [
          Alcotest.test_case "alpha-equivalent query hits" `Quick
            test_alpha_equivalent_hit;
          Alcotest.test_case "alpha-equivalent keys equal" `Quick
            test_key_alpha_equivalence;
          Alcotest.test_case "target/known separate keys" `Quick
            test_key_distinguishes_target;
          Alcotest.test_case "irrelevant knowns excluded" `Quick
            test_key_excludes_irrelevant_knowns;
          Alcotest.test_case "store semantics" `Quick test_memo_store_semantics;
        ] );
      ( "replay",
        [
          Alcotest.test_case "session dumps replay" `Quick
            test_session_dump_replays;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "fig3 memo on/off identical" `Quick
            test_e2e_fig3_identical;
          Alcotest.test_case "mux_chain memo on/off identical" `Slow
            test_e2e_mux_chain_identical;
        ] );
    ]
