(** Lexer for the Verilog subset. *)

type token =
  | IDENT of string
  | NUMBER of int  (** plain unsized decimal *)
  | SIZED of Ast.constant  (** e.g. [4'b10z1], [8'hff], [3'd5] *)
  | KW of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COLON
  | SEMI
  | COMMA
  | AT
  | STAR
  | QUESTION
  | EQUAL
  | EQEQ
  | NONBLOCK
  | NEQ
  | AMP
  | AMPAMP
  | PIPE
  | PIPEPIPE
  | CARET
  | XNOR_OP
  | TILDE
  | BANG
  | PLUS
  | MINUS
  | EOF

exception Lex_error of string * Loc.pos  (** message, source position *)

val tokenize : string -> (token * Loc.pos) list
(** Tokens paired with their source positions (byte offset + 1-based
    line/column); line and block comments are skipped.  The list ends with
    [EOF].
    @raise Lex_error on invalid input, with the line/column of the
    offending character. *)
