(** Textual dump of a circuit (RTLIL-flavoured). *)

val pp : Format.formatter -> Circuit.t -> unit
val to_string : Circuit.t -> string
val print : Circuit.t -> unit
