(** Named workload profiles standing in for the paper's benchmarks.

    Each profile mixes RTL idioms in proportions chosen to reproduce the
    published character of the corresponding circuit; generation is
    deterministic in the seed and goes through the full Verilog frontend.
    See DESIGN.md for the substitution rationale. *)

type block =
  | Pipeline_stage of { width : int }
      (** a clocked register stage, inferred through always @(posedge) *)
  | Case of { sel_width : int; items : int; width : int; distinct : int }
      (** a structured case: contiguous selector ranges share leaves *)
  | Random_case of { sel_width : int; items : int; width : int; distinct : int }
      (** unstructured leaf mapping: little for the restructuring pass *)
  | Foldable of { width : int }  (** constant-foldable logic for the baseline *)
  | Casez_priority of { sel_width : int; width : int }
  | Correlated_ifs of { depth : int; width : int }
      (** nested ifs with logically dependent conditions: SAT territory *)
  | Redundant_nest of { width : int }
      (** same-condition nesting: the baseline removes these (Fig. 1) *)
  | Priority_chain of { depth : int; width : int }
      (** independent conditions: neither optimizer helps *)
  | Crossbar_port of { n_grants : int; width : int }
  | Datapath of { width : int; ops : int }

type profile = {
  name : string;
  seed : int;
  style : Hdl.Elaborate.case_style;
  repeat : int;
  mix : block list;
  register_fraction : int;  (** % of datapath cells staged behind dffs *)
}

val source : profile -> string
(** The generated Verilog text. *)

val circuit : profile -> Netlist.Circuit.t
(** Elaborated (and register-staged) netlist. *)

val top_cache_axi : profile
val pci_bridge32 : profile
val wb_conmax : profile
val mem_ctrl : profile
val wb_dma : profile
val tv80 : profile
val usb_funct : profile
val ethernet : profile
val riscv : profile
val ac97_ctrl : profile

val mux_chain : profile
(** A small seconds-fast smoke profile (CI, quick manual runs); not part
    of {!public_benchmarks}. *)

val public_benchmarks : profile list
(** The ten IWLS-2005 / RISC-V stand-ins, Table II order. *)

val industrial_benchmarks : profile list
(** Eight mux/pmux-rich test points (Section IV-B). *)

val by_name : string -> profile option
