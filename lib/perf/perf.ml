(* Continuous benchmarking: statistical runner, baseline store, regression
   gate.  See perf.mli for the pipeline overview.

   Numbers written here get committed and diffed forever after, so two
   rules hold throughout: all timing is monotonic (Obs.Clock), and all
   serialization goes through Obs.Json (locale-stable, round-trippable by
   its own parser). *)

module Stat = struct
  type summary = { median : float; min : float; mad : float; runs : int }

  let median (a : float array) : float =
    let n = Array.length a in
    if n = 0 then 0.0
    else begin
      let s = Array.copy a in
      Array.sort compare s;
      if n mod 2 = 1 then s.(n / 2)
      else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0
    end

  let summarize (xs : float list) : summary =
    match xs with
    | [] -> { median = 0.0; min = 0.0; mad = 0.0; runs = 0 }
    | _ ->
      let a = Array.of_list xs in
      let med = median a in
      let dev = Array.map (fun x -> Float.abs (x -. med)) a in
      {
        median = med;
        min = Array.fold_left Float.min a.(0) a;
        mad = median dev;
        runs = Array.length a;
      }
end

module Measure = struct
  type timed = { wall : Stat.summary; gc : Obs.Metrics.gc_delta }

  let repeat ~reps ?(prepare = fun () -> ()) (f : unit -> 'a) : 'a * timed =
    let reps = max 1 reps in
    let times = ref [] in
    let result = ref None in
    let gc = ref None in
    for i = 1 to reps do
      prepare ();
      let mark = Obs.Metrics.gc_mark () in
      let t0 = Obs.Clock.now_ns () in
      let r = f () in
      times := Obs.Clock.elapsed t0 :: !times;
      (* the GC delta describes the same repetition the deterministic
         counters describe: the last one *)
      if i = reps then begin
        gc := Some (Obs.Metrics.gc_delta mark);
        result := Some r
      end
    done;
    match !result, !gc with
    | Some r, Some g -> r, { wall = Stat.summarize (List.rev !times); gc = g }
    | _ -> assert false (* reps >= 1 *)
end

module Schema = struct
  let version = "smartly-bench-v1"

  type kind = Area | Count | Time | Gc

  let kind_name = function
    | Area -> "area"
    | Count -> "count"
    | Time -> "time"
    | Gc -> "gc"

  let kind_of_name = function
    | "area" -> Some Area
    | "count" -> Some Count
    | "time" -> Some Time
    | "gc" -> Some Gc
    | _ -> None

  type direction = Lower_better | Higher_better

  let direction_name = function
    | Lower_better -> "lower"
    | Higher_better -> "higher"

  let direction_of_name = function
    | "lower" -> Some Lower_better
    | "higher" -> Some Higher_better
    | _ -> None

  type metric = {
    name : string;
    kind : kind;
    direction : direction;
    value : float;
    min : float option;
    mad : float option;
    runs : int option;
  }

  let scalar ?(direction = Lower_better) ~name ~kind value =
    { name; kind; direction; value; min = None; mad = None; runs = None }

  let timing ~name (s : Stat.summary) =
    {
      name;
      kind = Time;
      direction = Lower_better;
      value = s.Stat.median;
      min = Some s.Stat.min;
      mad = Some s.Stat.mad;
      runs = Some s.Stat.runs;
    }

  type case = { name : string; metrics : metric list }

  type env = {
    hostname : string;
    ocaml_version : string;
    git_rev : string;
    repetitions : int;
    created : string;
  }

  let git_rev () =
    try
      let ic =
        Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
      in
      let line = try input_line ic with End_of_file -> "" in
      let status = Unix.close_process_in ic in
      match status, String.trim line with
      | Unix.WEXITED 0, rev when rev <> "" -> rev
      | _ -> "unknown"
    with Unix.Unix_error _ | Sys_error _ -> "unknown"

  let fingerprint ~reps =
    let tm = Unix.gmtime (Unix.time ()) in
    {
      hostname = (try Unix.gethostname () with Unix.Unix_error _ -> "unknown");
      ocaml_version = Sys.ocaml_version;
      git_rev = git_rev ();
      repetitions = max 1 reps;
      created =
        Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
          (tm.Unix.tm_mon + 1) tm.Unix.tm_mday;
    }

  type doc = { section : string; env : env; cases : case list }

  (* --- encoding --- *)

  let metric_to_json (m : metric) : Obs.Json.t =
    let open Obs.Json in
    Obj
      ([
         "name", Str m.name;
         "kind", Str (kind_name m.kind);
         "direction", Str (direction_name m.direction);
         "value", Num m.value;
       ]
      @ (match m.min with Some v -> [ "min", Num v ] | None -> [])
      @ (match m.mad with Some v -> [ "mad", Num v ] | None -> [])
      @ match m.runs with Some r -> [ "runs", num_of_int r ] | None -> [])

  let env_to_json (e : env) : Obs.Json.t =
    let open Obs.Json in
    Obj
      [
        "hostname", Str e.hostname;
        "ocaml_version", Str e.ocaml_version;
        "git_rev", Str e.git_rev;
        "repetitions", num_of_int e.repetitions;
        "created", Str e.created;
      ]

  let to_json (d : doc) : Obs.Json.t =
    let open Obs.Json in
    Obj
      [
        "schema", Str version;
        "section", Str d.section;
        "env", env_to_json d.env;
        ( "cases",
          List
            (List.map
               (fun (c : case) ->
                 Obj
                   [
                     "name", Str c.name;
                     "metrics", List (List.map metric_to_json c.metrics);
                   ])
               d.cases) );
      ]

  (* --- decoding --- *)

  let ( let* ) = Result.bind

  let require what = function
    | Some v -> Ok v
    | None -> Error ("missing or ill-typed " ^ what)

  let metric_of_json (j : Obs.Json.t) : (metric, string) result =
    let open Obs.Json in
    let* name = require "metric name" (mem_str "name" j) in
    let ctx what = Printf.sprintf "metric %s: %s" name what in
    let* kind_s = require (ctx "kind") (mem_str "kind" j) in
    let* kind =
      match kind_of_name kind_s with
      | Some k -> Ok k
      | None -> Error (ctx (Printf.sprintf "unknown kind %S" kind_s))
    in
    let* dir_s = require (ctx "direction") (mem_str "direction" j) in
    let* direction =
      match direction_of_name dir_s with
      | Some d -> Ok d
      | None -> Error (ctx (Printf.sprintf "unknown direction %S" dir_s))
    in
    let* value = require (ctx "value") (mem_num "value" j) in
    Ok
      {
        name;
        kind;
        direction;
        value;
        min = mem_num "min" j;
        mad = mem_num "mad" j;
        runs = mem_int "runs" j;
      }

  let case_of_json (j : Obs.Json.t) : (case, string) result =
    let open Obs.Json in
    let* name = require "case name" (mem_str "name" j) in
    let* metrics_j = require ("case " ^ name ^ ": metrics") (mem_list "metrics" j) in
    let* metrics =
      List.fold_left
        (fun acc mj ->
          let* acc = acc in
          let* m = metric_of_json mj in
          Ok (m :: acc))
        (Ok []) metrics_j
    in
    Ok { name; metrics = List.rev metrics }

  let env_of_json (j : Obs.Json.t) : (env, string) result =
    let open Obs.Json in
    let str k = Option.value (mem_str k j) ~default:"unknown" in
    Ok
      {
        hostname = str "hostname";
        ocaml_version = str "ocaml_version";
        git_rev = str "git_rev";
        repetitions = Option.value (mem_int "repetitions" j) ~default:1;
        created = str "created";
      }

  let of_json (j : Obs.Json.t) : (doc, string) result =
    let open Obs.Json in
    let* schema = require "schema" (mem_str "schema" j) in
    if schema <> version then
      Error
        (Printf.sprintf "unsupported schema %S (this build reads %S)" schema
           version)
    else
      let* section = require "section" (mem_str "section" j) in
      let* env = env_of_json (Option.value (member "env" j) ~default:Null) in
      let* cases_j = require "cases" (mem_list "cases" j) in
      let* cases =
        List.fold_left
          (fun acc cj ->
            let* acc = acc in
            let* c = case_of_json cj in
            Ok (c :: acc))
          (Ok []) cases_j
      in
      Ok { section; env; cases = List.rev cases }

  let to_string d = Obs.Json.to_string ~pretty:true (to_json d) ^ "\n"

  let of_string s =
    match Obs.Json.parse s with
    | Error e -> Error ("not valid JSON: " ^ e)
    | Ok j -> of_json j
end

module Compare = struct
  type status = Improved | Regressed | Unchanged | New_metric | Missing_metric

  let status_name = function
    | Improved -> "improved"
    | Regressed -> "REGRESSED"
    | Unchanged -> "unchanged"
    | New_metric -> "new"
    | Missing_metric -> "missing"

  (* The noise model, per metric kind.  Exact kinds have a zero band, so
     [scale] (which multiplies both numbers) can never loosen them. *)
  let rel_band = function
    | Schema.Area | Schema.Count -> 0.0
    | Schema.Time -> 0.25
    | Schema.Gc -> 0.30

  let abs_floor = function
    | Schema.Area | Schema.Count -> 0.0
    | Schema.Time ->
      (* seconds.  Sub-second phases on a shared machine routinely
         jitter by multiples of themselves (a 0.2s phase stretching to
         0.7s under a noisy neighbour), so small absolute wiggles are
         noise by definition; the relative band still guards the
         multi-second timings where a 2x slowdown is a real finding. *)
      0.25
    | Schema.Gc -> 16.0 (* collections; words clear this trivially *)

  let classify ?(scale = 1.0) ~kind ~direction base cur : status =
    let delta = cur -. base in
    let within_floor = Float.abs delta <= abs_floor kind *. scale in
    let within_band =
      base <> 0.0 && Float.abs (delta /. Float.abs base) <= rel_band kind *. scale
    in
    if delta = 0.0 || within_floor || within_band then Unchanged
    else
      let worse =
        match direction with
        | Schema.Lower_better -> delta > 0.0
        | Schema.Higher_better -> delta < 0.0
      in
      if worse then Regressed else Improved

  type metric_diff = {
    name : string;
    kind : Schema.kind;
    base : float option;
    cur : float option;
    delta_pct : float option;
    status : status;
  }

  type case_diff = { case : string; rows : metric_diff list }

  type t = {
    section : string;
    base_env : Schema.env;
    cur_env : Schema.env;
    cases : case_diff list;
    missing_cases : string list;
    new_cases : string list;
  }

  let diff_metrics ?scale (base_ms : Schema.metric list)
      (cur_ms : Schema.metric list) : metric_diff list =
    let find name ms =
      List.find_opt (fun (m : Schema.metric) -> m.Schema.name = name) ms
    in
    let of_base (bm : Schema.metric) =
      match find bm.Schema.name cur_ms with
      | None ->
        {
          name = bm.Schema.name;
          kind = bm.Schema.kind;
          base = Some bm.Schema.value;
          cur = None;
          delta_pct = None;
          status = Missing_metric;
        }
      | Some cm ->
        let base = bm.Schema.value and cur = cm.Schema.value in
        {
          name = bm.Schema.name;
          kind = bm.Schema.kind;
          base = Some base;
          cur = Some cur;
          delta_pct =
            (if base = 0.0 then None
             else Some (100.0 *. (cur -. base) /. Float.abs base));
          status =
            classify ?scale ~kind:bm.Schema.kind
              ~direction:bm.Schema.direction base cur;
        }
    in
    let news =
      List.filter_map
        (fun (cm : Schema.metric) ->
          match find cm.Schema.name base_ms with
          | Some _ -> None
          | None ->
            Some
              {
                name = cm.Schema.name;
                kind = cm.Schema.kind;
                base = None;
                cur = Some cm.Schema.value;
                delta_pct = None;
                status = New_metric;
              })
        cur_ms
    in
    List.map of_base base_ms @ news

  let diff ?scale ~(baseline : Schema.doc) (current : Schema.doc) : t =
    let find name (d : Schema.doc) =
      List.find_opt (fun (c : Schema.case) -> c.Schema.name = name) d.Schema.cases
    in
    let cases, missing =
      List.fold_left
        (fun (cases, missing) (bc : Schema.case) ->
          match find bc.Schema.name current with
          | None -> cases, bc.Schema.name :: missing
          | Some cc ->
            ( {
                case = bc.Schema.name;
                rows = diff_metrics ?scale bc.Schema.metrics cc.Schema.metrics;
              }
              :: cases,
              missing ))
        ([], []) baseline.Schema.cases
    in
    let new_cases =
      List.filter_map
        (fun (cc : Schema.case) ->
          match find cc.Schema.name baseline with
          | Some _ -> None
          | None -> Some cc.Schema.name)
        current.Schema.cases
    in
    {
      section = baseline.Schema.section;
      base_env = baseline.Schema.env;
      cur_env = current.Schema.env;
      cases = List.rev cases;
      missing_cases = List.rev missing;
      new_cases;
    }

  let regressions (t : t) : (string * metric_diff) list =
    List.concat_map
      (fun cd ->
        List.filter_map
          (fun r -> if r.status = Regressed then Some (cd.case, r) else None)
          cd.rows)
      t.cases

  (* --- rendering --- *)

  let fmt_value kind v =
    match kind with
    | Schema.Area | Schema.Count -> Printf.sprintf "%.0f" v
    | Schema.Gc -> Printf.sprintf "%.0f" v
    | Schema.Time ->
      if Float.abs v < 0.1 then Printf.sprintf "%.4fs" v
      else Printf.sprintf "%.3fs" v

  let fmt_opt kind = function None -> "-" | Some v -> fmt_value kind v

  let fmt_delta = function
    | None -> "-"
    | Some pct -> Printf.sprintf "%+.2f%%" pct

  let status_cell = function
    | Improved as s -> Report.Table.(colorize Green (status_name s))
    | Regressed as s -> Report.Table.(colorize Red (status_name s))
    | Unchanged as s -> Report.Table.(colorize Dim (status_name s))
    | (New_metric | Missing_metric) as s ->
      Report.Table.(colorize Yellow (status_name s))

  let count_status (t : t) status =
    List.fold_left
      (fun acc cd ->
        acc
        + List.length (List.filter (fun r -> r.status = status) cd.rows))
      0 t.cases

  let render ?(all = false) (t : t) : string =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "section %s: baseline %s (%s, %s) vs current %s (%s)\n"
         t.section t.base_env.Schema.git_rev t.base_env.Schema.created
         t.base_env.Schema.hostname t.cur_env.Schema.git_rev
         t.cur_env.Schema.hostname);
    let rows =
      List.concat_map
        (fun cd ->
          List.filter_map
            (fun r ->
              if (not all) && r.status = Unchanged then None
              else
                Some
                  [
                    cd.case;
                    r.name;
                    Schema.kind_name r.kind;
                    fmt_opt r.kind r.base;
                    fmt_opt r.kind r.cur;
                    fmt_delta r.delta_pct;
                    status_cell r.status;
                  ])
            cd.rows)
        t.cases
    in
    if rows = [] then
      Buffer.add_string buf "  (every metric unchanged within thresholds)\n"
    else begin
      let left = Report.Table.column ~align:Report.Table.Left in
      Buffer.add_string buf
        (Report.Table.render
           ~columns:
             [ left "case"; left "metric"; left "kind";
               Report.Table.column "baseline"; Report.Table.column "current";
               Report.Table.column "delta"; left "status" ]
           ~rows)
    end;
    let imp = count_status t Improved
    and reg = count_status t Regressed
    and unch = count_status t Unchanged in
    Buffer.add_string buf
      (Printf.sprintf "  %d improved, %d regressed, %d unchanged" imp reg unch);
    if t.new_cases <> [] then
      Buffer.add_string buf
        (Printf.sprintf ", new cases: %s" (String.concat " " t.new_cases));
    if t.missing_cases <> [] then
      Buffer.add_string buf
        (Printf.sprintf ", MISSING cases: %s"
           (String.concat " " t.missing_cases));
    Buffer.add_char buf '\n';
    Buffer.contents buf

  let metric_diff_to_json (case : string) (r : metric_diff) : Obs.Json.t =
    let open Obs.Json in
    Obj
      ([
         "case", Str case;
         "metric", Str r.name;
         "kind", Str (Schema.kind_name r.kind);
         "status", Str (status_name r.status);
       ]
      @ (match r.base with Some v -> [ "baseline", Num v ] | None -> [])
      @ (match r.cur with Some v -> [ "current", Num v ] | None -> [])
      @
      match r.delta_pct with
      | Some v -> [ "delta_pct", Num v ]
      | None -> [])

  let to_json (t : t) : Obs.Json.t =
    let open Obs.Json in
    Obj
      [
        "schema", Str "smartly-bench-diff-v1";
        "section", Str t.section;
        "baseline_rev", Str t.base_env.Schema.git_rev;
        "current_rev", Str t.cur_env.Schema.git_rev;
        ( "rows",
          List
            (List.concat_map
               (fun cd -> List.map (metric_diff_to_json cd.case) cd.rows)
               t.cases) );
        "missing_cases", List (List.map (fun s -> Str s) t.missing_cases);
        "new_cases", List (List.map (fun s -> Str s) t.new_cases);
        "regressions", num_of_int (List.length (regressions t));
      ]
end

module Store = struct
  let default_dir = Filename.concat "bench" "baselines"

  let path ~dir ~section =
    Filename.concat dir (Printf.sprintf "BENCH_%s.json" section)

  let rec mkdir_p dir =
    if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
    then begin
      mkdir_p (Filename.dirname dir);
      try Unix.mkdir dir 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  let save ~dir (d : Schema.doc) : string =
    mkdir_p dir;
    let p = path ~dir ~section:d.Schema.section in
    let oc = open_out p in
    output_string oc (Schema.to_string d);
    close_out oc;
    p

  let load ~dir ~section : (Schema.doc, string) result =
    let p = path ~dir ~section in
    if not (Sys.file_exists p) then
      Error
        (Printf.sprintf
           "%s: no committed baseline (record one with bench %s \
            --update-baselines)"
           p section)
    else begin
      let ic = open_in_bin p in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Schema.of_string text with
      | Ok d ->
        if d.Schema.section = section then Ok d
        else
          Error
            (Printf.sprintf "%s: section is %S, expected %S" p
               d.Schema.section section)
      | Error e -> Error (Printf.sprintf "%s: %s" p e)
    end
end

module Gate = struct
  type outcome = {
    diffs : Compare.t list;
    missing_baselines : string list;
    load_errors : (string * string) list;
  }

  let check ?scale ~dir (docs : Schema.doc list) : outcome =
    let diffs, missing, errors =
      List.fold_left
        (fun (diffs, missing, errors) (d : Schema.doc) ->
          let section = d.Schema.section in
          if not (Sys.file_exists (Store.path ~dir ~section)) then
            diffs, section :: missing, errors
          else
            match Store.load ~dir ~section with
            | Ok baseline ->
              Compare.diff ?scale ~baseline d :: diffs, missing, errors
            | Error e -> diffs, missing, (section, e) :: errors)
        ([], [], []) docs
    in
    {
      diffs = List.rev diffs;
      missing_baselines = List.rev missing;
      load_errors = List.rev errors;
    }

  let ok (o : outcome) =
    o.missing_baselines = [] && o.load_errors = []
    && List.for_all
         (fun d -> Compare.regressions d = [] && d.Compare.missing_cases = [])
         o.diffs

  let render ?all (o : outcome) : string =
    let buf = Buffer.create 2048 in
    List.iter
      (fun d ->
        Buffer.add_string buf (Compare.render ?all d);
        Buffer.add_char buf '\n')
      o.diffs;
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf
             "section %s: no committed baseline — record one with bench %s \
              --update-baselines\n"
             s s))
      o.missing_baselines;
    List.iter
      (fun (s, e) ->
        Buffer.add_string buf (Printf.sprintf "section %s: %s\n" s e))
      o.load_errors;
    (* the verdict names every offending metric so a CI failure is
       readable from the last lines alone *)
    let offenders =
      List.concat_map
        (fun d ->
          List.map
            (fun (case, (r : Compare.metric_diff)) ->
              Printf.sprintf "%s/%s/%s (%s -> %s)" d.Compare.section case
                r.Compare.name
                (Compare.fmt_opt r.Compare.kind r.Compare.base)
                (Compare.fmt_opt r.Compare.kind r.Compare.cur))
            (Compare.regressions d)
          @ List.map
              (fun c ->
                Printf.sprintf "%s/%s (case disappeared)" d.Compare.section c)
              d.Compare.missing_cases)
        o.diffs
    in
    if ok o then
      Buffer.add_string buf
        (Report.Table.colorize Report.Table.Green
           "bench-check: OK — no regressions beyond thresholds\n")
    else begin
      Buffer.add_string buf
        (Report.Table.colorize Report.Table.Red "bench-check: FAIL");
      if offenders <> [] then
        Buffer.add_string buf
          (Printf.sprintf " — %s" (String.concat ", " offenders));
      if o.missing_baselines <> [] then
        Buffer.add_string buf
          (Printf.sprintf " — missing baselines: %s"
             (String.concat " " o.missing_baselines));
      if o.load_errors <> [] then
        Buffer.add_string buf " — unreadable baselines (see above)";
      Buffer.add_char buf '\n'
    end;
    Buffer.contents buf
end
