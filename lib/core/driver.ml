(* Top-level optimization flows.

   [yosys]   — the baseline: opt_expr + opt_muxtree + opt_clean to fixpoint.
   [smartly] — the paper's flow: opt_muxtree is *replaced* by SAT-based
               redundancy elimination and muxtree restructuring, again
               interleaved with expression folding and cleanup. *)

open Netlist

type result = {
  iterations : int;
  sat_reports : Sat_elim.report list;
  rebuild_reports : Restructure.report list;
}

let h_cells_delta = Obs.Metrics.histogram "driver.cells_removed_per_iter"
let m_iterations = Obs.Metrics.counter "driver.iterations"

let yosys ?after_pass (c : Circuit.t) : Rtl_opt.Flow.report =
  Obs.Trace.with_span "driver.yosys" @@ fun () ->
  Rtl_opt.Flow.baseline ?after_pass c

let smartly ?(cfg = Config.default) ?(after_pass = fun _ _ -> ())
    (c : Circuit.t) : result =
  Obs.Trace.with_span "driver.smartly" @@ fun () ->
  let sat_reports = ref [] in
  let rebuild_reports = ref [] in
  let rec loop iter =
    if iter >= 6 then iter
    else begin
      let cells_before = Circuit.cell_count c in
      let progress =
        Obs.Trace.with_span "driver.iteration" @@ fun () ->
        let e = Rtl_opt.Opt_expr.run c in
        after_pass "opt_expr" c;
        let g = Rtl_opt.Opt_merge.run c in
        after_pass "opt_merge" c;
        let e = e + g in
        let sat_changed =
          if cfg.Config.enable_sat then begin
            let r = Sat_elim.run_once cfg c in
            sat_reports := r :: !sat_reports;
            after_pass "sat_elim" c;
            Sat_elim.changed r
          end
          else false
        in
        let rebuild_changed =
          if cfg.Config.enable_rebuild then begin
            let r =
              Restructure.run_once
                ~single_ctrl:cfg.Config.rebuild_single_ctrl c
            in
            rebuild_reports := r :: !rebuild_reports;
            after_pass "restructure" c;
            Restructure.changed r
          end
          else false
        in
        let removed = Rtl_opt.Opt_clean.run c in
        after_pass "opt_clean" c;
        e > 0 || sat_changed || rebuild_changed || removed > 0
      in
      Obs.Metrics.observe_int h_cells_delta
        (cells_before - Circuit.cell_count c);
      if progress then loop (iter + 1) else iter + 1
    end
  in
  let iterations = loop 0 in
  Obs.Metrics.add m_iterations iterations;
  {
    iterations;
    sat_reports = List.rev !sat_reports;
    rebuild_reports = List.rev !rebuild_reports;
  }

(* Convenience wrappers returning the AIG area after optimization. *)

let optimize_and_measure flow (c : Circuit.t) =
  (match flow with
  | `None -> ()
  | `Yosys -> ignore (yosys c)
  | `Smartly cfg -> ignore (smartly ~cfg c));
  Aiger.Aigmap.aig_area c
