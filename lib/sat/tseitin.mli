(** Tseitin encoding of circuit sub-DAGs into CNF. *)

open Netlist

type t = {
  solver : Solver.t;
  vars : int Bits.Bit_tbl.t;  (** wire bit -> SAT variable *)
  true_lit : Lit.t;  (** a variable asserted true, for constants *)
}

val create : unit -> t
(** A fresh encoder with its own solver. *)

val lit_of_bit : t -> Bits.bit -> Lit.t
(** The SAT literal of a wire bit (allocated on first use); constants map
    to the dedicated true variable. *)

val encode_cell : t -> Cell.t -> unit
(** @raise Invalid_argument on sequential cells. *)

val encode_cells : t -> Circuit.t -> int list -> unit

val assume_lit : t -> Bits.bit -> bool -> Lit.t
(** Assumption literal asserting the bit's value. *)

type query_result = Forced of bool | Free | Undetermined

val query_forced :
  ?budget:int -> t -> assumptions:Lit.t list -> target:Bits.bit -> query_result
(** Is the target bit forced under the assumptions?  Two incremental
    solver calls: SAT(target=1) and SAT(target=0). *)
