(** Per-pass invariant checking for the optimization flows.

    Create a checker from the starting circuit, then call {!after_pass}
    from a flow's [?after_pass] hook.  Each call re-validates the circuit
    (netlist well-formedness plus error-severity structural lint) and
    checks SAT equivalence against the last known-good snapshot.  The
    first violated invariant is recorded with the name of the pass that
    broke it; later calls become no-ops so the report always names the
    *first* offender. *)

type failure = {
  pass : string;  (** the pass after which the invariant first failed *)
  detail : string;
  diags : Diag.t list;  (** error diagnostics, for validation failures *)
}

type t

val create : ?equiv:bool -> ?budget:int -> Netlist.Circuit.t -> t
(** [equiv] (default [true]) enables the SAT equivalence check between
    consecutive snapshots; [budget] is the per-candidate conflict cap
    passed to {!Equiv.check}. *)

val after_pass : t -> string -> Netlist.Circuit.t -> unit
(** Run the checks against the circuit as pass [name] left it.  No-op
    once a failure has been recorded. *)

val checks_run : t -> int
val failure : t -> failure option
val ok : t -> bool

val pp_failure : Format.formatter -> failure -> unit
