(* Recursive-descent parser for the Verilog subset.

   Tokens carry their source position; the parser threads those positions
   into spans on declarations, statements and module items, and reports
   syntax errors with line/column. *)

exception Parse_error of string * Loc.pos (* message, source position *)

type state = {
  mutable toks : (Lexer.token * Loc.pos) list;
  mutable last : Loc.pos; (* position of the last consumed token *)
}

let peek st =
  match st.toks with
  | (t, p) :: _ -> t, p
  | [] -> Lexer.EOF, st.last

let advance st =
  match st.toks with
  | (_, p) :: rest ->
    st.last <- p;
    st.toks <- rest
  | [] -> ()

(* Position of the next token: where a construct starting here begins. *)
let here st = snd (peek st)

(* Span from [start] to the last consumed token. *)
let span_from st (start : Loc.pos) : Loc.span = Loc.span start st.last

let error st msg =
  let _, p = peek st in
  raise (Parse_error (msg, p))

let expect st tok msg =
  let t, _ = peek st in
  if t = tok then advance st else error st msg

let expect_ident st msg =
  match peek st with
  | Lexer.IDENT name, _ ->
    advance st;
    name
  | _ -> error st msg

let expect_number st msg =
  match peek st with
  | Lexer.NUMBER v, _ ->
    advance st;
    v
  | _ -> error st msg

(* --- expressions --- *)

let rec parse_expr st : Ast.expr = parse_ternary st

and parse_ternary st =
  let cond = parse_lor st in
  match peek st with
  | Lexer.QUESTION, _ ->
    advance st;
    let t = parse_ternary st in
    expect st Lexer.COLON "expected ':' in ternary";
    let e = parse_ternary st in
    Ast.E_ternary (cond, t, e)
  | _ -> cond

and parse_lor st =
  let rec loop acc =
    match peek st with
    | Lexer.PIPEPIPE, _ ->
      advance st;
      loop (Ast.E_binary (Ast.B_lor, acc, parse_land st))
    | _ -> acc
  in
  loop (parse_land st)

and parse_land st =
  let rec loop acc =
    match peek st with
    | Lexer.AMPAMP, _ ->
      advance st;
      loop (Ast.E_binary (Ast.B_land, acc, parse_bor st))
    | _ -> acc
  in
  loop (parse_bor st)

and parse_bor st =
  let rec loop acc =
    match peek st with
    | Lexer.PIPE, _ ->
      advance st;
      loop (Ast.E_binary (Ast.B_or, acc, parse_bxor st))
    | _ -> acc
  in
  loop (parse_bxor st)

and parse_bxor st =
  let rec loop acc =
    match peek st with
    | Lexer.CARET, _ ->
      advance st;
      loop (Ast.E_binary (Ast.B_xor, acc, parse_band st))
    | Lexer.XNOR_OP, _ ->
      advance st;
      loop (Ast.E_binary (Ast.B_xnor, acc, parse_band st))
    | _ -> acc
  in
  loop (parse_band st)

and parse_band st =
  let rec loop acc =
    match peek st with
    | Lexer.AMP, _ ->
      advance st;
      loop (Ast.E_binary (Ast.B_and, acc, parse_eq st))
    | _ -> acc
  in
  loop (parse_eq st)

and parse_eq st =
  let rec loop acc =
    match peek st with
    | Lexer.EQEQ, _ ->
      advance st;
      loop (Ast.E_binary (Ast.B_eq, acc, parse_add st))
    | Lexer.NEQ, _ ->
      advance st;
      loop (Ast.E_binary (Ast.B_ne, acc, parse_add st))
    | _ -> acc
  in
  loop (parse_add st)

and parse_add st =
  let rec loop acc =
    match peek st with
    | Lexer.PLUS, _ ->
      advance st;
      loop (Ast.E_binary (Ast.B_add, acc, parse_unary st))
    | Lexer.MINUS, _ ->
      advance st;
      loop (Ast.E_binary (Ast.B_sub, acc, parse_unary st))
    | _ -> acc
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.TILDE, _ ->
    advance st;
    Ast.E_unary (Ast.U_not, parse_unary st)
  | Lexer.BANG, _ ->
    advance st;
    Ast.E_unary (Ast.U_lnot, parse_unary st)
  | Lexer.AMP, _ ->
    advance st;
    Ast.E_unary (Ast.U_rand, parse_unary st)
  | Lexer.PIPE, _ ->
    advance st;
    Ast.E_unary (Ast.U_ror, parse_unary st)
  | Lexer.CARET, _ ->
    advance st;
    Ast.E_unary (Ast.U_rxor, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.LPAREN, _ ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN "expected ')'";
    e
  | Lexer.LBRACE, _ ->
    advance st;
    let rec parts acc =
      let e = parse_expr st in
      match peek st with
      | Lexer.COMMA, _ ->
        advance st;
        parts (e :: acc)
      | _ ->
        expect st Lexer.RBRACE "expected '}'";
        List.rev (e :: acc)
    in
    Ast.E_concat (parts [])
  | Lexer.SIZED c, _ ->
    advance st;
    Ast.E_const c
  | Lexer.NUMBER v, _ ->
    advance st;
    (* unsized decimal: give it a natural 32-bit width like Verilog *)
    Ast.E_const (Ast.const_of_int ~width:32 v)
  | Lexer.IDENT name, _ -> (
    advance st;
    match peek st with
    | Lexer.LBRACKET, _ -> (
      advance st;
      let msb = expect_number st "expected index" in
      match peek st with
      | Lexer.COLON, _ ->
        advance st;
        let lsb = expect_number st "expected lsb" in
        expect st Lexer.RBRACKET "expected ']'";
        Ast.E_range (name, msb, lsb)
      | _ ->
        expect st Lexer.RBRACKET "expected ']'";
        Ast.E_select (name, msb))
    | _ -> Ast.E_ident name)
  | _ -> error st "expected expression"

(* --- statements --- *)

let rec parse_stmt st : Ast.stmt =
  let start = here st in
  let located sdesc = { Ast.sdesc; sloc = span_from st start } in
  match peek st with
  | Lexer.KW "if", _ ->
    advance st;
    expect st Lexer.LPAREN "expected '(' after if";
    let cond = parse_expr st in
    expect st Lexer.RPAREN "expected ')'";
    let then_ = parse_block st in
    let else_ =
      match peek st with
      | Lexer.KW "else", _ ->
        advance st;
        parse_block st
      | _ -> []
    in
    located (Ast.S_if (cond, then_, else_))
  | Lexer.KW "case", _ | Lexer.KW "casez", _ ->
    let is_casez = fst (peek st) = Lexer.KW "casez" in
    advance st;
    expect st Lexer.LPAREN "expected '(' after case";
    let subject = parse_expr st in
    expect st Lexer.RPAREN "expected ')'";
    let items = ref [] in
    let default = ref None in
    let rec loop () =
      match peek st with
      | Lexer.KW "endcase", _ -> advance st
      | Lexer.KW "default", _ ->
        advance st;
        (match peek st with
        | Lexer.COLON, _ -> advance st
        | _ -> ());
        default := Some (parse_block st);
        loop ()
      | _ ->
        let istart = here st in
        let rec patterns acc =
          let c =
            match peek st with
            | Lexer.SIZED c, _ ->
              advance st;
              c
            | Lexer.NUMBER v, _ ->
              advance st;
              Ast.const_of_int ~width:32 v
            | _ -> error st "expected case pattern"
          in
          match peek st with
          | Lexer.COMMA, _ ->
            advance st;
            patterns (c :: acc)
          | _ -> List.rev (c :: acc)
        in
        let pats = patterns [] in
        expect st Lexer.COLON "expected ':' after case pattern";
        let body = parse_block st in
        items := { Ast.pats; body; iloc = span_from st istart } :: !items;
        loop ()
    in
    loop ();
    located
      (Ast.S_case
         { Ast.is_casez; subject; items = List.rev !items; default = !default })
  | Lexer.IDENT name, _ ->
    advance st;
    (match peek st with
    | Lexer.EQUAL, _ | Lexer.NONBLOCK, _ -> advance st
    | _ -> error st "expected '=' or '<=' in assignment");
    let e = parse_expr st in
    expect st Lexer.SEMI "expected ';'";
    located (Ast.S_assign (name, e))
  | _ -> error st "expected statement"

and parse_block st : Ast.stmt list =
  match peek st with
  | Lexer.KW "begin", _ ->
    advance st;
    let rec loop acc =
      match peek st with
      | Lexer.KW "end", _ ->
        advance st;
        List.rev acc
      | _ -> loop (parse_stmt st :: acc)
    in
    loop []
  | _ -> [ parse_stmt st ]

(* --- declarations and module items --- *)

let parse_range st =
  match peek st with
  | Lexer.LBRACKET, _ ->
    advance st;
    let msb = expect_number st "expected msb" in
    expect st Lexer.COLON "expected ':'";
    let lsb = expect_number st "expected lsb" in
    expect st Lexer.RBRACKET "expected ']'";
    Some (msb, lsb)
  | _ -> None

let parse_decl_kind st : Ast.decl_kind option =
  match peek st with
  | Lexer.KW "input", _ ->
    advance st;
    Some Ast.D_input
  | Lexer.KW "output", _ ->
    advance st;
    (match peek st with
    | Lexer.KW "reg", _ ->
      advance st;
      Some Ast.D_output_reg
    | _ -> Some Ast.D_output)
  | Lexer.KW "wire", _ ->
    advance st;
    Some Ast.D_wire
  | Lexer.KW "reg", _ ->
    advance st;
    Some Ast.D_reg
  | _ -> None

(* one declaration possibly naming several identifiers; each gets the span
   of its own identifier token *)
let parse_decl_names st kind range acc =
  let rec loop acc =
    let dpos = here st in
    let name = expect_ident st "expected identifier in declaration" in
    let acc =
      { Ast.kind; dname = name; range; dloc = Loc.of_pos dpos } :: acc
    in
    match peek st with
    | Lexer.COMMA, _ -> (
      advance st;
      (* a following comma may start a new kind in a port list; only continue
         if the next token is a plain identifier *)
      match peek st with
      | Lexer.IDENT _, _ -> loop acc
      | _ -> `More_kinds acc)
    | _ -> `Done acc
  in
  loop acc

let parse_port_list st : Ast.decl list =
  expect st Lexer.LPAREN "expected '(' after module name";
  (match peek st with
  | Lexer.RPAREN, _ -> ()
  | _ -> ());
  let rec loop acc =
    match peek st with
    | Lexer.RPAREN, _ ->
      advance st;
      List.rev acc
    | _ -> (
      match parse_decl_kind st with
      | None -> error st "expected port direction"
      | Some kind -> (
        let range = parse_range st in
        match parse_decl_names st kind range acc with
        | `Done acc ->
          (match peek st with
          | Lexer.RPAREN, _ -> ()
          | _ -> error st "expected ')' or ','");
          loop acc
        | `More_kinds acc -> loop acc))
  in
  loop []

let parse_item st : Ast.item list =
  let start = here st in
  match peek st with
  | Lexer.KW "assign", _ ->
    advance st;
    let name = expect_ident st "expected identifier after assign" in
    expect st Lexer.EQUAL "expected '='";
    let e = parse_expr st in
    expect st Lexer.SEMI "expected ';'";
    [ Ast.I_assign { lhs = name; rhs = e; aloc = span_from st start } ]
  | Lexer.KW "always", _ -> (
    advance st;
    expect st Lexer.AT "expected '@' after always";
    match peek st with
    | Lexer.STAR, _ ->
      advance st;
      [ Ast.I_always { body = parse_block st; aloc = span_from st start } ]
    | Lexer.LPAREN, _ -> (
      advance st;
      match peek st with
      | Lexer.STAR, _ ->
        advance st;
        expect st Lexer.RPAREN "expected ')'";
        [ Ast.I_always { body = parse_block st; aloc = span_from st start } ]
      | Lexer.KW ("posedge" | "negedge"), _ ->
        advance st;
        let clock = expect_ident st "expected clock signal" in
        expect st Lexer.RPAREN "expected ')'";
        [
          Ast.I_always_ff
            { clock; body = parse_block st; aloc = span_from st start };
        ]
      | _ -> error st "expected '*' or posedge/negedge")
    | _ -> error st "expected '@*' or '@(posedge clk)'")
  | _ -> (
    match parse_decl_kind st with
    | None -> error st "expected module item"
    | Some kind ->
      let range = parse_range st in
      let rec all_names acc =
        match parse_decl_names st kind range acc with
        | `Done acc ->
          expect st Lexer.SEMI "expected ';' after declaration";
          List.rev_map (fun d -> Ast.I_decl d) acc
        | `More_kinds acc -> all_names acc
      in
      all_names [])

let parse_module st : Ast.module_ =
  expect st (Lexer.KW "module") "expected 'module'";
  let mname = expect_ident st "expected module name" in
  let ports =
    match peek st with
    | Lexer.LPAREN, _ -> parse_port_list st
    | _ -> []
  in
  expect st Lexer.SEMI "expected ';' after module header";
  let rec items acc =
    match peek st with
    | Lexer.KW "endmodule", _ ->
      advance st;
      List.rev acc
    | Lexer.EOF, _ -> error st "unexpected end of file"
    | _ -> items (List.rev_append (parse_item st) acc)
  in
  let body = items [] in
  { Ast.mname; items = List.map (fun d -> Ast.I_decl d) ports @ body }

let parse_string (src : string) : Ast.module_ =
  let st = { toks = Lexer.tokenize src; last = Loc.dummy_pos } in
  let m = parse_module st in
  (match peek st with
  | Lexer.EOF, _ -> ()
  | _ -> error st "trailing tokens after endmodule");
  m
