(* Telemetry: span tracing, a metrics registry, and the JSON both need.

   The design constraint is the fast path: instrumented code lives on hot
   loops (every Engine.determine call), so [Trace.with_span] must reduce to
   a match on one global ref plus a direct call when no sink is installed,
   and metric bumps must be single field mutations on pre-resolved
   handles. *)

module Clock = struct
  (* The C stub prefers CLOCK_MONOTONIC and silently degrades to
     gettimeofday where it is missing; either way the epoch is arbitrary,
     so callers must only ever subtract readings. *)
  external now_ns : unit -> int64 = "smartly_obs_monotonic_ns"

  let now () = Int64.to_float (now_ns ()) *. 1e-9

  let elapsed mark = Int64.to_float (Int64.sub (now_ns ()) mark) *. 1e-9
end

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let num_of_int i = Num (float_of_int i)

  (* --- writer --- *)

  let escape_to buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  (* OCaml's Printf is locale-independent ('.' always), which is the whole
     point: the output must parse the same everywhere.  Integral values
     print without a fraction so counters stay integers downstream. *)
  let num_to_string v =
    if not (Float.is_finite v) then "null"
    else if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else
      (* shortest representation that parses back to the same double *)
      let s = Printf.sprintf "%.15g" v in
      if float_of_string s = v then s else Printf.sprintf "%.17g" v

  let to_string ?(pretty = false) (j : t) : string =
    let buf = Buffer.create 256 in
    let indent n =
      if pretty then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (2 * n) ' ')
      end
    in
    let rec go depth = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Num v -> Buffer.add_string buf (num_to_string v)
      | Str s -> escape_to buf s
      | List [] -> Buffer.add_string buf "[]"
      | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            go (depth + 1) item)
          items;
        indent depth;
        Buffer.add_char buf ']'
      | Obj [] -> Buffer.add_string buf "{}"
      | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            escape_to buf k;
            Buffer.add_string buf (if pretty then ": " else ":");
            go (depth + 1) v)
          fields;
        indent depth;
        Buffer.add_char buf '}'
    in
    go 0 j;
    Buffer.contents buf

  (* --- parser --- *)

  exception Bad of int * string

  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let fail msg = raise (Bad (!pos, msg)) in
    let skip_ws () =
      while
        !pos < n
        && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      let m = String.length word in
      if !pos + m <= n && String.sub s !pos m = word then begin
        pos := !pos + m;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
            incr pos;
            if !pos >= n then fail "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* non-BMP surrogates are not emitted by our writer; encode
                 the BMP code point as UTF-8 *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              pos := !pos + 4
            | c -> fail (Printf.sprintf "bad escape \\%c" c));
            incr pos;
            go ()
          | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      if peek () = Some '-' then incr pos;
      let digits () =
        let d0 = !pos in
        while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
          incr pos
        done;
        if !pos = d0 then fail "expected digit"
      in
      digits ();
      if peek () = Some '.' then begin
        incr pos;
        digits ()
      end;
      (match peek () with
      | Some ('e' | 'E') ->
        incr pos;
        (match peek () with
        | Some ('+' | '-') -> incr pos
        | _ -> ());
        digits ()
      | _ -> ());
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some v -> Num v
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              members ()
            | Some '}' -> incr pos
            | _ -> fail "expected , or }"
          in
          members ();
          Obj (List.rev !fields)
        end
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected , or ]"
          in
          elements ();
          List (List.rev !items)
        end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected character %c" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad (p, msg) ->
      Error (Printf.sprintf "at offset %d: %s" p msg)

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | Null | Bool _ | Num _ | Str _ | List _ -> None

  (* Schema-decoding accessors: every consumer of a versioned report
     (Perf baselines, the lint JSON, provenance logs) wants "this field,
     of this shape, or None" — spelled once here instead of per caller. *)

  let to_num = function Num v -> Some v | _ -> None
  let to_str = function Str s -> Some s | _ -> None
  let to_list = function List l -> Some l | _ -> None

  let to_int = function
    | Num v when Float.is_integer v -> Some (int_of_float v)
    | _ -> None

  let mem_num key j = Option.bind (member key j) to_num
  let mem_int key j = Option.bind (member key j) to_int
  let mem_str key j = Option.bind (member key j) to_str
  let mem_list key j = Option.bind (member key j) to_list

  (* JSONL recovery parser.  A killed process leaves the last line torn
     mid-record; every reader of a flight-recorder ledger wants "all the
     complete leading records, plus where the damage starts" instead of a
     hard error.  A malformed line in the *middle* of the file also stops
     the scan — resyncing past corruption would silently reorder the
     stream, and the byte offset lets the caller report it precisely. *)
  let parse_jsonl_partial text : (t * int) list * int option =
    let n = String.length text in
    let rec go acc off =
      if off >= n then List.rev acc, None
      else begin
        let nl =
          match String.index_from_opt text off '\n' with
          | Some i -> i
          | None -> n
        in
        let line = String.sub text off (nl - off) in
        if String.trim line = "" then go acc (nl + 1)
        else
          match parse line with
          | Ok v -> go ((v, off) :: acc) (nl + 1)
          | Error _ -> List.rev acc, Some off
      end
    in
    go [] 0
end

(* The unified event bus.  One ordered, monotonically-timestamped stream
   of everything a run does — span boundaries, pass boundaries, SAT
   queries, provenance mutations, budget verdicts — fanned out to
   pluggable subscriber sinks (a JSONL file, the flight-recorder ring, a
   TTY progress line).  Same fast-path discipline as [Trace]: with no
   subscriber, [emit] is one list check (plus constant-time pass-stack
   upkeep so [current_pass] stays truthful for flight dumps). *)
module Event = struct
  type kind =
    | Run_start
    | Run_end
    | Pass_start
    | Pass_end
    | Span_open
    | Span_close
    | Metric
    | Provenance
    | Sat_query
    | Budget_exceeded
    | Note

  type t = {
    seq : int;
    t_ns : int64;
    kind : kind;
    name : string;
    data : Json.t;
  }

  let kind_name = function
    | Run_start -> "run_start"
    | Run_end -> "run_end"
    | Pass_start -> "pass_start"
    | Pass_end -> "pass_end"
    | Span_open -> "span_open"
    | Span_close -> "span_close"
    | Metric -> "metric"
    | Provenance -> "provenance"
    | Sat_query -> "sat_query"
    | Budget_exceeded -> "budget_exceeded"
    | Note -> "note"

  let kind_of_name = function
    | "run_start" -> Some Run_start
    | "run_end" -> Some Run_end
    | "pass_start" -> Some Pass_start
    | "pass_end" -> Some Pass_end
    | "span_open" -> Some Span_open
    | "span_close" -> Some Span_close
    | "metric" -> Some Metric
    | "provenance" -> Some Provenance
    | "sat_query" -> Some Sat_query
    | "budget_exceeded" -> Some Budget_exceeded
    | "note" -> Some Note
    | _ -> None

  type subscription = {
    sid : int;
    sname : string;
    fn : t -> unit;
    mutable failure : string option;
    mutable on_close : unit -> unit;
  }

  let subscribers : subscription list ref = ref []
  let next_sid = ref 0
  let next_seq = ref 0
  let last_ns = ref 0L
  let pass_stack : string list ref = ref []
  let emitted_total = ref 0

  (* Domain-local capture buffer.  The bus state above is owned by the
     domain that installed the sinks (the main domain); worker domains
     must never touch it.  A worker installs a buffer here instead:
     [emit] appends to it, and the events are replayed through the real
     bus — in a deterministic order — when the worker's scope is merged
     at the join barrier.  [lb_live] mirrors whether the main bus had
     subscribers when the scope was opened, so workers skip payload
     construction exactly when the main domain would. *)
  type captured = { ce_kind : kind; ce_name : string; ce_data : Json.t }

  type local_buf = { mutable lb_rev : captured list; lb_live : bool }

  let local_key : local_buf option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  let install_local ~live =
    Domain.DLS.set local_key (Some { lb_rev = []; lb_live = live })

  let capture_local () : captured list =
    match Domain.DLS.get local_key with
    | None -> []
    | Some b ->
      Domain.DLS.set local_key None;
      List.rev b.lb_rev

  let enabled () =
    match Domain.DLS.get local_key with
    | Some b -> b.lb_live
    | None -> !subscribers <> []

  let subscribe ?(name = "sink") fn =
    incr next_sid;
    let s =
      { sid = !next_sid; sname = name; fn; failure = None;
        on_close = (fun () -> ()) }
    in
    subscribers := !subscribers @ [ s ];
    s

  let unsubscribe s =
    subscribers := List.filter (fun x -> x.sid <> s.sid) !subscribers;
    let close = s.on_close in
    s.on_close <- (fun () -> ());
    (try close () with _ -> ())

  let subscriber_count () = List.length !subscribers

  let failed_sinks () =
    List.filter_map
      (fun s -> Option.map (fun e -> s.sname, e) s.failure)
      !subscribers

  (* A sink that raises is marked dead and skipped from then on; the
     other subscribers keep receiving every event.  One bad consumer
     (full disk, closed pipe) must never cost the flight recorder its
     tail. *)
  let deliver e =
    List.iter
      (fun s ->
        if s.failure = None then
          try s.fn e
          with exn -> s.failure <- Some (Printexc.to_string exn))
      !subscribers

  let emit ?(name = "") ?(data = Json.Null) kind =
    match Domain.DLS.get local_key with
    | Some b ->
      if b.lb_live then
        b.lb_rev <- { ce_kind = kind; ce_name = name; ce_data = data } :: b.lb_rev
    | None ->
      (match kind with
      | Pass_start -> pass_stack := name :: !pass_stack
      | Pass_end -> (
        match !pass_stack with [] -> () | _ :: r -> pass_stack := r)
      | _ -> ());
      if !subscribers <> [] then begin
        (* Clamp to the last stamp: the clock is monotonic already, but the
           stream's non-decreasing invariant must hold by construction, not
           by trusting the platform. *)
        let t = Clock.now_ns () in
        let t = if Int64.compare t !last_ns < 0 then !last_ns else t in
        last_ns := t;
        let e = { seq = !next_seq; t_ns = t; kind; name; data } in
        incr next_seq;
        incr emitted_total;
        deliver e
      end

  (* Re-emit a worker's captured events on the owning domain.  Stamps are
     assigned at replay time, so the stream invariants (gapless seq,
     monotonic t_ns) hold over the merged stream by the same construction
     as live emission. *)
  let replay (evs : captured list) =
    List.iter (fun c -> emit ~name:c.ce_name ~data:c.ce_data c.ce_kind) evs

  let current_pass () =
    match !pass_stack with [] -> None | p :: _ -> Some p

  let emitted () = !emitted_total

  let reset () =
    List.iter
      (fun s ->
        let close = s.on_close in
        s.on_close <- (fun () -> ());
        try close () with _ -> ())
      !subscribers;
    subscribers := [];
    next_seq := 0;
    last_ns := 0L;
    pass_stack := [];
    emitted_total := 0

  let to_json e : Json.t =
    Json.Obj
      ([
         "seq", Json.num_of_int e.seq;
         "t_ns", Json.Num (Int64.to_float e.t_ns);
         "kind", Json.Str (kind_name e.kind);
       ]
      @ (if e.name = "" then [] else [ "name", Json.Str e.name ])
      @ match e.data with Json.Null -> [] | d -> [ "data", d ])

  let of_json (j : Json.t) : (t, string) result =
    match Json.mem_int "seq" j, Json.mem_num "t_ns" j, Json.mem_str "kind" j with
    | Some seq, Some t, Some kn -> (
      match kind_of_name kn with
      | Some kind ->
        Ok
          {
            seq;
            t_ns = Int64.of_float t;
            kind;
            name = Option.value (Json.mem_str "name" j) ~default:"";
            data = Option.value (Json.member "data" j) ~default:Json.Null;
          }
      | None -> Error (Printf.sprintf "unknown event kind %S" kn))
    | _ -> Error "event missing seq/t_ns/kind"

  let parse_jsonl_partial text : t list * int option =
    let vals, torn = Json.parse_jsonl_partial text in
    let rec go acc = function
      | [] -> List.rev acc, torn
      | (j, off) :: rest -> (
        match of_json j with
        | Ok e -> go (e :: acc) rest
        | Error _ -> List.rev acc, Some off)
    in
    go [] vals

  (* Durable sink: one compact JSON object per line, flushed per event so
     a SIGKILL loses at most the torn tail that [parse_jsonl_partial]
     recovers around. *)
  let attach_jsonl ~path =
    let oc = open_out path in
    let s =
      subscribe ~name:("jsonl:" ^ path) (fun e ->
          output_string oc (Json.to_string (to_json e));
          output_char oc '\n';
          flush oc)
    in
    s.on_close <- (fun () -> try close_out oc with _ -> ());
    s

  (* Live progress: one line per completed pass plus budget verdicts.
     Intentionally terse — it shares stderr with the human summary. *)
  let attach_progress ?(out = stderr) () =
    subscribe ~name:"progress" (fun e ->
        match e.kind with
        | Pass_end ->
          let secs =
            Option.value (Json.mem_num "seconds" e.data) ~default:0.0
          in
          let iter =
            match Json.mem_int "iteration" e.data with
            | Some i -> Printf.sprintf "iter %d" i
            | None -> "-"
          in
          let cells =
            match Json.mem_int "cells" e.data with
            | Some c -> Printf.sprintf "  cells=%d" c
            | None -> ""
          in
          Printf.fprintf out "  [%s] %-12s %7.3fs%s\n%!" iter e.name secs
            cells
        | Budget_exceeded ->
          Printf.fprintf out "  [budget] %s exceeded: %s\n%!" e.name
            (Json.to_string e.data)
        | _ -> ())
end

module Trace = struct
  type event = { name : string; ts_us : float; dur_us : float; depth : int }

  type sink = {
    epoch : float;  (* Clock.now at creation; monotonic, arbitrary origin *)
    mutable recorded : event list;  (* completion order, reversed *)
    mutable count : int;
    mutable depth : int;
  }

  let make_sink () =
    { epoch = Clock.now (); recorded = []; count = 0; depth = 0 }

  (* Domain-local: a sink installed by the main domain is never shared
     with worker domains (their spans still reach the event bus through
     the worker's capture buffer). *)
  let current : sink option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  let install s = Domain.DLS.set current (Some s)
  let uninstall () = Domain.DLS.set current None
  let enabled () = Domain.DLS.get current <> None

  let record s name t0 =
    let now = Clock.now () in
    s.depth <- s.depth - 1;
    s.recorded <-
      {
        name;
        ts_us = (t0 -. s.epoch) *. 1e6;
        dur_us = (now -. t0) *. 1e6;
        depth = s.depth;
      }
      :: s.recorded;
    s.count <- s.count + 1

  let with_span name f =
    (* Fast path unchanged: no sink, no bus subscriber — direct call. *)
    match Domain.DLS.get current, Event.enabled () with
    | None, false -> f ()
    | sink, bus ->
      if bus then Event.emit ~name Event.Span_open;
      let t0 = Clock.now () in
      (match sink with Some s -> s.depth <- s.depth + 1 | None -> ());
      let finish () =
        (match sink with Some s -> record s name t0 | None -> ());
        if bus then
          Event.emit ~name
            ~data:(Json.Obj [ "seconds", Json.Num (Clock.now () -. t0) ])
            Event.Span_close
      in
      let result =
        try f ()
        with e ->
          finish ();
          raise e
      in
      finish ();
      result

  let events s =
    (* completion order reversed is end-time descending; for parents-first
       (chronological by start) sort by ts, parents tie-break by depth *)
    List.sort
      (fun a b ->
        match compare a.ts_us b.ts_us with
        | 0 -> compare a.depth b.depth
        | c -> c)
      s.recorded

  let event_count s = s.count

  let to_chrome_json s : Json.t =
    let evs =
      List.map
        (fun e ->
          Json.Obj
            [
              "name", Json.Str e.name;
              "cat", Json.Str "smartly";
              "ph", Json.Str "X";
              "ts", Json.Num e.ts_us;
              "dur", Json.Num e.dur_us;
              "pid", Json.Num 1.0;
              "tid", Json.Num 1.0;
              "args", Json.Obj [ "depth", Json.num_of_int e.depth ];
            ])
        (events s)
    in
    Json.Obj
      [ "traceEvents", Json.List evs; "displayTimeUnit", Json.Str "ms" ]

  let write_chrome_json ~path s =
    let oc = open_out path in
    output_string oc (Json.to_string ~pretty:true (to_chrome_json s));
    output_char oc '\n';
    close_out oc
end

module Metrics = struct
  type counter = { cname : string; mutable count : int }

  (* Percentiles come from a bounded sample window: samples are kept
     verbatim until [sample_cap], after which the buffer wraps (index
     n mod cap), i.e. a sliding window over the most recent observations.
     Deterministic — no RNG — so test runs are reproducible. *)
  let sample_cap = 1024

  type histogram = {
    hname : string;
    mutable n : int;
    mutable sum : float;
    mutable min_seen : float;
    mutable max_seen : float;
    samples : float array; (* wrap buffer of the last [sample_cap] values *)
  }

  let counter_registry : (string, counter) Hashtbl.t = Hashtbl.create 32
  let histogram_registry : (string, histogram) Hashtbl.t = Hashtbl.create 32

  (* Domain-local overlay.  Handles are resolved once at module
     initialization on the main domain, so a worker domain bumping one
     directly would race on the shared record.  When a local registry is
     installed (one per worker scope), every read/write path re-resolves
     the handle by name against it — the handle is just a name carrier
     there — and the deltas are folded back into the owning registry at
     the join barrier.  The main domain pays one DLS read per bump. *)
  type local_registry = {
    lr_counters : (string, counter) Hashtbl.t;
    lr_histograms : (string, histogram) Hashtbl.t;
  }

  let local_key : local_registry option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  let fresh_histogram name =
    {
      hname = name;
      n = 0;
      sum = 0.0;
      min_seen = 0.0;
      max_seen = 0.0;
      samples = Array.make sample_cap 0.0;
    }

  let resolve_counter tbl name =
    match Hashtbl.find_opt tbl name with
    | Some c -> c
    | None ->
      let c = { cname = name; count = 0 } in
      Hashtbl.replace tbl name c;
      c

  let resolve_histogram tbl name =
    match Hashtbl.find_opt tbl name with
    | Some h -> h
    | None ->
      let h = fresh_histogram name in
      Hashtbl.replace tbl name h;
      h

  let counter name =
    match Domain.DLS.get local_key with
    | Some l -> resolve_counter l.lr_counters name
    | None -> resolve_counter counter_registry name

  let incr c =
    match Domain.DLS.get local_key with
    | None -> c.count <- c.count + 1
    | Some l ->
      let lc = resolve_counter l.lr_counters c.cname in
      lc.count <- lc.count + 1

  let add c n =
    match Domain.DLS.get local_key with
    | None -> c.count <- c.count + n
    | Some l ->
      let lc = resolve_counter l.lr_counters c.cname in
      lc.count <- lc.count + n

  let value c =
    match Domain.DLS.get local_key with
    | None -> c.count
    | Some l -> (resolve_counter l.lr_counters c.cname).count

  let histogram name =
    match Domain.DLS.get local_key with
    | Some l -> resolve_histogram l.lr_histograms name
    | None -> resolve_histogram histogram_registry name

  let observe_direct h v =
    if h.n = 0 then begin
      h.min_seen <- v;
      h.max_seen <- v
    end
    else begin
      if v < h.min_seen then h.min_seen <- v;
      if v > h.max_seen then h.max_seen <- v
    end;
    h.samples.(h.n mod sample_cap) <- v;
    h.n <- h.n + 1;
    h.sum <- h.sum +. v

  let observe h v =
    match Domain.DLS.get local_key with
    | None -> observe_direct h v
    | Some l -> observe_direct (resolve_histogram l.lr_histograms h.hname) v

  let observe_int h v = observe h (float_of_int v)

  type histogram_stats = {
    count : int;
    sum : float;
    min_v : float;
    max_v : float;
    mean : float;
    p50 : float;
    p90 : float;
  }

  (* Nearest-rank percentile over the retained sample window. *)
  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else begin
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      sorted.(max 0 (min (n - 1) (rank - 1)))
    end

  let histogram_stats h =
    let retained = min h.n sample_cap in
    let sorted = Array.sub h.samples 0 retained in
    Array.sort compare sorted;
    {
      count = h.n;
      sum = h.sum;
      min_v = h.min_seen;
      max_v = h.max_seen;
      mean = (if h.n = 0 then 0.0 else h.sum /. float_of_int h.n);
      p50 = percentile sorted 0.50;
      p90 = percentile sorted 0.90;
    }

  let active_registries () =
    match Domain.DLS.get local_key with
    | Some l -> l.lr_counters, l.lr_histograms
    | None -> counter_registry, histogram_registry

  let counters () =
    let ctbl, _ = active_registries () in
    Hashtbl.fold
      (fun name (c : counter) acc -> (name, c.count) :: acc)
      ctbl []
    |> List.sort compare

  let histograms () =
    let _, htbl = active_registries () in
    Hashtbl.fold
      (fun name h acc -> (name, histogram_stats h) :: acc)
      htbl []
    |> List.sort compare

  let reset () =
    let ctbl, htbl = active_registries () in
    Hashtbl.iter (fun _ (c : counter) -> c.count <- 0) ctbl;
    Hashtbl.iter
      (fun _ h ->
        h.n <- 0;
        h.sum <- 0.0;
        h.min_seen <- 0.0;
        h.max_seen <- 0.0;
        Array.fill h.samples 0 sample_cap 0.0)
      htbl

  (* --- scope capture / merge --- *)

  type hist_capture = {
    hc_name : string;
    hc_n : int;
    hc_sum : float;
    hc_min : float;
    hc_max : float;
    hc_samples : float array;  (* retained window, oldest first *)
  }

  type snapshot = {
    sn_counters : (string * int) list;
    sn_histograms : hist_capture list;
  }

  let empty_snapshot = { sn_counters = []; sn_histograms = [] }

  let install_local () =
    Domain.DLS.set local_key
      (Some
         {
           lr_counters = Hashtbl.create 32;
           lr_histograms = Hashtbl.create 16;
         })

  let capture_hist name (h : histogram) : hist_capture =
    let retained = min h.n sample_cap in
    let samples =
      Array.init retained (fun i ->
          if h.n <= sample_cap then h.samples.(i)
          else h.samples.((h.n + i) mod sample_cap))
    in
    {
      hc_name = name;
      hc_n = h.n;
      hc_sum = h.sum;
      hc_min = h.min_seen;
      hc_max = h.max_seen;
      hc_samples = samples;
    }

  let capture_local () : snapshot =
    match Domain.DLS.get local_key with
    | None -> empty_snapshot
    | Some l ->
      Domain.DLS.set local_key None;
      {
        sn_counters =
          Hashtbl.fold
            (fun name (c : counter) acc ->
              if c.count <> 0 then (name, c.count) :: acc else acc)
            l.lr_counters []
          |> List.sort compare;
        sn_histograms =
          Hashtbl.fold
            (fun name h acc ->
              if h.n > 0 then capture_hist name h :: acc else acc)
            l.lr_histograms []
          |> List.sort (fun a b -> compare a.hc_name b.hc_name);
      }

  (* Fold a captured snapshot into the current domain's registry (the
     global one when no local overlay is installed).  Counters add;
     histograms replay their retained window and account for wrapped-out
     observations in n/sum/min/max, so totals are exact even though the
     merged percentile window only holds the retained tail. *)
  let absorb (s : snapshot) =
    List.iter (fun (name, v) -> add (counter name) v) s.sn_counters;
    List.iter
      (fun hc ->
        let h = histogram hc.hc_name in
        Array.iter (fun v -> observe h v) hc.hc_samples;
        let dropped = hc.hc_n - Array.length hc.hc_samples in
        if dropped > 0 then begin
          let retained_sum =
            Array.fold_left ( +. ) 0.0 hc.hc_samples
          in
          h.n <- h.n + dropped;
          h.sum <- h.sum +. (hc.hc_sum -. retained_sum);
          if hc.hc_min < h.min_seen then h.min_seen <- hc.hc_min;
          if hc.hc_max > h.max_seen then h.max_seen <- hc.hc_max
        end)
      s.sn_histograms

  (* --- GC deltas --- *)

  (* [Gc.quick_stat] is cheap (no heap traversal), so bracketing a
     measured region with [gc_mark]/[gc_delta] costs two struct reads.
     Its [minor_words] field, however, only refreshes at GC boundaries
     on OCaml 5, so a region that never triggers a minor collection
     would read as zero allocation; [Gc.minor_words ()] reads the live
     allocation pointer and is carried in the mark separately.
     [top_heap_words] is a process-lifetime high-water mark, not a
     resettable counter, so the delta reports its absolute value: "the
     peak heap while (or before) this region ran". *)
  type gc_mark = { gm_stat : Gc.stat; gm_minor_words : float }

  let gc_mark () = { gm_stat = Gc.quick_stat (); gm_minor_words = Gc.minor_words () }

  type gc_delta = {
    minor_collections : int;
    major_collections : int;
    allocated_words : float;  (** minor + major - promoted, i.e. fresh *)
    top_heap_words : int;  (** peak heap words, absolute *)
  }

  let gc_delta (m : gc_mark) : gc_delta =
    let s = Gc.quick_stat () in
    let minor_words_now = Gc.minor_words () in
    {
      minor_collections =
        s.Gc.minor_collections - m.gm_stat.Gc.minor_collections;
      major_collections =
        s.Gc.major_collections - m.gm_stat.Gc.major_collections;
      allocated_words =
        minor_words_now -. m.gm_minor_words
        +. (s.Gc.major_words -. m.gm_stat.Gc.major_words)
        -. (s.Gc.promoted_words -. m.gm_stat.Gc.promoted_words);
      top_heap_words = s.Gc.top_heap_words;
    }

  let gc_delta_to_json (d : gc_delta) : Json.t =
    Json.Obj
      [
        "minor_collections", Json.num_of_int d.minor_collections;
        "major_collections", Json.num_of_int d.major_collections;
        "allocated_words", Json.Num d.allocated_words;
        "top_heap_words", Json.num_of_int d.top_heap_words;
      ]

  let to_json () : Json.t =
    Json.Obj
      [
        ( "counters",
          Json.Obj
            (List.map (fun (k, v) -> k, Json.num_of_int v) (counters ())) );
        ( "histograms",
          Json.Obj
            (List.map
               (fun (k, (s : histogram_stats)) ->
                 ( k,
                   Json.Obj
                     [
                       "count", Json.num_of_int s.count;
                       "sum", Json.Num s.sum;
                       "min", Json.Num s.min_v;
                       "max", Json.Num s.max_v;
                       "mean", Json.Num s.mean;
                       "p50", Json.Num s.p50;
                       "p90", Json.Num s.p90;
                     ] ))
               (histograms ())) );
      ]
end

module Provenance = struct
  (* Structured "why did this netlist mutation happen" events.  Same
     global-sink discipline as [Trace]: with no sink installed, [emit] is a
     single match on a ref and records nothing, so instrumented passes pay
     nothing in normal runs. *)

  type mechanism = Pruned | Rule of string | Sat | Memo | Analysis | Restructure

  type kind =
    | Cell_removed
    | Mux_bypassed
    | Const_resolved
    | Tree_rebuilt
    | Dead_branch

  type event = {
    kind : kind;
    cell : int;
    pass : string;
    mechanism : mechanism;
    query : int option;
    bits : int;
    area_delta : int;
  }

  type sink = { mutable recorded : event list; mutable count : int }

  let make_sink () = { recorded = []; count = 0 }

  (* Domain-local: each worker domain installs its own sink (or none);
     the scheduler merges captured events back into the main domain's
     sink at the barrier. *)
  let current : sink option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  let install s = Domain.DLS.set current (Some s)
  let uninstall () = Domain.DLS.set current None
  let enabled () = Domain.DLS.get current <> None

  (* Forward declared: the bus payload needs [event_to_json], defined
     below with the rest of the serialization. *)
  let to_bus : (event -> unit) ref = ref (fun _ -> ())

  let emit ~kind ~cell ~pass ~mechanism ?query ?(bits = 0) ?(area_delta = 0)
      () =
    let cur = Domain.DLS.get current in
    if cur <> None || Event.enabled () then begin
      let ev = { kind; cell; pass; mechanism; query; bits; area_delta } in
      (match cur with
      | Some s ->
        s.recorded <- ev :: s.recorded;
        s.count <- s.count + 1
      | None -> ());
      if Event.enabled () then !to_bus ev
    end

  (* Append already-recorded events to the current domain's sink without
     re-emitting them on the bus (the scope merge replays the bus
     capture separately, so double emission would duplicate events). *)
  let absorb (evs : event list) =
    match Domain.DLS.get current with
    | None -> ()
    | Some s ->
      List.iter
        (fun ev ->
          s.recorded <- ev :: s.recorded;
          s.count <- s.count + 1)
        evs

  (* Drain the current domain's sink (oldest first) and uninstall it. *)
  let capture_local () : event list =
    match Domain.DLS.get current with
    | None -> []
    | Some s ->
      Domain.DLS.set current None;
      List.rev s.recorded

  let events s = List.rev s.recorded
  let count s = s.count

  let kind_name = function
    | Cell_removed -> "cell_removed"
    | Mux_bypassed -> "mux_bypassed"
    | Const_resolved -> "const_resolved"
    | Tree_rebuilt -> "tree_rebuilt"
    | Dead_branch -> "dead_branch"

  let kind_of_name = function
    | "cell_removed" -> Some Cell_removed
    | "mux_bypassed" -> Some Mux_bypassed
    | "const_resolved" -> Some Const_resolved
    | "tree_rebuilt" -> Some Tree_rebuilt
    | "dead_branch" -> Some Dead_branch
    | _ -> None

  (* Rules keep their individual name in the event stream ("rule:eq") but
     collapse into one attribution row family; the bare constructors are
     stable one-word labels. *)
  let mechanism_name = function
    | Pruned -> "pruned"
    | Rule r -> "rule:" ^ r
    | Sat -> "sat"
    | Memo -> "memo"
    | Analysis -> "analysis"
    | Restructure -> "restructure"

  let mechanism_of_name s =
    match s with
    | "pruned" -> Some Pruned
    | "sat" -> Some Sat
    | "memo" -> Some Memo
    | "analysis" -> Some Analysis
    | "restructure" -> Some Restructure
    | _ ->
      let prefix = "rule:" in
      let pl = String.length prefix in
      if String.length s > pl && String.sub s 0 pl = prefix then
        Some (Rule (String.sub s pl (String.length s - pl)))
      else None

  let event_to_json (e : event) : Json.t =
    Json.Obj
      ([
         "kind", Json.Str (kind_name e.kind);
         "cell", Json.num_of_int e.cell;
         "pass", Json.Str e.pass;
         "mechanism", Json.Str (mechanism_name e.mechanism);
       ]
      @ (match e.query with
        | Some q -> [ "query", Json.num_of_int q ]
        | None -> [])
      @ (if e.bits <> 0 then [ "bits", Json.num_of_int e.bits ] else [])
      @
      if e.area_delta <> 0 then
        [ "area_delta", Json.num_of_int e.area_delta ]
      else [])

  let event_of_json (j : Json.t) : (event, string) result =
    let str k =
      match Json.member k j with Some (Json.Str s) -> Some s | _ -> None
    in
    let int_ k =
      match Json.member k j with
      | Some (Json.Num v) -> Some (int_of_float v)
      | _ -> None
    in
    match str "kind", str "pass", str "mechanism", int_ "cell" with
    | Some kn, Some pass, Some mn, Some cell -> (
      match kind_of_name kn, mechanism_of_name mn with
      | Some kind, Some mechanism ->
        Ok
          {
            kind;
            cell;
            pass;
            mechanism;
            query = int_ "query";
            bits = Option.value (int_ "bits") ~default:0;
            area_delta = Option.value (int_ "area_delta") ~default:0;
          }
      | None, _ -> Error (Printf.sprintf "unknown event kind %S" kn)
      | _, None -> Error (Printf.sprintf "unknown mechanism %S" mn))
    | _ -> Error "event missing kind/pass/mechanism/cell"

  (* JSONL: one compact JSON object per line — streamable, greppable, and
     each line is independently checkable by [Json.parse]. *)
  let to_jsonl_string s =
    let buf = Buffer.create 4096 in
    List.iter
      (fun e ->
        Buffer.add_string buf (Json.to_string (event_to_json e));
        Buffer.add_char buf '\n')
      (events s);
    Buffer.contents buf

  let write_jsonl ~path s =
    let oc = open_out path in
    output_string oc (to_jsonl_string s);
    close_out oc

  let () =
    to_bus :=
      fun ev ->
        Event.emit ~name:(kind_name ev.kind) ~data:(event_to_json ev)
          Event.Provenance

  let parse_jsonl text : (event list, string) result =
    let lines =
      String.split_on_char '\n' text
      |> List.filter (fun l -> String.trim l <> "")
    in
    let rec go acc lineno = function
      | [] -> Ok (List.rev acc)
      | line :: rest -> (
        match Json.parse line with
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        | Ok j -> (
          match event_of_json j with
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
          | Ok ev -> go (ev :: acc) (lineno + 1) rest))
    in
    go [] 1 lines

  (* Tolerant variant for flight-recorder ledgers: a killed writer tears
     the final line mid-record.  Recover every complete leading record and
     report the byte offset where the damage starts. *)
  let parse_jsonl_partial text : event list * int option =
    let vals, torn = Json.parse_jsonl_partial text in
    let rec go acc = function
      | [] -> List.rev acc, torn
      | (j, off) :: rest -> (
        match event_of_json j with
        | Ok ev -> go (ev :: acc) rest
        | Error _ -> List.rev acc, Some off)
    in
    go [] vals

  (* --- area attribution --- *)

  type attribution = {
    mech : string;
    cells_removed : int;
    muxes_bypassed : int;
    consts_resolved : int;
    trees_rebuilt : int;
    dead_branches : int;
    area_saved : int; (* positive = AIG area removed *)
  }

  (* Group rules under one "rule:<name>" row each; sort rows by cells
     removed (the paper's headline count) then area saved. *)
  let attribute (evs : event list) : attribution list =
    let tbl : (string, attribution) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let key = mechanism_name e.mechanism in
        let a =
          match Hashtbl.find_opt tbl key with
          | Some a -> a
          | None ->
            {
              mech = key;
              cells_removed = 0;
              muxes_bypassed = 0;
              consts_resolved = 0;
              trees_rebuilt = 0;
              dead_branches = 0;
              area_saved = 0;
            }
        in
        let a =
          match e.kind with
          | Cell_removed -> { a with cells_removed = a.cells_removed + 1 }
          | Mux_bypassed -> { a with muxes_bypassed = a.muxes_bypassed + 1 }
          | Const_resolved ->
            { a with consts_resolved = a.consts_resolved + max 1 e.bits }
          | Tree_rebuilt -> { a with trees_rebuilt = a.trees_rebuilt + 1 }
          | Dead_branch -> { a with dead_branches = a.dead_branches + 1 }
        in
        Hashtbl.replace tbl key { a with area_saved = a.area_saved - e.area_delta })
      evs;
    Hashtbl.fold (fun _ a acc -> a :: acc) tbl []
    |> List.sort (fun a b ->
           match compare b.cells_removed a.cells_removed with
           | 0 -> (
             match compare b.area_saved a.area_saved with
             | 0 -> compare a.mech b.mech
             | c -> c)
           | c -> c)

  let attribution_to_json (a : attribution) : Json.t =
    Json.Obj
      [
        "mechanism", Json.Str a.mech;
        "cells_removed", Json.num_of_int a.cells_removed;
        "muxes_bypassed", Json.num_of_int a.muxes_bypassed;
        "consts_resolved", Json.num_of_int a.consts_resolved;
        "trees_rebuilt", Json.num_of_int a.trees_rebuilt;
        "dead_branches", Json.num_of_int a.dead_branches;
        "area_saved", Json.num_of_int a.area_saved;
      ]

  let summary_json (evs : event list) : Json.t =
    let rows = attribute evs in
    let total f = List.fold_left (fun acc a -> acc + f a) 0 rows in
    Json.Obj
      [
        "events", Json.num_of_int (List.length evs);
        "cells_removed", Json.num_of_int (total (fun a -> a.cells_removed));
        "area_saved", Json.num_of_int (total (fun a -> a.area_saved));
        "by_mechanism", Json.List (List.map attribution_to_json rows);
      ]
end

(* Flight recorder: a fixed-capacity wrap buffer subscribed to the event
   bus.  Always on for ledgered runs — its cost is one array store per
   event — so when a run dies the last N events are dumpable without
   having planned for the failure. *)
module Ring = struct
  type t = {
    capacity : int;
    buf : Event.t option array;
    mutable seen : int;
    mutable sub : Event.subscription option;
  }

  let create ?(capacity = 256) () =
    let capacity = max 1 capacity in
    { capacity; buf = Array.make capacity None; seen = 0; sub = None }

  let push t e =
    t.buf.(t.seen mod t.capacity) <- Some e;
    t.seen <- t.seen + 1

  let attach t =
    let s = Event.subscribe ~name:"flight-ring" (fun e -> push t e) in
    t.sub <- Some s;
    s

  let detach t =
    match t.sub with
    | Some s ->
      t.sub <- None;
      Event.unsubscribe s
    | None -> ()

  let capacity t = t.capacity
  let seen t = t.seen

  let events t =
    let k = min t.seen t.capacity in
    List.init k (fun i ->
        match t.buf.((t.seen - k + i) mod t.capacity) with
        | Some e -> e
        | None -> assert false)

  let to_json ?(reason = "") ?(extra = []) t : Json.t =
    Json.Obj
      ([
         "schema", Json.Str "smartly-flightrec-v1";
         "reason", Json.Str reason;
         ( "current_pass",
           match Event.current_pass () with
           | Some p -> Json.Str p
           | None -> Json.Null );
         "seen", Json.num_of_int t.seen;
         "retained", Json.num_of_int (min t.seen t.capacity);
         "events", Json.List (List.map Event.to_json (events t));
       ]
      @ extra)
end

(* Run ledger: one directory per CLI run holding everything the run
   produced — manifest, ordered event stream, traces, provenance, SAT
   dumps, reports, and the flight-recorder dump if it died.  [smartly
   report] renders a run from these files alone, without the process that
   wrote them. *)
module Ledger = struct
  type t = {
    dir : string;
    run_id : string;
    started : float;  (* Unix epoch seconds, for humans; not monotonic *)
    argv : string list;
    env : Json.t;
    ring : Ring.t;
    mutable events_sub : Event.subscription option;
    mutable finished : bool;
  }

  let default_root = Filename.concat ".smartly" "runs"

  let rec mkdir_p dir =
    if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
    else begin
      mkdir_p (Filename.dirname dir);
      try Unix.mkdir dir 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  let fresh_run_id () =
    let tm = Unix.gmtime (Unix.gettimeofday ()) in
    Printf.sprintf "%04d%02d%02d-%02d%02d%02d-%d"
      (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
      tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec (Unix.getpid ())

  let path t name = Filename.concat t.dir name

  let write_file p contents =
    let oc = open_out p in
    output_string oc contents;
    output_char oc '\n';
    close_out oc

  let manifest_json ?(status = "running") ?(extra = []) t : Json.t =
    Json.Obj
      ([
         "schema", Json.Str "smartly-run-v1";
         "run_id", Json.Str t.run_id;
         "argv", Json.List (List.map (fun a -> Json.Str a) t.argv);
         "env", t.env;
         "started_unix", Json.Num t.started;
         "status", Json.Str status;
       ]
      @ extra)

  let write_manifest ?status ?extra t =
    write_file (path t "manifest.json")
      (Json.to_string ~pretty:true (manifest_json ?status ?extra t))

  let create ?(root = default_root) ?run_id ?(attach_events = true)
      ?(ring_capacity = 256) ~argv ~env () =
    let base = match run_id with Some id -> id | None -> fresh_run_id () in
    mkdir_p root;
    (* Two runs in the same second from the same shell script are routine
       (make ci does exactly that); claim a fresh directory by suffix. *)
    let rec claim i =
      let id = if i = 0 then base else Printf.sprintf "%s-%d" base i in
      let dir = Filename.concat root id in
      match Unix.mkdir dir 0o755 with
      | () -> id, dir
      | exception Unix.Unix_error (Unix.EEXIST, _, _) when i < 1000 ->
        claim (i + 1)
    in
    let run_id, dir = claim 0 in
    let t =
      {
        dir;
        run_id;
        started = Unix.gettimeofday ();
        argv;
        env;
        ring = Ring.create ~capacity:ring_capacity ();
        events_sub = None;
        finished = false;
      }
    in
    write_manifest t;
    ignore (Ring.attach t.ring);
    if attach_events then
      t.events_sub <- Some (Event.attach_jsonl ~path:(path t "events.jsonl"));
    t

  let dir t = t.dir
  let run_id t = t.run_id
  let ring t = t.ring

  let dump_flight ?(extra = []) ~reason t =
    let p = path t "flightrec.json" in
    write_file p
      (Json.to_string ~pretty:true (Ring.to_json ~reason ~extra t.ring));
    p

  let finish ?(extra = []) ~status t =
    if not t.finished then begin
      t.finished <- true;
      (match t.events_sub with
      | Some s ->
        t.events_sub <- None;
        Event.unsubscribe s
      | None -> ());
      Ring.detach t.ring;
      write_manifest ~status
        ~extra:(("ended_unix", Json.Num (Unix.gettimeofday ())) :: extra)
        t
    end
end

module Scope = struct
  (* One observability scope per scheduler task.  [spec] is taken on the
     coordinating domain before tasks are handed out; [install] runs on
     the executing domain (a worker, or the main domain when jobs run
     inline) and redirects every Obs write path — metrics, event bus,
     provenance — into domain-local buffers; [capture] drains them and
     restores whatever [install] displaced; [merge] folds a capture back
     into the coordinator's live state.  Captures merged in task order
     reproduce the sequential event stream exactly, which is what makes
     `--jobs N` output byte-identical to sequential. *)

  type spec = { sp_bus : bool; sp_prov : bool }

  let spec () = { sp_bus = Event.enabled (); sp_prov = Provenance.enabled () }

  type handle = { h_prev_prov : Provenance.sink option }

  let install (sp : spec) : handle =
    let prev = Domain.DLS.get Provenance.current in
    Metrics.install_local ();
    Event.install_local ~live:sp.sp_bus;
    if sp.sp_prov then Provenance.install (Provenance.make_sink ())
    else Provenance.uninstall ();
    { h_prev_prov = prev }

  type capture = {
    c_metrics : Metrics.snapshot;
    c_events : Event.captured list;
    c_prov : Provenance.event list;
  }

  let capture (h : handle) : capture =
    let c =
      {
        c_metrics = Metrics.capture_local ();
        c_events = Event.capture_local ();
        c_prov = Provenance.capture_local ();
      }
    in
    Domain.DLS.set Provenance.current h.h_prev_prov;
    c

  let empty_capture =
    { c_metrics = Metrics.empty_snapshot; c_events = []; c_prov = [] }

  (* Rewrite the SAT-query ids embedded in a capture: provenance [query]
     fields (both the typed events and their bus copies) and the bus
     Sat_query event's "q<id>" name and "id" datum.  The scheduler
     renumbers per-task-local ids into the global sequential numbering
     with this before merging, so merged streams are indistinguishable
     from a sequential run's. *)
  let map_queries (f : int -> int) (c : capture) : capture =
    let patch_field key j =
      match j with
      | Json.Obj fields ->
        Json.Obj
          (List.map
             (fun (k, v) ->
               match v with
               | Json.Num n when k = key ->
                 k, Json.num_of_int (f (int_of_float n))
               | _ -> k, v)
             fields)
      | d -> d
    in
    let patch_ev (ce : Event.captured) =
      match ce.Event.ce_kind with
      | Event.Sat_query ->
        let name =
          let n = ce.Event.ce_name in
          if String.length n > 1 && n.[0] = 'q' then
            match int_of_string_opt (String.sub n 1 (String.length n - 1)) with
            | Some old -> Printf.sprintf "q%d" (f old)
            | None -> n
          else n
        in
        { ce with Event.ce_name = name; ce_data = patch_field "id" ce.ce_data }
      | Event.Provenance ->
        { ce with Event.ce_data = patch_field "query" ce.ce_data }
      | _ -> ce
    in
    let patch_prov (ev : Provenance.event) =
      match ev.Provenance.query with
      | Some q -> { ev with Provenance.query = Some (f q) }
      | None -> ev
    in
    {
      c with
      c_events = List.map patch_ev c.c_events;
      c_prov = List.map patch_prov c.c_prov;
    }

  let merge (c : capture) =
    Metrics.absorb c.c_metrics;
    Provenance.absorb c.c_prov;
    Event.replay c.c_events
end
