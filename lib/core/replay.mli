(** Task-level result cache for the sharded muxtree pass.

    The task path ({!Sat_elim.run_tasks}) produces, per muxtree root, a
    deterministic self-contained result — the edit set against the
    pass-start snapshot plus the pass counters — which is a pure
    function of (frozen circuit cells, root id, config).  A warm batch
    (the serve daemon re-optimizing stamped-out design variants, or the
    [jobs_per_sec] bench's warm mode) therefore replays the recorded
    edits on key recurrence instead of re-running the task.  The
    coarse-grained sibling of {!Memo}: Memo removes a recurring query's
    sim/SAT rung, Replay removes the recurring tree's entire traversal.

    Opt-in and coordinator-only: nothing is consulted until {!install}
    puts a store on the current domain, and {!Sat_elim.run_tasks}
    resolves hits before tasks reach the worker pool, so the store
    needs no locking.  Replayed tasks restore their counters and
    engine-stat contributions byte-for-byte but do not re-emit
    provenance/metric events for the skipped work. *)

open Netlist

type entry = {
  e_edits : (int * Cell.t) list;
      (** (cell id, replacement) in application order; cells owned by
          the cache (deep-copied on store and on {!find} application) *)
  e_bypassed : int;
  e_folded : int;
  e_dead : int;
  e_stats : Engine.stats;
}

type t
(** A replay store: bounded FIFO table plus hit/miss counters. *)

val make : ?capacity:int -> unit -> t
(** [capacity] (default 1024) bounds the entry count; 0 disables
    storing. *)

val install : t -> unit
(** Make [t] the current domain's store — consulted by every subsequent
    task-path pass on this domain until {!uninstall}. *)

val uninstall : unit -> unit

val active : unit -> t option
(** The installed store, if any ([None] is the default everywhere). *)

val circuit_digest : Circuit.t -> string
(** Digest of a full serialization of the circuit's cells — the only
    state a task reads.  Distinct circuits serialize distinctly, so
    only a digest collision could replay wrongly; equal circuits always
    digest equally (cell ids ascending, canonical cell encoding). *)

val task_key : digest:string -> cfg_fp:string -> root:int -> string
(** Compose the cache key for one root of a digested circuit under a
    {!Config.fingerprint}. *)

val find : t -> string -> entry option
(** Bumps the hit/miss counters. *)

val store : t -> string -> entry -> unit
(** Insert (first writer wins); evicts FIFO beyond capacity.  The
    entry's edit cells are deep-copied in. *)

val copy_edits : (int * Cell.t) list -> (int * Cell.t) list
(** Deep-copy an edit list's cells — apply replayed edits through this
    so a later in-place rewrite can't corrupt the cache. *)

val to_json : t -> Obs.Json.t
(** [{"hits","misses","evictions","entries","capacity","hit_rate"}] —
    the serve report's [replay] section. *)
