(** Signal bits and bit vectors (sigspecs).

    A {!bit} is a constant (0, 1, X) or one bit of a wire; a {!sigspec} is
    an array of bits, least-significant first (RTLIL convention). *)

type bit =
  | C0  (** constant zero *)
  | C1  (** constant one *)
  | Cx  (** unknown / don't care *)
  | Of_wire of int * int  (** wire id, bit offset *)

type sigspec = bit array

val bit_equal : bit -> bit -> bool
val bit_compare : bit -> bit -> int
val bit_hash : bit -> int

val is_const : bit -> bool
(** [true] for [C0], [C1] and [Cx]. *)

val is_fully_const : sigspec -> bool

val const_of_bool : bool -> bit

val bool_of_const : bit -> bool option
(** [Some] for [C0]/[C1], [None] otherwise. *)

val of_int : width:int -> int -> sigspec
(** [of_int ~width v] is the [width]-bit constant [v], LSB first. *)

val to_int : sigspec -> int
(** Unsigned value of a fully-binary constant sigspec.
    @raise Invalid_argument on X or wire bits. *)

val width : sigspec -> int

val concat : sigspec list -> sigspec
(** Concatenation, first element at the LSB end. *)

val slice : sigspec -> off:int -> len:int -> sigspec
(** Bits [off .. off+len-1]. @raise Invalid_argument when out of range. *)

val equal : sigspec -> sigspec -> bool

val extend : sigspec -> width:int -> sigspec
(** Zero-extend or truncate to [width]. *)

val all_zero : width:int -> sigspec
val all_x : width:int -> sigspec

val pp_bit : Format.formatter -> bit -> unit
val pp : Format.formatter -> sigspec -> unit
val to_string : sigspec -> string

(** Containers keyed by bits. *)
module Bit : sig
  type t = bit

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
end

module Bit_tbl : Hashtbl.S with type key = bit
module Bit_set : Set.S with type elt = bit
module Bit_map : Map.S with type key = bit
