(* Tests for the ADD/BDD package. *)

module A = Add_bdd.Add

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_leaf_sharing () =
  let m = A.manager () in
  check_bool "leaves shared" true (A.leaf m 7 == A.leaf m 7);
  check_bool "distinct leaves" true (A.leaf m 7 != A.leaf m 8)

let test_reduction () =
  let m = A.manager () in
  let l = A.leaf m 3 in
  check_bool "lo = hi collapses" true (A.mk m ~var:0 ~lo:l ~hi:l == l);
  let n1 = A.mk m ~var:0 ~lo:(A.leaf m 0) ~hi:(A.leaf m 1) in
  let n2 = A.mk m ~var:0 ~lo:(A.leaf m 0) ~hi:(A.leaf m 1) in
  check_bool "hash consing" true (n1 == n2)

let test_eval () =
  let m = A.manager () in
  let t =
    A.mk m ~var:0
      ~lo:(A.mk m ~var:1 ~lo:(A.leaf m 10) ~hi:(A.leaf m 20))
      ~hi:(A.leaf m 30)
  in
  check_int "00" 10 (A.eval t (fun _ -> false));
  check_int "x0=1" 30 (A.eval t (fun v -> v = 0));
  check_int "x1=1" 20 (A.eval t (fun v -> v = 1))

let test_terminals_count () =
  let m = A.manager () in
  let t =
    A.mk m ~var:0
      ~lo:(A.mk m ~var:1 ~lo:(A.leaf m 10) ~hi:(A.leaf m 20))
      ~hi:(A.leaf m 10)
  in
  check_int "nodes" 2 (A.count_nodes t);
  Alcotest.(check (list int)) "terminals" [ 10; 20 ] (A.terminals t)

let test_bdd_ops () =
  let m = A.manager () in
  let x = A.bdd_var m 0 and y = A.bdd_var m 1 in
  let xy = A.bdd_and m x y in
  check_int "and 11" 1 (A.eval xy (fun _ -> true));
  check_int "and 10" 0 (A.eval xy (fun v -> v = 0));
  let xo = A.bdd_or m x (A.bdd_not m x) in
  check_bool "x | ~x = true" true (xo == A.bdd_true m);
  let xx = A.bdd_xor m x x in
  check_bool "x ^ x = false" true (xx == A.bdd_false m)

let test_restrict () =
  let m = A.manager () in
  let x = A.bdd_var m 0 and y = A.bdd_var m 1 in
  let f = A.bdd_and m x y in
  check_bool "f|x=1 is y" true (A.restrict m ~var:0 ~value:true f == y);
  check_bool "f|x=0 is false" true
    (A.restrict m ~var:0 ~value:false f == A.bdd_false m)

let test_ite () =
  let m = A.manager () in
  let c = A.bdd_var m 0 in
  let t = A.ite m c ~then_:(A.leaf m 5) ~else_:(A.leaf m 9) in
  check_int "cond true" 5 (A.eval t (fun v -> v = 0));
  check_int "cond false" 9 (A.eval t (fun _ -> false))

(* rows semantics: priority order, first match wins *)
let test_of_rows_priority () =
  let m = A.manager () in
  (* listing-2 style: 1zz -> 0, 01z -> 1, 001 -> 2, default 3
     cubes are LSB first: bit 2 is the MSB *)
  let mk_cube s2 s1 s0 = [| s0; s1; s2 |] in
  let rows =
    [
      mk_cube A.P1 A.Pz A.Pz, 0;
      mk_cube A.P0 A.P1 A.Pz, 1;
      mk_cube A.P0 A.P0 A.P1, 2;
    ]
  in
  let t = A.of_rows m ~num_vars:3 rows ~default:3 in
  let eval s =
    A.eval t (fun v -> (s lsr v) land 1 = 1)
  in
  check_int "s=100 -> p0" 0 (eval 0b100);
  check_int "s=111 -> p0" 0 (eval 0b111);
  check_int "s=010 -> p1" 1 (eval 0b010);
  check_int "s=011 -> p1" 1 (eval 0b011);
  check_int "s=001 -> p2" 2 (eval 0b001);
  check_int "s=000 -> default" 3 (eval 0b000)

(* property: of_rows equals a straightforward priority interpreter *)
let interp_rows rows ~default assignment =
  let cube_matches cube =
    Array.for_all
      (fun (i, b) ->
        match b with
        | A.Pz -> true
        | A.P0 -> not (assignment i)
        | A.P1 -> assignment i)
      (Array.mapi (fun i b -> i, b) cube)
  in
  let rec go = function
    | [] -> default
    | (cube, v) :: rest -> if cube_matches cube then v else go rest
  in
  go rows

let gen_rows =
  QCheck.Gen.(
    let* num_vars = int_range 1 5 in
    let* n_rows = int_range 1 6 in
    let gen_pbit = oneofl [ A.P0; A.P1; A.Pz ] in
    let gen_row =
      let* cube = array_size (return num_vars) gen_pbit in
      let* v = int_range 0 4 in
      return (cube, v)
    in
    let* rows = list_size (return n_rows) gen_row in
    return (num_vars, rows))

let prop_of_rows_semantics =
  QCheck.Test.make ~count:300 ~name:"of_rows = priority interpreter"
    (QCheck.make gen_rows)
    (fun (num_vars, rows) ->
      let m = A.manager () in
      let t = A.of_rows m ~num_vars rows ~default:99 in
      let ok = ref true in
      for s = 0 to (1 lsl num_vars) - 1 do
        let assignment v = (s lsr v) land 1 = 1 in
        if A.eval t assignment <> interp_rows rows ~default:99 assignment then
          ok := false
      done;
      !ok)

let prop_apply_commutes =
  QCheck.Test.make ~count:200 ~name:"bdd and/or match boolean eval"
    QCheck.(triple (int_bound 7) (int_bound 7) (int_bound 255))
    (fun (f_truth, g_truth, _) ->
      (* interpret 3-bit truth tables over vars 0..2 *)
      let m = A.manager () in
      let build truth =
        (* f(x0,x1,x2) = bit (x2x1x0) of truth *)
        let rows =
          List.init 8 (fun s ->
              ( Array.init 3 (fun v ->
                    if (s lsr v) land 1 = 1 then A.P1 else A.P0),
                (truth lsr s) land 1 ))
        in
        A.of_rows m ~num_vars:3 rows ~default:0
      in
      let f = build f_truth and g = build g_truth in
      let fg = A.bdd_and m f g in
      let ok = ref true in
      for s = 0 to 7 do
        let assignment v = (s lsr v) land 1 = 1 in
        let expect =
          (f_truth lsr s) land 1 land ((g_truth lsr s) land 1)
        in
        if A.eval fg assignment <> expect then ok := false
      done;
      !ok)

let () =
  Alcotest.run "bdd"
    [
      ( "unit",
        [
          Alcotest.test_case "leaf sharing" `Quick test_leaf_sharing;
          Alcotest.test_case "reduction" `Quick test_reduction;
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "terminals/nodes" `Quick test_terminals_count;
          Alcotest.test_case "bdd ops" `Quick test_bdd_ops;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "ite" `Quick test_ite;
          Alcotest.test_case "of_rows priority" `Quick test_of_rows_priority;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_of_rows_semantics; prop_apply_commutes ] );
    ]
