(** A CDCL SAT solver in the MiniSAT tradition: two-watched-literal
    propagation, first-UIP learning with clause minimization, VSIDS with
    phase saving, Luby restarts, learnt-database reduction, and incremental
    solving under assumptions. *)

type t

type result = Sat | Unsat | Unknown

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable (0-based). *)

val num_vars : t -> int
val num_clauses : t -> int
val num_conflicts : t -> int

val add_clause : t -> Lit.t list -> unit
(** Add a problem clause.  Tautologies are dropped; duplicate and falsified
    literals are cleaned.  Safe between incremental [solve] calls (the
    trail is rewound to level 0 first). *)

val solve :
  ?assumptions:Lit.t list ->
  ?budget:int ->
  ?relevant:int list ->
  ?interrupt:(unit -> bool) ->
  t ->
  result
(** Solve under the given assumption literals.  [budget] caps the number
    of conflicts spent by {e this call} before giving up with [Unknown] —
    lifetime totals do not count against it, so a long-lived incremental
    solver gets a full budget per query.  After [Sat] the model remains
    readable until the next mutation.  An [Unknown] or assumption-driven
    [Unsat] answer leaves the solver reusable; only a contradiction at
    decision level 0 (the formula itself is unsatisfiable) makes every
    later call answer [Unsat].

    [interrupt] is polled at every conflict and decision; once it returns
    [true] the call stops with [Unknown], leaving the solver reusable.
    The portfolio racer uses it to abandon the losing configuration.

    [relevant] restricts decisions to the given variables and stops with
    [Sat] (a {e partial} model — other variables keep their phase-saved
    [model_value]) once all of them are assigned without conflict.  Only
    sound when any such partial assignment extends to a total model: the
    caller must know every clause over the remaining variables is
    independently satisfiable, as {!Session} queries do by pinning
    inactive clause-group guards false.  Incremental sessions use this to
    keep per-query work proportional to the query's cone rather than to
    the accumulated database. *)

val model_value : t -> int -> bool
(** Value of a variable in the last model (phase-saved default when the
    variable was unconstrained). *)

val release_model : t -> unit
(** Rewind the trail after reading a model. *)

val value_var : t -> int -> int
(** Current assignment of a variable: 1 true, 0 false, -1 unassigned. *)

val value_lit : t -> Lit.t -> int
(** Current assignment of a literal: 1 true, 0 false, -1 unassigned. *)

val stats : t -> int * int * int
(** (conflicts, decisions, propagations), cumulative over the solver's
    lifetime. *)

(** Telemetry of one [solve] call, as opposed to the process-lifetime
    totals of {!stats}. *)
type solve_stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  wall_s : float;
}

val last_solve_stats : t -> solve_stats
(** Deltas and wall time of the most recent {!solve} call (all zero before
    the first call). *)
