(* Tests for the HDL frontend: lexer, parser, elaboration semantics. *)

open Netlist

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- lexer --- *)

let test_lex_sized_literals () =
  let toks = Hdl.Lexer.tokenize "4'b10z1 8'hff 3'd5 2'b?1" in
  let consts =
    List.filter_map
      (function Hdl.Lexer.SIZED c, _ -> Some c | _ -> None)
      toks
  in
  check_int "four literals" 4 (List.length consts);
  (match consts with
  | [ c1; c2; c3; c4 ] ->
    (* 4'b10z1, LSB first: [1; z; 0; 1] *)
    check_bool "b literal" true
      (c1.Hdl.Ast.cbits = Hdl.Ast.[ B1; Bz; B0; B1 ]);
    check_int "hff width" 8 c2.Hdl.Ast.cwidth;
    check_bool "hff bits" true
      (List.for_all (( = ) Hdl.Ast.B1) c2.Hdl.Ast.cbits);
    check_bool "d5" true (c3.Hdl.Ast.cbits = Hdl.Ast.[ B1; B0; B1 ]);
    check_bool "? wildcard" true (c4.Hdl.Ast.cbits = Hdl.Ast.[ B1; Bz ])
  | _ -> Alcotest.fail "wrong structure");
  (* comments are skipped *)
  let toks2 = Hdl.Lexer.tokenize "a // line\n/* block\n */ b" in
  check_int "two idents + eof" 3 (List.length toks2)

let test_lex_errors () =
  check_bool "bad char" true
    (match Hdl.Lexer.tokenize "a % b" with
    | _ -> false
    | exception Hdl.Lexer.Lex_error _ -> true)

let test_lex_token_positions () =
  (* tokens carry 1-based line/column of their first character *)
  match Hdl.Lexer.tokenize "a\n  wire b" with
  | (_, p1) :: (_, p2) :: (_, p3) :: _ ->
    check_int "a line" 1 p1.Hdl.Loc.line;
    check_int "a col" 1 p1.Hdl.Loc.col;
    check_int "wire line" 2 p2.Hdl.Loc.line;
    check_int "wire col" 3 p2.Hdl.Loc.col;
    check_int "b col" 8 p3.Hdl.Loc.col
  | _ -> Alcotest.fail "expected three tokens"

let test_lex_error_position () =
  match Hdl.Lexer.tokenize "module m;\n  %" with
  | _ -> Alcotest.fail "expected a lex error"
  | exception Hdl.Lexer.Lex_error (_, pos) ->
    check_int "line" 2 pos.Hdl.Loc.line;
    check_int "col" 3 pos.Hdl.Loc.col

let test_parse_error_position () =
  match
    Hdl.Parser.parse_string "module m(input a, output y);\n  assign y = ;\nendmodule"
  with
  | _ -> Alcotest.fail "expected a parse error"
  | exception Hdl.Parser.Parse_error (_, pos) ->
    check_int "line" 2 pos.Hdl.Loc.line

let test_elab_error_span () =
  match
    Hdl.Elaborate.elaborate_string
      "module m(input a, output y);\n  assign y = nope;\nendmodule"
  with
  | _ -> Alcotest.fail "expected an elaboration error"
  | exception Hdl.Elaborate.Elab_error (_, sp) -> (
    match sp with
    | Some sp -> check_int "line" 2 sp.Hdl.Loc.s.Hdl.Loc.line
    | None -> Alcotest.fail "expected a source span")

let test_ast_spans () =
  let m =
    Hdl.Parser.parse_string
      "module m(input [1:0] s, output reg y);\n  always @* begin\n    case (s)\n      2'b00: y = 1'b0;\n      default: y = 1'b1;\n    endcase\n  end\nendmodule"
  in
  let case_item_line =
    List.find_map
      (function
        | Hdl.Ast.I_always { body; _ } ->
          List.find_map
            (fun (s : Hdl.Ast.stmt) ->
              match s.Hdl.Ast.sdesc with
              | Hdl.Ast.S_case { Hdl.Ast.items = it :: _; _ } ->
                Some it.Hdl.Ast.iloc.Hdl.Loc.s.Hdl.Loc.line
              | _ -> None)
            body
        | _ -> None)
      m.Hdl.Ast.items
  in
  check_bool "first case item on line 4" true (case_item_line = Some 4)

(* --- parser --- *)

let test_parse_module_structure () =
  let m =
    Hdl.Parser.parse_string
      {|
module m(input [3:0] a, b, input c, output reg [3:0] y);
  wire [3:0] t;
  assign t = a & b;
  always @* begin
    if (c) y = t; else y = a + b;
  end
endmodule
|}
  in
  check_int "items" 7 (List.length m.Hdl.Ast.items);
  check_bool "name" true (m.Hdl.Ast.mname = "m")

let test_parse_precedence () =
  (* a | b & c parses as a | (b & c) *)
  let m =
    Hdl.Parser.parse_string
      "module m(input a, input b, input c, output y); assign y = a | b & c; endmodule"
  in
  let found =
    List.exists
      (function
        | Hdl.Ast.I_assign
            {
              lhs = "y";
              rhs =
                Hdl.Ast.E_binary
                  ( Hdl.Ast.B_or,
                    Hdl.Ast.E_ident "a",
                    Hdl.Ast.E_binary (Hdl.Ast.B_and, _, _) );
              _;
            } -> true
        | _ -> false)
      m.Hdl.Ast.items
  in
  check_bool "or of and" true found

let test_parse_ternary_nests () =
  let m =
    Hdl.Parser.parse_string
      "module m(input a, input b, input c, output y); assign y = a ? b ? 1'd0 : 1'd1 : c; endmodule"
  in
  check_bool "parsed" true (m.Hdl.Ast.mname = "m")

let test_parse_errors () =
  let bad s =
    match Hdl.Parser.parse_string s with
    | _ -> false
    | exception Hdl.Parser.Parse_error _ -> true
  in
  check_bool "missing semi" true (bad "module m(input a); assign a = a endmodule");
  check_bool "bad case" true
    (bad "module m(input a); always @* case a endcase endmodule");
  check_bool "trailing" true (bad "module m(input a); endmodule garbage")

(* --- elaboration semantics: run compiled circuits on vectors --- *)

let eval_output ?(style = `Chain) src ~inputs:ivals =
  let c = Hdl.Elaborate.elaborate_string ~style src in
  let input_bits =
    List.concat_map
      (fun (name, v) ->
        let w =
          List.find (fun w -> w.Circuit.wire_name = name) (Circuit.inputs c)
        in
        List.init w.Circuit.width (fun i ->
            ( Bits.Of_wire (w.Circuit.wire_id, i),
              if (v lsr i) land 1 = 1 then Rtl_sim.Value.V1
              else Rtl_sim.Value.V0 )))
      ivals
  in
  let env = Rtl_sim.Eval.run c ~inputs:input_bits () in
  let y =
    List.find (fun w -> w.Circuit.wire_name = "y") (Circuit.outputs c)
  in
  Rtl_sim.Eval.read_int env (Circuit.sig_of_wire y)

let test_elab_operators () =
  let src =
    {|
module m(input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = (a & b) ^ (a + b) - (a | b);
endmodule
|}
  in
  let expect a b = (a land b) lxor (((a + b) - (a lor b)) land 255) in
  check_int "ops 1" (expect 170 85)
    (Option.get (eval_output src ~inputs:[ "a", 170; "b", 85 ]));
  check_int "ops 2" (expect 255 3)
    (Option.get (eval_output src ~inputs:[ "a", 255; "b", 3 ]))

let test_elab_concat_slice () =
  let src =
    {|
module m(input [7:0] a, output [7:0] y);
  assign y = {a[3:0], a[7:4]};
endmodule
|}
  in
  check_int "swap nibbles" 0x5A
    (Option.get (eval_output src ~inputs:[ "a", 0xA5 ]))

let test_elab_reduce_logic () =
  let src =
    {|
module m(input [3:0] a, input [3:0] b, output [3:0] y);
  assign y = {1'd0, 1'd0, (a == b) && (|a), (&a) || !b};
endmodule
|}
  in
  (* y bit1 = (a==b) && a!=0 ; y bit0 = (&a) || (b==0)  (concat is MSB first) *)
  check_int "case a=b=5" 0b10
    (Option.get (eval_output src ~inputs:[ "a", 5; "b", 5 ]));
  check_int "case a=15 b=0" 0b01
    (Option.get (eval_output src ~inputs:[ "a", 15; "b", 0 ]))

let test_elab_if_priority () =
  let src =
    {|
module m(input [1:0] c, input [7:0] d0, input [7:0] d1, output reg [7:0] y);
  always @* begin
    y = d0;
    if (c[0]) y = d1;
    if (c[1]) y = 8'd7;
  end
endmodule
|}
  in
  check_int "none" 11 (Option.get (eval_output src ~inputs:[ "c", 0; "d0", 11; "d1", 22 ]));
  check_int "c0" 22 (Option.get (eval_output src ~inputs:[ "c", 1; "d0", 11; "d1", 22 ]));
  check_int "c1 wins" 7 (Option.get (eval_output src ~inputs:[ "c", 3; "d0", 11; "d1", 22 ]))

let listing1 =
  {|
module m(input [1:0] s, input [7:0] p0, input [7:0] p1,
         input [7:0] p2, input [7:0] p3, output reg [7:0] y);
  always @* begin
    case (s)
      2'b00: y = p0;
      2'b01: y = p1;
      2'b10: y = p2;
      default: y = p3;
    endcase
  end
endmodule
|}

let test_elab_case_semantics () =
  List.iter
    (fun style ->
      List.iteri
        (fun s expect ->
          check_int
            (Printf.sprintf "s=%d" s)
            expect
            (Option.get
               (eval_output ~style listing1
                  ~inputs:[ "s", s; "p0", 10; "p1", 20; "p2", 30; "p3", 40 ])))
        [ 10; 20; 30; 40 ])
    [ `Chain; `Balanced; `Pmux ]

let test_elab_casez_priority () =
  let src =
    {|
module m(input [2:0] s, input [7:0] p0, input [7:0] p1, output reg [7:0] y);
  always @* begin
    casez (s)
      3'b1zz: y = p0;
      3'b01z: y = p1;
      default: y = 8'd9;
    endcase
  end
endmodule
|}
  in
  let run s = Option.get (eval_output src ~inputs:[ "s", s; "p0", 50; "p1", 60 ]) in
  check_int "100" 50 (run 0b100);
  check_int "111" 50 (run 0b111);
  check_int "010" 60 (run 0b010);
  check_int "001" 9 (run 0b001)

let test_elab_styles_equivalent () =
  let chain = Hdl.Elaborate.elaborate_string ~style:`Chain listing1 in
  let bal = Hdl.Elaborate.elaborate_string ~style:`Balanced listing1 in
  let pm = Hdl.Elaborate.elaborate_string ~style:`Pmux listing1 in
  check_bool "chain=balanced" true (Equiv.is_equivalent chain bal);
  check_bool "chain=pmux" true (Equiv.is_equivalent chain pm)

let test_elab_errors () =
  let bad s =
    match Hdl.Elaborate.elaborate_string s with
    | _ -> false
    | exception Hdl.Elaborate.Elab_error _ -> true
  in
  check_bool "undeclared" true
    (bad "module m(output y); assign y = nope; endmodule");
  check_bool "duplicate" true
    (bad "module m(input a, input a, output y); assign y = a; endmodule");
  check_bool "oob select" true
    (bad "module m(input [3:0] a, output y); assign y = a[9]; endmodule")

let test_elab_blocking_raw () =
  (* blocking semantics: a read between two writes sees the first write *)
  let src =
    {|
module m(input [3:0] a, input [3:0] b, output [3:0] y);
  reg [3:0] t;
  reg [3:0] z;
  always @* begin
    t = a;
    z = t;
    t = b;
  end
  assign y = z;
endmodule
|}
  in
  check_int "z sees first write" 5
    (Option.get (eval_output src ~inputs:[ "a", 5; "b", 9 ]))

let test_elab_sequential () =
  (* posedge block infers dffs; non-blocking reads see pre-state *)
  let src =
    {|
module m(input clk, input [3:0] d, output [3:0] q1);
  reg [3:0] r0;
  reg [3:0] r1;
  always @(posedge clk) begin
    r0 <= d;
    r1 <= r0;
  end
  assign q1 = r1;
endmodule
|}
  in
  let c = Hdl.Elaborate.elaborate_string src in
  let st = Netlist.Stats.of_circuit c in
  check_int "two dffs" 2 st.Netlist.Stats.dffs;
  check_bool "valid" true (Validate.is_well_formed c);
  (* r1's next value must be the OLD r0, not d (non-blocking order) *)
  let wires = Hashtbl.fold (fun _ w acc -> w :: acc) c.Circuit.wires [] in
  let r0 = List.find (fun w -> w.Circuit.wire_name = "r0") wires in
  let state =
    List.init 4 (fun i ->
        ( Bits.Of_wire (r0.Circuit.wire_id, i),
          if (6 lsr i) land 1 = 1 then Rtl_sim.Value.V1 else Rtl_sim.Value.V0 ))
  in
  let env = Rtl_sim.Eval.run c ~state ~inputs:[] () in
  (* find the dff whose q is r1 and check its d equals old r0 = 6 *)
  let r1 = List.find (fun w -> w.Circuit.wire_name = "r1") wires in
  let next_r1 =
    Circuit.fold_cells
      (fun _ cell acc ->
        match cell with
        | Cell.Dff { d; q } when Bits.equal q (Circuit.sig_of_wire r1) ->
          Some d
        | _ -> acc)
      c None
  in
  (match next_r1 with
  | Some d ->
    check_int "r1' = old r0" 6 (Option.get (Rtl_sim.Eval.read_int env d))
  | None -> Alcotest.fail "no dff driving r1")

let test_verilog_roundtrip () =
  (* netlist -> Verilog -> netlist must be equivalent, all styles *)
  let src =
    {|
module rt(input clk, input [3:0] a, input [3:0] b, input [1:0] s,
          output [3:0] y);
  reg [3:0] acc;
  reg [3:0] r;
  always @* begin
    case (s)
      2'd0: r = a + b;
      2'd1: r = a - b;
      2'd2: r = a ^ b;
      default: r = a & b;
    endcase
  end
  always @(posedge clk) acc <= acc + r;
  assign y = acc ^ r;
endmodule
|}
  in
  List.iter
    (fun style ->
      let c1 = Hdl.Elaborate.elaborate_string ~style src in
      let text = Hdl.Verilog_out.write c1 in
      let c2 = Hdl.Elaborate.elaborate_string ~style:`Chain text in
      check_bool "roundtrip equivalent" true (Equiv.is_equivalent c1 c2))
    [ `Chain; `Balanced; `Pmux ]

let test_elab_well_formed () =
  List.iter
    (fun style ->
      let c = Hdl.Elaborate.elaborate_string ~style listing1 in
      check_bool "valid" true (Validate.is_well_formed c))
    [ `Chain; `Balanced; `Pmux ]

let () =
  Alcotest.run "hdl"
    [
      ( "lexer",
        [
          Alcotest.test_case "sized literals" `Quick test_lex_sized_literals;
          Alcotest.test_case "errors" `Quick test_lex_errors;
          Alcotest.test_case "token positions" `Quick test_lex_token_positions;
          Alcotest.test_case "error position" `Quick test_lex_error_position;
        ] );
      ( "parser",
        [
          Alcotest.test_case "module structure" `Quick test_parse_module_structure;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "ternary" `Quick test_parse_ternary_nests;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error position" `Quick test_parse_error_position;
          Alcotest.test_case "ast spans" `Quick test_ast_spans;
          Alcotest.test_case "elab error span" `Quick test_elab_error_span;
        ] );
      ( "elaborate",
        [
          Alcotest.test_case "operators" `Quick test_elab_operators;
          Alcotest.test_case "concat/slice" `Quick test_elab_concat_slice;
          Alcotest.test_case "reduce/logic" `Quick test_elab_reduce_logic;
          Alcotest.test_case "if priority" `Quick test_elab_if_priority;
          Alcotest.test_case "case semantics" `Quick test_elab_case_semantics;
          Alcotest.test_case "casez priority" `Quick test_elab_casez_priority;
          Alcotest.test_case "styles equivalent" `Quick test_elab_styles_equivalent;
          Alcotest.test_case "blocking read-after-write" `Quick test_elab_blocking_raw;
          Alcotest.test_case "sequential always" `Quick test_elab_sequential;
          Alcotest.test_case "verilog roundtrip" `Quick test_verilog_roundtrip;
          Alcotest.test_case "errors" `Quick test_elab_errors;
          Alcotest.test_case "well-formed" `Quick test_elab_well_formed;
        ] );
    ]
