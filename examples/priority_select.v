// Priority selector: pre-assigning 'grant' keeps the always @* block
// latch-free without a default arm (HDL001 checks must-assignment, not
// just the presence of a default), and the casez patterns are disjoint,
// so the HDL002 overlap rule stays quiet too.
module priority_select(input [3:0] req, output reg [1:0] grant);
  always @* begin
    grant = 2'b00;
    casez (req)
      4'bzz10: grant = 2'b01;
      4'bz100: grant = 2'b10;
      4'b1000: grant = 2'b11;
    endcase
  end
endmodule
