(* End-to-end integration tests: Verilog in, optimized netlist out, with
   functional checks along the whole pipeline. *)

open Netlist

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_output ?(style = `Chain) src ivals out_name =
  let c = Hdl.Elaborate.elaborate_string ~style src in
  let inputs =
    List.concat_map
      (fun (name, v) ->
        let w =
          List.find (fun w -> w.Circuit.wire_name = name) (Circuit.inputs c)
        in
        List.init w.Circuit.width (fun i ->
            ( Bits.Of_wire (w.Circuit.wire_id, i),
              if (v lsr i) land 1 = 1 then Rtl_sim.Value.V1
              else Rtl_sim.Value.V0 )))
      ivals
  in
  let env = Rtl_sim.Eval.run c ~inputs () in
  let y =
    List.find (fun w -> w.Circuit.wire_name = out_name) (Circuit.outputs c)
  in
  c, Rtl_sim.Eval.read_int env (Circuit.sig_of_wire y)

(* a small ALU exercising most expression forms *)
let alu =
  {|
module alu(input [2:0] op, input [7:0] a, input [7:0] b, output reg [7:0] y);
  wire [7:0] sum;
  wire [7:0] diff;
  assign sum = a + b;
  assign diff = a - b;
  always @* begin
    case (op)
      3'd0: y = sum;
      3'd1: y = diff;
      3'd2: y = a & b;
      3'd3: y = a | b;
      3'd4: y = a ^ b;
      3'd5: y = ~a;
      3'd6: y = (a == b) ? 8'd1 : 8'd0;
      default: y = a;
    endcase
  end
endmodule
|}

let alu_model op a b =
  match op with
  | 0 -> (a + b) land 255
  | 1 -> (a - b) land 255
  | 2 -> a land b
  | 3 -> a lor b
  | 4 -> a lxor b
  | 5 -> lnot a land 255
  | 6 -> if a = b then 1 else 0
  | _ -> a

let test_alu_semantics () =
  List.iter
    (fun (op, a, b) ->
      let _, got = run_output alu [ "op", op; "a", a; "b", b ] "y" in
      check_int
        (Printf.sprintf "op=%d a=%d b=%d" op a b)
        (alu_model op a b) (Option.get got))
    [
      0, 200, 57; 1, 13, 200; 2, 0xF0, 0x3C; 3, 0xF0, 0x3C; 4, 0xAA, 0xFF;
      5, 0x0F, 0; 6, 42, 42; 6, 42, 43; 7, 99, 1;
    ]

let test_alu_optimized_equivalent () =
  List.iter
    (fun style ->
      let c = Hdl.Elaborate.elaborate_string ~style alu in
      let orig = Circuit.copy c in
      ignore (Smartly.Driver.smartly c);
      check_bool "valid" true (Validate.is_well_formed c);
      check_bool "equivalent" true (Equiv.is_equivalent orig c);
      (* and still computes the right thing *)
      let inputs =
        List.concat_map
          (fun (name, v) ->
            let w =
              List.find (fun w -> w.Circuit.wire_name = name) (Circuit.inputs c)
            in
            List.init w.Circuit.width (fun i ->
                ( Bits.Of_wire (w.Circuit.wire_id, i),
                  if (v lsr i) land 1 = 1 then Rtl_sim.Value.V1
                  else Rtl_sim.Value.V0 )))
          [ "op", 1; "a", 7; "b", 9 ]
      in
      let env = Rtl_sim.Eval.run c ~inputs () in
      let y =
        List.find (fun w -> w.Circuit.wire_name = "y") (Circuit.outputs c)
      in
      check_int "7-9 mod 256" 254
        (Option.get (Rtl_sim.Eval.read_int env (Circuit.sig_of_wire y))))
    [ `Chain; `Balanced; `Pmux ]

(* deep nesting stress: 6 levels of correlated conditions *)
let test_deep_nesting () =
  let c =
    Workloads.Profiles.circuit
      {
        Workloads.Profiles.name = "deep";
        seed = 77;
        style = `Chain;
        repeat = 1;
        mix =
          [
            Workloads.Profiles.Correlated_ifs { depth = 6; width = 8 };
            Workloads.Profiles.Correlated_ifs { depth = 5; width = 8 };
          ];
        register_fraction = 0;
      }
  in
  let orig = Circuit.copy c in
  let cy = Circuit.copy c in
  ignore (Smartly.Driver.yosys cy);
  ignore (Smartly.Driver.smartly c);
  check_bool "equivalent" true (Equiv.is_equivalent orig c);
  check_bool "smartly <= yosys" true
    (Aiger.Aigmap.aig_area c <= Aiger.Aigmap.aig_area cy)

(* dump round: the printer runs and mentions the module *)
let test_pp_dump () =
  let c = Hdl.Elaborate.elaborate_string alu in
  let dump = Netlist.Pp.to_string c in
  check_bool "mentions module" true
    (String.length dump > 10 && String.sub dump 0 10 = "module alu")

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "alu semantics" `Quick test_alu_semantics;
          Alcotest.test_case "alu optimized equivalent" `Quick
            test_alu_optimized_equivalent;
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
          Alcotest.test_case "pp dump" `Quick test_pp_dump;
        ] );
    ]
