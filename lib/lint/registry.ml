(* Central declaration of every lint rule.  Rules_hdl and Rules_netlist
   emit diagnostics whose [rule] field must name an entry here; the test
   suite enforces that and the CLI rejects waivers of unknown ids. *)

type layer = Hdl | Netlist | Flow

type rule = {
  id : string;
  title : string;
  layer : layer;
  default_severity : Diag.severity;
  explain : string;
}

let layer_name = function Hdl -> "hdl" | Netlist -> "netlist" | Flow -> "flow"

let r id title layer default_severity explain =
  { id; title; layer; default_severity; explain }

let all =
  [
    r "HDL000" "frontend failure" Hdl Diag.Error
      "the source failed to lex, parse or elaborate; the message carries \
       the frontend error";
    r "HDL001" "incomplete case" Hdl Diag.Warning
      "a case/casez without a default whose items do not cover every \
       subject value infers a latch-like feedback mux";
    r "HDL002" "unreachable or overlapping case item" Hdl Diag.Warning
      "an item fully shadowed by earlier items never runs (warning); a \
       casez item partially overlapping an earlier one depends on \
       priority order (info)";
    r "HDL003" "multiple drivers" Hdl Diag.Error
      "a name assigned from more than one always block or continuous \
       assign elaborates to conflicting drivers";
    r "HDL004" "width truncation" Hdl Diag.Warning
      "the right-hand side carries more significant bits than the \
       assigned name can hold; the extra bits are silently dropped";
    r "HDL005" "read before write" Hdl Diag.Warning
      "an always @* block reads a reg it assigns before every path has \
       assigned it, creating combinational feedback on the old value";
    r "NL001" "constant mux select" Netlist Diag.Warning
      "a mux/pmux select pin is tied to a constant, so one branch is \
       statically chosen (opt_expr removes these)";
    r "NL002" "dead mux branch" Netlist Diag.Warning
      "both branches of a mux are identical, or a pmux lists the same \
       select bit twice; the select cannot influence the output";
    r "NL003" "duplicate eq chain" Netlist Diag.Info
      "several eq cells compare the same signal against the same \
       constant; opt_merge folds them into one comparator";
    r "NL004" "floating input" Netlist Diag.Warning
      "a module input drives nothing (clock-named inputs are exempt: the \
       single implicit clock never appears in the netlist)";
    r "NL005" "multiple drivers" Netlist Diag.Error
      "a wire bit is driven by more than one cell output";
    r "NL006" "undriven bit" Netlist Diag.Error
      "a wire bit is read by a cell or exported as an output but nothing \
       drives it";
    r "NL007" "width violation" Netlist Diag.Error
      "a cell's port widths are inconsistent";
    r "NL008" "unknown wire" Netlist Diag.Error
      "a cell references a wire id missing from the wire table";
    r "NL009" "combinational cycle" Netlist Diag.Error
      "combinational cells form a loop; the message names the cells on \
       one shortest cycle";
    r "NL010" "comparison always constant" Netlist Diag.Warning
      "the value analysis proves an eq/ne/logic cell always yields the \
       same bit for every reachable input, so the comparison is \
       vestigial: a constant (or its negation) replaces it";
    r "NL011" "provably dead mux branch" Netlist Diag.Warning
      "the value analysis proves a mux select constant, or a pmux branch \
       unselectable for every reachable input (an earlier one-hot bit \
       always wins, its select bit is always clear, or some select bit \
       is always set so the default never runs)";
    r "NL012" "constant-foldable cell" Netlist Diag.Info
      "the value analysis pins every output bit of a combinational cell, \
       so a constant replaces the whole cone feeding it";
    r "NL013" "arithmetic always wraps" Netlist Diag.Warning
      "the value analysis proves an add overflows its output width (or a \
       sub borrows) on every reachable input; the result is always \
       reduced modulo 2^width, which is rarely intended";
  ]

let all = List.sort (fun a b -> String.compare a.id b.id) all

let find id = List.find_opt (fun rule -> rule.id = id) all
let is_known id = find id <> None
