(** Lexer for the Verilog subset. *)

type token =
  | IDENT of string
  | NUMBER of int  (** plain unsized decimal *)
  | SIZED of Ast.constant  (** e.g. [4'b10z1], [8'hff], [3'd5] *)
  | KW of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COLON
  | SEMI
  | COMMA
  | AT
  | STAR
  | QUESTION
  | EQUAL
  | EQEQ
  | NONBLOCK
  | NEQ
  | AMP
  | AMPAMP
  | PIPE
  | PIPEPIPE
  | CARET
  | XNOR_OP
  | TILDE
  | BANG
  | PLUS
  | MINUS
  | EOF

exception Lex_error of string * int  (** message, byte position *)

val tokenize : string -> (token * int) list
(** Tokens paired with their byte positions; line and block comments are
    skipped.  The list ends with [EOF].
    @raise Lex_error on invalid input. *)
