(** Structural cell sharing (Yosys [opt_merge]): combinational cells with
    identical kind and inputs (commutative inputs normalized) merge into
    one; readers of duplicates are rewired. *)

val run_once : Netlist.Circuit.t -> int
val run : Netlist.Circuit.t -> int
