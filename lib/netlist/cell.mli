(** RTL cells, following the Yosys RTLIL conventions.

    - [Mux]: [y = s ? b : a] with a single-bit select;
    - [Pmux]: [y = s.(i) ? b.(i*w .. i*w+w-1) : a], lowest set index wins;
    - comparison / logic / reduction cells produce one bit;
    - [Dff] is the only sequential cell and contributes no AIG area. *)

type unary_op =
  | Not  (** bitwise complement *)
  | Logic_not  (** [!a]: 1 iff a is all-zero *)
  | Reduce_and
  | Reduce_or
  | Reduce_xor
  | Reduce_bool  (** 1 iff a is nonzero (same as [Reduce_or]) *)

type binary_op =
  | And
  | Or
  | Xor
  | Xnor
  | Eq
  | Ne
  | Logic_and
  | Logic_or
  | Add
  | Sub

type t =
  | Unary of { op : unary_op; a : Bits.sigspec; y : Bits.sigspec }
  | Binary of { op : binary_op; a : Bits.sigspec; b : Bits.sigspec; y : Bits.sigspec }
  | Mux of { a : Bits.sigspec; b : Bits.sigspec; s : Bits.bit; y : Bits.sigspec }
  | Pmux of { a : Bits.sigspec; b : Bits.sigspec; s : Bits.sigspec; y : Bits.sigspec }
  | Dff of { d : Bits.sigspec; q : Bits.sigspec }

val unary_op_name : unary_op -> string
val binary_op_name : binary_op -> string

val name : t -> string
(** The RTLIL-style cell-type name, e.g. ["$mux"]. *)

val is_combinational : t -> bool

val output : t -> Bits.sigspec
(** The sigspec driven by the cell ([y], or [q] for a dff). *)

val inputs : t -> Bits.sigspec list
(** All input sigspecs in port order. *)

val input_bits : t -> Bits.bit list
val output_bits : t -> Bits.bit list

val control_bits : t -> Bits.bit list
(** Select inputs of mux/pmux cells; empty for everything else. *)

exception Width_error of string

val check_widths : t -> unit
(** @raise Width_error when port widths are inconsistent. *)

val map_input_bits : (Bits.bit -> Bits.bit) -> t -> t
(** Substitute every input bit (outputs untouched); used for rewiring. *)

val pp : Format.formatter -> t -> unit
