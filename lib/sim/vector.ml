(* Two-valued, bit-parallel simulation: each wire bit carries a machine word
   of [lanes] independent simulation patterns (lanes <= Sys.int_size - 1).

   Used for fast random filtering and for the "few inputs -> exhaustive
   simulation" branch of smaRTLy's inference engine. *)

open Netlist

type env = { values : int Bits.Bit_tbl.t; lanes : int }

let lanes_max = Sys.int_size - 1

let create ?(lanes = lanes_max) () =
  if lanes <= 0 || lanes > lanes_max then invalid_arg "Vector.create";
  { values = Bits.Bit_tbl.create 64; lanes }

let mask env = if env.lanes >= lanes_max then -1 else (1 lsl env.lanes) - 1

let read env (b : Bits.bit) =
  match b with
  | Bits.C0 -> 0
  | Bits.C1 -> mask env
  | Bits.Cx -> 0 (* two-valued: treat X as 0 *)
  | Bits.Of_wire _ -> (
    match Bits.Bit_tbl.find_opt env.values b with Some v -> v | None -> 0)

let write env (b : Bits.bit) v =
  match b with
  | Bits.Of_wire _ -> Bits.Bit_tbl.replace env.values b (v land mask env)
  | Bits.C0 | Bits.C1 | Bits.Cx -> ()

let eval_cell env (cell : Cell.t) =
  let m = mask env in
  let rv s = Array.map (read env) s in
  let set_vec y vs = Array.iteri (fun i v -> write env y.(i) v) vs in
  let reduce_or vs = Array.fold_left ( lor ) 0 vs in
  let reduce_and vs = Array.fold_left ( land ) m vs in
  let reduce_xor vs = Array.fold_left ( lxor ) 0 vs in
  match cell with
  | Cell.Unary { op = Not; a; y } ->
    set_vec y (Array.map (fun v -> lnot v land m) (rv a))
  | Cell.Unary { op = Logic_not; a; y } ->
    write env y.(0) (lnot (reduce_or (rv a)) land m)
  | Cell.Unary { op = Reduce_and; a; y } -> write env y.(0) (reduce_and (rv a))
  | Cell.Unary { op = Reduce_or; a; y } | Cell.Unary { op = Reduce_bool; a; y }
    -> write env y.(0) (reduce_or (rv a))
  | Cell.Unary { op = Reduce_xor; a; y } -> write env y.(0) (reduce_xor (rv a))
  | Cell.Binary { op = And; a; b; y } ->
    set_vec y (Array.map2 ( land ) (rv a) (rv b))
  | Cell.Binary { op = Or; a; b; y } ->
    set_vec y (Array.map2 ( lor ) (rv a) (rv b))
  | Cell.Binary { op = Xor; a; b; y } ->
    set_vec y (Array.map2 ( lxor ) (rv a) (rv b))
  | Cell.Binary { op = Xnor; a; b; y } ->
    set_vec y (Array.map2 (fun p q -> lnot (p lxor q) land m) (rv a) (rv b))
  | Cell.Binary { op = Eq; a; b; y } ->
    write env y.(0)
      (reduce_and (Array.map2 (fun p q -> lnot (p lxor q) land m) (rv a) (rv b)))
  | Cell.Binary { op = Ne; a; b; y } ->
    write env y.(0) (reduce_or (Array.map2 ( lxor ) (rv a) (rv b)))
  | Cell.Binary { op = Logic_and; a; b; y } ->
    write env y.(0) (reduce_or (rv a) land reduce_or (rv b))
  | Cell.Binary { op = Logic_or; a; b; y } ->
    write env y.(0) (reduce_or (rv a) lor reduce_or (rv b))
  | Cell.Binary { op = Add; a; b; y } ->
    let va = rv a and vb = rv b in
    let carry = ref 0 in
    Array.iteri
      (fun i _ ->
        let s = va.(i) lxor vb.(i) lxor !carry in
        let c = va.(i) land vb.(i) lor (!carry land (va.(i) lxor vb.(i))) in
        write env y.(i) s;
        carry := c)
      y
  | Cell.Binary { op = Sub; a; b; y } ->
    let va = rv a and vb = Array.map (fun v -> lnot v land m) (rv b) in
    let carry = ref m in
    Array.iteri
      (fun i _ ->
        let s = va.(i) lxor vb.(i) lxor !carry in
        let c = va.(i) land vb.(i) lor (!carry land (va.(i) lxor vb.(i))) in
        write env y.(i) s;
        carry := c)
      y
  | Cell.Mux { a; b; s; y } ->
    let vs = read env s in
    let va = rv a and vb = rv b in
    Array.iteri
      (fun i _ -> write env y.(i) (vs land vb.(i) lor (lnot vs land m land va.(i))))
      y
  | Cell.Pmux { a; b; s; y } ->
    (* priority chain, lowest selector index wins *)
    let w = Bits.width a in
    let result = ref (rv a) in
    for i = Bits.width s - 1 downto 0 do
      let vs = read env s.(i) in
      let part = rv (Bits.slice b ~off:(i * w) ~len:w) in
      result :=
        Array.mapi
          (fun j r -> vs land part.(j) lor (lnot vs land m land r))
          !result
    done;
    set_vec y !result
  | Cell.Dff _ -> ()

let eval_ordered (c : Circuit.t) env order =
  List.iter (fun id -> eval_cell env (Circuit.cell c id)) order

(* Deterministic pseudo-random patterns (splitmix64-style). *)
let random_word seed idx =
  let z = ref (seed + (idx * 0x1E3779B97F4A7C15)) in
  z := (!z lxor (!z lsr 30)) * 0x3F58476D1CE4E5B9;
  z := (!z lxor (!z lsr 27)) * 0x14D049BB133111EB;
  !z lxor (!z lsr 31)

(* Randomize the given bits; returns unit, patterns live in [env]. *)
let randomize env ~seed bits =
  List.iteri (fun i b -> write env b (random_word seed i)) bits

(* Run [rounds] rounds of random simulation of the full circuit and check
   that outputs of [c1] and [c2] agree.  Both circuits must share input
   wires by name.  Returns the first differing (round, output name). *)
let random_equiv ?(rounds = 16) ?(seed = 0x5eed) (c1 : Circuit.t)
    (c2 : Circuit.t) =
  let ins1 = Circuit.inputs c1 and ins2 = Circuit.inputs c2 in
  let order1 = Topo.sort c1 and order2 = Topo.sort c2 in
  let outs1 = Circuit.outputs c1 and outs2 = Circuit.outputs c2 in
  let find_in2 name =
    List.find_opt (fun w -> w.Circuit.wire_name = name) ins2
  in
  let find_out2 name =
    List.find_opt (fun w -> w.Circuit.wire_name = name) outs2
  in
  let rec loop round =
    if round >= rounds then None
    else begin
      let env1 = create () and env2 = create () in
      List.iteri
        (fun i w1 ->
          let s1 = Circuit.sig_of_wire w1 in
          Array.iteri
            (fun j b ->
              let v = random_word (seed + round) ((i * 131) + j) in
              write env1 b v;
              match find_in2 w1.Circuit.wire_name with
              | Some w2 when j < w2.Circuit.width ->
                write env2 (Bits.Of_wire (w2.Circuit.wire_id, j)) v
              | Some _ | None -> ())
            s1)
        ins1;
      eval_ordered c1 env1 order1;
      eval_ordered c2 env2 order2;
      let bad =
        List.find_opt
          (fun w1 ->
            match find_out2 w1.Circuit.wire_name with
            | None -> true
            | Some w2 ->
              w1.Circuit.width <> w2.Circuit.width
              || Array.exists
                   (fun j ->
                     read env1 (Bits.Of_wire (w1.Circuit.wire_id, j))
                     <> read env2 (Bits.Of_wire (w2.Circuit.wire_id, j)))
                   (Array.init w1.Circuit.width (fun j -> j)))
          outs1
      in
      match bad with
      | Some w -> Some (round, w.Circuit.wire_name)
      | None -> loop (round + 1)
    end
  in
  loop 0
