(* Hand-written lexer for the Verilog subset. *)

type token =
  | IDENT of string
  | NUMBER of int (* plain unsized decimal *)
  | SIZED of Ast.constant (* e.g. 4'b10z1, 8'hff, 3'd5 *)
  | KW of string (* module endmodule input output wire reg assign always
                    begin end if else case casez endcase default *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COLON
  | SEMI
  | COMMA
  | AT
  | STAR
  | QUESTION
  | EQUAL (* = *)
  | EQEQ (* == *)
  | NONBLOCK (* <= *)
  | NEQ (* != *)
  | AMP (* & *)
  | AMPAMP (* && *)
  | PIPE (* | *)
  | PIPEPIPE (* || *)
  | CARET (* ^ *)
  | XNOR_OP (* ~^ or ^~ *)
  | TILDE (* ~ *)
  | BANG (* ! *)
  | PLUS
  | MINUS
  | EOF

exception Lex_error of string * Loc.pos (* message, position *)

let keywords =
  [
    "module"; "endmodule"; "input"; "output"; "wire"; "reg"; "assign";
    "always"; "begin"; "end"; "if"; "else"; "case"; "casez"; "endcase";
    "default"; "posedge"; "negedge";
  ]

let is_ident_start ch = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_'
let is_ident_char ch = is_ident_start ch || (ch >= '0' && ch <= '9') || ch = '$'
let is_digit ch = ch >= '0' && ch <= '9'

let digit_value ch =
  if is_digit ch then Char.code ch - Char.code '0'
  else if ch >= 'a' && ch <= 'f' then Char.code ch - Char.code 'a' + 10
  else if ch >= 'A' && ch <= 'F' then Char.code ch - Char.code 'A' + 10
  else invalid_arg "digit_value"

(* Parse the digits of a sized literal in the given base into LSB-first
   cbits of the target width; 'z' and '?' become wildcards. *)
let sized_constant ~width ~base digits (pos : Loc.pos) : Ast.constant =
  let bits_per_digit =
    match base with 'b' -> 1 | 'o' -> 3 | 'h' -> 4 | 'd' -> 0 | _ ->
      raise (Lex_error (Printf.sprintf "bad base '%c'" base, pos))
  in
  let cbits =
    if base = 'd' then begin
      let v =
        try int_of_string digits
        with Failure _ -> raise (Lex_error ("bad decimal literal", pos))
      in
      List.init width (fun i ->
          if (v lsr i) land 1 = 1 then Ast.B1 else Ast.B0)
    end
    else begin
      (* expand digit by digit, MSB digit first in the source *)
      let expanded = ref [] in
      String.iter
        (fun ch ->
          if ch = '_' then ()
          else if ch = 'z' || ch = 'Z' || ch = '?' then
            for _ = 1 to max bits_per_digit 1 do
              expanded := Ast.Bz :: !expanded
            done
          else begin
            let v =
              try digit_value ch
              with Invalid_argument _ ->
                raise (Lex_error (Printf.sprintf "bad digit '%c'" ch, pos))
            in
            for k = 0 to bits_per_digit - 1 do
              (* MSB of the digit first so the final list is LSB first *)
              let bit = (v lsr (bits_per_digit - 1 - k)) land 1 in
              expanded := (if bit = 1 then Ast.B1 else Ast.B0) :: !expanded
            done
          end)
        digits;
      (* !expanded is LSB first now; pad or truncate to width *)
      let lst = !expanded in
      let n = List.length lst in
      if n >= width then List.filteri (fun i _ -> i < width) lst
      else lst @ List.init (width - n) (fun _ -> Ast.B0)
    end
  in
  { Ast.cwidth = width; cbits }

let tokenize (src : string) : (token * Loc.pos) list =
  let n = String.length src in
  let lm = Loc.line_map src in
  let pos_of off = Loc.pos_of_offset lm off in
  let tokens = ref [] in
  let push tok off = tokens := (tok, pos_of off) :: !tokens in
  let lex_error msg off = raise (Lex_error (msg, pos_of off)) in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    let ch = src.[!i] in
    if ch = ' ' || ch = '\t' || ch = '\n' || ch = '\r' then incr i
    else if ch = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if ch = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i + 1 < n do
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then lex_error "unterminated comment" start
    end
    else if is_ident_start ch then begin
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      if List.mem word keywords then push (KW word) start
      else push (IDENT word) start
    end
    else if is_digit ch then begin
      (* number: either plain decimal or a sized literal width'base... *)
      while !i < n && (is_digit src.[!i] || src.[!i] = '_') do
        incr i
      done;
      if !i < n && src.[!i] = '\'' then begin
        let width =
          int_of_string
            (String.concat ""
               (String.split_on_char '_' (String.sub src start (!i - start))))
        in
        incr i;
        if !i >= n then lex_error "truncated literal" start;
        let base = Char.lowercase_ascii src.[!i] in
        incr i;
        let dstart = !i in
        while
          !i < n
          && (is_ident_char src.[!i] || src.[!i] = '?')
        do
          incr i
        done;
        let digits = String.sub src dstart (!i - dstart) in
        push (SIZED (sized_constant ~width ~base digits (pos_of start))) start
      end
      else begin
        let txt =
          String.concat ""
            (String.split_on_char '_' (String.sub src start (!i - start)))
        in
        push (NUMBER (int_of_string txt)) start
      end
    end
    else begin
      incr i;
      let next () = if !i < n then Some src.[!i] else None in
      match ch with
      | '(' -> push LPAREN start
      | ')' -> push RPAREN start
      | '[' -> push LBRACKET start
      | ']' -> push RBRACKET start
      | '{' -> push LBRACE start
      | '}' -> push RBRACE start
      | ':' -> push COLON start
      | ';' -> push SEMI start
      | ',' -> push COMMA start
      | '@' -> push AT start
      | '*' -> push STAR start
      | '?' -> push QUESTION start
      | '+' -> push PLUS start
      | '-' -> push MINUS start
      | '<' ->
        if next () = Some '=' then begin
          incr i;
          push NONBLOCK start
        end
        else lex_error "'<' is only valid in '<='" start
      | '=' ->
        if next () = Some '=' then begin
          incr i;
          push EQEQ start
        end
        else push EQUAL start
      | '!' ->
        if next () = Some '=' then begin
          incr i;
          push NEQ start
        end
        else push BANG start
      | '&' ->
        if next () = Some '&' then begin
          incr i;
          push AMPAMP start
        end
        else push AMP start
      | '|' ->
        if next () = Some '|' then begin
          incr i;
          push PIPEPIPE start
        end
        else push PIPE start
      | '^' ->
        if next () = Some '~' then begin
          incr i;
          push XNOR_OP start
        end
        else push CARET start
      | '~' ->
        if next () = Some '^' then begin
          incr i;
          push XNOR_OP start
        end
        else push TILDE start
      | c -> lex_error (Printf.sprintf "unexpected character '%c'" c) start
    end
  done;
  push EOF n;
  List.rev !tokens
