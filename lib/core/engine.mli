(** The combined decision engine: is a signal forced under path facts?

    Resolution ladder, the paper's plus a static rung: direct lookup
    (the Yosys identical-signal rule), inference rules, the
    abstract-interpretation rung zero ({!Analysis.Fixpoint}: known-bits +
    intervals, answering before the memo/sim/SAT rungs when the target's
    abstract value is definite), exhaustive bit-parallel simulation when
    the pruned sub-graph has few free inputs, an incremental SAT query
    otherwise, and a give-up threshold. *)

open Netlist

type verdict =
  | Forced of bool
  | Free  (** provably takes both values *)
  | Unreachable  (** the facts are contradictory: dead path *)
  | Unknown  (** thresholds exceeded or budget exhausted *)

type stats = {
  mutable rule_hits : int;
  mutable analysis_hits : int;
      (** verdicts answered by the abstract-interpretation rung zero *)
  mutable analysis_queries : int;
      (** rung-zero attempts (hits + falls through on top) *)
  mutable sim_queries : int;
  mutable sat_queries : int;
  mutable memo_hits : int;
      (** verdicts answered by the cross-query cache ({!Memo}) *)
  mutable memo_misses : int;
      (** cache consults that fell through to sim/SAT *)
  mutable forgone : int;
  mutable subgraph_kept : int;
  mutable subgraph_dropped : int;
  mutable sat_conflicts : int;
      (** solver conflicts accumulated over all SAT queries *)
  mutable sat_decisions : int;
  mutable sat_propagations : int;
}

val fresh_stats : unit -> stats

(** Which rung of the ladder produced a verdict — the provenance half of
    {!determine_how}. *)
type source =
  | Via_lookup  (** already known: the identical-signal rule *)
  | Via_rule of string  (** inference rule family that derived the value *)
  | Via_analysis
      (** abstract-interpretation rung zero: the known-bits + interval
          fixpoint pinned the target (or proved the path dead) *)
  | Via_sim  (** exhaustive bit-parallel simulation *)
  | Via_sat of int  (** SAT query, carrying the query id *)
  | Via_memo  (** cross-query verdict cache hit *)
  | Via_forgone  (** thresholds exceeded; verdict is [Unknown] *)

val source_name : source -> string
(** ["lookup"], ["rule:or"], ["analysis"], ["sim"], ["sat:42"],
    ["memo"], ["forgone"]. *)

(** Per-SAT-query telemetry and a bounded buffer of the hardest queries
    (by conflicts), each with a self-contained DIMACS dump replayable by
    [smartly replay].  Domain-local like the metrics registry: each
    scheduler worker numbers queries from 0 in its own instance and the
    coordinator {!Sat_log.absorb}s captured logs in task order, shifting
    local ids onto the global sequence.  Call {!Sat_log.reset} to scope
    the coordinator's log to one run. *)
module Sat_log : sig
  type entry = {
    id : int;  (** query id, 0-based per {!reset} *)
    verdict : string;
        (** [forced_true | forced_false | free | unreachable | unknown] *)
    solve : Cdcl.Solver.result;  (** result of the query's final solve *)
    mode : string;  (** ["fresh"] or ["session"] *)
    conflicts : int;  (** over both polarity solves *)
    decisions : int;
    propagations : int;
    wall_s : float;
    vars : int;
    clauses : int;
    dimacs : int -> string;
        (** full DIMACS text for the given query id, metadata comment
            line included — the CNF is already materialized; only the
            [id=] field of the comment is rendered late, because a
            parallel merge may renumber the entry *)
  }

  val reset : ?keep:int -> unit -> unit
  (** Clear the log and restart query ids; [keep] (default 8) bounds the
      hardest-query buffer. *)

  val hardest : unit -> entry list
  (** Hardest first. *)

  val query_count : unit -> int
  (** Total queries recorded since {!reset}. *)

  val flags_hard : unit -> bool
  (** Whether the retained ring holds an entry past the hard-query
      conflict floor — the portfolio racer's trigger: once the run has
      produced one genuinely hard query, later SAT queries are worth
      racing against a fresh-encoding rival. *)

  type snapshot
  (** A captured worker-domain log: ids consumed, total, hardest
      buffer. *)

  val capture_and_reset : unit -> snapshot
  (** Drain the current domain's log (worker side of the barrier). *)

  val absorb : snapshot -> int
  (** Fold a captured log into the current domain's and return the id
      offset applied to its entries — the caller renumbers the same
      task's provenance and bus references with it
      ({!Obs.Scope.map_queries}).  Merging snapshots in task order
      reproduces the sequential log exactly. *)

  type saved

  val save_fresh : unit -> saved
  (** Displace the current domain's log with a fresh one (task scoping
      when tasks run inline on the coordinator). *)

  val restore : saved -> unit

  val solve_name : Cdcl.Solver.result -> string
  (** ["SAT" | "UNSAT" | "UNKNOWN"] — matches the [solve=] field of the
      DIMACS metadata comment. *)

  val to_json : unit -> Obs.Json.t
  (** [{"total", "hardest": [...]}] — the [sat_queries] report section. *)

  val dump : dir:string -> string list
  (** Write each hardest query as [query_NNNN.cnf] under [dir]; returns
      the paths written (easiest first). *)
end

val simulate_exhaustive :
  Circuit.t ->
  Subgraph.view ->
  Inference.known ->
  free_inputs:Bits.bit list ->
  target:Bits.bit ->
  verdict
(** Enumerate all assignments of the free sub-graph inputs; rows violating
    an internal known value are discarded. *)

val query_sat :
  ?stats:stats ->
  ?session:Cdcl.Session.t ->
  ?portfolio:bool ->
  Circuit.t ->
  Subgraph.view ->
  Inference.known ->
  budget:int ->
  target:Bits.bit ->
  verdict
(** One forced-value query.  Without [session], a fresh Tseitin encoding
    and solver; with [session], the persistent solver answers it — the
    view's cells are lazily encoded as guarded clause groups and activated
    by assumptions, so the verdict is the same while learned clauses and
    the variable map carry over to the next query.  When [stats] is given
    the query's conflict/decision/propagation deltas are accumulated into
    it (and into the global {!Obs.Metrics} registry).

    With [portfolio] (and a session), queries issued after
    {!Sat_log.flags_hard} trips are raced on two domains: the warm
    session versus a fresh encoding, first decided verdict wins and
    interrupts the rival ({!Pool.race}).  The verdict is unchanged
    either way; only the solver telemetry (whose configuration's deltas
    get recorded) becomes schedule-dependent, which is why the mode is
    opt-in. *)

val query_sat_how :
  ?stats:stats ->
  ?session:Cdcl.Session.t ->
  ?portfolio:bool ->
  Circuit.t ->
  Subgraph.view ->
  Inference.known ->
  budget:int ->
  target:Bits.bit ->
  verdict * int
(** Like {!query_sat}, also returning the {!Sat_log} query id. *)

val determine :
  ?session:Cdcl.Session.t ->
  Config.t ->
  stats ->
  Circuit.t ->
  Index.t ->
  Inference.known ->
  target:Bits.bit ->
  verdict
(** Build the bounded sub-graph from the cones of the target and the known
    signals, prune it (Theorem II.1), and run the ladder.  The caller's
    known map is never polluted with inferred values.  When
    [cfg.enable_sat_memo] is set, the sim/SAT rungs are fronted by the
    cross-query cache ({!Memo}); [session] routes SAT queries through the
    persistent incremental solver. *)

val determine_how :
  ?session:Cdcl.Session.t ->
  Config.t ->
  stats ->
  Circuit.t ->
  Index.t ->
  Inference.known ->
  target:Bits.bit ->
  verdict * source
(** {!determine}, also reporting which ladder rung resolved the query. *)
