(* Task-level result cache for the sharded muxtree pass.

   The task path ({!Sat_elim.run_tasks}) already produces, per muxtree
   root, a self-contained deterministic result: the recorded edit set
   against the pass-start snapshot plus the pass counters.  That result
   is a pure function of (frozen circuit cells, root id, config), so a
   warm batch — the serve daemon re-optimizing stamped-out copies or
   re-running a design batch after edits elsewhere — can skip the whole
   task and replay the recorded edits when the key recurs.  This is the
   coarse-grained sibling of the per-query {!Memo}: Memo removes a
   recurring query's sim/SAT rung, Replay removes the entire traversal,
   sub-graph construction and key building for a recurring tree.

   Keys embed a digest of a full serialization of the circuit's cells
   (the only state the task reads — ports and wire names don't reach the
   engine), the root id and {!Config.fingerprint}.  Distinct circuits
   serialize distinctly, so a digest collision is the only wrong-replay
   risk (MD5, negligible at cache scale); a serialization mismatch
   between equal circuits merely costs a miss, never correctness.

   The cache is opt-in: nothing is consulted until a caller installs a
   store on the current domain (the serve daemon and the jobs_per_sec
   bench do; plain CLI runs never see it).  Lookups and stores happen
   only on the coordinator domain — hits are filtered out before tasks
   reach the worker pool — so the table needs no locking. *)

open Netlist

type entry = {
  e_edits : (int * Cell.t) list;  (* application order, cells owned *)
  e_bypassed : int;
  e_folded : int;
  e_dead : int;
  e_stats : Engine.stats;
}

type t = {
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  order : string Queue.t;  (* insertion order, for FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let make ?(capacity = 1024) () =
  {
    capacity;
    tbl = Hashtbl.create 64;
    order = Queue.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
  }

(* Opt-in, per domain: [None] (the default everywhere) disables the
   cache entirely. *)
let current_key : t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let install s = Domain.DLS.set current_key (Some s)
let uninstall () = Domain.DLS.set current_key None
let active () = Domain.DLS.get current_key

(* Cells carry mutable bit arrays; entries own their cells so a later
   in-place rewrite of an applied cell can't corrupt the cache. *)
let copy_cell : Cell.t -> Cell.t = function
  | Cell.Unary { op; a; y } ->
    Cell.Unary { op; a = Array.copy a; y = Array.copy y }
  | Cell.Binary { op; a; b; y } ->
    Cell.Binary { op; a = Array.copy a; b = Array.copy b; y = Array.copy y }
  | Cell.Mux { a; b; s; y } ->
    Cell.Mux { a = Array.copy a; b = Array.copy b; s; y = Array.copy y }
  | Cell.Pmux { a; b; s; y } ->
    Cell.Pmux
      {
        a = Array.copy a;
        b = Array.copy b;
        s = Array.copy s;
        y = Array.copy y;
      }
  | Cell.Dff { d; q } -> Cell.Dff { d = Array.copy d; q = Array.copy q }

let copy_edits = List.map (fun (id, cell) -> (id, copy_cell cell))

(* --- keys --- *)

let ser_bit buf = function
  | Bits.C0 -> Buffer.add_char buf '0'
  | Bits.C1 -> Buffer.add_char buf '1'
  | Bits.Cx -> Buffer.add_char buf 'x'
  | Bits.Of_wire (w, o) ->
    Buffer.add_char buf 'w';
    Buffer.add_string buf (string_of_int w);
    Buffer.add_char buf '.';
    Buffer.add_string buf (string_of_int o)

let ser_sig buf s =
  Array.iter
    (fun b ->
      ser_bit buf b;
      Buffer.add_char buf ',')
    s;
  Buffer.add_char buf ';'

let ser_cell buf = function
  | Cell.Unary { op; a; y } ->
    Buffer.add_string buf (Cell.unary_op_name op);
    ser_sig buf a;
    ser_sig buf y
  | Cell.Binary { op; a; b; y } ->
    Buffer.add_string buf (Cell.binary_op_name op);
    ser_sig buf a;
    ser_sig buf b;
    ser_sig buf y
  | Cell.Mux { a; b; s; y } ->
    Buffer.add_string buf "$mux";
    ser_sig buf a;
    ser_sig buf b;
    ser_bit buf s;
    Buffer.add_char buf ';';
    ser_sig buf y
  | Cell.Pmux { a; b; s; y } ->
    Buffer.add_string buf "$pmux";
    ser_sig buf a;
    ser_sig buf b;
    ser_sig buf s;
    ser_sig buf y
  | Cell.Dff { d; q } ->
    Buffer.add_string buf "$dff";
    ser_sig buf d;
    ser_sig buf q

let circuit_digest (c : Circuit.t) : string =
  let buf = Buffer.create 65536 in
  List.iter
    (fun id ->
      Buffer.add_string buf (string_of_int id);
      Buffer.add_char buf ':';
      ser_cell buf (Circuit.cell c id);
      Buffer.add_char buf '\n')
    (Circuit.cell_ids c);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let task_key ~digest ~cfg_fp ~root =
  Printf.sprintf "%s:%d:%s" digest root cfg_fp

(* --- lookup / store --- *)

let find s key =
  match Hashtbl.find_opt s.tbl key with
  | Some e ->
    s.hits <- s.hits + 1;
    Some e
  | None ->
    s.misses <- s.misses + 1;
    None

let store s key e =
  if s.capacity > 0 && not (Hashtbl.mem s.tbl key) then begin
    Hashtbl.replace s.tbl key { e with e_edits = copy_edits e.e_edits };
    Queue.push key s.order;
    if Queue.length s.order > s.capacity then begin
      Hashtbl.remove s.tbl (Queue.pop s.order);
      s.evictions <- s.evictions + 1
    end
  end

let to_json (s : t) : Obs.Json.t =
  let open Obs.Json in
  let total = s.hits + s.misses in
  Obj
    [
      ("hits", num_of_int s.hits);
      ("misses", num_of_int s.misses);
      ("evictions", num_of_int s.evictions);
      ("entries", num_of_int (Hashtbl.length s.tbl));
      ("capacity", num_of_int s.capacity);
      ( "hit_rate",
        Num
          (if total = 0 then 0.0
           else float_of_int s.hits /. float_of_int total) );
    ]
