(* Tests for the workload generators: determinism, validity, and the
   intended structural character of each profile. *)

open Netlist

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_profile seed =
  {
    Workloads.Profiles.name = "small";
    seed;
    style = `Chain;
    repeat = 2;
    mix =
      [
        Workloads.Profiles.Case
          { sel_width = 3; items = 6; width = 4; distinct = 3 };
        Workloads.Profiles.Correlated_ifs { depth = 2; width = 4 };
        Workloads.Profiles.Datapath { width = 4; ops = 2 };
        Workloads.Profiles.Crossbar_port { n_grants = 3; width = 4 };
        Workloads.Profiles.Casez_priority { sel_width = 3; width = 4 };
        Workloads.Profiles.Redundant_nest { width = 4 };
        Workloads.Profiles.Foldable { width = 4 };
        Workloads.Profiles.Priority_chain { depth = 2; width = 4 };
        Workloads.Profiles.Pipeline_stage { width = 4 };
      ];
    register_fraction = 5;
  }

let test_deterministic () =
  let s1 = Workloads.Profiles.source (small_profile 42) in
  let s2 = Workloads.Profiles.source (small_profile 42) in
  check_bool "same seed, same source" true (s1 = s2);
  let s3 = Workloads.Profiles.source (small_profile 43) in
  check_bool "different seed, different source" true (s1 <> s3)

let test_circuits_valid () =
  List.iter
    (fun seed ->
      let c = Workloads.Profiles.circuit (small_profile seed) in
      check_bool
        (Printf.sprintf "seed %d well-formed" seed)
        true (Validate.is_well_formed c))
    [ 1; 2; 3; 4; 5 ]

let test_all_public_profiles_parse () =
  (* elaborating the full profiles is covered by the bench; here we only
     check the sources lex and parse *)
  List.iter
    (fun (p : Workloads.Profiles.profile) ->
      let src = Workloads.Profiles.source p in
      let m = Hdl.Parser.parse_string src in
      check_bool p.Workloads.Profiles.name true
        (m.Hdl.Ast.mname = p.Workloads.Profiles.name))
    Workloads.Profiles.public_benchmarks

let test_profile_lookup () =
  check_bool "by_name hit" true (Workloads.Profiles.by_name "wb_dma" <> None);
  check_bool "industrial hit" true
    (Workloads.Profiles.by_name "ind_03" <> None);
  check_bool "miss" true (Workloads.Profiles.by_name "nope" = None)

let test_seqify_keeps_semantics_boundary () =
  (* staging inserts dffs without breaking validity or driving conflicts *)
  let p = { (small_profile 7) with Workloads.Profiles.register_fraction = 0 } in
  let c = Workloads.Profiles.circuit p in
  let before = Stats.of_circuit c in
  Workloads.Seqify.insert_registers c ~seed:9 ~percent:50;
  let after = Stats.of_circuit c in
  check_bool "dffs inserted" true (after.Stats.dffs > before.Stats.dffs);
  check_bool "still well-formed" true (Validate.is_well_formed c);
  (* muxes are never staged *)
  check_int "mux count unchanged" before.Stats.muxes after.Stats.muxes

let test_industrial_is_mux_rich () =
  let p = List.hd Workloads.Profiles.industrial_benchmarks in
  let c = Workloads.Profiles.circuit p in
  let st = Stats.of_circuit c in
  (* selection circuits dominate: pmux cells present, mux_bits high *)
  check_bool "has pmuxes" true (st.Stats.pmuxes > 0);
  check_bool "mux-dominated" true
    (st.Stats.mux_bits > (st.Stats.bitwise + st.Stats.arith) * 2)

let test_pipeline_stage_infers_dffs () =
  let p =
    {
      Workloads.Profiles.name = "pipe";
      seed = 3;
      style = `Chain;
      repeat = 3;
      mix = [ Workloads.Profiles.Pipeline_stage { width = 8 };
              Workloads.Profiles.Datapath { width = 8; ops = 2 } ];
      register_fraction = 0;
    }
  in
  let c = Workloads.Profiles.circuit p in
  let st = Stats.of_circuit c in
  check_bool "dffs inferred through HDL" true (st.Stats.dffs >= 3);
  check_bool "well-formed" true (Validate.is_well_formed c)

let test_rng_properties () =
  let r = Workloads.Rng.create ~seed:5 in
  for _ = 1 to 100 do
    let v = Workloads.Rng.range r 3 9 in
    check_bool "in range" true (v >= 3 && v <= 9)
  done;
  let l = [ 1; 2; 3; 4; 5 ] in
  let s = Workloads.Rng.shuffle r l in
  check_int "shuffle keeps length" 5 (List.length s);
  check_bool "shuffle keeps elements" true
    (List.sort compare s = l);
  check_int "sample size" 2 (List.length (Workloads.Rng.sample r 2 l))

let prop_generated_circuits_well_formed =
  QCheck.Test.make ~count:15 ~name:"generated circuits are well-formed"
    QCheck.(int_bound 100000)
    (fun seed ->
      let c = Workloads.Profiles.circuit (small_profile seed) in
      Validate.is_well_formed c && Topo.is_acyclic c)

let () =
  Alcotest.run "workloads"
    [
      ( "generators",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "valid circuits" `Quick test_circuits_valid;
          Alcotest.test_case "public profiles parse" `Quick
            test_all_public_profiles_parse;
          Alcotest.test_case "profile lookup" `Quick test_profile_lookup;
          Alcotest.test_case "seqify" `Quick test_seqify_keeps_semantics_boundary;
          Alcotest.test_case "industrial mux-rich" `Quick
            test_industrial_is_mux_rich;
          Alcotest.test_case "pipeline stage" `Quick test_pipeline_stage_infers_dffs;
          Alcotest.test_case "rng" `Quick test_rng_properties;
          QCheck_alcotest.to_alcotest prop_generated_circuits_well_formed;
        ] );
    ]
