(** Recursive-descent parser for the Verilog subset: module declarations,
    [assign], [always @*] with blocking assignments, [if]/[else],
    [case]/[casez], and the usual expression grammar with standard
    precedences. *)

exception Parse_error of string * int  (** message, byte position *)

val parse_string : string -> Ast.module_
(** @raise Parse_error on syntax errors
    @raise Lexer.Lex_error on lexical errors *)
