(* Per-pass resource watchdog.

   Process-global, like the metrics registry and the SAT log: the driver
   arms it before each pass with the configured wall-time / allocation
   limits, the expensive inner loops (the Engine sim-vs-SAT ladder, the
   Restructure root walk) poll [exhausted] and degrade gracefully —
   forgo the query, skip the tree — and the driver disarms it after the
   pass, collecting an overrun record if the budget tripped.

   The design constraint is the poll: [exhausted] sits inside
   Engine.determine, so with no budget armed it must reduce to one ref
   read, and with one armed to a clock read and a compare.  Once a limit
   trips the verdict is sticky until [disarm] — a pass that has blown
   its budget stays truncated rather than flapping. *)

type overrun = {
  pass : string;
  budget_ms : int option;
  elapsed_ms : float;
  alloc_budget_mw : float option;
  alloc_mw : float;  (* millions of words allocated while armed *)
  truncated : int;  (* work items abandoned after the budget tripped *)
}

type armed = {
  a_pass : string;
  a_deadline : int64 option;  (* Clock.now_ns at which the pass is over *)
  a_alloc_limit : float option;  (* minor-words reading not to exceed *)
  a_start_ns : int64;
  a_start_words : float;
  mutable a_tripped : bool;
  mutable a_truncated : int;
}

let state : armed option ref = ref None

let m_exceeded = Obs.Metrics.counter "budget.exceeded"
let m_truncated = Obs.Metrics.counter "budget.truncated"

let arm ?(cfg = Config.default) ~pass () =
  match cfg.Config.pass_budget_ms, cfg.Config.pass_alloc_budget_mw with
  | None, None -> state := None
  | wall_ms, alloc_mw ->
    let now = Obs.Clock.now_ns () in
    let words = Gc.minor_words () in
    state :=
      Some
        {
          a_pass = pass;
          a_deadline =
            Option.map
              (fun ms -> Int64.add now (Int64.of_int (ms * 1_000_000)))
              wall_ms;
          a_alloc_limit = Option.map (fun mw -> words +. (mw *. 1e6)) alloc_mw;
          a_start_ns = now;
          a_start_words = words;
          a_tripped = false;
          a_truncated = 0;
        }

let armed () = !state <> None

let exhausted () =
  match !state with
  | None -> false
  | Some a ->
    a.a_tripped
    || begin
         let over =
           (match a.a_deadline with
           | Some d -> Int64.compare (Obs.Clock.now_ns ()) d > 0
           | None -> false)
           ||
           match a.a_alloc_limit with
           | Some limit -> Gc.minor_words () > limit
           | None -> false
         in
         if over then begin
           a.a_tripped <- true;
           Obs.Metrics.incr m_exceeded
         end;
         over
       end

let note_truncation () =
  match !state with
  | None -> ()
  | Some a ->
    a.a_truncated <- a.a_truncated + 1;
    Obs.Metrics.incr m_truncated

let disarm () =
  match !state with
  | None -> None
  | Some a ->
    state := None;
    if not a.a_tripped then None
    else begin
      let cfg_ms =
        Option.map
          (fun d ->
            Int64.to_int (Int64.div (Int64.sub d a.a_start_ns) 1_000_000L))
          a.a_deadline
      in
      let cfg_mw =
        Option.map (fun l -> (l -. a.a_start_words) /. 1e6) a.a_alloc_limit
      in
      Some
        {
          pass = a.a_pass;
          budget_ms = cfg_ms;
          elapsed_ms =
            Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) a.a_start_ns)
            /. 1e6;
          alloc_budget_mw = cfg_mw;
          alloc_mw = (Gc.minor_words () -. a.a_start_words) /. 1e6;
          truncated = a.a_truncated;
        }
    end

let reset () = state := None

let overrun_to_json (o : overrun) : Obs.Json.t
    =
  Obs.Json.Obj
    ([ "pass", Obs.Json.Str o.pass ]
    @ (match o.budget_ms with
      | Some ms -> [ "budget_ms", Obs.Json.num_of_int ms ]
      | None -> [])
    @ [ "elapsed_ms", Obs.Json.Num o.elapsed_ms ]
    @ (match o.alloc_budget_mw with
      | Some mw -> [ "alloc_budget_mw", Obs.Json.Num mw ]
      | None -> [])
    @ [
        "alloc_mw", Obs.Json.Num o.alloc_mw;
        "truncated", Obs.Json.num_of_int o.truncated;
      ])
