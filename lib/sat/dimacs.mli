(** DIMACS CNF parsing, printing, and loading into a solver. *)

type cnf = { num_vars : int; clauses : int list list }

val parse_string : string -> cnf
(** @raise Invalid_argument on malformed input. *)

val to_string : cnf -> string

val load : cnf -> Solver.t
