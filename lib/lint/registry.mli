(** The rule registry: every diagnostic a lint pass can emit is declared
    here with its id, layer, default severity and a one-line explanation.
    The CLI uses it to validate [--waive] arguments and to print the rule
    list; tests use it to check every shipped rule is exercised. *)

type layer = Hdl | Netlist | Flow

type rule = {
  id : string;  (** e.g. ["HDL001"] *)
  title : string;
  layer : layer;
  default_severity : Diag.severity;
  explain : string;
}

val all : rule list
(** Sorted by id. *)

val find : string -> rule option
val is_known : string -> bool
val layer_name : layer -> string
