(** Batch optimization daemon: JSONL jobs over a channel pair.

    [smartly serve] wraps this over stdio or a Unix socket.  Each
    [optimize] request loads a circuit (through the caller-supplied
    loader — this library never depends on the HDL frontend), runs the
    smartly flow with per-job {!Engine.Sat_log}/{!Budget} scoping, and
    answers with a [smartly-report-v1] job report.  Two warm caches
    persist across jobs: the {!Memo} verdict store (recurring queries
    skip their sim/SAT rung) and the {!Replay} task cache (recurring
    muxtree tasks — stamped-out variants of one design — replay their
    recorded edit sets without re-running at all).  That cross-job
    state is the effect the [jobs_per_sec] bench section measures.

    Protocol (one JSON object per line, one response per line):
    {v
    {"op":"optimize","id":ID?,"kind":K?,"source":S,
     "jobs":N?,"budget_ms":B?,"portfolio":P?}   -> job report
    {"op":"ping"}                               -> {"op":"ping","status":"ok"}
    {"op":"stats"}                              -> counters + warm-memo state
    {"op":"shutdown"}                           -> ack, then the loop returns
    v}
    Malformed lines get [{"status":"error",...}] and the daemon keeps
    serving — one bad job must not take down the batch. *)

open Netlist

type load = kind:string -> string -> (Circuit.t, string) result
(** Resolve an [optimize] request's [kind]/[source] pair to a circuit.
    The CLI's loader accepts kind ["profile"] (workload profile name)
    and ["verilog"] (path to a source file). *)

type t
(** A daemon instance: base config, loader, warm memo store, job
    counters. *)

val create : ?cfg:Config.t -> load:load -> unit -> t
(** [cfg] (default {!Config.default}) is the base for every job;
    requests override [jobs], [portfolio] and [pass_budget_ms] per job.
    Jobs always run the task path: when neither the request nor [cfg]
    sets [jobs], the daemon uses [jobs = 1] — the warm replay cache
    only engages there, and its output is schedule-invariant. *)

val handle : t -> string -> Obs.Json.t * bool
(** Process one request line.  Returns the response and whether to keep
    serving ([false] only after [shutdown]).  Exposed for tests. *)

val run : t -> in_channel -> out_channel -> bool
(** Serve requests until EOF or [shutdown], flushing one response line
    per request.  [true] when the client asked for shutdown — the
    socket accept loop's cue to stop accepting (plain EOF just ends the
    connection). *)
