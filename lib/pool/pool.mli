(** Work-stealing domain pool for independent, indexed work items.

    Built for the parallel muxtree scheduler's determinism contract:
    [run] hands back results as a task-indexed array, so callers merge
    in task order and scheduling affects wall-clock only, never output.
    Domains are spawned per call and joined before it returns. *)

val run :
  jobs:int -> init:(unit -> 'w) -> task:('w -> int -> 'r) -> int -> 'r array
(** [run ~jobs ~init ~task n] evaluates [task w i] for every
    [i < n] across [min jobs n] workers (the calling domain included)
    and returns the results indexed by task.  Each worker calls [init]
    once to build its private state [w] — per-worker SAT session, memo
    overlay, circuit copy — before taking tasks from its round-robin
    seeded deque, stealing from siblings when its own runs dry.

    [jobs <= 1] runs every task inline on the calling domain, no spawn.

    If tasks raise, every remaining task still runs, then the exception
    of the lowest-indexed failing task is re-raised with its original
    backtrace — the same exception a sequential left-to-right execution
    would have surfaced first. *)

val race : ((unit -> bool) -> 'a option) list -> 'a option
(** [race candidates] runs every candidate concurrently on its own
    domain, passing each a stop predicate that turns true once some
    candidate returned [Some].  First (in wall-clock) [Some] wins;
    candidates should poll the predicate and bail out with [None] when
    it fires.  All domains are joined before the winner is returned; a
    raising candidate just loses.  A single candidate runs inline with a
    never-true predicate. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [--jobs 0] resolves
    to. *)
