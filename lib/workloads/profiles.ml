(* Named workload profiles standing in for the paper's benchmark circuits.

   Each profile mixes the RTL idioms of {!Vgen} in proportions chosen to
   reproduce the published *character* of the corresponding circuit:
   - rebuild-friendly: many case statements with few distinct leaves
   - SAT-friendly: correlated control conditions Yosys cannot relate
   - baseline-friendly: redundant same-condition nesting Yosys removes
   - flat: plain datapath logic no muxtree pass can improve

   The generators are deterministic in the seed; the circuit is produced
   through the full Verilog frontend. *)

type block =
  | Pipeline_stage of { width : int }
  | Case of { sel_width : int; items : int; width : int; distinct : int }
  | Random_case of { sel_width : int; items : int; width : int; distinct : int }
  | Foldable of { width : int }
  | Casez_priority of { sel_width : int; width : int }
  | Correlated_ifs of { depth : int; width : int }
  | Redundant_nest of { width : int }
  | Priority_chain of { depth : int; width : int }
  | Crossbar_port of { n_grants : int; width : int }
  | Datapath of { width : int; ops : int }

type profile = {
  name : string;
  seed : int;
  style : Hdl.Elaborate.case_style;
  repeat : int; (* how many copies of the block mix *)
  mix : block list;
  register_fraction : int; (* % of cells later staged behind dffs *)
}

let emit_block ctx = function
  | Pipeline_stage { width } -> Vgen.emit_pipeline_stage ctx ~width
  | Case { sel_width; items; width; distinct } ->
    Vgen.emit_case ctx ~sel_width ~items ~width ~distinct ()
  | Random_case { sel_width; items; width; distinct } ->
    Vgen.emit_case ctx ~sel_width ~items ~width ~distinct ~structured:false ()
  | Foldable { width } -> Vgen.emit_foldable ctx ~width
  | Casez_priority { sel_width; width } ->
    Vgen.emit_casez_priority ctx ~sel_width ~width
  | Correlated_ifs { depth; width } ->
    Vgen.emit_correlated_ifs ctx ~depth ~width
  | Redundant_nest { width } -> Vgen.emit_redundant_nest ctx ~width
  | Priority_chain { depth; width } ->
    Vgen.emit_priority_chain ctx ~depth ~width
  | Crossbar_port { n_grants; width } ->
    Vgen.emit_crossbar_port ctx ~n_grants ~width
  | Datapath { width; ops } -> Vgen.emit_datapath ctx ~width ~ops

let source (p : profile) : string =
  let ctx = Vgen.create ~seed:p.seed in
  (* a few seed inputs so the first blocks have material *)
  for _ = 1 to 6 do
    ignore (Vgen.add_input ctx (Rng.range ctx.Vgen.rng 4 16))
  done;
  for _ = 1 to p.repeat do
    List.iter (emit_block ctx) (Rng.shuffle ctx.Vgen.rng p.mix)
  done;
  Vgen.render ctx ~name:p.name ~outputs:(2 + (p.repeat / 4))

let circuit (p : profile) : Netlist.Circuit.t =
  let c = Hdl.Elaborate.elaborate_string ~style:p.style (source p) in
  if p.register_fraction > 0 then
    Seqify.insert_registers c ~seed:(p.seed + 77)
      ~percent:p.register_fraction;
  c

(* --- the ten public benchmarks (IWLS-2005 + RISC-V stand-ins) --- *)

let top_cache_axi =
  {
    name = "top_cache_axi";
    seed = 101;
    style = `Chain;
    repeat = 26;
    mix =
      [
        Case { sel_width = 5; items = 28; width = 16; distinct = 6 };
        Case { sel_width = 4; items = 14; width = 12; distinct = 4 };
        Random_case { sel_width = 4; items = 14; width = 8; distinct = 8 };
        Case { sel_width = 6; items = 48; width = 8; distinct = 7 };
        Redundant_nest { width = 12 };
        Foldable { width = 16 };
        Foldable { width = 8 };
        Datapath { width = 16; ops = 5 };
        Datapath { width = 12; ops = 5 };
        Priority_chain { depth = 4; width = 12 };
      ];
    register_fraction = 6;
  }

let pci_bridge32 =
  {
    name = "pci_bridge32";
    seed = 102;
    style = `Chain;
    repeat = 10;
    mix =
      [
        Case { sel_width = 4; items = 12; width = 8; distinct = 7 };
        Correlated_ifs { depth = 2; width = 8 };
        Redundant_nest { width = 8 };
        Foldable { width = 8 };
        Priority_chain { depth = 5; width = 8 };
        Datapath { width = 8; ops = 6 };
        Datapath { width = 8; ops = 6 };
      ];
    register_fraction = 8;
  }

let wb_conmax =
  {
    name = "wb_conmax";
    seed = 103;
    style = `Chain;
    repeat = 12;
    mix =
      [
        Crossbar_port { n_grants = 8; width = 16 };
        Correlated_ifs { depth = 3; width = 16 };
        Correlated_ifs { depth = 4; width = 8 };
        Redundant_nest { width = 16 };
        Foldable { width = 16 };
        Datapath { width = 16; ops = 6 };
        Random_case { sel_width = 3; items = 7; width = 16; distinct = 6 };
      ];
    register_fraction = 5;
  }

let mem_ctrl =
  {
    name = "mem_ctrl";
    seed = 104;
    style = `Chain;
    repeat = 14;
    mix =
      [
        Priority_chain { depth = 6; width = 12 };
        Datapath { width = 12; ops = 8 };
        Datapath { width = 8; ops = 7 };
        Datapath { width = 12; ops = 6 };
        Redundant_nest { width = 12 };
        Foldable { width = 12 };
        Priority_chain { depth = 4; width = 8 };
      ];
    register_fraction = 10;
  }

let wb_dma =
  {
    name = "wb_dma";
    seed = 105;
    style = `Chain;
    repeat = 12;
    mix =
      [
        Correlated_ifs { depth = 3; width = 12 };
        Crossbar_port { n_grants = 4; width = 12 };
        Redundant_nest { width = 12 };
        Foldable { width = 12 };
        Datapath { width = 12; ops = 7 };
        Datapath { width = 8; ops = 6 };
        Priority_chain { depth = 4; width = 12 };
      ];
    register_fraction = 6;
  }

let tv80 =
  {
    name = "tv80";
    seed = 106;
    style = `Chain;
    repeat = 12;
    mix =
      [
        Datapath { width = 8; ops = 6 };
        Datapath { width = 8; ops = 6 };
        Priority_chain { depth = 5; width = 8 };
        Random_case { sel_width = 3; items = 6; width = 8; distinct = 6 };
        Redundant_nest { width = 8 };
        Foldable { width = 8 };
        Correlated_ifs { depth = 2; width = 8 };
      ];
    register_fraction = 10;
  }

let usb_funct =
  {
    name = "usb_funct";
    seed = 107;
    style = `Chain;
    repeat = 10;
    mix =
      [
        Case { sel_width = 4; items = 12; width = 8; distinct = 9 };
        Correlated_ifs { depth = 2; width = 8 };
        Datapath { width = 8; ops = 6 };
        Datapath { width = 8; ops = 5 };
        Redundant_nest { width = 8 };
        Foldable { width = 8 };
        Priority_chain { depth = 3; width = 8 };
      ];
    register_fraction = 8;
  }

let ethernet =
  {
    name = "ethernet";
    seed = 108;
    style = `Chain;
    repeat = 16;
    mix =
      [
        Datapath { width = 16; ops = 7 };
        Datapath { width = 8; ops = 5 };
        Datapath { width = 16; ops = 6 };
        Priority_chain { depth = 4; width = 16 };
        Random_case { sel_width = 2; items = 4; width = 16; distinct = 4 };
        Redundant_nest { width = 16 };
        Foldable { width = 16 };
      ];
    register_fraction = 12;
  }

let riscv =
  {
    name = "riscv";
    seed = 109;
    style = `Chain;
    repeat = 12;
    mix =
      [
        Case { sel_width = 5; items = 24; width = 16; distinct = 14 };
        Casez_priority { sel_width = 4; width = 16 };
        Datapath { width = 16; ops = 6 };
        Datapath { width = 16; ops = 6 };
        Datapath { width = 12; ops = 5 };
        Redundant_nest { width = 16 };
        Foldable { width = 16 };
        Priority_chain { depth = 4; width = 16 };
      ];
    register_fraction = 8;
  }

let ac97_ctrl =
  {
    name = "ac97_ctrl";
    seed = 110;
    style = `Chain;
    repeat = 8;
    mix =
      [
        Case { sel_width = 4; items = 11; width = 8; distinct = 7 };
        Random_case { sel_width = 3; items = 6; width = 8; distinct = 5 };
        Datapath { width = 8; ops = 5 };
        Datapath { width = 8; ops = 4 };
        Redundant_nest { width = 8 };
        Foldable { width = 8 };
      ];
    register_fraction = 8;
  }

let public_benchmarks =
  [
    top_cache_axi; pci_bridge32; wb_conmax; mem_ctrl; wb_dma; tv80;
    usb_funct; ethernet; riscv; ac97_ctrl;
  ]

(* A deliberately small, seconds-fast profile for smoke tests and CI: a
   couple of case-statement muxtrees plus redundant nesting, so every pass
   (baseline rules, SAT elimination, restructuring) has something to do.
   Not part of [public_benchmarks] — the paper tables stay ten cases. *)
let mux_chain =
  {
    name = "mux_chain";
    seed = 2025;
    style = `Chain;
    repeat = 2;
    mix =
      [
        Case { sel_width = 3; items = 7; width = 8; distinct = 3 };
        Casez_priority { sel_width = 3; width = 8 };
        Redundant_nest { width = 8 };
        Correlated_ifs { depth = 2; width = 8 };
      ];
    register_fraction = 0;
  }

(* --- the industrial benchmark (Section IV-B) ---

   Higher proportion of MUX/PMUX "selection circuits", elaborated with the
   pmux style, with few distinct leaves and heavily correlated controls;
   Yosys finds almost nothing here. *)

let industrial_point i =
  {
    name = Printf.sprintf "ind_%02d" i;
    seed = 9000 + (i * 13);
    style = `Pmux;
    repeat = 7 + (i mod 4);
    mix =
      [
        Case { sel_width = 5; items = 30; width = 16; distinct = 4 };
        Case { sel_width = 6; items = 52; width = 12; distinct = 5 };
        Case { sel_width = 4; items = 15; width = 20; distinct = 3 };
        Correlated_ifs { depth = 4; width = 16 };
        Correlated_ifs { depth = 3; width = 12 };
        Crossbar_port { n_grants = 8; width = 16 };
        Datapath { width = 16; ops = 2 };
      ];
    register_fraction = 5;
  }

let industrial_benchmarks = List.init 8 industrial_point

let by_name name =
  List.find_opt
    (fun p -> p.name = name)
    (public_benchmarks @ industrial_benchmarks @ [ mux_chain ])
