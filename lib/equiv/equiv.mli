(** Combinational equivalence checking via AIG miter + SAT.

    Primary inputs/outputs are matched by name; dff boundaries become
    pseudo PIs/POs, so sequential designs are compared as their transition
    plus output functions — exact for passes that never touch dffs. *)

open Netlist

type verdict =
  | Equivalent
  | Not_equivalent of string  (** a differing output name *)
  | Inconclusive  (** solver budget exhausted *)

val pp_verdict : Format.formatter -> verdict -> unit

val check_aigs : ?budget:int -> Aiger.Aig.t -> Aiger.Aig.t -> verdict
(** FRAIG-based (SAT sweeping); scales to large structurally-similar
    circuits.  [budget] is the per-candidate conflict cap. *)

val check_aigs_monolithic : ?budget:int -> Aiger.Aig.t -> Aiger.Aig.t -> verdict
(** Single-miter encoding; only for small instances. *)

val check : ?budget:int -> Circuit.t -> Circuit.t -> verdict

val is_equivalent : ?budget:int -> Circuit.t -> Circuit.t -> bool
(** [true] only on a proven [Equivalent]. *)
