(* Baseline optimization flow: the Yosys `opt` loop with `opt_muxtree`.
   Repeats expression folding, muxtree pruning and dead-code removal until
   nothing changes. *)

type report = {
  iterations : int;
  expr_folded : int;
  muxtree_changes : int;
  cells_removed : int;
}

let pp_report ppf r =
  Fmt.pf ppf "iters=%d expr=%d muxtree=%d removed=%d" r.iterations
    r.expr_folded r.muxtree_changes r.cells_removed

let baseline ?(after_pass = fun _ _ -> ()) (c : Netlist.Circuit.t) : report =
  Obs.Trace.with_span "flow.baseline" @@ fun () ->
  let expr_folded = ref 0 in
  let muxtree_changes = ref 0 in
  let cells_removed = ref 0 in
  (* Same pass-boundary events as Driver.smartly (no budgets here: the
     baseline loop has no SAT ladder to truncate), so ledgered baseline
     runs render in [smartly report] too. *)
  let run_pass ~iter name f =
    Obs.Event.emit ~name
      ~data:(Obs.Json.Obj [ "iteration", Obs.Json.num_of_int iter ])
      Obs.Event.Pass_start;
    let t0 = Obs.Clock.now () in
    let r = f () in
    let seconds = Obs.Clock.now () -. t0 in
    after_pass name c;
    Obs.Event.emit ~name
      ~data:
        (Obs.Json.Obj
           [
             "iteration", Obs.Json.num_of_int iter;
             "seconds", Obs.Json.Num seconds;
             "cells", Obs.Json.num_of_int (Netlist.Circuit.cell_count c);
           ])
      Obs.Event.Pass_end;
    r
  in
  let rec loop iter =
    if iter >= 16 then iter
    else begin
      let e = run_pass ~iter "opt_expr" (fun () -> Opt_expr.run c) in
      let g = run_pass ~iter "opt_merge" (fun () -> Opt_merge.run c) in
      let m = run_pass ~iter "opt_muxtree" (fun () -> Opt_muxtree.run c) in
      let r = run_pass ~iter "opt_clean" (fun () -> Opt_clean.run c) in
      expr_folded := !expr_folded + e + g;
      muxtree_changes := !muxtree_changes + m;
      cells_removed := !cells_removed + r;
      if e + g + m + r > 0 then loop (iter + 1) else iter + 1
    end
  in
  let iterations = loop 0 in
  {
    iterations;
    expr_folded = !expr_folded;
    muxtree_changes = !muxtree_changes;
    cells_removed = !cells_removed;
  }
