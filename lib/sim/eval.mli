(** Three-valued evaluation of circuits and sub-DAGs.

    Bits absent from the environment read as X, so partial evaluation over
    a sub-graph is safe by construction. *)

open Netlist

type env = Value.t Bits.Bit_tbl.t

val create_env : unit -> env

val read : env -> Bits.bit -> Value.t
val write : env -> Bits.bit -> Value.t -> unit
val read_vec : env -> Bits.sigspec -> Value.t array

val eval_cell : env -> Cell.t -> unit
(** Evaluate one cell, writing its outputs.  Dff cells are skipped: their
    state is set externally. *)

val eval_ordered : Circuit.t -> env -> int list -> unit
(** Evaluate the given cells (a valid topological order of a sub-DAG). *)

val run :
  Circuit.t ->
  ?state:(Bits.bit * Value.t) list ->
  inputs:(Bits.bit * Value.t) list ->
  unit ->
  env
(** Full combinational evaluation; dff outputs default to X unless given
    in [state]. *)

val read_int : env -> Bits.sigspec -> int option
(** The unsigned value of a sigspec, when every bit is defined. *)
