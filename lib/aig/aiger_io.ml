(* ASCII AIGER (.aag) reading and writing.

   The AIGER literal encoding coincides with ours (2*var + complement,
   literal 0 = false), except that AIGER numbers variables over inputs and
   ands jointly while we keep a node table; the translation is a dense
   renumbering.  Latches are not produced by {!Aigmap.map} (it cuts dffs
   into pseudo-ports), so this module handles the combinational subset:
   [aag M I L O A] with L = 0. *)

exception Format_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Format_error m)) fmt

(* --- writing --- *)

let write (g : Aig.t) : string =
  (* dense renumbering: PIs first (AIGER convention), then ANDs in
     topological (id) order; only nodes reachable from POs are emitted *)
  let order = ref [] in
  let seen = Hashtbl.create 256 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      match Aig.node g id with
      | Aig.And (a, b) ->
        visit (Aig.node_of_lit a);
        visit (Aig.node_of_lit b);
        order := id :: !order
      | Aig.Const | Aig.Pi _ -> ()
    end
  in
  List.iter (fun (_, l) -> visit (Aig.node_of_lit l)) (Aig.pos g);
  let ands = List.rev !order in
  let pis = Aig.pis g in
  let var_of = Hashtbl.create 256 in
  Hashtbl.replace var_of 0 0;
  List.iteri (fun i (_, id) -> Hashtbl.replace var_of id (i + 1)) pis;
  List.iteri
    (fun i id -> Hashtbl.replace var_of id (List.length pis + 1 + i))
    ands;
  let tr (l : Aig.lit) =
    let v =
      match Hashtbl.find_opt var_of (Aig.node_of_lit l) with
      | Some v -> v
      | None -> fail "unreachable node in output cone"
    in
    (2 * v) + if Aig.is_complemented l then 1 else 0
  in
  let buf = Buffer.create 1024 in
  let m = List.length pis + List.length ands in
  Buffer.add_string buf
    (Printf.sprintf "aag %d %d 0 %d %d\n" m (List.length pis)
       (List.length (Aig.pos g))
       (List.length ands));
  List.iteri
    (fun i _ -> Buffer.add_string buf (Printf.sprintf "%d\n" (2 * (i + 1))))
    pis;
  List.iter
    (fun (_, l) -> Buffer.add_string buf (Printf.sprintf "%d\n" (tr l)))
    (Aig.pos g);
  List.iter
    (fun id ->
      match Aig.node g id with
      | Aig.And (a, b) ->
        let lhs = 2 * Hashtbl.find var_of id in
        let ra = tr a and rb = tr b in
        let ra, rb = if ra >= rb then ra, rb else rb, ra in
        Buffer.add_string buf (Printf.sprintf "%d %d %d\n" lhs ra rb)
      | Aig.Const | Aig.Pi _ -> ())
    ands;
  (* symbol table: input and output names *)
  List.iteri
    (fun i (name, _) ->
      Buffer.add_string buf (Printf.sprintf "i%d %s\n" i name))
    pis;
  List.iteri
    (fun i (name, _) ->
      Buffer.add_string buf (Printf.sprintf "o%d %s\n" i name))
    (Aig.pos g);
  Buffer.contents buf

(* --- reading --- *)

let read (text : string) : Aig.t =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> fail "empty file"
  | header :: rest -> (
    let ints_of line =
      String.split_on_char ' ' line
      |> List.filter (( <> ) "")
      |> List.map (fun s ->
             try int_of_string s with Failure _ -> fail "bad integer %S" s)
    in
    match String.split_on_char ' ' header |> List.filter (( <> ) "") with
    | [ "aag"; m; i; l; o; a ] ->
      let _m = int_of_string m in
      let ni = int_of_string i in
      let nl = int_of_string l in
      let no = int_of_string o in
      let na = int_of_string a in
      if nl <> 0 then fail "latches are not supported";
      let g = Aig.create () in
      (* collect the sections *)
      let rec take n acc rest =
        if n = 0 then List.rev acc, rest
        else
          match rest with
          | [] -> fail "truncated file"
          | x :: r -> take (n - 1) (x :: acc) r
      in
      let input_lines, rest = take ni [] rest in
      let output_lines, rest = take no [] rest in
      let and_lines, rest = take na [] rest in
      (* symbol table (optional) *)
      let input_names = Hashtbl.create 16 in
      let output_names = Hashtbl.create 16 in
      List.iter
        (fun line ->
          match String.index_opt line ' ' with
          | Some sp when String.length line > 1 ->
            let tag = String.sub line 0 sp in
            let name =
              String.sub line (sp + 1) (String.length line - sp - 1)
            in
            let kind = tag.[0] in
            (match int_of_string_opt (String.sub tag 1 (String.length tag - 1)) with
            | Some idx when kind = 'i' -> Hashtbl.replace input_names idx name
            | Some idx when kind = 'o' -> Hashtbl.replace output_names idx name
            | _ -> ())
          | _ -> ())
        rest;
      (* build: literal translation table *)
      let lit_of = Hashtbl.create 256 in
      Hashtbl.replace lit_of 0 Aig.false_lit;
      let resolve l =
        let v = l / 2 in
        match Hashtbl.find_opt lit_of (2 * v) with
        | Some base -> if l land 1 = 1 then Aig.negate base else base
        | None -> fail "undefined literal %d" l
      in
      List.iteri
        (fun idx line ->
          match ints_of line with
          | [ l ] ->
            if l land 1 = 1 || l = 0 then fail "invalid input literal %d" l;
            let name =
              match Hashtbl.find_opt input_names idx with
              | Some n -> n
              | None -> Printf.sprintf "i%d" idx
            in
            Hashtbl.replace lit_of l (Aig.new_pi g name)
          | _ -> fail "bad input line %S" line)
        input_lines;
      List.iter
        (fun line ->
          match ints_of line with
          | [ lhs; a; b ] ->
            if lhs land 1 = 1 then fail "complemented and lhs %d" lhs;
            let la = resolve a and lb = resolve b in
            Hashtbl.replace lit_of lhs (Aig.and_ g la lb)
          | _ -> fail "bad and line %S" line)
        and_lines;
      List.iteri
        (fun idx line ->
          match ints_of line with
          | [ l ] ->
            let name =
              match Hashtbl.find_opt output_names idx with
              | Some n -> n
              | None -> Printf.sprintf "o%d" idx
            in
            Aig.add_po g name (resolve l)
          | _ -> fail "bad output line %S" line)
        output_lines;
      g
    | _ -> fail "bad header %S" header)
