(* Batch optimization daemon: JSONL jobs over a channel pair.

   One request per line, one response per line.  The payoff over looping
   `smartly opt` in a shell is the warm state a process boundary would
   throw away: a single cross-job verdict store ({!Memo}) stays
   installed for the daemon's lifetime, so structurally recurring
   queries — overwhelmingly common when a batch stamps out variants of
   the same design — are answered from cache in later jobs.  The
   jobs_per_sec bench section measures exactly this effect.

   The daemon is transport-agnostic: it reads requests from an
   [in_channel] and writes responses to an [out_channel], so the CLI can
   run it over stdio or over accepted Unix-socket connections, and tests
   can drive it over a socketpair.  Circuit loading is a callback so
   this library never depends on the HDL frontend; the CLI supplies a
   loader that resolves workload profile names and Verilog sources.

   Protocol (one JSON object per line):
     {"op":"optimize","id":...,"kind":...,"source":...,
      "jobs":N?,"budget_ms":B?}     -> smartly-report-v1 job report
     {"op":"ping"}                  -> {"op":"ping","status":"ok"}
     {"op":"stats"}                 -> daemon counters + warm-memo state
     {"op":"shutdown"}              -> {"op":"shutdown","status":"ok"}, stop
   Malformed lines get {"status":"error",...} and the daemon keeps
   serving: one bad job must not take down the batch. *)

open Netlist

type load = kind:string -> string -> (Circuit.t, string) result

type t = {
  load : load;
  base_cfg : Config.t;
  warm : Memo.t;  (* installed for the daemon's lifetime *)
  replays : Replay.t;
      (* task-replay cache: whole muxtree tasks recur across a batch of
         stamped-out variants and replay from their recorded edit sets *)
  started : float;
  mutable jobs_ok : int;
  mutable jobs_failed : int;
}

let create ?(cfg = Config.default) ~load () =
  {
    load;
    base_cfg = cfg;
    warm = Memo.make ();
    replays = Replay.make ();
    started = Obs.Clock.now ();
    jobs_ok = 0;
    jobs_failed = 0;
  }

let error_response ?id msg : Obs.Json.t =
  let open Obs.Json in
  Obj
    ((match id with Some i -> [ ("id", Str i) ] | None -> [])
    @ [ ("status", Str "error"); ("error", Str msg) ])

(* One job: load, scope the per-job telemetry, run the smartly flow
   under the warm store, report.  [Sat_log]/[Budget] are reset per job
   so the report describes this job alone; the memo section is the warm
   store's cumulative state — its hit rate rising across jobs is the
   daemon's reason to exist. *)
let optimize t ~id ~kind ~source ~jobs ~budget_ms ~portfolio : Obs.Json.t =
  match t.load ~kind source with
  | Error msg ->
    t.jobs_failed <- t.jobs_failed + 1;
    error_response ~id msg
  | Ok c -> (
    let cfg =
      {
        t.base_cfg with
        (* the daemon always runs the task path: its warm replay cache
           only engages there, and the task path's output is
           schedule-invariant, so every job of a batch is comparable *)
        Config.jobs =
          (match jobs with
          | Some _ -> jobs
          | None -> (
            match t.base_cfg.Config.jobs with
            | Some _ as j -> j
            | None -> Some 1));
        portfolio;
        pass_budget_ms =
          (match budget_ms with
          | Some _ -> budget_ms
          | None -> t.base_cfg.Config.pass_budget_ms);
      }
    in
    Engine.Sat_log.reset ();
    Budget.reset ();
    Memo.install t.warm;
    Replay.install t.replays;
    let area0 = Aiger.Aigmap.aig_area c in
    let t0 = Obs.Clock.now () in
    match Driver.smartly ~cfg c with
    | exception e ->
      t.jobs_failed <- t.jobs_failed + 1;
      error_response ~id ("job failed: " ^ Printexc.to_string e)
    | result ->
      let dt = Obs.Clock.now () -. t0 in
      let area1 = Aiger.Aigmap.aig_area c in
      t.jobs_ok <- t.jobs_ok + 1;
      let open Obs.Json in
      Obj
        [
          ("schema", Str "smartly-report-v1");
          ("op", Str "optimize");
          ("id", Str id);
          ("status", Str "ok");
          ("source", Str source);
          ("area", Obj [ ("before", num_of_int area0); ("after", num_of_int area1) ]);
          ( "reduction_pct",
            Num
              (if area0 = 0 then 0.0
               else
                 100.0 *. float_of_int (area0 - area1) /. float_of_int area0)
          );
          ("wall_seconds", Num dt);
          ("iterations", num_of_int result.Driver.iterations);
          ("sat_queries", num_of_int (Engine.Sat_log.query_count ()));
          ("memo", Memo.to_json ());
          ("replay", Replay.to_json t.replays);
          ( "budget",
            List (List.map Budget.overrun_to_json result.Driver.overruns) );
        ])

let stats t : Obs.Json.t =
  let open Obs.Json in
  Memo.install t.warm;
  Obj
    [
      ("op", Str "stats");
      ("status", Str "ok");
      ("jobs_ok", num_of_int t.jobs_ok);
      ("jobs_failed", num_of_int t.jobs_failed);
      ("uptime_seconds", Num (Obs.Clock.now () -. t.started));
      ("memo", Memo.to_json ());
      ("replay", Replay.to_json t.replays);
    ]

(* Handle one request line; [false] means shutdown was requested. *)
let handle t (line : string) : Obs.Json.t * bool =
  match Obs.Json.parse line with
  | Error msg -> (error_response ("parse error: " ^ msg), true)
  | Ok req -> (
    let id =
      Option.value (Obs.Json.mem_str "id" req)
        ~default:(Printf.sprintf "job-%d" (t.jobs_ok + t.jobs_failed))
    in
    match Obs.Json.mem_str "op" req with
    | Some "ping" ->
      (Obs.Json.Obj [ ("op", Str "ping"); ("status", Str "ok") ], true)
    | Some "stats" -> (stats t, true)
    | Some "shutdown" ->
      (Obs.Json.Obj [ ("op", Str "shutdown"); ("status", Str "ok") ], false)
    | Some "optimize" -> (
      match Obs.Json.mem_str "source" req with
      | None -> (error_response ~id "optimize: missing \"source\"", true)
      | Some source ->
        let kind =
          Option.value (Obs.Json.mem_str "kind" req) ~default:"profile"
        in
        let jobs = Obs.Json.mem_int "jobs" req in
        let budget_ms = Obs.Json.mem_int "budget_ms" req in
        let portfolio =
          match Obs.Json.member "portfolio" req with
          | Some (Obs.Json.Bool b) -> b
          | _ -> t.base_cfg.Config.portfolio
        in
        (optimize t ~id ~kind ~source ~jobs ~budget_ms ~portfolio, true))
    | Some op -> (error_response ~id ("unknown op: " ^ op), true)
    | None -> (error_response ~id "missing \"op\"", true))

(* Serve a channel pair until EOF or shutdown.  Responses are flushed
   per line so a pipelining client can read each report as its job
   finishes.  Returns [true] when the client requested shutdown — the
   socket accept loop's signal to stop accepting, as opposed to a
   client merely hanging up. *)
let run t (ic : in_channel) (oc : out_channel) : bool =
  let respond j =
    output_string oc (Obs.Json.to_string j);
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> false
    | line when String.trim line = "" -> loop ()
    | line ->
      let resp, continue = handle t line in
      respond resp;
      if continue then loop () else true
  in
  loop ()
