(** Elaboration: AST -> netlist.

    [case] statements lower to eq-controlled muxtrees in a selectable
    style: [`Chain] (a priority chain, paper Fig. 5), [`Balanced] (a full
    binary tree with or-combined selects, Fig. 6), or [`Pmux] (one parallel
    mux cell).  Every declared name is backed by a wire; assignments drive
    wires through transparent buffers that cost nothing after AIG mapping
    and are swept by opt_expr.

    Blocking assignments in [always @*] follow read-after-write order;
    [always @(posedge clk)] blocks infer dff cells, with non-blocking
    reads seeing the pre-state registers (one implicit clock domain). *)

exception Elab_error of string * Loc.span option
(** Message plus the source span of the statement, item or declaration
    being elaborated when the error was raised ([None] for ASTs built
    without locations). *)

type case_style = [ `Chain | `Balanced | `Pmux ]

val elaborate : ?style:case_style -> Ast.module_ -> Netlist.Circuit.t
(** @raise Elab_error on undeclared names, width errors, etc. *)

val elaborate_string : ?style:case_style -> string -> Netlist.Circuit.t
(** Parse then elaborate. *)
