(* smartly — command-line driver.

   smartly list                           list built-in workload profiles
   smartly generate NAME [-o FILE]        emit the profile's Verilog source
   smartly stats SRC                      netlist statistics and AIG area
   smartly opt SRC [--flow FLOW] [...]    optimize and report
   smartly cec A B                        combinational equivalence check

   SRC is either a built-in profile name or a path to a Verilog file in the
   supported subset. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_circuit ~style src : Netlist.Circuit.t =
  match Workloads.Profiles.by_name src with
  | Some p -> Workloads.Profiles.circuit p
  | None ->
    if Sys.file_exists src then
      Hdl.Elaborate.elaborate_string ~style (read_file src)
    else
      failwith
        (Printf.sprintf "%s: neither a profile name nor an existing file" src)

(* --- arguments --- *)

let src_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SRC" ~doc:"Profile name or Verilog file.")

let style_arg =
  let style_conv =
    Arg.enum [ "chain", `Chain; "balanced", `Balanced; "pmux", `Pmux ]
  in
  Arg.(
    value & opt style_conv `Chain
    & info [ "style" ] ~docv:"STYLE"
        ~doc:"Case lowering style for Verilog files: chain, balanced, pmux.")

let flow_arg =
  let flow_conv =
    Arg.enum
      [
        "none", `None; "yosys", `Yosys; "smartly", `Smartly; "sat", `Sat;
        "rebuild", `Rebuild;
      ]
  in
  Arg.(
    value & opt flow_conv `Smartly
    & info [ "flow" ] ~docv:"FLOW"
        ~doc:
          "Optimization flow: none, yosys (baseline), smartly (full), sat \
           (SAT elimination only), rebuild (restructuring only).")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ] ~doc:"Equivalence-check the result against the input.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print pass reports.")

(* --- commands --- *)

let list_cmd =
  let run () =
    print_endline "public benchmark profiles:";
    List.iter
      (fun (p : Workloads.Profiles.profile) ->
        Printf.printf "  %-16s (seed %d, %s style)\n" p.Workloads.Profiles.name
          p.Workloads.Profiles.seed
          (match p.Workloads.Profiles.style with
          | `Chain -> "chain"
          | `Balanced -> "balanced"
          | `Pmux -> "pmux"))
      Workloads.Profiles.public_benchmarks;
    print_endline "industrial test points:";
    List.iter
      (fun (p : Workloads.Profiles.profile) ->
        Printf.printf "  %-16s (seed %d)\n" p.Workloads.Profiles.name
          p.Workloads.Profiles.seed)
      Workloads.Profiles.industrial_benchmarks
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in workload profiles.")
    Term.(const run $ const ())

let generate_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE.")
  in
  let run name out =
    match Workloads.Profiles.by_name name with
    | None -> Printf.eprintf "unknown profile %s\n" name
    | Some p -> (
      let src = Workloads.Profiles.source p in
      match out with
      | None -> print_string src
      | Some path ->
        let oc = open_out path in
        output_string oc src;
        close_out oc;
        Printf.printf "wrote %s (%d bytes)\n" path (String.length src))
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Emit the Verilog source of a profile.")
    Term.(
      const run
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"NAME" ~doc:"Profile name.")
      $ out_arg)

let stats_cmd =
  let run src style =
    let c = load_circuit ~style src in
    let st = Netlist.Stats.of_circuit c in
    Fmt.pr "%a@." Netlist.Stats.pp st;
    Printf.printf "logic depth: %d\n" (Netlist.Topo.logic_depth c);
    Printf.printf "AIG area (FF excluded): %d\n" (Aiger.Aigmap.aig_area c)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print netlist statistics and the AIG area.")
    Term.(const run $ src_arg $ style_arg)

let opt_cmd =
  let run src style flow check verbose =
    let c = load_circuit ~style src in
    let orig = Netlist.Circuit.copy c in
    let area0 = Aiger.Aigmap.aig_area c in
    let t0 = Unix.gettimeofday () in
    (match flow with
    | `None -> ()
    | `Yosys ->
      let r = Smartly.Driver.yosys c in
      if verbose then Fmt.pr "baseline: %a@." Rtl_opt.Flow.pp_report r
    | `Smartly | `Sat | `Rebuild ->
      let cfg =
        match flow with
        | `Sat -> Smartly.Config.sat_only
        | `Rebuild -> Smartly.Config.rebuild_only
        | `Smartly | `None | `Yosys -> Smartly.Config.default
      in
      let r = Smartly.Driver.smartly ~cfg c in
      if verbose then begin
        List.iter
          (fun rr -> Fmt.pr "sat_elim: %a@." Smartly.Sat_elim.pp_report rr)
          r.Smartly.Driver.sat_reports;
        List.iter
          (fun rr -> Fmt.pr "rebuild:  %a@." Smartly.Restructure.pp_report rr)
          r.Smartly.Driver.rebuild_reports
      end);
    let dt = Unix.gettimeofday () -. t0 in
    let area1 = Aiger.Aigmap.aig_area c in
    Printf.printf "AIG area: %d -> %d (%.2f%% reduction) in %.2fs\n" area0
      area1
      (if area0 = 0 then 0.0
       else 100.0 *. (1.0 -. (float_of_int area1 /. float_of_int area0)))
      dt;
    if check then
      Fmt.pr "equivalence: %a@." Equiv.pp_verdict (Equiv.check orig c)
  in
  Cmd.v
    (Cmd.info "opt" ~doc:"Optimize a circuit and report the AIG area.")
    Term.(const run $ src_arg $ style_arg $ flow_arg $ check_arg $ verbose_arg)

let write_verilog_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE.")
  in
  let run src style out =
    let c = load_circuit ~style src in
    let text = Hdl.Verilog_out.write c in
    match out with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s (%d bytes)\n" path (String.length text)
  in
  Cmd.v
    (Cmd.info "write-verilog"
       ~doc:"Write the circuit back out as Verilog (round-trippable).")
    Term.(const run $ src_arg $ style_arg $ out_arg)

let dump_cmd =
  let run src style =
    let c = load_circuit ~style src in
    Netlist.Pp.print c
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Print the elaborated netlist in textual form.")
    Term.(const run $ src_arg $ style_arg)

let cec_cmd =
  let src2_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"SRC2" ~doc:"Second profile or Verilog file.")
  in
  let run src1 src2 style =
    let c1 = load_circuit ~style src1 in
    let c2 = load_circuit ~style src2 in
    Fmt.pr "%a@." Equiv.pp_verdict (Equiv.check c1 c2)
  in
  Cmd.v
    (Cmd.info "cec" ~doc:"Combinational equivalence check of two circuits.")
    Term.(const run $ src_arg $ src2_arg $ style_arg)

let main_cmd =
  let doc = "smaRTLy: RTL muxtree optimization (DAC'25 reproduction)" in
  Cmd.group
    (Cmd.info "smartly" ~version:"1.0.0" ~doc)
    [
      list_cmd; generate_cmd; stats_cmd; opt_cmd; cec_cmd; dump_cmd;
      write_verilog_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
