(* Tuning knobs for the smaRTLy passes, mirroring the thresholds the paper
   describes in Section II. *)

type t = {
  distance_k : int;
      (* gates within this distance of a control port join the sub-graph *)
  sim_input_threshold : int;
      (* <= this many free sub-graph inputs: exhaustive simulation *)
  sat_input_threshold : int;
      (* <= this many inputs: SAT; above: forgo the query (paper's
         "threshold for the number of inputs") *)
  sat_conflict_budget : int; (* conflict cap per SAT query *)
  max_subgraph_cells : int; (* forgo queries on larger sub-graphs *)
  enable_inference_rules : bool; (* Table I propagation *)
  enable_analysis : bool;
      (* abstract-interpretation rung zero (known-bits + intervals):
         answers Forced/Unreachable before the memo/sim/SAT rungs when
         the dataflow fixpoint pins the target; falls through on top *)
  enable_pruning : bool; (* Theorem II.1 sub-graph pruning *)
  enable_sat : bool; (* the SAT-based redundancy elimination *)
  enable_sat_session : bool;
      (* persistent incremental solver shared by all queries of a run
         (guarded clause groups, learned clauses survive); [false] falls
         back to one fresh solver per query *)
  enable_sat_memo : bool;
      (* cross-query verdict cache keyed by canonical structural hash *)
  enable_rebuild : bool; (* muxtree restructuring *)
  rebuild_single_ctrl : bool;
      (* enforce the paper's SingleCtrl condition; [false] additionally
         rebuilds chains over several independent condition signals (an
         extension of this implementation) *)
  pass_budget_ms : int option;
      (* wall-time budget per driver pass; exceeding it truncates the
         pass (remaining queries forgone, remaining trees skipped) and
         skips it on later iterations — never an error *)
  pass_alloc_budget_mw : float option;
      (* allocation budget per pass, in millions of words (minor
         allocation pointer delta); same graceful degradation *)
  jobs : int option;
      (* [Some n]: shard independent muxtrees across an [n]-worker
         domain pool (1 = same task path, run inline).  [None] is the
         legacy in-place sequential walk — the default, and the mode
         the committed baselines were measured on *)
  portfolio : bool;
      (* race solver configurations on queries the hardest-query ring
         flags; trades byte-determinism of solver telemetry for wall
         time, so opt-in *)
}

let default =
  {
    distance_k = 6;
    sim_input_threshold = 11;
    sat_input_threshold = 96;
    sat_conflict_budget = 4000;
    max_subgraph_cells = 600;
    enable_inference_rules = true;
    enable_analysis = true;
    enable_pruning = true;
    enable_sat = true;
    enable_sat_session = true;
    enable_sat_memo = true;
    enable_rebuild = true;
    rebuild_single_ctrl = true;
    pass_budget_ms = None;
    pass_alloc_budget_mw = None;
    jobs = None;
    portfolio = false;
  }

let sat_only = { default with enable_rebuild = false }
let rebuild_only = { default with enable_sat = false }

(* Stable serialization of every verdict-affecting knob, for composite
   cache keys ({!Replay}).  [jobs] is deliberately excluded: the task
   path's output is schedule-invariant by contract, so worker count must
   not split the cache. *)
let fingerprint (t : t) =
  Printf.sprintf "k%d;si%d;sa%d;cb%d;mx%d;f%b%b%b%b%b%b%b%b%b;bm%s;ba%s"
    t.distance_k t.sim_input_threshold t.sat_input_threshold
    t.sat_conflict_budget t.max_subgraph_cells t.enable_inference_rules
    t.enable_analysis t.enable_pruning t.enable_sat t.enable_sat_session
    t.enable_sat_memo t.enable_rebuild t.rebuild_single_ctrl t.portfolio
    (match t.pass_budget_ms with None -> "-" | Some m -> string_of_int m)
    (match t.pass_alloc_budget_mw with
    | None -> "-"
    | Some m -> string_of_float m)
