(** Per-pass resource watchdog: wall-time and allocation budgets with
    graceful degradation.

    Process-global like {!Obs.Metrics} and {!Engine.Sat_log}.  The
    driver {!arm}s it before each pass from the {!Config} budgets; the
    expensive inner loops poll {!exhausted} and abandon remaining work
    items (forgone SAT queries, skipped muxtree roots) once it trips;
    {!disarm} reports whether — and by how much — the pass overran.
    Exceeding a budget is never an error: the flow completes with
    partial optimization and a [Budget_exceeded] event on the bus. *)

(** What one overrunning pass abandoned. *)
type overrun = {
  pass : string;
  budget_ms : int option;  (** configured wall budget, if any *)
  elapsed_ms : float;  (** wall time actually spent *)
  alloc_budget_mw : float option;  (** configured allocation budget *)
  alloc_mw : float;  (** millions of words actually allocated *)
  truncated : int;  (** work items abandoned after the trip *)
}

val arm : ?cfg:Config.t -> pass:string -> unit -> unit
(** Start watching [pass] under [cfg]'s budgets.  With both budgets
    [None] this disarms instead, making {!exhausted} one ref read. *)

val armed : unit -> bool

val exhausted : unit -> bool
(** [true] once the armed pass has exceeded a budget; sticky until
    {!disarm}.  Cheap enough to poll per query. *)

val note_truncation : unit -> unit
(** Record one abandoned work item (bumps the [budget.truncated]
    counter). *)

val disarm : unit -> overrun option
(** Stop watching; [Some] iff the budget tripped while armed. *)

val reset : unit -> unit
(** Forget any armed state (test scoping). *)

val overrun_to_json : overrun -> Obs.Json.t
