(* Structural indices over a circuit: who drives each bit, and which cells
   read each bit.  Rebuilt from scratch after mutating passes. *)

type driver =
  | Driven_by of int * int (* cell id, offset within its output sigspec *)
  | Primary_input
  | Undriven

type t = {
  drivers : driver Bits.Bit_tbl.t;
  readers : (int, unit) Hashtbl.t Bits.Bit_tbl.t; (* bit -> set of cell ids *)
}

let build (c : Circuit.t) =
  let drivers = Bits.Bit_tbl.create 256 in
  let readers = Bits.Bit_tbl.create 256 in
  List.iter
    (fun b -> Bits.Bit_tbl.replace drivers b Primary_input)
    (Circuit.input_bits c);
  Circuit.iter_cells
    (fun id cell ->
      let y = Cell.output cell in
      Array.iteri
        (fun off b ->
          match b with
          | Bits.Of_wire _ -> Bits.Bit_tbl.replace drivers b (Driven_by (id, off))
          | Bits.C0 | Bits.C1 | Bits.Cx ->
            invalid_arg "Index.build: cell output connected to a constant")
        y;
      List.iter
        (fun b ->
          if not (Bits.is_const b) then begin
            let set =
              match Bits.Bit_tbl.find_opt readers b with
              | Some s -> s
              | None ->
                let s = Hashtbl.create 4 in
                Bits.Bit_tbl.replace readers b s;
                s
            in
            Hashtbl.replace set id ()
          end)
        (Cell.input_bits cell))
    c;
  { drivers; readers }

let driver t (b : Bits.bit) =
  match b with
  | Bits.C0 | Bits.C1 | Bits.Cx -> Undriven
  | Bits.Of_wire _ -> (
    match Bits.Bit_tbl.find_opt t.drivers b with
    | Some d -> d
    | None -> Undriven)

(* The cell driving bit [b], if any. *)
let driving_cell t b =
  match driver t b with
  | Driven_by (id, off) -> Some (id, off)
  | Primary_input | Undriven -> None

let readers t (b : Bits.bit) =
  match Bits.Bit_tbl.find_opt t.readers b with
  | Some set -> Hashtbl.fold (fun id () acc -> id :: acc) set []
  | None -> []

(* Number of distinct cells reading any bit of [s]. *)
let fanout_cells t (s : Bits.sigspec) =
  let acc = Hashtbl.create 8 in
  Array.iter
    (fun b -> List.iter (fun id -> Hashtbl.replace acc id ()) (readers t b))
    s;
  Hashtbl.fold (fun id () l -> id :: l) acc []
