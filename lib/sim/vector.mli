(** Two-valued bit-parallel simulation: each wire bit carries up to
    [Sys.int_size - 1] independent simulation lanes in one machine word. *)

open Netlist

type env

val lanes_max : int

val create : ?lanes:int -> unit -> env
(** @raise Invalid_argument when [lanes] is out of range. *)

val read : env -> Bits.bit -> int
val write : env -> Bits.bit -> int -> unit

val eval_cell : env -> Cell.t -> unit
val eval_ordered : Circuit.t -> env -> int list -> unit

val random_word : int -> int -> int
(** Deterministic pseudo-random word from (seed, index). *)

val randomize : env -> seed:int -> Bits.bit list -> unit

val random_equiv :
  ?rounds:int -> ?seed:int -> Circuit.t -> Circuit.t -> (int * string) option
(** Random co-simulation of two circuits with name-matched ports.
    [None] when all rounds agree; otherwise the first differing round and
    output name.  A cheap refutation filter, not a proof. *)
