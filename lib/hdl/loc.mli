(** Source positions and spans for the Verilog frontend.

    Positions are byte offsets decorated with 1-based line/column; spans
    cover a region and are attached to declarations, statements and module
    items by the parser so every diagnostic can point at source code. *)

type pos = { offset : int; line : int; col : int }

type span = { s : pos; e : pos }

val dummy_pos : pos
val dummy : span
(** For programmatically-built AST nodes; prints as ["<unknown>"]. *)

val is_dummy : span -> bool

val span : pos -> pos -> span
val of_pos : pos -> span
val join : span -> span -> span

type line_map
(** Offsets of line starts, built once per source string. *)

val line_map : string -> line_map

val pos_of_offset : line_map -> int -> pos
(** Binary search for the (1-based) line/column of a byte offset. *)

val pp_pos : Format.formatter -> pos -> unit
(** ["line 3, column 7"]. *)

val pp : Format.formatter -> span -> unit
(** ["3:7"] or ["3:7-5:2"]. *)

val to_string : span -> string
