(* Using the libraries programmatically, without the Verilog frontend:
   build a netlist with the Circuit API, query the inference engine
   directly, and run individual passes.

     dune exec examples/custom_netlist.exe *)

open Netlist

let () =
  (* Fig. 3 of the paper: Y = S ? ((S|R) ? A : B) : C *)
  let c = Circuit.create "fig3" in
  let s = Circuit.add_input c "S" ~width:1 in
  let r = Circuit.add_input c "R" ~width:1 in
  let a = Circuit.add_input c "A" ~width:8 in
  let b = Circuit.add_input c "B" ~width:8 in
  let cc = Circuit.add_input c "C" ~width:8 in
  let sb = Circuit.bit_of_wire s and rb = Circuit.bit_of_wire r in
  let s_or_r = Circuit.mk_or c sb rb in
  let inner =
    Circuit.mk_mux c ~a:(Circuit.sig_of_wire b) ~b:(Circuit.sig_of_wire a)
      ~s:s_or_r
  in
  let outer = Circuit.mk_mux c ~a:(Circuit.sig_of_wire cc) ~b:inner ~s:sb in
  let y = Circuit.add_output c "Y" ~width:8 in
  ignore
    (Circuit.add_cell c
       (Cell.Binary
          { op = Cell.Or; a = outer; b = Bits.all_zero ~width:8;
            y = Circuit.sig_of_wire y }));
  Validate.check_exn c;
  Printf.printf "built %s: %d cells, %d wires, logic depth %d\n"
    c.Circuit.name (Circuit.cell_count c) (Circuit.wire_count c)
    (Topo.logic_depth c);

  (* ask the engine directly: is the inner control forced when S = 1? *)
  let index = Index.build c in
  let known : Smartly.Inference.known = Bits.Bit_tbl.create 4 in
  ignore (Smartly.Inference.set known sb true);
  let stats = Smartly.Engine.fresh_stats () in
  let verdict =
    Smartly.Engine.determine Smartly.Config.default stats c index known
      ~target:s_or_r
  in
  Printf.printf "engine: under S=1, S|R is %s (rule hits %d)\n"
    (match verdict with
    | Smartly.Engine.Forced true -> "forced to 1"
    | Smartly.Engine.Forced false -> "forced to 0"
    | Smartly.Engine.Free -> "free"
    | Smartly.Engine.Unreachable -> "on a dead path"
    | Smartly.Engine.Unknown -> "undetermined")
    stats.Smartly.Engine.rule_hits;

  (* run just the SAT-elimination pass and see the mux disappear *)
  let original = Circuit.copy c in
  let report = Smartly.Sat_elim.run_once Smartly.Config.default c in
  ignore (Rtl_opt.Opt_clean.run c);
  Fmt.pr "sat_elim: %a@." Smartly.Sat_elim.pp_report report;
  let st = Stats.of_circuit c in
  Printf.printf "after the pass: %d mux cells (was 2), AIG area %d (was %d)\n"
    st.Stats.muxes
    (Aiger.Aigmap.aig_area c)
    (Aiger.Aigmap.aig_area original);
  Fmt.pr "equivalence check: %a@." Equiv.pp_verdict (Equiv.check original c);

  (* simulate both versions on a concrete vector: S=1, A=0x42 *)
  let inputs =
    (sb, Rtl_sim.Value.V1) :: (rb, Rtl_sim.Value.V0)
    :: List.concat_map
         (fun (w, v) ->
           List.init 8 (fun i ->
               ( Bits.Of_wire (w.Circuit.wire_id, i),
                 if (v lsr i) land 1 = 1 then Rtl_sim.Value.V1
                 else Rtl_sim.Value.V0 )))
         [ a, 0x42; b, 0x13; cc, 0x99 ]
  in
  let env = Rtl_sim.Eval.run c ~inputs () in
  match Rtl_sim.Eval.read_int env (Circuit.sig_of_wire y) with
  | Some v -> Printf.printf "simulation: S=1 -> Y = 0x%02x (expected 0x42)\n" v
  | None -> print_endline "simulation: Y undefined?"
