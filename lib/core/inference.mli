(** Rule-based value inference (paper Table I, generalized to every cell
    kind): forward evaluation with partially-known inputs plus backward
    rules such as [a|b = 0 ⊢ a = b = 0] and [a|b = 1, a = 0 ⊢ b = 1]. *)

open Netlist

exception Contradiction
(** The known values are inconsistent: the current path is unreachable. *)

type known = bool Bits.Bit_tbl.t

val read : known -> Bits.bit -> bool option
(** Constants read as themselves. *)

val set : known -> Bits.bit -> bool -> bool
(** Record a fact; [true] when it is new information.
    @raise Contradiction when it conflicts. *)

val step : known -> Cell.t -> bool
(** One propagation step through a cell; [true] on progress. *)

val propagate : ?track:string Bits.Bit_tbl.t -> Circuit.t -> known -> int list -> int
(** Sweep the given cells to fixpoint; returns the sweep count.  When
    [track] is given, every bit whose value is newly derived during the
    sweep is mapped to the rule family (the cell kind, e.g. ["or"] or
    ["mux"]) that derived it — the raw material for provenance rule
    attribution.
    @raise Contradiction when the facts are inconsistent. *)
