(* Work-stealing domain pool for sharding independent work items.

   The shape is dictated by the determinism requirement upstream: the
   caller hands over [n] indexed tasks whose results must be merged *in
   task order* no matter which domain ran which task, so [run] returns a
   plain ['r array] indexed by task.  Scheduling therefore only affects
   wall-clock, never output.

   Each worker owns a bounded deque seeded round-robin; owners pop from
   the front, thieves steal from the back of a victim's deque.  A mutex
   per deque keeps the operations trivially correct — the tasks here are
   muxtree optimizations costing milliseconds to seconds, so queue
   contention is noise.  Domains are spawned per [run] call and joined
   before it returns: pass-scoped parallelism, no persistent pool state
   to keep consistent between passes.

   The calling domain participates as worker 0, so [jobs] counts total
   workers, and [jobs = 1] runs every task inline with no domain spawned
   at all — that is the scheduler's sequential reference point. *)

type deque = {
  m : Mutex.t;
  buf : int array; (* task indices; fixed — the task set is known up front *)
  mutable head : int; (* next owner pop *)
  mutable tail : int; (* one past the last element; thieves take tail-1 *)
}

let pop_own dq =
  Mutex.lock dq.m;
  let r =
    if dq.head < dq.tail then begin
      let t = dq.buf.(dq.head) in
      dq.head <- dq.head + 1;
      Some t
    end
    else None
  in
  Mutex.unlock dq.m;
  r

let steal dq =
  Mutex.lock dq.m;
  let r =
    if dq.head < dq.tail then begin
      dq.tail <- dq.tail - 1;
      Some dq.buf.(dq.tail)
    end
    else None
  in
  Mutex.unlock dq.m;
  r

let run ~jobs ~(init : unit -> 'w) ~(task : 'w -> int -> 'r) (n : int) :
    'r array =
  let jobs = max 1 jobs in
  if n = 0 then [||]
  else if jobs = 1 then begin
    (* inline, but with the same failure contract as the parallel path:
       every task runs, then the first failure is re-raised *)
    let w = init () in
    let results : 'r option array = Array.make n None in
    let failure = ref None in
    for i = 0 to n - 1 do
      match task w i with
      | r -> results.(i) <- Some r
      | exception e ->
        if !failure = None then
          failure := Some (e, Printexc.get_raw_backtrace ())
    done;
    (match !failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some r -> r | None -> assert false) results
  end
  else begin
    let workers = min jobs n in
    let deques =
      Array.init workers (fun wi ->
          (* round-robin seed: worker wi owns tasks wi, wi+workers, ... *)
          let mine = ref [] in
          let i = ref (n - 1) in
          while !i >= 0 do
            if !i mod workers = wi then mine := !i :: !mine;
            decr i
          done;
          let buf = Array.of_list !mine in
          { m = Mutex.create (); buf; head = 0; tail = Array.length buf })
    in
    let results : 'r option array = Array.make n None in
    let failures : (exn * Printexc.raw_backtrace) option array =
      Array.make n None
    in
    let worker wi =
      let w = init () in
      let exec t =
        match task w t with
        | r -> results.(t) <- Some r
        | exception e ->
          failures.(t) <- Some (e, Printexc.get_raw_backtrace ())
      in
      let rec next () =
        match pop_own deques.(wi) with
        | Some t ->
          exec t;
          next ()
        | None -> steal_from 1
      and steal_from k =
        if k < workers then
          match steal deques.((wi + k) mod workers) with
          | Some t ->
            exec t;
            next ()
          | None -> steal_from (k + 1)
      in
      next ()
    in
    let domains =
      Array.init (workers - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    worker 0;
    Array.iter Domain.join domains;
    (* deterministic error propagation: the failure of the lowest task
       index wins, like sequential execution would have raised it first *)
    Array.iteri
      (fun t f ->
        match f with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ignore t)
      failures;
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every task ran or raised above *))
      results
  end

(* Portfolio racing: run each candidate on its own domain, first [Some]
   wins, and the stop predicate handed to every candidate turns true so
   the losers can abandon their solve at the next poll.  All domains are
   joined before returning — no candidate outlives the race.  Inherently
   schedule-dependent, which is why the optimizer only engages it behind
   an explicit opt-in. *)
let race (candidates : ((unit -> bool) -> 'a option) list) : 'a option =
  match candidates with
  | [] -> None
  | [ f ] -> f (fun () -> false)
  | first :: rest ->
    let stop = Atomic.make false in
    let winner = Atomic.make None in
    let attempt f () =
      match f (fun () -> Atomic.get stop) with
      | Some r ->
        if Atomic.compare_and_set winner None (Some r) then
          Atomic.set stop true
      | None -> ()
      | exception _ -> ()
    in
    let domains = List.map (fun f -> Domain.spawn (attempt f)) rest in
    attempt first ();
    List.iter Domain.join domains;
    Atomic.get winner

let recommended_jobs () = Domain.recommended_domain_count ()
