(* Structural cell sharing, a la Yosys `opt_merge`: combinational cells with
   identical kind and identical input connections are merged; readers of the
   duplicate's outputs are rewired to the survivor. *)

open Netlist

(* A structural key for a cell: its printed form minus the outputs. *)
let cell_key (cell : Cell.t) : string option =
  let sig_key (s : Bits.sigspec) =
    String.concat ","
      (Array.to_list
         (Array.map
            (function
              | Bits.C0 -> "0"
              | Bits.C1 -> "1"
              | Bits.Cx -> "x"
              | Bits.Of_wire (w, o) -> Printf.sprintf "%d.%d" w o)
            s))
  in
  match cell with
  | Cell.Unary { op; a; y } ->
    Some
      (Printf.sprintf "u%s|%s|%d" (Cell.unary_op_name op) (sig_key a)
         (Bits.width y))
  | Cell.Binary { op; a; b; y } ->
    let sa = sig_key a and sb = sig_key b in
    let commutative =
      match op with
      | Cell.And | Cell.Or | Cell.Xor | Cell.Xnor | Cell.Eq | Cell.Ne
      | Cell.Add | Cell.Logic_and | Cell.Logic_or -> true
      | Cell.Sub -> false
    in
    let sa, sb = if commutative && sb < sa then sb, sa else sa, sb in
    Some
      (Printf.sprintf "b%s|%s|%s|%d" (Cell.binary_op_name op) sa sb
         (Bits.width y))
  | Cell.Mux { a; b; s; y } ->
    Some
      (Printf.sprintf "m|%s|%s|%s|%d" (sig_key a) (sig_key b)
         (sig_key [| s |]) (Bits.width y))
  | Cell.Pmux { a; b; s; y } ->
    Some
      (Printf.sprintf "p|%s|%s|%s|%d" (sig_key a) (sig_key b) (sig_key s)
         (Bits.width y))
  | Cell.Dff _ -> None

let m_cells_removed = Obs.Metrics.counter "flow.cells_removed"

(* One sweep; returns number of merged cells. *)
let run_once (c : Circuit.t) : int =
  let table : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let merged = ref 0 in
  List.iter
    (fun id ->
      match Circuit.cell_opt c id with
      | None -> ()
      | Some cell -> (
        match cell_key cell with
        | None -> ()
        | Some key -> (
          match Hashtbl.find_opt table key with
          | None -> Hashtbl.replace table key id
          | Some survivor_id ->
            let survivor = Circuit.cell c survivor_id in
            let y_dup = Cell.output cell in
            Circuit.remove_cell c id;
            Obs.Metrics.incr m_cells_removed;
            Obs.Provenance.emit ~kind:Obs.Provenance.Cell_removed ~cell:id
              ~pass:"opt_merge" ~mechanism:(Obs.Provenance.Rule "merge")
              ~area_delta:(-Stats.approx_cell_area cell) ();
            Rewire.replace_sig c ~from_:y_dup ~to_:(Cell.output survivor);
            incr merged)))
    (Circuit.cell_ids c);
  !merged

let m_merged = Obs.Metrics.counter "opt_merge.merged"

let run (c : Circuit.t) : int =
  Obs.Trace.with_span "opt_merge.run" @@ fun () ->
  let total = ref 0 in
  let rec fix iter =
    if iter < 8 then begin
      let n = run_once c in
      total := !total + n;
      if n > 0 then fix (iter + 1)
    end
  in
  fix 0;
  Obs.Metrics.add m_merged !total;
  !total
