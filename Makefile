.PHONY: all build test bench ci clean

all: build

build:
	dune build

test: build
	dune runtest

bench: build
	dune exec bench/main.exe

# What CI runs: build, the full test suite, then an end-to-end smoke of
# the observability surface — optimize the fast mux_chain profile with
# both a Chrome trace and a JSON stats report, and fail unless both
# files parse (validate-json is the CLI's own strict parser, so no
# external tooling is needed).
ci: build
	dune runtest
	dune exec bin/smartly_cli.exe -- opt mux_chain --flow smartly \
	  --json --trace /tmp/smartly_trace.json > /tmp/smartly_stats.json
	dune exec bin/smartly_cli.exe -- validate-json \
	  /tmp/smartly_stats.json /tmp/smartly_trace.json

clean:
	dune clean
