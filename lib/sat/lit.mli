(** Literals in MiniSAT encoding: [lit = 2*var + sign], sign 1 = negated. *)

type t = int

val of_var : ?negated:bool -> int -> t
val var : t -> int
val negate : t -> t
val is_negated : t -> bool

val to_dimacs : t -> int
(** 1-based signed integer form. *)

val of_dimacs : int -> t
(** @raise Invalid_argument on zero. *)

val pp : Format.formatter -> t -> unit
