(* Literals, MiniSAT encoding: lit = 2*var + sign, sign 1 = negated. *)

type t = int

let of_var ?(negated = false) v =
  if v < 0 then invalid_arg "Lit.of_var";
  (v * 2) + if negated then 1 else 0

let var (l : t) = l lsr 1
let negate (l : t) = l lxor 1
let is_negated (l : t) = l land 1 = 1

(* DIMACS integer form: variable v as 1-based, negative when negated. *)
let to_dimacs (l : t) = if is_negated l then -(var l + 1) else var l + 1

let of_dimacs d =
  if d = 0 then invalid_arg "Lit.of_dimacs: zero";
  if d > 0 then of_var (d - 1) else of_var ~negated:true (-d - 1)

let pp ppf l = Fmt.int ppf (to_dimacs l)
