(* Tests for the unified event bus, the flight-recorder ring, the run
   ledger, and the resource-budget watchdog: the observability path a
   dead process leaves behind must be ordered, parseable, and truthful
   about what was in flight. *)

open Netlist

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* every test owns the process-global bus *)
let with_bus f =
  Obs.Event.reset ();
  Fun.protect ~finally:Obs.Event.reset f

let collect () =
  let evs = ref [] in
  let sub = Obs.Event.subscribe (fun e -> evs := e :: !evs) in
  sub, fun () -> List.rev !evs

(* --- bus ordering --- *)

let assert_stream_ordered (evs : Obs.Event.t list) =
  ignore
    (List.fold_left
       (fun prev (e : Obs.Event.t) ->
         (match prev with
         | None -> ()
         | Some (p : Obs.Event.t) ->
           check_bool "seq strictly increasing" true
             (e.Obs.Event.seq > p.Obs.Event.seq);
           check_bool "timestamps non-decreasing" true
             (Int64.compare e.Obs.Event.t_ns p.Obs.Event.t_ns >= 0));
         Some e)
       None evs)

let test_bus_ordering_interleaved_spans () =
  with_bus @@ fun () ->
  let _, events = collect () in
  (* interleave span traffic with pass boundaries and manual emits: the
     stream must come out gaplessly sequenced and time-ordered whatever
     the nesting *)
  Obs.Event.emit ~name:"p1" Obs.Event.Pass_start;
  Obs.Trace.with_span "outer" (fun () ->
      Obs.Event.emit ~name:"m1" Obs.Event.Metric;
      Obs.Trace.with_span "inner" (fun () ->
          Obs.Event.emit ~name:"note" Obs.Event.Note));
  Obs.Event.emit ~name:"p1" Obs.Event.Pass_end;
  let evs = events () in
  check_int "eight events" 8 (List.length evs);
  assert_stream_ordered evs;
  check_int "seq starts at 0" 0 (List.hd evs).Obs.Event.seq;
  let kinds = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.kind) evs in
  check_bool "span opens recorded" true
    (List.mem Obs.Event.Span_open kinds && List.mem Obs.Event.Span_close kinds);
  (* spans nest: inner closes before outer *)
  let names_of k =
    List.filter_map
      (fun (e : Obs.Event.t) ->
        if e.Obs.Event.kind = k then Some e.Obs.Event.name else None)
      evs
  in
  check_bool "open order" true (names_of Obs.Event.Span_open = [ "outer"; "inner" ]);
  check_bool "close order" true
    (names_of Obs.Event.Span_close = [ "inner"; "outer" ])

let test_bus_jsonl_roundtrip () =
  with_bus @@ fun () ->
  let _, events = collect () in
  Obs.Event.emit ~name:"p" Obs.Event.Pass_start;
  Obs.Event.emit ~name:"q7"
    ~data:(Obs.Json.Obj [ "conflicts", Obs.Json.num_of_int 3 ])
    Obs.Event.Sat_query;
  Obs.Event.emit ~name:"p" Obs.Event.Pass_end;
  let evs = events () in
  let text =
    String.concat ""
      (List.map
         (fun e -> Obs.Json.to_string (Obs.Event.to_json e) ^ "\n")
         evs)
  in
  let back, torn = Obs.Event.parse_jsonl_partial text in
  check_bool "no torn tail" true (torn = None);
  check_bool "roundtrips" true (back = evs)

(* --- current-pass stack --- *)

let test_current_pass_stack () =
  with_bus @@ fun () ->
  (* truthful even with zero subscribers *)
  check_bool "idle" true (Obs.Event.current_pass () = None);
  Obs.Event.emit ~name:"sat_elim" Obs.Event.Pass_start;
  check_bool "in pass" true (Obs.Event.current_pass () = Some "sat_elim");
  Obs.Event.emit ~name:"nested" Obs.Event.Pass_start;
  check_bool "innermost wins" true
    (Obs.Event.current_pass () = Some "nested");
  Obs.Event.emit ~name:"nested" Obs.Event.Pass_end;
  check_bool "popped" true (Obs.Event.current_pass () = Some "sat_elim");
  Obs.Event.emit ~name:"sat_elim" Obs.Event.Pass_end;
  check_bool "idle again" true (Obs.Event.current_pass () = None)

(* --- sink failure isolation --- *)

let test_sink_failure_isolation () =
  with_bus @@ fun () ->
  let seen_a = ref 0 and seen_c = ref 0 in
  let _a = Obs.Event.subscribe ~name:"a" (fun _ -> incr seen_a) in
  let _b =
    Obs.Event.subscribe ~name:"bad" (fun _ -> failwith "sink exploded")
  in
  let _c = Obs.Event.subscribe ~name:"c" (fun _ -> incr seen_c) in
  for i = 1 to 3 do
    Obs.Event.emit ~name:(Printf.sprintf "n%d" i) Obs.Event.Note
  done;
  check_int "first sink got every event" 3 !seen_a;
  check_int "third sink got every event" 3 !seen_c;
  match Obs.Event.failed_sinks () with
  | [ (name, msg) ] ->
    check_string "failed sink named" "bad" name;
    check_bool "failure message kept" true
      (String.length msg > 0)
  | other ->
    Alcotest.failf "expected exactly one failed sink, got %d"
      (List.length other)

(* --- flight-recorder ring --- *)

let test_ring_wraparound () =
  with_bus @@ fun () ->
  let r = Obs.Ring.create ~capacity:8 () in
  ignore (Obs.Ring.attach r);
  for i = 1 to 20 do
    Obs.Event.emit ~name:(Printf.sprintf "e%d" i) Obs.Event.Note
  done;
  Obs.Ring.detach r;
  Obs.Event.emit ~name:"after-detach" Obs.Event.Note;
  check_int "capacity" 8 (Obs.Ring.capacity r);
  check_int "seen counts drops" 20 (Obs.Ring.seen r);
  let names =
    List.map (fun (e : Obs.Event.t) -> e.Obs.Event.name) (Obs.Ring.events r)
  in
  check_bool "retains the last 8, oldest first" true
    (names = [ "e13"; "e14"; "e15"; "e16"; "e17"; "e18"; "e19"; "e20" ]);
  (* the dump document *)
  Obs.Event.emit ~name:"p" Obs.Event.Pass_start;
  let j = Obs.Ring.to_json ~reason:"test" r in
  check_bool "reason" true (Obs.Json.mem_str "reason" j = Some "test");
  check_bool "current pass" true
    (Obs.Json.mem_str "current_pass" j = Some "p");
  check_bool "seen" true (Obs.Json.mem_int "seen" j = Some 20);
  check_bool "retained" true (Obs.Json.mem_int "retained" j = Some 8)

(* --- torn-tail JSONL recovery --- *)

let test_jsonl_torn_tail () =
  let good = {|{"a":1}
{"b":2}
|} in
  let torn = good ^ {|{"c":tru|} in
  let vals, off = Obs.Json.parse_jsonl_partial torn in
  check_int "complete records recovered" 2 (List.length vals);
  check_bool "offset names the torn line" true
    (off = Some (String.length good));
  let _, clean = Obs.Json.parse_jsonl_partial good in
  check_bool "clean input has no tear" true (clean = None);
  (* byte offsets of the recovered records *)
  (match vals with
  | [ (_, 0); (_, o2) ] -> check_int "second record offset" 8 o2
  | _ -> Alcotest.fail "unexpected offsets")

let test_event_stream_torn_tail () =
  with_bus @@ fun () ->
  let _, events = collect () in
  for i = 1 to 3 do
    Obs.Event.emit ~name:(Printf.sprintf "n%d" i) Obs.Event.Note
  done;
  let lines =
    List.map
      (fun e -> Obs.Json.to_string (Obs.Event.to_json e) ^ "\n")
      (events ())
  in
  let text = String.concat "" lines in
  (* cut the final line mid-record, as a killed writer would *)
  let cut = String.sub text 0 (String.length text - 5) in
  let evs, off = Obs.Event.parse_jsonl_partial cut in
  check_int "two complete events" 2 (List.length evs);
  let expected_off =
    String.length (List.nth lines 0) + String.length (List.nth lines 1)
  in
  check_bool "tear at the last record" true (off = Some expected_off);
  assert_stream_ordered evs

let test_provenance_torn_tail () =
  with_bus @@ fun () ->
  let sink = Obs.Provenance.make_sink () in
  Obs.Provenance.install sink;
  Fun.protect ~finally:Obs.Provenance.uninstall (fun () ->
      Obs.Provenance.emit ~kind:Obs.Provenance.Cell_removed ~cell:1
        ~pass:"test" ~mechanism:Obs.Provenance.Pruned ();
      Obs.Provenance.emit ~kind:Obs.Provenance.Cell_removed ~cell:2
        ~pass:"test" ~mechanism:Obs.Provenance.Pruned ());
  let text = Obs.Provenance.to_jsonl_string sink in
  let evs, torn = Obs.Provenance.parse_jsonl_partial text in
  check_int "both parse" 2 (List.length evs);
  check_bool "clean" true (torn = None);
  let cut = String.sub text 0 (String.length text - 3) in
  let evs', torn' = Obs.Provenance.parse_jsonl_partial cut in
  check_int "first survives" 1 (List.length evs');
  check_bool "tear reported" true (torn' <> None)

(* --- budget watchdog e2e --- *)

let test_budget_truncates_gracefully () =
  with_bus @@ fun () ->
  let _, events = collect () in
  let c0 = Workloads.Profiles.circuit Workloads.Profiles.mux_chain in
  let c = Circuit.copy c0 in
  Smartly.Budget.reset ();
  let cfg =
    { Smartly.Config.default with Smartly.Config.pass_budget_ms = Some 0 }
  in
  let r = Smartly.Driver.smartly ~cfg c in
  (* a zero budget trips inside the SAT ladder and the rebuild loop, yet
     the flow completes and the netlist is still the same function *)
  check_bool "overruns recorded" true (r.Smartly.Driver.overruns <> []);
  List.iter
    (fun (o : Smartly.Budget.overrun) ->
      check_bool "overrun names its budget" true
        (o.Smartly.Budget.budget_ms = Some 0);
      check_bool "elapsed measured" true (o.Smartly.Budget.elapsed_ms >= 0.0))
    r.Smartly.Driver.overruns;
  let budget_evs =
    List.filter
      (fun (e : Obs.Event.t) ->
        e.Obs.Event.kind = Obs.Event.Budget_exceeded)
      (events ())
  in
  check_int "one event per overrun"
    (List.length r.Smartly.Driver.overruns)
    (List.length budget_evs);
  (match Equiv.check c c0 with
  | Equiv.Equivalent -> ()
  | Equiv.Not_equivalent o ->
    Alcotest.failf "truncated flow broke equivalence on %s" o
  | Equiv.Inconclusive -> Alcotest.fail "equivalence inconclusive");
  Smartly.Budget.reset ()

let test_budget_unarmed_is_free () =
  Smartly.Budget.reset ();
  check_bool "not armed" true (not (Smartly.Budget.armed ()));
  check_bool "never exhausted unarmed" true (not (Smartly.Budget.exhausted ()));
  (* no budgets configured: arming is a no-op *)
  Smartly.Budget.arm ~pass:"p" ();
  check_bool "still not armed" true (not (Smartly.Budget.armed ()));
  check_bool "disarm yields nothing" true (Smartly.Budget.disarm () = None)

(* --- sabotaged run: the flight recorder names the in-flight pass --- *)

let rec rm_rf p =
  if Sys.is_directory p then begin
    Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
    Unix.rmdir p
  end
  else Sys.remove p

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_sabotaged_run_flight_dump () =
  with_bus @@ fun () ->
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "smartly_test_ledger_%d" (Unix.getpid ()))
  in
  if Sys.file_exists root then rm_rf root;
  Fun.protect ~finally:(fun () -> rm_rf root)
  @@ fun () ->
  let l =
    Obs.Ledger.create ~root ~ring_capacity:32
      ~argv:[ "smartly"; "opt"; "sabotaged" ]
      ~env:(Obs.Json.Obj [ "hostname", Obs.Json.Str "test" ])
      ()
  in
  let c = Workloads.Profiles.circuit Workloads.Profiles.mux_chain in
  let died_in = ref None in
  (* the invariant-checker seat: raise while sat_elim is still the open
     pass, as a failed invariant (or a crash in the pass body) would *)
  let after_pass name _ =
    if name = "sat_elim" then failwith "sabotage"
  in
  (try ignore (Smartly.Driver.smartly ~after_pass c)
   with Failure _ -> died_in := Obs.Event.current_pass ());
  check_bool "bus names the in-flight pass" true
    (!died_in = Some "sat_elim");
  ignore (Obs.Ledger.dump_flight ~reason:"exception: sabotage" l);
  Obs.Ledger.finish ~status:"crashed" l;
  (* everything below reads the directory cold, as [smartly report]
     would after the writing process is gone *)
  let dir = Obs.Ledger.dir l in
  let manifest =
    match Obs.Json.parse (read_file (Filename.concat dir "manifest.json")) with
    | Ok j -> j
    | Error e -> Alcotest.failf "manifest does not parse: %s" e
  in
  check_bool "status recorded" true
    (Obs.Json.mem_str "status" manifest = Some "crashed");
  check_bool "argv recorded" true
    (Obs.Json.mem_list "argv" manifest <> None);
  let evs, torn =
    Obs.Event.parse_jsonl_partial
      (read_file (Filename.concat dir "events.jsonl"))
  in
  check_bool "event stream complete" true (torn = None);
  check_bool "events flushed" true (List.length evs > 0);
  assert_stream_ordered evs;
  (* sat_elim opened but never closed *)
  let count k name =
    List.length
      (List.filter
         (fun (e : Obs.Event.t) ->
           e.Obs.Event.kind = k && e.Obs.Event.name = name)
         evs)
  in
  check_int "sat_elim opened" 1 (count Obs.Event.Pass_start "sat_elim");
  check_int "sat_elim never closed" 0 (count Obs.Event.Pass_end "sat_elim");
  let flight =
    match
      Obs.Json.parse (read_file (Filename.concat dir "flightrec.json"))
    with
    | Ok j -> j
    | Error e -> Alcotest.failf "flight dump does not parse: %s" e
  in
  check_bool "flight names the in-flight pass" true
    (Obs.Json.mem_str "current_pass" flight = Some "sat_elim");
  check_bool "flight says why" true
    (Obs.Json.mem_str "reason" flight = Some "exception: sabotage");
  check_bool "flight retained a window" true
    (match Obs.Json.mem_int "retained" flight with
    | Some n -> n > 0 && n <= 32
    | None -> false)

(* --- ledger lifecycle --- *)

let test_ledger_collision_and_finish () =
  with_bus @@ fun () ->
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "smartly_test_ledger2_%d" (Unix.getpid ()))
  in
  if Sys.file_exists root then rm_rf root;
  Fun.protect ~finally:(fun () -> rm_rf root)
  @@ fun () ->
  let mk () =
    Obs.Ledger.create ~root ~run_id:"fixed" ~attach_events:false
      ~argv:[ "x" ] ~env:Obs.Json.Null ()
  in
  let a = mk () and b = mk () in
  check_string "first claims the id" "fixed" (Obs.Ledger.run_id a);
  check_string "second gets a suffix" "fixed-1" (Obs.Ledger.run_id b);
  Obs.Ledger.finish ~status:"ok" a;
  Obs.Ledger.finish ~status:"interrupted" a;
  (* idempotent: the second finish must not overwrite the first *)
  match
    Obs.Json.parse
      (read_file (Filename.concat (Obs.Ledger.dir a) "manifest.json"))
  with
  | Ok m ->
    check_bool "first finish wins" true
      (Obs.Json.mem_str "status" m = Some "ok");
    check_bool "end stamped" true (Obs.Json.member "ended_unix" m <> None);
    Obs.Ledger.finish ~status:"ok" b
  | Error e -> Alcotest.failf "manifest: %s" e

let () =
  Alcotest.run "events"
    [
      ( "bus",
        [
          Alcotest.test_case "ordering under interleaved spans" `Quick
            test_bus_ordering_interleaved_spans;
          Alcotest.test_case "jsonl roundtrip" `Quick test_bus_jsonl_roundtrip;
          Alcotest.test_case "current-pass stack" `Quick
            test_current_pass_stack;
          Alcotest.test_case "sink failure isolation" `Quick
            test_sink_failure_isolation;
        ] );
      ( "ring",
        [ Alcotest.test_case "wraparound" `Quick test_ring_wraparound ] );
      ( "torn tails",
        [
          Alcotest.test_case "json lines" `Quick test_jsonl_torn_tail;
          Alcotest.test_case "event stream" `Quick test_event_stream_torn_tail;
          Alcotest.test_case "provenance stream" `Quick
            test_provenance_torn_tail;
        ] );
      ( "budget",
        [
          Alcotest.test_case "graceful truncation" `Quick
            test_budget_truncates_gracefully;
          Alcotest.test_case "unarmed is free" `Quick
            test_budget_unarmed_is_free;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "sabotaged run flight dump" `Quick
            test_sabotaged_run_flight_dump;
          Alcotest.test_case "collision and finish" `Quick
            test_ledger_collision_and_finish;
        ] );
    ]
