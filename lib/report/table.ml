(* Minimal ASCII table rendering for the benchmark harness and the CLI. *)

type align = Left | Right

type column = { title : string; align : align }

let column ?(align = Right) title = { title; align }

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ~columns ~(rows : string list list) : string =
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row i with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          (String.length col.title)
          rows)
      columns
  in
  let buf = Buffer.create 512 in
  let sep =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let render_row cells =
    let padded =
      List.mapi
        (fun i col ->
          let cell = match List.nth_opt cells i with Some c -> c | None -> "" in
          let w = List.nth widths i in
          " " ^ pad col.align w cell ^ " ")
        columns
    in
    "|" ^ String.concat "|" padded ^ "|"
  in
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf
    (render_row (List.map (fun c -> c.title) columns) ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.add_string buf (sep ^ "\n");
  Buffer.contents buf

let print ~columns ~rows = print_string (render ~columns ~rows)

(* formatting helpers *)
let pct v = Printf.sprintf "%.2f%%" v
let int_ v = string_of_int v
