(* Top-level optimization flows.

   [yosys]   — the baseline: opt_expr + opt_muxtree + opt_clean to fixpoint.
   [smartly] — the paper's flow: opt_muxtree is *replaced* by SAT-based
               redundancy elimination and muxtree restructuring, again
               interleaved with expression folding and cleanup. *)

open Netlist

type result = {
  iterations : int;
  sat_reports : Sat_elim.report list;
  rebuild_reports : Restructure.report list;
  overruns : Budget.overrun list;
}

let h_cells_delta = Obs.Metrics.histogram "driver.cells_removed_per_iter"
let m_iterations = Obs.Metrics.counter "driver.iterations"

let yosys ?after_pass (c : Circuit.t) : Rtl_opt.Flow.report =
  Obs.Trace.with_span "driver.yosys" @@ fun () ->
  Rtl_opt.Flow.baseline ?after_pass c

let smartly ?(cfg = Config.default) ?(after_pass = fun _ _ -> ())
    (c : Circuit.t) : result =
  Obs.Trace.with_span "driver.smartly" @@ fun () ->
  let sat_reports = ref [] in
  let rebuild_reports = ref [] in
  let overruns = ref [] in
  (* A pass that blew its budget once is skipped on later iterations:
     re-running it would blow the budget again for no progress. *)
  let skipped : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  (* One named pass under the watchdog.  Event ordering matters for the
     flight recorder: Pass_end is emitted last, so a pass that dies (in
     the pass body or in [after_pass]) leaves itself as the bus's
     current pass; Budget_exceeded is emitted before [after_pass] so an
     invariant failure cannot swallow the verdict. *)
  let run_pass ~iter name ~default f =
    if Hashtbl.mem skipped name then default
    else begin
      Obs.Event.emit ~name
        ~data:(Obs.Json.Obj [ "iteration", Obs.Json.num_of_int iter ])
        Obs.Event.Pass_start;
      Budget.arm ~cfg ~pass:name ();
      let t0 = Obs.Clock.now () in
      let r =
        try f ()
        with e ->
          ignore (Budget.disarm ());
          raise e
      in
      let seconds = Obs.Clock.now () -. t0 in
      (match Budget.disarm () with
      | Some o ->
        overruns := o :: !overruns;
        Hashtbl.replace skipped name ();
        Obs.Event.emit ~name ~data:(Budget.overrun_to_json o)
          Obs.Event.Budget_exceeded
      | None -> ());
      after_pass name c;
      Obs.Event.emit ~name
        ~data:
          (Obs.Json.Obj
             [
               "iteration", Obs.Json.num_of_int iter;
               "seconds", Obs.Json.Num seconds;
               "cells", Obs.Json.num_of_int (Circuit.cell_count c);
             ])
        Obs.Event.Pass_end;
      r
    end
  in
  let rec loop iter =
    if iter >= 6 then iter
    else begin
      let cells_before = Circuit.cell_count c in
      let progress =
        Obs.Trace.with_span "driver.iteration" @@ fun () ->
        let e =
          run_pass ~iter "opt_expr" ~default:0 (fun () ->
              Rtl_opt.Opt_expr.run c)
        in
        let g =
          run_pass ~iter "opt_merge" ~default:0 (fun () ->
              Rtl_opt.Opt_merge.run c)
        in
        let e = e + g in
        let sat_changed =
          if cfg.Config.enable_sat then
            run_pass ~iter "sat_elim" ~default:false (fun () ->
                let r = Sat_elim.run ?jobs:cfg.Config.jobs cfg c in
                sat_reports := r :: !sat_reports;
                Sat_elim.changed r)
          else false
        in
        let rebuild_changed =
          if cfg.Config.enable_rebuild then
            run_pass ~iter "restructure" ~default:false (fun () ->
                let r =
                  Restructure.run_once
                    ~single_ctrl:cfg.Config.rebuild_single_ctrl c
                in
                rebuild_reports := r :: !rebuild_reports;
                Restructure.changed r)
          else false
        in
        let removed =
          run_pass ~iter "opt_clean" ~default:0 (fun () ->
              Rtl_opt.Opt_clean.run c)
        in
        e > 0 || sat_changed || rebuild_changed || removed > 0
      in
      Obs.Metrics.observe_int h_cells_delta
        (cells_before - Circuit.cell_count c);
      if progress then loop (iter + 1) else iter + 1
    end
  in
  let iterations = loop 0 in
  Obs.Metrics.add m_iterations iterations;
  {
    iterations;
    sat_reports = List.rev !sat_reports;
    rebuild_reports = List.rev !rebuild_reports;
    overruns = List.rev !overruns;
  }

(* Convenience wrappers returning the AIG area after optimization. *)

let optimize_and_measure flow (c : Circuit.t) =
  (match flow with
  | `None -> ()
  | `Yosys -> ignore (yosys c)
  | `Smartly cfg -> ignore (smartly ~cfg c));
  Aiger.Aigmap.aig_area c
