(** Muxtree restructuring (paper Section III, Algorithm 1).

    Flattened muxtrees are rebuilt as decision trees over the selector
    bits, using the paper's greedy heuristic: at each node pick the bit
    minimizing the total number of distinct terminals in the two children.
    Identical subtrees are shared.  [Check] rebuilds only when the
    estimated AIG cost (muxes scaled by data width, minus the eq gates that
    become removable) goes down. *)

open Netlist

(** A hash-consed decision tree over selector bit indices. *)
type tree

val count_unique_nodes : tree -> int
val tree_height : tree -> int

type decision = {
  flat : Muxtree.flat;
  tree : tree;
  new_muxes : int;  (** shared nodes of the rebuilt tree *)
  old_muxes : int;  (** post-techmap muxes of the existing tree *)
  removable : int list;  (** select cells read only inside the tree *)
  saved_cost : int;  (** estimated AIG nodes saved; rebuild iff > 0 *)
  height : int;
}

val evaluate : Circuit.t -> Index.t -> Muxtree.flat -> decision
(** Algorithm 1's ADD construction + Check, without committing. *)

val rebuild : Circuit.t -> decision -> unit
(** Emit the rebuilt tree and rewire the old root; the disconnected cells
    are left to opt_clean (Algorithm 1 line 9). *)

type report = {
  candidates : int;
  rebuilt : int;
  muxes_before : int;
  muxes_after : int;
  eq_removed : int;
}

val pp_report : Format.formatter -> report -> unit

val run_once : ?min_saving:int -> ?single_ctrl:bool -> Circuit.t -> report

val changed : report -> bool
