(* Baseline optimization flow: the Yosys `opt` loop with `opt_muxtree`.
   Repeats expression folding, muxtree pruning and dead-code removal until
   nothing changes. *)

type report = {
  iterations : int;
  expr_folded : int;
  muxtree_changes : int;
  cells_removed : int;
}

let pp_report ppf r =
  Fmt.pf ppf "iters=%d expr=%d muxtree=%d removed=%d" r.iterations
    r.expr_folded r.muxtree_changes r.cells_removed

let baseline ?(after_pass = fun _ _ -> ()) (c : Netlist.Circuit.t) : report =
  Obs.Trace.with_span "flow.baseline" @@ fun () ->
  let expr_folded = ref 0 in
  let muxtree_changes = ref 0 in
  let cells_removed = ref 0 in
  let rec loop iter =
    if iter >= 16 then iter
    else begin
      let e = Opt_expr.run c in
      after_pass "opt_expr" c;
      let g = Opt_merge.run c in
      after_pass "opt_merge" c;
      let m = Opt_muxtree.run c in
      after_pass "opt_muxtree" c;
      let r = Opt_clean.run c in
      after_pass "opt_clean" c;
      expr_folded := !expr_folded + e + g;
      muxtree_changes := !muxtree_changes + m;
      cells_removed := !cells_removed + r;
      if e + g + m + r > 0 then loop (iter + 1) else iter + 1
    end
  in
  let iterations = loop 0 in
  {
    iterations;
    expr_folded = !expr_folded;
    muxtree_changes = !muxtree_changes;
    cells_removed = !cells_removed;
  }
