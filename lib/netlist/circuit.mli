(** A circuit: one flat module of wires and cells.

    Cells live in a mutable table so optimization passes can rewrite them
    in place; derive {!Index} structures for connectivity queries. *)

type wire = { wire_id : int; wire_name : string; width : int }

type port_dir = Input | Output

type t = {
  name : string;
  mutable next_wire_id : int;
  mutable next_cell_id : int;
  wires : (int, wire) Hashtbl.t;
  cells : (int, Cell.t) Hashtbl.t;
  mutable ports : (port_dir * wire) list;
}

val create : string -> t

(** {1 Wires} *)

val add_wire : t -> ?name:string -> width:int -> unit -> wire
val wire : t -> int -> wire
val wire_opt : t -> int -> wire option
val remove_wire : t -> int -> unit

val sig_of_wire : wire -> Bits.sigspec
(** Every bit of the wire, LSB first. *)

val bit_of_wire : wire -> Bits.bit
(** The single bit of a 1-bit wire. @raise Invalid_argument otherwise. *)

val fresh_sig : t -> width:int -> Bits.sigspec
(** A fresh anonymous wire, as a sigspec. *)

val fresh_bit : t -> Bits.bit

(** {1 Ports} *)

val add_input : t -> string -> width:int -> wire
val add_output : t -> string -> width:int -> wire
val set_output : t -> wire -> unit
val inputs : t -> wire list
val outputs : t -> wire list
val input_bits : t -> Bits.bit list
val output_bits : t -> Bits.bit list

(** {1 Cells} *)

val add_cell : t -> Cell.t -> int
(** Checks widths; returns the new cell id. *)

val cell : t -> int -> Cell.t
val cell_opt : t -> int -> Cell.t option
val replace_cell : t -> int -> Cell.t -> unit
val remove_cell : t -> int -> unit
val iter_cells : (int -> Cell.t -> unit) -> t -> unit
val fold_cells : (int -> Cell.t -> 'a -> 'a) -> t -> 'a -> 'a

val cell_ids : t -> int list
(** All cell ids, ascending. *)

val cell_count : t -> int
val wire_count : t -> int

(** {1 Builders} — create the cell and return its fresh output. *)

val mk_unary : t -> Cell.unary_op -> Bits.sigspec -> Bits.sigspec
val mk_binary : t -> Cell.binary_op -> Bits.sigspec -> Bits.sigspec -> Bits.sigspec
val mk_mux : t -> a:Bits.sigspec -> b:Bits.sigspec -> s:Bits.bit -> Bits.sigspec
val mk_pmux : t -> a:Bits.sigspec -> b:Bits.sigspec -> s:Bits.sigspec -> Bits.sigspec
val mk_dff : t -> d:Bits.sigspec -> Bits.sigspec

val mk_and : t -> Bits.bit -> Bits.bit -> Bits.bit
val mk_or : t -> Bits.bit -> Bits.bit -> Bits.bit
val mk_xor : t -> Bits.bit -> Bits.bit -> Bits.bit
val mk_not : t -> Bits.bit -> Bits.bit

val mk_eq_const : t -> Bits.sigspec -> int -> Bits.bit
(** [mk_eq_const c s v] is the bit [s == v]. *)

val copy : t -> t
(** Deep copy (fresh tables; wire/cell ids preserved). *)
