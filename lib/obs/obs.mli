(** Telemetry for the optimization flow: wall-clock span tracing, a
    process-wide metrics registry, and the minimal JSON support both need.

    Everything here is dependency-free (stdlib + unix for the clock) so any
    layer of the system can be instrumented without dune cycles.  The
    tracer is pay-for-what-you-use: with no sink installed,
    {!Trace.with_span} is a direct call to the thunk and records nothing. *)

(** Monotonic time source for every measurement in the system.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] (gettimeofday where the
    platform lacks it), so spans and benchmark baselines are immune to NTP
    slews and wall-clock jumps.  The epoch is arbitrary: readings are only
    meaningful subtracted from each other. *)
module Clock : sig
  val now_ns : unit -> int64
  (** Nanoseconds since an arbitrary origin; monotone non-decreasing. *)

  val now : unit -> float
  (** Same reading in seconds. *)

  val elapsed : int64 -> float
  (** [elapsed mark] is the seconds elapsed since [mark = now_ns ()]. *)
end

(** Minimal JSON: a locale-stable writer and a strict parser.

    The writer always uses ['.'] as the decimal separator and never emits
    [NaN]/[inf] (they become [null]), so output is loadable by any JSON
    consumer regardless of the process locale.  The parser exists so tests
    and the CI smoke step can check well-formedness without external
    tooling; it accepts exactly the JSON this module writes (objects,
    arrays, strings with the standard escapes, numbers, booleans, null). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val num_of_int : int -> t

  val to_string : ?pretty:bool -> t -> string
  (** [pretty] inserts newlines and two-space indentation. *)

  val parse : string -> (t, string) result
  (** [Error msg] carries a position-annotated description. *)

  val member : string -> t -> t option
  (** Field lookup on [Obj]; [None] on anything else. *)

  (** Shape accessors for schema decoding: the value if it has the asked
      shape, [None] otherwise.  [to_int] additionally requires the number
      to be integral. *)

  val to_num : t -> float option
  val to_int : t -> int option
  val to_str : t -> string option
  val to_list : t -> t list option

  (** [mem_* key j] = [member key j] filtered through the accessor. *)

  val mem_num : string -> t -> float option
  val mem_int : string -> t -> int option
  val mem_str : string -> t -> string option
  val mem_list : string -> t -> t list option

  val parse_jsonl_partial : string -> (t * int) list * int option
  (** Tolerant JSONL reader for logs a killed process may have torn:
      every complete leading line as [(value, byte offset of line
      start)], and [Some offset] of the first malformed line (the torn
      tail), [None] when the whole text parsed.  Blank lines are
      skipped; the scan stops at the first damage rather than resyncing
      past it. *)
end

(** The unified event bus: one ordered stream of run, pass, span,
    metric, provenance, SAT-query and budget events, fanned out to
    pluggable subscriber sinks.

    Two invariants hold by construction over the lifetime of a
    {!reset}: [seq] is gapless and strictly increasing, and [t_ns] is
    non-decreasing (monotonic clock readings, clamped).  A subscriber
    that raises is marked dead and skipped from then on — one failing
    sink never loses events for the others.  With no subscribers,
    {!emit} costs one list check. *)
module Event : sig
  type kind =
    | Run_start
    | Run_end
    | Pass_start  (** [name] = pass; pushes the current-pass stack *)
    | Pass_end  (** pops the current-pass stack *)
    | Span_open
    | Span_close
    | Metric
    | Provenance
    | Sat_query
    | Budget_exceeded
    | Note

  type t = {
    seq : int;  (** gapless, strictly increasing since {!reset} *)
    t_ns : int64;  (** monotonic stamp, non-decreasing along the stream *)
    kind : kind;
    name : string;  (** pass/span/query label; [""] when meaningless *)
    data : Json.t;  (** kind-specific payload; [Null] when none *)
  }

  val kind_name : kind -> string
  val kind_of_name : string -> kind option

  type subscription

  val subscribe : ?name:string -> (t -> unit) -> subscription
  (** Register a sink.  [name] labels it in {!failed_sinks}. *)

  val unsubscribe : subscription -> unit
  (** Remove the sink and run its close hook (file sinks close their
      channel). *)

  val subscriber_count : unit -> int

  val failed_sinks : unit -> (string * string) list
  (** Sinks disabled after raising, as [(name, first error)]. *)

  val enabled : unit -> bool
  (** [true] iff at least one subscriber is registered.  Guards payload
      construction on hot paths. *)

  val emit : ?name:string -> ?data:Json.t -> kind -> unit
  (** Stamp and deliver one event to every live subscriber.  Pass-stack
      upkeep ({!current_pass}) happens even with no subscribers. *)

  val current_pass : unit -> string option
  (** The innermost pass with a [Pass_start] not yet closed — what a
      flight-recorder dump names as in-flight. *)

  val emitted : unit -> int
  (** Events delivered (to at least one subscriber) since {!reset}. *)

  val reset : unit -> unit
  (** Drop all subscribers (running their close hooks), restart [seq],
      clear the pass stack.  Scopes the bus to one run, like
      {!Metrics.reset}. *)

  val to_json : t -> Json.t
  val of_json : Json.t -> (t, string) result

  val parse_jsonl_partial : string -> t list * int option
  (** Decode an [events.jsonl] stream tolerantly: all complete leading
      events, plus the byte offset of the torn tail if any. *)

  val attach_jsonl : path:string -> subscription
  (** Durable file sink: one compact JSON line per event, flushed per
      event.  Unsubscribing (or {!reset}) closes the file. *)

  val attach_progress : ?out:out_channel -> unit -> subscription
  (** Live TTY sink: one line per completed pass and per budget verdict,
      written to [out] (default [stderr]). *)

  (** {2 Domain-local capture}

      The bus state (subscribers, sequence counter, pass stack) is owned
      by the domain that installed the sinks.  Worker domains install a
      capture buffer instead: {!emit} appends to it, and the buffered
      events are replayed through the real bus when the worker's scope is
      merged at the join barrier.  Most callers want {!Scope}, which
      bundles this with metrics and provenance capture. *)

  type captured
  (** One buffered event: kind, name and payload, stamped at replay. *)

  val install_local : live:bool -> unit
  (** Install a capture buffer on the current domain.  [live] mirrors
      whether the owning bus had subscribers when the scope opened, so
      workers skip payload construction exactly when the owner would. *)

  val capture_local : unit -> captured list
  (** Drain the current domain's buffer (oldest first) and uninstall
      it; [[]] when none is installed. *)

  val replay : captured list -> unit
  (** Re-emit captured events on the current domain's real bus.  Stamps
      are assigned at replay time, so the merged stream keeps the
      gapless-[seq]/monotonic-[t_ns] invariants by construction. *)
end

(** Nested wall-clock spans with a single global sink.

    A span is recorded when it {e completes} (exceptions included), with
    its start timestamp, duration and nesting depth at entry.  Timestamps
    are microseconds relative to the sink's creation, which is exactly the
    [ts] convention of the Chrome [trace_event] format, so a recorded sink
    exports directly to a file that [chrome://tracing] or Perfetto opens. *)
module Trace : sig
  type event = {
    name : string;
    ts_us : float;  (** start, microseconds since the sink was created *)
    dur_us : float;
    depth : int;  (** nesting depth at span entry; 0 = top level *)
  }

  type sink

  val make_sink : unit -> sink

  val install : sink -> unit
  (** Subsequent {!with_span} calls record into this sink. *)

  val uninstall : unit -> unit

  val enabled : unit -> bool
  (** [true] iff a sink is installed.  Use to guard construction of
      dynamic span names, which would otherwise allocate on the fast
      path. *)

  val with_span : string -> (unit -> 'a) -> 'a
  (** Run the thunk inside a named span.  With no sink installed this is
      a direct call: no event is allocated or recorded. *)

  val events : sink -> event list
  (** In start order (parents before their children). *)

  val event_count : sink -> int

  val to_chrome_json : sink -> Json.t
  (** [{"traceEvents": [...], "displayTimeUnit": "ms"}] with one complete
      ("ph":"X") event per span. *)

  val write_chrome_json : path:string -> sink -> unit
end

(** Process-wide named counters and histograms.

    Handles are cheap records; [counter]/[histogram] get-or-create by
    name, so modules may resolve their instruments once at toplevel and
    bump them on hot paths with a single mutation.  {!reset} zeroes every
    registered instrument in place (handles stay valid), which is how the
    CLI and tests scope a measurement to one run. *)
module Metrics : sig
  type counter

  val counter : string -> counter
  val incr : counter -> unit
  val add : counter -> int -> unit
  val value : counter -> int

  type histogram

  val histogram : string -> histogram
  val observe : histogram -> float -> unit
  val observe_int : histogram -> int -> unit

  type histogram_stats = {
    count : int;
    sum : float;
    min_v : float;  (** 0 when empty *)
    max_v : float;  (** 0 when empty *)
    mean : float;  (** 0 when empty *)
    p50 : float;
        (** median over the retained sample window (the last 1024
            observations); 0 when empty *)
    p90 : float;  (** 90th percentile over the same window *)
  }

  val histogram_stats : histogram -> histogram_stats

  val counters : unit -> (string * int) list
  (** Sorted by name. *)

  val histograms : unit -> (string * histogram_stats) list
  (** Sorted by name. *)

  val reset : unit -> unit

  (** Allocation accounting for a measured region, via [Gc.quick_stat]
      deltas (no heap traversal, so marking is cheap enough for per-case
      benchmarking). *)

  type gc_mark

  val gc_mark : unit -> gc_mark

  type gc_delta = {
    minor_collections : int;
    major_collections : int;
    allocated_words : float;
        (** words allocated by the region: minor + major - promoted *)
    top_heap_words : int;
        (** peak heap words of the {e process} at delta time — a
            high-water mark, not a per-region figure *)
  }

  val gc_delta : gc_mark -> gc_delta
  val gc_delta_to_json : gc_delta -> Json.t

  val to_json : unit -> Json.t
  (** [{"counters": {...}, "histograms": {name: {count, sum, min, max,
      mean, p50, p90}}}]. *)

  (** {2 Domain-local capture}

      The registries above are owned by the main domain.  A worker domain
      installs a local overlay: handle operations re-resolve by name into
      it, and the overlay is captured and folded back into the owner's
      registry at the join barrier.  Counter totals and histogram
      [count]/[sum]/[min]/[max] merge exactly; the percentile sample
      window keeps the retained tail. *)

  type snapshot
  (** Captured contents of a local overlay. *)

  val empty_snapshot : snapshot

  val install_local : unit -> unit
  (** Install a fresh overlay on the current domain; subsequent handle
      operations on this domain hit the overlay, not the global
      registry. *)

  val capture_local : unit -> snapshot
  (** Drain and uninstall the current domain's overlay;
      {!empty_snapshot} when none is installed. *)

  val absorb : snapshot -> unit
  (** Fold a snapshot into the current domain's registry (the global one
      unless an overlay is installed here too). *)
end

(** Optimization provenance: one typed event per netlist mutation, so a run
    can be replayed as "which mechanism removed which cell".

    Same global-sink discipline as {!Trace}: with no sink installed,
    {!emit} is a single match on a ref and records nothing.  Events are
    serialized as JSONL (one compact JSON object per line) and aggregated
    into a per-mechanism area-attribution table mirroring the paper's
    ablation. *)
module Provenance : sig
  type mechanism =
    | Pruned  (** reachability pruning / dead-code removal *)
    | Rule of string  (** a named inference or folding rule *)
    | Sat  (** resolved by a SAT query *)
    | Memo  (** resolved by the cross-query verdict cache *)
    | Analysis  (** resolved by the abstract-interpretation rung *)
    | Restructure  (** muxtree restructuring *)

  type kind =
    | Cell_removed
    | Mux_bypassed
    | Const_resolved
    | Tree_rebuilt
    | Dead_branch

  type event = {
    kind : kind;
    cell : int;  (** netlist cell id *)
    pass : string;  (** emitting pass, e.g. ["sat_elim"] *)
    mechanism : mechanism;
    query : int option;  (** SAT query id when [mechanism] is [Sat] *)
    bits : int;  (** affected bit count (0 when not meaningful) *)
    area_delta : int;  (** estimated AIG-area change; negative = saved *)
  }

  type sink

  val make_sink : unit -> sink
  val install : sink -> unit
  val uninstall : unit -> unit
  val enabled : unit -> bool

  val emit :
    kind:kind ->
    cell:int ->
    pass:string ->
    mechanism:mechanism ->
    ?query:int ->
    ?bits:int ->
    ?area_delta:int ->
    unit ->
    unit
  (** Record one event into the installed sink; no-op without a sink. *)

  val events : sink -> event list
  (** In emission order. *)

  val count : sink -> int

  val kind_name : kind -> string
  val mechanism_name : mechanism -> string
  (** [Pruned -> "pruned"], [Rule r -> "rule:" ^ r], ... *)

  val mechanism_of_name : string -> mechanism option

  val event_to_json : event -> Json.t
  val event_of_json : Json.t -> (event, string) result

  val to_jsonl_string : sink -> string
  val write_jsonl : path:string -> sink -> unit

  val parse_jsonl : string -> (event list, string) result
  (** Strict: every non-blank line must be a well-formed event.  [Error]
      messages carry the 1-based line number. *)

  val parse_jsonl_partial : string -> event list * int option
  (** Tolerant: recover every complete leading record from a log whose
      writer may have been killed mid-line, and report the byte offset
      of the torn tail ([None] when the whole text parsed).  This is
      what [smartly report] uses on flight-recorder ledgers. *)

  (** One row of the area-attribution table. *)
  type attribution = {
    mech : string;  (** {!mechanism_name} of the row's mechanism *)
    cells_removed : int;
    muxes_bypassed : int;
    consts_resolved : int;  (** constant-substituted bits *)
    trees_rebuilt : int;
    dead_branches : int;
    area_saved : int;  (** positive = AIG area removed *)
  }

  val attribute : event list -> attribution list
  (** Grouped by mechanism, sorted by cells removed then area saved. *)

  val attribution_to_json : attribution -> Json.t

  val summary_json : event list -> Json.t
  (** [{"events", "cells_removed", "area_saved", "by_mechanism": [...]}] —
      the [provenance_summary] section of the [--json] report. *)

  (** {2 Domain-local capture}

      The installed sink is domain-local: {!install} on a worker domain
      never races the main domain's sink. *)

  val absorb : event list -> unit
  (** Append already-recorded events to the current domain's sink
      without re-emitting them on the bus; no-op without a sink. *)

  val capture_local : unit -> event list
  (** Drain the current domain's sink (oldest first) and uninstall it;
      [[]] when none is installed. *)
end

(** Flight recorder: a fixed-capacity ring of the most recent bus events.

    Subscribed for every ledgered run (one array store per event), so
    when a run dies — uncaught exception, SIGINT, budget kill — the last
    N events plus the in-flight pass name are dumpable after the fact. *)
module Ring : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] defaults to 256 and is clamped to at least 1. *)

  val attach : t -> Event.subscription
  (** Subscribe the ring to the event bus. *)

  val detach : t -> unit
  (** Unsubscribe; retained events stay readable. *)

  val push : t -> Event.t -> unit
  (** Record one event directly (what {!attach} wires up). *)

  val capacity : t -> int

  val seen : t -> int
  (** Total events pushed, including those the ring has since dropped. *)

  val events : t -> Event.t list
  (** The retained window, oldest first. *)

  val to_json : ?reason:string -> ?extra:(string * Json.t) list -> t -> Json.t
  (** The [smartly-flightrec-v1] document: reason, current pass (from
      {!Event.current_pass}), seen/retained counts, the retained events,
      and any [extra] top-level fields (e.g. hardest-query DIMACS
      refs). *)
end

(** Per-run ledger directory: [.smartly/runs/<run-id>/] with a manifest,
    the ordered event stream, and every artifact the run produces.

    The manifest is written at creation with status ["running"] and
    rewritten by {!finish}; a run that died leaves the ["running"]
    status, its flushed [events.jsonl] prefix, and (when the death was
    observed) a flight-recorder dump — enough for [smartly report] to
    reconstruct what happened without the writing process. *)
module Ledger : sig
  type t

  val default_root : string
  (** [".smartly/runs"], relative to the working directory. *)

  val fresh_run_id : unit -> string
  (** UTC timestamp plus pid, e.g. ["20260808-142233-91021"]. *)

  val create :
    ?root:string ->
    ?run_id:string ->
    ?attach_events:bool ->
    ?ring_capacity:int ->
    argv:string list ->
    env:Json.t ->
    unit ->
    t
  (** Make the run directory (suffixing the id on collision), write the
      initial manifest, attach the flight ring and — unless
      [attach_events:false] (bench measurement runs, where per-event
      file I/O would perturb timings) — an [events.jsonl] sink to the
      bus.  [env] is the caller's environment fingerprint (the CLI
      passes [Perf.Schema]'s). *)

  val dir : t -> string
  val run_id : t -> string

  val path : t -> string -> string
  (** [path t name] is [dir t ^ "/" ^ name] — where runs place their
      trace, provenance, SAT-dump and report artifacts. *)

  val ring : t -> Ring.t

  val dump_flight :
    ?extra:(string * Json.t) list -> reason:string -> t -> string
  (** Write [flightrec.json] from the ring and return its path.  Safe to
      call from a signal handler (OCaml runs handlers at safe points). *)

  val finish : ?extra:(string * Json.t) list -> status:string -> t -> unit
  (** Detach the sinks (closing [events.jsonl]) and rewrite the manifest
      with [status], an end timestamp, and any [extra] summary fields.
      Idempotent: only the first call acts. *)
end

(** Per-task observability scope for the parallel scheduler.

    A scope redirects every Obs write path — metrics, the event bus,
    provenance — into domain-local buffers on the executing domain, and
    merges them back into the coordinator's live state at the join
    barrier.  Captures merged in task order reproduce the sequential
    event stream exactly, which is what makes [--jobs N] output
    byte-identical to a sequential run. *)
module Scope : sig
  type spec
  (** What the coordinator's observability looked like when the scope
      family was opened: whether the bus had subscribers and whether a
      provenance sink was installed.  Immutable — safe to share across
      domains. *)

  val spec : unit -> spec
  (** Take on the coordinating domain before handing out tasks. *)

  type handle
  (** Returned by {!install}; remembers what installation displaced so
      {!capture} can restore it (needed when tasks run inline on the
      coordinating domain itself). *)

  val install : spec -> handle
  (** Begin a scope on the executing domain: fresh metrics overlay,
      event capture buffer (live iff the coordinator's bus was), and a
      fresh provenance sink iff the coordinator had one. *)

  type capture

  val capture : handle -> capture
  (** End the scope: drain all three buffers and restore what {!install}
      displaced. *)

  val empty_capture : capture

  val map_queries : (int -> int) -> capture -> capture
  (** Rewrite the SAT-query ids embedded in a capture — provenance
      [query] fields (typed events and their bus copies) and Sat_query
      bus events' ["q<id>"] name and ["id"] datum.  The scheduler uses
      this to renumber task-local ids into the global sequential
      numbering before merging. *)

  val merge : capture -> unit
  (** Fold a capture into the current domain's live state: metrics
      absorbed, provenance appended to the installed sink, bus events
      replayed — in that order. *)
end
