(** Top-level optimization flows.

    {!yosys} is the baseline [opt] loop with [opt_muxtree]; {!smartly}
    replaces [opt_muxtree] with SAT-based redundancy elimination and
    muxtree restructuring, keeping everything else identical — exactly the
    paper's experimental setup. *)

open Netlist

type result = {
  iterations : int;
  sat_reports : Sat_elim.report list;
  rebuild_reports : Restructure.report list;
  overruns : Budget.overrun list;
      (** passes that exceeded a {!Config} budget (each is also a
          [Budget_exceeded] event on the bus); the flow still completed,
          with those passes truncated and skipped thereafter *)
}

val yosys :
  ?after_pass:(string -> Circuit.t -> unit) -> Circuit.t -> Rtl_opt.Flow.report

val smartly :
  ?cfg:Config.t ->
  ?after_pass:(string -> Circuit.t -> unit) ->
  Circuit.t ->
  result
(** Interleaves expression folding, cell sharing, SAT elimination,
    restructuring and cleanup until a fixpoint (capped at 6 iterations —
    measured convergence is 2-4).  [after_pass] runs after each sub-pass
    (["opt_expr"], ["opt_merge"], ["sat_elim"], ["restructure"],
    ["opt_clean"]) with the circuit as that pass left it; the lint
    subsystem's invariant checker hooks in here.

    Each sub-pass is bracketed by [Pass_start]/[Pass_end] events on
    {!Obs.Event} and armed with the {!Config} budgets through
    {!Budget}: a pass that exceeds its budget is truncated (its inner
    loops poll the watchdog), reported via [Budget_exceeded], and
    skipped on subsequent iterations. *)

val optimize_and_measure :
  [ `None | `Yosys | `Smartly of Config.t ] -> Circuit.t -> int
(** Run the flow in place and return the resulting AIG area. *)
