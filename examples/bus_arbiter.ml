(* Bus arbiter with correlated controls: the wb_conmax-style scenario where
   SAT-based redundancy elimination shines.

   A priority arbiter grants the bus to the highest-priority requester; the
   datapath then re-tests the very request lines the grant was derived
   from.  Those inner muxes are redundant — their controls are implied by
   the grant — but only logic inference can see it: the control signals are
   *different* wires, so the Yosys baseline keeps everything.

     dune exec examples/bus_arbiter.exe *)

let arbiter =
  {|
module arbiter(input req0, input req1, input req2,
               input [7:0] d0, input [7:0] d1, input [7:0] d2,
               output reg [7:0] bus);
  wire g0;
  wire g1;
  wire g2;
  assign g0 = req0;                    // highest priority
  assign g1 = !req0 && req1;
  assign g2 = !req0 && !req1 && req2;
  always @* begin
    bus = 8'd0;
    if (g0) begin
      // inside the g0 branch, req0 is known to be 1: this test is dead
      if (req0) bus = d0; else bus = 8'd255;
    end
    if (g1) begin
      // g1 implies req0 = 0 and req1 = 1: both tests below are forced
      if (req0) bus = 8'd255; else begin
        if (req1) bus = d1; else bus = 8'd254;
      end
    end
    if (g2) begin
      if (req2) bus = d2; else bus = 8'd253;
    end
  end
endmodule
|}

let () =
  let circuit = Hdl.Elaborate.elaborate_string ~style:`Chain arbiter in
  let original = Netlist.Circuit.copy circuit in
  Printf.printf "arbiter as written: AIG area %d\n"
    (Aiger.Aigmap.aig_area circuit);

  let yosys_version = Netlist.Circuit.copy circuit in
  ignore (Smartly.Driver.yosys yosys_version);
  Printf.printf "Yosys baseline:     AIG area %d\n"
    (Aiger.Aigmap.aig_area yosys_version);

  let result = Smartly.Driver.smartly circuit in
  Printf.printf "smaRTLy:            AIG area %d\n"
    (Aiger.Aigmap.aig_area circuit);

  (* how were the redundancies found? *)
  List.iter
    (fun r ->
      if Smartly.Sat_elim.changed r then
        Fmt.pr "  sat_elim: %a@." Smartly.Sat_elim.pp_report r)
    result.Smartly.Driver.sat_reports;
  Fmt.pr "equivalence check: %a@." Equiv.pp_verdict
    (Equiv.check original circuit)
