(** Per-cell-kind statistics. *)

type t = {
  total : int;
  muxes : int;
  pmuxes : int;
  eqs : int;  (** $eq and $ne cells *)
  dffs : int;
  logic : int;  (** logic_* and reduce_* cells *)
  bitwise : int;  (** not/and/or/xor/xnor *)
  arith : int;  (** add/sub *)
  wires : int;
  mux_bits : int;  (** sum of mux widths: post-techmap 1-bit mux count *)
}

val of_circuit : Circuit.t -> t
val pp : Format.formatter -> t -> unit

val approx_cell_area : Cell.t -> int
(** Approximate AIG-node cost of one cell (a w-bit mux is [3w], a w-bit eq
    is [4w-1], inverters are free).  The unit used for provenance
    [area_delta] across the flow. *)
