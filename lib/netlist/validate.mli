(** Well-formedness checks: single drivers, no dangling reads, width
    consistency, acyclicity. *)

type issue =
  | Multiple_drivers of Bits.bit
  | Dangling_wire_bit of Bits.bit  (** read or exported but never driven *)
  | Width_violation of int * string  (** cell id, message *)
  | Unknown_wire of int
  | Cyclic

val pp_issue : Format.formatter -> issue -> unit

val check : Circuit.t -> issue list
val is_well_formed : Circuit.t -> bool

val check_exn : Circuit.t -> unit
(** @raise Failure listing all issues, if any. *)
