(** SAT-based redundancy elimination (paper Section II).

    The traversal mirrors the Yosys opt_muxtree baseline, but descendant
    controls are resolved with the full {!Engine} ladder instead of only by
    identical-signal matching, and data-port bits determined by the
    inference rules under the path condition become constants. *)

open Netlist

type report = {
  muxes_bypassed : int;  (** per-bit bypasses of resolved descendants *)
  data_bits_folded : int;
  dead_branches : int;  (** contradictory path conditions found *)
  engine : Engine.stats;
}

val pp_report : Format.formatter -> report -> unit

val run_once : Config.t -> Circuit.t -> report
(** One full traversal of every muxtree.  Interleave with opt_expr /
    opt_clean and iterate (see {!Driver.smartly}). *)

val run_tasks : Config.t -> Circuit.t -> jobs:int -> report
(** The sharded traversal: each muxtree root is one task on a
    [jobs]-worker domain pool ({!Pool.run}); workers optimize private
    circuit copies frozen at pass start, and the coordinator applies
    the recorded edit sets — provably disjoint across trees — in task
    order, so the result and the merged telemetry are byte-identical
    for every [jobs] value ([jobs = 1] runs the tasks inline).  Differs
    from {!run_once} only in SAT-session scope (per task rather than
    per run) and in trees seeing the pass-start snapshot rather than
    earlier trees' rewrites within the same traversal. *)

val run : ?jobs:int -> Config.t -> Circuit.t -> report
(** Dispatch on {!Config.t.jobs}: [run_tasks] when set, else
    [run_once]. *)

val changed : report -> bool
