(* Minimal ASCII table rendering for the benchmark harness and the CLI. *)

type align = Left | Right

type column = { title : string; align : align }

let column ?(align = Right) title = { title; align }

(* --- ANSI color --- *)

(* Off by default so tests, artifacts and piped output stay byte-stable;
   the CLIs flip it on after their own isatty/NO_COLOR check.  Colored
   cells still align because padding counts visible characters only. *)
let color_enabled = ref false

let set_color on = color_enabled := on

type color = Green | Red | Yellow | Dim

let sgr = function
  | Green -> "\027[32m"
  | Red -> "\027[31m"
  | Yellow -> "\027[33m"
  | Dim -> "\027[2m"

let colorize c s = if !color_enabled then sgr c ^ s ^ "\027[0m" else s

(* Visible width: skip CSI sequences (ESC '[' ... final byte 0x40-0x7e).
   That is the only escape family [colorize] emits, and counting anything
   else verbatim is the right conservative fallback. *)
let visible_length s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then acc
    else if s.[i] = '\027' && i + 1 < n && s.[i + 1] = '[' then (
      let j = ref (i + 2) in
      while !j < n && (s.[!j] < '\x40' || s.[!j] > '\x7e') do
        incr j
      done;
      go (min n (!j + 1)) acc)
    else go (i + 1) (acc + 1)
  in
  go 0 0

let pad align width s =
  let n = visible_length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ~columns ~(rows : string list list) : string =
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row i with
            | Some cell -> max acc (visible_length cell)
            | None -> acc)
          (String.length col.title)
          rows)
      columns
  in
  let buf = Buffer.create 512 in
  let sep =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let render_row cells =
    let padded =
      List.mapi
        (fun i col ->
          let cell = match List.nth_opt cells i with Some c -> c | None -> "" in
          let w = List.nth widths i in
          " " ^ pad col.align w cell ^ " ")
        columns
    in
    "|" ^ String.concat "|" padded ^ "|"
  in
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf
    (render_row (List.map (fun c -> c.title) columns) ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.add_string buf (sep ^ "\n");
  Buffer.contents buf

let print ~columns ~rows = print_string (render ~columns ~rows)

(* Formatting helpers, shared by the bench harness and the CLI so numbers
   render identically everywhere.  OCaml's Printf always uses '.' as the
   decimal separator whatever the process locale, which these helpers rely
   on; columns carrying them should use the default Right alignment. *)

let pct v =
  (* clamp negative zero so -0.00% never appears in reports *)
  let v = if v = 0.0 then 0.0 else v in
  Printf.sprintf "%.2f%%" v

let secs v = Printf.sprintf "%.2fs" v

let int_ v = string_of_int v
