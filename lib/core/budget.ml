(* Per-pass resource watchdog.

   Domain-local, like the metrics registry and the SAT log: the driver
   arms it before each pass with the configured wall-time / allocation
   limits, the expensive inner loops (the Engine sim-vs-SAT ladder, the
   Restructure root walk) poll [exhausted] and degrade gracefully —
   forgo the query, skip the tree — and the driver disarms it after the
   pass, collecting an overrun record if the budget tripped.

   The design constraint is the poll: [exhausted] sits inside
   Engine.determine, so with no budget armed it must reduce to one ref
   read, and with one armed to a clock read and a compare.  Once a limit
   trips the verdict is sticky until [disarm] — a pass that has blown
   its budget stays truncated rather than flapping. *)

type overrun = {
  pass : string;
  budget_ms : int option;
  elapsed_ms : float;
  alloc_budget_mw : float option;
  alloc_mw : float;  (* millions of words allocated while armed *)
  truncated : int;  (* work items abandoned after the budget tripped *)
}

type armed = {
  a_pass : string;
  a_deadline : int64 option;  (* Clock.now_ns at which the pass is over *)
  a_alloc_limit : float option;  (* minor-words reading not to exceed *)
  a_start_ns : int64;
  a_start_words : float;
  mutable a_tripped : bool;
  mutable a_truncated : int;
}

(* Domain-local: each scheduler worker polls (and trips) its own armed
   record; trip/truncation flags are folded back into the coordinator's
   at the join barrier ([merge_worker]). *)
let state : armed option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let m_exceeded = Obs.Metrics.counter "budget.exceeded"
let m_truncated = Obs.Metrics.counter "budget.truncated"

let arm ?(cfg = Config.default) ~pass () =
  match cfg.Config.pass_budget_ms, cfg.Config.pass_alloc_budget_mw with
  | None, None -> Domain.DLS.set state None
  | wall_ms, alloc_mw ->
    let now = Obs.Clock.now_ns () in
    let words = Gc.minor_words () in
    Domain.DLS.set state
      @@ Some
        {
          a_pass = pass;
          a_deadline =
            Option.map
              (fun ms -> Int64.add now (Int64.of_int (ms * 1_000_000)))
              wall_ms;
          a_alloc_limit = Option.map (fun mw -> words +. (mw *. 1e6)) alloc_mw;
          a_start_ns = now;
          a_start_words = words;
          a_tripped = false;
          a_truncated = 0;
        }

let armed () = Domain.DLS.get state <> None

let exhausted () =
  match Domain.DLS.get state with
  | None -> false
  | Some a ->
    a.a_tripped
    || begin
         let over =
           (match a.a_deadline with
           | Some d -> Int64.compare (Obs.Clock.now_ns ()) d > 0
           | None -> false)
           ||
           match a.a_alloc_limit with
           | Some limit -> Gc.minor_words () > limit
           | None -> false
         in
         if over then begin
           a.a_tripped <- true;
           Obs.Metrics.incr m_exceeded
         end;
         over
       end

let note_truncation () =
  match Domain.DLS.get state with
  | None -> ()
  | Some a ->
    a.a_truncated <- a.a_truncated + 1;
    Obs.Metrics.incr m_truncated

let disarm () =
  match Domain.DLS.get state with
  | None -> None
  | Some a ->
    Domain.DLS.set state None;
    if not a.a_tripped then None
    else begin
      let cfg_ms =
        Option.map
          (fun d ->
            Int64.to_int (Int64.div (Int64.sub d a.a_start_ns) 1_000_000L))
          a.a_deadline
      in
      let cfg_mw =
        Option.map (fun l -> (l -. a.a_start_words) /. 1e6) a.a_alloc_limit
      in
      Some
        {
          pass = a.a_pass;
          budget_ms = cfg_ms;
          elapsed_ms =
            Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) a.a_start_ns)
            /. 1e6;
          alloc_budget_mw = cfg_mw;
          alloc_mw = (Gc.minor_words () -. a.a_start_words) /. 1e6;
          truncated = a.a_truncated;
        }
    end

let reset () = Domain.DLS.set state None

(* --- worker propagation --- *)

type inherited = {
  i_pass : string;
  i_deadline : int64 option;
  i_alloc_mw : float option; (* remaining allowance, millions of words *)
}

(* Snapshot the armed budget for a worker domain.  The wall deadline is
   an absolute monotonic-clock reading, valid process-wide; the
   allocation limit is in the arming domain's (domain-local)
   [Gc.minor_words] units, so it travels as the remaining allowance and
   each worker re-anchors it on its own counter — every worker gets the
   full remaining allowance rather than a share, which only makes the
   watchdog more permissive, never spuriously strict. *)
let snapshot () : inherited option =
  match Domain.DLS.get state with
  | None -> None
  | Some a ->
    Some
      {
        i_pass = a.a_pass;
        i_deadline = a.a_deadline;
        i_alloc_mw =
          Option.map
            (fun limit -> Float.max 0.0 (limit -. Gc.minor_words ()) /. 1e6)
            a.a_alloc_limit;
      }

let adopt (i : inherited option) =
  match i with
  | None -> Domain.DLS.set state None
  | Some i ->
    let words = Gc.minor_words () in
    Domain.DLS.set state
      @@ Some
        {
          a_pass = i.i_pass;
          a_deadline = i.i_deadline;
          a_alloc_limit =
            Option.map (fun mw -> words +. (mw *. 1e6)) i.i_alloc_mw;
          a_start_ns = Obs.Clock.now_ns ();
          a_start_words = words;
          a_tripped = false;
          a_truncated = 0;
        }

(* Displace/restore the armed state around an inline task on the
   coordinator itself. *)
type saved = armed option

let save () : saved = Domain.DLS.get state
let restore (s : saved) = Domain.DLS.set state s

type worker_outcome = { w_tripped : bool; w_truncated : int }

let capture_worker () : worker_outcome =
  match Domain.DLS.get state with
  | None -> { w_tripped = false; w_truncated = 0 }
  | Some a ->
    Domain.DLS.set state None;
    { w_tripped = a.a_tripped; w_truncated = a.a_truncated }

(* Fold a worker's verdict into the coordinator's armed record, so the
   pass-level overrun report covers truncations that happened on any
   domain.  The worker already bumped the exceeded/truncated metrics in
   its own scope. *)
let merge_worker (w : worker_outcome) =
  match Domain.DLS.get state with
  | None -> ()
  | Some a ->
    if w.w_tripped then a.a_tripped <- true;
    a.a_truncated <- a.a_truncated + w.w_truncated

let overrun_to_json (o : overrun) : Obs.Json.t
    =
  Obs.Json.Obj
    ([ "pass", Obs.Json.Str o.pass ]
    @ (match o.budget_ms with
      | Some ms -> [ "budget_ms", Obs.Json.num_of_int ms ]
      | None -> [])
    @ [ "elapsed_ms", Obs.Json.Num o.elapsed_ms ]
    @ (match o.alloc_budget_mw with
      | Some mw -> [ "alloc_budget_mw", Obs.Json.Num mw ]
      | None -> [])
    @ [
        "alloc_mw", Obs.Json.Num o.alloc_mw;
        "truncated", Obs.Json.num_of_int o.truncated;
      ])
