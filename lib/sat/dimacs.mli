(** DIMACS CNF parsing, printing, and loading into a solver. *)

type cnf = { num_vars : int; clauses : int list list }

val parse_string : string -> cnf
(** @raise Invalid_argument on malformed input. *)

val parse_string_ext : string -> cnf * string list
(** Like {!parse_string}, also returning comment lines (leading ["c "]
    stripped) in file order — recorded query metadata lives there. *)

val to_string : ?comments:string list -> cnf -> string
(** [comments] are emitted first, one ["c "]-prefixed line each. *)

val load : cnf -> Solver.t
