(* Tests for the equivalence checker itself: positives, negatives,
   sequential boundaries, port mismatches, and a property against random
   mutations. *)

open Netlist

let check_bool = Alcotest.(check bool)

let expose c name (v : Bits.sigspec) =
  let y = Circuit.add_output c name ~width:(Bits.width v) in
  ignore
    (Circuit.add_cell c
       (Cell.Binary
          { op = Cell.Or; a = v; b = Bits.all_zero ~width:(Bits.width v);
            y = Circuit.sig_of_wire y }))

(* xor-swap identity: (a^b, a^(a^b)) computes (a^b, b) *)
let test_structural_vs_rewritten () =
  let c1 = Circuit.create "m" in
  let a = Circuit.add_input c1 "a" ~width:8 in
  let b = Circuit.add_input c1 "b" ~width:8 in
  let x = Circuit.mk_binary c1 Cell.Xor (Circuit.sig_of_wire a) (Circuit.sig_of_wire b) in
  let y = Circuit.mk_binary c1 Cell.Xor (Circuit.sig_of_wire a) x in
  expose c1 "o" y;
  let c2 = Circuit.create "m" in
  let _a = Circuit.add_input c2 "a" ~width:8 in
  let b2 = Circuit.add_input c2 "b" ~width:8 in
  expose c2 "o" (Circuit.sig_of_wire b2);
  check_bool "a^(a^b) = b" true (Equiv.is_equivalent c1 c2)

let test_add_commutes () =
  let mk swap =
    let c = Circuit.create "m" in
    let a = Circuit.add_input c "a" ~width:6 in
    let b = Circuit.add_input c "b" ~width:6 in
    let sa = Circuit.sig_of_wire a and sb = Circuit.sig_of_wire b in
    let s =
      if swap then Circuit.mk_binary c Cell.Add sb sa
      else Circuit.mk_binary c Cell.Add sa sb
    in
    expose c "o" s;
    c
  in
  check_bool "a+b = b+a" true (Equiv.is_equivalent (mk false) (mk true))

let test_sub_not_commutative () =
  let mk swap =
    let c = Circuit.create "m" in
    let a = Circuit.add_input c "a" ~width:6 in
    let b = Circuit.add_input c "b" ~width:6 in
    let sa = Circuit.sig_of_wire a and sb = Circuit.sig_of_wire b in
    let s =
      if swap then Circuit.mk_binary c Cell.Sub sb sa
      else Circuit.mk_binary c Cell.Sub sa sb
    in
    expose c "o" s;
    c
  in
  (match Equiv.check (mk false) (mk true) with
  | Equiv.Not_equivalent _ -> ()
  | Equiv.Equivalent | Equiv.Inconclusive ->
    Alcotest.fail "a-b should differ from b-a")

let test_missing_output_detected () =
  let c1 = Circuit.create "m" in
  let a = Circuit.add_input c1 "a" ~width:2 in
  expose c1 "o1" (Circuit.sig_of_wire a);
  let c2 = Circuit.create "m" in
  let a2 = Circuit.add_input c2 "a" ~width:2 in
  expose c2 "o2" (Circuit.sig_of_wire a2);
  check_bool "port mismatch" false (Equiv.is_equivalent c1 c2)

let test_dff_boundary () =
  (* same next-state logic through a register: equivalent; negated: not *)
  let mk invert =
    let c = Circuit.create "m" in
    let a = Circuit.add_input c "a" ~width:1 in
    let ab = Circuit.bit_of_wire a in
    let d = if invert then Circuit.mk_not c ab else ab in
    let q = Circuit.mk_dff c ~d:[| d |] in
    expose c "o" q;
    c
  in
  (* dff cell ids coincide (cell 0/1 layouts): same-name pseudo-ports *)
  check_bool "same logic equiv" true (Equiv.is_equivalent (mk false) (mk false));
  check_bool "inverted next-state caught" false
    (Equiv.is_equivalent (mk false) (mk true))

(* property: a random single-cell mutation of a circuit is detected unless
   it is semantically neutral (we only assert no false NOT-equivalents for
   the identity, and no false equivalents for an output inversion) *)
let prop_inversion_always_detected =
  QCheck.Test.make ~count:30 ~name:"output inversion is never equivalent"
    QCheck.(int_bound 100000)
    (fun seed ->
      let c = Circuit.create "m" in
      let ins =
        List.init 3 (fun i -> Circuit.add_input c (Printf.sprintf "i%d" i) ~width:1)
      in
      let pool = ref (List.map Circuit.bit_of_wire ins) in
      let st = ref (seed + 3) in
      let next () =
        st := (!st * 1103515245) + 12345;
        (!st lsr 16) land 0xFFF
      in
      for _ = 1 to 8 do
        let pick () = List.nth !pool (next () mod List.length !pool) in
        let bit =
          match next () mod 3 with
          | 0 -> Circuit.mk_and c (pick ()) (pick ())
          | 1 -> Circuit.mk_or c (pick ()) (pick ())
          | _ -> Circuit.mk_xor c (pick ()) (pick ())
        in
        pool := bit :: !pool
      done;
      let out = List.hd !pool in
      let c2 = Circuit.copy c in
      expose c "o" [| out |];
      let inverted = Circuit.mk_not c2 out in
      expose c2 "o" [| inverted |];
      check_bool "self" true (Equiv.is_equivalent c (Circuit.copy c));
      not (Equiv.is_equivalent c c2))

let () =
  Alcotest.run "equiv"
    [
      ( "cec",
        [
          Alcotest.test_case "xor identity" `Quick test_structural_vs_rewritten;
          Alcotest.test_case "add commutes" `Quick test_add_commutes;
          Alcotest.test_case "sub does not" `Quick test_sub_not_commutative;
          Alcotest.test_case "missing output" `Quick test_missing_output_detected;
          Alcotest.test_case "dff boundary" `Quick test_dff_boundary;
          QCheck_alcotest.to_alcotest prop_inversion_always_detected;
        ] );
    ]
