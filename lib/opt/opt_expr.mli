(** Constant folding and transparent-cell removal (Yosys [opt_expr]):
    constant-output cells fold, or-with-0 / and-with-1 / xor-with-0 /
    constant-select muxes pass through, [a == a] folds to 1.  Cells
    driving output ports are normalized to buffers instead of removed. *)

val run : Netlist.Circuit.t -> int
(** Run to fixpoint; returns the number of cells simplified away. *)
