(* RTL cells.

   Cell semantics follow the Yosys RTLIL conventions:
   - [Mux]:  y = s ? b : a           (s is a single bit)
   - [Pmux]: y = s[i] ? b[i*w +: w] : a, lowest set index wins
   - logic / reduce / compare cells produce a single-bit result
   - [Dff] is the only sequential cell; it is excluded from AIG area. *)

type unary_op =
  | Not
  | Logic_not
  | Reduce_and
  | Reduce_or
  | Reduce_xor
  | Reduce_bool

type binary_op =
  | And
  | Or
  | Xor
  | Xnor
  | Eq
  | Ne
  | Logic_and
  | Logic_or
  | Add
  | Sub

type t =
  | Unary of { op : unary_op; a : Bits.sigspec; y : Bits.sigspec }
  | Binary of { op : binary_op; a : Bits.sigspec; b : Bits.sigspec; y : Bits.sigspec }
  | Mux of { a : Bits.sigspec; b : Bits.sigspec; s : Bits.bit; y : Bits.sigspec }
  | Pmux of { a : Bits.sigspec; b : Bits.sigspec; s : Bits.sigspec; y : Bits.sigspec }
  | Dff of { d : Bits.sigspec; q : Bits.sigspec }

let unary_op_name = function
  | Not -> "$not"
  | Logic_not -> "$logic_not"
  | Reduce_and -> "$reduce_and"
  | Reduce_or -> "$reduce_or"
  | Reduce_xor -> "$reduce_xor"
  | Reduce_bool -> "$reduce_bool"

let binary_op_name = function
  | And -> "$and"
  | Or -> "$or"
  | Xor -> "$xor"
  | Xnor -> "$xnor"
  | Eq -> "$eq"
  | Ne -> "$ne"
  | Logic_and -> "$logic_and"
  | Logic_or -> "$logic_or"
  | Add -> "$add"
  | Sub -> "$sub"

let name = function
  | Unary { op; _ } -> unary_op_name op
  | Binary { op; _ } -> binary_op_name op
  | Mux _ -> "$mux"
  | Pmux _ -> "$pmux"
  | Dff _ -> "$dff"

let is_combinational = function
  | Dff _ -> false
  | Unary _ | Binary _ | Mux _ | Pmux _ -> true

(* The sigspec driven by this cell. *)
let output = function
  | Unary { y; _ } | Binary { y; _ } | Mux { y; _ } | Pmux { y; _ } -> y
  | Dff { q; _ } -> q

(* All input sigspecs, in port order. *)
let inputs = function
  | Unary { a; _ } -> [ a ]
  | Binary { a; b; _ } -> [ a; b ]
  | Mux { a; b; s; _ } -> [ a; b; [| s |] ]
  | Pmux { a; b; s; _ } -> [ a; b; s ]
  | Dff { d; _ } -> [ d ]

let input_bits c = List.concat_map Array.to_list (inputs c)
let output_bits c = Array.to_list (output c)

(* Control bits: the select inputs that steer a mux/pmux, empty otherwise. *)
let control_bits = function
  | Mux { s; _ } -> [ s ]
  | Pmux { s; _ } -> Array.to_list s
  | Unary _ | Binary _ | Dff _ -> []

exception Width_error of string

let check_widths c =
  let fail fmt = Fmt.kstr (fun m -> raise (Width_error m)) fmt in
  let w = Bits.width in
  match c with
  | Unary { op = Not; a; y } ->
    if w a <> w y then fail "$not: |a|=%d <> |y|=%d" (w a) (w y)
  | Unary { op = Logic_not | Reduce_and | Reduce_or | Reduce_xor | Reduce_bool; a = _; y }
    -> if w y <> 1 then fail "unary reduce: |y|=%d <> 1" (w y)
  | Binary { op = And | Or | Xor | Xnor | Add | Sub; a; b; y } ->
    if w a <> w b || w a <> w y then
      fail "%s: widths %d/%d/%d differ" (name c) (w a) (w b) (w y)
  | Binary { op = Eq | Ne; a; b; y } ->
    if w a <> w b then fail "$eq/$ne: |a|=%d <> |b|=%d" (w a) (w b);
    if w y <> 1 then fail "$eq/$ne: |y|=%d <> 1" (w y)
  | Binary { op = Logic_and | Logic_or; a = _; b = _; y } ->
    if w y <> 1 then fail "$logic_*: |y|=%d <> 1" (w y)
  | Mux { a; b; s = _; y } ->
    if w a <> w b || w a <> w y then
      fail "$mux: widths %d/%d/%d differ" (w a) (w b) (w y)
  | Pmux { a; b; s; y } ->
    if w a <> w y then fail "$pmux: |a|=%d <> |y|=%d" (w a) (w y);
    if w s = 0 then fail "$pmux: empty selector";
    if w b <> w s * w a then
      fail "$pmux: |b|=%d <> |s|*|a|=%d" (w b) (w s * w a)
  | Dff { d; q } ->
    if w d <> w q then fail "$dff: |d|=%d <> |q|=%d" (w d) (w q)

(* Apply [f] to every input bit (outputs untouched).  Used by rewiring
   passes to substitute signals. *)
let map_input_bits f c =
  let m = Array.map f in
  match c with
  | Unary u -> Unary { u with a = m u.a }
  | Binary b -> Binary { b with a = m b.a; b = m b.b }
  | Mux x -> Mux { x with a = m x.a; b = m x.b; s = f x.s }
  | Pmux p -> Pmux { p with a = m p.a; b = m p.b; s = m p.s }
  | Dff d -> Dff { d with d = m d.d }

let pp ppf c =
  let p fmt = Fmt.pf ppf fmt in
  match c with
  | Unary { op; a; y } ->
    p "%s a=%a y=%a" (unary_op_name op) Bits.pp a Bits.pp y
  | Binary { op; a; b; y } ->
    p "%s a=%a b=%a y=%a" (binary_op_name op) Bits.pp a Bits.pp b Bits.pp y
  | Mux { a; b; s; y } ->
    p "$mux a=%a b=%a s=%a y=%a" Bits.pp a Bits.pp b Bits.pp_bit s Bits.pp y
  | Pmux { a; b; s; y } ->
    p "$pmux a=%a b=%a s=%a y=%a" Bits.pp a Bits.pp b Bits.pp s Bits.pp y
  | Dff { d; q } -> p "$dff d=%a q=%a" Bits.pp d Bits.pp q
