(* Quickstart: parse a Verilog module, optimize it with smaRTLy, and verify
   the result.

     dune exec examples/quickstart.exe *)

let source =
  {|
module quickstart(input [1:0] s, input [7:0] p0, input [7:0] p1,
                  input [7:0] p2, input [7:0] p3, output reg [7:0] y);
  always @* begin
    case (s)
      2'b00: y = p0;
      2'b01: y = p1;
      2'b10: y = p2;
      default: y = p3;
    endcase
  end
endmodule
|}

let () =
  (* 1. elaborate the Verilog subset into a netlist *)
  let circuit = Hdl.Elaborate.elaborate_string ~style:`Chain source in
  let original = Netlist.Circuit.copy circuit in
  Printf.printf "parsed %s: %d cells, AIG area %d\n"
    circuit.Netlist.Circuit.name
    (Netlist.Circuit.cell_count circuit)
    (Aiger.Aigmap.aig_area circuit);

  (* 2. run the smaRTLy flow (SAT-based elimination + restructuring) *)
  let result = Smartly.Driver.smartly circuit in
  Printf.printf "optimized in %d flow iterations: AIG area %d\n"
    result.Smartly.Driver.iterations
    (Aiger.Aigmap.aig_area circuit);

  (* 3. inspect what changed *)
  let st = Netlist.Stats.of_circuit circuit in
  Printf.printf "muxes: %d, eq gates: %d (the eq gates are gone: the tree\n"
    st.Netlist.Stats.muxes st.Netlist.Stats.eqs;
  Printf.printf "is rebuilt over the selector bits, paper Fig. 7)\n";

  (* 4. prove the optimization is sound *)
  Fmt.pr "equivalence check: %a@." Equiv.pp_verdict
    (Equiv.check original circuit)
