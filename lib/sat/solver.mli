(** A CDCL SAT solver in the MiniSAT tradition: two-watched-literal
    propagation, first-UIP learning with clause minimization, VSIDS with
    phase saving, Luby restarts, learnt-database reduction, and incremental
    solving under assumptions. *)

type t

type result = Sat | Unsat | Unknown

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable (0-based). *)

val num_vars : t -> int
val num_clauses : t -> int
val num_conflicts : t -> int

val add_clause : t -> Lit.t list -> unit
(** Add a problem clause.  Tautologies are dropped; duplicate and falsified
    literals are cleaned.  Safe between incremental [solve] calls (the
    trail is rewound to level 0 first). *)

val solve : ?assumptions:Lit.t list -> ?budget:int -> t -> result
(** Solve under the given assumption literals.  [budget] caps the number
    of total conflicts before giving up with [Unknown].  After [Sat] the
    model remains readable until the next mutation. *)

val model_value : t -> int -> bool
(** Value of a variable in the last model (phase-saved default when the
    variable was unconstrained). *)

val release_model : t -> unit
(** Rewind the trail after reading a model. *)

val value_var : t -> int -> int
(** Current assignment of a variable: 1 true, 0 false, -1 unassigned. *)

val value_lit : t -> Lit.t -> int
(** Current assignment of a literal: 1 true, 0 false, -1 unassigned. *)

val stats : t -> int * int * int
(** (conflicts, decisions, propagations), cumulative over the solver's
    lifetime. *)

(** Telemetry of one [solve] call, as opposed to the process-lifetime
    totals of {!stats}. *)
type solve_stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  wall_s : float;
}

val last_solve_stats : t -> solve_stats
(** Deltas and wall time of the most recent {!solve} call (all zero before
    the first call). *)
