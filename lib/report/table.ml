(* Minimal ASCII table rendering for the benchmark harness and the CLI. *)

type align = Left | Right

type column = { title : string; align : align }

let column ?(align = Right) title = { title; align }

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ~columns ~(rows : string list list) : string =
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row i with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          (String.length col.title)
          rows)
      columns
  in
  let buf = Buffer.create 512 in
  let sep =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let render_row cells =
    let padded =
      List.mapi
        (fun i col ->
          let cell = match List.nth_opt cells i with Some c -> c | None -> "" in
          let w = List.nth widths i in
          " " ^ pad col.align w cell ^ " ")
        columns
    in
    "|" ^ String.concat "|" padded ^ "|"
  in
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf
    (render_row (List.map (fun c -> c.title) columns) ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.add_string buf (sep ^ "\n");
  Buffer.contents buf

let print ~columns ~rows = print_string (render ~columns ~rows)

(* Formatting helpers, shared by the bench harness and the CLI so numbers
   render identically everywhere.  OCaml's Printf always uses '.' as the
   decimal separator whatever the process locale, which these helpers rely
   on; columns carrying them should use the default Right alignment. *)

let pct v =
  (* clamp negative zero so -0.00% never appears in reports *)
  let v = if v = 0.0 then 0.0 else v in
  Printf.sprintf "%.2f%%" v

let secs v = Printf.sprintf "%.2fs" v

let int_ v = string_of_int v
