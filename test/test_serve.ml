(* Serve daemon smoke tests: a 3-job batch over a socketpair, per-job
   smartly-report-v1 validation, warm-cache behavior across identical
   jobs, and error isolation (a bad job must not take down the batch). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let load ~kind source =
  match kind with
  | "profile" -> (
    match Workloads.Profiles.by_name source with
    | Some p -> Ok (Workloads.Profiles.circuit p)
    | None -> Error (Printf.sprintf "unknown profile %s" source))
  | k -> Error (Printf.sprintf "unknown kind %s" k)

let daemon () = Smartly.Serve.create ~load ()

let field name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "report missing field %S" name

let num name j =
  match field name j with
  | Obs.Json.Num f -> f
  | _ -> Alcotest.failf "field %S not a number" name

let str name j =
  match field name j with
  | Obs.Json.Str s -> s
  | _ -> Alcotest.failf "field %S not a string" name

(* Every well-formed job report carries the full smartly-report-v1
   surface. *)
let validate_report j =
  check_string "schema" "smartly-report-v1" (str "schema" j);
  check_string "op" "optimize" (str "op" j);
  check_string "status" "ok" (str "status" j);
  let area = field "area" j in
  let before = int_of_float (num "before" area) in
  let after = int_of_float (num "after" area) in
  check_bool "area before positive" true (before > 0);
  check_bool "area monotone" true (after <= before);
  check_bool "wall_seconds nonneg" true (num "wall_seconds" j >= 0.0);
  check_bool "iterations positive" true (num "iterations" j >= 1.0);
  (match field "memo" j with
  | Obs.Json.Obj _ -> ()
  | _ -> Alcotest.fail "memo section not an object");
  (match field "replay" j with
  | Obs.Json.Obj _ -> ()
  | _ -> Alcotest.fail "replay section not an object");
  match field "budget" j with
  | Obs.Json.List _ -> ()
  | _ -> Alcotest.fail "budget section not a list"

(* --- handle: protocol surface without any transport --- *)

let test_handle_protocol () =
  let t = daemon () in
  let resp line =
    let j, continue = Smartly.Serve.handle t line in
    (j, continue)
  in
  let ping, c1 = resp {|{"op":"ping"}|} in
  check_string "ping ok" "ok" (str "status" ping);
  check_bool "ping continues" true c1;
  let r1, _ =
    resp {|{"op":"optimize","id":"a","kind":"profile","source":"mux_chain"}|}
  in
  validate_report r1;
  check_string "id echoed" "a" (str "id" r1);
  let bad, cb = resp {|{"op":"optimize","source":"no_such_profile"}|} in
  check_string "bad job errors" "error" (str "status" bad);
  check_bool "daemon survives bad job" true cb;
  let unknown, _ = resp {|{"op":"frobnicate"}|} in
  check_string "unknown op errors" "error" (str "status" unknown);
  let stats, _ = resp {|{"op":"stats"}|} in
  check_int "jobs ok" 1 (int_of_float (num "jobs_ok" stats));
  check_int "jobs failed" 1 (int_of_float (num "jobs_failed" stats));
  let _, cs = resp {|{"op":"shutdown"}|} in
  check_bool "shutdown stops" false cs

(* --- run: a 3-job batch over a socketpair --- *)

let test_socketpair_batch () =
  let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let req = Unix.out_channel_of_descr client in
  List.iter
    (fun l ->
      output_string req l;
      output_char req '\n')
    [
      {|{"op":"optimize","id":"j1","kind":"profile","source":"mux_chain"}|};
      {|{"op":"optimize","id":"j2","kind":"profile","source":"mux_chain"}|};
      {|{"op":"optimize","id":"j3","kind":"profile","source":"mux_chain","jobs":2}|};
      {|{"op":"stats"}|};
      {|{"op":"shutdown"}|};
    ];
  flush req;
  let t = daemon () in
  let ic = Unix.in_channel_of_descr server in
  let oc = Unix.out_channel_of_descr server in
  let shutdown = Smartly.Serve.run t ic oc in
  check_bool "client requested shutdown" true shutdown;
  flush oc;
  let resp = Unix.in_channel_of_descr client in
  let read_json () =
    match Obs.Json.parse (input_line resp) with
    | Ok j -> j
    | Error e -> Alcotest.failf "bad response line: %s" e
  in
  let r1 = read_json () in
  let r2 = read_json () in
  let r3 = read_json () in
  List.iter validate_report [ r1; r2; r3 ];
  check_string "ids in order" "j1,j2,j3"
    (String.concat "," [ str "id" r1; str "id" r2; str "id" r3 ]);
  (* identical jobs must report identical areas, and the warm caches
     must actually engage on the repeats *)
  check_bool "areas agree across the batch" true
    (num "after" (field "area" r1) = num "after" (field "area" r2)
    && num "after" (field "area" r2) = num "after" (field "area" r3));
  let stats = read_json () in
  check_int "three jobs served" 3 (int_of_float (num "jobs_ok" stats));
  let replay_hits = num "hits" (field "replay" stats) in
  check_bool "repeat jobs replayed tasks" true (replay_hits > 0.0);
  let shutdown_ack = read_json () in
  check_string "shutdown acked" "ok" (str "status" shutdown_ack);
  List.iter Unix.close [ client; server ]

let () =
  Alcotest.run "serve"
    [
      ( "daemon",
        [
          Alcotest.test_case "protocol" `Quick test_handle_protocol;
          Alcotest.test_case "socketpair batch" `Quick test_socketpair_batch;
        ] );
    ]
