(* DIMACS CNF parsing and printing — useful for debugging the solver against
   external instances and for dumping sub-graph queries. *)

type cnf = { num_vars : int; clauses : int list list (* DIMACS ints *) }

(* [parse_string_ext] additionally returns the comment lines (with the
   leading "c" and one following space stripped) in file order; the
   replay subcommand reads recorded query metadata from them. *)
let parse_string_ext text : cnf * string list =
  let num_vars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let comments = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         if line = "" then ()
         else if line.[0] = 'c' then begin
           let body =
             if String.length line >= 2 && line.[1] = ' ' then
               String.sub line 2 (String.length line - 2)
             else String.sub line 1 (String.length line - 1)
           in
           comments := body :: !comments
         end
         else if line.[0] = 'p' then begin
           match String.split_on_char ' ' line |> List.filter (( <> ) "") with
           | [ "p"; "cnf"; nv; _nc ] -> num_vars := int_of_string nv
           | _ -> invalid_arg "Dimacs.parse_string: bad problem line"
         end
         else
           String.split_on_char ' ' line
           |> List.filter (( <> ) "")
           |> List.iter (fun tok ->
                  let v = int_of_string tok in
                  if v = 0 then begin
                    clauses := List.rev !current :: !clauses;
                    current := []
                  end
                  else current := v :: !current));
  if !current <> [] then clauses := List.rev !current :: !clauses;
  { num_vars = !num_vars; clauses = List.rev !clauses }, List.rev !comments

let parse_string text : cnf = fst (parse_string_ext text)

let to_string ?(comments = []) (c : cnf) =
  let buf = Buffer.create 256 in
  List.iter
    (fun line -> Buffer.add_string buf ("c " ^ line ^ "\n"))
    comments;
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" c.num_vars (List.length c.clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) clause;
      Buffer.add_string buf "0\n")
    c.clauses;
  Buffer.contents buf

(* Load a parsed CNF into a fresh solver. *)
let load (c : cnf) : Solver.t =
  let s = Solver.create () in
  let vars = Array.init c.num_vars (fun _ -> Solver.new_var s) in
  List.iter
    (fun clause ->
      let lits =
        List.map
          (fun d ->
            let v = vars.(abs d - 1) in
            Lit.of_var ~negated:(d < 0) v)
          clause
      in
      Solver.add_clause s lits)
    c.clauses;
  s
