(* Well-formedness checks for circuits.  Used by tests, the lint
   subsystem and the per-pass invariant checker. *)

type issue =
  | Multiple_drivers of Bits.bit
  | Dangling_wire_bit of Bits.bit (* read but never driven *)
  | Width_violation of int * string (* cell id, message *)
  | Unknown_wire of int (* referenced wire id missing from the wire table *)
  | Cyclic of int list (* cell ids on one combinational cycle *)

let pp_issue ppf = function
  | Multiple_drivers b -> Fmt.pf ppf "multiple drivers for %a" Bits.pp_bit b
  | Dangling_wire_bit b -> Fmt.pf ppf "bit %a read but undriven" Bits.pp_bit b
  | Width_violation (id, m) -> Fmt.pf ppf "cell %d: %s" id m
  | Unknown_wire id -> Fmt.pf ppf "unknown wire %d" id
  | Cyclic [] -> Fmt.string ppf "combinational cycle"
  | Cyclic (first :: _ as cells) ->
    (* close the loop in the printout: 3 -> 7 -> 3 *)
    Fmt.pf ppf "combinational cycle: %a -> %d"
      Fmt.(list ~sep:(any " -> ") int)
      cells first

(* Shortest combinational cycle through any cell of [seed], found by BFS
   over the cell fanout graph.  [seed] comes from the DFS cycle raised by
   {!Topo.sort}, so a cycle through one of its cells always exists. *)
let shortest_cycle (c : Circuit.t) (seed : int list) : int list =
  let index = Index.build c in
  let successors id =
    (* combinational cells reading any output bit of [id] *)
    let cell = Circuit.cell c id in
    List.concat_map
      (fun b -> Index.readers index b)
      (Cell.output_bits cell)
    |> List.sort_uniq compare
    |> List.filter (fun rid -> Cell.is_combinational (Circuit.cell c rid))
  in
  let best = ref [] in
  let consider cycle =
    if !best = [] || List.length cycle < List.length !best then best := cycle
  in
  List.iter
    (fun start ->
      (* BFS from [start]'s successors back to [start] *)
      let parent = Hashtbl.create 64 in
      let queue = Queue.create () in
      let found = ref false in
      List.iter
        (fun s ->
          if not (Hashtbl.mem parent s) then begin
            Hashtbl.replace parent s start;
            Queue.push s queue
          end)
        (successors start);
      while (not !found) && not (Queue.is_empty queue) do
        let id = Queue.pop queue in
        if id = start then found := true
        else
          List.iter
            (fun s ->
              if not (Hashtbl.mem parent s) then begin
                Hashtbl.replace parent s id;
                Queue.push s queue
              end)
            (successors id)
      done;
      if !found then begin
        (* walk parents back from [start] to recover the cycle in fanout
           order: start -> n1 -> ... -> nk (-> start) *)
        let rec back acc id =
          let p = Hashtbl.find parent id in
          if p = start then p :: acc else back (p :: acc) p
        in
        consider (back [] start)
      end)
    seed;
  if !best = [] then seed else !best

let check (c : Circuit.t) : issue list =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  let driven = Bits.Bit_tbl.create 256 in
  List.iter
    (fun b -> Bits.Bit_tbl.replace driven b ())
    (Circuit.input_bits c);
  let check_wire_ref b =
    match b with
    | Bits.Of_wire (wid, off) -> (
      match Circuit.wire_opt c wid with
      | None -> add (Unknown_wire wid)
      | Some w -> if off < 0 || off >= w.Circuit.width then add (Unknown_wire wid))
    | Bits.C0 | Bits.C1 | Bits.Cx -> ()
  in
  Circuit.iter_cells
    (fun id cell ->
      (match Cell.check_widths cell with
      | () -> ()
      | exception Cell.Width_error m -> add (Width_violation (id, m)));
      List.iter check_wire_ref (Cell.input_bits cell);
      List.iter
        (fun b ->
          check_wire_ref b;
          if Bits.Bit_tbl.mem driven b then add (Multiple_drivers b)
          else Bits.Bit_tbl.replace driven b ())
        (Cell.output_bits cell))
    c;
  (* every bit read by a cell or exported as an output must be driven *)
  let check_read b =
    if (not (Bits.is_const b)) && not (Bits.Bit_tbl.mem driven b) then
      add (Dangling_wire_bit b)
  in
  Circuit.iter_cells
    (fun _ cell -> List.iter check_read (Cell.input_bits cell))
    c;
  List.iter check_read (Circuit.output_bits c);
  (match Topo.sort c with
  | _ -> ()
  | exception Topo.Combinational_cycle dfs_cycle ->
    add (Cyclic (shortest_cycle c dfs_cycle)));
  List.rev !issues

let is_well_formed c = check c = []

let check_exn c =
  match check c with
  | [] -> ()
  | issues ->
    let msg = Fmt.str "@[<v>%a@]" (Fmt.list pp_issue) issues in
    failwith ("Validate.check_exn: " ^ msg)
