(** AST-level lint rules (HDL001..HDL005).

    All rules run on the located AST, before elaboration, so they can
    point at source lines even for constructs the elaborator rewrites
    away.  Case-coverage rules mirror the elaborator's pattern semantics
    exactly: [z] bits and bits beyond the pattern width are wildcards,
    and a [1] bit beyond the subject width makes the pattern unmatchable.

    Rules needing value enumeration (HDL001 coverage, HDL002
    reachability) run only when the case subject is at most
    {!coverage_limit} bits wide; wider cases degrade to textual
    duplicate-pattern detection. *)

val coverage_limit : int
(** 16: case subjects up to this width are coverage-checked by
    enumeration (a 2{^16}-bit set is 8 KiB). *)

val check : Hdl.Ast.module_ -> Diag.t list
(** Sorted by severity, then rule, then source position. *)
