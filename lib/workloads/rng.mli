(** Deterministic splitmix-style RNG: identical seeds regenerate identical
    circuits on every run. *)

type t

val create : seed:int -> t

val next : t -> int
(** A non-negative pseudo-random int. *)

val int : t -> int -> int
(** Uniform in [0, bound). @raise Invalid_argument when bound <= 0. *)

val range : t -> int -> int -> int
(** Uniform in [lo, hi], inclusive. *)

val bool : t -> bool

val chance : t -> int -> bool
(** True with probability pct/100. *)

val choice : t -> 'a list -> 'a
val shuffle : t -> 'a list -> 'a list
val sample : t -> int -> 'a list -> 'a list
