(** The composite lint pipeline the CLI and tests drive.

    [lint_source] runs the whole stack on one Verilog source: parse, AST
    rules, elaborate, netlist rules.  Frontend failures (lex, parse,
    elaboration) become located [HDL000] error diagnostics instead of
    exceptions, so linting a broken file still produces a report. *)

val lint_source : ?style:Hdl.Elaborate.case_style -> string -> Diag.t list

val lint_circuit : Netlist.Circuit.t -> Diag.t list
(** Netlist layer only ({!Rules_netlist.check}); for circuits with no
    source text, e.g. workload profiles built programmatically. *)

val report_json : (string * Diag.t list) list -> Obs.Json.t
(** The [--json] report: [{"schema": "smartly-lint-v1", "sources": [...],
    "errors": N, "warnings": N, "infos": N}] with one entry per linted
    source carrying its name and diagnostics. *)
