(* Work-stealing domain pool tests: result indexing across worker
   counts, per-worker init, deterministic exception propagation, and
   portfolio racing. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Results come back indexed by task for every worker count, including
   jobs > tasks and the inline jobs = 1 path. *)
let test_indexed_results () =
  List.iter
    (fun jobs ->
      let r =
        Pool.run ~jobs ~init:(fun () -> ()) ~task:(fun () i -> i * i) 17
      in
      check_int "length" 17 (Array.length r);
      Array.iteri
        (fun i v -> check_int (Printf.sprintf "task %d" i) (i * i) v)
        r)
    [ 1; 2; 4; 32 ]

let test_zero_tasks () =
  let r = Pool.run ~jobs:4 ~init:(fun () -> ()) ~task:(fun () i -> i) 0 in
  check_int "empty" 0 (Array.length r)

(* Every worker calls [init] exactly once and owns its state: the sum of
   per-worker task counts equals the task count. *)
let test_worker_state () =
  let inits = Atomic.make 0 in
  let r =
    Pool.run ~jobs:3
      ~init:(fun () ->
        Atomic.incr inits;
        ref 0)
      ~task:(fun seen _ ->
        incr seen;
        seen)
      12
  in
  let distinct =
    List.fold_left
      (fun acc seen -> if List.memq seen acc then acc else seen :: acc)
      [] (Array.to_list r)
  in
  let total = List.fold_left (fun acc seen -> acc + !seen) 0 distinct in
  check_int "all tasks ran on some worker" 12 total;
  check_bool "workers <= jobs" true (List.length distinct <= 3);
  (* min(jobs, n) workers each init once; on a loaded box some may
     lose every race for a task, so distinct states can be fewer *)
  check_int "inits = min jobs n" 3 (Atomic.get inits)

(* The lowest-indexed failing task's exception surfaces — the same one a
   sequential left-to-right run would raise first — and the other tasks
   still ran to completion. *)
let test_exception_order () =
  List.iter
    (fun jobs ->
      let ran = Array.make 10 false in
      match
        Pool.run ~jobs ~init:(fun () -> ())
          ~task:(fun () i ->
            ran.(i) <- true;
            if i = 3 || i = 7 then failwith (Printf.sprintf "task %d" i))
          10
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        check_bool "lowest index wins" true (msg = "task 3");
        Array.iteri
          (fun i b -> check_bool (Printf.sprintf "ran %d" i) true b)
          ran)
    [ 1; 4 ]

(* --- race --- *)

let test_race_single_inline () =
  match Pool.race [ (fun stop -> if stop () then None else Some 42) ] with
  | Some v -> check_int "inline winner" 42 v
  | None -> Alcotest.fail "single candidate must win"

let test_race_winner () =
  (* the fast candidate wins; the slow one observes the stop flag and
     bails out instead of spinning forever *)
  let bailed = Atomic.make false in
  let fast _stop = Some "fast" in
  let slow stop =
    let rec spin n =
      if stop () then begin
        Atomic.set bailed true;
        None
      end
      else if n = 0 then Some "slow"
      else spin (n - 1)
    in
    spin max_int
  in
  (match Pool.race [ slow; fast ] with
  | Some w -> check_bool "some candidate won" true (w = "fast" || w = "slow")
  | None -> Alcotest.fail "a candidate returned Some");
  check_bool "race joined" true true

let test_race_all_none () =
  check_bool "no winner" true
    (Pool.race [ (fun _ -> None); (fun _ -> None) ] = None);
  check_bool "empty race" true (Pool.race [] = None)

let test_race_loser_exception () =
  (* a raising candidate just loses *)
  match Pool.race [ (fun _ -> failwith "boom"); (fun _ -> Some 1) ] with
  | Some 1 -> ()
  | _ -> Alcotest.fail "surviving candidate must win"

let test_recommended_jobs () =
  check_bool "positive" true (Pool.recommended_jobs () >= 1)

let () =
  Alcotest.run "pool"
    [
      ( "run",
        [
          Alcotest.test_case "indexed results" `Quick test_indexed_results;
          Alcotest.test_case "zero tasks" `Quick test_zero_tasks;
          Alcotest.test_case "worker state" `Quick test_worker_state;
          Alcotest.test_case "exception order" `Quick test_exception_order;
        ] );
      ( "race",
        [
          Alcotest.test_case "single inline" `Quick test_race_single_inline;
          Alcotest.test_case "winner" `Quick test_race_winner;
          Alcotest.test_case "all none" `Quick test_race_all_none;
          Alcotest.test_case "loser exception" `Quick
            test_race_loser_exception;
          Alcotest.test_case "recommended jobs" `Quick test_recommended_jobs;
        ] );
    ]
