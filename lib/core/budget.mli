(** Per-pass resource watchdog: wall-time and allocation budgets with
    graceful degradation.

    Domain-local like {!Obs.Metrics} and {!Engine.Sat_log}.  The
    driver {!arm}s it before each pass from the {!Config} budgets; the
    expensive inner loops poll {!exhausted} and abandon remaining work
    items (forgone SAT queries, skipped muxtree roots) once it trips;
    {!disarm} reports whether — and by how much — the pass overran.
    Exceeding a budget is never an error: the flow completes with
    partial optimization and a [Budget_exceeded] event on the bus. *)

(** What one overrunning pass abandoned. *)
type overrun = {
  pass : string;
  budget_ms : int option;  (** configured wall budget, if any *)
  elapsed_ms : float;  (** wall time actually spent *)
  alloc_budget_mw : float option;  (** configured allocation budget *)
  alloc_mw : float;  (** millions of words actually allocated *)
  truncated : int;  (** work items abandoned after the trip *)
}

val arm : ?cfg:Config.t -> pass:string -> unit -> unit
(** Start watching [pass] under [cfg]'s budgets.  With both budgets
    [None] this disarms instead, making {!exhausted} one ref read. *)

val armed : unit -> bool

val exhausted : unit -> bool
(** [true] once the armed pass has exceeded a budget; sticky until
    {!disarm}.  Cheap enough to poll per query. *)

val note_truncation : unit -> unit
(** Record one abandoned work item (bumps the [budget.truncated]
    counter). *)

val disarm : unit -> overrun option
(** Stop watching; [Some] iff the budget tripped while armed. *)

val reset : unit -> unit
(** Forget any armed state (test scoping). *)

val overrun_to_json : overrun -> Obs.Json.t

(** {2 Worker propagation}

    The armed state is domain-local; the scheduler snapshots it on the
    coordinating domain, each worker adopts the snapshot (re-anchoring
    the allocation allowance on its own [Gc.minor_words] counter, the
    wall deadline being process-wide already), and the worker's
    tripped/truncated outcome folds back into the coordinator's record
    at the barrier so the pass-level overrun report is complete. *)

type inherited

val snapshot : unit -> inherited option
(** [None] when no budget is armed. *)

val adopt : inherited option -> unit
(** Arm (or disarm) the current domain from a snapshot. *)

type saved

val save : unit -> saved
(** The current domain's armed state, for displacing around an inline
    task. *)

val restore : saved -> unit

type worker_outcome

val capture_worker : unit -> worker_outcome
(** Read and disarm the current domain's verdict. *)

val merge_worker : worker_outcome -> unit
(** Fold a worker's verdict into the current domain's armed record;
    no-op when nothing is armed here. *)
