(* Soundness of the inference engine, checked against brute force.

   For random circuits and random *consistent* known-value sets (values
   observed in a real execution), every value derived by the inference
   rules must hold in every input assignment compatible with the knowns,
   and every Engine verdict must match the brute-force answer.  This is
   the property that keeps the SAT-elimination pass sound. *)

open Netlist

(* random gate-level circuit over n 1-bit inputs *)
let gen_circuit seed n_inputs n_gates =
  let c = Circuit.create "rand" in
  let ins =
    List.init n_inputs (fun i ->
        Circuit.add_input c (Printf.sprintf "i%d" i) ~width:1)
  in
  let pool = ref (List.map Circuit.bit_of_wire ins) in
  let st = ref (seed * 7 + 3) in
  let next () =
    st := (!st * 1103515245) + 12345;
    (!st lsr 16) land 0xFFFF
  in
  for _ = 1 to n_gates do
    let pick () = List.nth !pool (next () mod List.length !pool) in
    let a = pick () and b = pick () in
    let bit =
      match next () mod 7 with
      | 0 -> Circuit.mk_and c a b
      | 1 -> Circuit.mk_or c a b
      | 2 -> Circuit.mk_xor c a b
      | 3 -> Circuit.mk_not c a
      | 4 -> (Circuit.mk_binary c Cell.Xnor [| a |] [| b |]).(0)
      | 5 -> (Circuit.mk_binary c Cell.Eq [| a; b |] [| pick (); pick () |]).(0)
      | _ -> (Circuit.mk_mux c ~a:[| a |] ~b:[| b |] ~s:(pick ())).(0)
    in
    pool := bit :: !pool
  done;
  c, ins, !pool

(* evaluate all bits under one input assignment *)
let eval_all c ins assignment =
  let inputs =
    List.mapi
      (fun i w ->
        ( Circuit.bit_of_wire w,
          if (assignment lsr i) land 1 = 1 then Rtl_sim.Value.V1
          else Rtl_sim.Value.V0 ))
      ins
  in
  Rtl_sim.Eval.run c ~inputs ()

let bit_value env b =
  match Rtl_sim.Eval.read env b with
  | Rtl_sim.Value.V1 -> true
  | Rtl_sim.Value.V0 -> false
  | Rtl_sim.Value.Vx -> false

(* pick a consistent known set: values of [k] random bits under a random
   assignment (so a satisfying execution exists by construction) *)
let pick_knowns st pool env k =
  let next () =
    st := (!st * 48271) mod 0x7FFFFFFF;
    !st
  in
  List.init k (fun _ ->
      let b = List.nth pool (next () mod List.length pool) in
      b, bit_value env b)

let prop_inference_sound =
  QCheck.Test.make ~count:120 ~name:"inference rules are sound"
    QCheck.(pair (int_bound 100000) (int_range 1 3))
    (fun (seed, k) ->
      let n_inputs = 5 in
      let c, ins, pool = gen_circuit seed n_inputs 14 in
      let witness = seed land ((1 lsl n_inputs) - 1) in
      let env_w = eval_all c ins witness in
      let st = ref (seed + 11) in
      let knowns = pick_knowns st pool env_w k in
      let known : Smartly.Inference.known = Bits.Bit_tbl.create 8 in
      (try
         List.iter
           (fun (b, v) -> ignore (Smartly.Inference.set known b v))
           knowns
       with Smartly.Inference.Contradiction -> ());
      (match Smartly.Inference.propagate c known (Circuit.cell_ids c) with
      | _ -> ()
      | exception Smartly.Inference.Contradiction ->
        (* cannot happen: the knowns have a witness *)
        QCheck.Test.fail_report "contradiction on satisfiable knowns");
      (* every inferred value must hold in every compatible assignment *)
      let ok = ref true in
      for a = 0 to (1 lsl n_inputs) - 1 do
        let env = eval_all c ins a in
        let compatible =
          List.for_all (fun (b, v) -> bit_value env b = v) knowns
        in
        if compatible then
          Bits.Bit_tbl.iter
            (fun b v -> if bit_value env b <> v then ok := false)
            known
      done;
      !ok)

let prop_engine_sound =
  QCheck.Test.make ~count:80 ~name:"engine verdicts match brute force"
    QCheck.(pair (int_bound 100000) (int_range 1 2))
    (fun (seed, k) ->
      let n_inputs = 5 in
      let c, ins, pool = gen_circuit seed n_inputs 12 in
      let witness = (seed / 3) land ((1 lsl n_inputs) - 1) in
      let env_w = eval_all c ins witness in
      let st = ref (seed + 29) in
      let knowns = pick_knowns st pool env_w k in
      let target = List.nth pool (seed mod List.length pool) in
      let known : Smartly.Inference.known = Bits.Bit_tbl.create 8 in
      (try
         List.iter
           (fun (b, v) -> ignore (Smartly.Inference.set known b v))
           knowns
       with Smartly.Inference.Contradiction -> ());
      if Bits.Bit_tbl.length known = 0 then true
      else begin
        let index = Index.build c in
        let stats = Smartly.Engine.fresh_stats () in
        let verdict =
          Smartly.Engine.determine
            { Smartly.Config.default with Smartly.Config.distance_k = 32 }
            stats c index known ~target
        in
        (* brute force over all assignments compatible with the knowns *)
        let saw_true = ref false and saw_false = ref false in
        for a = 0 to (1 lsl n_inputs) - 1 do
          let env = eval_all c ins a in
          if List.for_all (fun (b, v) -> bit_value env b = v) knowns then
            if bit_value env target then saw_true := true
            else saw_false := true
        done;
        match verdict with
        | Smartly.Engine.Forced true -> !saw_true && not !saw_false
        | Smartly.Engine.Forced false -> !saw_false && not !saw_true
        | Smartly.Engine.Free -> !saw_true && !saw_false
        | Smartly.Engine.Unreachable -> (not !saw_true) && not !saw_false
        | Smartly.Engine.Unknown -> true (* giving up is always sound *)
      end)

let () =
  Alcotest.run "inference_soundness"
    [
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_inference_sound; prop_engine_sound ] );
    ]
