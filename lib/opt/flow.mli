(** The baseline optimization flow: the Yosys [opt] loop
    (opt_expr, opt_merge, opt_muxtree, opt_clean) to fixpoint. *)

type report = {
  iterations : int;
  expr_folded : int;
  muxtree_changes : int;
  cells_removed : int;
}

val pp_report : Format.formatter -> report -> unit

val baseline : Netlist.Circuit.t -> report
