(* Tests for the lint subsystem: every shipped rule gets a positive and a
   negative case, plus the diagnostic plumbing (werror/waivers, JSON
   report) and the per-pass invariant checker. *)

open Netlist

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let hdl_diags src = Lint.Rules_hdl.check (Hdl.Parser.parse_string src)
let full_diags src = Lint.Engine.lint_source src

let rules ds = List.map (fun d -> d.Lint.Diag.rule) ds
let has_rule r ds = List.mem r (rules ds)
let count_rule r ds = List.length (List.filter (( = ) r) (rules ds))

let find_rule r ds = List.find (fun d -> d.Lint.Diag.rule = r) ds

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- registry discipline --- *)

let test_registry_ids_unique () =
  let ids = List.map (fun r -> r.Lint.Registry.id) Lint.Registry.all in
  check_int "no duplicate ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  check_bool "find known" true (Lint.Registry.find "HDL001" <> None);
  check_bool "find unknown" true (Lint.Registry.find "XYZ999" = None)

let test_emitted_rules_are_registered () =
  (* a source tripping many rules: every emitted id must be registered *)
  let ds =
    full_diags
      "module m(input [7:0] a, input unused, output [3:0] y, output reg t);\n\
      \  assign y = a;\n\
      \  always @* t = a[0];\n\
      \  always @* t = a[1];\n\
       endmodule"
  in
  check_bool "nonempty" true (ds <> []);
  List.iter
    (fun d ->
      check_bool ("registered: " ^ d.Lint.Diag.rule) true
        (Lint.Registry.is_known d.Lint.Diag.rule))
    ds

(* --- HDL000: frontend failures become diagnostics --- *)

let test_hdl000_parse_error () =
  let ds = full_diags "module m(input a, output y);\n  assign y = ;\nendmodule" in
  check_int "one diag" 1 (List.length ds);
  let d = List.hd ds in
  check_bool "rule" true (d.Lint.Diag.rule = "HDL000");
  check_bool "severity" true (d.Lint.Diag.severity = Lint.Diag.Error);
  check_bool "located on line 2" true
    (match d.Lint.Diag.span with
    | Some sp -> sp.Hdl.Loc.s.Hdl.Loc.line = 2
    | None -> false)

let test_hdl000_lex_error () =
  let ds = full_diags "module m;\n  %" in
  check_bool "lex error bridged" true (has_rule "HDL000" ds)

let test_hdl000_elab_error () =
  let ds =
    full_diags "module m(input a, output y);\n  assign y = nope;\nendmodule"
  in
  check_bool "elab error bridged" true (has_rule "HDL000" ds);
  (* AST rules still ran before elaboration failed *)
  check_bool "errors only from frontend" true
    (Lint.Diag.has_errors ds)

(* --- HDL001: incomplete case --- *)

let incomplete_case =
  "module m(input [1:0] s, output reg y);\n\
  \  always @* begin\n\
  \    case (s)\n\
  \      2'b00: y = 1'b0;\n\
  \      2'b01: y = 1'b1;\n\
  \    endcase\n\
  \  end\n\
   endmodule"

let test_hdl001_positive () =
  let ds = hdl_diags incomplete_case in
  check_bool "flagged" true (has_rule "HDL001" ds);
  let d = find_rule "HDL001" ds in
  (* the message carries the feedback reg and an example value *)
  check_bool "names the latched reg" true (contains d.Lint.Diag.message "'y'")

let test_hdl001_negative_default () =
  let ds =
    hdl_diags
      "module m(input [1:0] s, output reg y);\n\
      \  always @* begin\n\
      \    case (s)\n\
      \      2'b00: y = 1'b0;\n\
      \      default: y = 1'b1;\n\
      \    endcase\n\
      \  end\n\
       endmodule"
  in
  check_bool "default arm silences" false (has_rule "HDL001" ds)

let test_hdl001_negative_full_coverage () =
  let ds =
    hdl_diags
      "module m(input s, output reg y);\n\
      \  always @* begin\n\
      \    case (s)\n\
      \      1'b0: y = 1'b0;\n\
      \      1'b1: y = 1'b1;\n\
      \    endcase\n\
      \  end\n\
       endmodule"
  in
  check_bool "full coverage silences" false (has_rule "HDL001" ds)

let test_hdl001_negative_preassigned () =
  let ds =
    hdl_diags
      "module m(input [1:0] s, output reg y);\n\
      \  always @* begin\n\
      \    y = 1'b0;\n\
      \    case (s)\n\
      \      2'b01: y = 1'b1;\n\
      \    endcase\n\
      \  end\n\
       endmodule"
  in
  check_bool "pre-assignment silences" false (has_rule "HDL001" ds)

let test_hdl001_negative_sequential () =
  (* holding state through an uncovered case is idiomatic in a clocked
     block *)
  let ds =
    hdl_diags
      "module m(input clk, input [1:0] s, output reg y);\n\
      \  always @(posedge clk) begin\n\
      \    case (s)\n\
      \      2'b01: y <= 1'b1;\n\
      \    endcase\n\
      \  end\n\
       endmodule"
  in
  check_bool "sequential hold silences" false (has_rule "HDL001" ds)

(* --- HDL002: unreachable / overlapping case items --- *)

let test_hdl002_unreachable () =
  let ds =
    hdl_diags
      "module m(input [1:0] s, output reg y);\n\
      \  always @* begin\n\
      \    case (s)\n\
      \      2'b00: y = 1'b0;\n\
      \      2'b00: y = 1'b1;\n\
      \      default: y = 1'b1;\n\
      \    endcase\n\
      \  end\n\
       endmodule"
  in
  let d = find_rule "HDL002" ds in
  check_bool "warning severity" true (d.Lint.Diag.severity = Lint.Diag.Warning);
  check_bool "located on the dead item" true
    (match d.Lint.Diag.span with
    | Some sp -> sp.Hdl.Loc.s.Hdl.Loc.line = 5
    | None -> false)

let test_hdl002_overlap_info () =
  let ds =
    hdl_diags
      "module m(input [1:0] s, output reg y);\n\
      \  always @* begin\n\
      \    casez (s)\n\
      \      2'bz1: y = 1'b0;\n\
      \      2'b1z: y = 1'b1;\n\
      \      default: y = 1'b0;\n\
      \    endcase\n\
      \  end\n\
       endmodule"
  in
  let d = find_rule "HDL002" ds in
  (* 2'b1z overlaps 2'bz1 on value 11 but still matches 10: info, not a
     dead item *)
  check_bool "info severity" true (d.Lint.Diag.severity = Lint.Diag.Info)

let test_hdl002_never_matches () =
  (* a pattern with a 1 beyond the subject width can never match *)
  let ds =
    hdl_diags
      "module m(input s, output reg y);\n\
      \  always @* begin\n\
      \    case (s)\n\
      \      2'b10: y = 1'b0;\n\
      \      default: y = 1'b1;\n\
      \    endcase\n\
      \  end\n\
       endmodule"
  in
  check_bool "flagged" true (has_rule "HDL002" ds)

let test_hdl002_negative () =
  let ds =
    hdl_diags
      "module m(input [1:0] s, output reg y);\n\
      \  always @* begin\n\
      \    casez (s)\n\
      \      2'bz1: y = 1'b0;\n\
      \      2'b10: y = 1'b1;\n\
      \      default: y = 1'b0;\n\
      \    endcase\n\
      \  end\n\
       endmodule"
  in
  check_bool "disjoint items are quiet" false (has_rule "HDL002" ds)

(* --- HDL003: multiple drivers --- *)

let test_hdl003_positive () =
  let ds =
    hdl_diags
      "module m(input a, output reg y);\n\
      \  always @* y = a;\n\
      \  always @* y = ~a;\n\
       endmodule"
  in
  let d = find_rule "HDL003" ds in
  check_bool "error severity" true (d.Lint.Diag.severity = Lint.Diag.Error)

let test_hdl003_assign_vs_always () =
  let ds =
    hdl_diags
      "module m(input a, output y);\n\
      \  reg t;\n\
      \  assign y = t;\n\
      \  assign y = a;\n\
       endmodule"
  in
  check_bool "two assigns flagged" true (has_rule "HDL003" ds)

let test_hdl003_negative () =
  let ds =
    hdl_diags
      "module m(input a, output reg y, output z);\n\
      \  assign z = a;\n\
      \  always @* y = ~a;\n\
       endmodule"
  in
  check_bool "distinct targets are quiet" false (has_rule "HDL003" ds)

(* --- HDL004: width truncation --- *)

let test_hdl004_positive () =
  let ds =
    hdl_diags
      "module m(input [7:0] a, output [3:0] y);\n\
      \  assign y = a;\n\
       endmodule"
  in
  let d = find_rule "HDL004" ds in
  check_bool "mentions widths" true (contains d.Lint.Diag.message "8-bit")

let test_hdl004_negative_slice () =
  let ds =
    hdl_diags
      "module m(input [7:0] a, output [3:0] y);\n\
      \  assign y = a[3:0];\n\
       endmodule"
  in
  check_bool "slice fits" false (has_rule "HDL004" ds)

let test_hdl004_negative_unsized_literal () =
  (* unsized decimals parse as 32-bit constants; only significant bits
     count, so this must not warn *)
  let ds =
    hdl_diags
      "module m(input [3:0] a, output reg [3:0] y);\n\
      \  always @* y = a & 12;\n\
       endmodule"
  in
  check_bool "small literal fits" false (has_rule "HDL004" ds)

let test_hdl004_positive_large_literal () =
  let ds =
    hdl_diags
      "module m(output [3:0] y);\n\
      \  assign y = 250;\n\
       endmodule"
  in
  check_bool "large literal flagged" true (has_rule "HDL004" ds)

let test_hdl004_negative_counter_idiom () =
  let ds =
    hdl_diags
      "module m(input clk, output reg [3:0] q);\n\
      \  always @(posedge clk) q <= q + 1;\n\
       endmodule"
  in
  check_bool "wraparound increment is quiet" false (has_rule "HDL004" ds)

(* --- HDL005: read before write in always @* --- *)

let test_hdl005_positive () =
  let ds =
    hdl_diags
      "module m(input a, output reg y);\n\
      \  reg t;\n\
      \  always @* begin\n\
      \    y = t;\n\
      \    t = a;\n\
      \  end\n\
       endmodule"
  in
  let d = find_rule "HDL005" ds in
  check_bool "located on the read" true
    (match d.Lint.Diag.span with
    | Some sp -> sp.Hdl.Loc.s.Hdl.Loc.line = 4
    | None -> false)

let test_hdl005_branch_intersection () =
  (* t is only assigned on one path before the read *)
  let ds =
    hdl_diags
      "module m(input a, input b, output reg y);\n\
      \  reg t;\n\
      \  always @* begin\n\
      \    if (a) t = b; else y = b;\n\
      \    y = t;\n\
      \    t = 1'b0;\n\
      \  end\n\
       endmodule"
  in
  check_bool "flagged" true (has_rule "HDL005" ds)

let test_hdl005_negative () =
  let ds =
    hdl_diags
      "module m(input a, output reg y);\n\
      \  reg t;\n\
      \  always @* begin\n\
      \    t = a;\n\
      \    y = t;\n\
      \  end\n\
       endmodule"
  in
  check_bool "write-then-read is quiet" false (has_rule "HDL005" ds)

let test_hdl005_negative_both_branches () =
  let ds =
    hdl_diags
      "module m(input a, input b, output reg y);\n\
      \  reg t;\n\
      \  always @* begin\n\
      \    if (a) t = b; else t = ~b;\n\
      \    y = t;\n\
      \  end\n\
       endmodule"
  in
  check_bool "both branches assign" false (has_rule "HDL005" ds)

(* --- netlist rules --- *)

let test_nl001_constant_select () =
  let c = Circuit.create "t" in
  let a = Circuit.add_input c "a" ~width:1 in
  let b = Circuit.add_input c "b" ~width:1 in
  let y =
    Circuit.mk_mux c
      ~a:(Circuit.sig_of_wire a)
      ~b:(Circuit.sig_of_wire b)
      ~s:Bits.C1
  in
  let out = Circuit.add_output c "y" ~width:1 in
  ignore
    (Circuit.add_cell c
       (Cell.Unary { op = Cell.Not; a = y; y = Circuit.sig_of_wire out }));
  check_bool "flagged" true (has_rule "NL001" (Lint.Rules_netlist.structural c))

let test_nl002_identical_branches () =
  let c = Circuit.create "t" in
  let a = Circuit.add_input c "a" ~width:1 in
  let s = Circuit.add_input c "s" ~width:1 in
  let y =
    Circuit.mk_mux c
      ~a:(Circuit.sig_of_wire a)
      ~b:(Circuit.sig_of_wire a)
      ~s:(Circuit.bit_of_wire s)
  in
  let out = Circuit.add_output c "y" ~width:1 in
  ignore
    (Circuit.add_cell c
       (Cell.Unary { op = Cell.Not; a = y; y = Circuit.sig_of_wire out }));
  let ds = Lint.Rules_netlist.structural c in
  check_bool "flagged" true (has_rule "NL002" ds)

let test_nl002_duplicate_pmux_select () =
  let c = Circuit.create "t" in
  let a = Circuit.add_input c "a" ~width:1 in
  let b = Circuit.add_input c "b" ~width:2 in
  let s = Circuit.add_input c "s" ~width:1 in
  let sb = Circuit.bit_of_wire s in
  let y =
    Circuit.mk_pmux c
      ~a:(Circuit.sig_of_wire a)
      ~b:(Circuit.sig_of_wire b)
      ~s:[| sb; sb |]
  in
  let out = Circuit.add_output c "y" ~width:1 in
  ignore
    (Circuit.add_cell c
       (Cell.Unary { op = Cell.Not; a = y; y = Circuit.sig_of_wire out }));
  check_bool "flagged" true (has_rule "NL002" (Lint.Rules_netlist.structural c))

let test_nl003_duplicate_eq () =
  let c = Circuit.create "t" in
  let a = Circuit.add_input c "a" ~width:4 in
  let e1 = Circuit.mk_eq_const c (Circuit.sig_of_wire a) 3 in
  let e2 = Circuit.mk_eq_const c (Circuit.sig_of_wire a) 3 in
  let y = Circuit.mk_and c e1 e2 in
  let out = Circuit.add_output c "y" ~width:1 in
  ignore
    (Circuit.add_cell c
       (Cell.Unary { op = Cell.Not; a = [| y |]; y = Circuit.sig_of_wire out }));
  let ds = Lint.Rules_netlist.structural c in
  let d = find_rule "NL003" ds in
  check_bool "info severity" true (d.Lint.Diag.severity = Lint.Diag.Info)

let test_nl003_negative_different_consts () =
  let c = Circuit.create "t" in
  let a = Circuit.add_input c "a" ~width:4 in
  let e1 = Circuit.mk_eq_const c (Circuit.sig_of_wire a) 3 in
  let e2 = Circuit.mk_eq_const c (Circuit.sig_of_wire a) 5 in
  let y = Circuit.mk_and c e1 e2 in
  let out = Circuit.add_output c "y" ~width:1 in
  ignore
    (Circuit.add_cell c
       (Cell.Unary { op = Cell.Not; a = [| y |]; y = Circuit.sig_of_wire out }));
  check_bool "distinct constants quiet" false
    (has_rule "NL003" (Lint.Rules_netlist.structural c))

let test_nl004_floating_input () =
  let c = Circuit.create "t" in
  let _unused = Circuit.add_input c "spare" ~width:1 in
  let a = Circuit.add_input c "a" ~width:1 in
  let out = Circuit.add_output c "y" ~width:1 in
  ignore
    (Circuit.add_cell c
       (Cell.Unary
          { op = Cell.Not; a = Circuit.sig_of_wire a;
            y = Circuit.sig_of_wire out }));
  let ds = Lint.Rules_netlist.structural c in
  check_int "one floating input" 1 (count_rule "NL004" ds)

let test_nl004_clock_exempt () =
  let c = Circuit.create "t" in
  let _clk = Circuit.add_input c "clk" ~width:1 in
  let a = Circuit.add_input c "a" ~width:1 in
  let out = Circuit.add_output c "y" ~width:1 in
  ignore
    (Circuit.add_cell c
       (Cell.Dff { d = Circuit.sig_of_wire a; q = Circuit.sig_of_wire out }));
  check_bool "clk exempt" false
    (has_rule "NL004" (Lint.Rules_netlist.structural c))

(* --- NL010..NL013: semantic rules backed by the value analysis --- *)

(* [a | 8] over 4 bits: interval [8, 15], MSB pinned to one — derived,
   not syntactically constant, so the semantic rules (and not opt_expr's
   territory) are what can see through it. *)
let or_high c (w : Circuit.wire) =
  Circuit.mk_binary c Cell.Or (Circuit.sig_of_wire w) (Bits.of_int ~width:4 8)

let drive_output c name (s : Bits.sigspec) =
  let out = Circuit.add_output c name ~width:(Array.length s) in
  ignore
    (Circuit.add_cell c
       (Cell.Unary { op = Cell.Not; a = s; y = Circuit.sig_of_wire out }))

let test_nl010_comparison_always_false () =
  let c = Circuit.create "t" in
  let a = Circuit.add_input c "a" ~width:4 in
  let hi = or_high c a in
  let e = Circuit.mk_binary c Cell.Eq hi (Bits.of_int ~width:4 0) in
  drive_output c "y" e;
  let ds = Lint.Rules_netlist.structural c in
  let d = find_rule "NL010" ds in
  check_bool "warning severity" true (d.Lint.Diag.severity = Lint.Diag.Warning);
  check_bool "says false" true (contains d.Lint.Diag.message "false")

let test_nl010_negative_free_comparison () =
  let c = Circuit.create "t" in
  let a = Circuit.add_input c "a" ~width:4 in
  let e = Circuit.mk_binary c Cell.Eq (Circuit.sig_of_wire a)
      (Bits.of_int ~width:4 3)
  in
  drive_output c "y" e;
  check_bool "free comparison quiet" false
    (has_rule "NL010" (Lint.Rules_netlist.structural c))

let test_nl011_dead_mux_branch () =
  let c = Circuit.create "t" in
  let a = Circuit.add_input c "a" ~width:4 in
  let p = Circuit.add_input c "p" ~width:1 in
  let q = Circuit.add_input c "q" ~width:1 in
  (* reduce_or of [a | 8] is provably one: the b branch always wins *)
  let s = Circuit.mk_unary c Cell.Reduce_or (or_high c a) in
  let y =
    Circuit.mk_mux c
      ~a:(Circuit.sig_of_wire p)
      ~b:(Circuit.sig_of_wire q)
      ~s:s.(0)
  in
  drive_output c "y" y;
  let ds = Lint.Rules_netlist.structural c in
  check_bool "flagged" true (has_rule "NL011" ds)

let test_nl011_dead_pmux_default () =
  let c = Circuit.create "t" in
  let a = Circuit.add_input c "a" ~width:4 in
  let p = Circuit.add_input c "p" ~width:1 in
  let q = Circuit.add_input c "q" ~width:1 in
  let s = Circuit.mk_unary c Cell.Reduce_or (or_high c a) in
  let y =
    Circuit.mk_pmux c
      ~a:(Circuit.sig_of_wire p)
      ~b:(Circuit.sig_of_wire q)
      ~s:[| s.(0) |]
  in
  drive_output c "y" y;
  let ds = Lint.Rules_netlist.structural c in
  let d = find_rule "NL011" ds in
  check_bool "names the default" true (contains d.Lint.Diag.message "default")

let test_nl011_negative_free_select () =
  let c = Circuit.create "t" in
  let p = Circuit.add_input c "p" ~width:1 in
  let q = Circuit.add_input c "q" ~width:1 in
  let s = Circuit.add_input c "s" ~width:1 in
  let y =
    Circuit.mk_mux c
      ~a:(Circuit.sig_of_wire p)
      ~b:(Circuit.sig_of_wire q)
      ~s:(Circuit.bit_of_wire s)
  in
  drive_output c "y" y;
  check_bool "free select quiet" false
    (has_rule "NL011" (Lint.Rules_netlist.structural c))

let test_nl012_foldable_cell () =
  let c = Circuit.create "t" in
  let a = Circuit.add_input c "a" ~width:4 in
  (* a & 0 is zero for every a, but the cell's inputs are not all
     syntactic constants, so this is the analysis' catch, not NL001's *)
  let y =
    Circuit.mk_binary c Cell.And (Circuit.sig_of_wire a)
      (Bits.of_int ~width:4 0)
  in
  drive_output c "y" y;
  let ds = Lint.Rules_netlist.structural c in
  let d = find_rule "NL012" ds in
  check_bool "info severity" true (d.Lint.Diag.severity = Lint.Diag.Info);
  check_bool "names the value" true (contains d.Lint.Diag.message "0")

let test_nl012_negative_free_cell () =
  let c = Circuit.create "t" in
  let a = Circuit.add_input c "a" ~width:4 in
  let b = Circuit.add_input c "b" ~width:4 in
  let y =
    Circuit.mk_binary c Cell.And (Circuit.sig_of_wire a)
      (Circuit.sig_of_wire b)
  in
  drive_output c "y" y;
  check_bool "free cell quiet" false
    (has_rule "NL012" (Lint.Rules_netlist.structural c))

let test_nl013_add_always_wraps () =
  let c = Circuit.create "t" in
  let a = Circuit.add_input c "a" ~width:4 in
  let b = Circuit.add_input c "b" ~width:4 in
  (* [8,15] + [8,15] is at least 16: wraps for every input *)
  let y = Circuit.mk_binary c Cell.Add (or_high c a) (or_high c b) in
  drive_output c "y" y;
  let ds = Lint.Rules_netlist.structural c in
  let d = find_rule "NL013" ds in
  check_bool "warning severity" true (d.Lint.Diag.severity = Lint.Diag.Warning)

let test_nl013_sub_always_borrows () =
  let c = Circuit.create "t" in
  let a = Circuit.add_input c "a" ~width:4 in
  let b = Circuit.add_input c "b" ~width:4 in
  let small =
    Circuit.mk_binary c Cell.And (Circuit.sig_of_wire a)
      (Bits.of_int ~width:4 7)
  in
  (* [0,7] - [8,15] borrows for every input *)
  let y = Circuit.mk_binary c Cell.Sub small (or_high c b) in
  drive_output c "y" y;
  check_bool "flagged" true (has_rule "NL013" (Lint.Rules_netlist.structural c))

let test_nl013_negative_free_add () =
  let c = Circuit.create "t" in
  let a = Circuit.add_input c "a" ~width:4 in
  let b = Circuit.add_input c "b" ~width:4 in
  let y =
    Circuit.mk_binary c Cell.Add (Circuit.sig_of_wire a)
      (Circuit.sig_of_wire b)
  in
  drive_output c "y" y;
  check_bool "free add quiet" false
    (has_rule "NL013" (Lint.Rules_netlist.structural c))

let test_validate_bridge_rules () =
  (* a combinational loop: bridged as an NL009 error with a witness *)
  let c = Circuit.create "cyc" in
  let w1 = Circuit.add_wire c ~width:1 () in
  let w2 = Circuit.add_wire c ~width:1 () in
  let b1 = Circuit.bit_of_wire w1 and b2 = Circuit.bit_of_wire w2 in
  ignore
    (Circuit.add_cell c (Cell.Unary { op = Cell.Not; a = [| b1 |]; y = [| b2 |] }));
  ignore
    (Circuit.add_cell c (Cell.Unary { op = Cell.Not; a = [| b2 |]; y = [| b1 |] }));
  let ds = Lint.Rules_netlist.check c in
  let d = find_rule "NL009" ds in
  check_bool "error severity" true (d.Lint.Diag.severity = Lint.Diag.Error);
  check_bool "witness in message" true (contains d.Lint.Diag.message "->")

let test_clean_circuit_is_quiet () =
  let c =
    Hdl.Elaborate.elaborate_string
      "module m(input [1:0] s, input [3:0] a, input [3:0] b, output reg [3:0] y);\n\
      \  always @* begin\n\
      \    case (s)\n\
      \      2'b00: y = a;\n\
      \      2'b01: y = b;\n\
      \      2'b10: y = a & b;\n\
      \      default: y = a | b;\n\
      \    endcase\n\
      \  end\n\
       endmodule"
  in
  check_bool "no diagnostics" true (Lint.Rules_netlist.check c = [])

(* --- diagnostic plumbing --- *)

let test_werror_and_waivers () =
  let ds = hdl_diags incomplete_case in
  check_bool "warning present" true (has_rule "HDL001" ds);
  check_bool "no errors yet" false (Lint.Diag.has_errors ds);
  let upgraded = Lint.Diag.apply ~werror:true ds in
  check_bool "werror upgrades" true (Lint.Diag.has_errors upgraded);
  let waived = Lint.Diag.apply ~waive:[ "HDL001" ] ds in
  check_bool "waiver drops" false (has_rule "HDL001" waived);
  (* waive + werror: waiving first means nothing left to upgrade *)
  let both = Lint.Diag.apply ~werror:true ~waive:[ "HDL001" ] ds in
  check_bool "waive beats werror" false (Lint.Diag.has_errors both)

let test_json_report_roundtrip () =
  let results =
    [ "good", full_diags "module m(input a, output y); assign y = a; endmodule";
      "bad", full_diags incomplete_case ]
  in
  let text = Obs.Json.to_string ~pretty:true (Lint.Engine.report_json results) in
  match Obs.Json.parse text with
  | Error msg -> Alcotest.fail ("report does not re-parse: " ^ msg)
  | Ok json ->
    check_bool "schema" true
      (Obs.Json.member "schema" json = Some (Obs.Json.Str "smartly-lint-v1"));
    check_bool "sources listed" true
      (match Obs.Json.member "sources" json with
      | Some (Obs.Json.List [ _; _ ]) -> true
      | _ -> false)

let test_diag_ordering () =
  let mk sev rule = Lint.Diag.make ~rule ~severity:sev "m" in
  let sorted =
    Lint.Diag.sort
      [ mk Lint.Diag.Info "NL003"; mk Lint.Diag.Error "NL005";
        mk Lint.Diag.Warning "HDL001" ]
  in
  check_bool "errors first" true
    (List.map (fun d -> d.Lint.Diag.rule) sorted = [ "NL005"; "HDL001"; "NL003" ])

(* --- invariant checker --- *)

let small_module =
  "module m(input a, input b, output y);\n\
  \  assign y = a & b;\n\
   endmodule"

let test_invariant_clean_flow () =
  let c = Hdl.Elaborate.elaborate_string small_module in
  let t = Lint.Invariant.create c in
  ignore
    (Rtl_opt.Flow.baseline
       ~after_pass:(fun name circuit -> Lint.Invariant.after_pass t name circuit)
       c);
  check_bool "ok" true (Lint.Invariant.ok t);
  check_bool "checks ran" true (Lint.Invariant.checks_run t >= 4)

let test_invariant_catches_equiv_break () =
  let c = Hdl.Elaborate.elaborate_string small_module in
  let t = Lint.Invariant.create c in
  Lint.Invariant.after_pass t "harmless" c;
  check_bool "still ok" true (Lint.Invariant.ok t);
  (* the evil pass: flip the And to an Or, a well-formed but wrong rewrite *)
  let flips =
    Circuit.fold_cells
      (fun id cell acc ->
        match cell with
        | Cell.Binary { op = Cell.And; a; b; y } ->
          (id, Cell.Binary { op = Cell.Or; a; b; y }) :: acc
        | _ -> acc)
      c []
  in
  check_bool "found the and gate" true (flips <> []);
  List.iter (fun (id, cell) -> Circuit.replace_cell c id cell) flips;
  Lint.Invariant.after_pass t "evil_flip" c;
  Lint.Invariant.after_pass t "later_pass" c;
  match Lint.Invariant.failure t with
  | None -> Alcotest.fail "expected a failure"
  | Some f ->
    check_bool "first offender named" true (f.Lint.Invariant.pass = "evil_flip");
    check_bool "equivalence cited" true
      (contains f.Lint.Invariant.detail "not equivalent")

let test_invariant_catches_validation_break () =
  let c = Hdl.Elaborate.elaborate_string small_module in
  let t = Lint.Invariant.create c in
  (* the evil pass: drop the cell driving the output, leaving it undriven *)
  let idx = Index.build c in
  (match Circuit.output_bits c with
  | ob :: _ -> (
    match Index.driving_cell idx ob with
    | Some (id, _) -> Circuit.remove_cell c id
    | None -> Alcotest.fail "output should be driven")
  | [] -> Alcotest.fail "module has an output");
  Lint.Invariant.after_pass t "evil_drop" c;
  match Lint.Invariant.failure t with
  | None -> Alcotest.fail "expected a failure"
  | Some f ->
    check_bool "pass named" true (f.Lint.Invariant.pass = "evil_drop");
    check_bool "diags carried" true (f.Lint.Invariant.diags <> []);
    check_bool "undriven bit cited" true
      (List.exists (fun d -> d.Lint.Diag.rule = "NL006") f.Lint.Invariant.diags)

let test_invariant_through_real_flow () =
  (* sabotage the circuit inside the opt_muxtree hook of the real baseline
     flow: the checker must name opt_muxtree, not a later pass *)
  let c =
    Hdl.Elaborate.elaborate_string
      "module m(input [1:0] s, input [3:0] a, input [3:0] b, output reg [3:0] y);\n\
      \  always @* begin\n\
      \    case (s)\n\
      \      2'b00: y = a;\n\
      \      2'b01: y = b;\n\
      \      default: y = a ^ b;\n\
      \    endcase\n\
      \  end\n\
       endmodule"
  in
  let t = Lint.Invariant.create c in
  let sabotaged = ref false in
  let hook name circuit =
    if name = "opt_muxtree" && not !sabotaged then begin
      sabotaged := true;
      let idx = Index.build circuit in
      match Circuit.output_bits circuit with
      | ob :: _ -> (
        match Index.driving_cell idx ob with
        | Some (id, _) -> Circuit.remove_cell circuit id
        | None -> ())
      | [] -> ()
    end;
    Lint.Invariant.after_pass t name circuit
  in
  ignore (Rtl_opt.Flow.baseline ~after_pass:hook c);
  match Lint.Invariant.failure t with
  | None -> Alcotest.fail "expected a failure"
  | Some f ->
    check_bool "opt_muxtree named" true
      (f.Lint.Invariant.pass = "opt_muxtree")

let () =
  Alcotest.run "lint"
    [
      ( "registry",
        [
          Alcotest.test_case "unique ids" `Quick test_registry_ids_unique;
          Alcotest.test_case "emitted rules registered" `Quick
            test_emitted_rules_are_registered;
        ] );
      ( "hdl000",
        [
          Alcotest.test_case "parse error" `Quick test_hdl000_parse_error;
          Alcotest.test_case "lex error" `Quick test_hdl000_lex_error;
          Alcotest.test_case "elab error" `Quick test_hdl000_elab_error;
        ] );
      ( "hdl001",
        [
          Alcotest.test_case "positive" `Quick test_hdl001_positive;
          Alcotest.test_case "default silences" `Quick
            test_hdl001_negative_default;
          Alcotest.test_case "full coverage silences" `Quick
            test_hdl001_negative_full_coverage;
          Alcotest.test_case "pre-assignment silences" `Quick
            test_hdl001_negative_preassigned;
          Alcotest.test_case "sequential hold silences" `Quick
            test_hdl001_negative_sequential;
        ] );
      ( "hdl002",
        [
          Alcotest.test_case "unreachable item" `Quick test_hdl002_unreachable;
          Alcotest.test_case "overlap is info" `Quick test_hdl002_overlap_info;
          Alcotest.test_case "never matches" `Quick test_hdl002_never_matches;
          Alcotest.test_case "negative" `Quick test_hdl002_negative;
        ] );
      ( "hdl003",
        [
          Alcotest.test_case "two always blocks" `Quick test_hdl003_positive;
          Alcotest.test_case "two assigns" `Quick test_hdl003_assign_vs_always;
          Alcotest.test_case "negative" `Quick test_hdl003_negative;
        ] );
      ( "hdl004",
        [
          Alcotest.test_case "positive" `Quick test_hdl004_positive;
          Alcotest.test_case "slice fits" `Quick test_hdl004_negative_slice;
          Alcotest.test_case "unsized literal" `Quick
            test_hdl004_negative_unsized_literal;
          Alcotest.test_case "large literal" `Quick
            test_hdl004_positive_large_literal;
          Alcotest.test_case "counter idiom" `Quick
            test_hdl004_negative_counter_idiom;
        ] );
      ( "hdl005",
        [
          Alcotest.test_case "positive" `Quick test_hdl005_positive;
          Alcotest.test_case "branch intersection" `Quick
            test_hdl005_branch_intersection;
          Alcotest.test_case "negative" `Quick test_hdl005_negative;
          Alcotest.test_case "both branches" `Quick
            test_hdl005_negative_both_branches;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "constant select" `Quick test_nl001_constant_select;
          Alcotest.test_case "identical branches" `Quick
            test_nl002_identical_branches;
          Alcotest.test_case "duplicate pmux select" `Quick
            test_nl002_duplicate_pmux_select;
          Alcotest.test_case "duplicate eq" `Quick test_nl003_duplicate_eq;
          Alcotest.test_case "distinct eq consts" `Quick
            test_nl003_negative_different_consts;
          Alcotest.test_case "floating input" `Quick test_nl004_floating_input;
          Alcotest.test_case "clock exempt" `Quick test_nl004_clock_exempt;
          Alcotest.test_case "comparison always false" `Quick
            test_nl010_comparison_always_false;
          Alcotest.test_case "free comparison quiet" `Quick
            test_nl010_negative_free_comparison;
          Alcotest.test_case "dead mux branch" `Quick
            test_nl011_dead_mux_branch;
          Alcotest.test_case "dead pmux default" `Quick
            test_nl011_dead_pmux_default;
          Alcotest.test_case "free select quiet" `Quick
            test_nl011_negative_free_select;
          Alcotest.test_case "foldable cell" `Quick test_nl012_foldable_cell;
          Alcotest.test_case "free cell quiet" `Quick
            test_nl012_negative_free_cell;
          Alcotest.test_case "add always wraps" `Quick
            test_nl013_add_always_wraps;
          Alcotest.test_case "sub always borrows" `Quick
            test_nl013_sub_always_borrows;
          Alcotest.test_case "free add quiet" `Quick
            test_nl013_negative_free_add;
          Alcotest.test_case "validate bridge" `Quick test_validate_bridge_rules;
          Alcotest.test_case "clean circuit quiet" `Quick
            test_clean_circuit_is_quiet;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "werror + waivers" `Quick test_werror_and_waivers;
          Alcotest.test_case "json roundtrip" `Quick test_json_report_roundtrip;
          Alcotest.test_case "ordering" `Quick test_diag_ordering;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "clean flow" `Quick test_invariant_clean_flow;
          Alcotest.test_case "equivalence break" `Quick
            test_invariant_catches_equiv_break;
          Alcotest.test_case "validation break" `Quick
            test_invariant_catches_validation_break;
          Alcotest.test_case "real flow names pass" `Quick
            test_invariant_through_real_flow;
        ] );
    ]
