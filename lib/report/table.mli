(** Minimal ASCII tables for the benchmark harness and the CLI. *)

type align = Left | Right

type column = { title : string; align : align }

val column : ?align:align -> string -> column

val render : columns:column list -> rows:string list list -> string
val print : columns:column list -> rows:string list list -> unit

val pct : float -> string
(** ["12.34%"]. *)

val int_ : int -> string
