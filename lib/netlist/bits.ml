(* Signal bits and bit vectors (sigspecs).

   A [bit] is either a constant (0, 1, or the unknown/don't-care X) or one
   bit of a named wire, identified by the wire id and a bit offset.  A
   [sigspec] is an array of bits, least-significant bit first, mirroring the
   RTLIL convention. *)

type bit =
  | C0
  | C1
  | Cx
  | Of_wire of int * int (* wire id, bit offset *)

type sigspec = bit array

let bit_equal (a : bit) (b : bit) =
  match a, b with
  | C0, C0 | C1, C1 | Cx, Cx -> true
  | Of_wire (w1, o1), Of_wire (w2, o2) -> w1 = w2 && o1 = o2
  | (C0 | C1 | Cx | Of_wire _), _ -> false

let bit_compare (a : bit) (b : bit) = Stdlib.compare a b

let bit_hash (b : bit) = Hashtbl.hash b

let is_const = function C0 | C1 | Cx -> true | Of_wire _ -> false

let is_fully_const (s : sigspec) = Array.for_all is_const s

let const_of_bool b = if b then C1 else C0

let bool_of_const = function
  | C0 -> Some false
  | C1 -> Some true
  | Cx | Of_wire _ -> None

(* Build a [w]-bit constant sigspec from an integer, LSB first. *)
let of_int ~width v =
  Array.init width (fun i -> const_of_bool ((v lsr i) land 1 = 1))

(* Interpret a fully-constant sigspec as an unsigned integer.
   Raises [Invalid_argument] if any bit is X or a wire bit. *)
let to_int (s : sigspec) =
  Array.to_list s
  |> List.rev
  |> List.fold_left
       (fun acc b ->
         match b with
         | C0 -> acc * 2
         | C1 -> (acc * 2) + 1
         | Cx | Of_wire _ -> invalid_arg "Bits.to_int: non-binary bit")
       0

let width (s : sigspec) = Array.length s

let concat (parts : sigspec list) : sigspec = Array.concat parts

(* [slice s ~off ~len] extracts bits [off .. off+len-1]. *)
let slice (s : sigspec) ~off ~len =
  if off < 0 || len < 0 || off + len > Array.length s then
    invalid_arg "Bits.slice"
  else Array.sub s off len

let equal (a : sigspec) (b : sigspec) =
  Array.length a = Array.length b
  && Array.for_all2 bit_equal a b

(* Extend or truncate [s] to [width] bits, zero-extending. *)
let extend (s : sigspec) ~width:w =
  let n = Array.length s in
  if n = w then s
  else if n > w then Array.sub s 0 w
  else Array.init w (fun i -> if i < n then s.(i) else C0)

let all_zero ~width = Array.make width C0

let all_x ~width = Array.make width Cx

let pp_bit ppf = function
  | C0 -> Fmt.string ppf "0"
  | C1 -> Fmt.string ppf "1"
  | Cx -> Fmt.string ppf "x"
  | Of_wire (w, o) -> Fmt.pf ppf "w%d[%d]" w o

let pp ppf (s : sigspec) =
  Fmt.pf ppf "{";
  (* MSB first for readability *)
  for i = Array.length s - 1 downto 0 do
    pp_bit ppf s.(i);
    if i > 0 then Fmt.string ppf " "
  done;
  Fmt.pf ppf "}"

let to_string s = Fmt.str "%a" pp s

(* Hashtbl / Set / Map instances keyed by bit. *)
module Bit = struct
  type t = bit

  let equal = bit_equal
  let compare = bit_compare
  let hash = bit_hash
end

module Bit_tbl = Hashtbl.Make (Bit)
module Bit_set = Set.Make (Bit)
module Bit_map = Map.Make (Bit)
