(* The dataflow fixpoint: forward transfer functions over a topological
   cell order, backward "assume" narrowing over the reverse order, swept
   until nothing strengthens.

   The forward pass is classic abstract interpretation of the cell
   semantics (Eval's three-valued functions lifted to the two domains).
   The backward pass is what makes path-condition refinement pay: a
   seeded fact like "(a == 5) is true" narrows a's interval to [5,5],
   "(|a) is true" lifts its lower bound to 1, and so on — consequences
   the purely forward direction can never recover.

   Soundness contract: the set of concrete executions compatible with the
   seeds is always contained in the abstract state, so a definite bit is
   a [Forced] verdict and [Bottom] is a dead path.  The analysis never
   claims [Free]. *)

open Netlist
open Absval

type outcome = { state : Absval.state; sweeps : int }
type result = Converged of outcome | Contradiction

(* --- forward transfer --- *)

let slice_b (b : Bits.sigspec) i w = Array.sub b (i * w) w

let eq_tern st (a : Bits.sigspec) (b : Bits.sigspec) : tern =
  let w = Array.length a in
  let established = ref true and refuted = ref false in
  for i = 0 to w - 1 do
    let ta = read st a.(i) and tb = read st b.(i) in
    if Bits.bit_equal a.(i) b.(i) then ()
    else if ta <> Top && tb <> Top then begin
      if ta <> tb then refuted := true
    end
    else established := false
  done;
  if !refuted then Zero
  else
    match (get_itv st a, get_itv st b) with
    | Some ia, Some ib when itv_disjoint ia ib -> Zero
    | _ -> if !established then One else Top

(* y = sum/difference bits via ternary ripple, plus the interval form *)
let fwd_arith st ~sub (a : Bits.sigspec) (b : Bits.sigspec) (y : Bits.sigspec)
    =
  let w = Array.length y in
  let carry = ref (if sub then Zero else Zero) in
  for i = 0 to w - 1 do
    let ta = read st a.(i) and tb = read st b.(i) in
    let d = t_xor (t_xor ta tb) !carry in
    refine_bit st y.(i) d;
    carry :=
      (if sub then t_maj (t_not ta) tb !carry else t_maj ta tb !carry)
  done;
  if w <= max_itv_width then
    match (get_itv st a, get_itv st b) with
    | Some ia, Some ib -> (
      match (if sub then itv_sub else itv_add) w ia ib with
      | Some v -> refine_itv st y v
      | None -> ())
    | _ -> ()

let transfer st (cell : Cell.t) =
  match cell with
  | Cell.Dff _ -> () (* state is a source: top *)
  | Cell.Unary { op; a; y } -> (
    match op with
    | Cell.Not ->
      Array.iteri (fun i b -> refine_bit st y.(i) (t_not (read st b))) a
    | Cell.Logic_not ->
      if zero st a then refine_bit st y.(0) One
      else if nonzero st a then refine_bit st y.(0) Zero
    | Cell.Reduce_and ->
      if Array.for_all (fun b -> read st b = One) a then
        refine_bit st y.(0) One
      else if Array.exists (fun b -> read st b = Zero) a then
        refine_bit st y.(0) Zero
    | Cell.Reduce_or | Cell.Reduce_bool ->
      if nonzero st a then refine_bit st y.(0) One
      else if zero st a then refine_bit st y.(0) Zero
    | Cell.Reduce_xor ->
      if all_definite st a then begin
        let p = ref Zero in
        Array.iter (fun b -> p := t_xor !p (read st b)) a;
        refine_bit st y.(0) !p
      end)
  | Cell.Binary { op; a; b; y } -> (
    let bitwise f itvf =
      Array.iteri
        (fun i yb -> refine_bit st yb (f (read st a.(i)) (read st b.(i))))
        y;
      match itvf with
      | Some g -> (
        match (get_itv st a, get_itv st b) with
        | Some ia, Some ib -> refine_itv st y (g ia ib)
        | _ -> ())
      | None -> ()
    in
    match op with
    | Cell.And -> bitwise t_and (Some itv_and)
    | Cell.Or -> bitwise t_or (Some itv_or)
    | Cell.Xor -> bitwise t_xor (Some itv_xor)
    | Cell.Xnor -> bitwise t_xnor None
    | Cell.Eq -> refine_bit st y.(0) (eq_tern st a b)
    | Cell.Ne -> refine_bit st y.(0) (t_not (eq_tern st a b))
    | Cell.Logic_and ->
      if nonzero st a && nonzero st b then refine_bit st y.(0) One
      else if zero st a || zero st b then refine_bit st y.(0) Zero
    | Cell.Logic_or ->
      if nonzero st a || nonzero st b then refine_bit st y.(0) One
      else if zero st a && zero st b then refine_bit st y.(0) Zero
    | Cell.Add -> fwd_arith st ~sub:false a b y
    | Cell.Sub -> fwd_arith st ~sub:true a b y)
  | Cell.Mux { a; b; s; y } -> (
    match read st s with
    | One ->
      Array.iteri (fun i yb -> refine_bit st yb (read st b.(i))) y;
      (match get_itv st b with Some v -> refine_itv st y v | None -> ())
    | Zero ->
      Array.iteri (fun i yb -> refine_bit st yb (read st a.(i))) y;
      (match get_itv st a with Some v -> refine_itv st y v | None -> ())
    | Top -> (
      Array.iteri
        (fun i yb -> refine_bit st yb (join (read st a.(i)) (read st b.(i))))
        y;
      match (get_itv st a, get_itv st b) with
      | Some ia, Some ib ->
        refine_itv st y { lo = min ia.lo ib.lo; hi = max ia.hi ib.hi }
      | _ -> ()))
  | Cell.Pmux { a; b; s; y } ->
    let w = Array.length y and n = Array.length s in
    let sel = read_vec st s in
    (* branch i is live unless its select is 0 or a higher-priority
       (lower-index) select is definitely 1; the default needs every
       select off *)
    let feasible = ref [] in
    let blocked = ref false in
    for i = 0 to n - 1 do
      if (not !blocked) && sel.(i) <> Zero then
        feasible := slice_b b i w :: !feasible;
      if sel.(i) = One then blocked := true
    done;
    if not !blocked then feasible := a :: !feasible;
    (match !feasible with
    | [] -> () (* unreachable select pattern; nothing to assert *)
    | first :: rest ->
      Array.iteri
        (fun i yb ->
          let v =
            List.fold_left
              (fun acc br -> join acc (read st br.(i)))
              (read st first.(i))
              rest
          in
          refine_bit st yb v)
        y;
      let hull =
        List.fold_left
          (fun acc br ->
            match (acc, get_itv st br) with
            | Some h, Some v ->
              Some { lo = min h.lo v.lo; hi = max h.hi v.hi }
            | _ -> None)
          (get_itv st first) rest
      in
      (match hull with Some v -> refine_itv st y v | None -> ()))

(* --- backward narrowing ("assume" the outputs we know) --- *)

(* remove a known-impossible point [c] from the interval of [s], which
   only narrows when it sits on an endpoint *)
let exclude_point st (s : Bits.sigspec) c =
  match get_itv st s with
  | Some v when v.lo = c && v.hi = c -> raise Bottom
  | Some v when v.lo = c -> refine_itv st s { lo = c + 1; hi = v.hi }
  | Some v when v.hi = c -> refine_itv st s { lo = v.lo; hi = c - 1 }
  | _ -> ()

let assume_nonzero st (s : Bits.sigspec) =
  let w = Array.length s in
  if w <= max_itv_width then refine_itv st s { lo = 1; hi = (1 lsl w) - 1 };
  (* a single possibly-set bit must be the set one *)
  let tops = ref [] and ones = ref 0 in
  Array.iter
    (fun b ->
      match read st b with
      | One -> incr ones
      | Top -> tops := b :: !tops
      | Zero -> ())
    s;
  if !ones = 0 then
    match !tops with
    | [] -> raise Bottom
    | [ b ] -> refine_bit st b One
    | _ -> ()

let assume_zero st (s : Bits.sigspec) =
  Array.iter (fun b -> refine_bit st b Zero) s

let assume_eq st (a : Bits.sigspec) (b : Bits.sigspec) =
  Array.iteri
    (fun i ab ->
      let ta = read st ab and tb = read st b.(i) in
      let m = meet ta tb in
      refine_bit st ab m;
      refine_bit st b.(i) m)
    a;
  (match get_itv st b with Some v -> refine_itv st a v | None -> ());
  match get_itv st a with Some v -> refine_itv st b v | None -> ()

let assume_ne st (a : Bits.sigspec) (b : Bits.sigspec) =
  (match definite st b with Some c -> exclude_point st a c | None -> ());
  (match definite st a with Some c -> exclude_point st b c | None -> ());
  (* all but one bit pair established equal: the leftover pair differs *)
  let w = Array.length a in
  let open_ = ref [] and refuted = ref false in
  for i = 0 to w - 1 do
    let ta = read st a.(i) and tb = read st b.(i) in
    if Bits.bit_equal a.(i) b.(i) then ()
    else if ta <> Top && tb <> Top then begin
      if ta <> tb then refuted := true
    end
    else open_ := i :: !open_
  done;
  if not !refuted then
    match !open_ with
    | [] -> raise Bottom (* provably equal yet assumed unequal *)
    | [ i ] -> (
      match (read st a.(i), read st b.(i)) with
      | Top, (Zero | One as tb) -> refine_bit st a.(i) (t_not tb)
      | (Zero | One as ta), Top -> refine_bit st b.(i) (t_not ta)
      | _ -> ())
    | _ -> ()

let narrow st (cell : Cell.t) =
  match cell with
  | Cell.Dff _ -> ()
  | Cell.Unary { op; a; y } -> (
    match op with
    | Cell.Not ->
      Array.iteri (fun i yb -> refine_bit st a.(i) (t_not (read st yb))) y
    | Cell.Logic_not -> (
      match read st y.(0) with
      | One -> assume_zero st a
      | Zero -> assume_nonzero st a
      | Top -> ())
    | Cell.Reduce_and -> (
      match read st y.(0) with
      | One -> Array.iter (fun b -> refine_bit st b One) a
      | Zero ->
        let w = Array.length a in
        if w <= max_itv_width then
          refine_itv st a { lo = 0; hi = (1 lsl w) - 2 };
        (* a single possibly-clear bit must be the clear one *)
        let tops = ref [] and zeros = ref 0 in
        Array.iter
          (fun b ->
            match read st b with
            | Zero -> incr zeros
            | Top -> tops := b :: !tops
            | One -> ())
          a;
        if !zeros = 0 then (
          match !tops with
          | [] -> raise Bottom
          | [ b ] -> refine_bit st b Zero
          | _ -> ())
      | Top -> ())
    | Cell.Reduce_or | Cell.Reduce_bool -> (
      match read st y.(0) with
      | One -> assume_nonzero st a
      | Zero -> assume_zero st a
      | Top -> ())
    | Cell.Reduce_xor -> ())
  | Cell.Binary { op; a; b; y } -> (
    match op with
    | Cell.And ->
      Array.iteri
        (fun i yb ->
          match read st yb with
          | One ->
            refine_bit st a.(i) One;
            refine_bit st b.(i) One
          | Zero ->
            if read st a.(i) = One then refine_bit st b.(i) Zero;
            if read st b.(i) = One then refine_bit st a.(i) Zero
          | Top -> ())
        y
    | Cell.Or ->
      Array.iteri
        (fun i yb ->
          match read st yb with
          | Zero ->
            refine_bit st a.(i) Zero;
            refine_bit st b.(i) Zero
          | One ->
            if read st a.(i) = Zero then refine_bit st b.(i) One;
            if read st b.(i) = Zero then refine_bit st a.(i) One
          | Top -> ())
        y
    | Cell.Xor ->
      Array.iteri
        (fun i yb ->
          let ty = read st yb in
          if ty <> Top then begin
            if read st a.(i) <> Top then
              refine_bit st b.(i) (t_xor ty (read st a.(i)));
            if read st b.(i) <> Top then
              refine_bit st a.(i) (t_xor ty (read st b.(i)))
          end)
        y
    | Cell.Xnor ->
      Array.iteri
        (fun i yb ->
          let ty = read st yb in
          if ty <> Top then begin
            if read st a.(i) <> Top then
              refine_bit st b.(i) (t_xnor ty (read st a.(i)));
            if read st b.(i) <> Top then
              refine_bit st a.(i) (t_xnor ty (read st b.(i)))
          end)
        y
    | Cell.Eq -> (
      match read st y.(0) with
      | One -> assume_eq st a b
      | Zero -> assume_ne st a b
      | Top -> ())
    | Cell.Ne -> (
      match read st y.(0) with
      | One -> assume_ne st a b
      | Zero -> assume_eq st a b
      | Top -> ())
    | Cell.Logic_and -> (
      match read st y.(0) with
      | One ->
        assume_nonzero st a;
        assume_nonzero st b
      | Zero ->
        if nonzero st a then assume_zero st b;
        if nonzero st b then assume_zero st a
      | Top -> ())
    | Cell.Logic_or -> (
      match read st y.(0) with
      | Zero ->
        assume_zero st a;
        assume_zero st b
      | One ->
        if zero st a then assume_nonzero st b;
        if zero st b then assume_nonzero st a
      | Top -> ())
    | Cell.Add | Cell.Sub -> ())
  | Cell.Mux { a; b; s; y } -> (
    (* the output disagreeing with a branch forces the select away *)
    let w = Array.length y in
    let differs br =
      let d = ref false in
      for i = 0 to w - 1 do
        let ty = read st y.(i) and tb = read st br.(i) in
        if ty <> Top && tb <> Top && ty <> tb then d := true
      done;
      !d
    in
    (match get_itv st y with
    | Some iy ->
      (match get_itv st a with
      | Some ia when itv_disjoint iy ia -> refine_bit st s One
      | _ -> ());
      (match get_itv st b with
      | Some ib when itv_disjoint iy ib -> refine_bit st s Zero
      | _ -> ())
    | None -> ());
    if differs a then refine_bit st s One;
    if differs b then refine_bit st s Zero;
    match read st s with
    | One -> assume_eq st y b
    | Zero -> assume_eq st y a
    | Top -> ())
  | Cell.Pmux { a; b; s; y } -> (
    (* when exactly one branch remains feasible, the output equals it *)
    let w = Array.length y and n = Array.length s in
    let sel = read_vec st s in
    let feasible = ref [] in
    let blocked = ref false in
    for i = 0 to n - 1 do
      if (not !blocked) && sel.(i) <> Zero then
        feasible := slice_b b i w :: !feasible;
      if sel.(i) = One then blocked := true
    done;
    if not !blocked then feasible := a :: !feasible;
    match !feasible with [ only ] -> assume_eq st y only | _ -> ())

(* --- the sweep loop --- *)

let default_max_sweeps = 8

let run ?(seeds = []) ?(max_sweeps = default_max_sweeps)
    (circuit : Circuit.t) (cells : int list) : result =
  let st = create () in
  try
    List.iter (fun (b, v) -> refine_bit st b (tern_of_bool v)) seeds;
    let cell_list = List.map (Circuit.cell circuit) cells in
    let rev_list = List.rev cell_list in
    let sweeps = ref 0 in
    let continue_ = ref true in
    while !continue_ && !sweeps < max_sweeps do
      st.dirty <- false;
      incr sweeps;
      List.iter (transfer st) cell_list;
      List.iter (narrow st) rev_list;
      if not st.dirty then continue_ := false
    done;
    Converged { state = st; sweeps = !sweeps }
  with Bottom -> Contradiction
