(* Cross-query verdict memoization for the decision engine.

   A determine query is fully characterized by (pruned sub-graph, known
   assignments, target): the verdict of the sim and SAT rungs is a pure
   function of that triple.  The same triple recurs constantly — sibling
   branches of a muxtree share path prefixes, and the workload generators
   stamp out structurally identical trees — so verdicts are cached across
   muxtrees (and across passes within a run) under a canonical structural
   key.

   The key is alpha-equivalent: wire identities are erased by numbering
   bits in first-use order of a deterministic traversal that starts at the
   target's fanin cone inside the view and then walks the known bits in a
   canonical order (sorted by an independently computed cone fingerprint,
   then value).  Two sub-graphs that are isomorphic as labeled DAGs —
   same cell kinds, same port wiring, same known values, same target
   position — therefore produce the same key no matter which wire ids the
   circuit happens to use.  Known bits with no connection to the view
   (neither computed by it nor read by it) cannot influence the verdict
   and are excluded, so irrelevant facts do not split the key space.

   The full key string is stored (never just its hash), so a hash
   collision can only cost a probe, never return a wrong verdict.
   [Unknown] verdicts are never cached: they depend on the conflict
   budget and on accumulated solver state, not on the triple alone.

   Process-global like the metrics registry; [reset] scopes it to one
   run.  Bounded FIFO eviction keeps memory flat on large designs. *)

open Netlist

type verdict = Forced of bool | Free | Unreachable

let m_hits = Obs.Metrics.counter "memo.hits"
let m_misses = Obs.Metrics.counter "memo.misses"
let m_evictions = Obs.Metrics.counter "memo.evictions"

(* --- canonical key construction --- *)

type st = {
  buf : Buffer.t;
  canon : int Bits.Bit_tbl.t; (* bit -> canonical number, first-use order *)
  mutable next : int;
  emitted : (int, unit) Hashtbl.t; (* view cells already serialized *)
  driven_by : int Bits.Bit_tbl.t; (* output bit -> driving view cell *)
  circuit : Circuit.t;
}

let cell_token (cell : Cell.t) =
  match cell with
  | Cell.Unary { op; _ } -> "u" ^ Cell.unary_op_name op
  | Cell.Binary { op; _ } -> "b" ^ Cell.binary_op_name op
  | Cell.Mux _ -> "m"
  | Cell.Pmux _ -> "p"
  | Cell.Dff _ -> "d" (* excluded from views, but total anyway *)

let add_canon st b =
  Buffer.add_char st.buf 'w';
  Buffer.add_string st.buf (string_of_int (Bits.Bit_tbl.find st.canon b))

let fresh_canon st b =
  Bits.Bit_tbl.replace st.canon b st.next;
  st.next <- st.next + 1;
  add_canon st b

let rec ser_bit st (b : Bits.bit) =
  match b with
  | Bits.C0 -> Buffer.add_char st.buf '0'
  | Bits.C1 -> Buffer.add_char st.buf '1'
  | Bits.Cx -> Buffer.add_char st.buf 'x'
  | Bits.Of_wire _ -> (
    match Bits.Bit_tbl.find_opt st.canon b with
    | Some i ->
      Buffer.add_char st.buf 'w';
      Buffer.add_string st.buf (string_of_int i)
    | None -> (
      match Bits.Bit_tbl.find_opt st.driven_by b with
      | Some id when not (Hashtbl.mem st.emitted id) ->
        ser_cell st id;
        (* the cell's outputs were numbered just above *)
        if Bits.Bit_tbl.mem st.canon b then add_canon st b
        else fresh_canon st b
      | _ ->
        (* view source (or combinational-loop fallback): a free name *)
        fresh_canon st b))

and ser_cell st id =
  Hashtbl.replace st.emitted id ();
  let cell = Circuit.cell st.circuit id in
  Buffer.add_char st.buf '{';
  Buffer.add_string st.buf (cell_token cell);
  List.iter
    (fun port ->
      Buffer.add_char st.buf '(';
      Array.iter
        (fun b ->
          ser_bit st b;
          Buffer.add_char st.buf ',')
        port;
      Buffer.add_char st.buf ')')
    (Cell.inputs cell);
  List.iter
    (fun b ->
      if not (Bits.Bit_tbl.mem st.canon b) then begin
        Bits.Bit_tbl.replace st.canon b st.next;
        st.next <- st.next + 1
      end)
    (Cell.output_bits cell);
  Buffer.add_char st.buf '}'

let fresh_st circuit driven_by =
  {
    buf = Buffer.create 256;
    canon = Bits.Bit_tbl.create 64;
    next = 0;
    emitted = Hashtbl.create 32;
    driven_by;
    circuit;
  }

(* Canonical key of one query.  [known] bits unrelated to the view are
   excluded — they cannot affect any rung's verdict. *)
let key (circuit : Circuit.t) (view : Subgraph.view)
    (known : bool Bits.Bit_tbl.t) ~(target : Bits.bit) : string =
  let driven_by = Bits.Bit_tbl.create 64 in
  List.iter
    (fun id ->
      List.iter
        (fun b -> Bits.Bit_tbl.replace driven_by b id)
        (Cell.output_bits (Circuit.cell circuit id)))
    view.Subgraph.cells;
  let is_source b = List.exists (Bits.bit_equal b) view.Subgraph.sources in
  let relevant_knowns =
    Bits.Bit_tbl.fold
      (fun b v acc ->
        if Bits.Bit_tbl.mem driven_by b || is_source b then (b, v) :: acc
        else acc)
      known []
  in
  (* order knowns by an independent fingerprint of each cone, so the order
     is a function of structure, not of wire ids or hash-table layout *)
  let fingerprint b =
    let st = fresh_st circuit driven_by in
    ser_bit st b;
    Buffer.contents st.buf
  in
  let sorted =
    List.sort
      (fun (b1, v1) (b2, v2) ->
        let c = compare (fingerprint b1) (fingerprint b2) in
        if c <> 0 then c else compare v1 v2)
      relevant_knowns
  in
  let st = fresh_st circuit driven_by in
  Buffer.add_string st.buf "T:";
  ser_bit st target;
  List.iter
    (fun (b, v) ->
      Buffer.add_string st.buf (if v then "|K1:" else "|K0:");
      ser_bit st b)
    sorted;
  Buffer.contents st.buf

(* --- the bounded store --- *)

let default_capacity = 65536

(* A store owns its entries; [base] is an optional frozen fallback it
   reads through.  The parallel scheduler gives each task a fresh
   overlay whose base is the coordinator's store — safe to read from
   many domains at once because the coordinator is blocked at the
   barrier while workers run, so nobody writes it — and absorbs the
   overlays back in task order.  The serve daemon keeps one warm store
   across jobs the same way. *)
type t = {
  mutable capacity : int;
  tbl : (string, verdict) Hashtbl.t;
  order : string Queue.t; (* insertion order, for FIFO eviction *)
  base : t option;
}

let make ?(capacity = default_capacity) ?base () =
  { capacity; tbl = Hashtbl.create 1024; order = Queue.create (); base }

let global : t = make ()

(* Domain-local overlay; [None] means "use the process-global store",
   which only the main domain does. *)
let overlay_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () =
  match Domain.DLS.get overlay_key with Some s -> s | None -> global

let install_overlay ?capacity ?base () =
  Domain.DLS.set overlay_key (Some (make ?capacity ?base ()))

(* Make an existing store the current domain's — the serve daemon keeps
   one warm store across jobs this way. *)
let install (s : t) = Domain.DLS.set overlay_key (Some s)

let uninstall_overlay () = Domain.DLS.set overlay_key None

(* Displace/restore the overlay slot around an inline task, so nesting
   (a per-task overlay inside a serve worker's warm per-job overlay)
   puts the outer store back when the task closes. *)
type saved = t option

let save () : saved = Domain.DLS.get overlay_key
let restore (s : saved) = Domain.DLS.set overlay_key s

let reset ?capacity:(c = default_capacity) () =
  let s = current () in
  s.capacity <- c;
  Hashtbl.reset s.tbl;
  Queue.clear s.order

let size () = Hashtbl.length (current ()).tbl

let rec find_in (s : t) k =
  match Hashtbl.find_opt s.tbl k with
  | Some v -> Some v
  | None -> ( match s.base with Some b -> find_in b k | None -> None)

let find k : verdict option =
  match find_in (current ()) k with
  | Some v ->
    Obs.Metrics.incr m_hits;
    Some v
  | None ->
    Obs.Metrics.incr m_misses;
    None

let store k (v : verdict) =
  let s = current () in
  if find_in s k = None then begin
    if Hashtbl.length s.tbl >= s.capacity && s.capacity > 0 then (
      match Queue.take_opt s.order with
      | Some oldest ->
        Hashtbl.remove s.tbl oldest;
        Obs.Metrics.incr m_evictions
      | None -> ());
    if s.capacity > 0 then begin
      Hashtbl.replace s.tbl k v;
      Queue.add k s.order
    end
  end

(* --- worker capture / merge --- *)

type snapshot = (string * verdict) list

(* Drain the overlay's own entries in insertion order and uninstall it.
   Absorbing snapshots in task order therefore replays stores in a
   schedule-independent order. *)
let capture_overlay () : snapshot =
  match Domain.DLS.get overlay_key with
  | None -> []
  | Some s ->
    Domain.DLS.set overlay_key None;
    Queue.fold
      (fun acc k ->
        match Hashtbl.find_opt s.tbl k with
        | Some v -> (k, v) :: acc
        | None -> acc)
      [] s.order
    |> List.rev

let absorb (snap : snapshot) = List.iter (fun (k, v) -> store k v) snap

let to_json () : Obs.Json.t =
  let hits = Obs.Metrics.value m_hits in
  let misses = Obs.Metrics.value m_misses in
  let rate =
    if hits + misses = 0 then 0.0
    else float_of_int hits /. float_of_int (hits + misses)
  in
  Obs.Json.Obj
    [
      ("hits", Obs.Json.num_of_int hits);
      ("misses", Obs.Json.num_of_int misses);
      ("evictions", Obs.Json.num_of_int (Obs.Metrics.value m_evictions));
      ("entries", Obs.Json.num_of_int (size ()));
      ("capacity", Obs.Json.num_of_int (current ()).capacity);
      ("hit_rate", Obs.Json.Num rate);
    ]
