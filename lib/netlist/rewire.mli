(** Signal substitution used by optimization passes. *)

val is_port_bit : Circuit.t -> Bits.bit -> bool
(** Does the bit belong to an input or output port wire? *)

val replace_sig : Circuit.t -> from_:Bits.sigspec -> to_:Bits.sigspec -> unit
(** Rewrite every reader of [from_] to read [to_] instead.  Bits of
    [from_] that belong to output ports cannot be renamed; a transparent
    or-with-zero buffer (free after AIG mapping) is inserted to keep them
    driven.  The caller removes the old driver cell.
    @raise Invalid_argument on width mismatch. *)
