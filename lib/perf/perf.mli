(** Continuous benchmarking: a statistical runner, a committed baseline
    store, and a regression gate over the bench harness's measurements.

    The pipeline is: {!Measure} runs a case [R] times on the monotonic
    clock and {!Stat} condenses the repetitions into median/min/MAD;
    {!Schema} fixes the versioned on-disk document ([smartly-bench-v1])
    each bench section emits; {!Store} reads and writes those documents
    under [bench/baselines/]; {!Compare} diffs a fresh document against
    the committed one, classifying every metric with per-kind noise
    thresholds; {!Gate} folds the diffs of a whole run into one
    pass/fail verdict with a printable report. *)

(** Robust summary statistics over repeated measurements.  Median and
    median-absolute-deviation rather than mean/stddev: one preempted
    repetition must not move the committed number. *)
module Stat : sig
  type summary = {
    median : float;
    min : float;
    mad : float;  (** median absolute deviation around the median *)
    runs : int;
  }

  val median : float array -> float
  (** Of a non-empty array; the mean of the middle pair for even sizes.
      0 for an empty array.  Does not mutate its argument. *)

  val summarize : float list -> summary
  (** [runs]=0 summary (all zeros) for the empty list. *)
end

(** The repetition runner: time a thunk [reps] times on {!Obs.Clock},
    with GC accounting bracketed around the final repetition. *)
module Measure : sig
  type timed = { wall : Stat.summary; gc : Obs.Metrics.gc_delta }

  val repeat :
    reps:int -> ?prepare:(unit -> unit) -> (unit -> 'a) -> 'a * timed
  (** Run [f] [max 1 reps] times, returning the {e last} repetition's
      result.  [prepare] runs before every repetition, outside the timed
      region — the bench uses it to zero metrics so counters read after
      [repeat] describe exactly one run. *)
end

(** The versioned benchmark document: what a bench section measured, for
    which cases, in which environment. *)
module Schema : sig
  val version : string
  (** ["smartly-bench-v1"]. *)

  (** The metric's noise model.  [Area] and [Count] are deterministic
      (same seed, same binary => same value) and compare exactly; [Time]
      and [Gc] are noisy and compare within a relative band. *)
  type kind = Area | Count | Time | Gc

  val kind_name : kind -> string
  val kind_of_name : string -> kind option

  type direction = Lower_better | Higher_better

  type metric = {
    name : string;
    kind : kind;
    direction : direction;
    value : float;  (** the committed figure; median when [runs > 1] *)
    min : float option;  (** fastest repetition, [Time] metrics *)
    mad : float option;
    runs : int option;
  }

  val scalar :
    ?direction:direction -> name:string -> kind:kind -> float -> metric
  (** A deterministic single measurement; [direction] defaults to
      [Lower_better]. *)

  val timing : name:string -> Stat.summary -> metric
  (** A [Time]/[Lower_better] metric carrying median, min, MAD and the
      repetition count. *)

  type case = { name : string; metrics : metric list }

  (** Where the numbers came from: compared documents print their
      fingerprints side by side so a cross-machine diff is never
      mistaken for a regression. *)
  type env = {
    hostname : string;
    ocaml_version : string;
    git_rev : string;
    repetitions : int;
    created : string;  (** UTC [YYYY-MM-DD] *)
  }

  val fingerprint : reps:int -> env
  (** Of the running process; [git_rev] is ["unknown"] outside a git
      checkout. *)

  val env_to_json : env -> Obs.Json.t
  (** The ["env"] object of {!to_json}, standalone — the run-ledger
      manifest ({!Obs.Ledger}) reuses the same fingerprint shape. *)

  type doc = { section : string; env : env; cases : case list }

  val to_json : doc -> Obs.Json.t
  val of_json : Obs.Json.t -> (doc, string) result
  (** Rejects documents whose [schema] field is not {!version}. *)

  val to_string : doc -> string
  (** Pretty JSON, trailing newline; what {!Store.save} writes. *)

  val of_string : string -> (doc, string) result
end

(** Classify a fresh document against a baseline, metric by metric. *)
module Compare : sig
  type status =
    | Improved
    | Regressed
    | Unchanged
    | New_metric  (** in the current document only *)
    | Missing_metric  (** in the baseline only *)

  val status_name : status -> string

  val classify :
    ?scale:float ->
    kind:Schema.kind ->
    direction:Schema.direction ->
    float ->
    float ->
    status
  (** [classify ~kind ~direction base cur].
      [Area]/[Count] compare exactly; [Time] within a 25% relative band,
      [Gc] within 30%, both with a small absolute floor so near-zero
      baselines don't amplify jitter.  [scale] multiplies the noisy-kind
      bands (CI passes a loose scale to absorb cross-machine variance);
      it never loosens the exact kinds. *)

  type metric_diff = {
    name : string;
    kind : Schema.kind;
    base : float option;
    cur : float option;
    delta_pct : float option;  (** [None] when either side is missing *)
    status : status;
  }

  type case_diff = { case : string; rows : metric_diff list }

  type t = {
    section : string;
    base_env : Schema.env;
    cur_env : Schema.env;
    cases : case_diff list;  (** baseline order; new cases appended *)
    missing_cases : string list;  (** in the baseline, not re-measured *)
    new_cases : string list;
  }

  val diff : ?scale:float -> baseline:Schema.doc -> Schema.doc -> t
  (** [diff ~baseline current]. *)

  val regressions : t -> (string * metric_diff) list
  (** [(case, metric)] rows with status [Regressed]. *)

  val render : ?all:bool -> t -> string
  (** The per-case/per-metric table via {!Report.Table} (colored when
      {!Report.Table.set_color} is on) plus a one-line summary.  By
      default only non-[Unchanged] rows print; [all] shows everything. *)

  val to_json : t -> Obs.Json.t
  (** Machine-readable diff ([smartly-bench-diff-v1]), for artifacts. *)
end

(** The on-disk baseline store: one document per bench section. *)
module Store : sig
  val default_dir : string
  (** ["bench/baselines"], relative to the repository root (bench runs
      from there under dune). *)

  val path : dir:string -> section:string -> string
  (** [dir/BENCH_<section>.json]. *)

  val save : dir:string -> Schema.doc -> string
  (** Write (creating [dir] if needed) and return the path. *)

  val load : dir:string -> section:string -> (Schema.doc, string) result
  (** [Error] distinguishes a missing file (advising [--update-baselines])
      from a malformed one. *)
end

(** Fold a whole bench run's diffs into one verdict. *)
module Gate : sig
  type outcome = {
    diffs : Compare.t list;
    missing_baselines : string list;  (** sections with no committed doc *)
    load_errors : (string * string) list;  (** section, message *)
  }

  val check : ?scale:float -> dir:string -> Schema.doc list -> outcome
  (** Diff every fresh document against its committed baseline. *)

  val ok : outcome -> bool
  (** No regressions, no dropped cases, every baseline present and
      well-formed. *)

  val render : ?all:bool -> outcome -> string
  (** Diff tables for every section plus the verdict line naming each
      offending metric. *)
end
