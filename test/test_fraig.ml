(* Tests for the FRAIG-based equivalence checker, including agreement with
   the monolithic miter on small random instances. *)

open Netlist

let check_bool = Alcotest.(check bool)

let expose c name (v : Bits.sigspec) =
  let y = Circuit.add_output c name ~width:(Bits.width v) in
  ignore
    (Circuit.add_cell c
       (Cell.Binary
          { op = Cell.Or; a = v; b = Bits.all_zero ~width:(Bits.width v);
            y = Circuit.sig_of_wire y }))

(* two structurally different implementations of the same function *)
let majority_v1 () =
  let c = Circuit.create "m" in
  let a = Circuit.add_input c "a" ~width:1 in
  let b = Circuit.add_input c "b" ~width:1 in
  let d = Circuit.add_input c "d" ~width:1 in
  let ab = Circuit.bit_of_wire a and bb = Circuit.bit_of_wire b in
  let db = Circuit.bit_of_wire d in
  let v =
    Circuit.mk_or c
      (Circuit.mk_or c (Circuit.mk_and c ab bb) (Circuit.mk_and c ab db))
      (Circuit.mk_and c bb db)
  in
  expose c "o" [| v |];
  c

let majority_v2 () =
  (* maj(a,b,d) = (a & (b | d)) | (b & d) *)
  let c = Circuit.create "m" in
  let a = Circuit.add_input c "a" ~width:1 in
  let b = Circuit.add_input c "b" ~width:1 in
  let d = Circuit.add_input c "d" ~width:1 in
  let ab = Circuit.bit_of_wire a and bb = Circuit.bit_of_wire b in
  let db = Circuit.bit_of_wire d in
  let v =
    Circuit.mk_or c
      (Circuit.mk_and c ab (Circuit.mk_or c bb db))
      (Circuit.mk_and c bb db)
  in
  expose c "o" [| v |];
  c

let test_fraig_positive () =
  let g1 = (Aiger.Aigmap.map (majority_v1 ())).Aiger.Aigmap.aig in
  let g2 = (Aiger.Aigmap.map (majority_v2 ())).Aiger.Aigmap.aig in
  check_bool "majority equal" true
    (Aiger.Fraig.check_aigs g1 g2 = Aiger.Fraig.Equivalent)

let test_fraig_negative () =
  let c2 = Circuit.create "m" in
  let a = Circuit.add_input c2 "a" ~width:1 in
  let b = Circuit.add_input c2 "b" ~width:1 in
  let _d = Circuit.add_input c2 "d" ~width:1 in
  let v = Circuit.mk_and c2 (Circuit.bit_of_wire a) (Circuit.bit_of_wire b) in
  expose c2 "o" [| v |];
  let g1 = (Aiger.Aigmap.map (majority_v1 ())).Aiger.Aigmap.aig in
  let g2 = (Aiger.Aigmap.map c2).Aiger.Aigmap.aig in
  (match Aiger.Fraig.check_aigs g1 g2 with
  | Aiger.Fraig.Not_equivalent _ -> ()
  | Aiger.Fraig.Equivalent | Aiger.Fraig.Inconclusive ->
    Alcotest.fail "maj vs and should differ")

(* random circuits: fraig verdict must agree with the monolithic miter *)
let gen_pair seed =
  let build variant =
    let c = Circuit.create "m" in
    let ins =
      List.init 4 (fun i -> Circuit.add_input c (Printf.sprintf "i%d" i) ~width:1)
    in
    let pool = ref (List.map Circuit.bit_of_wire ins) in
    let st = ref (seed + 101) in
    let next () =
      st := (!st * 1103515245) + 12345;
      (!st lsr 16) land 0xFFF
    in
    for k = 1 to 10 do
      let pick () = List.nth !pool (next () mod List.length !pool) in
      let a = pick () and b = pick () in
      let bit =
        match next () mod 4 with
        | 0 -> Circuit.mk_and c a b
        | 1 -> Circuit.mk_or c a b
        | 2 -> Circuit.mk_xor c a b
        | _ -> Circuit.mk_not c a
      in
      (* the variant flips one late gate to create inequivalent pairs *)
      let bit =
        if variant && k = 9 && seed mod 2 = 0 then Circuit.mk_not c bit
        else bit
      in
      pool := bit :: !pool
    done;
    expose c "o" [| List.hd !pool |];
    c
  in
  build false, build true

let prop_fraig_matches_monolithic =
  QCheck.Test.make ~count:60 ~name:"fraig = monolithic miter"
    QCheck.(int_bound 100000)
    (fun seed ->
      let c1, c2 = gen_pair seed in
      let g1 = (Aiger.Aigmap.map c1).Aiger.Aigmap.aig in
      let g2 = (Aiger.Aigmap.map c2).Aiger.Aigmap.aig in
      let f = Aiger.Fraig.check_aigs g1 g2 in
      let m = Equiv.check_aigs_monolithic g1 g2 in
      match f, m with
      | Aiger.Fraig.Equivalent, Equiv.Equivalent -> true
      | Aiger.Fraig.Not_equivalent _, Equiv.Not_equivalent _ -> true
      | _, _ -> false)

let test_fraig_after_optimization () =
  (* the production use: original vs smartly-optimized circuit *)
  let p =
    {
      Workloads.Profiles.name = "f";
      seed = 1234;
      style = `Chain;
      repeat = 2;
      mix =
        [
          Workloads.Profiles.Case
            { sel_width = 4; items = 12; width = 8; distinct = 3 };
          Workloads.Profiles.Correlated_ifs { depth = 3; width = 8 };
        ];
      register_fraction = 5;
    }
  in
  let c = Workloads.Profiles.circuit p in
  let orig = Circuit.copy c in
  ignore (Smartly.Driver.smartly c);
  check_bool "optimized equals original" true (Equiv.is_equivalent orig c)

let () =
  Alcotest.run "fraig"
    [
      ( "fraig",
        [
          Alcotest.test_case "positive" `Quick test_fraig_positive;
          Alcotest.test_case "negative" `Quick test_fraig_negative;
          Alcotest.test_case "after optimization" `Quick
            test_fraig_after_optimization;
          QCheck_alcotest.to_alcotest prop_fraig_matches_monolithic;
        ] );
    ]
