(** A persistent incremental SAT session: one solver and one Tseitin
    variable map serving every redundancy query over a circuit.

    Cells are encoded lazily, once, with their clauses guarded by a
    per-cell activation literal; a query assumes the guards of exactly
    its sub-graph's cells, which keeps the accumulated database
    equisatisfiable with a fresh per-query encoding while learned clauses
    survive across queries.  Mutated cells are detected structurally and
    flush the session (clauses cannot be retracted). *)

open Netlist

type t

val create : unit -> t

val prepare : t -> Circuit.t -> int list -> Lit.t list * int list
(** [prepare t c ids] lazily encodes any of [ids] not yet in the session
    and returns [(assumptions, relevant)].  The assumption literals of
    the query are the activation guards of [ids] positively, and the
    guard of every other encoded group negated (switching inactive
    groups off costs the search nothing, where leaving them free would
    drag their clauses through watch traversal).  [relevant] is the
    union of the active groups' solver variables, to pass to
    {!Solver.solve} so the search stops once the query's own cone is
    assigned instead of deciding the whole accumulated database.  If any
    previously encoded cell of [ids] no longer matches the circuit, the
    whole session is flushed and re-encoded first (invalidating all
    previously returned literals). *)

val encoder : t -> Tseitin.t
(** The live encoder; invalidated by the next flush.  Use it for
    assumption literals ({!Tseitin.assume_lit}) and the query itself. *)

val flush : t -> unit
(** Drop everything: fresh solver, empty variable and cell maps. *)

val flushes : t -> int
(** Times the session was flushed by staleness (also a metric). *)

val encoded_cells : t -> int
(** Cells currently encoded in the session. *)
