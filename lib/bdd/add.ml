(* Hash-consed Algebraic Decision Diagrams (ADDs).

   An ADD generalizes a BDD from {0,1} terminals to arbitrary integer
   terminals.  Nodes follow a fixed variable order (smaller index on top)
   and are reduced: no node has identical children, and structurally equal
   nodes are shared. *)

type t = { id : int; node : node }

and node =
  | Leaf of int
  | Node of { var : int; lo : t; hi : t }

type manager = {
  mutable next_id : int;
  leaves : (int, t) Hashtbl.t;
  nodes : (int * int * int, t) Hashtbl.t; (* var, lo id, hi id *)
  apply_memo : (int * int * int, t) Hashtbl.t; (* op tag, id, id *)
}

let manager () =
  {
    next_id = 0;
    leaves = Hashtbl.create 16;
    nodes = Hashtbl.create 64;
    apply_memo = Hashtbl.create 64;
  }

let leaf m v =
  match Hashtbl.find_opt m.leaves v with
  | Some t -> t
  | None ->
    let t = { id = m.next_id; node = Leaf v } in
    m.next_id <- m.next_id + 1;
    Hashtbl.replace m.leaves v t;
    t

let mk m ~var ~lo ~hi =
  if lo.id = hi.id then lo
  else begin
    let key = var, lo.id, hi.id in
    match Hashtbl.find_opt m.nodes key with
    | Some t -> t
    | None ->
      let t = { id = m.next_id; node = Node { var; lo; hi } } in
      m.next_id <- m.next_id + 1;
      Hashtbl.replace m.nodes key t;
      t
  end

let is_leaf t = match t.node with Leaf _ -> true | Node _ -> false

let leaf_value t =
  match t.node with
  | Leaf v -> v
  | Node _ -> invalid_arg "Add.leaf_value: internal node"

(* Evaluate under an assignment of variables to booleans. *)
let rec eval t assignment =
  match t.node with
  | Leaf v -> v
  | Node { var; lo; hi } ->
    if assignment var then eval hi assignment else eval lo assignment

(* Number of internal (decision) nodes. *)
let count_nodes t =
  let seen = Hashtbl.create 64 in
  let rec go t =
    if Hashtbl.mem seen t.id then 0
    else begin
      Hashtbl.replace seen t.id ();
      match t.node with
      | Leaf _ -> 0
      | Node { lo; hi; _ } -> 1 + go lo + go hi
    end
  in
  go t

(* Distinct terminal values reachable from [t]. *)
let terminals t =
  let seen = Hashtbl.create 64 in
  let acc = Hashtbl.create 16 in
  let rec go t =
    if not (Hashtbl.mem seen t.id) then begin
      Hashtbl.replace seen t.id ();
      match t.node with
      | Leaf v -> Hashtbl.replace acc v ()
      | Node { lo; hi; _ } ->
        go lo;
        go hi
    end
  in
  go t;
  Hashtbl.fold (fun v () l -> v :: l) acc [] |> List.sort compare

(* Combine two ADDs with a binary function on terminals. *)
let apply m ~tag f a b =
  let rec go a b =
    let key = tag, a.id, b.id in
    match Hashtbl.find_opt m.apply_memo key with
    | Some t -> t
    | None ->
      let result =
        match a.node, b.node with
        | Leaf va, Leaf vb -> leaf m (f va vb)
        | Node { var; lo; hi }, Leaf _ ->
          mk m ~var ~lo:(go lo b) ~hi:(go hi b)
        | Leaf _, Node { var; lo; hi } ->
          mk m ~var ~lo:(go a lo) ~hi:(go a hi)
        | Node na, Node nb ->
          if na.var = nb.var then
            mk m ~var:na.var ~lo:(go na.lo nb.lo) ~hi:(go na.hi nb.hi)
          else if na.var < nb.var then
            mk m ~var:na.var ~lo:(go na.lo b) ~hi:(go na.hi b)
          else mk m ~var:nb.var ~lo:(go a nb.lo) ~hi:(go a nb.hi)
      in
      Hashtbl.replace m.apply_memo key result;
      result
  in
  go a b

(* Map terminals. *)
let map m f t =
  let memo = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some r -> r
    | None ->
      let r =
        match t.node with
        | Leaf v -> leaf m (f v)
        | Node { var; lo; hi } -> mk m ~var ~lo:(go lo) ~hi:(go hi)
      in
      Hashtbl.replace memo t.id r;
      r
  in
  go t

(* Fix a variable's value. *)
let restrict m ~var:rv ~value t =
  let memo = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some r -> r
    | None ->
      let r =
        match t.node with
        | Leaf _ -> t
        | Node { var; lo; hi } ->
          if var = rv then if value then hi else lo
          else if var > rv then t
          else mk m ~var ~lo:(go lo) ~hi:(go hi)
      in
      Hashtbl.replace memo t.id r;
      r
  in
  go t

(* --- BDD view: ADDs with {0,1} terminals --- *)

let bdd_false m = leaf m 0
let bdd_true m = leaf m 1
let bdd_var m var = mk m ~var ~lo:(bdd_false m) ~hi:(bdd_true m)
let bdd_and m = apply m ~tag:1 (fun a b -> a land b)
let bdd_or m = apply m ~tag:2 (fun a b -> a lor b)
let bdd_xor m = apply m ~tag:3 (fun a b -> a lxor b)
let bdd_not m = map m (fun v -> 1 - v)

(* ITE with a BDD condition over ADD branches. *)
let ite m cond ~then_ ~else_ =
  (* cond * then + (1-cond) * else, done structurally *)
  let rec go c a b =
    match c.node with
    | Leaf 0 -> b
    | Leaf _ -> a
    | Node { var; lo; hi } ->
      let split t =
        match t.node with
        | Node n when n.var = var -> n.lo, n.hi
        | Leaf _ | Node _ -> t, t
      in
      let alo, ahi = split a and blo, bhi = split b in
      mk m ~var ~lo:(go lo alo blo) ~hi:(go hi ahi bhi)
  in
  go cond then_ else_

(* --- building from priority rows (case statements) --- *)

type pbit = P0 | P1 | Pz (* pattern bit: 0, 1, wildcard *)

(* Rows are in priority order: the first matching row wins; [default] is
   the value when no row matches.  Variable i is bit i of the selector. *)
let of_rows m ~num_vars (rows : (pbit array * int) list) ~default =
  let rec build v rows =
    match rows with
    | [] -> leaf m default
    | (_, value) :: _ when v >= num_vars -> leaf m value
    | rows ->
      (* if the top row matches everything from here on, it wins outright *)
      let top_all_z (cube, _) =
        let all = ref true in
        Array.iteri (fun i b -> if i >= v && b <> Pz then all := false) cube;
        !all
      in
      (match rows with
      | row :: _ when top_all_z row -> leaf m (snd row)
      | _ ->
        let filter bitv =
          List.filter
            (fun (cube, _) ->
              match cube.(v) with
              | Pz -> true
              | P0 -> bitv = false
              | P1 -> bitv = true)
            rows
        in
        build (v + 1) (filter false) |> fun lo ->
        build (v + 1) (filter true) |> fun hi ->
        mk m ~var:v ~lo ~hi)
  in
  build 0 rows

let rec pp ppf t =
  match t.node with
  | Leaf v -> Fmt.pf ppf "#%d" v
  | Node { var; lo; hi } -> Fmt.pf ppf "(x%d ? %a : %a)" var pp hi pp lo
