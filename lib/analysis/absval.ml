(* The two cooperating abstract domains of the value analysis.

   Known-bits: one ternary value per wire bit — definitely 0, definitely
   1, or unconstrained (top).  Intervals: an unsigned [lo, hi] range per
   sigspec, tracked only up to [max_itv_width] bits so every bound fits a
   native int.  The two domains reduce into each other: an interval whose
   endpoints share a binary prefix pins the prefix bits, and the bitwise
   bounds of a vector (sum of known ones / sum of possible ones) are a
   valid interval regardless of bit correlations.

   Everything here is a *meet*: values only ever get more precise, and an
   empty meet raises [Bottom] — the caller's signal that the assumed facts
   are contradictory (a dead path). *)

open Netlist

type tern = Zero | One | Top

exception Bottom

type itv = { lo : int; hi : int } (* invariant: 0 <= lo <= hi *)

(* Sigspecs wider than this carry no interval (bounds would overflow);
   their bits are still tracked individually. *)
let max_itv_width = 62

type state = {
  bits : tern Bits.Bit_tbl.t;
  itvs : (Bits.bit array, itv) Hashtbl.t;
  mutable dirty : bool; (* any strengthening since the last reset *)
}

let create () =
  { bits = Bits.Bit_tbl.create 64; itvs = Hashtbl.create 16; dirty = false }

(* --- ternary lattice --- *)

let tern_of_bool b = if b then One else Zero
let join a b = if a = b then a else Top

let meet a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | _ -> if a = b then a else raise Bottom

let t_not = function Zero -> One | One -> Zero | Top -> Top

let t_and a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | _ -> Top

let t_or a b =
  match (a, b) with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | _ -> Top

let t_xor a b =
  match (a, b) with Top, _ | _, Top -> Top | _ -> if a = b then Zero else One

let t_xnor a b = t_not (t_xor a b)

(* majority(a, b, c): the carry of a full adder and (on complemented
   inputs) the borrow of a full subtractor *)
let t_maj a b c = t_or (t_or (t_and a b) (t_and a c)) (t_and b c)

let read st (b : Bits.bit) : tern =
  match b with
  | Bits.C0 -> Zero
  | Bits.C1 -> One
  | Bits.Cx -> Top
  | Bits.Of_wire _ -> (
    match Bits.Bit_tbl.find_opt st.bits b with Some t -> t | None -> Top)

let read_vec st (s : Bits.sigspec) : tern array = Array.map (read st) s

let refine_bit st (b : Bits.bit) (t : tern) =
  match b with
  | Bits.C0 -> if t = One then raise Bottom
  | Bits.C1 -> if t = Zero then raise Bottom
  | Bits.Cx -> ()
  | Bits.Of_wire _ ->
    let cur = read st b in
    let m = meet cur t in
    if m <> cur then begin
      Bits.Bit_tbl.replace st.bits b m;
      st.dirty <- true
    end

(* --- intervals --- *)

let itv_meet a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then raise Bottom;
  { lo; hi }

(* index of the highest set bit, plus one; 0 for 0 *)
let bits_needed x =
  let r = ref 0 and v = ref x in
  while !v <> 0 do
    incr r;
    v := !v lsr 1
  done;
  !r

(* Bitwise bounds: each bit contributes independently, so the sum of the
   definite ones is a lower bound and adding every possible one an upper
   bound — sound whatever the correlations between bits. *)
let bits_itv st (s : Bits.sigspec) : itv option =
  let w = Array.length s in
  if w > max_itv_width then None
  else begin
    let lo = ref 0 and hi = ref 0 in
    Array.iteri
      (fun i b ->
        match read st b with
        | One ->
          lo := !lo lor (1 lsl i);
          hi := !hi lor (1 lsl i)
        | Top -> hi := !hi lor (1 lsl i)
        | Zero -> ())
      s;
    Some { lo = !lo; hi = !hi }
  end

let get_itv st (s : Bits.sigspec) : itv option =
  match bits_itv st s with
  | None -> None
  | Some bitwise -> (
    match Hashtbl.find_opt st.itvs s with
    | Some stored -> Some (itv_meet stored bitwise)
    | None -> Some bitwise)

let refine_itv st (s : Bits.sigspec) (v : itv) =
  let w = Array.length s in
  if w <= max_itv_width then begin
    let full = (1 lsl w) - 1 in
    let v = { lo = max v.lo 0; hi = min v.hi full } in
    if v.lo > v.hi then raise Bottom;
    let m =
      match get_itv st s with Some cur -> itv_meet cur v | None -> v
    in
    (match Hashtbl.find_opt st.itvs s with
    | Some old when old.lo = m.lo && old.hi = m.hi -> ()
    | _ ->
      Hashtbl.replace st.itvs s m;
      st.dirty <- true);
    (* the common binary prefix of the two endpoints holds for every
       value in between: pin those bits *)
    let k = bits_needed (m.lo lxor m.hi) in
    for i = k to w - 1 do
      refine_bit st s.(i) (tern_of_bool ((m.lo lsr i) land 1 = 1))
    done
  end

(* --- interval transfer helpers (all widths <= max_itv_width) --- *)

let itv_top w = { lo = 0; hi = (1 lsl w) - 1 }

(* wrapping add: keep the range when no summand pair wraps, or when every
   one does (consistent wrap); a range straddling 2^w folds to top *)
let itv_add w a b =
  let m = 1 lsl w in
  let lo = a.lo + b.lo and hi = a.hi + b.hi in
  if hi < m then Some { lo; hi }
  else if lo >= m then Some { lo = lo - m; hi = hi - m }
  else None

let itv_sub w a b =
  let m = 1 lsl w in
  let lo = a.lo - b.hi and hi = a.hi - b.lo in
  if lo >= 0 then Some { lo; hi }
  else if hi < 0 then Some { lo = lo + m; hi = hi + m }
  else None

let itv_and a b = { lo = 0; hi = min a.hi b.hi }

let itv_or a b =
  let k = max (bits_needed a.hi) (bits_needed b.hi) in
  { lo = max a.lo b.lo; hi = (1 lsl k) - 1 }

let itv_xor a b =
  let k = max (bits_needed a.hi) (bits_needed b.hi) in
  { lo = 0; hi = (1 lsl k) - 1 }

let itv_is_singleton v = v.lo = v.hi
let itv_disjoint a b = a.hi < b.lo || b.hi < a.lo

(* --- derived predicates --- *)

(* definitely nonzero / definitely zero, falling back to a bit scan for
   vectors too wide for an interval *)
let nonzero st (s : Bits.sigspec) =
  match get_itv st s with
  | Some v -> v.lo >= 1
  | None -> Array.exists (fun b -> read st b = One) s

let zero st (s : Bits.sigspec) =
  match get_itv st s with
  | Some v -> v.hi = 0
  | None -> Array.for_all (fun b -> read st b = Zero) s

let definite st (s : Bits.sigspec) : int option =
  match get_itv st s with Some v when v.lo = v.hi -> Some v.lo | None | Some _ -> None

let all_definite st (s : Bits.sigspec) =
  Array.for_all (fun b -> read st b <> Top) s

(* MSB-first bit string, e.g. "01??" — the analyze report's rendering *)
let to_string st (s : Bits.sigspec) =
  String.init (Array.length s) (fun i ->
      match read st s.(Array.length s - 1 - i) with
      | Zero -> '0'
      | One -> '1'
      | Top -> '?')
