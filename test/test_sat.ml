(* Tests for the CDCL SAT solver: hand cases + random CNF vs brute force. *)

let lit v ~neg = Cdcl.Lit.of_var ~negated:neg v

let test_trivial_sat () =
  let s = Cdcl.Solver.create () in
  let a = Cdcl.Solver.new_var s in
  Cdcl.Solver.add_clause s [ lit a ~neg:false ];
  Alcotest.(check bool) "sat" true (Cdcl.Solver.solve s = Cdcl.Solver.Sat);
  Alcotest.(check bool) "model a" true (Cdcl.Solver.model_value s a)

let test_trivial_unsat () =
  let s = Cdcl.Solver.create () in
  let a = Cdcl.Solver.new_var s in
  Cdcl.Solver.add_clause s [ lit a ~neg:false ];
  Cdcl.Solver.add_clause s [ lit a ~neg:true ];
  Alcotest.(check bool) "unsat" true (Cdcl.Solver.solve s = Cdcl.Solver.Unsat)

let test_unit_chain () =
  (* a; ~a | b; ~b | c  =>  all true *)
  let s = Cdcl.Solver.create () in
  let a = Cdcl.Solver.new_var s in
  let b = Cdcl.Solver.new_var s in
  let c = Cdcl.Solver.new_var s in
  Cdcl.Solver.add_clause s [ lit a ~neg:false ];
  Cdcl.Solver.add_clause s [ lit a ~neg:true; lit b ~neg:false ];
  Cdcl.Solver.add_clause s [ lit b ~neg:true; lit c ~neg:false ];
  Alcotest.(check bool) "sat" true (Cdcl.Solver.solve s = Cdcl.Solver.Sat);
  Alcotest.(check bool) "c true" true (Cdcl.Solver.model_value s c)

let test_assumptions () =
  (* ~a | b.  Under assumption a: b must be true.  Under a & ~b: unsat. *)
  let s = Cdcl.Solver.create () in
  let a = Cdcl.Solver.new_var s in
  let b = Cdcl.Solver.new_var s in
  Cdcl.Solver.add_clause s [ lit a ~neg:true; lit b ~neg:false ];
  let r1 =
    Cdcl.Solver.solve s ~assumptions:[ lit a ~neg:false; lit b ~neg:true ]
  in
  Alcotest.(check bool) "a & ~b unsat" true (r1 = Cdcl.Solver.Unsat);
  let r2 = Cdcl.Solver.solve s ~assumptions:[ lit a ~neg:false ] in
  Alcotest.(check bool) "a sat" true (r2 = Cdcl.Solver.Sat);
  Alcotest.(check bool) "b forced" true (Cdcl.Solver.model_value s b);
  (* solver still usable and not permanently unsat *)
  let r3 = Cdcl.Solver.solve s in
  Alcotest.(check bool) "still sat" true (r3 = Cdcl.Solver.Sat)

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classic small unsat instance.
     var p(i,h) = pigeon i in hole h. *)
  let s = Cdcl.Solver.create () in
  let p = Array.init 3 (fun _ -> Array.init 2 (fun _ -> Cdcl.Solver.new_var s)) in
  for i = 0 to 2 do
    Cdcl.Solver.add_clause s
      [ lit p.(i).(0) ~neg:false; lit p.(i).(1) ~neg:false ]
  done;
  for h = 0 to 1 do
    for i = 0 to 2 do
      for j = i + 1 to 2 do
        Cdcl.Solver.add_clause s [ lit p.(i).(h) ~neg:true; lit p.(j).(h) ~neg:true ]
      done
    done
  done;
  Alcotest.(check bool) "php(3,2) unsat" true
    (Cdcl.Solver.solve s = Cdcl.Solver.Unsat)

let test_dimacs_roundtrip () =
  let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  let cnf = Cdcl.Dimacs.parse_string text in
  Alcotest.(check int) "vars" 3 cnf.Cdcl.Dimacs.num_vars;
  Alcotest.(check int) "clauses" 2 (List.length cnf.Cdcl.Dimacs.clauses);
  let s = Cdcl.Dimacs.load cnf in
  Alcotest.(check bool) "sat" true (Cdcl.Solver.solve s = Cdcl.Solver.Sat);
  let text2 = Cdcl.Dimacs.to_string cnf in
  let cnf2 = Cdcl.Dimacs.parse_string text2 in
  Alcotest.(check bool) "roundtrip" true
    (cnf.Cdcl.Dimacs.clauses = cnf2.Cdcl.Dimacs.clauses)

(* --- incremental use: the Session access pattern --- *)

(* pigeonhole clauses for [n] pigeons in [n-1] holes, each clause carrying
   [¬guard] when given — the clause-group encoding Cdcl.Session uses.
   With the guard assumed the instance is the classic unsat php(n, n-1);
   with the guard free the whole group can be switched off, so the solver
   stays reusable after refutation. *)
let add_php ?guard s n =
  let holes = n - 1 in
  let p = Array.init n (fun _ -> Array.init holes (fun _ -> Cdcl.Solver.new_var s)) in
  let cl lits =
    match guard with
    | None -> Cdcl.Solver.add_clause s lits
    | Some g -> Cdcl.Solver.add_clause s (Cdcl.Lit.negate g :: lits)
  in
  for i = 0 to n - 1 do
    cl (List.init holes (fun h -> lit p.(i).(h) ~neg:false))
  done;
  for h = 0 to holes - 1 do
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        cl [ lit p.(i).(h) ~neg:true; lit p.(j).(h) ~neg:true ]
      done
    done
  done

let fresh_guard s = Cdcl.Lit.of_var ~negated:false (Cdcl.Solver.new_var s)

let test_guarded_unsat_reusable () =
  let s = Cdcl.Solver.create () in
  let g = fresh_guard s in
  add_php ~guard:g s 4;
  Alcotest.(check bool) "guarded php unsat under assumption" true
    (Cdcl.Solver.solve s ~assumptions:[ g ] = Cdcl.Solver.Unsat);
  (* the refutation was assumption-driven: guard off, formula is sat *)
  Alcotest.(check bool) "sat with group off" true
    (Cdcl.Solver.solve s = Cdcl.Solver.Sat);
  (* still accepts new clauses and solves them *)
  let x = Cdcl.Solver.new_var s in
  Cdcl.Solver.add_clause s [ lit x ~neg:false ];
  Alcotest.(check bool) "grows after refutation" true
    (Cdcl.Solver.solve s = Cdcl.Solver.Sat);
  Alcotest.(check bool) "new unit in model" true (Cdcl.Solver.model_value s x);
  (* and the refutation is still reproducible *)
  Alcotest.(check bool) "guard still refutes" true
    (Cdcl.Solver.solve s ~assumptions:[ g ] = Cdcl.Solver.Unsat)

let test_budget_exhaustion_reusable () =
  let s = Cdcl.Solver.create () in
  let g = fresh_guard s in
  add_php ~guard:g s 6;
  (* php(6,5) needs far more than 2 conflicts: the capped call gives up *)
  let r = Cdcl.Solver.solve s ~assumptions:[ g ] ~budget:2 in
  Alcotest.(check bool) "budget exhausted -> unknown" true
    (r = Cdcl.Solver.Unknown);
  (* an Unknown answer must leave the solver fully usable *)
  Alcotest.(check bool) "usable after unknown" true
    (Cdcl.Solver.solve s = Cdcl.Solver.Sat);
  Alcotest.(check bool) "full budget still refutes" true
    (Cdcl.Solver.solve s ~assumptions:[ g ] = Cdcl.Solver.Unsat)

let test_budget_is_per_call () =
  (* regression: the budget once compared against the solver's LIFETIME
     conflict total, so a long-lived incremental solver that had already
     spent its budget answered Unknown to every later query, however
     trivial.  Burn well over [b] conflicts refuting a guarded php, then
     ask an easy budgeted query: it must still be answered. *)
  let s = Cdcl.Solver.create () in
  let g = fresh_guard s in
  add_php ~guard:g s 6;
  Alcotest.(check bool) "hard query refuted" true
    (Cdcl.Solver.solve s ~assumptions:[ g ] = Cdcl.Solver.Unsat);
  let b = 50 in
  Alcotest.(check bool) "test premise: lifetime conflicts exceed budget" true
    (Cdcl.Solver.num_conflicts s > b);
  let g2 = fresh_guard s in
  let x = Cdcl.Solver.new_var s in
  Cdcl.Solver.add_clause s [ Cdcl.Lit.negate g2; lit x ~neg:false ];
  Alcotest.(check bool) "easy budgeted query answered" true
    (Cdcl.Solver.solve s ~assumptions:[ g2 ] ~budget:b = Cdcl.Solver.Sat);
  Alcotest.(check bool) "forced by the group" true (Cdcl.Solver.model_value s x)

(* --- brute force reference --- *)

let brute_force_sat ~num_vars clauses =
  let rec try_assign v =
    if v = 1 lsl num_vars then false
    else
      let sat_clause clause =
        List.exists
          (fun d ->
            let var = abs d - 1 in
            let value = (v lsr var) land 1 = 1 in
            if d > 0 then value else not value)
          clause
      in
      if List.for_all sat_clause clauses then true else try_assign (v + 1)
  in
  try_assign 0

let gen_cnf =
  QCheck.Gen.(
    let* num_vars = int_range 1 10 in
    let* num_clauses = int_range 1 40 in
    let gen_lit =
      let* v = int_range 1 num_vars in
      let* neg = bool in
      return (if neg then -v else v)
    in
    let* clauses = list_size (return num_clauses) (list_size (int_range 1 4) gen_lit) in
    return (num_vars, clauses))

let arb_cnf =
  QCheck.make gen_cnf ~print:(fun (nv, cls) ->
      Cdcl.Dimacs.to_string { Cdcl.Dimacs.num_vars = nv; clauses = cls })

let prop_incremental_equals_scratch =
  (* interleave add_clause/solve: after every added clause, the
     incremental solver must agree with a from-scratch solver on the
     prefix, with and without assumptions, and Sat models must satisfy
     every clause added so far *)
  QCheck.Test.make ~count:150 ~name:"incremental solves = from-scratch"
    arb_cnf (fun (num_vars, clauses) ->
      let s = Cdcl.Solver.create () in
      for _ = 1 to num_vars do
        ignore (Cdcl.Solver.new_var s)
      done;
      let assum =
        [ Cdcl.Lit.of_var ~negated:false 0 ]
        @ if num_vars > 1 then [ Cdcl.Lit.of_var ~negated:true 1 ] else []
      in
      let model_ok prefix =
        List.for_all
          (fun clause ->
            List.exists
              (fun d ->
                let value = Cdcl.Solver.model_value s (abs d - 1) in
                if d > 0 then value else not value)
              clause)
          prefix
      in
      let rec go prefix_rev = function
        | [] -> true
        | c :: rest ->
          Cdcl.Solver.add_clause s
            (List.map (fun d -> Cdcl.Lit.of_var ~negated:(d < 0) (abs d - 1)) c);
          let prefix_rev = c :: prefix_rev in
          let prefix = List.rev prefix_rev in
          let scratch extra =
            Cdcl.Solver.solve
              (Cdcl.Dimacs.load { Cdcl.Dimacs.num_vars; clauses = prefix @ extra })
          in
          let ri = Cdcl.Solver.solve s in
          if ri <> scratch [] then false
          else if ri = Cdcl.Solver.Sat && not (model_ok prefix) then false
          else
            let ra = Cdcl.Solver.solve s ~assumptions:assum in
            let units = List.map (fun l -> [ Cdcl.Lit.to_dimacs l ]) assum in
            if ra <> scratch units then false
            else if ra = Cdcl.Solver.Sat && not (model_ok prefix) then false
            else go prefix_rev rest
      in
      go [] clauses)

let prop_matches_brute_force =
  QCheck.Test.make ~count:300 ~name:"cdcl agrees with brute force" arb_cnf
    (fun (num_vars, clauses) ->
      let expected = brute_force_sat ~num_vars clauses in
      let s = Cdcl.Dimacs.load { Cdcl.Dimacs.num_vars; clauses } in
      let got = Cdcl.Solver.solve s in
      (match got with
      | Cdcl.Solver.Sat ->
        (* verify the model *)
        List.for_all
          (fun clause ->
            List.exists
              (fun d ->
                let value = Cdcl.Solver.model_value s (abs d - 1) in
                if d > 0 then value else not value)
              clause)
          clauses
        && expected
      | Cdcl.Solver.Unsat -> not expected
      | Cdcl.Solver.Unknown -> false))

let prop_assumptions_consistent =
  (* solving with assumptions equals solving with those units added *)
  QCheck.Test.make ~count:200 ~name:"assumptions = added units" arb_cnf
    (fun (num_vars, clauses) ->
      let assum = [ 1; (if num_vars > 1 then -2 else 1) ] in
      let s1 = Cdcl.Dimacs.load { Cdcl.Dimacs.num_vars; clauses } in
      let lits =
        List.map (fun d -> Cdcl.Lit.of_var ~negated:(d < 0) (abs d - 1)) assum
      in
      let r1 = Cdcl.Solver.solve s1 ~assumptions:lits in
      let s2 =
        Cdcl.Dimacs.load
          { Cdcl.Dimacs.num_vars; clauses = clauses @ List.map (fun d -> [ d ]) assum }
      in
      let r2 = Cdcl.Solver.solve s2 in
      r1 = r2)

let () =
  Alcotest.run "sat"
    [
      ( "unit",
        [
          Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
          Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
          Alcotest.test_case "unit chain" `Quick test_unit_chain;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "pigeonhole 3/2" `Quick test_pigeonhole_3_2;
          Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "guarded refutation leaves solver reusable"
            `Quick test_guarded_unsat_reusable;
          Alcotest.test_case "budget exhaustion leaves solver reusable"
            `Quick test_budget_exhaustion_reusable;
          Alcotest.test_case "budget is per call, not lifetime" `Quick
            test_budget_is_per_call;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_matches_brute_force;
            prop_assumptions_consistent;
            prop_incremental_equals_scratch;
          ] );
    ]
