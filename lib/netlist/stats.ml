(* Per-cell-kind statistics for a circuit. *)

type t = {
  total : int;
  muxes : int;
  pmuxes : int;
  eqs : int;
  dffs : int;
  logic : int; (* logic_and/or/not, reduce_* *)
  bitwise : int; (* and/or/xor/xnor/not *)
  arith : int; (* add/sub *)
  wires : int;
  mux_bits : int; (* sum of mux widths: proxy for post-techmap mux count *)
}

let of_circuit (c : Circuit.t) =
  let total = ref 0
  and muxes = ref 0
  and pmuxes = ref 0
  and eqs = ref 0
  and dffs = ref 0
  and logic = ref 0
  and bitwise = ref 0
  and arith = ref 0
  and mux_bits = ref 0 in
  Circuit.iter_cells
    (fun _ cell ->
      incr total;
      match cell with
      | Cell.Mux { y; _ } ->
        incr muxes;
        mux_bits := !mux_bits + Bits.width y
      | Cell.Pmux { y; s; _ } ->
        incr pmuxes;
        mux_bits := !mux_bits + (Bits.width y * Bits.width s)
      | Cell.Binary { op = Eq | Ne; _ } -> incr eqs
      | Cell.Dff _ -> incr dffs
      | Cell.Unary { op = Logic_not | Reduce_and | Reduce_or | Reduce_xor | Reduce_bool; _ }
      | Cell.Binary { op = Logic_and | Logic_or; _ } -> incr logic
      | Cell.Unary { op = Not; _ }
      | Cell.Binary { op = And | Or | Xor | Xnor; _ } -> incr bitwise
      | Cell.Binary { op = Add | Sub; _ } -> incr arith)
    c;
  {
    total = !total;
    muxes = !muxes;
    pmuxes = !pmuxes;
    eqs = !eqs;
    dffs = !dffs;
    logic = !logic;
    bitwise = !bitwise;
    arith = !arith;
    wires = Circuit.wire_count c;
    mux_bits = !mux_bits;
  }

let pp ppf s =
  Fmt.pf ppf
    "cells=%d mux=%d pmux=%d eq=%d dff=%d logic=%d bitwise=%d arith=%d \
     wires=%d mux_bits=%d"
    s.total s.muxes s.pmuxes s.eqs s.dffs s.logic s.bitwise s.arith s.wires
    s.mux_bits

(* Approximate AIG-node cost of one cell, the flow-wide unit of "area".
   Matches the restructuring pass's cost model where they overlap (a w-bit
   mux is 3w nodes, a w-bit eq is 4w-1); inverters are free in an AIG. *)
let approx_cell_area (cell : Cell.t) : int =
  match cell with
  | Cell.Mux { y; _ } -> 3 * Bits.width y
  | Cell.Pmux { y; s; _ } -> 3 * Bits.width y * Bits.width s
  | Cell.Binary { op = Eq | Ne; a; _ } -> (4 * Bits.width a) - 1
  | Cell.Binary { op = And | Or; y; _ } -> Bits.width y
  | Cell.Binary { op = Xor | Xnor; y; _ } -> 3 * Bits.width y
  | Cell.Binary { op = Logic_and | Logic_or; a; b; _ } ->
    Bits.width a + Bits.width b - 1
  | Cell.Binary { op = Add | Sub; y; _ } -> 5 * Bits.width y
  | Cell.Unary { op = Not; _ } -> 0
  | Cell.Unary { op = Logic_not | Reduce_and | Reduce_or | Reduce_bool; a; _ }
    ->
    max 0 (Bits.width a - 1)
  | Cell.Unary { op = Reduce_xor; a; _ } -> 3 * max 0 (Bits.width a - 1)
  | Cell.Dff _ -> 0
