(** Abstract values for the dataflow engine: ternary known-bits per wire
    bit plus unsigned intervals per sigspec, mutually reducing.

    All updates are meets — values only get more precise — and a meet
    that empties a value raises {!Bottom}: the assumed facts admit no
    concrete execution (a dead path). *)

open Netlist

type tern = Zero | One | Top

exception Bottom

type itv = { lo : int; hi : int }  (** invariant: [0 <= lo <= hi] *)

val max_itv_width : int
(** Sigspecs wider than this carry no interval; bits are still tracked. *)

type state = {
  bits : tern Bits.Bit_tbl.t;
  itvs : (Bits.bit array, itv) Hashtbl.t;
  mutable dirty : bool;  (** any strengthening since last cleared *)
}

val create : unit -> state

(** {1 Ternary lattice} *)

val tern_of_bool : bool -> tern
val join : tern -> tern -> tern

val meet : tern -> tern -> tern
(** @raise Bottom on [Zero]/[One] conflict. *)

val t_not : tern -> tern
val t_and : tern -> tern -> tern
val t_or : tern -> tern -> tern
val t_xor : tern -> tern -> tern
val t_xnor : tern -> tern -> tern

val t_maj : tern -> tern -> tern -> tern
(** Majority of three: ripple carry / borrow. *)

val read : state -> Bits.bit -> tern
(** Constants read as themselves ([Cx] as [Top]); untracked bits as [Top]. *)

val read_vec : state -> Bits.sigspec -> tern array

val refine_bit : state -> Bits.bit -> tern -> unit
(** Meet into the store. @raise Bottom on conflict. *)

(** {1 Intervals} *)

val itv_meet : itv -> itv -> itv
val bits_needed : int -> int

val bits_itv : state -> Bits.sigspec -> itv option
(** Bitwise bounds; [None] when the sigspec is too wide. *)

val get_itv : state -> Bits.sigspec -> itv option
(** Stored interval met with the bitwise bounds. *)

val refine_itv : state -> Bits.sigspec -> itv -> unit
(** Meet into the store; pins the bits of the endpoints' common binary
    prefix.  No-op on too-wide sigspecs. @raise Bottom when empty. *)

val itv_top : int -> itv
val itv_add : int -> itv -> itv -> itv option
val itv_sub : int -> itv -> itv -> itv option
val itv_and : itv -> itv -> itv
val itv_or : itv -> itv -> itv
val itv_xor : itv -> itv -> itv
val itv_is_singleton : itv -> bool
val itv_disjoint : itv -> itv -> bool

(** {1 Derived predicates} *)

val nonzero : state -> Bits.sigspec -> bool
val zero : state -> Bits.sigspec -> bool

val definite : state -> Bits.sigspec -> int option
(** The vector's single possible value, when the interval is a point. *)

val all_definite : state -> Bits.sigspec -> bool

val to_string : state -> Bits.sigspec -> string
(** MSB-first rendering over [{'0','1','?'}]. *)
