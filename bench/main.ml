(* Benchmark harness: regenerates every table and figure of the paper,
   and doubles as the continuous-benchmarking pipeline.

     table2     — Table II: AIG areas Original / Yosys / smaRTLy + ratio
     table3     — Table III: SAT-only / Rebuild-only / Full reductions
     industrial — Section IV-B: the mux-rich industrial benchmark
     mux_chain  — the seconds-fast smoke profile (CI regression gate)
     jobs_per_sec — batch throughput: warm cross-job memo (the serve
                  model) at --jobs 2/4 vs cold per-job state at --jobs 1
     figures    — Figs. 1/2/3/5/6/7 and the Listing-2 assignment claim
     ablation   — design-choice sweeps (distance k, pruning, rules, ...)
     timing     — Bechamel micro-benchmarks of the passes

   Run with no arguments to regenerate everything the paper reports
   (table2 table3 industrial figures); pass section names to select.

   The statistical sections (table2 table3 industrial mux_chain) measure
   every case with --reps repetitions on the monotonic clock and produce a
   versioned smartly-bench-v1 document per section (see Perf.Schema):

     --json                write BENCH_<section>.json (into --out DIR, cwd
                           by default; committed baselines are never
                           touched by a plain run)
     --update-baselines    rewrite the committed baseline store
                           (--baseline-dir, default bench/baselines/)
     --compare             diff this run against the committed baselines
     --check               like --compare but exit nonzero on any
                           regression beyond threshold (the CI gate)
     --reps N              repetitions per flow (default 1)
     --threshold-scale X   multiply the Time/Gc noise bands (CI uses a
                           loose scale to absorb cross-machine variance;
                           deterministic metrics always compare exactly)
     --report FILE         also write the diff tables + verdict to FILE
     --pessimize           run the smaRTLy variants as no-ops: a
                           deliberate pessimization that self-tests the
                           regression gate end to end
     --no-sat-memo         disable the cross-query verdict cache in the
                           smaRTLy variants; baselines are recorded in this
                           mode so the memo-off CI leg reproduces the
                           deterministic counters exactly, while the
                           default leg must only ever improve on them
     --no-analysis         disable the abstract-interpretation rung zero in
                           the smaRTLy variants; bench/baselines/noanalysis
                           is recorded in this mode, so the committed diff
                           between the two baseline stores documents the
                           SAT queries the rung eliminates — with the areas
                           byte-identical
     --no-ledger           don't record this run under .smartly/runs/
     --ledger-root DIR     where the run ledger lives (default
                           .smartly/runs)
     --progress            attach the live TTY progress sink; pass events
                           stream to stderr, which perturbs the measured
                           timings — never use under --check *)

open Netlist

(* --- options --- *)

let emit_json = ref false
let out_dir = ref None
let reps = ref 1
let compare_flag = ref false
let check_flag = ref false
let update_baselines = ref false
let baseline_dir = ref Perf.Store.default_dir
let threshold_scale = ref 1.0
let report_path = ref None
let pessimize = ref false
let no_sat_memo = ref false
let no_analysis = ref false
let no_ledger = ref false
let ledger_root = ref Obs.Ledger.default_root
let progress = ref false

(* the run ledger this bench invocation records into, if any; every
   section document (and the gate report) is copied under its bench/
   subdirectory so `smartly report` finds the run *)
let ledger : Obs.Ledger.t option ref = ref None

(* statistical sections stash their fresh document here; main () compares
   / gates over all of them at once *)
let fresh_docs : Perf.Schema.doc list ref = ref []

let emit_doc section (cases : Perf.Schema.case list) =
  let doc =
    {
      Perf.Schema.section;
      env = Perf.Schema.fingerprint ~reps:!reps;
      cases;
    }
  in
  if !compare_flag || !check_flag then fresh_docs := !fresh_docs @ [ doc ];
  if !emit_json then begin
    let dir = Option.value !out_dir ~default:Filename.current_dir_name in
    let path = Perf.Store.save ~dir doc in
    Printf.printf "wrote %s\n" path
  end;
  (match !ledger with
  | Some l ->
    (try
       ignore
         (Perf.Store.save ~dir:(Filename.concat (Obs.Ledger.dir l) "bench")
            doc)
     with Sys_error msg | Unix.Unix_error (_, msg, _) ->
       Printf.eprintf "ledger: cannot write bench report (%s)\n" msg)
  | None -> ());
  if !update_baselines then begin
    let path = Perf.Store.save ~dir:!baseline_dir doc in
    Printf.printf "baseline: wrote %s\n" path
  end

let timed f =
  let t0 = Obs.Clock.now_ns () in
  let r = f () in
  r, Obs.Clock.elapsed t0

let check_equivalence ?(full_cec_limit = 9500) (orig : Circuit.t)
    (opt : Circuit.t) : string =
  let area = Aiger.Aigmap.aig_area orig in
  if area <= full_cec_limit then
    match Equiv.check opt orig with
    | Equiv.Equivalent -> "ok(cec)"
    | Equiv.Not_equivalent o -> "FAIL:" ^ o
    | Equiv.Inconclusive -> "cec?"
  else
    match Rtl_sim.Vector.random_equiv ~rounds:64 orig opt with
    | None -> "ok(sim64)"
    | Some (_, o) -> "FAIL:" ^ o

(* one optimized variant of a circuit *)
let optimized flow (c0 : Circuit.t) =
  let c = Circuit.copy c0 in
  (match flow with
  | `Yosys -> ignore (Smartly.Driver.yosys c)
  | `Smartly _ when !pessimize ->
    (* gate self-test: leave the circuit untouched, so every smaRTLy
       area/cells_removed metric regresses against a real baseline *)
    ()
  | `Smartly cfg ->
    (* --no-sat-memo runs the flow without the cross-query verdict cache;
       this is how baselines are recorded, so the CI memo-off gate leg
       reproduces the deterministic counters exactly *)
    let cfg =
      if !no_sat_memo then { cfg with Smartly.Config.enable_sat_memo = false }
      else cfg
    in
    (* --no-analysis likewise: the noanalysis baseline store is recorded
       without the rung, so its gate leg reproduces those counters and the
       committed diff between the stores is the rung's attribution *)
    let cfg =
      if !no_analysis then { cfg with Smartly.Config.enable_analysis = false }
      else cfg
    in
    ignore (Smartly.Driver.smartly ~cfg c));
  c

(* --- the one statistical case runner every table section shares --- *)

type flow_meas = {
  area : int;
  time : Perf.Stat.summary;  (** wall seconds over --reps repetitions *)
  gc : Obs.Metrics.gc_delta;  (** of the last repetition *)
}

type case_result = {
  name : string;
  orig : int;
  yosys : flow_meas;
  sat : flow_meas option;  (** [None] for `Pair variant runs *)
  rebuild : flow_meas option;
  full : flow_meas;
  equiv : string;
  (* deterministic counters of the last full-flow repetition *)
  cells_removed : int;
  sat_queries : int;
  sat_conflicts : int;
  sat_decisions : int;
  sat_propagations : int;
  memo_hits : int;
  memo_misses : int;
  memo_evictions : int;
  session_flushes : int;
  analysis_queries : int;
  analysis_hits : int;
  analysis_sweeps : int;
  (* SAT conflicts-per-query percentiles of the full-flow run *)
  conf_p50 : float;
  conf_p90 : float;
  conf_max : float;
}

(* every repetition starts from zeroed instruments, so the counters (and
   the JSON derived from them) read after the last repetition describe
   exactly one run of one flow — no accumulation across repetitions,
   flow variants, or table cases *)
let reset_instruments () =
  Obs.Metrics.reset ();
  Smartly.Engine.Sat_log.reset ();
  Smartly.Memo.reset ()

let measure_flow flow (c0 : Circuit.t) : flow_meas * Circuit.t =
  let c, t =
    Perf.Measure.repeat ~reps:!reps ~prepare:reset_instruments (fun () ->
        optimized flow c0)
  in
  ( { area = Aiger.Aigmap.aig_area c; time = t.Perf.Measure.wall;
      gc = t.Perf.Measure.gc },
    c )

let run_case ?(variants = `All) (p : Workloads.Profiles.profile) : case_result
    =
  let c0 = Workloads.Profiles.circuit p in
  let orig = Aiger.Aigmap.aig_area c0 in
  let yosys, _ = measure_flow `Yosys c0 in
  let sat, rebuild =
    match variants with
    | `Pair -> None, None
    | `All ->
      let s, _ = measure_flow (`Smartly Smartly.Config.sat_only) c0 in
      let r, _ = measure_flow (`Smartly Smartly.Config.rebuild_only) c0 in
      Some s, Some r
  in
  (* the full flow runs last: the instruments now describe it alone *)
  let full, cf = measure_flow (`Smartly Smartly.Config.default) c0 in
  let counter n = Obs.Metrics.value (Obs.Metrics.counter n) in
  let cells_removed = counter "flow.cells_removed" in
  let sat_queries = counter "engine.sat_queries" in
  let sat_conflicts = counter "engine.sat_conflicts" in
  let sat_decisions = counter "engine.sat_decisions" in
  let sat_propagations = counter "engine.sat_propagations" in
  let memo_hits = counter "memo.hits" in
  let memo_misses = counter "memo.misses" in
  let memo_evictions = counter "memo.evictions" in
  let session_flushes = counter "sat_session.flushes" in
  let analysis_queries = counter "engine.analysis_queries" in
  let analysis_hits = counter "engine.analysis_hits" in
  let analysis_sweeps = counter "engine.analysis_sweeps" in
  let conf =
    Obs.Metrics.histogram_stats
      (Obs.Metrics.histogram "engine.conflicts_per_query")
  in
  (* equivalence checking may itself run SAT: only after the counters
     above are captured *)
  let equiv = check_equivalence c0 cf in
  {
    name = p.Workloads.Profiles.name;
    orig;
    yosys;
    sat;
    rebuild;
    full;
    equiv;
    cells_removed;
    sat_queries;
    sat_conflicts;
    sat_decisions;
    sat_propagations;
    memo_hits;
    memo_misses;
    memo_evictions;
    session_flushes;
    analysis_queries;
    analysis_hits;
    analysis_sweeps;
    conf_p50 = conf.Obs.Metrics.p50;
    conf_p90 = conf.Obs.Metrics.p90;
    conf_max = conf.Obs.Metrics.max_v;
  }

let reduction ~yosys v =
  if yosys = 0 then 0.0
  else 100.0 *. (1.0 -. (float_of_int v /. float_of_int yosys))

(* --- schema documents, one metric list per section --- *)

let f = float_of_int

let flow_metrics prefix (m : flow_meas) =
  [
    Perf.Schema.scalar ~name:(prefix ^ "_area") ~kind:Perf.Schema.Area
      (f m.area);
    Perf.Schema.timing ~name:("t_" ^ prefix) m.time;
  ]

let gc_metrics (m : flow_meas) =
  let g = m.gc in
  Perf.Schema.
    [
      scalar ~name:"gc_minor_collections" ~kind:Gc
        (f g.Obs.Metrics.minor_collections);
      scalar ~name:"gc_major_collections" ~kind:Gc
        (f g.Obs.Metrics.major_collections);
      scalar ~name:"gc_allocated_words" ~kind:Gc g.Obs.Metrics.allocated_words;
      (* top_heap_words is deliberately NOT committed: it is a
         process-lifetime high-water mark, so its value depends on which
         sections ran earlier in the same process, not on this case *)
    ]

let sat_counter_metrics (r : case_result) =
  Perf.Schema.
    [
      scalar ~name:"sat_queries" ~kind:Count (f r.sat_queries);
      scalar ~name:"sat_conflicts" ~kind:Count (f r.sat_conflicts);
      scalar ~name:"sat_decisions" ~kind:Count (f r.sat_decisions);
      scalar ~name:"sat_propagations" ~kind:Count (f r.sat_propagations);
    ]
  (* memo counters only exist when the cache ran: baselines are recorded
     with --no-sat-memo, so the memo-on gate leg must see these as
     New_metric (ignored), never as an exact-Count mismatch *)
  @ (if !no_sat_memo then []
     else
       Perf.Schema.
         [
           scalar ~direction:Higher_better ~name:"memo_hits" ~kind:Count
             (f r.memo_hits);
           scalar ~name:"memo_misses" ~kind:Count (f r.memo_misses);
         ])
  (* analysis counters only exist when the rung ran: the noanalysis
     baseline store omits them, so its gate leg sees the rung's metrics
     as New_metric (ignored), never as an exact-Count mismatch.  The
     rung sits before memo, so both of the memo legs reproduce these
     counts exactly against the default baseline store *)
  @ (if !no_analysis then []
     else
       Perf.Schema.
         [
           scalar ~name:"analysis_queries" ~kind:Count (f r.analysis_queries);
           scalar ~direction:Higher_better ~name:"analysis_hits" ~kind:Count
             (f r.analysis_hits);
         ])
  (* always committed: memoization can only merge the stale periods the
     session observes, so the memo-on leg's flush count never exceeds the
     memo-off baseline's (Lower_better => Improved/Unchanged, never a
     spurious regression) *)
  @ [
      Perf.Schema.scalar ~name:"session_flushes" ~kind:Perf.Schema.Count
        (f r.session_flushes);
    ]

(* the per-case cache/session panel of every statistical section *)
let counters_table results =
  print_endline
    "Rung-zero analysis, cross-query memo and SAT-session counters (full \
     flow):";
  Report.Table.print
    ~columns:
      [
        Report.Table.column ~align:Report.Table.Left "Case";
        Report.Table.column "queries";
        Report.Table.column "analysis";
        Report.Table.column "memo hit";
        Report.Table.column "memo miss";
        Report.Table.column "evict";
        Report.Table.column "flushes";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.name;
             string_of_int r.sat_queries;
             Printf.sprintf "%d/%d" r.analysis_hits r.analysis_queries;
             string_of_int r.memo_hits;
             string_of_int r.memo_misses;
             string_of_int r.memo_evictions;
             string_of_int r.session_flushes;
           ])
         results)

let core_metrics (r : case_result) =
  (Perf.Schema.scalar ~name:"orig_area" ~kind:Perf.Schema.Area (f r.orig)
  :: flow_metrics "yosys" r.yosys)
  @ flow_metrics "smartly" r.full
  @ [
      Perf.Schema.scalar ~direction:Perf.Schema.Higher_better
        ~name:"cells_removed" ~kind:Perf.Schema.Count (f r.cells_removed);
    ]

(* table2 carries the headline (areas, full-flow time, GC); table3 carries
   what only it displays (the per-method variants and SAT totals), so one
   regression is named by exactly one section *)
let table2_case (r : case_result) : Perf.Schema.case =
  { Perf.Schema.name = r.name; metrics = core_metrics r @ gc_metrics r.full }

let table3_case (r : case_result) : Perf.Schema.case =
  {
    Perf.Schema.name = r.name;
    metrics =
      (match r.sat with Some m -> flow_metrics "sat" m | None -> [])
      @ (match r.rebuild with Some m -> flow_metrics "rebuild" m | None -> [])
      @ sat_counter_metrics r;
  }

let full_case (r : case_result) : Perf.Schema.case =
  {
    Perf.Schema.name = r.name;
    metrics =
      core_metrics r
      @ (match r.sat with Some m -> flow_metrics "sat" m | None -> [])
      @ (match r.rebuild with Some m -> flow_metrics "rebuild" m | None -> [])
      @ sat_counter_metrics r @ gc_metrics r.full;
  }

let public_results =
  lazy (List.map run_case Workloads.Profiles.public_benchmarks)

let left = Report.Table.column ~align:Report.Table.Left
let right t = Report.Table.column t

(* --- Table II --- *)

let table2 () =
  print_endline "";
  print_endline
    "Table II: AIG areas, Yosys baseline vs smaRTLy (10 public stand-ins)";
  let results = Lazy.force public_results in
  let rows =
    List.map
      (fun r ->
        [
          r.name;
          string_of_int r.orig;
          string_of_int r.yosys.area;
          string_of_int r.full.area;
          Report.Table.pct (reduction ~yosys:r.yosys.area r.full.area);
          Report.Table.secs r.yosys.time.Perf.Stat.median;
          Report.Table.secs r.full.time.Perf.Stat.median;
          r.equiv;
        ])
      results
  in
  let avg fn =
    List.fold_left (fun acc r -> acc +. fn r) 0.0 results
    /. float_of_int (List.length results)
  in
  let avg_row =
    [
      "Average";
      Printf.sprintf "%.1f" (avg (fun r -> f r.orig));
      Printf.sprintf "%.1f" (avg (fun r -> f r.yosys.area));
      Printf.sprintf "%.1f" (avg (fun r -> f r.full.area));
      Report.Table.pct
        (avg (fun r -> reduction ~yosys:r.yosys.area r.full.area));
      Report.Table.secs (avg (fun r -> r.yosys.time.Perf.Stat.median));
      Report.Table.secs (avg (fun r -> r.full.time.Perf.Stat.median));
      "";
    ]
  in
  Report.Table.print
    ~columns:
      [ left "Case"; right "Original"; right "Yosys"; right "smaRTLy";
        right "Ratio"; right "t(Yosys)"; right "t(smaRTLy)";
        left "Equivalence" ]
    ~rows:(rows @ [ avg_row ]);
  emit_doc "table2" (List.map table2_case results);
  print_endline
    "(paper: avg extra reduction 8.95%; largest on case-heavy and\n\
     correlated-control designs, near zero on flat datapaths)"

(* --- Table III --- *)

let table3 () =
  print_endline "";
  print_endline
    "Table III: reduction vs Yosys by individual method and combined";
  let results = Lazy.force public_results in
  let area_of = function Some (m : flow_meas) -> m.area | None -> 0 in
  let time_of = function
    | Some (m : flow_meas) -> m.time.Perf.Stat.median
    | None -> 0.0
  in
  let rows =
    List.map
      (fun r ->
        [
          r.name;
          Report.Table.pct (reduction ~yosys:r.yosys.area (area_of r.sat));
          Report.Table.pct (reduction ~yosys:r.yosys.area (area_of r.rebuild));
          Report.Table.pct (reduction ~yosys:r.yosys.area r.full.area);
          Report.Table.secs (time_of r.sat);
          Report.Table.secs (time_of r.rebuild);
          Report.Table.secs r.full.time.Perf.Stat.median;
          Printf.sprintf "%.0f" r.conf_p50;
          Printf.sprintf "%.0f" r.conf_p90;
          Printf.sprintf "%.0f" r.conf_max;
        ])
      results
  in
  let avg fn =
    List.fold_left (fun acc r -> acc +. fn r) 0.0 results
    /. float_of_int (List.length results)
  in
  let avg_row =
    [
      "Average";
      Report.Table.pct
        (avg (fun r -> reduction ~yosys:r.yosys.area (area_of r.sat)));
      Report.Table.pct
        (avg (fun r -> reduction ~yosys:r.yosys.area (area_of r.rebuild)));
      Report.Table.pct
        (avg (fun r -> reduction ~yosys:r.yosys.area r.full.area));
      Report.Table.secs (avg (fun r -> time_of r.sat));
      Report.Table.secs (avg (fun r -> time_of r.rebuild));
      Report.Table.secs (avg (fun r -> r.full.time.Perf.Stat.median));
      "";
      "";
      "";
    ]
  in
  Report.Table.print
    ~columns:
      [ left "Case"; right "SAT"; right "Rebuild"; right "Full";
        right "t(SAT)"; right "t(Rebuild)"; right "t(Full)";
        right "cfl(p50)"; right "cfl(p90)"; right "cfl(max)" ]
    ~rows:(rows @ [ avg_row ]);
  emit_doc "table3" (List.map table3_case results);
  counters_table results;
  print_endline
    "(paper: SAT 3.57% / Rebuild 4.39% / Full 8.95% on average; which\n\
     method dominates varies per case, Full >= max(SAT, Rebuild))"

(* --- shared Yosys-vs-smaRTLy table for the remaining sections --- *)

let pair_table results =
  let rows =
    List.map
      (fun r ->
        [
          r.name;
          string_of_int r.orig;
          string_of_int r.yosys.area;
          string_of_int r.full.area;
          Report.Table.pct (reduction ~yosys:r.yosys.area r.full.area);
          Report.Table.secs r.yosys.time.Perf.Stat.median;
          Report.Table.secs r.full.time.Perf.Stat.median;
          r.equiv;
        ])
      results
  in
  Report.Table.print
    ~columns:
      [ left "Point"; right "Original"; right "Yosys"; right "smaRTLy";
        right "Extra reduction"; right "t(Yosys)"; right "t(smaRTLy)";
        left "Equivalence" ]
    ~rows

(* --- Industrial (Section IV-B) --- *)

let industrial () =
  print_endline "";
  print_endline
    "Industrial benchmark (Section IV-B): mux/pmux-rich test points";
  let points =
    (* the first half of the points keeps the default harness run within
       minutes on one core; `bench industrial-all` runs all eight *)
    List.filteri (fun i _ -> i < 4) Workloads.Profiles.industrial_benchmarks
  in
  let results = List.map (run_case ~variants:`Pair) points in
  pair_table results;
  counters_table results;
  emit_doc "industrial"
    (List.map
       (fun r ->
         { Perf.Schema.name = r.name; metrics = core_metrics r })
       results);
  let avg =
    List.fold_left
      (fun acc r -> acc +. reduction ~yosys:r.yosys.area r.full.area)
      0.0 results
    /. float_of_int (List.length results)
  in
  Printf.printf
    "Average extra AIG-area reduction over Yosys: %.1f%%\n\
     (paper: 47.2%%; far above the public benchmarks because Yosys finds\n\
     almost nothing in selection-circuit-dominated designs)\n"
    avg

(* --- mux_chain: the seconds-fast smoke section the CI gate runs --- *)

let mux_chain () =
  print_endline "";
  print_endline "Smoke profile mux_chain (fast; the CI regression gate)";
  let results = [ run_case Workloads.Profiles.mux_chain ] in
  pair_table results;
  counters_table results;
  emit_doc "mux_chain" (List.map full_case results)

(* --- jobs_per_sec: batch throughput, serve model vs process-per-job --- *)

(* A batch the serve daemon would see: design variants (one per seed),
   each stamped out several times — regenerating unchanged sources is
   the normal shape of a re-run EDA batch.  Warm batch mode answers the
   stamped copies from the cross-job caches: recurring queries from the
   verdict memo, recurring muxtree tasks from the task-replay cache.
   Generation happens once, outside every timed region. *)
let batch_corpus =
  lazy
    (let mk seed copy =
       let p =
         {
           Workloads.Profiles.name =
             Printf.sprintf "batch_s%02d_c%d" seed copy;
           seed;
           style = `Pmux;
           repeat = 2;
           mix =
             Workloads.Profiles.
               [
                 Crossbar_port { n_grants = 16; width = 8 };
                 Correlated_ifs { depth = 7; width = 8 };
                 Correlated_ifs { depth = 6; width = 8 };
               ];
           register_fraction = 5;
         }
       in
       p.Workloads.Profiles.name, Workloads.Profiles.circuit p
     in
     List.concat_map
       (fun seed -> List.map (mk seed) [ 0; 1; 2; 3 ])
       [ 21; 22; 23 ])

let jobs_per_sec () =
  print_endline "";
  print_endline
    "Batch throughput (jobs/s): warm cross-job memo (the serve model) vs \
     cold per-job state";
  let corpus = Lazy.force batch_corpus in
  let n_jobs = List.length corpus in
  (* the section's subject is the warm-memo batch mode, so the memo stays
     on regardless of --no-sat-memo (which scopes the table2/table3
     baseline-recording convention, not this section) *)
  let cfg n =
    {
      Smartly.Config.default with
      Smartly.Config.jobs = Some n;
      enable_sat_memo = true;
    }
  in
  (* [warm]: one memo store and one task-replay store for the whole
     batch — the daemon's state model; cold resets per job, the
     one-process-per-job reference.  Warmth builds *within* a batch
     (each timed rep starts from fresh stores), so reps are i.i.d.
     Both modes run the task path ({!Smartly.Sat_elim.run_tasks}),
     whose frozen-snapshot semantics make the areas independent of the
     worker count and of cache state by construction — so any area
     disagreement below is a real bug, not schedule noise. *)
  let run_batch ~warm n () =
    if warm then begin
      Smartly.Memo.reset ();
      Smartly.Replay.install (Smartly.Replay.make ())
    end;
    List.map
      (fun (_, c0) ->
        if not warm then reset_instruments ();
        let c = Circuit.copy c0 in
        if not !pessimize then ignore (Smartly.Driver.smartly ~cfg:(cfg n) c);
        Aiger.Aigmap.aig_area c)
      corpus
  in
  let prepare ~warm () =
    reset_instruments ();
    if not warm then Smartly.Replay.uninstall ()
  in
  let measure ~warm n =
    Perf.Measure.repeat ~reps:!reps ~prepare:(prepare ~warm)
      (run_batch ~warm n)
  in
  let areas1, t1 = measure ~warm:false 1 in
  let areas2, t2 = measure ~warm:true 2 in
  let areas4, t4 = measure ~warm:true 4 in
  Smartly.Replay.uninstall ();
  let jps (t : Perf.Measure.timed) =
    let m = t.Perf.Measure.wall.Perf.Stat.median in
    if m <= 0.0 then 0.0 else float_of_int n_jobs /. m
  in
  let speedup =
    let m4 = t4.Perf.Measure.wall.Perf.Stat.median in
    if m4 <= 0.0 then 0.0 else t1.Perf.Measure.wall.Perf.Stat.median /. m4
  in
  let total = List.fold_left ( + ) 0 in
  let equal = areas1 = areas2 && areas2 = areas4 in
  Report.Table.print
    ~columns:
      [ left "Mode"; right "jobs"; right "batch t"; right "jobs/s";
        right "area total" ]
    ~rows:
      (List.map
         (fun (mode, n, t, areas) ->
           [
             mode;
             string_of_int n;
             Report.Table.secs t.Perf.Measure.wall.Perf.Stat.median;
             Printf.sprintf "%.2f" (jps t);
             string_of_int (total areas);
           ])
         [
           "cold per-job", 1, t1, areas1;
           "warm batch", 2, t2, areas2;
           "warm batch", 4, t4, areas4;
         ]);
  Printf.printf
    "speedup (--jobs 4 warm vs --jobs 1 cold): %.2fx   areas identical \
     across modes: %s\n"
    speedup
    (if equal then "yes" else "NO — DETERMINISM BUG");
  let metrics =
    Perf.Schema.
      [
        timing ~name:"t_batch_j1_cold" t1.Perf.Measure.wall;
        timing ~name:"t_batch_j2_warm" t2.Perf.Measure.wall;
        timing ~name:"t_batch_j4_warm" t4.Perf.Measure.wall;
        (* jobs/s and the headline speedup are Time-kind (banded): they
           are ratios of wall clocks, exactly as noisy as the clocks *)
        scalar ~direction:Higher_better ~name:"jps_j1_cold" ~kind:Time
          (jps t1);
        scalar ~direction:Higher_better ~name:"jps_j2_warm" ~kind:Time
          (jps t2);
        scalar ~direction:Higher_better ~name:"jps_j4_warm" ~kind:Time
          (jps t4);
        scalar ~direction:Higher_better ~name:"speedup_j4_vs_j1" ~kind:Time
          speedup;
        (* deterministic: exact-compare the batch areas of every mode and
           the corpus shape, so a determinism break or a silent corpus
           change fails the gate even if the timings absorb it *)
        scalar ~name:"batch_area_total_j1" ~kind:Area (f (total areas1));
        scalar ~name:"batch_area_total_j2" ~kind:Area (f (total areas2));
        scalar ~name:"batch_area_total_j4" ~kind:Area (f (total areas4));
        scalar ~direction:Higher_better ~name:"areas_equal" ~kind:Count
          (if equal then 1.0 else 0.0);
        scalar ~name:"corpus_jobs" ~kind:Count (f n_jobs);
      ]
  in
  emit_doc "jobs_per_sec" [ { Perf.Schema.name = "corpus"; metrics } ]

(* --- Figures --- *)

let expose c name (v : Bits.sigspec) =
  let y = Circuit.add_output c name ~width:(Bits.width v) in
  ignore
    (Circuit.add_cell c
       (Cell.Binary
          { op = Cell.Or; a = v; b = Bits.all_zero ~width:(Bits.width v);
            y = Circuit.sig_of_wire y }))

let fig1_circuit () =
  let c = Circuit.create "fig1" in
  let s = Circuit.add_input c "S" ~width:1 in
  let a = Circuit.add_input c "A" ~width:4 in
  let b = Circuit.add_input c "B" ~width:4 in
  let cc = Circuit.add_input c "C" ~width:4 in
  let sb = Circuit.bit_of_wire s in
  let inner =
    Circuit.mk_mux c ~a:(Circuit.sig_of_wire b) ~b:(Circuit.sig_of_wire a) ~s:sb
  in
  let outer = Circuit.mk_mux c ~a:(Circuit.sig_of_wire cc) ~b:inner ~s:sb in
  expose c "Y" outer;
  c

let fig2_circuit () =
  let c = Circuit.create "fig2" in
  let s = Circuit.add_input c "S" ~width:1 in
  let a = Circuit.add_input c "A" ~width:1 in
  let b = Circuit.add_input c "B" ~width:1 in
  let cc = Circuit.add_input c "C" ~width:1 in
  let sb = Circuit.bit_of_wire s in
  let inner =
    Circuit.mk_mux c ~a:(Circuit.sig_of_wire b) ~b:[| sb |]
      ~s:(Circuit.bit_of_wire a)
  in
  let outer = Circuit.mk_mux c ~a:(Circuit.sig_of_wire cc) ~b:inner ~s:sb in
  expose c "Y" outer;
  c

let fig3_circuit () =
  let c = Circuit.create "fig3" in
  let s = Circuit.add_input c "S" ~width:1 in
  let r = Circuit.add_input c "R" ~width:1 in
  let a = Circuit.add_input c "A" ~width:4 in
  let b = Circuit.add_input c "B" ~width:4 in
  let cc = Circuit.add_input c "C" ~width:4 in
  let sb = Circuit.bit_of_wire s and rb = Circuit.bit_of_wire r in
  let s_or_r = Circuit.mk_or c sb rb in
  let inner =
    Circuit.mk_mux c ~a:(Circuit.sig_of_wire b) ~b:(Circuit.sig_of_wire a)
      ~s:s_or_r
  in
  let outer = Circuit.mk_mux c ~a:(Circuit.sig_of_wire cc) ~b:inner ~s:sb in
  expose c "Y" outer;
  c

let listing1 =
  {|
module listing1(input [1:0] s, input [7:0] p0, input [7:0] p1,
                input [7:0] p2, input [7:0] p3, output reg [7:0] y);
  always @* begin
    case (s)
      2'b00: y = p0;
      2'b01: y = p1;
      2'b10: y = p2;
      default: y = p3;
    endcase
  end
endmodule
|}

let listing2 =
  {|
module listing2(input [2:0] s, input [7:0] p0, input [7:0] p1,
                input [7:0] p2, input [7:0] p3, output reg [7:0] y);
  always @* begin
    casez (s)
      3'b1zz: y = p0;
      3'b01z: y = p1;
      3'b001: y = p2;
      default: y = p3;
    endcase
  end
endmodule
|}

let figure_row name c0 flow =
  let c = Circuit.copy c0 in
  (match flow with
  | `None -> ()
  | `Yosys -> ignore (Smartly.Driver.yosys c)
  | `Smartly -> ignore (Smartly.Driver.smartly c));
  let st = Stats.of_circuit c in
  [
    name;
    string_of_int (Aiger.Aigmap.aig_area c);
    string_of_int st.Stats.muxes;
    string_of_int st.Stats.eqs;
    (match flow with
    | `None -> "-"
    | `Yosys | `Smartly -> check_equivalence c0 c);
  ]

let fig_columns =
  [ left "Circuit"; right "AIG"; right "mux"; right "eq"; left "Equivalence" ]

let figures () =
  print_endline "";
  print_endline "Figures 1-3: the motivating muxtree examples";
  let rows =
    List.concat_map
      (fun (name, c) ->
        [
          figure_row (name ^ " original") c `None;
          figure_row (name ^ " yosys") c `Yosys;
          figure_row (name ^ " smartly") c `Smartly;
        ])
      [
        "fig1 Y=S?(S?A:B):C", fig1_circuit ();
        "fig2 Y=S?(A?S:B):C", fig2_circuit ();
        "fig3 Y=S?((S|R)?A:B):C", fig3_circuit ();
      ]
  in
  Report.Table.print ~columns:fig_columns ~rows;
  print_endline
    "(fig1/fig2 are handled by both flows; fig3's dependent control\n\
     S|R is found only by smaRTLy's inference, as in the paper)";

  print_endline "";
  print_endline
    "Figures 5/6/7: Listing 1 as chain, balanced tree, and rebuilt tree";
  let rows =
    List.concat_map
      (fun (style, sname) ->
        let c = Hdl.Elaborate.elaborate_string ~style listing1 in
        [
          figure_row (Printf.sprintf "listing1 %s" sname) c `None;
          figure_row (Printf.sprintf "listing1 %s smartly" sname) c `Smartly;
        ])
      [ `Chain, "chain (Fig.5)"; `Balanced, "balanced (Fig.6)"; `Pmux, "pmux" ]
  in
  Report.Table.print ~columns:fig_columns ~rows;
  print_endline
    "(the rebuilt tree (Fig.7) uses 3 muxes on the selector bits and no\n\
     eq gates, whatever the input structure)";

  print_endline "";
  print_endline
    "Listing 2: greedy ADD assignment quality (paper: 3 vs 7 muxes)";
  let c = Hdl.Elaborate.elaborate_string ~style:`Chain listing2 in
  ignore (Rtl_opt.Opt_expr.run c);
  match Smartly.Muxtree.find_all c with
  | [ flat ] ->
    let index = Index.build c in
    let d = Smartly.Restructure.evaluate c index flat in
    Printf.printf
      "  rows=%d selector_bits=%d  greedy tree: %d muxes (height %d)\n"
      (List.length flat.Smartly.Muxtree.rows)
      (Bits.width flat.Smartly.Muxtree.selector)
      d.Smartly.Restructure.new_muxes d.Smartly.Restructure.height;
    (* contrast with the poor fixed order S0 < S1 < S2 via the canonical
       ADD over reversed cubes *)
    let m = Add_bdd.Add.manager () in
    let term_tbl = Hashtbl.create 8 in
    let term_of (v : Bits.sigspec) =
      let key = Bits.to_string v in
      match Hashtbl.find_opt term_tbl key with
      | Some i -> i
      | None ->
        let i = Hashtbl.length term_tbl + 1 in
        Hashtbl.replace term_tbl key i;
        i
    in
    let rows =
      List.map
        (fun (r : Smartly.Muxtree.row) ->
          r.Smartly.Muxtree.cube, term_of r.Smartly.Muxtree.value)
        flat.Smartly.Muxtree.rows
    in
    let good = Add_bdd.Add.of_rows m ~num_vars:3 rows ~default:0 in
    let rows_rev =
      List.map
        (fun (cube, v) ->
          let n = Array.length cube in
          Array.init n (fun i -> cube.(n - 1 - i)), v)
        rows
    in
    let poor = Add_bdd.Add.of_rows m ~num_vars:3 rows_rev ~default:0 in
    Printf.printf
      "  fixed-order ADD, S2 first (good): %d nodes; S0 first (poor): %d \
       nodes\n"
      (Add_bdd.Add.count_nodes good)
      (Add_bdd.Add.count_nodes poor)
  | _ -> print_endline "  (unexpected: muxtree not found)"

(* --- ablation sweeps --- *)

let ablation () =
  print_endline "";
  print_endline "Ablation: design choices of the smaRTLy implementation";
  let p = Workloads.Profiles.wb_dma in
  let c0 = Workloads.Profiles.circuit p in
  let yosys = Aiger.Aigmap.aig_area (optimized `Yosys c0) in
  let measure cfg =
    let c, dt = timed (fun () -> optimized (`Smartly cfg) c0) in
    Aiger.Aigmap.aig_area c, dt
  in
  let base = Smartly.Config.default in
  let rows =
    List.map
      (fun (name, cfg) ->
        let area, dt = measure cfg in
        [
          name;
          string_of_int area;
          Report.Table.pct (reduction ~yosys area);
          Report.Table.secs dt;
        ])
      [
        "default (k=6)", base;
        "k=2", { base with Smartly.Config.distance_k = 2 };
        "k=4", { base with Smartly.Config.distance_k = 4 };
        "k=10", { base with Smartly.Config.distance_k = 10 };
        ( "no Theorem II.1 pruning",
          { base with Smartly.Config.enable_pruning = false } );
        ( "no inference rules",
          { base with Smartly.Config.enable_inference_rules = false } );
        ( "no simulation (SAT only)",
          { base with Smartly.Config.sim_input_threshold = 0 } );
        ( "no SAT (rules+sim only)",
          { base with Smartly.Config.sat_input_threshold = 0 } );
        ( "multi-signal rebuild (extension)",
          { base with Smartly.Config.rebuild_single_ctrl = false } );
      ]
  in
  Printf.printf "case %s: yosys area %d\n" p.Workloads.Profiles.name yosys;
  Report.Table.print
    ~columns:
      [ left "Configuration"; right "AIG"; right "vs Yosys"; right "time" ]
    ~rows;
  (* the paper's "~80% of sub-graph gates dismissed" claim *)
  let c = Circuit.copy c0 in
  ignore (Rtl_opt.Opt_expr.run c);
  let r = Smartly.Sat_elim.run_once Smartly.Config.default c in
  let kept = r.Smartly.Sat_elim.engine.Smartly.Engine.subgraph_kept in
  let dropped = r.Smartly.Sat_elim.engine.Smartly.Engine.subgraph_dropped in
  if kept + dropped > 0 then
    Printf.printf
      "Theorem II.1 pruning dismissed %d of %d sub-graph gates (%.1f%%)\n\
       (paper: ~80%%)\n"
      dropped (kept + dropped)
      (100.0 *. float_of_int dropped /. float_of_int (kept + dropped))

(* --- Bechamel timing --- *)

let timing () =
  print_endline "";
  print_endline "Pass timings (Bechamel, monotonic clock)";
  let c0 = Workloads.Profiles.circuit Workloads.Profiles.usb_funct in
  let open Bechamel in
  let make_pass name fn =
    Test.make ~name (Staged.stage (fun () -> fn (Circuit.copy c0)))
  in
  let tests =
    [
      make_pass "opt_expr" (fun c -> ignore (Rtl_opt.Opt_expr.run c));
      make_pass "opt_merge" (fun c -> ignore (Rtl_opt.Opt_merge.run c));
      make_pass "opt_muxtree(yosys)" (fun c ->
          ignore (Rtl_opt.Opt_muxtree.run c));
      make_pass "sat_elim(smartly)" (fun c ->
          ignore (Smartly.Sat_elim.run_once Smartly.Config.default c));
      make_pass "restructure(smartly)" (fun c ->
          ignore (Smartly.Restructure.run_once c));
      make_pass "aigmap" (fun c -> ignore (Aiger.Aigmap.aig_area c));
    ]
  in
  let test = Test.make_grouped ~name:"passes" tests in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let results = Benchmark.all cfg instances test in
  let ols =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock results
  in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-28s %12.0f ns/run\n" name est
      | Some _ | None -> Printf.printf "  %-28s (no estimate)\n" name)
    ols

(* --- main --- *)

let usage () =
  prerr_endline
    "usage: bench [SECTION...] [--json] [--out DIR] [--reps N]\n\
    \             [--compare | --check] [--update-baselines]\n\
    \             [--baseline-dir DIR] [--threshold-scale X]\n\
    \             [--report FILE] [--pessimize] [--no-sat-memo]\n\
    \             [--no-analysis] [--no-ledger] [--ledger-root DIR]\n\
    \             [--progress]\n\
     sections: table2 table3 industrial mux_chain jobs_per_sec figures\n\
    \          ablation timing all";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let needs_value name = function
    | v :: rest -> v, rest
    | [] ->
      Printf.eprintf "bench: %s needs a value\n" name;
      usage ()
  in
  let rec parse sections = function
    | [] -> List.rev sections
    | "--json" :: rest ->
      emit_json := true;
      parse sections rest
    | "--compare" :: rest ->
      compare_flag := true;
      parse sections rest
    | "--check" :: rest ->
      check_flag := true;
      parse sections rest
    | "--update-baselines" :: rest ->
      update_baselines := true;
      parse sections rest
    | "--pessimize" :: rest ->
      pessimize := true;
      parse sections rest
    | "--no-sat-memo" :: rest ->
      no_sat_memo := true;
      parse sections rest
    | "--no-analysis" :: rest ->
      no_analysis := true;
      parse sections rest
    | "--no-ledger" :: rest ->
      no_ledger := true;
      parse sections rest
    | "--progress" :: rest ->
      progress := true;
      parse sections rest
    | "--ledger-root" :: rest ->
      let v, rest = needs_value "--ledger-root" rest in
      ledger_root := v;
      parse sections rest
    | "--out" :: rest ->
      let v, rest = needs_value "--out" rest in
      out_dir := Some v;
      parse sections rest
    | "--baseline-dir" :: rest ->
      let v, rest = needs_value "--baseline-dir" rest in
      baseline_dir := v;
      parse sections rest
    | "--report" :: rest ->
      let v, rest = needs_value "--report" rest in
      report_path := Some v;
      parse sections rest
    | "--reps" :: rest ->
      let v, rest = needs_value "--reps" rest in
      (match int_of_string_opt v with
      | Some n when n >= 1 -> reps := n
      | _ ->
        Printf.eprintf "bench: --reps needs a positive integer, got %s\n" v;
        usage ());
      parse sections rest
    | "--threshold-scale" :: rest ->
      let v, rest = needs_value "--threshold-scale" rest in
      (match float_of_string_opt v with
      | Some x when x > 0.0 -> threshold_scale := x
      | _ ->
        Printf.eprintf "bench: --threshold-scale needs a positive number\n";
        usage ());
      parse sections rest
    | opt :: _ when String.length opt >= 2 && String.sub opt 0 2 = "--" ->
      Printf.eprintf "bench: unknown option %s\n" opt;
      usage ()
    | s :: rest -> parse (s :: sections) rest
  in
  let sections =
    match parse [] args with
    | [] -> [ "table2"; "table3"; "industrial"; "figures" ]
    | rest -> rest
  in
  if Unix.isatty Unix.stdout && Sys.getenv_opt "NO_COLOR" = None then
    Report.Table.set_color true;
  if not !no_ledger then begin
    (try
       let l =
         Obs.Ledger.create ~root:!ledger_root ~attach_events:false
           ~argv:(Array.to_list Sys.argv)
           ~env:(Perf.Schema.env_to_json (Perf.Schema.fingerprint ~reps:!reps))
           ()
       in
       (* no event sinks during measurement: per-event delivery would
          perturb the committed Time/Gc figures, so even the flight ring
          stays detached — a bench ledger is manifest + reports only *)
       Obs.Ring.detach (Obs.Ledger.ring l);
       ledger := Some l
     with Sys_error msg | Unix.Unix_error (_, msg, _) ->
       Printf.eprintf "ledger: disabled (%s)\n" msg)
  end;
  if !progress then
    (* explicit opt-in: streams pass boundaries live, and therefore
       perturbs the measured timings — never combined with --check *)
    ignore (Obs.Event.attach_progress ());
  List.iter
    (fun s ->
      match s with
      | "table2" -> table2 ()
      | "table3" -> table3 ()
      | "industrial" -> industrial ()
      | "mux_chain" -> mux_chain ()
      | "jobs_per_sec" -> jobs_per_sec ()
      | "figures" -> figures ()
      | "ablation" -> ablation ()
      | "timing" -> timing ()
      | "all" ->
        table2 ();
        table3 ();
        industrial ();
        mux_chain ();
        jobs_per_sec ();
        figures ();
        ablation ();
        timing ()
      | other -> Printf.printf "unknown section %s\n" other)
    sections;
  let finish_ledger status =
    match !ledger with
    | Some l ->
      Obs.Ledger.finish ~status l;
      Printf.eprintf "ledger: %s\n" (Obs.Ledger.dir l)
    | None -> ()
  in
  if !compare_flag || !check_flag then begin
    print_endline "";
    if !fresh_docs = [] then begin
      print_endline
        "bench-check: no statistical sections selected (nothing to compare)";
      finish_ledger "ok"
    end
    else begin
      let outcome =
        Perf.Gate.check ~scale:!threshold_scale ~dir:!baseline_dir !fresh_docs
      in
      print_string (Perf.Gate.render outcome);
      let plain_report () =
        (* the artifact must be byte-stable whatever the terminal: render
           it with color forced off *)
        let was = Report.Table.colorize Report.Table.Dim "x" <> "x" in
        Report.Table.set_color false;
        let text = Perf.Gate.render outcome in
        Report.Table.set_color was;
        text
      in
      (match !report_path with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (plain_report ());
        close_out oc;
        Printf.printf "wrote %s\n" path);
      (match !ledger with
      | Some l ->
        (try
           let p = Filename.concat (Obs.Ledger.dir l) "bench_gate.txt" in
           let oc = open_out p in
           output_string oc (plain_report ());
           close_out oc
         with Sys_error msg ->
           Printf.eprintf "ledger: cannot write gate report (%s)\n" msg)
      | None -> ());
      let ok = Perf.Gate.ok outcome in
      finish_ledger (if ok then "ok" else "regressed");
      if !check_flag && not ok then exit 1
    end
  end
  else finish_ledger "ok"
