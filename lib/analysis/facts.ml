(* Facts the fixpoint can prove about individual cells — the semantic
   backend behind lint rules NL010..NL013 and the "facts" section of
   [smartly analyze].

   Each derivation skips cells whose inputs are all syntactic constants:
   those are opt_expr's (and NL001's) territory, and reporting them here
   would double every diagnostic on trivially-foldable logic. *)

open Netlist
open Absval

type fact =
  | Comparison_const of { cell : int; op : string; value : bool }
      (* an eq/ne/logical comparison with a provably constant result *)
  | Dead_branch of { cell : int; branch : string }
      (* a mux/pmux branch no select valuation can choose *)
  | Foldable of { cell : int; width : int; value : int option }
      (* every output bit definite; [value] when the vector fits an int *)
  | Always_wraps of { cell : int; op : string }
      (* add/sub whose result provably wraps past the output width *)

let fact_rule = function
  | Comparison_const _ -> "NL010"
  | Dead_branch _ -> "NL011"
  | Foldable _ -> "NL012"
  | Always_wraps _ -> "NL013"

let fact_cell = function
  | Comparison_const { cell; _ }
  | Dead_branch { cell; _ }
  | Foldable { cell; _ }
  | Always_wraps { cell; _ } -> cell

let fact_message = function
  | Comparison_const { op; value; _ } ->
    Fmt.str "%s comparison is always %b" op value
  | Dead_branch { branch; _ } ->
    Fmt.str "%s is provably never selected" branch
  | Foldable { width; value; _ } -> (
    match value with
    | Some v -> Fmt.str "output is provably constant %d" v
    | None -> Fmt.str "all %d output bits are provably constant" width)
  | Always_wraps { op; _ } ->
    Fmt.str "%s provably wraps past the output width on every input" op

let fact_to_json (f : fact) : Obs.Json.t =
  let base kind extra =
    Obs.Json.Obj
      ([
         ("rule", Obs.Json.Str (fact_rule f));
         ("kind", Obs.Json.Str kind);
         ("cell", Obs.Json.num_of_int (fact_cell f));
         ("message", Obs.Json.Str (fact_message f));
       ]
      @ extra)
  in
  match f with
  | Comparison_const { value; _ } ->
    base "comparison_const" [ ("value", Obs.Json.Bool value) ]
  | Dead_branch { branch; _ } ->
    base "dead_branch" [ ("branch", Obs.Json.Str branch) ]
  | Foldable { width; value; _ } ->
    base "foldable"
      ([ ("width", Obs.Json.num_of_int width) ]
      @
      match value with
      | Some v -> [ ("value", Obs.Json.num_of_int v) ]
      | None -> [])
  | Always_wraps { op; _ } -> base "always_wraps" [ ("op", Obs.Json.Str op) ]

let all_const_inputs (cell : Cell.t) =
  List.for_all Bits.is_const (Cell.input_bits cell)

(* comparisons NL010 covers, so NL012 skips them *)
let is_comparison = function
  | Cell.Binary { op = Cell.Eq | Cell.Ne | Cell.Logic_and | Cell.Logic_or; _ }
  | Cell.Unary { op = Cell.Logic_not; _ } -> true
  | _ -> false

let comparison_name = function
  | Cell.Binary { op; _ } -> Cell.binary_op_name op
  | Cell.Unary { op; _ } -> Cell.unary_op_name op
  | _ -> "comparison"

let derive (circuit : Circuit.t) (st : Absval.state) : fact list =
  let facts = ref [] in
  let emit f = facts := f :: !facts in
  List.iter
    (fun id ->
      let cell = Circuit.cell circuit id in
      if not (all_const_inputs cell) then begin
        (match cell with
        | Cell.Binary { op = Cell.Eq | Cell.Ne | Cell.Logic_and | Cell.Logic_or;
                        y; _ }
        | Cell.Unary { op = Cell.Logic_not; y; _ } -> (
          match read st y.(0) with
          | One -> emit (Comparison_const
                           { cell = id; op = comparison_name cell; value = true })
          | Zero -> emit (Comparison_const
                            { cell = id; op = comparison_name cell; value = false })
          | Top -> ())
        | Cell.Mux { s; _ } when not (Bits.is_const s) -> (
          match read st s with
          | One -> emit (Dead_branch { cell = id; branch = "the a (select=0) branch" })
          | Zero -> emit (Dead_branch { cell = id; branch = "the b (select=1) branch" })
          | Top -> ())
        | Cell.Pmux { s; _ } ->
          let blocked = ref false in
          Array.iteri
            (fun i b ->
              if not (Bits.is_const b) then begin
                if !blocked || read st b = Zero then
                  emit
                    (Dead_branch
                       { cell = id; branch = Fmt.str "pmux branch %d" i })
              end;
              if read st b = One then blocked := true)
            s;
          if !blocked
             && Array.for_all (fun b -> not (Bits.is_const b)) s then
            emit (Dead_branch { cell = id; branch = "the pmux default branch" })
        | Cell.Binary { op = Cell.Add | Cell.Sub as op; a; b; y } ->
          let w = Array.length y in
          if w <= max_itv_width then begin
            match (get_itv st a, get_itv st b) with
            | Some ia, Some ib ->
              let wraps =
                match op with
                | Cell.Add -> ia.lo + ib.lo >= 1 lsl w
                | _ -> ia.hi < ib.lo
              in
              if wraps then
                emit
                  (Always_wraps
                     { cell = id; op = Cell.binary_op_name op })
            | _ -> ()
          end
        | _ -> ());
        (* NL012: any combinational cell whose entire output is pinned *)
        if Cell.is_combinational cell && not (is_comparison cell) then begin
          let y = Cell.output cell in
          if all_definite st y then
            emit
              (Foldable
                 {
                   cell = id;
                   width = Array.length y;
                   value = definite st y;
                 })
        end
      end)
    (Circuit.cell_ids circuit);
  List.rev !facts
