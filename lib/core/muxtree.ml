(* Muxtree detection and flattening for the restructuring pass.

   A rebuildable muxtree (Algorithm 1's [OnlyEq] && [SingleCtrl]) is a tree
   of mux cells rooted at some mux, in which
   - every internal mux is a dedicated child (all reads of its output come
     from a single data-port side of a single tree mux),
   - every select is an $eq-with-constant, a $logic_not (the special
     all-zeros eq), or an $or-combination of those,
   - all the compared signals are the *same* selector signal S.

   Flattening produces priority rows (pattern cube over S's bits -> leaf
   data sigspec) plus a default, exactly the input of the ADD heuristic. *)

open Netlist

type row = { cube : Add_bdd.Add.pbit array; value : Bits.sigspec }

type flat = {
  root : int; (* root mux cell id *)
  selector : Bits.sigspec; (* the shared control signal S *)
  rows : row list; (* in priority order *)
  default : Bits.sigspec;
  tree_cells : int list; (* mux cells of the tree, root included *)
  select_cells : int list; (* eq / logic_not / or cells producing selects *)
  width : int; (* data width *)
}

(* --- select recognition --- *)

(* A recognized select, as a disjunction of constraint conjunctions: the
   select is 1 iff some constraint list is fully satisfied.  Constraints
   pair a selector bit with its required value.  [None] in the pattern list
   marks a contradictory (never-matching) pattern. *)
type select_info = {
  patterns : (Bits.bit * bool) list option list;
  cells : int list; (* cells making up this select *)
}

let constraints_of_eq (a : Bits.sigspec) (b : Bits.sigspec) :
    (Bits.bit * bool) list option =
  (* [b] must be a constant; conflicting requirements on one bit => never *)
  if not (Bits.is_fully_const b) then raise Not_found
  else begin
    let acc = ref [] in
    let never = ref false in
    Array.iteri
      (fun i ab ->
        if Bits.is_const ab then begin
          (* constant compared with constant *)
          match ab, b.(i) with
          | Bits.C0, Bits.C1 | Bits.C1, Bits.C0 -> never := true
          | _, _ -> ()
        end
        else begin
          let v =
            match b.(i) with
            | Bits.C0 -> Some false
            | Bits.C1 -> Some true
            | Bits.Cx | Bits.Of_wire _ -> None
          in
          match v with
          | None -> ()
          | Some v -> (
            match List.assoc_opt ab !acc with
            | Some v0 -> if v0 <> v then never := true
            | None -> acc := (ab, v) :: !acc)
        end)
      a;
    if !never then None else Some (List.rev !acc)
  end

(* Recognize the driver cone of select bit [s] as a disjunction of
   constraint patterns (eq-with-const, logic_not, or-of-those). *)
let rec recognize_select (c : Circuit.t) (index : Index.t) (s : Bits.bit) :
    select_info option =
  match Index.driving_cell index s with
  | None -> None
  | Some (id, _) -> (
    match Circuit.cell_opt c id with
    | None -> None
    | Some (Cell.Binary { op = Cell.Eq; a; b; _ }) -> (
      let a, b =
        if Bits.is_fully_const a && not (Bits.is_fully_const b) then b, a
        else a, b
      in
      match constraints_of_eq a b with
      | pattern -> Some { patterns = [ pattern ]; cells = [ id ] }
      | exception Not_found -> None)
    | Some (Cell.Unary { op = Cell.Logic_not; a; _ }) -> (
      match constraints_of_eq a (Bits.all_zero ~width:(Bits.width a)) with
      | pattern -> Some { patterns = [ pattern ]; cells = [ id ] }
      | exception Not_found -> None)
    | Some (Cell.Binary { op = Cell.Or; a; b; y }) when Bits.width y = 1 -> (
      match recognize_select c index a.(0) with
      | None -> None
      | Some left -> (
        match recognize_select c index b.(0) with
        | None -> None
        | Some right ->
          Some
            {
              patterns = left.patterns @ right.patterns;
              cells = (id :: left.cells) @ right.cells;
            }))
    | Some
        (Cell.Binary _ | Cell.Unary _ | Cell.Mux _ | Cell.Pmux _ | Cell.Dff _)
      -> None)

(* --- tree flattening --- *)

type deps = {
  circuit : Circuit.t;
  index : Index.t;
  readers : Rtl_opt.Opt_muxtree.readers;
}

(* Is [cell] a dedicated child of the given location? *)
let dedicated_to deps loc cell =
  match Rtl_opt.Opt_muxtree.dedicated_location deps.readers cell with
  | Some l -> l = loc
  | None -> false

(* The mux driving all bits of [port] as a dedicated child at [loc]. *)
let child_mux deps ~loc (port : Bits.sigspec) : int option =
  match Index.driving_cell deps.index port.(0) with
  | None -> None
  | Some (id, _) -> (
    match Circuit.cell_opt deps.circuit id with
    | Some (Cell.Mux { y; _ } as cell) ->
      if Bits.equal y port && dedicated_to deps loc cell then Some id
      else None
    | Some
        (Cell.Pmux _ | Cell.Unary _ | Cell.Binary _ | Cell.Dff _)
    | None -> None)

exception Not_a_tree

(* internal rows during flattening: constraint-based patterns *)
type crow = { cons : (Bits.bit * bool) list option; cvalue : Bits.sigspec }

let normalize_cons = function
  | None -> None
  | Some l -> Some (List.sort compare l)

(* Flatten the muxtree rooted at [root_id] into priority rows.  Raises
   [Not_a_tree] when the structure does not match.  [single_ctrl] enforces
   the paper's SingleCtrl condition (all selector bits from one wire);
   disabling it is this implementation's extension, allowing rebuilds of
   priority chains over several independent condition signals. *)
let flatten ?(single_ctrl = true) deps (root_id : int) : flat option =
  let tree_cells = ref [] in
  let select_cells = ref [] in
  let rec go (id : int) : crow list * Bits.sigspec =
    match Circuit.cell_opt deps.circuit id with
    | Some (Cell.Mux { a; b; s; _ }) -> (
      tree_cells := id :: !tree_cells;
      match recognize_select deps.circuit deps.index s with
      | None -> raise Not_a_tree
      | Some info ->
        select_cells := info.cells @ !select_cells;
        (* rows for the b side (taken when a pattern matches) *)
        let rows_b =
          match child_mux deps ~loc:(id, Rtl_opt.Opt_muxtree.Side_b 0) b with
          | Some cid ->
            let sub_rows, _sub_default = go cid in
            (* sound only if the subtree's patterns exactly cover this
               select's patterns *)
            let sub_pats =
              List.sort compare
                (List.map (fun r -> normalize_cons r.cons) sub_rows)
            in
            let here_pats =
              List.sort compare (List.map normalize_cons info.patterns)
            in
            if sub_pats = here_pats then sub_rows else raise Not_a_tree
          | None ->
            List.map (fun cons -> { cons; cvalue = b }) info.patterns
        in
        let rows_a, default =
          match child_mux deps ~loc:(id, Rtl_opt.Opt_muxtree.Side_a) a with
          | Some cid -> go cid
          | None -> [], a
        in
        rows_b @ rows_a, default)
    | Some (Cell.Pmux { a; b; s; _ }) ->
      tree_cells := id :: !tree_cells;
      let w = Bits.width a in
      let rows =
        List.concat
          (List.init (Bits.width s) (fun i ->
               match recognize_select deps.circuit deps.index s.(i) with
               | None -> raise Not_a_tree
               | Some info ->
                 select_cells := info.cells @ !select_cells;
                 let part = Bits.slice b ~off:(i * w) ~len:w in
                 List.map (fun cons -> { cons; cvalue = part }) info.patterns))
      in
      rows, a
    | Some (Cell.Unary _ | Cell.Binary _ | Cell.Dff _) | None ->
      raise Not_a_tree
  in
  match go root_id with
  | crows, default ->
    (* selector = every constrained bit, in order of first appearance *)
    let selector_bits = ref [] in
    List.iter
      (fun r ->
        match r.cons with
        | None -> ()
        | Some l ->
          List.iter
            (fun (b, _) ->
              if not (List.exists (Bits.bit_equal b) !selector_bits) then
                selector_bits := !selector_bits @ [ b ])
            l)
      crows;
    let selector = Array.of_list !selector_bits in
    let n = Array.length selector in
    let same_wire =
      match !selector_bits with
      | Bits.Of_wire (w0, _) :: rest ->
        List.for_all
          (function Bits.Of_wire (w, _) -> w = w0 | Bits.C0 | Bits.C1 | Bits.Cx -> false)
          rest
      | _ -> false
    in
    if single_ctrl && not same_wire then None
    else
    let pos b =
      let p = ref (-1) in
      Array.iteri (fun i sb -> if Bits.bit_equal sb b then p := i) selector;
      !p
    in
    let rows =
      List.filter_map
        (fun r ->
          match r.cons with
          | None -> None (* never matches: drop *)
          | Some l ->
            let cube = Array.make n Add_bdd.Add.Pz in
            List.iter
              (fun (b, v) ->
                cube.(pos b) <-
                  (if v then Add_bdd.Add.P1 else Add_bdd.Add.P0))
              l;
            Some { cube; value = r.cvalue })
        crows
    in
    if n = 0 || n > 24 || List.length rows < 2 then None
    else begin
      let width =
        Bits.width (Cell.output (Circuit.cell deps.circuit root_id))
      in
      Some
        {
          root = root_id;
          selector;
          rows;
          default;
          tree_cells = List.sort_uniq compare !tree_cells;
          select_cells = List.sort_uniq compare !select_cells;
          width;
        }
    end
  | exception Not_a_tree -> None

let make_deps (c : Circuit.t) =
  {
    circuit = c;
    index = Index.build c;
    readers = Rtl_opt.Opt_muxtree.collect_readers c;
  }

(* Re-flatten a single root against the given (current) dependencies. *)
let flatten_root ?single_ctrl (deps : deps) (root_id : int) : flat option =
  match Circuit.cell_opt deps.circuit root_id with
  | None -> None
  | Some _ -> flatten ?single_ctrl deps root_id

(* All rebuildable muxtrees of the circuit (roots are muxes that are not
   dedicated children themselves). *)
let find_all ?single_ctrl (c : Circuit.t) : flat list =
  let deps = make_deps c in
  List.filter_map
    (fun id ->
      let cell = Circuit.cell c id in
      match cell with
      | Cell.Mux _ | Cell.Pmux _ ->
        if
          Rtl_opt.Opt_muxtree.dedicated_location deps.readers cell = None
        then flatten ?single_ctrl deps id
        else None
      | Cell.Unary _ | Cell.Binary _ | Cell.Dff _ -> None)
    (Circuit.cell_ids c)
