(** Per-cell-kind statistics. *)

type t = {
  total : int;
  muxes : int;
  pmuxes : int;
  eqs : int;  (** $eq and $ne cells *)
  dffs : int;
  logic : int;  (** logic_* and reduce_* cells *)
  bitwise : int;  (** not/and/or/xor/xnor *)
  arith : int;  (** add/sub *)
  wires : int;
  mux_bits : int;  (** sum of mux widths: post-techmap 1-bit mux count *)
}

val of_circuit : Circuit.t -> t
val pp : Format.formatter -> t -> unit
