(* Signal substitution: route [to_] everywhere [from_] was read.

   Passes use this when deleting a cell whose output must be replaced by
   another signal.  Reader cells are rewritten in place.  If a replaced bit
   belongs to an output port (which cannot be renamed), a transparent
   buffer cell (or with constant zero, free after AIG folding) is inserted
   to keep the port driven. *)

let is_port_bit (c : Circuit.t) (b : Bits.bit) =
  match b with
  | Bits.C0 | Bits.C1 | Bits.Cx -> false
  | Bits.Of_wire (wid, _) ->
    List.exists (fun w -> w.Circuit.wire_id = wid) (Circuit.outputs c)
    || List.exists (fun w -> w.Circuit.wire_id = wid) (Circuit.inputs c)

let replace_sig (c : Circuit.t) ~(from_ : Bits.sigspec) ~(to_ : Bits.sigspec) =
  if Bits.width from_ <> Bits.width to_ then
    invalid_arg "Rewire.replace_sig: width mismatch";
  let subst = Bits.Bit_tbl.create 16 in
  Array.iteri
    (fun i fb ->
      match fb with
      | Bits.Of_wire _ -> Bits.Bit_tbl.replace subst fb to_.(i)
      | Bits.C0 | Bits.C1 | Bits.Cx -> ())
    from_;
  let lookup b =
    match Bits.Bit_tbl.find_opt subst b with Some nb -> nb | None -> b
  in
  List.iter
    (fun id ->
      let cell = Circuit.cell c id in
      let rewired = Cell.map_input_bits lookup cell in
      if rewired <> cell then Circuit.replace_cell c id rewired)
    (Circuit.cell_ids c);
  (* keep output-port bits driven via buffer cells *)
  let port_pairs =
    Array.to_list from_
    |> List.mapi (fun i fb -> fb, to_.(i))
    |> List.filter (fun (fb, _) -> is_port_bit c fb)
  in
  if port_pairs <> [] then begin
    let froms = Array.of_list (List.map fst port_pairs) in
    let tos = Array.of_list (List.map snd port_pairs) in
    ignore
      (Circuit.add_cell c
         (Cell.Binary
            {
              op = Cell.Or;
              a = tos;
              b = Bits.all_zero ~width:(Array.length tos);
              y = froms;
            }))
  end
