(** Cross-query verdict memoization for the decision engine.

    Sim/SAT verdicts are cached under a canonical structural key of
    (pruned sub-graph, known assignments, target) — alpha-equivalent over
    wire ids, so structurally identical queries from different muxtrees
    (or stamped-out copies of the same logic) hit the same entry.  The
    full key is stored, so hash collisions can never return a wrong
    verdict; [Unknown] verdicts are never cached (they depend on the
    conflict budget, not only on the query).  Domain-local like the
    metrics registry — worker domains install overlays over a frozen
    base and the coordinator absorbs them in task order — with
    hit/miss/eviction counters ([memo.hits], [memo.misses],
    [memo.evictions]) and bounded FIFO eviction. *)

open Netlist

(** A cacheable verdict ({!Engine.verdict} minus [Unknown]). *)
type verdict = Forced of bool | Free | Unreachable

val key :
  Circuit.t ->
  Subgraph.view ->
  bool Bits.Bit_tbl.t ->
  target:Bits.bit ->
  string
(** Canonical key: a deterministic serialization of the target's fanin
    cone within the view followed by the known cones in a
    structure-derived order, with wire bits numbered by first use.
    Knowns with no connection to the view are excluded. *)

val find : string -> verdict option
(** Bumps the hit/miss counters. *)

val store : string -> verdict -> unit
(** Insert (first writer wins); evicts FIFO beyond capacity. *)

val reset : ?capacity:int -> unit -> unit
(** Clear the store and set capacity (default 65536; 0 disables
    storing). *)

val size : unit -> int

val to_json : unit -> Obs.Json.t
(** [{"hits", "misses", "evictions", "entries", "capacity",
    "hit_rate"}] — the [--json] report's [memo] section. *)

(** {2 Domain-local overlays}

    Every operation above acts on the current domain's store: the
    process-global one unless an overlay is installed here.  An overlay
    owns its entries and reads through a frozen [base] — safe across
    domains while the base's owner is blocked at the join barrier. *)

type t
(** A verdict store. *)

val current : unit -> t
(** The store the current domain's operations hit. *)

val install_overlay : ?capacity:int -> ?base:t -> unit -> unit
(** Install a fresh overlay on the current domain, reading through
    [base] on miss and keeping its own writes. *)

val make : ?capacity:int -> ?base:t -> unit -> t
(** A detached store (not installed anywhere). *)

val install : t -> unit
(** Make an existing store the current domain's — the serve daemon
    keeps one warm store installed across jobs. *)

val uninstall_overlay : unit -> unit

type saved

val save : unit -> saved
(** The current domain's overlay slot, for displacing around an inline
    task (overlays nest by save/restore, not by stacking). *)

val restore : saved -> unit

type snapshot
(** An overlay's own entries, in insertion order. *)

val capture_overlay : unit -> snapshot
(** Drain and uninstall the current domain's overlay; empty when none
    is installed. *)

val absorb : snapshot -> unit
(** Replay a snapshot's entries into the current domain's store (first
    writer wins).  Absorbing task snapshots in task order makes the
    merged store schedule-independent. *)
