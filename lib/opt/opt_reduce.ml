(* A slice of Yosys `opt_reduce`: pmux grooming.

   - parts whose data equals the default collapse into the default
     (their select is dropped);
   - parts with identical data merge, or-ing their selects — only when
     no earlier part with *different* data sits between them, which would
     change priority semantics;
   - constant-false selects drop their part;
   - a pmux left with no parts becomes its default, with one part a mux.

   Kept out of the default flows (the paper's baseline is opt_expr +
   opt_merge + opt_muxtree + opt_clean); available for experiments. *)

open Netlist

type action = Keep | Changed of Cell.t | Collapse of Bits.sigspec

let groom_pmux (c : Circuit.t) (p : Cell.t) : action =
  match p with
  | Cell.Pmux { a; b; s; y } ->
    let w = Bits.width a in
    let n = Bits.width s in
    let parts =
      List.init n (fun i -> s.(i), Bits.slice b ~off:(i * w) ~len:w)
    in
    (* drop constant-false selects *)
    let parts =
      List.filter (fun (sel, _) -> not (Bits.bit_equal sel Bits.C0)) parts
    in
    (* merge adjacent-compatible identical-data parts: scan in priority
       order, or-ing a later part into an earlier one is safe only if all
       parts in between carry the same data *)
    let merged : (Bits.bit * Bits.sigspec) list =
      List.fold_left
        (fun acc (sel, data) ->
          match acc with
          | (prev_sel, prev_data) :: rest when Bits.equal prev_data data ->
            (Circuit.mk_or c prev_sel sel, prev_data) :: rest
          | _ -> (sel, data) :: acc)
        [] parts
      |> List.rev
    in
    (* a trailing run equal to the default folds into the default *)
    let drop_default_tail = function
      | [] -> []
      | l ->
        let rev = List.rev l in
        let rec go = function
          | (_, data) :: rest when Bits.equal data a -> go rest
          | kept -> List.rev kept
        in
        go rev
    in
    let merged = drop_default_tail merged in
    if List.length merged = n then Keep
    else begin
      match merged with
      | [] -> Collapse a
      | [ (sel, data) ] -> Changed (Cell.Mux { a; b = data; s = sel; y })
      | parts ->
        let s' = Array.of_list (List.map fst parts) in
        let b' = Bits.concat (List.map snd parts) in
        Changed (Cell.Pmux { a; b = b'; s = s'; y })
    end
  | Cell.Mux _ | Cell.Unary _ | Cell.Binary _ | Cell.Dff _ -> Keep

let m_cells_removed = Obs.Metrics.counter "flow.cells_removed"

let run_once (c : Circuit.t) : int =
  let changed = ref 0 in
  List.iter
    (fun id ->
      match Circuit.cell_opt c id with
      | None -> ()
      | Some cell -> (
        match groom_pmux c cell with
        | Keep -> ()
        | Changed cell' ->
          Circuit.replace_cell c id cell';
          incr changed
        | Collapse value ->
          let y = Cell.output cell in
          Rewire.replace_sig c ~from_:y ~to_:value;
          Circuit.remove_cell c id;
          Obs.Metrics.incr m_cells_removed;
          Obs.Provenance.emit ~kind:Obs.Provenance.Cell_removed ~cell:id
            ~pass:"opt_reduce" ~mechanism:(Obs.Provenance.Rule "pmux_collapse")
            ~area_delta:(-Stats.approx_cell_area cell) ();
          incr changed))
    (Circuit.cell_ids c);
  !changed

let m_changes = Obs.Metrics.counter "opt_reduce.changes"

let run (c : Circuit.t) : int =
  Obs.Trace.with_span "opt_reduce.run" @@ fun () ->
  let total = ref 0 in
  let rec fix iter =
    if iter < 8 then begin
      let n = run_once c in
      total := !total + n;
      if n > 0 then fix (iter + 1)
    end
  in
  fix 0;
  Obs.Metrics.add m_changes !total;
  !total
