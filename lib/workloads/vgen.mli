(** Synthetic RTL generation: emits Verilog source for the idioms the
    paper's benchmarks are made of.  Every emitter appends a block and
    registers its result signal, so later blocks consume earlier results
    and the circuits gain real depth. *)

type ctx = {
  rng : Rng.t;
  header : Buffer.t;
  body : Buffer.t;
  mutable pool : (string * int) list;  (** available signals: name, width *)
  mutable conds : string list;  (** 1-bit signals reused for correlation *)
  mutable n : int;
  mutable inputs : (string * int) list;
  mutable produced : (string * int) list;  (** sunk into outputs at render *)
}

val create : seed:int -> ctx

val add_input : ctx -> ?name:string -> int -> string
val add_wire : ctx -> ?name:string -> int -> string
val add_reg : ctx -> ?name:string -> int -> string

val emit_datapath : ctx -> width:int -> ops:int -> unit
(** A chain of bitwise / arithmetic assigns. *)

val emit_case :
  ctx ->
  sel_width:int ->
  items:int ->
  width:int ->
  distinct:int ->
  ?structured:bool ->
  unit ->
  unit
(** A case statement over a fresh selector.  [distinct] bounds the leaf
    expressions; [structured] (default) maps contiguous selector ranges to
    the same leaf — the block structure that makes rebuilt ADDs small. *)

val emit_foldable : ctx -> width:int -> unit
(** Logic the baseline folds away (constant operands, dead branches). *)

val emit_casez_priority : ctx -> sel_width:int -> width:int -> unit
(** A Listing-2-style wildcard priority decoder. *)

val emit_correlated_ifs : ctx -> depth:int -> width:int -> unit
(** Nested ifs whose conditions imply or contradict each other: the
    SAT-elimination workload. *)

val emit_redundant_nest : ctx -> width:int -> unit
(** Same-condition nesting (paper Fig. 1): baseline territory. *)

val emit_priority_chain : ctx -> depth:int -> width:int -> unit
(** Independent fresh-input conditions: neither optimizer helps. *)

val emit_crossbar_port : ctx -> n_grants:int -> width:int -> unit
(** A grant encoder plus a data select whose branch logic re-tests the
    request conditions the grant came from (wb_conmax flavour). *)

val emit_pipeline_stage : ctx -> width:int -> unit
(** A clocked register stage (inferred dff), optionally with an enable. *)

val render : ctx -> name:string -> outputs:int -> string
(** Sink every produced signal into xor-compressed outputs (so nothing is
    dead) and return the module text. *)
