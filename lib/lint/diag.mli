(** Located lint diagnostics.

    A diagnostic ties a registered rule id (["HDL001"], ["NL005"], ...) to
    a severity, a human message, and — when known — either a source span
    (HDL-layer rules) or a netlist cell id (netlist-layer rules). *)

type severity = Error | Warning | Info

type t = {
  rule : string;
  severity : severity;
  message : string;
  span : Hdl.Loc.span option;  (** source location, HDL rules *)
  cell : int option;  (** netlist cell id, netlist rules *)
}

val make :
  ?span:Hdl.Loc.span -> ?cell:int -> rule:string -> severity:severity ->
  string -> t

val error : ?span:Hdl.Loc.span -> ?cell:int -> rule:string -> string -> t
val warning : ?span:Hdl.Loc.span -> ?cell:int -> rule:string -> string -> t
val info : ?span:Hdl.Loc.span -> ?cell:int -> rule:string -> string -> t

val severity_name : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val severity_of_name : string -> severity option

val compare : t -> t -> int
(** Errors first, then warnings, then infos; ties broken by rule id, then
    source position, then message. *)

val sort : t list -> t list

val counts : t list -> int * int * int
(** [(errors, warnings, infos)]. *)

val has_errors : t list -> bool

val location_string : t -> string
(** ["3:7"] for a span, ["cell 12"] for a cell, ["-"] when neither. *)

val pp : Format.formatter -> t -> unit
(** ["3:7: warning[HDL001]: ..."] — no file name; callers that lint many
    sources prefix one themselves. *)

val to_json : t -> Obs.Json.t

val apply : ?werror:bool -> ?waive:string list -> t list -> t list
(** Post-processing as the CLI flags do it: drop diagnostics whose rule id
    is in [waive], then (with [werror]) upgrade the surviving warnings to
    errors.  Infos are never upgraded. *)

val table_rows : t list -> string list list
(** One row per diagnostic: severity, rule, location, message — matching
    {!table_columns}. *)

val table_columns : Report.Table.column list
