(* Deciding whether a target bit is forced under known values: cheap
   inference rules first, then exhaustive simulation when the sub-graph has
   few free inputs, otherwise an incremental SAT query (the paper's
   MiniSAT role, played by our CDCL solver).  Beyond the input threshold
   the query is forgone to bound the optimization cost. *)

open Netlist

type verdict =
  | Forced of bool
  | Free (* provably takes both values *)
  | Unreachable (* the known values are contradictory: dead path *)
  | Unknown (* budget exhausted / thresholds exceeded *)

type stats = {
  mutable rule_hits : int;
  mutable analysis_hits : int;
  mutable analysis_queries : int;
  mutable sim_queries : int;
  mutable sat_queries : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable forgone : int;
  mutable subgraph_kept : int;
  mutable subgraph_dropped : int;
  mutable sat_conflicts : int;
  mutable sat_decisions : int;
  mutable sat_propagations : int;
}

let fresh_stats () =
  {
    rule_hits = 0;
    analysis_hits = 0;
    analysis_queries = 0;
    sim_queries = 0;
    sat_queries = 0;
    memo_hits = 0;
    memo_misses = 0;
    forgone = 0;
    subgraph_kept = 0;
    subgraph_dropped = 0;
    sat_conflicts = 0;
    sat_decisions = 0;
    sat_propagations = 0;
  }

(* Which rung of the ladder produced a verdict — the provenance side of
   {!determine_how}. *)
type source =
  | Via_lookup (* already known: identical-signal rule *)
  | Via_rule of string (* inference rule family that derived the value *)
  | Via_analysis (* abstract-interpretation rung zero *)
  | Via_sim (* exhaustive bit-parallel simulation *)
  | Via_sat of int (* SAT query, carrying the query id *)
  | Via_memo (* cross-query verdict cache hit *)
  | Via_forgone (* thresholds exceeded; verdict is Unknown *)

let source_name = function
  | Via_lookup -> "lookup"
  | Via_rule r -> "rule:" ^ r
  | Via_analysis -> "analysis"
  | Via_sim -> "sim"
  | Via_sat id -> Printf.sprintf "sat:%d" id
  | Via_memo -> "memo"
  | Via_forgone -> "forgone"

(* Per-SAT-query telemetry with a bounded buffer of the hardest queries
   (by conflicts), each carrying a self-contained DIMACS dump so it can be
   re-run in isolation by [smartly replay].  Domain-local, like the
   metrics registry: each scheduler worker numbers its queries from 0 in
   its own instance, and [absorb] folds a captured worker log back into
   the coordinator's, shifting local ids onto the global sequence so the
   merged log is indistinguishable from a sequential run's.  [reset]
   scopes the coordinator's log to one run. *)
module Sat_log = struct
  type entry = {
    id : int;
    verdict : string; (* forced_true | forced_false | free | unknown *)
    solve : Cdcl.Solver.result; (* result of the query's final solve *)
    mode : string; (* fresh | session *)
    conflicts : int;
    decisions : int;
    propagations : int;
    wall_s : float;
    vars : int;
    clauses : int;
    dimacs : int -> string;
        (* full instance incl. metadata comment line, rendered for the
           given (possibly remapped) query id *)
  }

  let default_keep = 8

  type state = {
    mutable keep : int;
    mutable next_id : int;
    mutable total : int;
    mutable hardest : entry list; (* hardest first, length <= keep *)
  }

  let fresh_state () =
    { keep = default_keep; next_id = 0; total = 0; hardest = [] }

  let state_key : state Domain.DLS.key = Domain.DLS.new_key fresh_state
  let st () = Domain.DLS.get state_key

  let reset ?keep:(k = default_keep) () =
    let s = st () in
    s.keep <- k;
    s.next_id <- 0;
    s.total <- 0;
    s.hardest <- []

  let fresh_id () =
    let s = st () in
    let id = s.next_id in
    s.next_id <- s.next_id + 1;
    id

  let admits s ~conflicts =
    s.keep > 0
    && (List.length s.hardest < s.keep
       ||
       match List.rev s.hardest with
       | weakest :: _ -> conflicts > weakest.conflicts
       | [] -> true)

  (* Newest-first among equal conflict counts, exactly like sequential
     admission: the candidate is prepended before the stable sort. *)
  let insert s (e : entry) =
    let merged =
      List.stable_sort
        (fun a b -> compare b.conflicts a.conflicts)
        (e :: s.hardest)
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    s.hardest <- take s.keep merged

  (* [dimacs] is a thunk so easy queries that don't make the buffer never
     pay for materializing the instance; it is forced at admission (the
     encoder it closes over mutates across queries) and yields the
     id-parameterized renderer stored in the entry. *)
  let record ~id ~verdict ~solve ~mode ~conflicts ~decisions ~propagations
      ~wall_s ~vars ~clauses ~(dimacs : unit -> int -> string) =
    let s = st () in
    s.total <- s.total + 1;
    if admits s ~conflicts then
      insert s
        {
          id;
          verdict;
          solve;
          mode;
          conflicts;
          decisions;
          propagations;
          wall_s;
          vars;
          clauses;
          dimacs = dimacs ();
        }

  (* --- worker capture / merge --- *)

  type snapshot = {
    ss_ids : int; (* ids consumed by the captured instance *)
    ss_total : int;
    ss_entries : entry list; (* its hardest buffer, local ids *)
  }

  let capture_and_reset () : snapshot =
    let s = st () in
    let snap =
      { ss_ids = s.next_id; ss_total = s.total; ss_entries = s.hardest }
    in
    s.next_id <- 0;
    s.total <- 0;
    s.hardest <- [];
    snap

  (* Displace the current domain's log with a fresh one — task scoping
     when the coordinator runs tasks inline ([--jobs 1]) — and put the
     displaced log back afterwards. *)
  type saved = state

  let save_fresh () : saved =
    let prev = Domain.DLS.get state_key in
    Domain.DLS.set state_key (fresh_state ());
    prev

  let restore (s : saved) = Domain.DLS.set state_key s

  (* Fold a captured worker log into the current domain's.  Returns the
     id offset applied, so the caller can renumber the same task's
     provenance/bus references ({!Obs.Scope.map_queries}) consistently.
     Entries are re-admitted in their original (id) order through the
     same admission predicate, which reproduces the sequential buffer
     exactly: a worker's buffer starts empty, so it retains a superset
     of what global admission would have kept from that worker. *)
  let absorb (snap : snapshot) : int =
    let s = st () in
    let offset = s.next_id in
    s.next_id <- s.next_id + snap.ss_ids;
    s.total <- s.total + snap.ss_total;
    List.iter
      (fun e ->
        if admits s ~conflicts:e.conflicts then
          insert s { e with id = e.id + offset })
      (List.sort (fun a b -> compare a.id b.id) snap.ss_entries);
    offset

  let hardest () = (st ()).hardest
  let query_count () = (st ()).total

  (* The portfolio trigger: once some retained hardest-ring entry has
     crossed [hard_floor] conflicts, this run's workload is producing
     queries the primary configuration struggles with, and later SAT
     queries are worth racing against a fresh-encoding rival. *)
  let hard_floor = 64

  let flags_hard () =
    List.exists (fun e -> e.conflicts >= hard_floor) (st ()).hardest

  let solve_name = function
    | Cdcl.Solver.Sat -> "SAT"
    | Cdcl.Solver.Unsat -> "UNSAT"
    | Cdcl.Solver.Unknown -> "UNKNOWN"

  let entry_json (e : entry) : Obs.Json.t =
    Obs.Json.Obj
      [
        ("id", Obs.Json.num_of_int e.id);
        ("verdict", Obs.Json.Str e.verdict);
        ("solve", Obs.Json.Str (solve_name e.solve));
        ("mode", Obs.Json.Str e.mode);
        ("conflicts", Obs.Json.num_of_int e.conflicts);
        ("decisions", Obs.Json.num_of_int e.decisions);
        ("propagations", Obs.Json.num_of_int e.propagations);
        ("wall_seconds", Obs.Json.Num e.wall_s);
        ("vars", Obs.Json.num_of_int e.vars);
        ("clauses", Obs.Json.num_of_int e.clauses);
      ]

  let to_json () : Obs.Json.t =
    let s = st () in
    Obs.Json.Obj
      [
        ("total", Obs.Json.num_of_int s.total);
        ("hardest", Obs.Json.List (List.map entry_json s.hardest));
      ]

  (* One file per hardest query, named by query id. *)
  let dump ~dir =
    List.map
      (fun e ->
        let path = Filename.concat dir (Printf.sprintf "query_%04d.cnf" e.id) in
        let oc = open_out path in
        output_string oc (e.dimacs e.id);
        close_out oc;
        path)
      (List.rev (st ()).hardest)
end

(* Global instruments; handles resolved once, bumped per query. *)
let m_rule_hits = Obs.Metrics.counter "engine.rule_hits"
let m_analysis_queries = Obs.Metrics.counter "engine.analysis_queries"
let m_analysis_hits = Obs.Metrics.counter "engine.analysis_hits"
let m_analysis_forced = Obs.Metrics.counter "engine.analysis_forced"

let m_analysis_unreachable =
  Obs.Metrics.counter "engine.analysis_unreachable"

(* queries rung zero kept away from the heavier rungs, split by which
   rung would have answered them *)
let m_analysis_sim_avoided = Obs.Metrics.counter "engine.analysis_sim_avoided"
let m_analysis_sat_avoided = Obs.Metrics.counter "engine.analysis_sat_avoided"
let m_analysis_sweeps = Obs.Metrics.counter "engine.analysis_sweeps"
let h_analysis_seconds = Obs.Metrics.histogram "engine.analysis_seconds"
let m_sim_queries = Obs.Metrics.counter "engine.sim_queries"
let m_sat_queries = Obs.Metrics.counter "engine.sat_queries"
let m_forgone = Obs.Metrics.counter "engine.forgone"
let m_sat_conflicts = Obs.Metrics.counter "engine.sat_conflicts"
let m_sat_decisions = Obs.Metrics.counter "engine.sat_decisions"
let m_sat_propagations = Obs.Metrics.counter "engine.sat_propagations"
let h_conflicts_per_query = Obs.Metrics.histogram "engine.conflicts_per_query"
let h_sat_query_seconds = Obs.Metrics.histogram "engine.sat_query_seconds"
let h_sim_query_seconds = Obs.Metrics.histogram "engine.sim_query_seconds"
let h_subgraph_size = Obs.Metrics.histogram "engine.subgraph_cells"
let m_subgraph_kept = Obs.Metrics.counter "subgraph.kept"
let m_subgraph_dropped = Obs.Metrics.counter "subgraph.dropped"

(* --- exhaustive simulation --- *)

(* Enumerate all assignments of [free_inputs]; rows violating a known value
   of an internal signal are discarded; check whether [target] is constant
   over the surviving rows. *)
let simulate_exhaustive (circuit : Circuit.t) (view : Subgraph.view)
    (known : Inference.known) ~(free_inputs : Bits.bit list)
    ~(target : Bits.bit) : verdict =
  let n = List.length free_inputs in
  let lanes = min Rtl_sim.Vector.lanes_max 62 in
  let total = 1 lsl n in
  (* bits the view actually computes *)
  let internal = Bits.Bit_tbl.create 64 in
  List.iter
    (fun id ->
      List.iter
        (fun b -> Bits.Bit_tbl.replace internal b ())
        (Cell.output_bits (Circuit.cell circuit id)))
    view.Subgraph.cells;
  let is_source b = List.exists (Bits.bit_equal b) view.Subgraph.sources in
  (* only filter on knowns whose value the simulation reproduces *)
  let check_bits =
    Bits.Bit_tbl.fold
      (fun b v acc ->
        if Bits.Bit_tbl.mem internal b || is_source b then (b, v) :: acc
        else acc)
      known []
  in
  let saw_true = ref false and saw_false = ref false in
  let chunk_start = ref 0 in
  (try
     while !chunk_start < total do
       let lanes_here = min lanes (total - !chunk_start) in
       let env = Rtl_sim.Vector.create ~lanes:lanes_here () in
       (* lane j encodes assignment index chunk_start + j *)
       List.iteri
         (fun bit_idx b ->
           let word = ref 0 in
           for j = 0 to lanes_here - 1 do
             let assignment = !chunk_start + j in
             if (assignment lsr bit_idx) land 1 = 1 then
               word := !word lor (1 lsl j)
           done;
           Rtl_sim.Vector.write env b !word)
         free_inputs;
       (* known source values (constants across lanes) *)
       Bits.Bit_tbl.iter
         (fun b v ->
           if
             is_source b
             && not (List.exists (Bits.bit_equal b) free_inputs)
           then
             Rtl_sim.Vector.write env b
               (if v then (1 lsl lanes_here) - 1 else 0))
         known;
       Rtl_sim.Vector.eval_ordered circuit env view.Subgraph.cells;
       (* filter lanes violating internal knowns *)
       let valid = ref ((1 lsl lanes_here) - 1) in
       List.iter
         (fun (b, v) ->
           let w = Rtl_sim.Vector.read env b in
           let mask = (1 lsl lanes_here) - 1 in
           let agree = if v then w else lnot w land mask in
           valid := !valid land agree)
         check_bits;
       let tv = Rtl_sim.Vector.read env target in
       let mask = (1 lsl lanes_here) - 1 in
       if !valid land tv <> 0 then saw_true := true;
       if !valid land (lnot tv land mask) <> 0 then saw_false := true;
       if !saw_true && !saw_false then raise Exit;
       chunk_start := !chunk_start + lanes_here
     done
   with Exit -> ());
  match !saw_true, !saw_false with
  | true, true -> Free
  | true, false -> Forced true
  | false, true -> Forced false
  | false, false -> Unreachable

(* --- SAT --- *)

let verdict_query_name = function
  | Cdcl.Tseitin.Forced true -> "forced_true"
  | Cdcl.Tseitin.Forced false -> "forced_false"
  | Cdcl.Tseitin.Free -> "free"
  | Cdcl.Tseitin.Contradictory -> "unreachable"
  | Cdcl.Tseitin.Undetermined -> "unknown"

(* Encode, query, and log one SAT query; returns the verdict and the
   query id assigned to it.

   With [session], the persistent solver is reused: the view's cells are
   lazily encoded as guarded clause groups ([Cdcl.Session.prepare]) and
   this query activates exactly them by assuming their guard literals, so
   the verdict is identical to a fresh encoding of the view while learned
   clauses and the variable map survive to the next query. *)
type attempt_out = {
  at_r : Cdcl.Tseitin.query_result;
  at_info : Cdcl.Tseitin.solve_info;
  at_enc : Cdcl.Tseitin.t;
  at_assumptions : Cdcl.Lit.t list;
  at_mode : string;
  at_conflicts : int;
  at_decisions : int;
  at_propagations : int;
  at_wall_s : float;
}

let m_portfolio_races = Obs.Metrics.counter "engine.portfolio_races"
let m_portfolio_fresh_wins = Obs.Metrics.counter "engine.portfolio_fresh_wins"

let query_sat_how ?stats ?session ?(portfolio = false) (circuit : Circuit.t)
    (view : Subgraph.view) (known : Inference.known) ~budget
    ~(target : Bits.bit) : verdict * int =
  let qid = Sat_log.fresh_id () in
  let fresh_candidate () =
    let enc = Cdcl.Tseitin.create () in
    Cdcl.Tseitin.encode_cells enc circuit view.Subgraph.cells;
    (enc, [], None, "fresh")
  in
  let primary =
    match session with
    | Some sess ->
      let guards, relevant =
        Cdcl.Session.prepare sess circuit view.Subgraph.cells
      in
      (Cdcl.Session.encoder sess, guards, Some relevant, "session")
    | None -> fresh_candidate ()
  in
  let attempt (enc, guards, relevant, mode) interrupt : attempt_out =
    let assumptions =
      guards
      @ Bits.Bit_tbl.fold
          (fun b v acc -> Cdcl.Tseitin.assume_lit enc b v :: acc)
          known []
    in
    (* snapshot around the query so a persistent solver's lifetime totals
       don't leak into per-query telemetry (fresh solvers start at zero,
       so the deltas are identical to the old totals there) *)
    let c0, d0, p0 = Cdcl.Solver.stats enc.Cdcl.Tseitin.solver in
    let t0 = Obs.Clock.now () in
    let r, info =
      Cdcl.Tseitin.query_forced_info ~budget ?relevant ~interrupt enc
        ~assumptions ~target
    in
    let wall_s = Obs.Clock.now () -. t0 in
    let c1, d1, p1 = Cdcl.Solver.stats enc.Cdcl.Tseitin.solver in
    {
      at_r = r;
      at_info = info;
      at_enc = enc;
      at_assumptions = assumptions;
      at_mode = mode;
      at_conflicts = c1 - c0;
      at_decisions = d1 - d0;
      at_propagations = p1 - p0;
      at_wall_s = wall_s;
    }
  in
  let no_interrupt () = false in
  let out =
    if portfolio && session <> None && Sat_log.flags_hard () then begin
      (* Race the warm session against a fresh encoding (no accumulated
         learned clauses or activity — a genuinely different search
         trajectory).  The first decided verdict wins and interrupts the
         rival; an interrupted or budgeted-out attempt reports
         [Undetermined] and is stashed as the fallback for when neither
         side decides.  Only the winner's deltas reach the telemetry,
         which is why this mode is opt-in: the netlist is unchanged, but
         conflict counts and the hardest-query ranking become
         schedule-dependent. *)
      Obs.Metrics.incr m_portfolio_races;
      let undecided = Atomic.make None in
      let wrap mk stop =
        let out = attempt (mk ()) stop in
        match out.at_r with
        | Cdcl.Tseitin.Undetermined ->
          Atomic.set undecided (Some out);
          None
        | _ -> Some { out with at_mode = "portfolio-" ^ out.at_mode }
      in
      match Pool.race [ wrap (fun () -> primary); wrap fresh_candidate ] with
      | Some out ->
        if out.at_mode = "portfolio-fresh" then
          Obs.Metrics.incr m_portfolio_fresh_wins;
        out
      | None -> (
        match Atomic.get undecided with
        | Some out -> out
        | None -> attempt primary no_interrupt)
    end
    else attempt primary no_interrupt
  in
  let {
    at_r = r;
    at_info = info;
    at_enc = enc;
    at_assumptions = assumptions;
    at_mode = mode;
    at_conflicts = conflicts;
    at_decisions = decisions;
    at_propagations = propagations;
    at_wall_s = wall_s;
  } =
    out
  in
  Obs.Metrics.add m_sat_conflicts conflicts;
  Obs.Metrics.add m_sat_decisions decisions;
  Obs.Metrics.add m_sat_propagations propagations;
  Obs.Metrics.observe_int h_conflicts_per_query conflicts;
  Obs.Metrics.observe h_sat_query_seconds wall_s;
  (match stats with
  | Some s ->
    s.sat_conflicts <- s.sat_conflicts + conflicts;
    s.sat_decisions <- s.sat_decisions + decisions;
    s.sat_propagations <- s.sat_propagations + propagations
  | None -> ());
  let vars = Cdcl.Solver.num_vars enc.Cdcl.Tseitin.solver in
  let clauses = Cdcl.Solver.num_clauses enc.Cdcl.Tseitin.solver in
  let dimacs () =
    (* self-contained instance: encoding + assumptions (path facts AND
       session guard literals) and the final target polarity as unit
       clauses, so a plain solve of the file must reproduce
       [info.last_result].  In session mode the log also holds inactive
       clause groups; their guards stay free, so any solver can satisfy
       them by switching those groups off.  The CNF is materialized now
       (the session encoder mutates across queries); only the metadata
       comment waits for the final query id, which a parallel merge may
       shift. *)
    let extra =
      List.map (fun l -> [ l ]) assumptions
      @ [ [ info.Cdcl.Tseitin.last_target_lit ] ]
    in
    let cnf = Cdcl.Tseitin.to_dimacs enc ~extra in
    fun id ->
      let meta =
        Printf.sprintf
          "smartly-sat-query id=%d verdict=%s solve=%s mode=%s conflicts=%d \
           decisions=%d propagations=%d wall_us=%.0f"
          id (verdict_query_name r)
          (Sat_log.solve_name info.Cdcl.Tseitin.last_result)
          mode conflicts decisions propagations (wall_s *. 1e6)
      in
      Cdcl.Dimacs.to_string ~comments:[ meta ] cnf
  in
  Sat_log.record ~id:qid ~verdict:(verdict_query_name r)
    ~solve:info.Cdcl.Tseitin.last_result ~mode ~conflicts ~decisions
    ~propagations ~wall_s ~vars ~clauses ~dimacs;
  if Obs.Event.enabled () then
    Obs.Event.emit
      ~name:(Printf.sprintf "q%d" qid)
      ~data:
        (Obs.Json.Obj
           [
             "id", Obs.Json.num_of_int qid;
             "verdict", Obs.Json.Str (verdict_query_name r);
             "mode", Obs.Json.Str mode;
             "conflicts", Obs.Json.num_of_int conflicts;
             "wall_us", Obs.Json.Num (wall_s *. 1e6);
           ])
      Obs.Event.Sat_query;
  ( (match r with
    | Cdcl.Tseitin.Forced v -> Forced v
    | Cdcl.Tseitin.Free -> Free
    | Cdcl.Tseitin.Contradictory -> Unreachable
    | Cdcl.Tseitin.Undetermined -> Unknown),
    qid )

let query_sat ?stats ?session ?portfolio circuit view known ~budget ~target :
    verdict =
  fst
    (query_sat_how ?stats ?session ?portfolio circuit view known ~budget
       ~target)

(* --- the combined engine --- *)

(* Determine [target] under [known].  A fresh bounded sub-graph is built
   from the distance-k cones of the target and of every known signal (the
   only gates Theorem II.1 allows to matter), then pruned.  [known] is
   copied; the caller's map is never polluted by inferred values. *)
let determine_how ?session (cfg : Config.t) (stats : stats)
    (circuit : Circuit.t) (index : Index.t) (known : Inference.known)
    ~(target : Bits.bit) : verdict * source =
  match Inference.read known target with
  | Some v -> (Forced v, Via_lookup) (* identical-signal case, free *)
  | None when Budget.exhausted () ->
    (* The pass blew its resource budget: forgo the query instead of
       building the sub-graph.  Sound — Unknown just means "leave the
       mux alone" — so the flow degrades to partial optimization. *)
    Budget.note_truncation ();
    stats.forgone <- stats.forgone + 1;
    Obs.Metrics.incr m_forgone;
    (Unknown, Via_forgone)
  | None ->
    let sg = Subgraph.create circuit index in
    let k = cfg.Config.distance_k in
    Subgraph.add_cone sg ~k target;
    Bits.Bit_tbl.iter (fun b _ -> Subgraph.add_cone sg ~k b) known;
    Obs.Metrics.observe_int h_subgraph_size (Subgraph.size sg);
    if Subgraph.size sg > cfg.Config.max_subgraph_cells then begin
      stats.forgone <- stats.forgone + 1;
      Obs.Metrics.incr m_forgone;
      (Unknown, Via_forgone)
    end
    else begin
    let relevant =
      target :: Bits.Bit_tbl.fold (fun b _ acc -> b :: acc) known []
    in
    let view =
      if cfg.Config.enable_pruning then Subgraph.prune sg ~relevant
      else Subgraph.full_view sg
    in
    stats.subgraph_kept <- stats.subgraph_kept + view.Subgraph.kept;
    stats.subgraph_dropped <- stats.subgraph_dropped + view.Subgraph.dropped;
    Obs.Metrics.add m_subgraph_kept view.Subgraph.kept;
    Obs.Metrics.add m_subgraph_dropped view.Subgraph.dropped;
    (* target not even in the pruned sub-graph (neither computed by it nor
       one of its sources): no relation to knowns, nothing to infer from *)
    let target_inside =
      List.exists (Bits.bit_equal target) view.Subgraph.sources
      || List.exists
           (fun id ->
             List.exists (Bits.bit_equal target)
               (Cell.output_bits (Circuit.cell circuit id)))
           view.Subgraph.cells
    in
    if not target_inside then (Unknown, Via_forgone)
    else begin
      let local = Bits.Bit_tbl.copy known in
      let track = Bits.Bit_tbl.create 16 in
      match
        if cfg.Config.enable_inference_rules then begin
          let _sweeps =
            Inference.propagate ~track circuit local view.Subgraph.cells
          in
          Inference.read local target
        end
        else None
      with
      | Some v ->
        stats.rule_hits <- stats.rule_hits + 1;
        Obs.Metrics.incr m_rule_hits;
        let rule =
          match Bits.Bit_tbl.find_opt track target with
          | Some r -> r
          | None -> "rule"
        in
        (Forced v, Via_rule rule)
      | None ->
        let free_inputs =
          List.filter
            (fun b -> not (Bits.Bit_tbl.mem local b))
            view.Subgraph.sources
        in
        let n = List.length free_inputs in
        if
          n > cfg.Config.sim_input_threshold
          && n > cfg.Config.sat_input_threshold
        then begin
          stats.forgone <- stats.forgone + 1;
          Obs.Metrics.incr m_forgone;
          (Unknown, Via_forgone)
        end
        else begin
          (* rung zero: the abstract-interpretation fixpoint over the
             pruned view, seeded with every path fact (plus whatever the
             rules just inferred into [local]).  Sound by construction —
             it only answers when a definite value or a contradiction is
             proven, and falls through on top — and it sits after the
             threshold check so it only ever intercepts queries the
             sim/SAT rungs would have answered identically: final
             netlists are byte-identical with the rung off, only the
             query counters move. *)
          let analysis_verdict =
            if not cfg.Config.enable_analysis then None
            else begin
              stats.analysis_queries <- stats.analysis_queries + 1;
              Obs.Metrics.incr m_analysis_queries;
              let t0 = Obs.Clock.now () in
              let seeds =
                Bits.Bit_tbl.fold (fun b v acc -> (b, v) :: acc) local []
              in
              let r =
                Analysis.Fixpoint.run ~seeds circuit view.Subgraph.cells
              in
              Obs.Metrics.observe h_analysis_seconds (Obs.Clock.now () -. t0);
              match r with
              | Analysis.Fixpoint.Contradiction ->
                Obs.Metrics.incr m_analysis_unreachable;
                Some Unreachable
              | Analysis.Fixpoint.Converged o -> (
                Obs.Metrics.add m_analysis_sweeps o.Analysis.Fixpoint.sweeps;
                match Analysis.Absval.read o.Analysis.Fixpoint.state target with
                | Analysis.Absval.One ->
                  Obs.Metrics.incr m_analysis_forced;
                  Some (Forced true)
                | Analysis.Absval.Zero ->
                  Obs.Metrics.incr m_analysis_forced;
                  Some (Forced false)
                | Analysis.Absval.Top -> None)
            end
          in
          match analysis_verdict with
          | Some v ->
            stats.analysis_hits <- stats.analysis_hits + 1;
            Obs.Metrics.incr m_analysis_hits;
            Obs.Metrics.incr
              (if n <= cfg.Config.sim_input_threshold then
                 m_analysis_sim_avoided
               else m_analysis_sat_avoided);
            (v, Via_analysis)
          | None ->
          (* sim and SAT verdicts are pure functions of (view, knowns,
             target): consult the cross-query cache before either rung *)
          let mkey =
            if cfg.Config.enable_sat_memo then
              Some (Memo.key circuit view local ~target)
            else None
          in
          match Option.bind mkey Memo.find with
          | Some mv ->
            stats.memo_hits <- stats.memo_hits + 1;
            let v =
              match mv with
              | Memo.Forced b -> Forced b
              | Memo.Free -> Free
              | Memo.Unreachable -> Unreachable
            in
            (v, Via_memo)
          | None ->
            if mkey <> None then stats.memo_misses <- stats.memo_misses + 1;
            let v, src =
              if n <= cfg.Config.sim_input_threshold then begin
                stats.sim_queries <- stats.sim_queries + 1;
                Obs.Metrics.incr m_sim_queries;
                let t0 = Obs.Clock.now () in
                let v =
                  simulate_exhaustive circuit view local ~free_inputs ~target
                in
                Obs.Metrics.observe h_sim_query_seconds
                  (Obs.Clock.now () -. t0);
                (v, Via_sim)
              end
              else begin
                stats.sat_queries <- stats.sat_queries + 1;
                Obs.Metrics.incr m_sat_queries;
                let v, qid =
                  query_sat_how ~stats ?session
                    ~portfolio:cfg.Config.portfolio circuit view local
                    ~budget:cfg.Config.sat_conflict_budget ~target
                in
                (v, Via_sat qid)
              end
            in
            (match mkey with
            | Some k -> (
              match v with
              | Forced b -> Memo.store k (Memo.Forced b)
              | Free -> Memo.store k Memo.Free
              | Unreachable -> Memo.store k Memo.Unreachable
              | Unknown -> () (* budget-dependent, never cached *))
            | None -> ());
            (v, src)
        end
      | exception Inference.Contradiction -> (Unreachable, Via_rule "contradiction")
    end
    end

let determine ?session cfg stats circuit index known ~target : verdict =
  fst (determine_how ?session cfg stats circuit index known ~target)
