(* Tests for the continuous-benchmarking library: robust statistics,
   the versioned schema, threshold classification, the baseline store,
   and the regression gate. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let check_float name expected got =
  if abs_float (expected -. got) > 1e-9 then
    Alcotest.failf "%s: expected %g, got %g" name expected got

(* --- Stat --- *)

let test_median () =
  check_float "odd" 2.0 (Perf.Stat.median [| 3.0; 1.0; 2.0 |]);
  check_float "even" 2.5 (Perf.Stat.median [| 4.0; 1.0; 2.0; 3.0 |]);
  check_float "single" 7.0 (Perf.Stat.median [| 7.0 |]);
  check_float "empty" 0.0 (Perf.Stat.median [||]);
  (* median must not mutate its argument *)
  let a = [| 3.0; 1.0; 2.0 |] in
  ignore (Perf.Stat.median a);
  check_bool "no mutation" true (a = [| 3.0; 1.0; 2.0 |])

let test_summarize () =
  let s = Perf.Stat.summarize [ 1.0; 2.0; 3.0; 4.0; 100.0 ] in
  check_float "median outlier-resistant" 3.0 s.Perf.Stat.median;
  check_float "min" 1.0 s.Perf.Stat.min;
  (* deviations from 3: [2;1;0;1;97] -> median 1 *)
  check_float "mad" 1.0 s.Perf.Stat.mad;
  check_int "runs" 5 s.Perf.Stat.runs;
  let empty = Perf.Stat.summarize [] in
  check_int "empty runs" 0 empty.Perf.Stat.runs

(* --- Measure --- *)

let test_repeat () =
  let prepared = ref 0 and ran = ref 0 in
  let v, timed =
    Perf.Measure.repeat ~reps:3
      ~prepare:(fun () -> incr prepared)
      (fun () ->
        incr ran;
        !ran)
  in
  check_int "prepare per rep" 3 !prepared;
  check_int "ran" 3 !ran;
  check_int "last result" 3 v;
  check_int "summary runs" 3 timed.Perf.Measure.wall.Perf.Stat.runs;
  check_bool "non-negative wall" true (timed.Perf.Measure.wall.Perf.Stat.min >= 0.0);
  (* reps is clamped to at least one *)
  let v0, t0 = Perf.Measure.repeat ~reps:0 (fun () -> 42) in
  check_int "clamped result" 42 v0;
  check_int "clamped runs" 1 t0.Perf.Measure.wall.Perf.Stat.runs

(* --- Clock / Gc instrumentation --- *)

let test_clock_monotonic () =
  let prev = ref (Obs.Clock.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now_ns () in
    check_bool "non-decreasing" true (Int64.compare t !prev >= 0);
    prev := t
  done

let test_gc_delta () =
  let mark = Obs.Metrics.gc_mark () in
  let acc = ref [] in
  for i = 1 to 10_000 do
    acc := string_of_int i :: !acc
  done;
  ignore (Sys.opaque_identity !acc);
  let d = Obs.Metrics.gc_delta mark in
  check_bool "allocated" true (d.Obs.Metrics.allocated_words > 0.0);
  check_bool "minor collections non-negative" true
    (d.Obs.Metrics.minor_collections >= 0);
  check_bool "top heap positive" true (d.Obs.Metrics.top_heap_words > 0)

(* --- Schema --- *)

let sample_doc ?(section = "unit") ?(smartly_area = 554.0)
    ?(cells_removed = 71.0) ?(t_median = 0.5) () =
  let open Perf.Schema in
  {
    section;
    env = fingerprint ~reps:3;
    cases =
      [
        {
          name = "case_a";
          metrics =
            [
              scalar ~name:"smartly_area" ~kind:Area smartly_area;
              scalar ~direction:Higher_better ~name:"cells_removed"
                ~kind:Count cells_removed;
              timing ~name:"t_full"
                (Perf.Stat.summarize [ t_median; t_median; t_median ]);
              scalar ~name:"gc_minor_collections" ~kind:Gc 12.0;
            ];
        };
      ];
  }

let test_schema_roundtrip () =
  let doc = sample_doc () in
  match Perf.Schema.of_string (Perf.Schema.to_string doc) with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok doc' ->
    check_string "section" doc.Perf.Schema.section doc'.Perf.Schema.section;
    check_bool "cases equal" true
      (doc.Perf.Schema.cases = doc'.Perf.Schema.cases);
    check_bool "env equal" true (doc.Perf.Schema.env = doc'.Perf.Schema.env)

let test_schema_rejects_bad_version () =
  let doc = sample_doc () in
  let json = Perf.Schema.to_string doc in
  (* forge a different schema tag *)
  let forged =
    let sub = "smartly-bench-v1" and by = "smartly-bench-v999" in
    let buf = Buffer.create (String.length json) in
    let n = String.length sub and m = String.length json in
    let i = ref 0 in
    while !i < m do
      if !i + n <= m && String.sub json !i n = sub then begin
        Buffer.add_string buf by;
        i := !i + n
      end
      else begin
        Buffer.add_char buf json.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  match Perf.Schema.of_string forged with
  | Ok _ -> Alcotest.fail "accepted forged schema version"
  | Error msg ->
    check_bool "message mentions schema" true
      (String.length msg > 0)

let test_schema_rejects_garbage () =
  check_bool "not json" true
    (Result.is_error (Perf.Schema.of_string "not json at all"));
  check_bool "json, wrong shape" true
    (Result.is_error (Perf.Schema.of_string "{\"schema\":\"smartly-bench-v1\"}"))

(* --- Compare.classify --- *)

let test_classify_exact_kinds () =
  let open Perf.Schema in
  let c = Perf.Compare.classify ~kind:Area ~direction:Lower_better in
  check_bool "equal unchanged" true (c 554.0 554.0 = Perf.Compare.Unchanged);
  check_bool "one more regresses" true (c 554.0 555.0 = Perf.Compare.Regressed);
  check_bool "one less improves" true (c 554.0 553.0 = Perf.Compare.Improved);
  (* scale must never loosen the exact kinds *)
  check_bool "scale stays exact" true
    (Perf.Compare.classify ~scale:100.0 ~kind:Area ~direction:Lower_better
       554.0 555.0
    = Perf.Compare.Regressed)

let test_classify_direction () =
  let open Perf.Schema in
  let c = Perf.Compare.classify ~kind:Count ~direction:Higher_better in
  check_bool "more is better" true (c 71.0 80.0 = Perf.Compare.Improved);
  check_bool "fewer regresses" true (c 71.0 60.0 = Perf.Compare.Regressed)

let test_classify_noisy_kinds () =
  let open Perf.Schema in
  let t = Perf.Compare.classify ~kind:Time ~direction:Lower_better in
  (* within the 25% band *)
  check_bool "10% slower unchanged" true (t 1.0 1.1 = Perf.Compare.Unchanged);
  check_bool "2x slower regresses" true (t 1.0 2.0 = Perf.Compare.Regressed);
  check_bool "2x faster improves" true (t 1.0 0.5 = Perf.Compare.Improved);
  (* the absolute floor protects near-zero baselines from huge
     relative jitter *)
  check_bool "zero baseline, tiny delta" true
    (t 0.0 0.01 = Perf.Compare.Unchanged);
  check_bool "zero baseline, real delta" true
    (t 0.0 5.0 = Perf.Compare.Regressed);
  (* scale widens the band *)
  check_bool "2x slower, scale 10" true
    (Perf.Compare.classify ~scale:10.0 ~kind:Time ~direction:Lower_better 1.0
       2.0
    = Perf.Compare.Unchanged)

(* --- Compare.diff --- *)

let test_diff_missing_and_new () =
  let open Perf.Schema in
  let base = sample_doc () in
  let cur =
    {
      (sample_doc ()) with
      cases =
        [
          {
            name = "case_a";
            metrics =
              [
                scalar ~name:"smartly_area" ~kind:Area 554.0;
                (* cells_removed dropped; a brand-new metric appears *)
                scalar ~name:"brand_new" ~kind:Count 1.0;
              ];
          };
          { name = "case_b"; metrics = [] };
        ];
    }
  in
  let d = Perf.Compare.diff ~baseline:base cur in
  check_bool "new case listed" true (d.Perf.Compare.new_cases = [ "case_b" ]);
  check_bool "no missing cases" true (d.Perf.Compare.missing_cases = []);
  let rows =
    List.concat_map (fun c -> c.Perf.Compare.rows) d.Perf.Compare.cases
  in
  let status_of name =
    (List.find (fun (r : Perf.Compare.metric_diff) -> r.Perf.Compare.name = name) rows)
      .Perf.Compare.status
  in
  check_bool "dropped metric flagged" true
    (status_of "cells_removed" = Perf.Compare.Missing_metric);
  check_bool "new metric flagged" true
    (status_of "brand_new" = Perf.Compare.New_metric);
  check_bool "unchanged metric" true
    (status_of "smartly_area" = Perf.Compare.Unchanged)

let test_diff_missing_case () =
  let base = sample_doc () in
  let cur = { base with Perf.Schema.cases = [] } in
  let d = Perf.Compare.diff ~baseline:base cur in
  check_bool "case_a missing" true
    (d.Perf.Compare.missing_cases = [ "case_a" ])

let test_diff_render_names_regression () =
  let base = sample_doc () in
  let cur = sample_doc ~smartly_area:918.0 ~cells_removed:0.0 () in
  let d = Perf.Compare.diff ~baseline:base cur in
  let regs = Perf.Compare.regressions d in
  check_int "two regressions" 2 (List.length regs);
  let out = Perf.Compare.render d in
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "table names smartly_area" true (contains "smartly_area" out);
  check_bool "table names cells_removed" true (contains "cells_removed" out);
  check_bool "status printed" true (contains "REGRESSED" out)

(* --- Store + Gate: the sabotaged-regression end-to-end test --- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "perf_test_%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let test_store_roundtrip () =
  with_temp_dir (fun dir ->
      let doc = sample_doc () in
      let path = Perf.Store.save ~dir doc in
      check_bool "file exists" true (Sys.file_exists path);
      match Perf.Store.load ~dir ~section:"unit" with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok doc' ->
        check_bool "roundtrip" true
          (doc.Perf.Schema.cases = doc'.Perf.Schema.cases))

let test_store_missing_advises_update () =
  with_temp_dir (fun dir ->
      match Perf.Store.load ~dir ~section:"nonexistent" with
      | Ok _ -> Alcotest.fail "loaded a baseline that does not exist"
      | Error msg ->
        let contains sub s =
          let n = String.length sub and m = String.length s in
          let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        check_bool "advises --update-baselines" true
          (contains "--update-baselines" msg))

let test_gate_clean_and_sabotaged () =
  with_temp_dir (fun dir ->
      let baseline = sample_doc () in
      ignore (Perf.Store.save ~dir baseline);
      (* clean rerun: identical deterministic metrics, slightly noisy
         timing well inside the band *)
      let clean = sample_doc ~t_median:0.55 () in
      let good = Perf.Gate.check ~dir [ clean ] in
      check_bool "clean run passes" true (Perf.Gate.ok good);
      (* sabotage: the optimizer "stops working" — area balloons and no
         cells are removed.  The gate must fail and name the metric. *)
      let bad = sample_doc ~smartly_area:918.0 ~cells_removed:0.0 () in
      let outcome = Perf.Gate.check ~dir [ bad ] in
      check_bool "sabotaged run fails" true (not (Perf.Gate.ok outcome));
      let verdict = Perf.Gate.render outcome in
      let contains sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      check_bool "verdict says FAIL" true (contains "FAIL" verdict);
      check_bool "verdict names smartly_area" true
        (contains "smartly_area" verdict);
      check_bool "verdict names cells_removed" true
        (contains "cells_removed" verdict))

let test_gate_missing_baseline_fails () =
  with_temp_dir (fun dir ->
      let outcome = Perf.Gate.check ~dir [ sample_doc () ] in
      check_bool "missing baseline fails the gate" true
        (not (Perf.Gate.ok outcome));
      check_bool "section listed" true
        (outcome.Perf.Gate.missing_baselines = [ "unit" ]))

(* --- colored table stays rectangular --- *)

let test_colored_table_rectangular () =
  Report.Table.set_color true;
  Fun.protect ~finally:(fun () -> Report.Table.set_color false)
    (fun () ->
      let base = sample_doc () in
      let cur = sample_doc ~smartly_area:918.0 () in
      let out = Perf.Compare.render (Perf.Compare.diff ~baseline:base cur) in
      check_bool "contains escape" true (String.contains out '\027');
      let border_widths =
        String.split_on_char '\n' out
        |> List.filter (fun l -> String.length l > 0 && l.[0] = '+')
        |> List.map String.length
      in
      check_bool "borders same width" true
        (match border_widths with
        | [] -> false
        | w :: ws -> List.for_all (( = ) w) ws);
      (* every cell row's visible width matches the border width *)
      let visible = Report.Table.visible_length in
      let rows =
        String.split_on_char '\n' out
        |> List.filter (fun l -> String.length l > 0 && l.[0] = '|')
      in
      check_bool "rows align visibly" true
        (rows <> []
        && List.for_all
             (fun r -> visible r = List.hd border_widths)
             rows))

let () =
  Alcotest.run "perf"
    [
      ( "stat",
        [
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "summarize" `Quick test_summarize;
        ] );
      ( "measure",
        [
          Alcotest.test_case "repeat" `Quick test_repeat;
          Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "gc delta" `Quick test_gc_delta;
        ] );
      ( "schema",
        [
          Alcotest.test_case "roundtrip" `Quick test_schema_roundtrip;
          Alcotest.test_case "rejects bad version" `Quick
            test_schema_rejects_bad_version;
          Alcotest.test_case "rejects garbage" `Quick
            test_schema_rejects_garbage;
        ] );
      ( "compare",
        [
          Alcotest.test_case "exact kinds" `Quick test_classify_exact_kinds;
          Alcotest.test_case "direction" `Quick test_classify_direction;
          Alcotest.test_case "noisy kinds" `Quick test_classify_noisy_kinds;
          Alcotest.test_case "missing and new metrics" `Quick
            test_diff_missing_and_new;
          Alcotest.test_case "missing case" `Quick test_diff_missing_case;
          Alcotest.test_case "render names regressions" `Quick
            test_diff_render_names_regression;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "missing advises update" `Quick
            test_store_missing_advises_update;
        ] );
      ( "gate",
        [
          Alcotest.test_case "clean and sabotaged" `Quick
            test_gate_clean_and_sabotaged;
          Alcotest.test_case "missing baseline" `Quick
            test_gate_missing_baseline_fails;
        ] );
      ( "render",
        [
          Alcotest.test_case "colored table rectangular" `Quick
            test_colored_table_rectangular;
        ] );
    ]
