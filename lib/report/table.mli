(** Minimal ASCII tables for the benchmark harness and the CLI. *)

type align = Left | Right

type column = { title : string; align : align }

val column : ?align:align -> string -> column

(** ANSI coloring for table cells.  Disabled by default (artifacts and
    piped output stay byte-stable); a CLI that has checked isatty /
    [NO_COLOR] turns it on with {!set_color}.  Padding counts visible
    characters, so colored cells align. *)

type color = Green | Red | Yellow | Dim

val set_color : bool -> unit

val colorize : color -> string -> string
(** Identity when color is disabled. *)

val visible_length : string -> int
(** String length with ANSI CSI escape sequences skipped. *)

val render : columns:column list -> rows:string list list -> string
val print : columns:column list -> rows:string list list -> unit

val pct : float -> string
(** ["12.34%"]; locale-stable (always ['.']), negative zero normalized.
    Render in a Right-aligned column. *)

val secs : float -> string
(** ["0.42s"]; locale-stable.  Render in a Right-aligned column. *)

val int_ : int -> string
